// Chen-Chen [11] detection-principle demo (Thue-Morse substrate).
//
// With a leader anchoring a Thue-Morse prefix, the ring labeling is
// cube-free: nothing to detect, ever (closure). Remove the leader and the
// labeling becomes an n-periodic string, which always contains a cube
// (w = n at the latest): leader absence is detectable in principle with O(1)
// states — the price Chen-Chen pay is super-exponential time, which is why
// the full protocol is carried as theory (DESIGN.md §2.4).
//
//   $ ./tm_cube_demo [n]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/thue_morse.hpp"

int main(int argc, char** argv) {
  using namespace ppsim::baselines;
  const int n = argc > 1 ? std::atoi(argv[1]) : 24;

  const auto ring = embed_thue_morse(n, 0);
  std::printf("ring labeling (Thue-Morse prefix anchored at leader u_0):\n  ");
  for (auto b : ring) std::printf("%d", b);
  std::printf("\n\n");

  // With the leader: read the labeling linearly from the anchor — cube-free.
  const auto prefix = thue_morse_prefix(static_cast<std::size_t>(n));
  std::printf("linear (leader-anchored) reading cube-free: %s\n",
              has_cube(prefix) ? "NO (unexpected!)" : "yes");

  // Without the leader: the ring is an n-periodic string; some cube exists.
  const auto w = smallest_cyclic_cube_window(ring, static_cast<std::size_t>(n));
  if (w) {
    std::printf("leaderless (cyclic) reading contains a cube: window w = %zu"
                "  -> absence is detectable\n", *w);
  } else {
    std::printf("no cyclic cube up to w = n: unexpected!\n");
  }

  // Sweep: smallest detectable window per ring size — the "work" a
  // Chen-Chen-style detector must do grows with n, with O(1) memory: hence
  // the super-exponential time.
  std::printf("\n%6s %18s\n", "n", "smallest cube w");
  for (int m = 6; m <= n * 4; m *= 2) {
    const auto r = embed_thue_morse(m, 0);
    const auto wm = smallest_cyclic_cube_window(r, static_cast<std::size_t>(m));
    std::printf("%6d %18s\n", m,
                wm ? std::to_string(*wm).c_str() : "none<=n");
  }
  return 0;
}
