// Protocol zoo: run all four runnable SS-LE protocols on comparable rings
// from random configurations and print a side-by-side summary — a miniature
// live version of Table 1.
//
//   $ ./protocol_zoo [n] [trials]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/scaling.hpp"
#include "baselines/fischer_jiang.hpp"
#include "baselines/modk.hpp"
#include "baselines/yokota28.hpp"
#include "core/table.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"

int main(int argc, char** argv) {
  using namespace ppsim;
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 5;
  const std::uint64_t budget =
      200'000ULL * static_cast<std::uint64_t>(n) *
          static_cast<std::uint64_t>(n) +
      100'000'000ULL;

  core::Table t({"protocol", "assumption", "median steps", "mean", "#states/agent"});

  {
    const auto p = pl::PlParams::make(n, 4);
    const auto r = analysis::measure_convergence<pl::PlProtocol>(
        p, [&](core::Xoshiro256pp& rng) { return pl::random_config(p, rng); },
        pl::SafePredicate{}, trials, budget, 1, 1);
    t.add_row({"P_PL (this paper)", "psi knowledge",
               core::fmt_double(r.steps.median, 4),
               core::fmt_double(r.steps.mean, 4),
               analysis::format_state_count(analysis::pl_state_count(p))});
  }
  {
    const auto p = baselines::Y28Params::make(n);
    const auto r = analysis::measure_convergence<baselines::Yokota28>(
        p,
        [&](core::Xoshiro256pp& rng) {
          return baselines::y28_random_config(p, rng);
        },
        [](std::span<const baselines::Y28State> c,
           const baselines::Y28Params& pp) {
          return baselines::y28_is_safe(c, pp);
        },
        trials, budget, 1, 2);
    t.add_row({"Yokota et al. [28]", "psi knowledge",
               core::fmt_double(r.steps.median, 4),
               core::fmt_double(r.steps.mean, 4),
               analysis::format_state_count(analysis::y28_state_count(n))});
  }
  {
    const auto p = baselines::FjParams::make(n);
    const auto r = analysis::measure_convergence<baselines::FischerJiang>(
        p,
        [&](core::Xoshiro256pp& rng) {
          return baselines::fj_random_config(p, rng);
        },
        [](std::span<const baselines::FjState> c,
           const baselines::FjParams& pp) {
          return baselines::fj_is_safe(c, pp);
        },
        trials, budget, 1, 3);
    t.add_row({"Fischer-Jiang [15]", "oracle Omega?",
               core::fmt_double(r.steps.median, 4),
               core::fmt_double(r.steps.mean, 4),
               analysis::format_state_count(analysis::fj_state_count())});
  }
  {
    const int n_odd = n % 2 == 0 ? n + 1 : n;
    const auto p = baselines::ModkParams::make(n_odd, 2);
    const auto r = analysis::measure_convergence<baselines::Modk>(
        p,
        [&](core::Xoshiro256pp& rng) {
          return baselines::modk_random_config(p, rng);
        },
        [](std::span<const baselines::ModkState> c,
           const baselines::ModkParams& pp) {
          return baselines::modk_is_safe(c, pp);
        },
        trials, budget, 1, 4);
    t.add_row({"AAFJ-style modk [5]", "n not multiple of k",
               core::fmt_double(r.steps.median, 4),
               core::fmt_double(r.steps.mean, 4),
               analysis::format_state_count(analysis::modk_state_count(2))});
  }

  std::printf("SS-LE protocol zoo, n = %d, %d trials each, random initial "
              "configurations\n(Chen-Chen [11] is represented by its "
              "Thue-Morse substrate: see tm_cube_demo)\n\n", n, trials);
  t.print(std::cout);
  return 0;
}
