// Fault-recovery demo: a converged ring is repeatedly hit by fault bursts
// (random state corruption, leader deletion, leader duplication) and heals
// every time. Prints a timeline.
//
//   $ ./fault_recovery_demo [n] [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace {

using namespace ppsim;

std::uint64_t heal(core::Runner<pl::PlProtocol>& runner) {
  const auto before = runner.steps();
  const auto hit = runner.run_until(pl::SafePredicate{}, 4'000'000'000ULL);
  return hit ? *hit - before : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppsim;
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;
  const auto p = pl::PlParams::make(n, 8);
  core::Xoshiro256pp rng(seed);

  core::Runner<pl::PlProtocol> runner(p, pl::make_safe_config(p), seed);
  std::printf("t=%-12llu converged system, leader at u_%d\n",
              static_cast<unsigned long long>(runner.steps()),
              pl::leader_positions(runner.agents()).front());

  struct Burst {
    const char* name;
    int faults;  // -1: delete leader; -2: duplicate leader
  };
  const std::vector<Burst> script{
      {"corrupt 1 agent", 1},    {"corrupt n/4 agents", n / 4},
      {"delete the leader", -1}, {"duplicate the leader", -2},
      {"corrupt n/2 agents", n / 2},
  };

  for (const Burst& b : script) {
    auto config =
        std::vector<pl::PlState>(runner.agents().begin(),
                                 runner.agents().end());
    if (b.faults == -1) {
      config[static_cast<std::size_t>(
                 pl::leader_positions(config).front())]
          .leader = 0;
    } else if (b.faults == -2) {
      const int k = pl::leader_positions(config).front();
      auto& rogue = config[static_cast<std::size_t>((k + n / 2) % n)];
      rogue.leader = 1;
      rogue.shield = 1;
    } else {
      pl::corrupt(config, p, b.faults, rng);
    }
    core::Runner<pl::PlProtocol> next(p, config, rng());
    std::printf("  >> fault: %-24s leaders now: %d\n", b.name,
                next.leader_count());
    const auto steps = heal(next);
    std::printf("t=+%-11llu healed, leader at u_%d (%.2f x n^2 lg n)\n",
                static_cast<unsigned long long>(steps),
                pl::leader_positions(next.agents()).front(),
                static_cast<double>(steps) /
                    (static_cast<double>(n) * n * p.psi));
    runner = next;
  }
  std::printf("\nall bursts healed; final leader u_%d\n",
              pl::leader_positions(runner.agents()).front());
  return 0;
}
