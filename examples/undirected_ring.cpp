// The full Section-5 stack on an *undirected* ring: two-hop coloring inputs,
// learned neighbor colors, P_OR orientation (Algorithm 6), and P_PL election
// running on top of whichever orientation wins.
//
//   $ ./undirected_ring [n] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/runner.hpp"
#include "orientation/oriented_stack.hpp"

int main(int argc, char** argv) {
  using namespace ppsim;
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 11;

  const auto p = orient::StackParams::make(n, /*c1=*/8);
  core::Xoshiro256pp rng(seed);
  core::Runner<orient::OrientedStack> runner(
      p, orient::stack_random_config(p, rng), seed);

  std::printf("undirected ring, n=%d: colors are proper 2-hop inputs;\n"
              "dir/strong and the whole election layer start as garbage\n\n",
              n);

  const auto oriented = runner.run_until(
      [](std::span<const orient::StackState> c, const orient::StackParams&) {
        return orient::stack_orientation(c) != 0;
      },
      4'000'000'000ULL);
  if (!oriented) {
    std::printf("orientation did not settle in budget\n");
    return 1;
  }
  const int dir = orient::stack_orientation(runner.agents());
  std::printf("t=%-12llu orientation settled: every agent points %s\n",
              static_cast<unsigned long long>(*oriented),
              dir == 1 ? "clockwise" : "counter-clockwise");

  const auto safe = runner.run_until(
      [](std::span<const orient::StackState> c,
         const orient::StackParams& pp) {
        return orient::stack_is_safe(c, pp);
      },
      4'000'000'000ULL);
  if (!safe) {
    std::printf("election did not certify in budget\n");
    return 1;
  }
  int leader = -1;
  for (int i = 0; i < n; ++i)
    if (runner.agent(i).pl.leader == 1) leader = i;
  std::printf("t=%-12llu election certified (S_PL on the oriented ring), "
              "leader u_%d\n",
              static_cast<unsigned long long>(*safe), leader);

  runner.run(500'000);
  int leaders = 0;
  for (int i = 0; i < n; ++i) leaders += runner.agent(i).pl.leader;
  std::printf("after 500k extra steps: %d leader(s), orientation %s\n",
              leaders,
              orient::stack_orientation(runner.agents()) == dir
                  ? "unchanged"
                  : "CHANGED (bug)");
  return 0;
}
