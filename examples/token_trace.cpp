// Token trace inspector: renders P_PL's internal machinery — dist ramp,
// segment borders/IDs, black & white tokens, resetting signals, clocks,
// bullets — as ASCII frames while the protocol runs.
//
//   $ ./token_trace [n] [frames] [steps_per_frame]
#include <cstdio>
#include <cstdlib>

#include "core/runner.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace {

using namespace ppsim;

void render(const core::Runner<pl::PlProtocol>& run) {
  const auto& p = run.params();
  const int n = p.n;
  auto line = [&](const char* label, auto fn) {
    std::printf("%-8s", label);
    for (int i = 0; i < n; ++i) std::printf("%c", fn(run.agent(i)));
    std::printf("\n");
  };
  line("agent", [i = 0](const pl::PlState&) mutable {
    const char c = "0123456789"[i % 10];
    ++i;
    return c;
  });
  line("leader", [](const pl::PlState& s) { return s.leader ? 'L' : '.'; });
  line("dist", [&](const pl::PlState& s) {
    if (s.dist == 0) return 'B';          // black border
    if (static_cast<int>(s.dist) == p.psi) return 'W';  // white border
    return '-';
  });
  line("b", [](const pl::PlState& s) { return s.b ? '1' : '0'; });
  line("last", [](const pl::PlState& s) { return s.last ? 'x' : '.'; });
  line("tokB", [](const pl::PlState& s) {
    if (!s.token_b.exists()) return '.';
    return s.token_b.pos > 0 ? '>' : '<';
  });
  line("tokW", [](const pl::PlState& s) {
    if (!s.token_w.exists()) return '.';
    return s.token_w.pos > 0 ? '>' : '<';
  });
  line("sigR", [](const pl::PlState& s) { return s.signal_r > 0 ? 'S' : '.'; });
  line("clock", [&](const pl::PlState& s) {
    const int frac = 10 * s.clock / (p.kappa_max == 0 ? 1 : p.kappa_max);
    return "0123456789X"[frac > 10 ? 10 : frac];
  });
  line("bullet", [](const pl::PlState& s) {
    return s.bullet == 2 ? '!' : s.bullet == 1 ? 'o' : '.';
  });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppsim;
  const int n = argc > 1 ? std::atoi(argv[1]) : 32;
  const int frames = argc > 2 ? std::atoi(argv[2]) : 6;
  const auto p = pl::PlParams::make(n, 4);
  const std::uint64_t per_frame =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10)
               : static_cast<std::uint64_t>(n) * n;

  core::Runner<pl::PlProtocol> run(p, pl::make_fresh_config(p), 3);
  std::printf("P_PL internals, n=%d psi=%d (fresh single-leader start)\n"
              "legend: B/W = black/white border, >/< = token direction,\n"
              "        S = resetting signal, ! = live bullet, o = dummy\n",
              n, p.psi);
  for (int f = 0; f <= frames; ++f) {
    std::printf("\n--- t = %llu%s ---\n",
                static_cast<unsigned long long>(run.steps()),
                pl::is_safe(run.agents(), p) ? "  [in S_PL]" : "");
    render(run);
    run.run(per_frame);
  }
  return 0;
}
