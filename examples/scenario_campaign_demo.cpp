// Scenario campaign demo: the anatomy of a ScenarioSpec, shown on two
// protocols side by side.
//
// A spec is (initial-configuration family x fault schedule x recovery
// predicate x trial plan); the campaign driver runs each trial to
// stabilization, injects the scheduled faults via Runner::set_agent and
// measures the time to re-enter the protocol's safe set. Everything is
// deterministic in (seed_base, tag, trial index) — rerun with the same
// arguments and the numbers repeat, at any thread count.
//
//   $ ./example_scenario_campaign_demo [n] [trials]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/adversary.hpp"
#include "analysis/scenario.hpp"
#include "pl/params.hpp"
#include "pl/protocol.hpp"

namespace {

using namespace ppsim;

template <typename P>
void report(const char* protocol, const typename P::Params& params,
            int trials) {
  const auto n_u = static_cast<std::uint64_t>(params.n);

  std::vector<std::pair<typename P::Params, analysis::ScenarioSpec<P>>> cells;
  int tag = 1;
  for (int faults : {1, params.n / 4}) {
    analysis::TrialPlan plan;
    plan.trials = trials;
    plan.max_steps = 60'000ULL * n_u * n_u + 60'000'000ULL;
    plan.seed_base = 7;
    plan.tag = analysis::campaign_tag(static_cast<std::uint64_t>(tag++),
                                      params.n, faults);
    cells.emplace_back(params,
                       analysis::make_recovery_scenario<P>(
                           "burst", analysis::burst_schedule(faults), plan));
    plan.tag = analysis::campaign_tag(static_cast<std::uint64_t>(tag++),
                                      params.n, faults);
    cells.emplace_back(
        params, analysis::make_recovery_scenario<P>(
                    "storm", analysis::storm_schedule(faults, n_u), plan));
  }

  std::printf("%s (n = %d):\n", protocol, params.n);
  for (const auto& r : analysis::run_campaign<P>(
           std::span<const std::pair<typename P::Params,
                                     analysis::ScenarioSpec<P>>>(cells))) {
    std::printf("  %-6s f=%-3lld median recovery %10.0f steps  (p90 %10.0f, "
                "%lld/%lld healed)\n",
                r.scenario.c_str(), static_cast<long long>(r.faults),
                r.stats.recovery.median, r.stats.recovery.p90,
                static_cast<long long>(r.stats.trials -
                                       r.stats.recovery_failures -
                                       r.stats.stabilization_failures),
                static_cast<long long>(r.stats.trials));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppsim;
  const int n = argc > 1 ? std::atoi(argv[1]) : 32;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf("recovery campaigns: burst (all faults at once) vs storm "
              "(spaced n steps)\n\n");
  report<pl::PlProtocol>("P_PL", pl::PlParams::make(n, 4), trials);
  report<baselines::Yokota28>("yokota28", baselines::Y28Params::make(n),
                              trials);
  std::printf("\nboth protocols re-enter their safe sets after every "
              "schedule; see\nBENCH_recovery.json (bench_recovery_json) for "
              "the tracked trajectory\n");
  return 0;
}
