// Quickstart: elect a leader on a directed ring of 100 anonymous agents
// starting from a completely arbitrary configuration.
//
//   $ ./quickstart [n] [seed]
//
// Walks through the library's core API: parameters, adversarial initial
// configuration, the runner, milestone predicates and the S_PL certificate.
#include <cstdio>
#include <cstdlib>

#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"

int main(int argc, char** argv) {
  using namespace ppsim;

  const int n = argc > 1 ? std::atoi(argv[1]) : 100;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 2023;

  // 1. Protocol parameters: the common knowledge psi = ceil(log2 n) + O(1).
  //    (c1 scales kappa_max; the paper's proofs use c1 >= 32, smaller values
  //    run faster and work fine in practice.)
  const pl::PlParams params = pl::PlParams::make(n, /*c1=*/8);
  std::printf("ring size n=%d, psi=%d, kappa_max=%d, 2^psi=%lld\n", n,
              params.psi, params.kappa_max, params.id_modulus());

  // 2. An arbitrary initial configuration — the adversary fills every
  //    variable of every agent with garbage from its legal domain.
  core::Xoshiro256pp rng(seed);
  auto initial = pl::random_config(params, rng);
  std::printf("initial leaders: %d (self-stabilization: any count is fine)\n",
              pl::count_leaders(initial));

  // 3. Run under the uniformly random scheduler until the S_PL certificate
  //    holds (the exact safe set of the paper's Theorem 3.1).
  core::Runner<pl::PlProtocol> runner(params, std::move(initial), seed);
  const auto first_unique =
      runner.run_until(pl::UniqueLeaderPredicate{}, 4'000'000'000ULL);
  std::printf("first unique leader after  %12llu steps\n",
              static_cast<unsigned long long>(first_unique.value_or(0)));
  const auto safe = runner.run_until(pl::SafePredicate{}, 4'000'000'000ULL);
  if (!safe) {
    std::printf("did not certify within the budget (increase it)\n");
    return 1;
  }
  std::printf("safe configuration (S_PL) at %12llu steps  (~%.2f n^2 lg n)\n",
              static_cast<unsigned long long>(*safe),
              static_cast<double>(*safe) /
                  (static_cast<double>(n) * n *
                   (params.psi > 0 ? params.psi : 1)));

  // 4. Closure: outputs are frozen forever. Demonstrate with a follow-up run.
  const int leader = pl::leader_positions(runner.agents()).front();
  runner.run(1'000'000);
  std::printf("leader u_%d unchanged after 1M extra steps: %s\n", leader,
              runner.agent(leader).leader == 1 &&
                      runner.leader_count() == 1
                  ? "yes"
                  : "NO (bug)");
  return 0;
}
