// ppsim_campaignd — the long-running, kill-safe campaign driver.
//
// Runs a fixed P_PL recovery campaign ({burst, storm} x fault counts, the
// scenario_campaign_demo cells at service scale) through
// service::CampaignService: the shard fan-out streams one NDJSON frame per
// shard into <frames>, progress is checkpointed into <checkpoint>, and a
// process killed at ANY point — kill -9 included — resumes from the
// checkpoint and finishes with byte-identical artifacts (the frame stream
// and <frames>.results.json), at any thread count.
// scripts/campaign_resume_check.sh is the kill/resume harness around this
// binary; tests/service/campaign_service_test.cpp pins the contract
// in-process.
//
//   $ ./example_ppsim_campaignd <checkpoint> <frames.ndjson> [n] [trials]
//
// Exit codes: 0 = campaign complete (results written), 3 = paused
// (PPSIM_CAMPAIGN_STOP shards ran; rerun to continue), 2 = refused a
// corrupt/foreign checkpoint or inconsistent frame file, 4 = degraded
// (every shard settled but some are quarantined after persistent failure —
// recorded in the checkpoint; results withheld).
// Env: PPSIM_THREADS (worker count; never changes any output byte),
// PPSIM_CAMPAIGN_STOP (stop after that many shards, 0 = run to
// completion), PPSIM_CKPT_EVERY (frames between checkpoints, default 1),
// PPSIM_FAILPOINTS (failpoint schedules, e.g.
// "service.file_sink.write=2xeintr;service.ckpt.write=enospc" — the chaos
// harness scripts/campaign_chaos_check.sh drives this; grammar in
// core/failpoint.hpp).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "analysis/adversary.hpp"
#include "analysis/scenario.hpp"
#include "core/env.hpp"
#include "core/failpoint.hpp"
#include "pl/params.hpp"
#include "pl/protocol.hpp"
#include "service/campaign.hpp"

namespace {

using namespace ppsim;

std::vector<service::CampaignService<pl::PlProtocol>::Cell> make_cells(
    int n, std::int64_t trials) {
  const auto p = pl::PlParams::make(n, 4);
  const auto n_u = static_cast<std::uint64_t>(p.n);
  std::vector<service::CampaignService<pl::PlProtocol>::Cell> cells;
  std::uint64_t tag = 1;
  for (int faults : {1, p.n / 4}) {
    analysis::TrialPlan plan;
    plan.trials = trials;
    plan.max_steps = 60'000ULL * n_u * n_u + 60'000'000ULL;
    plan.seed_base = 7;
    plan.tag = analysis::campaign_tag(tag++, p.n, faults);
    cells.emplace_back(p, analysis::make_recovery_scenario<pl::PlProtocol>(
                              "burst", analysis::burst_schedule(faults),
                              plan));
    plan.tag = analysis::campaign_tag(tag++, p.n, faults);
    cells.emplace_back(
        p, analysis::make_recovery_scenario<pl::PlProtocol>(
               "storm", analysis::storm_schedule(faults, n_u), plan));
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppsim;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <checkpoint> <frames.ndjson> [n] [trials]\n",
                 argv[0]);
    return 1;
  }
  const std::string ckpt = argv[1];
  const std::string frames_path = argv[2];
  const int n = argc > 3 ? std::atoi(argv[3]) : 16;
  const auto trials =
      static_cast<std::int64_t>(argc > 4 ? std::atoll(argv[4]) : 256);

  service::CampaignOptions opts;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every_shards = static_cast<std::uint64_t>(
      std::max(core::env_int("PPSIM_CKPT_EVERY", 1), 1));
  opts.stop_after_shards = static_cast<std::uint64_t>(
      std::max<std::int64_t>(core::env_int64("PPSIM_CAMPAIGN_STOP", 0), 0));

  try {
    const int armed = core::FailpointRegistry::instance().configure_from_env();
    if (armed > 0)
      std::fprintf(stderr, "failpoints: %d site(s) armed via PPSIM_FAILPOINTS\n",
                   armed);

    service::CampaignService<pl::PlProtocol> svc(make_cells(n, trials), opts);
    service::FileFrameSink frames(frames_path);
    std::printf("campaign %s: %llu/%llu shards done, resuming\n",
                service::digest_hex(svc.digest()).c_str(),
                static_cast<unsigned long long>(svc.shards_done()),
                static_cast<unsigned long long>(svc.shards_total()));
    const service::RunReport rep = svc.run(frames);
    std::printf("ran %llu shards (%llu/%llu done, %llu frame bytes)\n",
                static_cast<unsigned long long>(rep.shards_run),
                static_cast<unsigned long long>(rep.shards_done),
                static_cast<unsigned long long>(rep.shards_total),
                static_cast<unsigned long long>(rep.frame_bytes));
    if (rep.status == service::RunStatus::kPaused) {
      std::printf("paused; rerun to continue\n");
      return 3;
    }
    if (rep.status == service::RunStatus::kDegraded) {
      std::fprintf(stderr,
                   "degraded: %llu shard(s) quarantined after persistent "
                   "failure (recorded in %s); results withheld\n",
                   static_cast<unsigned long long>(rep.shards_quarantined),
                   ckpt.c_str());
      for (const auto& [cell, shard, reason] : svc.quarantine_report())
        std::fprintf(stderr, "  quarantined cell %u shard %llu: %s\n", cell,
                     static_cast<unsigned long long>(shard), reason.c_str());
      return 4;
    }
    const std::string results_path = frames_path + ".results.json";
    std::FILE* f = std::fopen(results_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", results_path.c_str());
      return 1;
    }
    const auto results = svc.results();
    service::write_campaign_results_json(
        f, std::span<const analysis::CampaignResult>(results), svc.digest());
    std::fclose(f);
    std::printf("complete; wrote %s\n", results_path.c_str());
    return 0;
  } catch (const service::CheckpointError& e) {
    std::fprintf(stderr, "refused: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
