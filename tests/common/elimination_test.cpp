// EliminateLeaders() (Algorithm 5): firing discipline, bullet movement,
// kills, signal propagation/blocking — plus exhaustive model checking of the
// elimination subsystem in isolation and statistical reduction tests.
#include <gtest/gtest.h>

#include <span>

#include "common/elimination.hpp"
#include "core/model_checker.hpp"
#include "core/runner.hpp"

namespace ppsim::common {
namespace {

// The standalone elimination-only protocol + checker adapter now lives in
// common/elimination.hpp (EliminationProtocol), shared with the quotient
// checker bench and the differential fuzzer; these aliases keep the test
// bodies unchanged.
using ES = ElimAgentState;
using ElimProto = EliminationProtocol;

TEST(EliminationProtocolAdapter, PackUnpackRoundTripsTheWholeDomain) {
  const ElimProto::Params p{4};
  for (std::size_t v = 0; v < ElimProto::num_states(p); ++v) {
    const ES s = ElimProto::unpack_state(v, p);
    EXPECT_EQ(ElimProto::pack_state(s, p), v);
    EXPECT_EQ(ElimProto::pack(s, p, 2), v);  // position-free adapter
    EXPECT_EQ(ElimProto::unpack(v, p, 3), s);
  }
}

TEST(Elimination, InitiatorLeaderFiresLiveAndShields) {
  ES l, r;
  l.leader = 1;
  l.signal_b = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.shield, 1);
  EXPECT_EQ(l.signal_b, 0);
  // The live bullet was fired and moved to r in the same interaction
  // (lines 52 then 58-60).
  EXPECT_EQ(l.bullet, 0);
  EXPECT_EQ(r.bullet, 2);
}

TEST(Elimination, ResponderLeaderFiresDummyAndUnshields) {
  ES l, r;
  r.leader = 1;
  r.signal_b = 1;
  r.shield = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(r.bullet, 1);
  EXPECT_EQ(r.shield, 0);
  EXPECT_EQ(r.signal_b, 0);
}

TEST(Elimination, LiveBulletKillsUnshieldedLeader) {
  ES l, r;
  l.bullet = 2;
  r.leader = 1;
  r.shield = 0;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(r.leader, 0);
  EXPECT_EQ(l.bullet, 0);
}

TEST(Elimination, LiveBulletSparesShieldedLeader) {
  ES l, r;
  l.bullet = 2;
  r.leader = 1;
  r.shield = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(r.leader, 1);
  EXPECT_EQ(l.bullet, 0);  // absorbed either way (line 57)
}

TEST(Elimination, DummyBulletNeverKills) {
  ES l, r;
  l.bullet = 1;
  r.leader = 1;
  r.shield = 0;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(r.leader, 1);
  EXPECT_EQ(l.bullet, 0);
}

TEST(Elimination, BulletAdvancesAndErasesSignal) {
  ES l, r;
  l.bullet = 2;
  r.signal_b = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.bullet, 0);
  EXPECT_EQ(r.bullet, 2);
  EXPECT_EQ(r.signal_b, 0);  // line 61
}

TEST(Elimination, BulletBlockedByBulletDisappears) {
  ES l, r;
  l.bullet = 2;
  r.bullet = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.bullet, 0);
  EXPECT_EQ(r.bullet, 1);  // the right bullet survives (line 59)
}

TEST(Elimination, SignalPropagatesRightToLeft) {
  ES l, r;
  r.signal_b = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.signal_b, 1);  // line 62 (copy semantics)
  EXPECT_EQ(r.signal_b, 1);
}

TEST(Elimination, LeaderResponderSeedsSignal) {
  ES l, r;
  r.leader = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.signal_b, 1);
}

TEST(Elimination, SignalDoesNotCrossBullet) {
  // Bullet at l, signal at r: after the interaction the bullet sits at r
  // with the signal erased, and l must NOT have picked up the signal.
  ES l, r;
  l.bullet = 1;
  r.signal_b = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.signal_b, 0);
  EXPECT_EQ(r.signal_b, 0);
}

TEST(EliminationModelCheck, BottomSccsHaveConstantLeaderSets) {
  // Elimination alone cannot create leaders; the specification for the
  // subsystem is: every recurrent class has a *constant* leader vector (so
  // outputs stabilize) — with zero leaders allowed only if the class started
  // leaderless (creation is CreateLeader()'s job). Bottom SCCs reachable
  // only from leaderless configs are fine; what must NOT happen is a
  // recurrent class whose leader set keeps changing.
  for (int n : {3, 4}) {
    core::ModelChecker<ElimProto> mc({n});
    const auto res = mc.check(
        [](std::span<const ES> c, const ElimProto::Params&) {
          std::uint32_t bits = 0;
          for (std::size_t i = 0; i < c.size(); ++i)
            bits |= static_cast<std::uint32_t>(c[i].leader) << i;
          return bits;
        },
        [](std::uint32_t) { return true; });
    EXPECT_TRUE(res.ok) << "n=" << n << ": " << res.reason;
    EXPECT_GT(res.num_bottom_sccs, 0u);
  }
}

TEST(EliminationModelCheck, PeacefulStartNeverLosesAllLeaders) {
  // From every configuration where all live bullets are peaceful and >= 1
  // leader exists (C_PB analog), zero-leader configurations are unreachable.
  // Verified by checking every bottom SCC reachable from such configs has
  // exactly one leader. We approximate "reachable from C_PB" by checking all
  // bottom SCCs that contain a >= 1-leader configuration... simpler & strong:
  // run BFS-free spot checks: any bottom SCC containing a peaceful >=1-leader
  // config must have exactly one constant leader.
  core::ModelChecker<ElimProto> mc({4});
  const auto res = mc.check(
      [](std::span<const ES> c, const ElimProto::Params&) {
        int leaders = 0;
        for (const ES& s : c) leaders += s.leader;
        // Peacefulness of every live bullet (ring walk).
        bool peaceful = true;
        const int n = static_cast<int>(c.size());
        for (int i = 0; i < n && peaceful; ++i) {
          if (c[static_cast<std::size_t>(i)].bullet != 2) continue;
          bool ok = false;
          for (int j = 0; j < n; ++j) {
            const ES& s = c[static_cast<std::size_t>(((i - j) % n + n) % n)];
            if (s.signal_b != 0) break;
            if (s.leader == 1) {
              ok = s.shield == 1;
              break;
            }
          }
          peaceful = ok;
        }
        struct Out {
          int leaders;
          bool peaceful;
          bool operator==(const Out&) const = default;
        };
        return Out{leaders, peaceful};
      },
      [](const auto& out) {
        // Recurrent classes: leaderless forever (started broken) or exactly
        // one leader. Never >= 2 leaders forever, and a peaceful recurrent
        // class must have a leader.
        if (out.leaders >= 2) return false;
        return true;
      });
  EXPECT_TRUE(res.ok) << res.reason;
}

TEST(EliminationDynamics, ReducesManyLeadersToOne) {
  for (int n : {8, 16, 32}) {
    ElimProto::Params p{n};
    std::vector<ES> config(static_cast<std::size_t>(n));
    for (ES& s : config) {
      s.leader = 1;
      s.shield = 1;
    }
    core::Runner<ElimProto> run(p, config, n);
    const auto hit = run.run_until(
        [](std::span<const ES> c, const ElimProto::Params&) {
          int k = 0;
          for (const ES& s : c) k += s.leader;
          return k == 1;
        },
        1'000'000ULL * static_cast<std::uint64_t>(n));
    ASSERT_TRUE(hit.has_value()) << "n=" << n;
    run.run(100'000);
    EXPECT_EQ(run.leader_count(), 1);  // and never dies thereafter
  }
}

TEST(EliminationDynamics, LoneLeaderSurvivesForever) {
  ElimProto::Params p{12};
  std::vector<ES> config(12);
  config[0].leader = 1;
  config[0].shield = 1;
  core::Runner<ElimProto> run(p, config, 3);
  run.run(5'000'000);
  EXPECT_EQ(run.leader_count(), 1);
  EXPECT_EQ(run.agent(0).leader, 1);
}

}  // namespace
}  // namespace ppsim::common
