// EliminateLeaders() (Algorithm 5): firing discipline, bullet movement,
// kills, signal propagation/blocking — plus exhaustive model checking of the
// elimination subsystem in isolation and statistical reduction tests.
#include <gtest/gtest.h>

#include <span>

#include "common/elimination.hpp"
#include "core/model_checker.hpp"
#include "core/runner.hpp"

namespace ppsim::common {
namespace {

struct ES {
  std::uint8_t leader = 0;
  std::uint8_t bullet = 0;
  std::uint8_t shield = 0;
  std::uint8_t signal_b = 0;
  friend constexpr bool operator==(const ES&, const ES&) = default;
};

/// Elimination as a standalone protocol (no creation), for the runner and
/// the model checker.
struct ElimProto {
  using State = ES;
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static void apply(State& l, State& r, const Params&) {
    eliminate_leaders_step(l, r);
  }
  static bool is_leader(const State& s, const Params&) {
    return s.leader == 1;
  }
  // Model-checker adapter.
  static std::size_t num_states(const Params&) { return 24; }
  static std::size_t pack(const State& s, const Params&, int) {
    return ((s.leader * 3ULL + s.bullet) * 2 + s.shield) * 2 + s.signal_b;
  }
  static State unpack(std::size_t v, const Params&, int) {
    State s;
    s.signal_b = static_cast<std::uint8_t>(v % 2);
    v /= 2;
    s.shield = static_cast<std::uint8_t>(v % 2);
    v /= 2;
    s.bullet = static_cast<std::uint8_t>(v % 3);
    v /= 3;
    s.leader = static_cast<std::uint8_t>(v);
    return s;
  }
};

TEST(Elimination, InitiatorLeaderFiresLiveAndShields) {
  ES l, r;
  l.leader = 1;
  l.signal_b = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.shield, 1);
  EXPECT_EQ(l.signal_b, 0);
  // The live bullet was fired and moved to r in the same interaction
  // (lines 52 then 58-60).
  EXPECT_EQ(l.bullet, 0);
  EXPECT_EQ(r.bullet, 2);
}

TEST(Elimination, ResponderLeaderFiresDummyAndUnshields) {
  ES l, r;
  r.leader = 1;
  r.signal_b = 1;
  r.shield = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(r.bullet, 1);
  EXPECT_EQ(r.shield, 0);
  EXPECT_EQ(r.signal_b, 0);
}

TEST(Elimination, LiveBulletKillsUnshieldedLeader) {
  ES l, r;
  l.bullet = 2;
  r.leader = 1;
  r.shield = 0;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(r.leader, 0);
  EXPECT_EQ(l.bullet, 0);
}

TEST(Elimination, LiveBulletSparesShieldedLeader) {
  ES l, r;
  l.bullet = 2;
  r.leader = 1;
  r.shield = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(r.leader, 1);
  EXPECT_EQ(l.bullet, 0);  // absorbed either way (line 57)
}

TEST(Elimination, DummyBulletNeverKills) {
  ES l, r;
  l.bullet = 1;
  r.leader = 1;
  r.shield = 0;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(r.leader, 1);
  EXPECT_EQ(l.bullet, 0);
}

TEST(Elimination, BulletAdvancesAndErasesSignal) {
  ES l, r;
  l.bullet = 2;
  r.signal_b = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.bullet, 0);
  EXPECT_EQ(r.bullet, 2);
  EXPECT_EQ(r.signal_b, 0);  // line 61
}

TEST(Elimination, BulletBlockedByBulletDisappears) {
  ES l, r;
  l.bullet = 2;
  r.bullet = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.bullet, 0);
  EXPECT_EQ(r.bullet, 1);  // the right bullet survives (line 59)
}

TEST(Elimination, SignalPropagatesRightToLeft) {
  ES l, r;
  r.signal_b = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.signal_b, 1);  // line 62 (copy semantics)
  EXPECT_EQ(r.signal_b, 1);
}

TEST(Elimination, LeaderResponderSeedsSignal) {
  ES l, r;
  r.leader = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.signal_b, 1);
}

TEST(Elimination, SignalDoesNotCrossBullet) {
  // Bullet at l, signal at r: after the interaction the bullet sits at r
  // with the signal erased, and l must NOT have picked up the signal.
  ES l, r;
  l.bullet = 1;
  r.signal_b = 1;
  eliminate_leaders_step(l, r);
  EXPECT_EQ(l.signal_b, 0);
  EXPECT_EQ(r.signal_b, 0);
}

TEST(EliminationModelCheck, BottomSccsHaveConstantLeaderSets) {
  // Elimination alone cannot create leaders; the specification for the
  // subsystem is: every recurrent class has a *constant* leader vector (so
  // outputs stabilize) — with zero leaders allowed only if the class started
  // leaderless (creation is CreateLeader()'s job). Bottom SCCs reachable
  // only from leaderless configs are fine; what must NOT happen is a
  // recurrent class whose leader set keeps changing.
  for (int n : {3, 4}) {
    core::ModelChecker<ElimProto> mc({n});
    const auto res = mc.check(
        [](std::span<const ES> c, const ElimProto::Params&) {
          std::uint32_t bits = 0;
          for (std::size_t i = 0; i < c.size(); ++i)
            bits |= static_cast<std::uint32_t>(c[i].leader) << i;
          return bits;
        },
        [](std::uint32_t) { return true; });
    EXPECT_TRUE(res.ok) << "n=" << n << ": " << res.reason;
    EXPECT_GT(res.num_bottom_sccs, 0u);
  }
}

TEST(EliminationModelCheck, PeacefulStartNeverLosesAllLeaders) {
  // From every configuration where all live bullets are peaceful and >= 1
  // leader exists (C_PB analog), zero-leader configurations are unreachable.
  // Verified by checking every bottom SCC reachable from such configs has
  // exactly one leader. We approximate "reachable from C_PB" by checking all
  // bottom SCCs that contain a >= 1-leader configuration... simpler & strong:
  // run BFS-free spot checks: any bottom SCC containing a peaceful >=1-leader
  // config must have exactly one constant leader.
  core::ModelChecker<ElimProto> mc({4});
  const auto res = mc.check(
      [](std::span<const ES> c, const ElimProto::Params&) {
        int leaders = 0;
        for (const ES& s : c) leaders += s.leader;
        // Peacefulness of every live bullet (ring walk).
        bool peaceful = true;
        const int n = static_cast<int>(c.size());
        for (int i = 0; i < n && peaceful; ++i) {
          if (c[static_cast<std::size_t>(i)].bullet != 2) continue;
          bool ok = false;
          for (int j = 0; j < n; ++j) {
            const ES& s = c[static_cast<std::size_t>(((i - j) % n + n) % n)];
            if (s.signal_b != 0) break;
            if (s.leader == 1) {
              ok = s.shield == 1;
              break;
            }
          }
          peaceful = ok;
        }
        struct Out {
          int leaders;
          bool peaceful;
          bool operator==(const Out&) const = default;
        };
        return Out{leaders, peaceful};
      },
      [](const auto& out) {
        // Recurrent classes: leaderless forever (started broken) or exactly
        // one leader. Never >= 2 leaders forever, and a peaceful recurrent
        // class must have a leader.
        if (out.leaders >= 2) return false;
        return true;
      });
  EXPECT_TRUE(res.ok) << res.reason;
}

TEST(EliminationDynamics, ReducesManyLeadersToOne) {
  for (int n : {8, 16, 32}) {
    ElimProto::Params p{n};
    std::vector<ES> config(static_cast<std::size_t>(n));
    for (ES& s : config) {
      s.leader = 1;
      s.shield = 1;
    }
    core::Runner<ElimProto> run(p, config, n);
    const auto hit = run.run_until(
        [](std::span<const ES> c, const ElimProto::Params&) {
          int k = 0;
          for (const ES& s : c) k += s.leader;
          return k == 1;
        },
        1'000'000ULL * static_cast<std::uint64_t>(n));
    ASSERT_TRUE(hit.has_value()) << "n=" << n;
    run.run(100'000);
    EXPECT_EQ(run.leader_count(), 1);  // and never dies thereafter
  }
}

TEST(EliminationDynamics, LoneLeaderSurvivesForever) {
  ElimProto::Params p{12};
  std::vector<ES> config(12);
  config[0].leader = 1;
  config[0].shield = 1;
  core::Runner<ElimProto> run(p, config, 3);
  run.run(5'000'000);
  EXPECT_EQ(run.leader_count(), 1);
  EXPECT_EQ(run.agent(0).leader, 1);
}

}  // namespace
}  // namespace ppsim::common
