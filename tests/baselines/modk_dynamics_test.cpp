// Dynamics of the modk reconstruction: leadership relocation (the mechanism
// that aligns gaps with the modulus) and the promotion ripple.
#include <gtest/gtest.h>

#include "baselines/modk.hpp"
#include "core/runner.hpp"

namespace ppsim::baselines {
namespace {

TEST(ModkDynamics, KillWithNonzeroLabelTriggersRelocation) {
  // A kill that rewrites the victim's label to a nonzero value creates a
  // violation at the victim's right pair, which then promotes the right
  // neighbor: net effect, leadership relocated one step clockwise.
  const ModkParams p = ModkParams::make(5, 2);
  std::vector<ModkState> c(5);
  // Leader at u_0 (lab 0), consistent labels 0,1,0,1,...: n odd so the wrap
  // pair (u_4, u_0) is absorbed by the leader rule.
  c[0].leader = 1;
  c[0].shield = 0;  // deliberately vulnerable
  for (int i = 1; i < 5; ++i)
    c[static_cast<std::size_t>(i)].lab = static_cast<std::uint8_t>(i % 2);
  // Stale live bullet just left of the leader.
  c[4].bullet = 2;
  core::Runner<Modk> run(p, c, 1);
  run.apply_arc(4);  // bullet hits u_0: killed, lab <- (lab(u_4)+1)%2 = 1
  EXPECT_EQ(run.agent(0).leader, 0);
  EXPECT_EQ(run.agent(0).lab, 1);
  // Pair (u_0, u_1): lab(u_1) = 1 != (1+1)%2 = 0 -> violation: promotion.
  run.apply_arc(0);
  EXPECT_EQ(run.agent(1).leader, 1);
  EXPECT_EQ(run.agent(1).lab, 0);
  EXPECT_EQ(run.agent(1).shield, 1);  // promoted leaders are born shielded
}

TEST(ModkDynamics, PromotionRippleIsBounded) {
  // A promotion writes lab 0, which may promote the next agent, and so on;
  // the ripple must terminate (leaders are exempt from the violation rule)
  // and elimination then reduces the leader count to one.
  const ModkParams p = ModkParams::make(9, 2);
  std::vector<ModkState> c(9);
  for (int i = 0; i < 9; ++i)
    c[static_cast<std::size_t>(i)].lab =
        static_cast<std::uint8_t>((i * 3 + 1) % 2);  // garbage labels
  core::Runner<Modk> run(p, c, 2);
  const auto hit = run.run_until(
      [](std::span<const ModkState> cc, const ModkParams& pp) {
        return modk_is_safe(cc, pp);
      },
      50'000'000ULL);
  ASSERT_TRUE(hit.has_value());
  run.run(100'000);
  EXPECT_EQ(run.leader_count(), 1);
}

TEST(ModkDynamics, LoneShieldedLeaderNeverRelocates) {
  // The C_PB-style argument: a lone leader is shielded whenever its own live
  // bullet is in flight, so in a clean configuration leadership never moves.
  const ModkParams p = ModkParams::make(7, 2);
  std::vector<ModkState> c(7);
  c[0].leader = 1;
  c[0].shield = 1;
  for (int i = 0; i < 7; ++i)
    c[static_cast<std::size_t>(i)].lab = static_cast<std::uint8_t>(i % 2);
  core::Runner<Modk> run(p, c, 3);
  run.run(3'000'000);
  EXPECT_EQ(run.agent(0).leader, 1);
  EXPECT_EQ(run.last_leader_change(), 0u);
}

TEST(ModkDynamics, LargerModulusWorks) {
  const ModkParams p = ModkParams::make(8, 3);  // 8 not a multiple of 3
  core::Xoshiro256pp rng(5);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    core::Runner<Modk> run(p, modk_random_config(p, rng), seed);
    const auto hit = run.run_until(
        [](std::span<const ModkState> cc, const ModkParams& pp) {
          return modk_is_safe(cc, pp);
        },
        50'000'000ULL);
    ASSERT_TRUE(hit.has_value()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ppsim::baselines
