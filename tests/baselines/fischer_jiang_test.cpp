// Baseline [15]: oracle-assisted bullets & shields.
#include <gtest/gtest.h>

#include "baselines/fischer_jiang.hpp"
#include "core/runner.hpp"

namespace ppsim::baselines {
namespace {

TEST(Fj, OracleCreatesLeaderWhenNoneExists) {
  const FjParams p = FjParams::make(8);
  core::Runner<FischerJiang> run(p, std::vector<FjState>(8), 1);
  EXPECT_EQ(run.leader_count(), 0);
  run.step();
  EXPECT_EQ(run.leader_count(), 1);
}

TEST(Fj, OracleSilentWithLeader) {
  const FjParams p = FjParams::make(8);
  std::vector<FjState> c(8);
  c[0].leader = 1;
  c[0].shield = 1;
  core::Runner<FischerJiang> run(p, c, 1);
  run.run(100'000);
  EXPECT_GE(run.leader_count(), 1);
}

TEST(Fj, ArmedLeaderFiresWithRoleCoin) {
  const FjParams p = FjParams::make(8);
  core::InteractionContext quiet;  // leaders & bullets exist: oracle silent
  {
    FjState l, r;
    l.leader = 1;
    l.armed = 1;
    FischerJiang::apply(l, r, p, quiet);
    EXPECT_EQ(l.shield, 1);  // initiator fired live...
    EXPECT_EQ(l.armed, 0);
    EXPECT_EQ(l.bullet, 0);  // ...and the bullet advanced within the same
    EXPECT_EQ(r.bullet, 2);  // interaction.
  }
  {
    FjState l, r;
    r.leader = 1;
    r.armed = 1;
    r.shield = 1;
    l.bullet = 1;
    FischerJiang::apply(l, r, p, quiet);
    EXPECT_EQ(r.shield, 0);  // responder fired dummy
    EXPECT_EQ(r.bullet, 1);
  }
}

TEST(Fj, AbsorptionRearmsLeader) {
  const FjParams p = FjParams::make(8);
  core::InteractionContext quiet;
  FjState l, r;
  l.bullet = 1;
  r.leader = 1;
  r.shield = 1;
  FischerJiang::apply(l, r, p, quiet);
  EXPECT_EQ(l.bullet, 0);
  EXPECT_EQ(r.armed, 1);
  EXPECT_EQ(r.leader, 1);
}

TEST(Fj, LiveBulletKillsUnshielded) {
  const FjParams p = FjParams::make(8);
  core::InteractionContext quiet;
  FjState l, r;
  l.bullet = 2;
  r.leader = 1;
  r.shield = 0;
  FischerJiang::apply(l, r, p, quiet);
  EXPECT_EQ(r.leader, 0);
  EXPECT_EQ(r.armed, 0);
}

class FjConvergence : public ::testing::TestWithParam<int> {};

TEST_P(FjConvergence, RandomConfigurationsConverge) {
  const int n = GetParam();
  const FjParams p = FjParams::make(n);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    core::Xoshiro256pp rng(seed);
    core::Runner<FischerJiang> run(p, fj_random_config(p, rng), seed);
    const std::uint64_t budget =
        2000ULL * static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(n) +
        500'000;
    const auto hit = run.run_until(
        [](std::span<const FjState> c, const FjParams& pp) {
          return fj_is_safe(c, pp);
        },
        budget);
    ASSERT_TRUE(hit.has_value()) << "n=" << n << " seed=" << seed;
    // Leader survives a long follow-up.
    const int before = run.leader_count();
    run.run(200'000);
    EXPECT_EQ(run.leader_count(), before);
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, FjConvergence,
                         ::testing::Values(4, 8, 16, 32));

TEST(Fj, StaysUniqueOverLongHorizon) {
  const FjParams p = FjParams::make(16);
  core::Xoshiro256pp rng(7);
  core::Runner<FischerJiang> run(p, fj_random_config(p, rng), 7);
  (void)run.run_until(
      [](std::span<const FjState> c, const FjParams& pp) {
        return fj_is_safe(c, pp);
      },
      5'000'000);
  // After stabilization the leader identity must not change.
  const auto before = run.last_leader_change();
  run.run(1'000'000);
  EXPECT_EQ(run.last_leader_change(), before);
}

}  // namespace
}  // namespace ppsim::baselines
