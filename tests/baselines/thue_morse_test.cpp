// Thue–Morse substrate (baseline [11]): cube-freeness of the prefix vs the
// guaranteed cube in any leaderless periodic labeling — the Chen–Chen
// detection principle.
#include <gtest/gtest.h>

#include "baselines/thue_morse.hpp"

namespace ppsim::baselines {
namespace {

TEST(ThueMorse, KnownPrefix) {
  const auto s = thue_morse_prefix(16);
  const std::vector<std::uint8_t> expected{0, 1, 1, 0, 1, 0, 0, 1,
                                           1, 0, 0, 1, 0, 1, 1, 0};
  EXPECT_EQ(s, expected);
}

TEST(ThueMorse, RecurrenceHolds) {
  // s_{2i} = s_i and s_{2i+1} = 1 - s_i.
  const auto s = thue_morse_prefix(4096);
  for (std::size_t i = 0; i < 2048; ++i) {
    EXPECT_EQ(s[2 * i], s[i]);
    EXPECT_EQ(s[2 * i + 1], 1 - s[i]);
  }
}

TEST(ThueMorse, PrefixIsCubeFreeUpTo4096) {
  EXPECT_FALSE(has_cube(thue_morse_prefix(1024)));
  EXPECT_FALSE(has_cube(thue_morse_prefix(4096)));
}

TEST(ThueMorse, CubesAreDetectedWhenPresent) {
  std::vector<std::uint8_t> s{0, 1, 0, 1, 0, 1};  // (01)^3
  EXPECT_TRUE(has_cube(s));
  std::vector<std::uint8_t> t{1, 1, 1};
  EXPECT_TRUE(has_cube(t));
  std::vector<std::uint8_t> u{0, 1, 1, 0, 1};
  EXPECT_FALSE(has_cube(u));
}

TEST(ThueMorse, EveryLeaderlessPeriodicLabelingHasACyclicCube) {
  // On a leaderless ring the labeling is read as an n-periodic string; the
  // window w = n always yields a cube. Chen–Chen's detection therefore always
  // has something to find when the leader is gone — exhaustive for n <= 12.
  for (int n = 3; n <= 12; ++n) {
    for (int mask = 0; mask < (1 << n); ++mask) {
      std::vector<std::uint8_t> ring(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        ring[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((mask >> i) & 1);
      EXPECT_TRUE(cyclic_has_cube(ring, static_cast<std::size_t>(n)))
          << "n=" << n << " mask=" << mask;
    }
  }
}

TEST(ThueMorse, SmallWindowsAreInsufficient) {
  // (01001)^inf has no cube with window <= 3: bounded-window detection is
  // incomplete, which is why Chen–Chen need unbounded (slowly simulated)
  // counters — and why their protocol is super-exponential. This pins the
  // DESIGN.md §2.4 substitution rationale.
  const std::vector<std::uint8_t> ring{0, 1, 0, 0, 1};
  EXPECT_FALSE(cyclic_has_cube(ring, 3));
  EXPECT_TRUE(cyclic_has_cube(ring, 5));  // w = n always works
}

TEST(ThueMorse, SmallestWindowReported) {
  const std::vector<std::uint8_t> ring{0, 0, 0, 1};
  const auto w = smallest_cyclic_cube_window(ring, 4);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 1u);
}

TEST(ThueMorse, EmbeddingAnchorsAtLeader) {
  const auto ring = embed_thue_morse(8, 3);
  const auto prefix = thue_morse_prefix(8);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(ring[static_cast<std::size_t>((3 + i) % 8)],
              prefix[static_cast<std::size_t>(i)]);
}

TEST(ThueMorse, LinearPrefixEmbeddingHasNoShortCyclicCube) {
  // With a leader anchoring the prefix, cubes shorter than the anchored
  // prefix structure are absent (the wrap can create cubes only across the
  // anchor, which the leader's presence excludes from detection).
  const auto prefix = thue_morse_prefix(64);
  EXPECT_FALSE(has_cube(prefix));
}

}  // namespace
}  // namespace ppsim::baselines
