// Baseline [5] reconstruction: mod-k labels + bullets/shields. The exhaustive
// model check is the headline: every one of the 48^3 configurations on a
// 3-ring (k=2) converges with probability 1 to a constant unique leader.
#include <gtest/gtest.h>

#include "baselines/modk.hpp"
#include "core/model_checker.hpp"
#include "core/runner.hpp"

namespace ppsim::baselines {
namespace {

TEST(ModkParams, RejectsMultiples) {
  EXPECT_THROW((void)ModkParams::make(4, 2), std::invalid_argument);
  EXPECT_THROW((void)ModkParams::make(9, 3), std::invalid_argument);
  EXPECT_NO_THROW((void)ModkParams::make(5, 2));
  EXPECT_NO_THROW((void)ModkParams::make(5, 3));
}

TEST(Modk, ViolatingResponderPromotes) {
  const ModkParams p = ModkParams::make(5, 2);
  ModkState l, r;
  l.lab = 0;
  r.lab = 0;  // expected 1: violation
  Modk::apply(l, r, p);
  EXPECT_EQ(r.leader, 1);
  EXPECT_EQ(r.lab, 0);
  EXPECT_EQ(r.shield, 1);
  EXPECT_EQ(r.bullet, 2);
}

TEST(Modk, ConsistentPairStaysQuiet) {
  const ModkParams p = ModkParams::make(5, 2);
  ModkState l, r;
  l.lab = 0;
  r.lab = 1;
  Modk::apply(l, r, p);
  EXPECT_EQ(r.leader, 0);
}

TEST(Modk, LeaderLabelPinnedAtZero) {
  const ModkParams p = ModkParams::make(5, 2);
  ModkState l, r;
  r.leader = 1;
  r.lab = 1;
  Modk::apply(l, r, p);
  EXPECT_EQ(r.lab, 0);
}

TEST(Modk, KillRewritesLabelLeftConsistently) {
  const ModkParams p = ModkParams::make(7, 2);
  ModkState l, r;
  l.lab = 1;
  l.bullet = 2;
  r.leader = 1;
  r.shield = 0;
  r.lab = 0;
  Modk::apply(l, r, p);
  EXPECT_EQ(r.leader, 0);
  EXPECT_EQ(r.lab, 0);  // (1+1) mod 2: left-consistent
  EXPECT_EQ(l.bullet, 0);
}

TEST(ModkModelCheck, ExhaustiveSelfStabilizationN3K2) {
  // All 110,592 configurations: every bottom SCC must hold exactly one
  // leader, at a fixed position, with consistent labels forever.
  const ModkParams p = ModkParams::make(3, 2);
  core::ModelChecker<ModkModel> mc(p);
  EXPECT_EQ(mc.num_configurations(), 48ull * 48 * 48);
  const auto res = mc.check(
      [](std::span<const ModkState> c, const ModkParams&) {
        std::uint32_t bits = 0;
        for (std::size_t i = 0; i < c.size(); ++i)
          bits |= static_cast<std::uint32_t>(c[i].leader) << i;
        return bits;
      },
      [](std::uint32_t bits) {
        int leaders = 0;
        for (int i = 0; i < 3; ++i) leaders += (bits >> i) & 1;
        return leaders == 1;
      });
  EXPECT_TRUE(res.ok) << res.reason << " cx="
                      << (res.counterexample ? *res.counterexample : 0);
  EXPECT_GT(res.num_bottom_sccs, 0u);
}

class ModkConvergence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ModkConvergence, RandomConfigurationsConverge) {
  const auto [n, k] = GetParam();
  const ModkParams p = ModkParams::make(n, k);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    core::Xoshiro256pp rng(seed);
    core::Runner<Modk> run(p, modk_random_config(p, rng), seed);
    const std::uint64_t budget =
        4000ULL * static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(n) +
        1'000'000;
    const auto hit = run.run_until(
        [](std::span<const ModkState> c, const ModkParams& pp) {
          return modk_is_safe(c, pp);
        },
        budget);
    ASSERT_TRUE(hit.has_value()) << "n=" << n << " k=" << k
                                 << " seed=" << seed;
    run.run(100'000);
    EXPECT_TRUE(modk_is_safe(run.agents(), p));
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, ModkConvergence,
                         ::testing::Values(std::tuple{5, 2}, std::tuple{7, 2},
                                           std::tuple{9, 2}, std::tuple{15, 2},
                                           std::tuple{31, 2}, std::tuple{4, 3},
                                           std::tuple{5, 3},
                                           std::tuple{16, 3}));

TEST(Modk, LeaderlessAlwaysHasViolation) {
  // The impossibility-breaking invariant: no leaderless labeling of a ring
  // with n % k != 0 is globally consistent. Exhaustive over labelings for
  // small n.
  for (int n : {3, 5, 7}) {
    const int k = 2;
    for (int mask = 0; mask < (1 << n); ++mask) {
      bool consistent = true;
      for (int i = 0; i < n; ++i) {
        const int lab_i = (mask >> i) & 1;
        const int lab_next = (mask >> ((i + 1) % n)) & 1;
        if (lab_next != (lab_i + 1) % k) {
          consistent = false;
          break;
        }
      }
      EXPECT_FALSE(consistent) << "n=" << n << " mask=" << mask;
    }
  }
}

TEST(Modk, ClosureFromSafeConfig) {
  const ModkParams p = ModkParams::make(9, 2);
  std::vector<ModkState> c(9);
  c[0].leader = 1;
  c[0].shield = 1;
  for (int i = 0; i < 9; ++i)
    c[static_cast<std::size_t>(i)].lab = static_cast<std::uint8_t>(i % 2);
  ASSERT_TRUE(modk_is_safe(c, p));
  core::Runner<Modk> run(p, c, 2);
  run.run(3'000'000);
  EXPECT_EQ(run.last_leader_change(), 0u);
  EXPECT_TRUE(modk_is_safe(run.agents(), p));
}

}  // namespace
}  // namespace ppsim::baselines
