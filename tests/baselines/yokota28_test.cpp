// Baseline [28]: distance-counting creation + Algorithm-5 elimination.
#include <gtest/gtest.h>

#include "baselines/yokota28.hpp"
#include "core/runner.hpp"

namespace ppsim::baselines {
namespace {

TEST(Y28Params, CapIsBetweenNAnd2N) {
  // N = 2^psi in [n, 2n), except for n < 4 where the psi >= 2 floor gives
  // N = 4 (still n + O(n)).
  for (int n : {2, 3, 5, 8, 16, 100, 1000}) {
    const Y28Params p = Y28Params::make(n);
    EXPECT_GE(p.cap, n);
    EXPECT_LT(p.cap, 2 * std::max(n, 2) + 1);
  }
  EXPECT_THROW((void)Y28Params::make(1), std::invalid_argument);
}

TEST(Y28, DistancePropagates) {
  const Y28Params p = Y28Params::make(16);
  Y28State l, r;
  l.dist = 5;
  Yokota28::apply(l, r, p);
  EXPECT_EQ(r.dist, 6);
  EXPECT_EQ(r.leader, 0);
}

TEST(Y28, LeaderResetsDistance) {
  const Y28Params p = Y28Params::make(16);
  Y28State l, r;
  l.dist = 5;
  r.leader = 1;
  r.dist = 9;
  Yokota28::apply(l, r, p);
  EXPECT_EQ(r.dist, 0);
}

TEST(Y28, OverflowCreatesLeader) {
  const Y28Params p = Y28Params::make(16);
  Y28State l, r;
  l.dist = static_cast<std::uint16_t>(p.cap - 1);
  Yokota28::apply(l, r, p);
  EXPECT_EQ(r.leader, 1);
  EXPECT_EQ(r.dist, 0);
  EXPECT_EQ(r.shield, 1);
  EXPECT_EQ(r.bullet, 2);
}

TEST(Y28, SafePredicateOnCanonicalConfig) {
  const Y28Params p = Y28Params::make(12);
  std::vector<Y28State> c(12);
  c[0].leader = 1;
  c[0].shield = 1;
  for (int i = 1; i < 12; ++i)
    c[static_cast<std::size_t>(i)].dist = static_cast<std::uint16_t>(i);
  EXPECT_TRUE(y28_is_safe(c, p));
  c[5].dist = 9;
  EXPECT_FALSE(y28_is_safe(c, p));
}

class Y28Convergence : public ::testing::TestWithParam<int> {};

TEST_P(Y28Convergence, RandomConfigurationsConverge) {
  const int n = GetParam();
  const Y28Params p = Y28Params::make(n);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    core::Xoshiro256pp rng(seed);
    core::Runner<Yokota28> run(p, y28_random_config(p, rng), seed);
    const std::uint64_t budget =
        400ULL * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) +
        200'000;
    const auto hit = run.run_until(
        [](std::span<const Y28State> c, const Y28Params& pp) {
          return y28_is_safe(c, pp);
        },
        budget);
    ASSERT_TRUE(hit.has_value()) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, Y28Convergence,
                         ::testing::Values(4, 8, 16, 32, 64));

TEST(Y28, LeaderlessRampDetectsWithinQuadraticBudget) {
  const Y28Params p = Y28Params::make(32);
  core::Runner<Yokota28> run(p, y28_leaderless(p), 9);
  const auto hit = run.run_until(
      [](std::span<const Y28State> c, const Y28Params&) {
        for (const auto& s : c)
          if (s.leader) return true;
        return false;
      },
      2'000'000);
  ASSERT_TRUE(hit.has_value());
}

TEST(Y28, ClosureFromSafeConfig) {
  const Y28Params p = Y28Params::make(24);
  std::vector<Y28State> c(24);
  c[3].leader = 1;
  c[3].shield = 1;
  for (int i = 0; i < 24; ++i)
    c[static_cast<std::size_t>((3 + i) % 24)].dist =
        static_cast<std::uint16_t>(i);
  core::Runner<Yokota28> run(p, c, 11);
  run.run(3'000'000);
  EXPECT_EQ(run.leader_count(), 1);
  EXPECT_EQ(run.last_leader_change(), 0u);
  EXPECT_TRUE(y28_is_safe(run.agents(), p));
}

}  // namespace
}  // namespace ppsim::baselines
