// Campaign service: crash/resume byte-identity, checkpoint codec refusals,
// and the frame/aggregate determinism contracts of src/service/campaign.hpp.
//
// The acceptance bar: a campaign killed at ANY shard boundary and resumed
// any number of times — each resume in a fresh service instance (simulated
// process death) at a DIFFERENT thread count — must produce a frame stream
// and a final aggregate artifact byte-identical to one uninterrupted run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "analysis/adversary.hpp"
#include "analysis/scenario.hpp"
#include "pl/params.hpp"
#include "pl/protocol.hpp"
#include "service/campaign.hpp"
#include "service/campaign_io.hpp"

namespace ppsim::service {
namespace {

using Cell = CampaignService<pl::PlProtocol>::Cell;

std::uint64_t budget(int n, int kappa_max) {
  const auto n_u = static_cast<std::uint64_t>(n);
  return 600ULL * n_u * n_u * static_cast<std::uint64_t>(kappa_max) +
         2'000'000;
}

/// Two burst cells on a small PL ring. `trials` > the cache-capped shard
/// width (64 rings at this n) so every cell splits into several shards —
/// the kill points of the resume tests land between real shards.
std::vector<Cell> make_cells(std::int64_t trials, std::uint64_t seed_base) {
  const auto p = pl::PlParams::make(8, 2);
  std::vector<Cell> cells;
  std::uint64_t tag_base = 21;
  for (int f : {1, 2}) {
    analysis::TrialPlan plan;
    plan.trials = trials;
    plan.max_steps = budget(p.n, p.kappa_max);
    plan.seed_base = seed_base;
    plan.tag = analysis::campaign_tag(tag_base++, p.n, f);
    cells.emplace_back(p, analysis::make_recovery_scenario<pl::PlProtocol>(
                              "burst", analysis::burst_schedule(f), plan));
  }
  return cells;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string render_results(const std::vector<analysis::CampaignResult>& rs,
                           std::uint64_t digest) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  write_campaign_results_json(
      mem, std::span<const analysis::CampaignResult>(rs), digest);
  std::fclose(mem);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

TEST(ShardBitmapTest, SetTestCountAll) {
  ShardBitmap b(70);  // spans two words
  EXPECT_EQ(b.size(), 70u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.all());
  for (std::uint64_t i = 0; i < 70; i += 2) b.set(i);
  EXPECT_EQ(b.count(), 35u);
  EXPECT_TRUE(b.test(64));
  EXPECT_FALSE(b.test(65));
  for (std::uint64_t i = 1; i < 70; i += 2) b.set(i);
  EXPECT_TRUE(b.all());
  EXPECT_TRUE(ShardBitmap(0).all());  // empty cell: vacuously complete
}

TEST(CheckpointCodecTest, RoundtripPreservesProgress) {
  Checkpoint ckpt;
  ckpt.spec_digest = 0xDEADBEEFCAFEF00DULL;
  ckpt.frame_bytes = 12345;
  CellProgress cell;
  cell.trials = 150;
  cell.shard_trials = 64;
  cell.done = ShardBitmap(3);
  cell.results.resize(150);
  cell.done.set(0);
  cell.done.set(2);  // note: the last (short, 22-trial) shard
  for (std::size_t i = 0; i < 150; ++i) {
    cell.results[i].stabilized = true;
    cell.results[i].healed = (i % 3) != 0;
    cell.results[i].stabilize_steps = 1000 + i;
    cell.results[i].recovery_steps = 77 * i;
  }
  ckpt.cells.push_back(cell);

  const auto bytes = encode_checkpoint(ckpt);
  const auto lr =
      decode_checkpoint(bytes.data(), bytes.size(), ckpt.spec_digest);
  ASSERT_EQ(lr.status, LoadStatus::kLoaded) << lr.error;
  ASSERT_EQ(lr.checkpoint.cells.size(), 1u);
  const CellProgress& got = lr.checkpoint.cells[0];
  EXPECT_EQ(lr.checkpoint.frame_bytes, 12345u);
  EXPECT_EQ(got.trials, 150u);
  EXPECT_EQ(got.shard_trials, 64u);
  EXPECT_EQ(got.done.count(), 2u);
  // Records of done shards roundtrip exactly; shard 1's slots stay default.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(got.results[i].stabilize_steps, 1000 + i);
    EXPECT_EQ(got.results[i].recovery_steps, 77 * i);
  }
  for (std::size_t i = 64; i < 128; ++i)
    EXPECT_FALSE(got.results[i].stabilized);
  for (std::size_t i = 128; i < 150; ++i) {
    EXPECT_TRUE(got.results[i].stabilized);
    EXPECT_EQ(got.results[i].healed, (i % 3) != 0);
  }
}

TEST(CheckpointCodecTest, EveryRefusalIsExplicit) {
  Checkpoint ckpt;
  ckpt.spec_digest = 42;
  CellProgress cell;
  cell.trials = 10;
  cell.shard_trials = 4;
  cell.done = ShardBitmap(3);
  cell.results.resize(10);
  ckpt.cells.push_back(cell);
  const auto bytes = encode_checkpoint(ckpt);

  // Digest of a different campaign: kSpecMismatch, not a silent restart.
  auto lr = decode_checkpoint(bytes.data(), bytes.size(), 43);
  EXPECT_EQ(lr.status, LoadStatus::kSpecMismatch);
  EXPECT_NE(lr.error.find("refusing"), std::string::npos);

  // Any flipped byte breaks the trailing checksum: kCorrupt.
  for (const std::size_t at : {std::size_t{0}, bytes.size() / 2,
                               bytes.size() - 1}) {
    auto bad = bytes;
    bad[at] ^= 0x01;
    lr = decode_checkpoint(bad.data(), bad.size(), 42);
    EXPECT_EQ(lr.status, LoadStatus::kCorrupt) << "flipped byte " << at;
  }

  // Truncation at every prefix length: kCorrupt, never a misread.
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    lr = decode_checkpoint(bytes.data(), len, 42);
    EXPECT_EQ(lr.status, LoadStatus::kCorrupt) << "prefix " << len;
  }
}

TEST(CampaignServiceTest, SpecDigestSeparatesCampaigns) {
  CampaignService<pl::PlProtocol> a(make_cells(150, 33));
  CampaignService<pl::PlProtocol> b(make_cells(150, 34));  // seed differs
  CampaignService<pl::PlProtocol> c(make_cells(140, 33));  // trials differ
  CampaignService<pl::PlProtocol> a2(make_cells(150, 33));
  EXPECT_EQ(a.digest(), a2.digest());
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());

  CampaignOptions extra;
  extra.extra_digest = 7;  // protocol knobs beyond n fold in here
  CampaignService<pl::PlProtocol> d(make_cells(150, 33), extra);
  EXPECT_NE(a.digest(), d.digest());
}

TEST(CampaignServiceTest, CompletesAndMatchesRunCampaign) {
  CampaignOptions opts;
  opts.threads = 2;
  CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
  EXPECT_EQ(svc.shards_total(), 6u);  // 2 cells x ceil(150 / 64)
  MemoryFrameSink frames;
  const RunReport rep = svc.run(frames);
  EXPECT_EQ(rep.status, RunStatus::kComplete);
  EXPECT_EQ(rep.shards_run, 6u);
  EXPECT_EQ(rep.frame_bytes, frames.str().size());
  // One NDJSON frame per shard.
  std::size_t lines = 0;
  for (char ch : frames.str()) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 6u);
  EXPECT_NE(frames.str().find("\"frame\":\"shard\""), std::string::npos);

  // The folded aggregates are exactly run_campaign's for the same cells
  // (the service's sharding is output-invisible, like every driver's).
  const auto cells = make_cells(150, 33);
  const auto reference = analysis::run_campaign<pl::PlProtocol>(
      std::span<const Cell>(cells));
  const auto got = svc.results();
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].scenario, reference[i].scenario);
    EXPECT_EQ(got[i].n, reference[i].n);
    EXPECT_EQ(got[i].faults, reference[i].faults);
    EXPECT_EQ(got[i].stats.raw, reference[i].stats.raw);
    EXPECT_EQ(got[i].stats.trials, reference[i].stats.trials);
    EXPECT_EQ(got[i].stats.stabilization_failures,
              reference[i].stats.stabilization_failures);
    EXPECT_EQ(got[i].stats.recovery_failures,
              reference[i].stats.recovery_failures);
  }
}

TEST(CampaignServiceTest, FramesAreThreadCountInvariant) {
  std::string baseline;
  for (int threads : {1, 2, 5}) {
    CampaignOptions opts;
    opts.threads = threads;
    opts.max_inflight_frames = threads == 5 ? 1 : 16;  // tightest window too
    CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
    MemoryFrameSink frames;
    ASSERT_EQ(svc.run(frames).status, RunStatus::kComplete);
    if (baseline.empty()) baseline = frames.str();
    EXPECT_EQ(frames.str(), baseline) << "threads=" << threads;
  }
}

TEST(CampaignServiceTest, KillResumeAnyCutPointIsByteIdentical) {
  // Uninterrupted reference run (no checkpointing at all).
  CampaignOptions ref_opts;
  ref_opts.threads = 2;
  CampaignService<pl::PlProtocol> ref(make_cells(150, 33), ref_opts);
  MemoryFrameSink ref_frames;
  ASSERT_EQ(ref.run(ref_frames).status, RunStatus::kComplete);
  const std::string ref_aggregate =
      render_results(ref.results(), ref.digest());

  const std::string dir = testing::TempDir();
  const std::string ckpt = dir + "ppsim_resume.ckpt";
  const std::string frames_path = dir + "ppsim_resume.ndjson";
  std::remove(ckpt.c_str());
  std::remove(frames_path.c_str());

  // Kill after every single shard, resuming each time in a FRESH service
  // instance (simulated process death) at a rotating thread count.
  const int threads[] = {3, 1, 4, 2, 5, 1, 2};
  int round = 0;
  for (;; ++round) {
    ASSERT_LT(round, 10) << "campaign failed to converge to completion";
    CampaignOptions opts;
    opts.checkpoint_path = ckpt;
    opts.checkpoint_every_shards = 1;
    opts.threads = threads[round % 7];
    opts.stop_after_shards = 1;
    CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
    FileFrameSink frames(frames_path);
    const RunReport rep = svc.run(frames);
    if (rep.status == RunStatus::kComplete) {
      EXPECT_EQ(render_results(svc.results(), svc.digest()), ref_aggregate);
      break;
    }
    EXPECT_EQ(rep.shards_run, 1u);
  }
  // 6 shards, one per round: round 5 runs the last shard and reports
  // kComplete (hitting the stop limit on the final shard still completes
  // the bitmap).
  EXPECT_EQ(round, 5);
  EXPECT_EQ(read_file(frames_path), ref_frames.str());

  // Resuming an already-complete campaign is a no-op with identical bytes.
  CampaignOptions opts;
  opts.checkpoint_path = ckpt;
  CampaignService<pl::PlProtocol> again(make_cells(150, 33), opts);
  FileFrameSink frames(frames_path);
  const RunReport rep = again.run(frames);
  EXPECT_EQ(rep.status, RunStatus::kComplete);
  EXPECT_EQ(rep.shards_run, 0u);
  EXPECT_EQ(read_file(frames_path), ref_frames.str());
  EXPECT_EQ(render_results(again.results(), again.digest()), ref_aggregate);
}

TEST(CampaignServiceTest, TornFrameTailIsRerunNotDuplicated) {
  // kill -9 between a frame write and the next checkpoint: the frame file
  // carries bytes past ckpt.frame_bytes (even a torn partial line). Resume
  // must truncate them and re-emit identically.
  CampaignOptions ref_opts;
  ref_opts.threads = 2;
  CampaignService<pl::PlProtocol> ref(make_cells(150, 33), ref_opts);
  MemoryFrameSink ref_frames;
  ASSERT_EQ(ref.run(ref_frames).status, RunStatus::kComplete);

  const std::string dir = testing::TempDir();
  const std::string ckpt = dir + "ppsim_torn.ckpt";
  const std::string frames_path = dir + "ppsim_torn.ndjson";
  std::remove(ckpt.c_str());
  std::remove(frames_path.c_str());

  {  // Run 2 shards, checkpoint after each.
    CampaignOptions opts;
    opts.checkpoint_path = ckpt;
    opts.checkpoint_every_shards = 1;
    opts.stop_after_shards = 2;
    CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
    FileFrameSink frames(frames_path);
    ASSERT_EQ(svc.run(frames).status, RunStatus::kPaused);
  }
  // Simulate the torn tail: garbage written after the last checkpoint.
  write_file(frames_path, read_file(frames_path) + "{\"frame\":\"sha");

  CampaignOptions opts;
  opts.checkpoint_path = ckpt;
  CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
  FileFrameSink frames(frames_path);
  ASSERT_EQ(svc.run(frames).status, RunStatus::kComplete);
  EXPECT_EQ(read_file(frames_path), ref_frames.str());
}

TEST(CampaignServiceTest, CorruptCheckpointIsRefusedNotRestarted) {
  const std::string dir = testing::TempDir();
  const std::string ckpt = dir + "ppsim_corrupt.ckpt";
  const std::string frames_path = dir + "ppsim_corrupt.ndjson";
  std::remove(ckpt.c_str());
  std::remove(frames_path.c_str());

  {
    CampaignOptions opts;
    opts.checkpoint_path = ckpt;
    opts.stop_after_shards = 2;
    CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
    FileFrameSink frames(frames_path);
    ASSERT_EQ(svc.run(frames).status, RunStatus::kPaused);
  }
  std::string bytes = read_file(ckpt);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x01;
  write_file(ckpt, bytes);

  CampaignOptions opts;
  opts.checkpoint_path = ckpt;
  CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
  FileFrameSink frames(frames_path);
  EXPECT_THROW(svc.run(frames), CheckpointError);
  EXPECT_EQ(svc.shards_done(), 0u);  // and no work was silently redone
}

TEST(CampaignServiceTest, ForeignCheckpointIsRefused) {
  const std::string dir = testing::TempDir();
  const std::string ckpt = dir + "ppsim_foreign.ckpt";
  const std::string frames_path = dir + "ppsim_foreign.ndjson";
  std::remove(ckpt.c_str());
  std::remove(frames_path.c_str());

  {  // Checkpoint belongs to the seed_base=33 campaign...
    CampaignOptions opts;
    opts.checkpoint_path = ckpt;
    opts.stop_after_shards = 1;
    CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
    FileFrameSink frames(frames_path);
    ASSERT_EQ(svc.run(frames).status, RunStatus::kPaused);
  }
  // ...so the seed_base=34 campaign must refuse it.
  CampaignOptions opts;
  opts.checkpoint_path = ckpt;
  CampaignService<pl::PlProtocol> svc(make_cells(150, 34), opts);
  FileFrameSink frames(frames_path);
  try {
    svc.run(frames);
    FAIL() << "foreign checkpoint accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("refusing"), std::string::npos);
  }
}

TEST(CampaignServiceTest, MissingFrameFileWithCheckpointIsRefused) {
  const std::string dir = testing::TempDir();
  const std::string ckpt = dir + "ppsim_noframes.ckpt";
  const std::string frames_path = dir + "ppsim_noframes.ndjson";
  std::remove(ckpt.c_str());
  std::remove(frames_path.c_str());

  {
    CampaignOptions opts;
    opts.checkpoint_path = ckpt;
    opts.stop_after_shards = 2;
    CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
    FileFrameSink frames(frames_path);
    ASSERT_EQ(svc.run(frames).status, RunStatus::kPaused);
  }
  // The frame file vanished but the checkpoint says frames were emitted:
  // the sink cannot be rewound to the checkpoint boundary — refuse.
  std::remove(frames_path.c_str());
  CampaignOptions opts;
  opts.checkpoint_path = ckpt;
  CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
  FileFrameSink frames(frames_path);
  EXPECT_THROW(svc.run(frames), CheckpointError);
}

TEST(CampaignServiceTest, ResultsBeforeCompletionThrow) {
  CampaignOptions opts;
  opts.stop_after_shards = 1;
  CampaignService<pl::PlProtocol> svc(make_cells(150, 33), opts);
  MemoryFrameSink frames;
  ASSERT_EQ(svc.run(frames).status, RunStatus::kPaused);
  EXPECT_THROW((void)svc.results(), CheckpointError);

  // In-process resume (same instance, no checkpoint file): each run() adds
  // one more shard (the stop limit is part of the instance's options) until
  // the stream completes.
  RunReport rep;
  for (int round = 0; round < 6 && rep.status != RunStatus::kComplete;
       ++round)
    rep = svc.run(frames);
  EXPECT_EQ(rep.status, RunStatus::kComplete);
  CampaignService<pl::PlProtocol> ref(make_cells(150, 33));
  MemoryFrameSink ref_frames;
  ASSERT_EQ(ref.run(ref_frames).status, RunStatus::kComplete);
  EXPECT_EQ(frames.str(), ref_frames.str());
}

}  // namespace
}  // namespace ppsim::service
