// Self-healing campaign I/O under injected failure (core/failpoint.hpp +
// service/retry.hpp threaded through service/campaign.hpp and
// campaign_io.hpp).
//
// The contract proved here, site by site:
//
//  * Transient syscall failures (EINTR, EAGAIN, short writes, fail-once
//    ENOSPC/EIO) are absorbed by retry loops and the campaign's artifacts
//    come out BYTE-IDENTICAL to a fault-free run — retries touch wall
//    clock, never an output byte.
//  * Non-transient injections (kThrow) poison the emitter, every worker
//    unwinds, and a resumed run completes byte-identically with no frame
//    emitted twice — swept over EVERY emission-cursor position.
//  * A persistently failing shard is quarantined: retried
//    shard_max_attempts times, then recorded (bitmap + reason) in the
//    checkpoint while the rest of the campaign completes; the run reports
//    kDegraded, results() refuses, and a resume sees the quarantine
//    without re-running the shard.
//  * An adversarial forever-EINTR schedule produces a loud CheckpointError
//    (storm bound), never a hang.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "analysis/adversary.hpp"
#include "analysis/scenario.hpp"
#include "core/failpoint.hpp"
#include "pl/params.hpp"
#include "pl/protocol.hpp"
#include "service/campaign.hpp"
#include "service/campaign_io.hpp"
#include "service/retry.hpp"

namespace ppsim::service {
namespace {

namespace fp = ppsim::core::failpoints;
using ppsim::core::FailpointRegistry;

using Cell = CampaignService<pl::PlProtocol>::Cell;

std::uint64_t budget(int n, int kappa_max) {
  const auto n_u = static_cast<std::uint64_t>(n);
  return 600ULL * n_u * n_u * static_cast<std::uint64_t>(kappa_max) +
         2'000'000;
}

/// Two burst cells on a small PL ring, several shards each (the same shape
/// campaign_service_test.cpp uses) so injection points land between and
/// inside real shards.
std::vector<Cell> make_cells(std::int64_t trials, std::uint64_t seed_base) {
  const auto p = pl::PlParams::make(8, 2);
  std::vector<Cell> cells;
  std::uint64_t tag_base = 33;
  for (int f : {1, 2}) {
    analysis::TrialPlan plan;
    plan.trials = trials;
    plan.max_steps = budget(p.n, p.kappa_max);
    plan.seed_base = seed_base;
    plan.tag = analysis::campaign_tag(tag_base++, p.n, f);
    cells.emplace_back(p, analysis::make_recovery_scenario<pl::PlProtocol>(
                              "burst", analysis::burst_schedule(f), plan));
  }
  return cells;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

/// Fast retry policy for tests: same attempt structure, microsecond-scale
/// backoff so injected transient storms don't slow the suite.
RetryPolicy fast_retry() {
  RetryPolicy p;
  p.base_delay_us = 1;
  p.max_delay_us = 10;
  return p;
}

/// Every test scrubs the process-global failpoint registry on both sides.
class SelfHealingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::instance().disarm_all();
    dir_ = ::testing::TempDir() + "self_heal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::string cmd = "rm -rf '" + dir_ + "' && mkdir -p '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }

  FailpointRegistry& reg() { return FailpointRegistry::instance(); }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  /// Fault-free reference run of `cells`: (frame bytes, digest).
  std::pair<std::string, std::uint64_t> reference(std::int64_t trials,
                                                  std::uint64_t seed) {
    CampaignOptions opts;
    opts.retry = fast_retry();
    CampaignService<pl::PlProtocol> svc(make_cells(trials, seed), opts);
    MemoryFrameSink sink;
    EXPECT_EQ(svc.run(sink).status, RunStatus::kComplete);
    return {sink.str(), svc.digest()};
  }

  std::string dir_;
};

// --- FdFrameSink: EINTR/EAGAIN/short-write healing (satellite 1) ----------

TEST_F(SelfHealingTest, FdSinkHealsEintrEagainAndShortWrites) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload =
      "the quick brown fox jumps over the lazy dog\n";
  {
    FdFrameSink sink(fds[1]);
    // Three fault classes interleaved before clean writes: each must be
    // retried in place without dropping or duplicating a byte.
    reg().arm(fp::kFdSinkWrite,
              "eintr+eagain+short:5+eintr+short:1");
    sink.write(payload.data(), payload.size());
    EXPECT_EQ(sink.offset(), payload.size());
  }
  ::close(fds[1]);
  std::string got(payload.size(), '\0');
  ASSERT_EQ(::read(fds[0], got.data(), got.size()),
            static_cast<ssize_t>(payload.size()));
  EXPECT_EQ(got, payload) << "retries must not drop or duplicate bytes";
  char extra = 0;
  EXPECT_EQ(::read(fds[0], &extra, 1), 0) << "no extra bytes after EOF";
  ::close(fds[0]);
}

TEST_F(SelfHealingTest, FdSinkAbortsOnNonTransientErrno) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  FdFrameSink sink(fds[1]);
  reg().arm(fp::kFdSinkWrite, "errno:9");  // EBADF: permanent
  EXPECT_THROW(sink.write("x", 1), CheckpointError);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- FileFrameSink: transient healing and the storm bound ------------------

TEST_F(SelfHealingTest, FileSinkHealsTransientsByteExactly) {
  const std::string p = path("frames.bin");
  const std::string payload = "0123456789abcdef0123456789abcdef";
  {
    FileFrameSink sink(p, fast_retry());
    reg().arm(fp::kFileSinkWrite, "2xeintr+enospc+short:7+eio");
    sink.write(payload.data(), payload.size());
    reg().arm(fp::kFileSinkFlush, "eintr+enospc");
    sink.flush();
  }
  EXPECT_EQ(read_file(p), payload);
}

TEST_F(SelfHealingTest, EintrStormIsALoudErrorNeverAHang) {
  const std::string p = path("frames.bin");
  FileFrameSink sink(p, fast_retry());
  reg().arm(fp::kFileSinkWrite, "*xeintr");
  // kEintrStormLimit consecutive no-progress EINTRs must surface as a
  // CheckpointError (the no-hang guarantee under adversarial schedules).
  EXPECT_THROW(sink.write("x", 1), CheckpointError);
  reg().disarm_all();

  reg().arm(fp::kFileSinkTruncate, "*xeintr");
  EXPECT_THROW(sink.truncate_to(0), CheckpointError);
}

TEST_F(SelfHealingTest, FileSinkExhaustedTransientRetriesThrow) {
  const std::string p = path("frames.bin");
  RetryPolicy rp = fast_retry();
  rp.max_attempts = 3;
  FileFrameSink sink(p, rp);
  reg().arm(fp::kFileSinkWrite, "*xenospc");  // never heals
  EXPECT_THROW(sink.write("x", 1), CheckpointError);
}

// --- Checkpoint durability + load classification (satellites 2 & 3) -------

Checkpoint small_checkpoint() {
  Checkpoint ckpt;
  ckpt.spec_digest = 0xFEEDFACE01234567ULL;
  ckpt.frame_bytes = 99;
  CellProgress cell;
  cell.trials = 10;
  cell.shard_trials = 4;
  cell.done = ShardBitmap(3);
  cell.quarantined = ShardBitmap(3);
  cell.quarantine_reasons.resize(3);
  cell.results.resize(10);
  cell.done.set(1);
  ckpt.cells.push_back(std::move(cell));
  return ckpt;
}

TEST_F(SelfHealingTest, SaveHealsEintrAndShortWritesInPlace) {
  const std::string p = path("ckpt.bin");
  const Checkpoint ckpt = small_checkpoint();
  reg().arm(fp::kCkptWrite, "2xeintr+short:9+eintr");
  reg().arm(fp::kCkptFsync, "2xeintr");
  reg().arm(fp::kCkptRename, "eintr");
  reg().arm(fp::kCkptDirFsync, "eintr");
  ASSERT_TRUE(save_checkpoint(p, ckpt));
  const LoadResult lr = load_checkpoint(p, ckpt.spec_digest);
  ASSERT_EQ(lr.status, LoadStatus::kLoaded) << lr.error;
  EXPECT_EQ(lr.checkpoint.frame_bytes, 99u);
}

TEST_F(SelfHealingTest, SaveFailsCleanlyOnPersistentErrnoEachSite) {
  const std::string p = path("ckpt.bin");
  const Checkpoint ckpt = small_checkpoint();
  // Seed a valid committed checkpoint, then make each stage fail in turn:
  // the failed save must return false AND leave the committed file intact
  // (atomicity: a failed save never tears the canonical path).
  ASSERT_TRUE(save_checkpoint(p, ckpt));
  const std::string committed = read_file(p);
  ASSERT_FALSE(committed.empty());
  for (const char* site :
       {fp::kCkptOpen, fp::kCkptWrite, fp::kCkptFsync, fp::kCkptRename,
        fp::kCkptDirFsync}) {
    reg().disarm_all();
    reg().arm(site, "*xeio");
    EXPECT_FALSE(save_checkpoint(p, ckpt)) << site;
    EXPECT_EQ(read_file(p), committed)
        << site << ": failed save must not disturb the committed file";
  }
  reg().disarm_all();
  EXPECT_TRUE(save_checkpoint(p, ckpt));
}

TEST_F(SelfHealingTest, KThrowAtCheckpointSitesIsAbortClass) {
  const std::string p = path("ckpt.bin");
  const Checkpoint ckpt = small_checkpoint();
  for (const char* site :
       {fp::kCkptOpen, fp::kCkptWrite, fp::kCkptFsync, fp::kCkptRename,
        fp::kCkptDirFsync}) {
    reg().disarm_all();
    reg().arm(site, "throw");
    EXPECT_THROW((void)save_checkpoint(p, ckpt), CheckpointError) << site;
  }
}

TEST_F(SelfHealingTest, MidFileReadErrorIsIoErrorNotCorrupt) {
  const std::string p = path("ckpt.bin");
  const Checkpoint ckpt = small_checkpoint();
  ASSERT_TRUE(save_checkpoint(p, ckpt));
  // A read failure on a PERFECTLY VALID file must report kIoError — the
  // misleading pre-fix verdict was "truncated/corrupt", which steered
  // operators toward deleting a good checkpoint.
  reg().arm(fp::kCkptRead, "eio");
  const LoadResult lr = load_checkpoint(p, ckpt.spec_digest);
  EXPECT_EQ(lr.status, LoadStatus::kIoError);
  EXPECT_NE(lr.error.find("I/O failure"), std::string::npos);
  // And once the disk behaves, the same file loads.
  const LoadResult ok = load_checkpoint(p, ckpt.spec_digest);
  EXPECT_EQ(ok.status, LoadStatus::kLoaded) << ok.error;
}

TEST_F(SelfHealingTest, LoadHealsEintrInPlace) {
  const std::string p = path("ckpt.bin");
  const Checkpoint ckpt = small_checkpoint();
  ASSERT_TRUE(save_checkpoint(p, ckpt));
  reg().arm(fp::kCkptRead, "3xeintr");
  const LoadResult lr = load_checkpoint(p, ckpt.spec_digest);
  EXPECT_EQ(lr.status, LoadStatus::kLoaded) << lr.error;
}

TEST_F(SelfHealingTest, QuarantineRoundTripsThroughTheCodec) {
  Checkpoint ckpt = small_checkpoint();
  ckpt.cells[0].quarantined.set(2);
  ckpt.cells[0].quarantine_reasons[2] = "injected transient shard failure";
  const std::string p = path("ckpt.bin");
  ASSERT_TRUE(save_checkpoint(p, ckpt));
  const LoadResult lr = load_checkpoint(p, ckpt.spec_digest);
  ASSERT_EQ(lr.status, LoadStatus::kLoaded) << lr.error;
  EXPECT_TRUE(lr.checkpoint.cells[0].quarantined.test(2));
  EXPECT_FALSE(lr.checkpoint.cells[0].quarantined.test(0));
  EXPECT_EQ(lr.checkpoint.cells[0].quarantine_reasons[2],
            "injected transient shard failure");
}

// --- Campaign under transient injection: byte-identity ---------------------

TEST_F(SelfHealingTest, CampaignHealsSinkAndCheckpointTransients) {
  constexpr std::int64_t kTrials = 150;
  constexpr std::uint64_t kSeed = 71;
  const auto [ref_frames, ref_digest] = reference(kTrials, kSeed);

  CampaignOptions opts;
  opts.checkpoint_path = path("ckpt.bin");
  opts.checkpoint_every_shards = 2;
  opts.retry = fast_retry();
  CampaignService<pl::PlProtocol> svc(make_cells(kTrials, kSeed), opts);
  ASSERT_EQ(svc.digest(), ref_digest);

  reg().arm(fp::kFileSinkWrite, "1xskip+eintr+1xskip+short:4+eintr");
  reg().arm(fp::kCkptWrite, "enospc");        // first periodic save retries
  reg().arm(fp::kCkptFsync, "eintr+eio");
  reg().arm(fp::kWorkerShard, "2xskip+2xeintr");  // one shard heals mid-way

  const std::string frames_path = path("frames.ndjson");
  {
    FileFrameSink sink(frames_path, fast_retry());
    const RunReport rep = svc.run(sink);
    EXPECT_EQ(rep.status, RunStatus::kComplete);
    EXPECT_EQ(rep.shards_quarantined, 0u);
  }
  EXPECT_EQ(read_file(frames_path), ref_frames)
      << "transient-failure retries must not change any output byte";
  EXPECT_GT(reg().fired_total(), 0u) << "the schedules must actually fire";
}

// --- Emitter poisoning sweep (satellite 4) ---------------------------------

TEST_F(SelfHealingTest, SinkFailureAtEveryCursorPositionUnwindsAndResumes) {
  constexpr std::int64_t kTrials = 150;
  constexpr std::uint64_t kSeed = 72;
  const auto [ref_frames, ref_digest] = reference(kTrials, kSeed);

  // Count the frames of the fault-free stream (one NDJSON line per shard).
  std::uint64_t n_frames = 0;
  for (const char c : ref_frames) n_frames += c == '\n' ? 1 : 0;
  ASSERT_GE(n_frames, 4u);

  for (std::uint64_t pos = 0; pos < n_frames; ++pos) {
    SCOPED_TRACE("cursor position " + std::to_string(pos));
    const std::string tag = std::to_string(pos);
    const std::string ckpt_path = path("ckpt_" + tag);
    const std::string frames_path = path("frames_" + tag);

    CampaignOptions opts;
    opts.checkpoint_path = ckpt_path;
    opts.checkpoint_every_shards = 2;
    opts.retry = fast_retry();

    // Crash leg: the sink write for emission-cursor position `pos` throws
    // non-transiently. The emitter poisons, EVERY worker unwinds, and the
    // pool rethrows CheckpointError out of run().
    reg().disarm_all();
    if (pos > 0)
      reg().arm(fp::kFileSinkWrite, std::to_string(pos) + "xskip+throw");
    else
      reg().arm(fp::kFileSinkWrite, "throw");
    {
      CampaignService<pl::PlProtocol> svc(make_cells(kTrials, kSeed), opts);
      FileFrameSink sink(frames_path, fast_retry());
      EXPECT_THROW((void)svc.run(sink), CheckpointError);
    }

    // Recovery leg: fresh service instance (simulated process restart),
    // failpoints disarmed — must resume from the checkpoint and finish
    // byte-identically: no frame lost, none emitted twice.
    reg().disarm_all();
    CampaignService<pl::PlProtocol> svc(make_cells(kTrials, kSeed), opts);
    FileFrameSink sink(frames_path, fast_retry());
    const RunReport rep = svc.run(sink);
    EXPECT_EQ(rep.status, RunStatus::kComplete);
    EXPECT_EQ(read_file(frames_path), ref_frames);
  }
}

// --- Shard quarantine: graceful degradation --------------------------------

TEST_F(SelfHealingTest, PersistentlyFailingShardIsQuarantinedNotFatal) {
  constexpr std::int64_t kTrials = 150;
  constexpr std::uint64_t kSeed = 73;
  const auto [ref_frames, ref_digest] = reference(kTrials, kSeed);

  CampaignOptions opts;
  opts.checkpoint_path = path("ckpt.bin");
  opts.threads = 1;  // deterministic hit order: shard k = hits 3k+1..3k+3
  opts.shard_max_attempts = 3;
  opts.retry = fast_retry();

  // Shard 0 succeeds (1 hit), shard 1 fails all 3 attempts -> quarantined,
  // the rest of the campaign completes.
  reg().arm(fp::kWorkerShard, "1xskip+3xeintr");
  CampaignService<pl::PlProtocol> svc(make_cells(kTrials, kSeed), opts);
  const std::string frames_path = path("frames.ndjson");
  std::uint64_t total_shards = 0;
  {
    FileFrameSink sink(frames_path, fast_retry());
    const RunReport rep = svc.run(sink);
    total_shards = rep.shards_total;
    EXPECT_EQ(rep.status, RunStatus::kDegraded);
    EXPECT_EQ(rep.shards_quarantined, 1u);
    EXPECT_EQ(rep.shards_done, total_shards - 1);
  }
  const auto report = svc.quarantine_report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(std::get<0>(report[0]), 0u);  // cell 0
  EXPECT_EQ(std::get<1>(report[0]), 1u);  // shard 1
  EXPECT_NE(std::get<2>(report[0]).find("transient"), std::string::npos);

  // Degraded artifacts: results refused; the surviving frame stream is the
  // fault-free stream minus exactly the quarantined shard's line.
  EXPECT_THROW((void)svc.results(), CheckpointError);
  const std::string degraded = read_file(frames_path);
  std::vector<std::string> ref_lines;
  std::size_t at = 0;
  while (at < ref_frames.size()) {
    const std::size_t nl = ref_frames.find('\n', at);
    ref_lines.push_back(ref_frames.substr(at, nl - at + 1));
    at = nl + 1;
  }
  std::string expect;
  for (std::size_t i = 0; i < ref_lines.size(); ++i)
    if (i != 1) expect += ref_lines[i];
  EXPECT_EQ(degraded, expect);

  // Resume leg: a fresh instance sees the quarantine from the checkpoint
  // (bitmap + reason survive the round trip), does NOT re-run the shard
  // (no failpoints armed — a re-run would succeed and flip the verdict),
  // and still reports degraded.
  reg().disarm_all();
  CampaignService<pl::PlProtocol> svc2(make_cells(kTrials, kSeed), opts);
  FileFrameSink sink2(frames_path, fast_retry());
  const RunReport rep2 = svc2.run(sink2);
  EXPECT_EQ(rep2.status, RunStatus::kDegraded);
  EXPECT_EQ(rep2.shards_run, 0u);
  EXPECT_EQ(rep2.shards_quarantined, 1u);
  const auto report2 = svc2.quarantine_report();
  ASSERT_EQ(report2.size(), 1u);
  EXPECT_EQ(std::get<2>(report2[0]), std::get<2>(report[0]));
  EXPECT_EQ(read_file(frames_path), expect);
}

TEST_F(SelfHealingTest, TransientShardErrorBelowTheLimitHealsCompletely) {
  constexpr std::int64_t kTrials = 150;
  constexpr std::uint64_t kSeed = 74;
  const auto [ref_frames, ref_digest] = reference(kTrials, kSeed);

  CampaignOptions opts;
  opts.threads = 2;
  opts.shard_max_attempts = 3;
  opts.retry = fast_retry();
  // Every shard's FIRST attempt fails; the retry heals each one. The
  // campaign must complete with zero quarantine and byte-identical frames
  // at a parallel thread count.
  reg().arm(fp::kWorkerShard, "p1000@1xeintr");
  CampaignService<pl::PlProtocol> svc(make_cells(kTrials, kSeed), opts);
  MemoryFrameSink sink;
  const RunReport rep = svc.run(sink);
  // p1000 fires on every attempt — including retries — so every shard
  // exhausts its attempts and quarantines. That proves the forever case;
  // the heal case needs the fault to clear, which `NxX` schedules give:
  EXPECT_EQ(rep.status, RunStatus::kDegraded);
  EXPECT_EQ(rep.shards_quarantined, rep.shards_total);

  reg().disarm_all();
  // Heal case: exactly the first 3 attempts process-wide fail (one shard
  // absorbs 1-3 of them depending on interleaving; all heal).
  reg().arm(fp::kWorkerShard, "2xeintr");
  CampaignService<pl::PlProtocol> svc2(make_cells(kTrials, kSeed), opts);
  MemoryFrameSink sink2;
  const RunReport rep2 = svc2.run(sink2);
  EXPECT_EQ(rep2.status, RunStatus::kComplete);
  EXPECT_EQ(rep2.shards_quarantined, 0u);
  EXPECT_EQ(sink2.str(), ref_frames);
  (void)svc2.results();  // must not throw
}

TEST_F(SelfHealingTest, WorkerThrowClassAbortsTheCampaign) {
  CampaignOptions opts;
  opts.retry = fast_retry();
  reg().arm(fp::kWorkerShard, "throw");
  CampaignService<pl::PlProtocol> svc(make_cells(150, 75), opts);
  MemoryFrameSink sink;
  EXPECT_THROW((void)svc.run(sink), CheckpointError);
}

}  // namespace
}  // namespace ppsim::service
