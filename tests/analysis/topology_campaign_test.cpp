// Scheduler-fault models (omission + biased arc draws) and non-ring
// campaigns: determinism contracts first — same seed ⇒ bit-identical
// trajectories, standalone Runner ⇒ ensemble ring bit-identity, thread-count
// invariance of faulted campaigns — then semantic sanity (loss_p = 1 freezes
// state while steps advance; a zero-weight arc never fires), then full
// recovery campaigns through measure_recovery / run_campaign off the ring.
#include "analysis/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "analysis/adversary.hpp"
#include "core/ensemble.hpp"
#include "core/runner.hpp"
#include "core/topology.hpp"
#include "pl/adversary.hpp"
#include "pl/protocol.hpp"
#include "verification/toys.hpp"

namespace ppsim::analysis {
namespace {

using verification::TokenMergeModel;

template <typename P, typename Topo>
void expect_same_config(const core::Runner<P, Topo>& a,
                        const core::Runner<P, Topo>& b) {
  ASSERT_EQ(a.steps(), b.steps());
  const auto sa = a.agents();
  const auto sb = b.agents();
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_TRUE(sa[i] == sb[i]) << "agent " << i;
}

core::SchedulerFaults lossy_biased(double loss_p, int arcs) {
  core::SchedulerFaults f;
  f.loss_p = loss_p;
  f.arc_weights.resize(static_cast<std::size_t>(arcs));
  for (int a = 0; a < arcs; ++a)
    f.arc_weights[static_cast<std::size_t>(a)] =
        a % 4 == 0 ? 0.0 : 1.0 + static_cast<double>(a % 3);
  return f;
}

TEST(SchedulerFaults, SameSeedSameTrajectory) {
  const auto p = pl::PlParams::make(12, 4);
  core::Xoshiro256pp cfg_rng(3);
  const auto init = pl::random_config(p, cfg_rng);
  const core::LineTopology topo(p.n);
  const auto faults =
      lossy_biased(0.3, topo.arc_count(pl::PlProtocol::directed));

  core::Runner<pl::PlProtocol, core::LineTopology> r1(p, init, 42);
  core::Runner<pl::PlProtocol, core::LineTopology> r2(p, init, 42);
  r1.set_scheduler_faults(faults);
  r2.set_scheduler_faults(faults);
  r1.run(5000);
  // Chunked differently: trajectories must not depend on batching.
  for (int k = 0; k < 10; ++k) r2.run(500);
  expect_same_config(r1, r2);
}

TEST(SchedulerFaults, FullLossFreezesStateButAdvancesClock) {
  const auto p = pl::PlParams::make(8, 4);
  core::Xoshiro256pp cfg_rng(5);
  const auto init = pl::random_config(p, cfg_rng);
  core::SchedulerFaults faults;
  faults.loss_p = 1.0;
  core::Runner<pl::PlProtocol, core::CliqueTopology> runner(p, init, 9);
  runner.set_scheduler_faults(faults);
  runner.run(1000);
  EXPECT_EQ(runner.steps(), 1000u);  // lost draws still count as steps
  const auto got = runner.agents();
  for (std::size_t i = 0; i < init.size(); ++i)
    EXPECT_TRUE(got[i] == init[i]) << "agent " << i << " mutated under p=1";
}

TEST(SchedulerFaults, ZeroWeightArcNeverFires) {
  // Line of 3 with bias {1, 0}: arc 1 = (1, 2) never drawn, so the token
  // can reach agent 1 but never agent 2.
  const TokenMergeModel::Params p{3};
  std::vector<TokenMergeModel::State> init(3);
  init[0].tok = 1;
  core::SchedulerFaults faults;
  faults.arc_weights = {1.0, 0.0};
  core::Runner<TokenMergeModel, core::LineTopology> runner(p, init, 11);
  runner.set_scheduler_faults(faults);
  for (int k = 0; k < 64; ++k) {
    runner.run(16);
    EXPECT_EQ(runner.agents()[2].tok, 0) << "zero-weight arc fired";
  }
  EXPECT_EQ(runner.agents()[1].tok, 1);  // ... but arc 0 did its job
}

TEST(SchedulerFaults, EnsembleRingBitIdenticalToRunnerUnderFaults) {
  // Per-ring loss streams re-derive from each ring's own seed, so ring r
  // under faults is the standalone Runner with the same seed, bit for bit.
  const auto p = pl::PlParams::make(10, 4);
  const core::CliqueTopology topo(p.n);
  const auto faults =
      lossy_biased(0.2, topo.arc_count(pl::PlProtocol::directed));

  core::EnsembleRunner<pl::PlProtocol, core::CliqueTopology> ensemble(p, 3);
  std::vector<std::vector<pl::PlState>> inits;
  for (int r = 0; r < 3; ++r) {
    core::Xoshiro256pp cfg_rng(100 + static_cast<std::uint64_t>(r));
    inits.push_back(pl::random_config(p, cfg_rng));
    ensemble.add_ring(inits.back(), 500 + static_cast<std::uint64_t>(r));
  }
  ensemble.set_scheduler_faults(faults);
  ensemble.run(4000);
  for (int r = 0; r < 3; ++r) {
    core::Runner<pl::PlProtocol, core::CliqueTopology> solo(
        p, inits[static_cast<std::size_t>(r)],
        500 + static_cast<std::uint64_t>(r));
    solo.set_scheduler_faults(faults);
    solo.run(4000);
    ASSERT_EQ(ensemble.steps(r), solo.steps());
    const auto a = ensemble.agents(r);
    const auto b = solo.agents();
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_TRUE(a[i] == b[i]) << "ring " << r << " agent " << i;
  }
}

// ---- recovery campaigns off the ring -------------------------------------

/// Token-merge recovery scenario on a line: tokens walk right and merge, so
/// "exactly one token" is reached from any >= 1-token configuration; faults
/// drop extra tokens in; recovery = re-merging down to one.
ScenarioSpec<TokenMergeModel, core::LineTopology> toy_line_scenario(
    TrialPlan plan, double loss_p) {
  ScenarioSpec<TokenMergeModel, core::LineTopology> spec;
  spec.name = "toy_line";
  spec.initial = [](const TokenMergeModel::Params& p,
                    core::Xoshiro256pp& rng) {
    std::vector<TokenMergeModel::State> c(static_cast<std::size_t>(p.n));
    for (auto& s : c) s.tok = static_cast<int>(rng.bounded(2));
    c[0].tok = 1;  // at least one token or the safe set is unreachable
    return c;
  };
  spec.schedule = burst_schedule(2);
  spec.inject = [](core::RingView<TokenMergeModel, core::LineTopology> r,
                   int faults, core::Xoshiro256pp& rng) {
    for (int f = 0; f < faults; ++f) {
      const int idx = static_cast<int>(
          rng.bounded(static_cast<std::uint64_t>(r.n())));
      r.set_agent(idx, TokenMergeModel::State{1});
    }
  };
  spec.recovered = [](std::span<const TokenMergeModel::State> c,
                      const TokenMergeModel::Params&) {
    return TokenMergeModel::count_tokens(c) == 1;
  };
  spec.plan = plan;
  spec.sched_faults.loss_p = loss_p;
  return spec;
}

TEST(TopologyCampaign, LineRecoveryUnderOmissionThreadInvariant) {
  TrialPlan plan;
  plan.trials = 12;
  plan.max_steps = 200'000;
  plan.seed_base = 5;
  plan.tag = 77;
  plan.check_every = 16;
  const TokenMergeModel::Params p{8};

  plan.threads = 1;
  const auto serial = measure_recovery<TokenMergeModel, core::LineTopology>(
      p, toy_line_scenario(plan, 0.2));
  EXPECT_EQ(serial.trials, 12);
  EXPECT_EQ(serial.stabilization_failures, 0);
  EXPECT_EQ(serial.recovery_failures, 0);

  for (const int threads : {2, 4}) {
    plan.threads = threads;
    const auto par = measure_recovery<TokenMergeModel, core::LineTopology>(
        p, toy_line_scenario(plan, 0.2));
    EXPECT_EQ(par.raw, serial.raw) << "threads=" << threads;
    EXPECT_EQ(par.stabilization_failures, serial.stabilization_failures);
    EXPECT_EQ(par.recovery_failures, serial.recovery_failures);
  }
}

TEST(TopologyCampaign, EnsembleShardsMatchPerTrialReferenceUnderFaults) {
  // measure_recovery (ensemble-sharded) against the standalone-Runner
  // reference path, trial for trial, with omission faults active.
  TrialPlan plan;
  plan.trials = 8;
  plan.max_steps = 200'000;
  plan.seed_base = 21;
  plan.tag = 99;
  plan.check_every = 16;
  plan.threads = 2;
  const TokenMergeModel::Params p{8};
  const auto spec = toy_line_scenario(plan, 0.25);

  const auto stats =
      measure_recovery<TokenMergeModel, core::LineTopology>(p, spec);
  std::vector<RecoveryTrial> reference;
  for (int t = 0; t < plan.trials; ++t)
    reference.push_back(detail::recovery_trial<TokenMergeModel,
                                               core::LineTopology>(
        p, spec, static_cast<std::uint64_t>(t)));
  const auto folded = detail::fold_recovery(reference);
  EXPECT_EQ(stats.raw, folded.raw);
  EXPECT_EQ(stats.stabilization_failures, folded.stabilization_failures);
  EXPECT_EQ(stats.recovery_failures, folded.recovery_failures);
}

TEST(TopologyCampaign, RunCampaignAcrossTopologyFaultCells) {
  // run_campaign end-to-end on a non-ring topology with both fault models
  // mixed: cells stay decorrelated (distinct tags) and reproducible.
  TrialPlan plan;
  plan.trials = 6;
  plan.max_steps = 150'000;
  plan.seed_base = 33;
  plan.check_every = 16;
  plan.threads = 2;
  const TokenMergeModel::Params p{6};

  std::vector<std::pair<TokenMergeModel::Params,
                        ScenarioSpec<TokenMergeModel, core::LineTopology>>>
      cells;
  for (const double loss : {0.0, 0.2}) {
    plan.tag = campaign_tag(loss > 0.0 ? 2 : 1, p.n, 2);
    auto spec = toy_line_scenario(plan, loss);
    // The second cell additionally biases the draw (never disabling an
    // arc entirely, so the safe set stays reachable).
    if (loss > 0.0) {
      const core::LineTopology topo(p.n);
      const int arcs = topo.arc_count(TokenMergeModel::directed);
      spec.sched_faults.arc_weights.assign(static_cast<std::size_t>(arcs),
                                           1.0);
      spec.sched_faults.arc_weights[0] = 3.0;
    }
    cells.emplace_back(p, std::move(spec));
  }
  const auto results =
      run_campaign<TokenMergeModel, core::LineTopology>(
          std::span<const std::pair<
              TokenMergeModel::Params,
              ScenarioSpec<TokenMergeModel, core::LineTopology>>>(cells));
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.stats.trials, plan.trials);
    EXPECT_EQ(r.stats.stabilization_failures, 0);
    EXPECT_EQ(r.stats.recovery_failures, 0);
    EXPECT_EQ(r.faults, 2);
  }
}

TEST(TopologyCampaign, RingDefaultUnchangedByFaultMember) {
  // A default-constructed sched_faults is inactive: the existing ring
  // campaign path must produce the exact same numbers as a spec without
  // the member ever touched (guard against accidental activation).
  const auto p = pl::PlParams::make(16, 4);
  TrialPlan plan;
  plan.trials = 4;
  plan.max_steps = 400'000;
  plan.seed_base = 9;
  plan.tag = 1234;
  plan.threads = 1;
  const auto spec = make_recovery_scenario<pl::PlProtocol>(
      "burst", burst_schedule(2), plan);
  EXPECT_FALSE(spec.sched_faults.active());
  const auto a = measure_recovery<pl::PlProtocol>(p, spec);
  const auto b = measure_recovery<pl::PlProtocol>(p, spec);
  EXPECT_EQ(a.raw, b.raw);
  EXPECT_EQ(a.trials, 4);
}

}  // namespace
}  // namespace ppsim::analysis
