// Scenario campaign engine: determinism across thread counts, recovery
// semantics of the phase diagram (stabilize -> inject -> recover), the
// protocol-agnostic adversary layer, and the campaign driver.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "analysis/adversary.hpp"
#include "analysis/scenario.hpp"
#include "pl/params.hpp"
#include "pl/protocol.hpp"

namespace ppsim::analysis {
namespace {

std::uint64_t budget(int n, int kappa_max) {
  const auto n_u = static_cast<std::uint64_t>(n);
  return 600ULL * n_u * n_u * static_cast<std::uint64_t>(kappa_max) +
         2'000'000;
}

TEST(Scenario, ScheduleHelpers) {
  const auto burst = burst_schedule(5);
  ASSERT_EQ(burst.size(), 1u);
  EXPECT_EQ(burst[0].at_step, 0u);
  EXPECT_EQ(burst[0].faults, 5);
  EXPECT_EQ(total_faults(burst), 5);

  const auto storm = storm_schedule(3, 100);
  ASSERT_EQ(storm.size(), 3u);
  EXPECT_EQ(storm[0].at_step, 0u);
  EXPECT_EQ(storm[1].at_step, 100u);
  EXPECT_EQ(storm[2].at_step, 200u);
  EXPECT_EQ(total_faults(storm), 3);
}

TEST(Scenario, MeasureRecoveryBitIdenticalAcrossThreads) {
  // The acceptance bar inherited from the parallel experiment engine: the
  // raw recovery-time vector (trial order included) must be identical for
  // every thread count.
  const auto p = pl::PlParams::make(12, 4);
  auto make = [&](int threads) {
    TrialPlan plan;
    plan.trials = 24;
    plan.max_steps = budget(p.n, p.kappa_max);
    plan.seed_base = 5;
    plan.tag = campaign_tag(1, p.n, 2);
    plan.threads = threads;
    return make_recovery_scenario<pl::PlProtocol>(
        "burst", burst_schedule(2), plan);
  };
  const auto serial = measure_recovery<pl::PlProtocol>(p, make(1));
  ASSERT_EQ(serial.trials, 24);
  EXPECT_EQ(serial.stabilization_failures, 0);
  EXPECT_EQ(serial.recovery_failures, 0);
  for (int threads : {2, 3, 4, 7}) {
    const auto par = measure_recovery<pl::PlProtocol>(p, make(threads));
    EXPECT_EQ(par.raw, serial.raw) << "threads=" << threads;
    EXPECT_EQ(par.stabilization_failures, serial.stabilization_failures);
    EXPECT_EQ(par.recovery_failures, serial.recovery_failures);
    EXPECT_DOUBLE_EQ(par.recovery.median, serial.recovery.median);
  }
}

TEST(Scenario, SeedsDecorrelateTrials) {
  const auto p = pl::PlParams::make(12, 4);
  TrialPlan plan;
  plan.trials = 8;
  plan.max_steps = budget(p.n, p.kappa_max);
  plan.seed_base = 6;
  plan.tag = campaign_tag(2, p.n, 3);
  const auto stats = measure_recovery<pl::PlProtocol>(
      p, make_recovery_scenario<pl::PlProtocol>("burst", burst_schedule(3),
                                                plan));
  ASSERT_EQ(stats.raw.size(), 8u);
  std::unordered_set<std::uint64_t> distinct(stats.raw.begin(),
                                             stats.raw.end());
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Scenario, EmptyScheduleRecoversInstantly) {
  // No injections: the recovery phase starts in the safe set, so every
  // recovery time is 0 (run_until checks the predicate before stepping).
  const auto p = pl::PlParams::make(8, 2);
  TrialPlan plan;
  plan.trials = 4;
  plan.max_steps = budget(p.n, p.kappa_max);
  plan.seed_base = 7;
  plan.tag = campaign_tag(3, p.n, 0);
  const auto stats = measure_recovery<pl::PlProtocol>(
      p, make_recovery_scenario<pl::PlProtocol>("noop", {}, plan));
  ASSERT_EQ(stats.raw.size(), 4u);
  for (std::uint64_t r : stats.raw) EXPECT_EQ(r, 0u);
  EXPECT_EQ(stats.recovery.median, 0.0);
}

TEST(Scenario, UnsortedSchedulesAreNormalizedToStepOrder) {
  // The schedule contract (executed in at_step order) is enforced by a
  // stable per-trial sort, not just documented: declaration order must not
  // change the measurement.
  const auto p = pl::PlParams::make(8, 2);
  auto run = [&](std::vector<FaultEvent> schedule) {
    TrialPlan plan;
    plan.trials = 6;
    plan.max_steps = budget(p.n, p.kappa_max);
    plan.seed_base = 12;
    plan.tag = campaign_tag(10, p.n, 2);
    return measure_recovery<pl::PlProtocol>(
        p, make_recovery_scenario<pl::PlProtocol>("burst", std::move(schedule),
                                                  plan));
  };
  const auto sorted = run({FaultEvent{0, 1}, FaultEvent{16, 1}});
  const auto unsorted = run({FaultEvent{16, 1}, FaultEvent{0, 1}});
  EXPECT_EQ(sorted.raw, unsorted.raw);
  EXPECT_EQ(sorted.recovery_failures, unsorted.recovery_failures);
}

TEST(Scenario, StabilizationFailuresAreNotRecoveryFailures) {
  // A random initial configuration cannot reach S_PL in 10 steps: every
  // trial must be a *stabilization* failure and no recovery is attempted.
  const auto p = pl::PlParams::make(16, 4);
  ScenarioSpec<pl::PlProtocol> spec;
  spec.name = "hopeless";
  spec.initial = [](const pl::PlParams& pp, core::Xoshiro256pp& rng) {
    return pl::random_config(pp, rng);
  };
  spec.schedule = burst_schedule(1);
  spec.inject = [](core::RingView<pl::PlProtocol> r, int faults,
                   core::Xoshiro256pp& rng) {
    inject_random_faults(r, faults, rng);
  };
  spec.recovered = [](std::span<const pl::PlState> c, const pl::PlParams& pp) {
    return pl::is_safe(c, pp);
  };
  spec.plan.trials = 4;
  spec.plan.max_steps = 10;
  spec.plan.seed_base = 8;
  spec.plan.tag = campaign_tag(4, p.n, 1);
  const auto stats = measure_recovery<pl::PlProtocol>(p, spec);
  EXPECT_EQ(stats.stabilization_failures, 4);
  EXPECT_EQ(stats.recovery_failures, 0);
  EXPECT_TRUE(stats.raw.empty());
}

/// All four covered protocols heal from a mid-run fault burst.
template <typename P>
void expect_heals(const typename P::Params& params, std::uint64_t max_steps,
                  std::uint64_t tag_base) {
  TrialPlan plan;
  plan.trials = 5;
  plan.max_steps = max_steps;
  plan.seed_base = 9;
  plan.tag = campaign_tag(tag_base, params.n, 3);
  const auto stats = measure_recovery<P>(
      params, make_recovery_scenario<P>("burst", burst_schedule(3), plan));
  EXPECT_EQ(stats.stabilization_failures, 0);
  EXPECT_EQ(stats.recovery_failures, 0);
  EXPECT_EQ(stats.raw.size(), 5u);
}

TEST(Scenario, PlHealsFromBurst) {
  const auto p = pl::PlParams::make(16, 4);
  expect_heals<pl::PlProtocol>(p, budget(p.n, p.kappa_max), 5);
}

TEST(Scenario, FischerJiangHealsFromBurst) {
  expect_heals<baselines::FischerJiang>(baselines::FjParams::make(16),
                                        50'000'000, 6);
}

TEST(Scenario, ModkHealsFromBurst) {
  expect_heals<baselines::Modk>(baselines::ModkParams::make(15, 2),
                                50'000'000, 7);
}

TEST(Scenario, Yokota28HealsFromBurst) {
  expect_heals<baselines::Yokota28>(baselines::Y28Params::make(16),
                                    50'000'000, 8);
}

TEST(Scenario, RunCampaignExecutesEveryCell) {
  const auto p = pl::PlParams::make(8, 2);
  std::vector<std::pair<pl::PlParams, ScenarioSpec<pl::PlProtocol>>> cells;
  for (int f : {1, 2}) {
    TrialPlan plan;
    plan.trials = 3;
    plan.max_steps = budget(p.n, p.kappa_max);
    plan.seed_base = 10;
    plan.tag = campaign_tag(9, p.n, f);
    cells.emplace_back(p, make_recovery_scenario<pl::PlProtocol>(
                              "burst", burst_schedule(f), plan));
  }
  const auto results = run_campaign<pl::PlProtocol>(
      std::span<const std::pair<pl::PlParams, ScenarioSpec<pl::PlProtocol>>>(
          cells));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].faults, 1);
  EXPECT_EQ(results[1].faults, 2);
  for (const auto& r : results) {
    EXPECT_EQ(r.scenario, "burst");
    EXPECT_EQ(r.n, p.n);
    EXPECT_EQ(r.stats.trials, 3);
    EXPECT_EQ(r.stats.recovery_failures, 0);
  }
}

/// Every named family of every covered protocol generates an in-domain,
/// runnable configuration (the sanitizer job turns domain breakage into a
/// hard failure).
template <typename P>
void expect_families_runnable(const typename P::Params& params) {
  const auto families = Adversary<P>::families();
  ASSERT_FALSE(families.empty());
  std::unordered_set<std::string> names;
  for (const auto& fam : families) {
    EXPECT_TRUE(names.insert(fam.name).second)
        << "duplicate family " << fam.name;
    core::Xoshiro256pp rng(3);
    auto config = fam.make(params, rng);
    ASSERT_EQ(static_cast<int>(config.size()), params.n) << fam.name;
    core::Runner<P> runner(params, std::move(config), 4);
    runner.run(2'000);
  }
}

TEST(Adversary, FamiliesRunnableForAllProtocols) {
  expect_families_runnable<pl::PlProtocol>(pl::PlParams::make(12, 4));
  expect_families_runnable<baselines::FischerJiang>(
      baselines::FjParams::make(12));
  expect_families_runnable<baselines::Modk>(baselines::ModkParams::make(13, 2));
  expect_families_runnable<baselines::Yokota28>(baselines::Y28Params::make(12));
}

/// The safe_config of each adversary must satisfy its recovered predicate
/// (otherwise recovery scenarios would never stabilize instantly).
template <typename P>
void expect_safe_config_recovered(const typename P::Params& params) {
  core::Xoshiro256pp rng(11);
  const auto c = Adversary<P>::safe_config(params, rng);
  EXPECT_TRUE(Adversary<P>::recovered(
      std::span<const typename P::State>(c), params));
}

TEST(Adversary, SafeConfigsSatisfySafePredicates) {
  expect_safe_config_recovered<pl::PlProtocol>(pl::PlParams::make(12, 4));
  expect_safe_config_recovered<baselines::FischerJiang>(
      baselines::FjParams::make(12));
  expect_safe_config_recovered<baselines::Modk>(
      baselines::ModkParams::make(13, 2));
  expect_safe_config_recovered<baselines::Yokota28>(
      baselines::Y28Params::make(12));
}

TEST(Adversary, CorruptConfigClampsAndPreservesSize) {
  const auto p = baselines::Y28Params::make(8);
  core::Xoshiro256pp rng(12);
  auto config = baselines::y28_safe_config(p);
  corrupt_config<baselines::Yokota28>(config, p, p.n + 100, rng);
  EXPECT_EQ(static_cast<int>(config.size()), p.n);
  auto untouched = baselines::y28_safe_config(p);
  corrupt_config<baselines::Yokota28>(untouched, p, 0, rng);
  EXPECT_EQ(untouched, baselines::y28_safe_config(p));
}

TEST(Adversary, InjectRandomFaultsKeepsCensusConsistent) {
  // After a fault storm through set_agent, the incremental leader census
  // must agree with a fresh full recount.
  const auto p = pl::PlParams::make(16, 4);
  core::Runner<pl::PlProtocol> runner(p, pl::make_safe_config(p), 13);
  core::Xoshiro256pp rng(14);
  inject_random_faults(runner, 8, rng);
  core::Runner<pl::PlProtocol> fresh(
      p, std::vector<pl::PlState>(runner.agents().begin(),
                                  runner.agents().end()),
      1);
  EXPECT_EQ(runner.leader_count(), fresh.leader_count());
}

}  // namespace
}  // namespace ppsim::analysis
