// Analysis layer: experiment driver, scaling fits, state accounting and the
// injective state packing used by the empirical state-usage audit.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "analysis/experiment.hpp"
#include "analysis/scaling.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::analysis {
namespace {

TEST(Experiment, MeasureConvergenceCollectsAllTrials) {
  const auto p = pl::PlParams::make(8, 2);
  const auto stats = measure_convergence<pl::PlProtocol>(
      p, [&](core::Xoshiro256pp&) { return pl::make_fresh_config(p); },
      pl::SafePredicate{}, 6, 50'000'000ULL, 1, 1);
  EXPECT_EQ(stats.trials, 6);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.raw.size(), 6u);
  EXPECT_GT(stats.steps.median, 0.0);
}

TEST(Experiment, FailuresCountedWhenBudgetTooSmall) {
  const auto p = pl::PlParams::make(16, 4);
  core::Xoshiro256pp seed_rng(9);
  const auto stats = measure_convergence<pl::PlProtocol>(
      p, [&](core::Xoshiro256pp& rng) { return pl::random_config(p, rng); },
      pl::SafePredicate{}, 4, /*max_steps=*/10, 2, 2);
  EXPECT_EQ(stats.failures, 4);
  EXPECT_TRUE(stats.raw.empty());
}

TEST(Experiment, SeedsDecorrelateTrials) {
  const auto p = pl::PlParams::make(12, 4);
  const auto stats = measure_convergence<pl::PlProtocol>(
      p, [&](core::Xoshiro256pp& rng) { return pl::random_config(p, rng); },
      pl::SafePredicate{}, 8, 100'000'000ULL, 3, 3);
  ASSERT_EQ(stats.raw.size(), 8u);
  std::unordered_set<std::uint64_t> distinct(stats.raw.begin(),
                                             stats.raw.end());
  EXPECT_GT(distinct.size(), 1u);  // identical seeds would all coincide
}

TEST(Experiment, ParallelMatchesSerialBitIdentically) {
  // The acceptance bar for the trial-parallel engine: identical raw
  // hitting-time vectors (order included) for every thread count, on >= 100
  // trials. n is kept small so the whole matrix stays fast.
  const auto p = pl::PlParams::make(8, 2);
  auto gen = [&](core::Xoshiro256pp& rng) { return pl::random_config(p, rng); };
  const int trials = 120;
  const auto serial = measure_convergence<pl::PlProtocol>(
      p, gen, pl::SafePredicate{}, trials, 50'000'000ULL, 11, 5);
  ASSERT_EQ(serial.trials, trials);
  for (int threads : {1, 2, 3, 4, 7}) {
    const auto par = measure_convergence_parallel<pl::PlProtocol>(
        p, gen, pl::SafePredicate{}, trials, 50'000'000ULL, 11, 5, threads);
    EXPECT_EQ(par.trials, serial.trials) << "threads=" << threads;
    EXPECT_EQ(par.failures, serial.failures) << "threads=" << threads;
    EXPECT_EQ(par.raw, serial.raw) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(par.steps.mean, serial.steps.mean)
        << "threads=" << threads;
    EXPECT_DOUBLE_EQ(par.steps.median, serial.steps.median)
        << "threads=" << threads;
  }
}

TEST(Experiment, ParallelCountsFailures) {
  const auto p = pl::PlParams::make(16, 4);
  const auto stats = measure_convergence_parallel<pl::PlProtocol>(
      p, [&](core::Xoshiro256pp& rng) { return pl::random_config(p, rng); },
      pl::SafePredicate{}, 4, /*max_steps=*/10, 2, 2, /*threads=*/3);
  EXPECT_EQ(stats.failures, 4);
  EXPECT_TRUE(stats.raw.empty());
}

TEST(Experiment, ScalingSweepIsDeterministic) {
  const std::vector<int> ns = {4, 8};
  auto run_sweep = [&](int threads) {
    return measure_scaling_sweep<pl::PlProtocol>(
        ns, [](int n) { return pl::PlParams::make(n, 2); },
        [](const pl::PlParams& pp, core::Xoshiro256pp& rng) {
          return pl::random_config(pp, rng);
        },
        pl::SafePredicate{}, 5, /*seed_base=*/21, /*tag_base=*/3, threads);
  };
  const auto a = run_sweep(1);
  const auto b = run_sweep(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].stats.raw, b[i].stats.raw);
  }
}

TEST(Experiment, CheckEveryQuantizesHittingTimes) {
  // check_every is the predicate granularity: reported hitting times land on
  // multiples of it, for the serial and the parallel driver identically.
  const auto p = pl::PlParams::make(8, 2);
  auto gen = [&](core::Xoshiro256pp&) { return pl::make_fresh_config(p); };
  const std::uint64_t check_every = 1'000;
  const auto serial = measure_convergence<pl::PlProtocol>(
      p, gen, pl::SafePredicate{}, 6, 50'000'000ULL, 4, 4, check_every);
  ASSERT_EQ(serial.raw.size(), 6u);
  for (std::uint64_t h : serial.raw) EXPECT_EQ(h % check_every, 0u);
  const auto par = measure_convergence_parallel<pl::PlProtocol>(
      p, gen, pl::SafePredicate{}, 6, 50'000'000ULL, 4, 4, /*threads=*/3,
      check_every);
  EXPECT_EQ(par.raw, serial.raw);
}

TEST(Scaling, FitRecoversQuadratic) {
  std::vector<ScalingPoint> pts;
  for (int n : {8, 16, 32, 64}) {
    ScalingPoint pt;
    pt.n = n;
    pt.stats.raw = {static_cast<std::uint64_t>(5.0 * n * n)};
    pt.stats.steps = core::summarize_u64(pt.stats.raw);
    pts.push_back(pt);
  }
  const auto fit = fit_median_scaling(pts);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-6);
  EXPECT_NEAR(fit.constant, 5.0, 1e-3);
}

TEST(Scaling, Normalizations) {
  ScalingPoint pt;
  pt.n = 16;
  pt.stats.raw = {1024};
  pt.stats.steps = core::summarize_u64(pt.stats.raw);
  EXPECT_DOUBLE_EQ(normalized_n2(pt), 4.0);
  EXPECT_DOUBLE_EQ(normalized_n3(pt), 0.25);
  EXPECT_DOUBLE_EQ(normalized_n2logn(pt), 1.0);  // lg 16 = 4
}

TEST(Scaling, NormalizationsAreNaNWhenAllTrialsFailed) {
  // An all-failure point has no hitting times; its Summary median of 0 is an
  // artifact, and normalizing it used to print a plausible-looking 0 row.
  ScalingPoint pt;
  pt.n = 16;
  pt.stats.trials = 4;
  pt.stats.failures = 4;  // raw stays empty
  pt.stats.steps = core::summarize_u64(pt.stats.raw);
  EXPECT_TRUE(std::isnan(normalized_n2(pt)));
  EXPECT_TRUE(std::isnan(normalized_n3(pt)));
  EXPECT_TRUE(std::isnan(normalized_n2logn(pt)));
}

TEST(Scaling, FitSkipsAllFailureAndZeroMedianPoints) {
  std::vector<ScalingPoint> pts;
  for (int n : {8, 16, 32, 64}) {
    ScalingPoint pt;
    pt.n = n;
    pt.stats.raw = {static_cast<std::uint64_t>(5.0 * n * n)};
    pt.stats.steps = core::summarize_u64(pt.stats.raw);
    pts.push_back(pt);
  }
  ScalingPoint all_failed;
  all_failed.n = 128;
  all_failed.stats.trials = 3;
  all_failed.stats.failures = 3;
  pts.push_back(all_failed);
  ScalingPoint zero_median;  // pred held at step 0 for every trial
  zero_median.n = 256;
  zero_median.stats.raw = {0, 0, 0};
  zero_median.stats.steps = core::summarize_u64(zero_median.stats.raw);
  pts.push_back(zero_median);

  const auto fit = fit_median_scaling(pts);
  EXPECT_TRUE(fit.valid);
  EXPECT_EQ(fit.skipped, 2);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-6);

  // Only degenerate points left -> a clearly-marked invalid fit, not NaN
  // propagating silently out of a Release build.
  const std::vector<ScalingPoint> degenerate(pts.end() - 2, pts.end());
  const auto bad = fit_median_scaling(degenerate);
  EXPECT_FALSE(bad.valid);
  EXPECT_EQ(bad.skipped, 2);
  EXPECT_TRUE(std::isnan(bad.exponent));
}

TEST(StateCount, PlIsPolylog) {
  // The polylog signature: |Q| is polynomial in psi = Theta(log n), i.e.
  // log|Q| ~ 6 log psi + O(1). Fit |Q| against psi on a log-log axis: the
  // exponent must land near 6 (dist * tokens^2 * clock * hits * signalR).
  std::vector<double> psis, qs;
  for (int e : {8, 12, 16, 20, 24, 30}) {
    const auto p = pl::PlParams::make(1 << e, 32);
    psis.push_back(static_cast<double>(p.psi));
    qs.push_back(pl_state_count(p).states);
  }
  const auto fit = core::fit_power(psis, qs);
  EXPECT_GT(fit.exponent, 5.5);
  EXPECT_LT(fit.exponent, 6.5);
  EXPECT_GT(fit.r2, 0.999);
  // ... while yokota28's |Q| is linear in n.
  std::vector<double> ns2, qs2;
  for (int e : {8, 12, 16, 20, 24}) {
    ns2.push_back(std::pow(2.0, e));
    qs2.push_back(y28_state_count(1 << e).states);
  }
  const auto fit2 = core::fit_power(ns2, qs2);
  EXPECT_NEAR(fit2.exponent, 1.0, 0.05);
}

TEST(StateCount, ConstantBaselines) {
  EXPECT_DOUBLE_EQ(fj_state_count().states, 24.0);
  EXPECT_DOUBLE_EQ(modk_state_count(2).states, 48.0);
  EXPECT_DOUBLE_EQ(modk_state_count(3).states, 72.0);
}

TEST(StateCount, MatchesDeclaredDomainProduct) {
  const auto p = pl::PlParams::make(16, 4);  // psi 4, kappa 16
  const double token = 1 + (2 * 4 - 1) * 4;  // 29
  const double expect = 2 * 2 * 8 * 2 * token * token * 17 * 5 * 17 * 3 * 2 *
                        2;
  EXPECT_DOUBLE_EQ(pl_state_count(p).states, expect);
}

TEST(PackPlState, InjectiveOnRandomStates) {
  const auto p = pl::PlParams::make(64, 4);
  core::Xoshiro256pp rng(7);
  std::unordered_set<std::uint64_t> keys;
  std::vector<pl::PlState> states;
  for (int i = 0; i < 20000; ++i) {
    const auto s = pl::random_state(p, rng);
    const auto key = pack_pl_state(s, p);
    const auto [it, inserted] = keys.insert(key);
    if (!inserted) {
      // A repeated key must mean a repeated state (collisions forbidden).
      bool found_equal = false;
      for (const auto& old : states)
        if (old == s) found_equal = true;
      EXPECT_TRUE(found_equal) << "hash collision for distinct states";
    }
    states.push_back(s);
  }
  EXPECT_GT(keys.size(), 15000u);
}

TEST(PackPlState, BoundedByDeclaredCount) {
  const auto p = pl::PlParams::make(32, 4);
  core::Xoshiro256pp rng(13);
  const double declared = pl_state_count(p).states;
  for (int i = 0; i < 5000; ++i) {
    const auto s = pl::random_state(p, rng);
    EXPECT_LT(static_cast<double>(pack_pl_state(s, p)), declared);
  }
}

}  // namespace
}  // namespace ppsim::analysis
