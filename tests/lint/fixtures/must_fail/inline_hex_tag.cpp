// Fixture: inline numeric stream tags, both as a derivation argument and
// as the legacy XOR idiom. ppsim-lint-expect: inline-hex-tag
#include <cstdint>

namespace fake {
inline std::uint64_t stream_seed(std::uint64_t s, std::uint64_t t) {
  return s ^ t;
}
inline std::uint64_t derive_seed(std::uint64_t b, std::uint64_t t,
                                 std::uint64_t i) {
  return b + t + i;
}

inline std::uint64_t bad(std::uint64_t seed) {
  const auto a = stream_seed(seed, 0xC0FFEEULL);    // literal tag
  const auto b = derive_seed(seed, 0xD1FF, 3);      // literal tag
  const auto c = seed ^ 0xFA5EEDULL;                // pre-registry idiom
  return a + b + c;
}
}  // namespace fake
