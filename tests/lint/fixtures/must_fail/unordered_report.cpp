// Fixture: hash-order iteration feeding a report.
// ppsim-lint-expect: unordered-iteration
#include <cstdint>
#include <string>
#include <unordered_map>

namespace fake {
inline std::string report(
    const std::unordered_map<std::string, int>& results) {
  std::string out;
  for (const auto& [name, count] : results) {  // hash order into the report
    out += name + "=" + std::to_string(count) + "\n";
  }
  return out;
}
}  // namespace fake
