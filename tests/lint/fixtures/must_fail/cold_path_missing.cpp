// Fixture: a designated replay/fallback path without [[gnu::cold]] — and a
// registry entry whose function no longer exists (rename drift).
// ppsim-lint-expect: cold-path
// ppsim-lint-cold: census_replay_local
// ppsim-lint-cold: renamed_away_fallback

namespace fake {
inline void census_replay_local(int) {}  // missing [[gnu::cold]]
}  // namespace fake
