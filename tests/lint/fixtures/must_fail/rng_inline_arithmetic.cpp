// Fixture: RNG constructed with inline seed arithmetic — an unregistered
// stream. ppsim-lint-expect: rng-construction
#include <cstdint>

namespace fake {
struct Xoshiro256pp {
  explicit Xoshiro256pp(std::uint64_t = 0) {}
};

inline void bad(std::uint64_t seed) {
  Xoshiro256pp offset_rng(seed + 1);  // decorrelation by +1 is not blessed
  Xoshiro256pp literal_rng(12345);    // literal seed: not derived at all
  (void)offset_rng;
  (void)literal_rng;
}
}  // namespace fake
