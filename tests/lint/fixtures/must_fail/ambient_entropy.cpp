// Fixture: every banned ambient-entropy source.
// ppsim-lint-expect: banned-entropy
#include <cstdlib>
#include <ctime>
#include <random>

namespace fake {
inline unsigned bad_seed() {
  std::random_device rd;                       // banned
  const auto t = time(nullptr);                // banned
  std::srand(static_cast<unsigned>(t));        // banned
  return rd() + static_cast<unsigned>(std::rand());  // banned
}
}  // namespace fake
