// Fixture: a justified suppression silences exactly its rule. Must lint
// clean — the unordered iteration below feeds a commutative fold, so hash
// order cannot change the result.
#include <unordered_set>

namespace fake {

inline int population(const std::unordered_set<int>& seen) {
  int count = 0;
  // Order-insensitive accumulation. ppsim-lint: allow(unordered-iteration)
  for (int v : seen) count += v > 0 ? 1 : 0;
  return count;
}

}  // namespace fake
