// Fixture: every blessed way to construct an RNG stream. Must lint clean.
#include <cstdint>
#include <map>
#include <vector>

namespace fake {
inline std::uint64_t stream_seed(std::uint64_t s, std::uint64_t t) {
  return s ^ t;
}
inline std::uint64_t derive_seed(std::uint64_t b, std::uint64_t t,
                                 std::uint64_t i) {
  return b + t + i;
}
namespace streams {
inline constexpr std::uint64_t kConfig = 0xC0FFEEULL;
inline constexpr std::uint64_t kFaults = 0xFA5EEDULL;
}  // namespace streams

struct Xoshiro256pp {
  explicit Xoshiro256pp(std::uint64_t = 0) {}
  std::uint64_t operator()() { return 4; }
};

struct Config {
  std::uint64_t seed = 0;
};

inline void blessed(std::uint64_t seed, const Config& cfg,
                    const std::vector<std::uint64_t>& seeds_) {
  // Derivation through the registry helpers.
  Xoshiro256pp cfg_rng(stream_seed(seed, streams::kConfig));
  Xoshiro256pp fault_rng(
      derive_seed(seed, streams::kFaults, std::uint64_t{3}));
  // Verbatim seed passthrough: member access and subscripts are fine.
  Xoshiro256pp mirror_rng(cfg.seed);
  Xoshiro256pp shard_rng(seeds_[2]);
  Xoshiro256pp default_rng;
  std::vector<Xoshiro256pp> loss_rngs_;
  loss_rngs_.emplace_back(stream_seed(cfg.seed, streams::kFaults));
  (void)cfg_rng;
  (void)fault_rng;
  (void)mirror_rng;
  (void)shard_rng;
  (void)default_rng;
}

// Ordered iteration feeding a report is fine.
inline int report(const std::map<int, int>& results) {
  int sum = 0;
  for (const auto& [k, v] : results) sum += k + v;
  return sum;
}

// A designated cold path carrying its attribute.
// ppsim-lint-cold: replay_divergence
[[gnu::cold, gnu::noinline]] inline void replay_divergence(int) {}

}  // namespace fake
