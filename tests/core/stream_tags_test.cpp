// The stream-tag registry (core/stream_tags.hpp) IS the repo's determinism
// contract: every committed trajectory — BENCH artifacts, golden tests,
// cross-engine bit-identity — was produced under these exact tag values and
// derivation scheme. This suite pins all of it at runtime, mirroring the
// registry's compile-time structural checks, so any drift (a re-valued tag,
// a "cleaner" mixing step in stream_seed/derive_seed) fails loudly here
// instead of silently re-seeding every experiment in the repo.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "baselines/modk.hpp"
#include "core/ensemble.hpp"
#include "core/rng.hpp"
#include "core/runner.hpp"
#include "core/stream_tags.hpp"
#include "pl/protocol.hpp"

namespace {

using namespace ppsim;
using namespace ppsim::core;

// --- Registry values and structure ---------------------------------------

TEST(StreamTags, RegisteredValuesArePinned) {
  // Changing any of these re-seeds every stream derived from it; the
  // registry header documents the blast radius. This is the golden copy.
  EXPECT_EQ(streams::kConfig, 0xC0FFEEULL);
  EXPECT_EQ(streams::kFaults, 0xFA5EEDULL);
  EXPECT_EQ(streams::kLoss, 0x1055ULL);
  EXPECT_EQ(streams::kLockstepDecoy, 0x10C5ULL);
  EXPECT_EQ(streams::kDifferentialTrial, 0xD1FFULL);
  EXPECT_EQ(streams::kDigest, 0x5EEDEDULL);
  EXPECT_EQ(streams::kFailpoint, 0xFA17ULL);
  EXPECT_EQ(streams::kRetryJitter, 0xB0FFULL);
  EXPECT_EQ(streams::kCount, 8);
  EXPECT_EQ(kLossStreamTag, streams::kLoss);
}

TEST(StreamTags, PairwiseDistinctAndHammingFloor) {
  // Runtime mirror of the registry's static_asserts (std::popcount as the
  // independent implementation).
  int min_distance = 64;
  for (int i = 0; i < streams::kCount; ++i) {
    for (int j = i + 1; j < streams::kCount; ++j) {
      EXPECT_NE(streams::kAll[i], streams::kAll[j]) << i << " vs " << j;
      min_distance = std::min(
          min_distance, std::popcount(streams::kAll[i] ^ streams::kAll[j]));
    }
  }
  EXPECT_GE(min_distance, streams::kMinTagHammingDistance);
  // The floor is the *real* minimum, not slack: kLoss/kLockstepDecoy sit
  // exactly on it. If this fails the floor can (and should) be raised.
  EXPECT_EQ(min_distance, streams::kMinTagHammingDistance);
}

// --- Derivation scheme golden values --------------------------------------

TEST(StreamTags, StreamSeedIsTheHistoricalXor) {
  // stream_seed must stay a plain XOR: the committed recovery/topology
  // artifacts and every golden trajectory were produced under seed ^ tag.
  constexpr std::uint64_t s = 0x0123456789ABCDEFULL;
  static_assert(stream_seed(s, streams::kConfig) == (s ^ 0xC0FFEEULL));
  EXPECT_EQ(stream_seed(s, streams::kFaults), s ^ 0xFA5EEDULL);
  EXPECT_EQ(stream_seed(0, streams::kLoss), 0x1055ULL);
}

TEST(StreamTags, DeriveSeedGoldenValues) {
  EXPECT_EQ(derive_seed(1, 2, 3), 0x92726824c964f498ULL);
  EXPECT_EQ(derive_seed(42, streams::kDifferentialTrial, 0),
            0x5474b128516f881fULL);
  EXPECT_EQ(derive_seed(42, streams::kLockstepDecoy, 7),
            0x5e4f0eda5def9de3ULL);
}

TEST(StreamTags, FirstDrawsOfEachTrialStreamArePinned) {
  // End-to-end: trial seed -> registered side stream -> first xoshiro
  // output. Pins SplitMix64 state expansion + xoshiro256++ + the tags in
  // one shot.
  const std::uint64_t trial = derive_seed(5, 1, 0);
  EXPECT_EQ(Xoshiro256pp(stream_seed(trial, streams::kConfig))(),
            0x3b5cf3c2aa93a23eULL);
  EXPECT_EQ(Xoshiro256pp(stream_seed(trial, streams::kFaults))(),
            0x116957d6b9d234edULL);
  EXPECT_EQ(Xoshiro256pp(stream_seed(trial, streams::kLoss))(),
            0x2ed8b61ac5cf5f6bULL);
}

// --- Cross-engine fault-stream normalization (satellite regression) -------
//
// Runner and EnsembleRunner must derive the omission-loss stream of a ring
// seeded `s` identically — stream_seed(s, streams::kLoss) — for every way
// the stream can be (re)established: at construction, via
// set_scheduler_faults before stepping, and via set_scheduler_faults after
// rings already exist. A divergence in any path shows up as different
// faulted trajectories on the same seeds.

template <typename P>
void expect_cross_engine_fault_identity(const typename P::Params& params,
                                        std::span<const typename P::State>
                                            initial,
                                        std::uint64_t steps) {
  SchedulerFaults faults;
  faults.loss_p = 0.25;

  constexpr int kRings = 3;
  EnsembleRunner<P> ensemble(params, kRings);
  std::vector<std::uint64_t> seeds;
  for (int r = 0; r < kRings; ++r) {
    const auto seed = derive_seed(99, streams::kDifferentialTrial,
                                  static_cast<std::uint64_t>(r));
    seeds.push_back(seed);
    ensemble.add_ring(initial, seed);
  }
  // Re-derivation path: faults configured AFTER the rings exist.
  ensemble.set_scheduler_faults(faults);

  for (int r = 0; r < kRings; ++r) {
    Runner<P> runner(params,
                     std::vector<typename P::State>(initial.begin(),
                                                    initial.end()),
                     seeds[static_cast<std::size_t>(r)]);
    runner.set_scheduler_faults(faults);
    runner.run(steps);
    ensemble.run_ring(r, steps);
    const auto ring = ensemble.agents(r);
    ASSERT_EQ(ring.size(), runner.agents().size());
    for (std::size_t i = 0; i < ring.size(); ++i) {
      ASSERT_TRUE(ring[i] == runner.agents()[i])
          << "ring " << r << " agent " << i
          << ": faulted trajectories diverged — loss-stream derivation is "
             "not normalized across engines";
    }
    EXPECT_EQ(ensemble.steps(r), runner.steps());
  }
}

TEST(StreamTags, CrossEngineFaultStreamBitIdentityModk) {
  const auto params = baselines::ModkParams::make(12, 5);
  Xoshiro256pp rng(stream_seed(derive_seed(7, 3, 0), streams::kConfig));
  std::vector<baselines::Modk::State> initial(
      static_cast<std::size_t>(params.n));
  for (auto& s : initial) {
    s.leader = static_cast<std::uint8_t>(rng.bounded(2));
    s.lab = static_cast<std::uint8_t>(
        rng.bounded(static_cast<std::uint64_t>(params.k)));
  }
  expect_cross_engine_fault_identity<baselines::Modk>(params, initial, 4096);
}

TEST(StreamTags, CrossEngineFaultStreamBitIdentityPl) {
  const auto params = pl::PlParams::make(8, 2);
  Xoshiro256pp rng(stream_seed(derive_seed(7, 3, 1), streams::kConfig));
  std::vector<pl::PlProtocol::State> initial(
      static_cast<std::size_t>(params.n));
  expect_cross_engine_fault_identity<pl::PlProtocol>(params, initial, 4096);
}

}  // namespace
