#include "core/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ppsim::core {
namespace {

TEST(Table, MarkdownShape) {
  Table t({"n", "steps"});
  t.add_row({"8", "123"});
  t.add_row({"16", "456"});
  const std::string s = t.to_string(true);
  EXPECT_NE(s.find("| n "), std::string::npos);
  EXPECT_NE(s.find("| 16"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string s = t.to_string(false);
  EXPECT_NE(s.find('1'), std::string::npos);
}

TEST(Table, ValueRows) {
  Table t({"x", "y"});
  t.add_row_values({1.5, 2.25e6});
  const std::string s = t.to_string(true);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(Fmt, Numbers) {
  EXPECT_EQ(fmt_u64(42), "42");
  EXPECT_EQ(fmt_double(2.0), "2");
}

}  // namespace
}  // namespace ppsim::core
