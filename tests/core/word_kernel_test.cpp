// The word-kernel engine lanes (core::WordGroupDriver wired into
// Runner::run and EnsembleRunner): bit-identity against the scalar
// reference paths, fault-storm behavior (in-domain fast path and the
// documented fall-back-to-scalar on out-of-domain states), the cross-ring
// lockstep ensemble lane, capacity-probe gating, and thread-count
// byte-identity of the differential campaign driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ensemble.hpp"
#include "core/rng.hpp"
#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/protocol.hpp"
#include "pl/safe_config.hpp"
#include "verification/differential.hpp"

namespace ppsim {
namespace {

using core::EnsembleRunner;
using core::Runner;
using pl::PlParams;
using pl::PlProtocol;
using pl::PlState;

static_assert(Runner<PlProtocol>::kWordKernel,
              "P_PL must satisfy the word-kernel concept");
static_assert(EnsembleRunner<PlProtocol>::kWordable);
static_assert(!EnsembleRunner<PlProtocol>::kPackable,
              "P_PL's state space must be far beyond the LUT lane");

void expect_same(const Runner<PlProtocol>& a, const Runner<PlProtocol>& b,
                 const char* what) {
  ASSERT_EQ(a.steps(), b.steps()) << what;
  ASSERT_EQ(a.leader_count(), b.leader_count()) << what;
  ASSERT_EQ(a.last_leader_change(), b.last_leader_change()) << what;
  const auto sa = a.agents();
  const auto sb = b.agents();
  for (int i = 0; i < a.n(); ++i)
    ASSERT_EQ(sa[i], sb[i]) << what << " agent " << i;
}

TEST(WordKernelRunner, WordPathMatchesUnbatchedReference) {
  for (const int n : {4, 16, 64, 257, 1024}) {
    const auto p = PlParams::make(n, 4);
    core::Xoshiro256pp cfg(900 + n);
    const auto init = pl::random_config(p, cfg);
    Runner<PlProtocol> ref(p, init, 42);   // scalar reference
    Runner<PlProtocol> word(p, init, 42);  // word kernel
    word.force_word_path();  // past the small-n engagement gate
    ASSERT_TRUE(word.word_path_active());
    core::Xoshiro256pp faults(77);
    for (int round = 0; round < 6; ++round) {
      const std::uint64_t k = 500 + 37 * round;
      ref.run_unbatched(k);
      word.run(k);
      expect_same(ref, word, "word vs unbatched");
      // In-domain fault storm through both engines' set_agent.
      for (int f = 0; f < 3; ++f) {
        const int idx = static_cast<int>(
            faults.bounded(static_cast<std::uint64_t>(n)));
        const PlState s = pl::random_state(p, faults);
        ref.set_agent(idx, s);
        word.set_agent(idx, s);
      }
      expect_same(ref, word, "word vs unbatched after storm");
    }
    EXPECT_TRUE(word.word_path_active());  // in-domain storms keep the lane
  }
}

TEST(WordKernelRunner, ForceScalarPathIsBitIdentical) {
  const auto p = PlParams::make(64, 4);
  const auto init = pl::make_safe_config(p);
  Runner<PlProtocol> word(p, init, 7);
  word.force_word_path();
  Runner<PlProtocol> scalar(p, init, 7);
  scalar.force_scalar_path();
  EXPECT_FALSE(scalar.word_path_active());
  word.run(5000);
  scalar.run(5000);
  expect_same(word, scalar, "forced scalar vs word");
}

TEST(WordKernelRunner, OutOfDomainInjectionDropsToScalarExactly) {
  const auto p = PlParams::make(32, 4);
  core::Xoshiro256pp cfg(3);
  const auto init = pl::random_config(p, cfg);
  Runner<PlProtocol> ref(p, init, 9);
  Runner<PlProtocol> word(p, init, 9);
  word.force_word_path();
  word.run(1000);
  ref.run_unbatched(1000);
  PlState bad;
  bad.dist = 60000;  // far outside [0, 2psi)
  ref.set_agent(5, bad);
  word.set_agent(5, bad);
  word.run(1000);  // round-trip check fails -> permanent scalar fallback
  ref.run_unbatched(1000);
  EXPECT_FALSE(word.word_path_active());
  word.force_word_path();  // the fallback is permanent: no resurrection
  EXPECT_FALSE(word.word_path_active());
  expect_same(ref, word, "after out-of-domain fault");
}

TEST(WordKernelRunner, EngagementGateRoutesSmallRingsToScalar) {
  // The word path only engages by default when the grouped driver's
  // disjointness estimate clears the threshold; tiny rings go scalar (the
  // honest sub-1x cells), big rings engage, and force_word_path restores
  // the kernel — bit-identically — wherever it is structurally capable.
  const auto p_small = PlParams::make(16, 4);
  core::Xoshiro256pp cfg(31);
  const auto init = pl::random_config(p_small, cfg);
  Runner<PlProtocol> gated(p_small, init, 13);
  EXPECT_FALSE(gated.word_path_active());  // capable, but below threshold
  Runner<PlProtocol> ref(p_small, init, 13);
  gated.run(2000);
  ref.run_unbatched(2000);
  expect_same(ref, gated, "gated-off runner (scalar batched)");
  gated.force_word_path();
  EXPECT_TRUE(gated.word_path_active());
  gated.run(2000);
  ref.run_unbatched(2000);
  expect_same(ref, gated, "forced back onto the word kernel");

  const auto p_big = PlParams::make(1024, 4);
  const std::vector<PlState> zeros(static_cast<std::size_t>(p_big.n));
  Runner<PlProtocol> big(p_big, zeros, 13);
  EXPECT_TRUE(big.word_path_active());  // engaged without forcing
}

TEST(WordKernelRunner, CapacityExceededKeepsScalarPath) {
  // psi_slack blows the 64-bit layout; the capacity probe must refuse and
  // the runner must never activate the word path (and still be exact).
  const auto p = PlParams::make(8, 32, /*psi_slack=*/5000);
  EXPECT_FALSE(pl::PackedLayout::make(p).fits());
  // All-zero initial configuration: make_safe_config's segment-ID modulus
  // (1 << psi) has no 64-bit representation at this psi, and the protocol
  // accepts any configuration anyway.
  const std::vector<PlState> init(static_cast<std::size_t>(p.n));
  Runner<PlProtocol> r(p, init, 1);
  EXPECT_FALSE(r.word_path_active());
  Runner<PlProtocol> ref(p, init, 1);
  r.run(200);
  ref.run_unbatched(200);
  expect_same(r, ref, "capacity-refused runner");
  EnsembleRunner<PlProtocol> ens(p, 1);
  ens.add_ring(init, 1);
  EXPECT_FALSE(ens.word_kernel_mode());
}

void expect_ring_same(const Runner<PlProtocol>& ref,
                      EnsembleRunner<PlProtocol>& ens, int r,
                      const char* what) {
  ASSERT_EQ(ref.steps(), ens.steps(r)) << what;
  ASSERT_EQ(ref.leader_count(), ens.leader_count(r)) << what;
  ASSERT_EQ(ref.last_leader_change(), ens.last_leader_change(r)) << what;
  const auto sa = ref.agents();
  const auto sb = ens.agents(r);
  for (int i = 0; i < ref.n(); ++i)
    ASSERT_EQ(sa[i], sb[i]) << what << " ring " << r << " agent " << i;
}

TEST(WordKernelEnsemble, KernelLaneMatchesGenericLaneAndRunner) {
  // Satellite: trajectory/census/last_leader_change equivalence vs the
  // generic lane for P_PL at n in {4, 16, 64}, mid-run set_agent storms
  // included. The ensemble run() path is the cross-ring lockstep driver.
  for (const int n : {4, 16, 64}) {
    const auto p = PlParams::make(n, 4);
    const int R = 11;  // not a multiple of the lane width: leftover rings
    EnsembleRunner<PlProtocol> word(p, R);
    EnsembleRunner<PlProtocol> generic(p, R);
    generic.force_generic_path();
    std::vector<Runner<PlProtocol>> refs;
    for (int t = 0; t < R; ++t) {
      core::Xoshiro256pp cfg(50 + t);
      const auto init = pl::random_config(p, cfg);
      word.add_ring(init, 500 + t);
      generic.add_ring(init, 500 + t);
      refs.emplace_back(p, init, 500 + t);
    }
    ASSERT_TRUE(word.word_kernel_mode());
    ASSERT_FALSE(generic.word_kernel_mode());
    core::Xoshiro256pp faults(123);
    for (int round = 0; round < 4; ++round) {
      const std::uint64_t k = 400 + 91 * round;
      word.run(k);
      generic.run(k);
      for (auto& ref : refs) ref.run_unbatched(k);
      for (int t = 0; t < R; ++t) {
        expect_ring_same(refs[t], word, t, "word lane");
        expect_ring_same(refs[t], generic, t, "generic lane");
      }
      // Storm: same faults into every engine.
      for (int f = 0; f < 4; ++f) {
        const int t = static_cast<int>(
            faults.bounded(static_cast<std::uint64_t>(R)));
        const int idx = static_cast<int>(
            faults.bounded(static_cast<std::uint64_t>(n)));
        const PlState s = pl::random_state(p, faults);
        word.set_agent(t, idx, s);
        generic.set_agent(t, idx, s);
        refs[static_cast<std::size_t>(t)].set_agent(idx, s);
      }
    }
    EXPECT_TRUE(word.word_kernel_mode());
  }
}

TEST(WordKernelEnsemble, CrossRingLockstepMatchesPerRingAdvancement) {
  const auto p = PlParams::make(16, 4);
  const int R = 9;
  EnsembleRunner<PlProtocol> lockstep(p, R);
  EnsembleRunner<PlProtocol> per_ring(p, R);
  for (int t = 0; t < R; ++t) {
    core::Xoshiro256pp cfg(70 + t);
    const auto init = pl::random_config(p, cfg);
    lockstep.add_ring(init, 900 + t);
    per_ring.add_ring(init, 900 + t);
  }
  lockstep.run(3000);  // cross-ring lanes
  for (int t = 0; t < R; ++t) per_ring.run_ring(t, 3000);  // one at a time
  for (int t = 0; t < R; ++t) {
    ASSERT_EQ(lockstep.steps(t), per_ring.steps(t));
    ASSERT_EQ(lockstep.leader_count(t), per_ring.leader_count(t));
    ASSERT_EQ(lockstep.last_leader_change(t), per_ring.last_leader_change(t));
    const auto sa = lockstep.agents(t);
    const auto sb = per_ring.agents(t);
    for (int i = 0; i < p.n; ++i) ASSERT_EQ(sa[i], sb[i]);
  }
}

TEST(WordKernelEnsemble, OutOfDomainInjectionDropsLaneNotTrajectory) {
  const auto p = PlParams::make(16, 4);
  EnsembleRunner<PlProtocol> ens(p, 2);
  std::vector<Runner<PlProtocol>> refs;
  for (int t = 0; t < 2; ++t) {
    core::Xoshiro256pp cfg(5 + t);
    const auto init = pl::random_config(p, cfg);
    ens.add_ring(init, 40 + t);
    refs.emplace_back(p, init, 40 + t);
  }
  ens.run(500);
  for (auto& r : refs) r.run_unbatched(500);
  PlState bad;
  bad.token_b = pl::Token{1, 7, 0};  // value outside {0, 1}
  ens.set_agent(1, 3, bad);
  refs[1].set_agent(3, bad);
  EXPECT_FALSE(ens.word_kernel_mode());
  ens.run(500);
  for (auto& r : refs) r.run_unbatched(500);
  for (int t = 0; t < 2; ++t) expect_ring_same(refs[t], ens, t, "fallback");
}

TEST(WordKernelEnsemble, RunUntilEachMatchesRunnerRunUntil) {
  const auto p = PlParams::make(16, 4);
  const int R = 10;
  EnsembleRunner<PlProtocol> ens(p, R);
  std::vector<Runner<PlProtocol>> refs;
  for (int t = 0; t < R; ++t) {
    core::Xoshiro256pp cfg(400 + t);
    const auto init = pl::random_config(p, cfg);
    ens.add_ring(init, 4000 + t);
    refs.emplace_back(p, init, 4000 + t);
  }
  const auto unique_leader = [](std::span<const PlState> c, const PlParams&) {
    int leaders = 0;
    for (const auto& s : c) leaders += s.leader == 1 ? 1 : 0;
    return leaders == 1;
  };
  const std::uint64_t max_steps = 200000;
  const auto hits = ens.run_until_each(unique_leader, max_steps, 64);
  for (int t = 0; t < R; ++t) {
    const auto want = refs[static_cast<std::size_t>(t)].run_until(
        unique_leader, max_steps, 64);
    if (want.has_value()) {
      ASSERT_EQ(hits[static_cast<std::size_t>(t)], *want) << "ring " << t;
    } else {
      ASSERT_EQ(hits[static_cast<std::size_t>(t)],
                EnsembleRunner<PlProtocol>::npos)
          << "ring " << t;
    }
  }
}

TEST(WordKernelEnsemble, NarrowLaneMatchesGenericLaneAndRunner) {
  // Regime-narrowed layout: at n = 16, c1 = 3 the packed image is 31 bits,
  // so the ensemble keeps a u32 mirror and the cross-ring driver packs two
  // states per 64 bits of vector register. R = 19 is not a multiple of the
  // narrow group width, leaving leftovers for the scalar narrow driver.
  const auto p = PlParams::make(16, 3);
  ASSERT_TRUE(pl::PackedLayout::make(p).fits_narrow());
  const int R = 19;
  EnsembleRunner<PlProtocol> narrow(p, R);
  EnsembleRunner<PlProtocol> generic(p, R);
  generic.force_generic_path();
  std::vector<Runner<PlProtocol>> refs;
  for (int t = 0; t < R; ++t) {
    core::Xoshiro256pp cfg(250 + t);
    const auto init = pl::random_config(p, cfg);
    narrow.add_ring(init, 800 + t);
    generic.add_ring(init, 800 + t);
    refs.emplace_back(p, init, 800 + t);
  }
  ASSERT_TRUE(narrow.word_kernel_mode());
  ASSERT_TRUE(narrow.narrow_word_mode());
  ASSERT_FALSE(generic.narrow_word_mode());
  core::Xoshiro256pp faults(321);
  for (int round = 0; round < 4; ++round) {
    const std::uint64_t k = 300 + 77 * round;
    narrow.run(k);
    generic.run(k);
    for (auto& ref : refs) ref.run_unbatched(k);
    for (int t = 0; t < R; ++t) {
      expect_ring_same(refs[t], narrow, t, "narrow lane");
      expect_ring_same(refs[t], generic, t, "generic lane");
    }
    for (int f = 0; f < 4; ++f) {
      const int t = static_cast<int>(
          faults.bounded(static_cast<std::uint64_t>(R)));
      const int idx = static_cast<int>(
          faults.bounded(static_cast<std::uint64_t>(p.n)));
      const PlState s = pl::random_state(p, faults);
      narrow.set_agent(t, idx, s);
      generic.set_agent(t, idx, s);
      refs[static_cast<std::size_t>(t)].set_agent(idx, s);
    }
  }
  EXPECT_TRUE(narrow.narrow_word_mode());  // in-domain storms keep the lane
}

TEST(WordKernelEnsemble, NarrowCrossRingLockstepMatchesPerRing) {
  const auto p = PlParams::make(16, 3);
  const int R = 17;  // one leftover past a full 16-wide narrow group
  EnsembleRunner<PlProtocol> lockstep(p, R);
  EnsembleRunner<PlProtocol> per_ring(p, R);
  for (int t = 0; t < R; ++t) {
    core::Xoshiro256pp cfg(170 + t);
    const auto init = pl::random_config(p, cfg);
    lockstep.add_ring(init, 600 + t);
    per_ring.add_ring(init, 600 + t);
  }
  ASSERT_TRUE(lockstep.narrow_word_mode());
  lockstep.run(3000);
  for (int t = 0; t < R; ++t) per_ring.run_ring(t, 3000);
  for (int t = 0; t < R; ++t) {
    ASSERT_EQ(lockstep.steps(t), per_ring.steps(t));
    ASSERT_EQ(lockstep.leader_count(t), per_ring.leader_count(t));
    ASSERT_EQ(lockstep.last_leader_change(t), per_ring.last_leader_change(t));
    const auto sa = lockstep.agents(t);
    const auto sb = per_ring.agents(t);
    for (int i = 0; i < p.n; ++i) ASSERT_EQ(sa[i], sb[i]);
  }
}

TEST(WordKernelEnsemble, NarrowOutOfDomainFallbackIsExact) {
  const auto p = PlParams::make(16, 3);
  EnsembleRunner<PlProtocol> ens(p, 2);
  std::vector<Runner<PlProtocol>> refs;
  for (int t = 0; t < 2; ++t) {
    core::Xoshiro256pp cfg(90 + t);
    const auto init = pl::random_config(p, cfg);
    ens.add_ring(init, 140 + t);
    refs.emplace_back(p, init, 140 + t);
  }
  ASSERT_TRUE(ens.narrow_word_mode());
  ens.run(500);
  for (auto& r : refs) r.run_unbatched(500);
  PlState bad;
  bad.token_w = pl::Token{1, 0, 9};  // carry outside {0, 1}
  ens.set_agent(0, 2, bad);
  refs[0].set_agent(2, bad);
  EXPECT_FALSE(ens.word_kernel_mode());
  EXPECT_FALSE(ens.narrow_word_mode());
  ens.run(500);
  for (auto& r : refs) r.run_unbatched(500);
  for (int t = 0; t < 2; ++t) expect_ring_same(refs[t], ens, t, "fallback");
}

TEST(WordKernelEnsemble, NarrowProbeRefusesWideLayouts) {
  // One clock bit over the line: n = 16, c1 = 4 packs to 33 bits, so the
  // ensemble must keep the 64-bit mirror (and still run the word lane).
  const auto p = PlParams::make(16, 4);
  EXPECT_TRUE(pl::PackedLayout::make(p).fits());
  EXPECT_FALSE(pl::PackedLayout::make(p).fits_narrow());
  EnsembleRunner<PlProtocol> ens(p, 1);
  core::Xoshiro256pp cfg(8);
  ens.add_ring(pl::random_config(p, cfg), 3);
  EXPECT_TRUE(ens.word_kernel_mode());
  EXPECT_FALSE(ens.narrow_word_mode());
}

TEST(WordKernelCampaign, DifferentialReportsByteIdenticalAcrossThreads) {
  const auto p = PlParams::make(24, 4);
  verification::FuzzConfig cfg;
  cfg.steps = 2048;
  cfg.check_every = 64;
  cfg.fault_storms = 2;
  cfg.faults_per_storm = 2;
  const auto make_init = [](const PlParams& pp, core::Xoshiro256pp& rng) {
    return pl::random_config(pp, rng);
  };
  const auto fault = [](const PlParams& pp, core::Xoshiro256pp& rng,
                        const PlState&, int) {
    return pl::random_state(pp, rng);
  };
  const auto one = verification::run_differential_campaign<PlProtocol>(
      p, cfg, 6, 1, make_init, fault);
  const auto four = verification::run_differential_campaign<PlProtocol>(
      p, cfg, 6, 4, make_init, fault);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t t = 0; t < one.size(); ++t) {
    EXPECT_TRUE(one[t].ok) << one[t].divergence;
    EXPECT_EQ(one[t].digest, four[t].digest);
    EXPECT_EQ(one[t].final_digest, four[t].final_digest);
    EXPECT_TRUE(one[t].packed_lane);  // ensemble kernel lane participated
    EXPECT_TRUE(one[t].word_lane);    // Runner word path stayed active
    EXPECT_TRUE(one[t].lockstep_lane);  // lane G rode the vector-RNG driver
  }
}

}  // namespace
}  // namespace ppsim
