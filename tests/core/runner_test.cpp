#include "core/runner.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/ring.hpp"
#include "core/statistics.hpp"

namespace ppsim::core {
namespace {

/// Toy directed protocol: the responder copies the initiator's value + 1.
struct CountProto {
  struct State {
    int v = 0;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static void apply(State& l, State& r, const Params&) { r.v = l.v + 1; }
};

/// Toy leader protocol: leaders annihilate pairwise when a "token" meets one.
struct LeaderProto {
  struct State {
    int leader = 0;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static void apply(State& l, State& r, const Params&) {
    if (l.leader == 1 && r.leader == 1) r.leader = 0;
  }
  static bool is_leader(const State& s, const Params&) {
    return s.leader == 1;
  }
};

/// Oracle-consuming toy protocol: responder becomes leader when told none
/// exists.
struct OracleProto {
  struct State {
    int leader = 0;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static void apply(State&, State& r, const Params&,
                    const InteractionContext& ctx) {
    if (ctx.no_leader) r.leader = 1;
  }
  static bool is_leader(const State& s, const Params&) {
    return s.leader == 1;
  }
};

TEST(Runner, AppliesDirectedArc) {
  Runner<CountProto> run({4}, std::vector<CountProto::State>(4), 1);
  run.apply_arc(0);  // (u0, u1)
  EXPECT_EQ(run.agent(1).v, 1);
  run.apply_arc(3);  // (u3, u0): wraps
  EXPECT_EQ(run.agent(0).v, 1);
  EXPECT_EQ(run.steps(), 2u);
}

TEST(Runner, AppliesSequence) {
  Runner<CountProto> run({5}, std::vector<CountProto::State>(5), 1);
  run.apply_sequence(seq_r(0, 4, 5));  // sweep: v ramps 1,2,3,4
  EXPECT_EQ(run.agent(4).v, 4);
}

TEST(Runner, TracksLeaderCountIncrementally) {
  std::vector<LeaderProto::State> init(6);
  init[0].leader = init[3].leader = 1;
  Runner<LeaderProto> run({6}, init, 1);
  EXPECT_EQ(run.leader_count(), 2);
  run.run(5000);
  // The protocol only removes adjacent leader pairs; with leaders at 0 and 3
  // nothing ever changes.
  EXPECT_EQ(run.leader_count(), 2);
}

TEST(Runner, LeaderCountAfterAnnihilation) {
  std::vector<LeaderProto::State> init(4);
  init[0].leader = init[1].leader = 1;
  Runner<LeaderProto> run({4}, init, 1);
  run.apply_arc(0);  // leaders at 0,1 annihilate the responder
  EXPECT_EQ(run.leader_count(), 1);
  EXPECT_EQ(run.last_leader_change(), 1u);
}

TEST(Runner, OracleReportsAbsence) {
  Runner<OracleProto> run({4}, std::vector<OracleProto::State>(4), 1);
  EXPECT_EQ(run.leader_count(), 0);
  run.apply_arc(0);
  EXPECT_EQ(run.leader_count(), 1);  // oracle fired immediately (delay 0)
  run.apply_arc(1);
  EXPECT_EQ(run.leader_count(), 1);  // leader exists: oracle silent
}

TEST(Runner, OracleDelayPostponesReport) {
  Runner<OracleProto> run({4}, std::vector<OracleProto::State>(4), 1);
  run.set_oracle_delay(10);
  for (int i = 0; i < 10; ++i) run.apply_arc(i % 4);
  EXPECT_EQ(run.leader_count(), 0);  // not yet: leaderless_since = 0, need 10
  run.run(100);
  EXPECT_EQ(run.leader_count(), 1);
}

TEST(Runner, RunUntilReportsHittingStep) {
  Runner<CountProto> run({4}, std::vector<CountProto::State>(4), 99);
  const auto hit = run.run_until(
      [](std::span<const CountProto::State> c, const CountProto::Params&) {
        for (const auto& s : c)
          if (s.v >= 3) return true;
        return false;
      },
      100000, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_GT(*hit, 0u);
  EXPECT_LE(*hit, 100000u);
}

TEST(Runner, RunUntilTimesOut) {
  Runner<LeaderProto> run({4}, std::vector<LeaderProto::State>(4), 3);
  const auto hit = run.run_until(
      [](std::span<const LeaderProto::State> c, const LeaderProto::Params&) {
        for (const auto& s : c)
          if (s.leader) return true;
        return false;
      },
      1000, 10);
  EXPECT_FALSE(hit.has_value());
  EXPECT_EQ(run.steps(), 1000u);
}

TEST(Runner, SchedulerIsUniformOverArcs) {
  // Count which arcs fire via an observer; chi-square against uniform.
  Runner<CountProto> run({8}, std::vector<CountProto::State>(8), 7);
  std::vector<std::uint64_t> counts(8, 0);
  run.run_observed(80000, [&](const Runner<CountProto>&, int arc) {
    ++counts[static_cast<std::size_t>(arc)];
  });
  // 7 dof; 1e-5 tail is ~33. Allow slack.
  EXPECT_LT(chi_square_uniform(counts), 45.0);
}

TEST(Runner, SetAgentUpdatesLeaderCensusAndChangeStep) {
  std::vector<LeaderProto::State> init(4);
  init[0].leader = 1;
  Runner<LeaderProto> run({4}, init, 1);
  run.run(100);  // the protocol can't change anything here
  EXPECT_EQ(run.leader_count(), 1);
  EXPECT_EQ(run.last_leader_change(), 0u);

  // Fault injection deleting the unique leader: the census recounts AND the
  // change step reflects the injection (previously it stayed stale).
  LeaderProto::State follower;
  run.set_agent(0, follower);
  EXPECT_EQ(run.leader_count(), 0);
  EXPECT_EQ(run.last_leader_change(), 100u);

  // Injecting a state that does not flip the leader output leaves the
  // change step untouched.
  run.run(50);
  LeaderProto::State still_follower;
  run.set_agent(1, still_follower);
  EXPECT_EQ(run.last_leader_change(), 100u);

  // Re-creating a leader is a change again.
  LeaderProto::State leader;
  leader.leader = 1;
  run.set_agent(2, leader);
  EXPECT_EQ(run.leader_count(), 1);
  EXPECT_EQ(run.last_leader_change(), 150u);
}

TEST(Runner, SetAgentPreservesLeaderlessClock) {
  // Injecting a state into an already-leaderless population must not reset
  // Omega?'s leaderless clock: the oracle delay counts from the original
  // onset of leaderlessness, not from the injection.
  Runner<OracleProto> run({4}, std::vector<OracleProto::State>(4), 1);
  run.set_oracle_delay(10);
  for (int i = 0; i < 5; ++i) run.apply_arc(i % 4);
  EXPECT_EQ(run.leader_count(), 0);
  run.set_agent(0, OracleProto::State{});  // fault injection, still leaderless
  for (int i = 0; i < 6; ++i) run.apply_arc(i % 4);  // reaches step 11 > 10
  EXPECT_EQ(run.leader_count(), 1);  // fires at onset+10, not injection+10
}

TEST(Runner, SnapshotViaCopy) {
  Runner<CountProto> run({4}, std::vector<CountProto::State>(4), 1);
  run.run(100);
  Runner<CountProto> snap = run;
  run.run(100);
  EXPECT_EQ(snap.steps() + 100, run.steps());
}

}  // namespace
}  // namespace ppsim::core
