// Exhaustive small-n enforcement of the core::Topology contracts
// (core/topology.hpp): arc numbering (forward arcs [0, F), arc F + a is
// arc a endpoint-swapped) and the automorphism group (g = 0 identity,
// agent maps are bijections, arc maps permute the drawn arc set, and the
// two commute with endpoints() — the equivariance the quotient checker's
// soundness rests on). Plus per-topology group shape: ring = rotations
// (+ reflection when undirected), line = reflection only (undirected),
// clique = full S_n, tree = declared-trivial.
#include "core/topology.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "core/ring.hpp"

namespace ppsim::core {
namespace {

template <typename Topo>
void check_endpoints_contract(const Topo& t) {
  const int n = t.n();
  const int f = t.forward_arcs();
  ASSERT_GE(f, 1);
  EXPECT_EQ(t.arc_count(true), f);
  EXPECT_EQ(t.arc_count(false), 2 * f);
  std::set<std::pair<int, int>> forward;
  for (int a = 0; a < 2 * f; ++a) {
    const ArcEndpoints e = t.endpoints(a);
    ASSERT_GE(e.initiator, 0);
    ASSERT_LT(e.initiator, n);
    ASSERT_GE(e.responder, 0);
    ASSERT_LT(e.responder, n);
    if (n >= 2) {
      EXPECT_NE(e.initiator, e.responder);
    }
  }
  for (int a = 0; a < f; ++a) {
    const ArcEndpoints e = t.endpoints(a);
    const ArcEndpoints r = t.endpoints(f + a);
    EXPECT_EQ(r.initiator, e.responder) << Topo::kName << " arc " << a;
    EXPECT_EQ(r.responder, e.initiator) << Topo::kName << " arc " << a;
    forward.insert({e.initiator, e.responder});
  }
  // Forward arcs are distinct ordered pairs (the n = 1 ring self-loop is
  // the only exception, excluded by the n >= 2 sweep below).
  if (n >= 2) {
    EXPECT_EQ(forward.size(), static_cast<std::size_t>(f));
  }
}

/// The full automorphism contract for one orientation: identity at g = 0,
/// agent bijection, drawn-arc-set permutation, equivariance with
/// endpoints(). Does NOT require the enumerated elements to be pairwise
/// distinct (the n = 2 ring's rotation and reflection coincide); per-group
/// shape is pinned by the topology-specific tests below.
template <typename Topo>
void check_aut_contract(const Topo& t, bool directed) {
  const int n = t.n();
  const int arcs = t.arc_count(directed);
  const std::uint64_t count = t.aut_count(directed);
  ASSERT_GE(count, 1u);
  for (int v = 0; v < n; ++v) EXPECT_EQ(t.aut_agent(0, v), v);
  for (int a = 0; a < arcs; ++a) EXPECT_EQ(t.aut_arc(0, a), a);
  for (std::uint64_t g = 0; g < count; ++g) {
    std::vector<int> hit(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      const int w = t.aut_agent(g, v);
      ASSERT_GE(w, 0);
      ASSERT_LT(w, n);
      ++hit[static_cast<std::size_t>(w)];
    }
    for (int v = 0; v < n; ++v)
      EXPECT_EQ(hit[static_cast<std::size_t>(v)], 1)
          << Topo::kName << " g=" << g << " not an agent bijection";
    std::vector<int> arc_hit(static_cast<std::size_t>(arcs), 0);
    for (int a = 0; a < arcs; ++a) {
      const int b = t.aut_arc(g, a);
      ASSERT_GE(b, 0) << Topo::kName << " g=" << g;
      ASSERT_LT(b, arcs)
          << Topo::kName << " g=" << g
          << ": aut_arc left the drawn arc set (scheduler not invariant)";
      ++arc_hit[static_cast<std::size_t>(b)];
      const ArcEndpoints e = t.endpoints(a);
      const ArcEndpoints img = t.endpoints(b);
      EXPECT_EQ(img.initiator, t.aut_agent(g, e.initiator))
          << Topo::kName << " g=" << g << " arc=" << a;
      EXPECT_EQ(img.responder, t.aut_agent(g, e.responder))
          << Topo::kName << " g=" << g << " arc=" << a;
    }
    for (int a = 0; a < arcs; ++a)
      EXPECT_EQ(arc_hit[a], 1)
          << Topo::kName << " g=" << g << " arc map not onto";
  }
}

template <typename Topo>
void check_both_orientations(int n) {
  const Topo t(n);
  check_endpoints_contract(t);
  check_aut_contract(t, true);
  check_aut_contract(t, false);
}

TEST(TopologyContract, RingExhaustiveSmallN) {
  for (int n = 2; n <= 6; ++n) check_both_orientations<RingTopology>(n);
}

TEST(TopologyContract, LineExhaustiveSmallN) {
  for (int n = 2; n <= 6; ++n) check_both_orientations<LineTopology>(n);
}

TEST(TopologyContract, CliqueExhaustiveSmallN) {
  // n = 6 enumerates all 720 elements of S_6 against 30 forward arcs.
  for (int n = 2; n <= 6; ++n) check_both_orientations<CliqueTopology>(n);
}

TEST(TopologyContract, TreeExhaustiveSmallN) {
  for (int n = 2; n <= 6; ++n) check_both_orientations<TreeTopology>(n);
}

// ---- ring: bit-identity with the historical free functions --------------

TEST(RingTopologyTest, EndpointsMatchArcEndpoints) {
  for (int n = 1; n <= 8; ++n) {
    const RingTopology t(n);
    EXPECT_EQ(t.forward_arcs(), n);
    for (int arc = 0; arc < 2 * n; ++arc) {
      const ArcEndpoints a = t.endpoints(arc);
      const ArcEndpoints b = arc_endpoints(arc, n);
      EXPECT_EQ(a.initiator, b.initiator) << "n=" << n << " arc=" << arc;
      EXPECT_EQ(a.responder, b.responder) << "n=" << n << " arc=" << arc;
    }
  }
}

TEST(RingTopologyTest, AutArcMatchesRotateAndReflect) {
  for (int n = 2; n <= 6; ++n) {
    const RingTopology t(n);
    for (int arc = 0; arc < 2 * n; ++arc) {
      for (int delta = 0; delta < n; ++delta) {
        EXPECT_EQ(t.aut_arc(static_cast<std::uint64_t>(delta), arc),
                  rotate_arc(arc, delta, n));
        EXPECT_EQ(t.aut_arc(static_cast<std::uint64_t>(n + delta), arc),
                  reflect_arc(rotate_arc(arc, delta, n), n));
      }
    }
  }
}

// ---- line: reflection is the only non-trivial automorphism --------------

TEST(LineTopologyTest, ReflectionOnlyAndUndirectedOnly) {
  for (int n = 2; n <= 6; ++n) {
    const LineTopology t(n);
    // The reflection reverses arc orientations, so the directed line's
    // declared group is trivial.
    EXPECT_EQ(t.aut_count(true), 1u);
    EXPECT_EQ(t.aut_count(false), 2u);
    for (int v = 0; v < n; ++v) EXPECT_EQ(t.aut_agent(1, v), n - 1 - v);
    // An involution on agents and arcs.
    for (int v = 0; v < n; ++v)
      EXPECT_EQ(t.aut_agent(1, t.aut_agent(1, v)), v);
    for (int a = 0; a < t.arc_count(false); ++a)
      EXPECT_EQ(t.aut_arc(1, t.aut_arc(1, a)), a);
  }
}

// ---- clique: the full symmetric group, each element exactly once --------

TEST(CliqueTopologyTest, FullSymmetricGroup) {
  for (int n = 2; n <= 5; ++n) {
    const CliqueTopology t(n);
    std::uint64_t fact = 1;
    for (int i = 2; i <= n; ++i) fact *= static_cast<std::uint64_t>(i);
    ASSERT_EQ(t.aut_count(true), fact);
    ASSERT_EQ(t.aut_count(false), fact);
    std::set<std::vector<int>> seen;
    for (std::uint64_t g = 0; g < fact; ++g) {
      std::vector<int> perm(static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v)
        perm[static_cast<std::size_t>(v)] = t.aut_agent(g, v);
      EXPECT_TRUE(seen.insert(perm).second)
          << "duplicate permutation at g=" << g;
    }
    EXPECT_EQ(seen.size(), fact);  // all of S_n, each exactly once
  }
}

TEST(CliqueTopologyTest, OrderedPairEncoding) {
  for (int n = 2; n <= 6; ++n) {
    const CliqueTopology t(n);
    ASSERT_EQ(t.forward_arcs(), n * (n - 1));
    std::set<std::pair<int, int>> pairs;
    for (int a = 0; a < t.forward_arcs(); ++a) {
      const ArcEndpoints e = t.endpoints(a);
      pairs.insert({e.initiator, e.responder});
    }
    // Every ordered pair (i, j), i != j, appears exactly once.
    EXPECT_EQ(pairs.size(), static_cast<std::size_t>(n * (n - 1)));
  }
}

// ---- tree: heap layout, declared-trivial group --------------------------

TEST(TreeTopologyTest, HeapParentArcsAndTrivialGroup) {
  for (int n = 2; n <= 7; ++n) {
    const TreeTopology t(n);
    for (int a = 0; a < t.forward_arcs(); ++a) {
      const ArcEndpoints e = t.endpoints(a);
      EXPECT_EQ(e.responder, a + 1);
      EXPECT_EQ(e.initiator, (e.responder - 1) / 2);  // parent initiates
    }
    EXPECT_EQ(t.aut_count(true), 1u);
    EXPECT_EQ(t.aut_count(false), 1u);
  }
}

}  // namespace
}  // namespace ppsim::core
