#include "core/ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace ppsim::core {
namespace {

TEST(RingAdd, WrapsForward) {
  EXPECT_EQ(ring_add(5, 3, 6), 2);
  EXPECT_EQ(ring_add(0, 6, 6), 0);
  EXPECT_EQ(ring_add(0, 13, 6), 1);
}

TEST(RingAdd, WrapsBackward) {
  EXPECT_EQ(ring_add(0, -1, 6), 5);
  EXPECT_EQ(ring_add(2, -9, 6), 5);
  EXPECT_EQ(ring_add(0, -12, 6), 0);
}

TEST(RingDistance, Clockwise) {
  EXPECT_EQ(ring_distance(0, 0, 5), 0);
  EXPECT_EQ(ring_distance(1, 4, 5), 3);
  EXPECT_EQ(ring_distance(4, 1, 5), 2);
}

TEST(CeilLog2, SmallValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1023), 10);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(CeilLog2, PsiAdmitsRingSize) {
  // 2^psi >= n for psi = ceil_log2(n): the premise of Lemma 3.2.
  for (std::uint64_t n = 2; n <= 4096; ++n)
    EXPECT_GE(1ULL << ceil_log2(n), n);
}

TEST(SeqBuilders, SeqRMatchesDefinition) {
  // seq_R(i, j) = e_i, e_{i+1}, ..., e_{i+j-1}
  const auto s = seq_r(3, 4, 5);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 0);
  EXPECT_EQ(s[3], 1);
}

TEST(SeqBuilders, SeqLMatchesDefinition) {
  // seq_L(i, j) = e_{i-1}, e_{i-2}, ..., e_{i-j}
  const auto s = seq_l(1, 3, 5);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 0);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 3);
}

TEST(ArcEndpoints, DirectedMappingExhaustive) {
  // Forward arc e_i = (u_i -> u_{i+1 mod n}): the left agent initiates —
  // the paper's "l is the initiator and r is the responder". Exhaustive at
  // the sizes the exhaustive checker actually runs.
  for (int n : {2, 3, 5}) {
    for (int i = 0; i < n; ++i) {
      const ArcEndpoints e = arc_endpoints(i, n);
      EXPECT_EQ(e.initiator, i) << "n=" << n << " arc=" << i;
      EXPECT_EQ(e.responder, (i + 1) % n) << "n=" << n << " arc=" << i;
    }
  }
}

TEST(ArcEndpoints, UndirectedReversedMappingExhaustive) {
  // Arc n + i is the orientation flip of e_i: same undirected edge
  // {u_i, u_{i+1}}, with the *right* agent initiating — the case the
  // undirected ensemble kernel and the checker's 2n-arc loop both rely on.
  for (int n : {2, 3, 5}) {
    for (int i = 0; i < n; ++i) {
      const ArcEndpoints fwd = arc_endpoints(i, n);
      const ArcEndpoints rev = arc_endpoints(n + i, n);
      EXPECT_EQ(rev.initiator, (i + 1) % n) << "n=" << n << " arc=" << n + i;
      EXPECT_EQ(rev.responder, i) << "n=" << n << " arc=" << n + i;
      EXPECT_EQ(rev.initiator, fwd.responder);
      EXPECT_EQ(rev.responder, fwd.initiator);
    }
  }
}

TEST(ArcEndpoints, EveryOrderedNeighborPairAppearsExactlyOnce) {
  // For n >= 3, the 2n arcs enumerate each ordered adjacent pair exactly
  // once — no duplicate and no missing interaction in the undirected
  // scheduler. (n = 2 is a multigraph: e_0 and e_1 are parallel edges, so
  // each ordered pair appears exactly twice there.)
  for (int n : {2, 3, 5}) {
    std::vector<std::pair<int, int>> seen;
    for (int a = 0; a < 2 * n; ++a) {
      const ArcEndpoints e = arc_endpoints(a, n);
      EXPECT_TRUE(ring_distance(e.initiator, e.responder, n) == 1 ||
                  ring_distance(e.responder, e.initiator, n) == 1);
      seen.emplace_back(e.initiator, e.responder);
    }
    std::sort(seen.begin(), seen.end());
    const int multiplicity = n == 2 ? 2 : 1;
    for (auto it = seen.begin(); it != seen.end();) {
      const auto next = std::find_if(
          it, seen.end(), [&](const auto& pr) { return pr != *it; });
      EXPECT_EQ(static_cast<int>(next - it), multiplicity)
          << "ordered pair (" << it->first << "," << it->second << ") at n="
          << n;
      it = next;
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(2 * n));
  }
}

TEST(ArcSymmetry, RotationCommutesWithEndpoints) {
  // Soundness premise of the quotient checker: rotating agent indices maps
  // the arc set to itself with endpoints rotating along.
  for (int n : {2, 3, 5}) {
    for (int a = 0; a < 2 * n; ++a) {
      for (int delta = 0; delta < n; ++delta) {
        const ArcEndpoints e = arc_endpoints(a, n);
        const ArcEndpoints r = arc_endpoints(rotate_arc(a, delta, n), n);
        EXPECT_EQ(r.initiator, ring_add(e.initiator, delta, n));
        EXPECT_EQ(r.responder, ring_add(e.responder, delta, n));
        // Forward arcs stay forward, reversed stay reversed.
        EXPECT_EQ(rotate_arc(a, delta, n) < n, a < n);
      }
    }
  }
}

TEST(ArcSymmetry, ReflectionSwapsOrientationsAndCommutesWithEndpoints) {
  for (int n : {2, 3, 5}) {
    for (int a = 0; a < 2 * n; ++a) {
      const int ra = reflect_arc(a, n);
      EXPECT_EQ(reflect_arc(ra, n), a);  // involution
      EXPECT_EQ(ra < n, a >= n);         // swaps the two orientations
      const ArcEndpoints e = arc_endpoints(a, n);
      const ArcEndpoints r = arc_endpoints(ra, n);
      EXPECT_EQ(r.initiator, n - 1 - e.initiator);
      EXPECT_EQ(r.responder, n - 1 - e.responder);
    }
  }
}

TEST(SeqBuilders, ConcatAndRepeat) {
  const auto s = seq_concat(seq_r(0, 2, 4), seq_l(0, 1, 4));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[2], 3);
  const auto rep = seq_repeat(s, 3);
  ASSERT_EQ(rep.size(), 9u);
  EXPECT_EQ(rep[3], s[0]);
  EXPECT_EQ(rep[8], s[2]);
}

TEST(SeqBuilders, ZeroLengthSweepsAreEmpty) {
  // Length 0 is a legal degenerate sweep (Section 2 sequences compose with
  // j = 0 terms); it must return an empty sequence without reserving.
  EXPECT_TRUE(seq_r(3, 0, 5).empty());
  EXPECT_TRUE(seq_l(3, 0, 5).empty());
}

TEST(SeqBuilders, RepeatEdgeCases) {
  const std::vector<int> s{1, 2};
  EXPECT_TRUE(seq_repeat(s, 0).empty());
  // Repeating an empty sequence any number of times is empty — including
  // counts whose naive int product s.size() * times would overflow; the
  // empty guard means the allocator is never consulted.
  EXPECT_TRUE(seq_repeat({}, 0x7FFFFFFF).empty());
  const auto once = seq_repeat(s, 1);
  ASSERT_EQ(once.size(), 2u);
  EXPECT_EQ(once[0], 1);
  EXPECT_EQ(once[1], 2);
}

TEST(SeqBuilders, RepeatReserveArithmeticIsSizeT) {
  // A large-but-feasible product: 3 * 100000 elements must reserve in
  // size_t space and come back exact.
  const std::vector<int> s{7, 8, 9};
  const int times = 100'000;
  const auto rep = seq_repeat(s, times);
  ASSERT_EQ(rep.size(), s.size() * static_cast<std::size_t>(times));
  EXPECT_EQ(rep.front(), 7);
  EXPECT_EQ(rep.back(), 9);
  EXPECT_EQ(rep[rep.size() - 2], 8);
}

}  // namespace
}  // namespace ppsim::core
