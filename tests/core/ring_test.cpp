#include "core/ring.hpp"

#include <gtest/gtest.h>

namespace ppsim::core {
namespace {

TEST(RingAdd, WrapsForward) {
  EXPECT_EQ(ring_add(5, 3, 6), 2);
  EXPECT_EQ(ring_add(0, 6, 6), 0);
  EXPECT_EQ(ring_add(0, 13, 6), 1);
}

TEST(RingAdd, WrapsBackward) {
  EXPECT_EQ(ring_add(0, -1, 6), 5);
  EXPECT_EQ(ring_add(2, -9, 6), 5);
  EXPECT_EQ(ring_add(0, -12, 6), 0);
}

TEST(RingDistance, Clockwise) {
  EXPECT_EQ(ring_distance(0, 0, 5), 0);
  EXPECT_EQ(ring_distance(1, 4, 5), 3);
  EXPECT_EQ(ring_distance(4, 1, 5), 2);
}

TEST(CeilLog2, SmallValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1023), 10);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(CeilLog2, PsiAdmitsRingSize) {
  // 2^psi >= n for psi = ceil_log2(n): the premise of Lemma 3.2.
  for (std::uint64_t n = 2; n <= 4096; ++n)
    EXPECT_GE(1ULL << ceil_log2(n), n);
}

TEST(SeqBuilders, SeqRMatchesDefinition) {
  // seq_R(i, j) = e_i, e_{i+1}, ..., e_{i+j-1}
  const auto s = seq_r(3, 4, 5);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 0);
  EXPECT_EQ(s[3], 1);
}

TEST(SeqBuilders, SeqLMatchesDefinition) {
  // seq_L(i, j) = e_{i-1}, e_{i-2}, ..., e_{i-j}
  const auto s = seq_l(1, 3, 5);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 0);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 3);
}

TEST(SeqBuilders, ConcatAndRepeat) {
  const auto s = seq_concat(seq_r(0, 2, 4), seq_l(0, 1, 4));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[2], 3);
  const auto rep = seq_repeat(s, 3);
  ASSERT_EQ(rep.size(), 9u);
  EXPECT_EQ(rep[3], s[0]);
  EXPECT_EQ(rep[8], s[2]);
}

}  // namespace
}  // namespace ppsim::core
