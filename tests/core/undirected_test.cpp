// Undirected-ring scheduling: arc ids [n, 2n) are the reversed pairs, and
// the uniform scheduler draws from all 2n arcs.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "core/statistics.hpp"

namespace ppsim::core {
namespace {

/// Records which agent acted as initiator/responder.
struct ProbeProto {
  struct State {
    int as_initiator = 0;
    int as_responder = 0;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = false;
  static void apply(State& u, State& v, const Params&) {
    ++u.as_initiator;
    ++v.as_responder;
  }
};

TEST(Undirected, ForwardArcMapsLeftAsInitiator) {
  Runner<ProbeProto> run({4}, std::vector<ProbeProto::State>(4), 1);
  run.apply_arc(1);  // (u1 -> u2)
  EXPECT_EQ(run.agent(1).as_initiator, 1);
  EXPECT_EQ(run.agent(2).as_responder, 1);
}

TEST(Undirected, ReversedArcMapsRightAsInitiator) {
  Runner<ProbeProto> run({4}, std::vector<ProbeProto::State>(4), 1);
  run.apply_arc(4 + 1);  // reversed pair {u1, u2}: (u2 -> u1)
  EXPECT_EQ(run.agent(2).as_initiator, 1);
  EXPECT_EQ(run.agent(1).as_responder, 1);
}

TEST(Undirected, ReversedWrapArc) {
  Runner<ProbeProto> run({4}, std::vector<ProbeProto::State>(4), 1);
  run.apply_arc(4 + 3);  // reversed pair {u3, u0}: (u0 -> u3)
  EXPECT_EQ(run.agent(0).as_initiator, 1);
  EXPECT_EQ(run.agent(3).as_responder, 1);
}

TEST(Undirected, ArcCountIsTwoN) {
  Runner<ProbeProto> run({6}, std::vector<ProbeProto::State>(6), 1);
  EXPECT_EQ(run.arc_count(), 12);
}

TEST(Undirected, SchedulerUniformOverBothDirections) {
  Runner<ProbeProto> run({8}, std::vector<ProbeProto::State>(8), 9);
  std::vector<std::uint64_t> counts(16, 0);
  run.run_observed(160000, [&](const Runner<ProbeProto>&, int arc) {
    ++counts[static_cast<std::size_t>(arc)];
  });
  EXPECT_LT(chi_square_uniform(counts), 60.0);  // 15 dof, generous
  // Each agent initiates and responds about equally often.
  for (int i = 0; i < 8; ++i) {
    const double init = run.agent(i).as_initiator;
    const double resp = run.agent(i).as_responder;
    EXPECT_NEAR(init / (init + resp), 0.5, 0.05) << "agent " << i;
  }
}

}  // namespace
}  // namespace ppsim::core
