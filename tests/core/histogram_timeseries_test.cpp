#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/histogram.hpp"
#include "core/timeseries.hpp"

namespace ppsim::core {
namespace {

/// Brute-force mirror of the pinned quantile convention: sort the sample,
/// take the k = ceil(q * count)-th smallest (1-indexed), map it to its
/// bucket's upper bound, clamp into [min, max]; endpoints are the exact
/// sample extremes.
std::uint64_t ref_quantile(std::vector<std::uint64_t> sample, double q) {
  std::sort(sample.begin(), sample.end());
  if (q <= 0.0) return sample.front();
  if (q >= 1.0) return sample.back();
  auto k = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(sample.size())));
  k = std::clamp<std::uint64_t>(k, 1, sample.size());
  const std::uint64_t v = sample[static_cast<std::size_t>(k - 1)];
  std::size_t b = 0;
  while ((1ULL << b) <= v && b < 63) ++b;
  const std::uint64_t hi = b == 0 ? 0 : (1ULL << b) - 1;
  return std::clamp(hi, sample.front(), sample.back());
}

TEST(LogHistogram, BasicAccounting) {
  LogHistogram h;
  for (std::uint64_t v : {0ULL, 1ULL, 2ULL, 3ULL, 100ULL, 1000ULL}) h.add(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), (0 + 1 + 2 + 3 + 100 + 1000) / 6.0, 1e-9);
}

TEST(LogHistogram, QuantileMonotone) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < 1024; ++v) h.add(v);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.max());
}

TEST(LogHistogram, QuantileBucketBounds) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(5);  // all in bucket [4, 7]
  EXPECT_GE(h.quantile(0.5), 4u);
  EXPECT_LE(h.quantile(0.5), 7u);
}

TEST(LogHistogram, QuantileEndpointsAreExactExtremes) {
  // The q=0 off-by-one this pins down: a single sample of 4 lives in bucket
  // [4, 7]; quantile(0) must answer min() == 4, not the bucket bound 7.
  LogHistogram h;
  h.add(4);
  EXPECT_EQ(h.quantile(0.0), 4u);
  EXPECT_EQ(h.quantile(1.0), 4u);

  LogHistogram wide;
  for (std::uint64_t v : {3ULL, 10ULL, 1000ULL}) wide.add(v);
  EXPECT_EQ(wide.quantile(0.0), 3u);     // min, not 3's bucket bound
  EXPECT_EQ(wide.quantile(1.0), 1000u);  // max, not 1000's bucket bound 1023
  EXPECT_EQ(wide.quantile(-0.5), 3u);    // out-of-range q clamps to endpoint
  EXPECT_EQ(wide.quantile(1.5), 1000u);
}

TEST(LogHistogram, QuantileRankConventionPinned) {
  // Exact boundary hit: with two samples {1, 8}, q=0.5 has rank
  // k = ceil(0.5 * 2) = 1 — the *first* sample's bucket, not the second.
  LogHistogram h;
  h.add(1);
  h.add(8);
  EXPECT_EQ(h.quantile(0.5), 1u);    // bucket [1,1] upper bound
  EXPECT_EQ(h.quantile(0.51), 8u);   // rank 2 -> bucket [8,15], clamp to max
}

TEST(LogHistogram, QuantileClampedIntoObservedRange) {
  // Samples {9, 9, 10}: bucket [8, 15] holds all three, but min/max are
  // 9/10 — every quantile must stay inside [9, 10].
  LogHistogram h;
  h.add(9);
  h.add(9);
  h.add(10);
  for (double q : {0.0, 0.3, 0.5, 0.9, 1.0}) {
    EXPECT_GE(h.quantile(q), 9u) << "q=" << q;
    EXPECT_LE(h.quantile(q), 10u) << "q=" << q;
  }
}

TEST(LogHistogram, QuantileExhaustiveSmallCounts) {
  // Every multiset (with repetition, order-free) of up to 4 samples drawn
  // from a value set that crosses several bucket boundaries, against the
  // brute-force reference, over a q-grid including the endpoints and exact
  // rank boundaries.
  const std::vector<std::uint64_t> values{0, 1, 2, 3, 5, 9, 17, 100};
  const std::vector<double> qs{0.0, 0.1, 0.25, 1.0 / 3, 0.5, 2.0 / 3,
                               0.75, 0.9, 1.0};
  const std::size_t v = values.size();
  for (std::size_t count = 1; count <= 4; ++count) {
    std::vector<std::size_t> idx(count, 0);
    for (;;) {
      if (std::is_sorted(idx.begin(), idx.end())) {  // order-free: multisets
        LogHistogram h;
        std::vector<std::uint64_t> sample;
        for (std::size_t i : idx) {
          h.add(values[i]);
          sample.push_back(values[i]);
        }
        for (double q : qs) {
          EXPECT_EQ(h.quantile(q), ref_quantile(sample, q))
              << "count=" << count << " q=" << q << " first=" << sample[0];
        }
      }
      // Odometer over value indices.
      std::size_t d = 0;
      while (d < count && ++idx[d] == v) idx[d++] = 0;
      if (d == count) break;
    }
  }
}

TEST(LogHistogram, RenderNonEmpty) {
  LogHistogram h;
  h.add(10);
  h.add(1000);
  const std::string r = h.render();
  EXPECT_NE(r.find('#'), std::string::npos);
  LogHistogram empty;
  EXPECT_EQ(empty.render(), "(empty)\n");
}

TEST(TimeSeries, SettleStep) {
  TimeSeries s("x", 10);
  for (double v : {3.0, 2.0, 1.0, 1.0, 1.0}) s.record(v);
  // Last differing sample is index 1 (value 2) -> settles at (1+1)*10 = 20.
  EXPECT_EQ(s.settle_step(), 20u);
}

TEST(TimeSeries, SettleStepConstantSeriesIsZero) {
  TimeSeries s("x", 10);
  for (int i = 0; i < 5; ++i) s.record(7.0);
  EXPECT_EQ(s.settle_step(), 0u);
}

TEST(TimeSeries, SparklineShape) {
  TimeSeries s("x", 1);
  for (int i = 0; i < 50; ++i) s.record(i);
  const std::string sp = s.sparkline(50);  // width == samples: no resampling
  EXPECT_EQ(sp.size(), 50u);
  EXPECT_EQ(sp.front(), ' ');   // minimum level
  EXPECT_EQ(sp.back(), '@');    // maximum level
}

TEST(TimeSeries, SparklineConstant) {
  TimeSeries s("x", 1);
  for (int i = 0; i < 10; ++i) s.record(5.0);
  const std::string sp = s.sparkline(10);
  EXPECT_EQ(sp, std::string(10, ' '));  // zero-span maps to the low level
}

TEST(Profile, RenderAlignsNames) {
  Profile prof(100);
  auto& a = prof.add("short");
  auto& b = prof.add("a-much-longer-name");
  for (int i = 0; i < 5; ++i) {
    a.record(i);
    b.record(5 - i);
  }
  const std::string r = prof.render(20);
  EXPECT_NE(r.find("short"), std::string::npos);
  EXPECT_NE(r.find("a-much-longer-name"), std::string::npos);
  EXPECT_EQ(prof.series().size(), 2u);
  EXPECT_EQ(prof.sample_every(), 100u);
}

}  // namespace
}  // namespace ppsim::core
