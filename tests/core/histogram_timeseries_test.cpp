#include <gtest/gtest.h>

#include "core/histogram.hpp"
#include "core/timeseries.hpp"

namespace ppsim::core {
namespace {

TEST(LogHistogram, BasicAccounting) {
  LogHistogram h;
  for (std::uint64_t v : {0ULL, 1ULL, 2ULL, 3ULL, 100ULL, 1000ULL}) h.add(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), (0 + 1 + 2 + 3 + 100 + 1000) / 6.0, 1e-9);
}

TEST(LogHistogram, QuantileMonotone) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < 1024; ++v) h.add(v);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.max());
}

TEST(LogHistogram, QuantileBucketBounds) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(5);  // all in bucket [4, 7]
  EXPECT_GE(h.quantile(0.5), 4u);
  EXPECT_LE(h.quantile(0.5), 7u);
}

TEST(LogHistogram, RenderNonEmpty) {
  LogHistogram h;
  h.add(10);
  h.add(1000);
  const std::string r = h.render();
  EXPECT_NE(r.find('#'), std::string::npos);
  LogHistogram empty;
  EXPECT_EQ(empty.render(), "(empty)\n");
}

TEST(TimeSeries, SettleStep) {
  TimeSeries s("x", 10);
  for (double v : {3.0, 2.0, 1.0, 1.0, 1.0}) s.record(v);
  // Last differing sample is index 1 (value 2) -> settles at (1+1)*10 = 20.
  EXPECT_EQ(s.settle_step(), 20u);
}

TEST(TimeSeries, SettleStepConstantSeriesIsZero) {
  TimeSeries s("x", 10);
  for (int i = 0; i < 5; ++i) s.record(7.0);
  EXPECT_EQ(s.settle_step(), 0u);
}

TEST(TimeSeries, SparklineShape) {
  TimeSeries s("x", 1);
  for (int i = 0; i < 50; ++i) s.record(i);
  const std::string sp = s.sparkline(50);  // width == samples: no resampling
  EXPECT_EQ(sp.size(), 50u);
  EXPECT_EQ(sp.front(), ' ');   // minimum level
  EXPECT_EQ(sp.back(), '@');    // maximum level
}

TEST(TimeSeries, SparklineConstant) {
  TimeSeries s("x", 1);
  for (int i = 0; i < 10; ++i) s.record(5.0);
  const std::string sp = s.sparkline(10);
  EXPECT_EQ(sp, std::string(10, ' '));  // zero-span maps to the low level
}

TEST(Profile, RenderAlignsNames) {
  Profile prof(100);
  auto& a = prof.add("short");
  auto& b = prof.add("a-much-longer-name");
  for (int i = 0; i < 5; ++i) {
    a.record(i);
    b.record(5 - i);
  }
  const std::string r = prof.render(20);
  EXPECT_NE(r.find("short"), std::string::npos);
  EXPECT_NE(r.find("a-much-longer-name"), std::string::npos);
  EXPECT_EQ(prof.series().size(), 2u);
  EXPECT_EQ(prof.sample_every(), 100u);
}

}  // namespace
}  // namespace ppsim::core
