// Batched-vs-stepwise engine equivalence: Runner::run (fused fast path,
// delta census) must produce bit-identical trajectories and census values to
// Runner::run_unbatched (the per-step reference path) — same RNG stream, same
// agent states, same leader/token bookkeeping — for every census shape the
// engine specializes on: no outputs, leader output only, leader + token
// census with the oracle, and the real protocols of the study.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/fischer_jiang.hpp"
#include "baselines/modk.hpp"
#include "baselines/yokota28.hpp"
#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/protocol.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::core {
namespace {

/// Toy protocol without outputs (exercises the bare-loop specialization).
struct PlainProto {
  struct State {
    std::uint32_t v = 0;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static void apply(State& l, State& r, const Params&) {
    r.v = l.v * 2654435761u + 1;
  }
};

/// Toy leader protocol (exercises the leader-only census path).
struct LeaderProto {
  struct State {
    std::uint8_t leader = 0;
    std::uint8_t age = 0;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static void apply(State& l, State& r, const Params&) {
    ++r.age;
    if (l.leader == 1 && r.leader == 1) r.leader = 0;
    if (l.age == 0xFF && r.leader == 0) {
      r.leader = 1;  // occasionally revive a leader so counts keep moving
      l.age = 0;
    }
  }
  static bool is_leader(const State& s, const Params&) {
    return s.leader == 1;
  }
};

/// Oracle + token census toy (exercises the snapshot-skip path: small state,
/// has_token, frequent no-op interactions).
struct OracleTokenProto {
  struct State {
    std::uint8_t leader = 0;
    std::uint8_t token = 0;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static void apply(State& l, State& r, const Params&,
                    const InteractionContext& ctx) {
    if (ctx.no_leader) {
      r.leader = 1;
      r.token = 1;
    } else if (l.token == 1 && r.leader == 1) {
      l.token = 0;
      r.leader = 0;  // a token reaching a leader deposes it
    } else if (l.token == 1 && r.token == 0) {
      l.token = 0;
      r.token = 1;
    }
  }
  static bool is_leader(const State& s, const Params&) {
    return s.leader == 1;
  }
  static bool has_token(const State& s, const Params&) {
    return s.token == 1;
  }
};

/// Drive one runner with run_unbatched and a copy with run over the same
/// schedule of chunk lengths, comparing full state and census at every sync
/// point. `Eq(a, b)` compares agent states.
template <typename P, typename Eq>
void expect_equivalent(Runner<P> a, std::uint64_t total_steps, Eq&& eq) {
  Runner<P> b = a;  // identical snapshot: same RNG state, same agents
  // Uneven chunking on the batched side exercises block boundaries.
  const std::uint64_t chunks[] = {1, 7, 1024, 4096, 5000, 333};
  std::uint64_t done = 0;
  std::size_t c = 0;
  while (done < total_steps) {
    const std::uint64_t k =
        std::min(chunks[c++ % std::size(chunks)], total_steps - done);
    a.run_unbatched(k);
    b.run(k);
    done += k;
    ASSERT_EQ(a.steps(), b.steps());
    ASSERT_EQ(a.leader_count(), b.leader_count());
    ASSERT_EQ(a.last_leader_change(), b.last_leader_change());
    for (int i = 0; i < a.n(); ++i) {
      ASSERT_TRUE(eq(a.agent(i), b.agent(i)))
          << "agent " << i << " diverged at step " << a.steps();
    }
  }
}

TEST(BatchedRunner, PlainProtocolIdenticalOver100kSteps) {
  std::vector<PlainProto::State> init(33);
  expect_equivalent(Runner<PlainProto>({33}, init, 42), 100'000,
                    [](const PlainProto::State& x, const PlainProto::State& y) {
                      return x.v == y.v;
                    });
}

TEST(BatchedRunner, LeaderCensusIdenticalOver100kSteps) {
  std::vector<LeaderProto::State> init(16);
  init[0].leader = init[5].leader = init[6].leader = 1;
  expect_equivalent(Runner<LeaderProto>({16}, init, 7), 100'000,
                    [](const LeaderProto::State& x, const LeaderProto::State& y) {
                      return x.leader == y.leader && x.age == y.age;
                    });
}

TEST(BatchedRunner, OracleTokenCensusIdenticalOver100kSteps) {
  std::vector<OracleTokenProto::State> init(12);
  expect_equivalent(
      Runner<OracleTokenProto>({12}, init, 99), 100'000,
      [](const OracleTokenProto::State& x, const OracleTokenProto::State& y) {
        return x.leader == y.leader && x.token == y.token;
      });
}

TEST(BatchedRunner, OracleDelayIdentical) {
  std::vector<OracleTokenProto::State> init(8);
  Runner<OracleTokenProto> r({8}, init, 3);
  r.set_oracle_delay(50);
  expect_equivalent(
      std::move(r), 20'000,
      [](const OracleTokenProto::State& x, const OracleTokenProto::State& y) {
        return x.leader == y.leader && x.token == y.token;
      });
}

TEST(BatchedRunner, PlProtocolIdenticalOver100kSteps) {
  const auto p = pl::PlParams::make(32, 4);
  core::Xoshiro256pp rng(5);
  expect_equivalent(
      Runner<pl::PlProtocol>(p, pl::random_config(p, rng), 1), 100'000,
      [](const pl::PlState& x, const pl::PlState& y) { return x == y; });
}

TEST(BatchedRunner, PlProtocolFromSafeConfigIdentical) {
  const auto p = pl::PlParams::make(64, 4);
  expect_equivalent(
      Runner<pl::PlProtocol>(p, pl::make_safe_config(p), 8), 100'000,
      [](const pl::PlState& x, const pl::PlState& y) { return x == y; });
}

TEST(BatchedRunner, FischerJiangIdenticalOver100kSteps) {
  const auto p = baselines::FjParams::make(24);
  core::Xoshiro256pp rng(2);
  expect_equivalent(
      Runner<baselines::FischerJiang>(p, baselines::fj_random_config(p, rng),
                                      4),
      100'000, [](const baselines::FjState& x, const baselines::FjState& y) {
        return x == y;
      });
}

TEST(BatchedRunner, ModkIdenticalOver100kSteps) {
  const auto p = baselines::ModkParams::make(25, 2);
  core::Xoshiro256pp rng(6);
  expect_equivalent(
      Runner<baselines::Modk>(p, baselines::modk_random_config(p, rng), 8),
      100'000,
      [](const baselines::ModkState& x, const baselines::ModkState& y) {
        return x == y;
      });
}

TEST(BatchedRunner, Yokota28IdenticalOver100kSteps) {
  const auto p = baselines::Y28Params::make(24);
  core::Xoshiro256pp rng(8);
  expect_equivalent(
      Runner<baselines::Yokota28>(p, baselines::y28_random_config(p, rng), 9),
      100'000,
      [](const baselines::Y28State& x, const baselines::Y28State& y) {
        return x == y;
      });
}

/// Mid-run fault-injection equivalence: drive mirrored runners (unbatched vs
/// batched) through uneven chunks with identical `set_agent` storms at every
/// sync point. Both paths must agree on the full trajectory, the incremental
/// leader/token censuses, `last_leader_change`, and — via the transitions of
/// oracle protocols, which read ctx.no_leader/no_token — the Omega? oracle
/// reports. A fresh runner built from the current configuration additionally
/// checks the incremental census against a ground-truth full recount.
template <typename P, typename MakeState, typename Eq>
void expect_equivalent_under_faults(Runner<P> a, std::uint64_t total_steps,
                                    MakeState&& mk, Eq&& eq) {
  Runner<P> b = a;  // identical snapshot: same RNG state, same agents
  Xoshiro256pp fault_rng(0xFA17);
  const std::uint64_t chunks[] = {1, 7, 503, 1024, 64, 333};
  std::uint64_t done = 0;
  std::size_t c = 0;
  while (done < total_steps) {
    const std::uint64_t k =
        std::min(chunks[c++ % std::size(chunks)], total_steps - done);
    a.run_unbatched(k);
    b.run(k);
    done += k;
    // Identical fault storm into both runners (1-3 corrupted agents).
    const int storm = 1 + static_cast<int>(fault_rng.bounded(3));
    for (int f = 0; f < storm; ++f) {
      const int idx =
          static_cast<int>(fault_rng.bounded(static_cast<std::uint64_t>(a.n())));
      const auto s = mk(fault_rng);
      a.set_agent(idx, s);
      b.set_agent(idx, s);
    }
    ASSERT_EQ(a.steps(), b.steps());
    ASSERT_EQ(a.leader_count(), b.leader_count());
    ASSERT_EQ(a.token_count(), b.token_count());
    ASSERT_EQ(a.last_leader_change(), b.last_leader_change());
    for (int i = 0; i < a.n(); ++i) {
      ASSERT_TRUE(eq(a.agent(i), b.agent(i)))
          << "agent " << i << " diverged at step " << a.steps();
    }
    // Incremental census (delta-maintained through set_agent) vs recount.
    Runner<P> fresh(a.params(),
                    std::vector<typename P::State>(a.agents().begin(),
                                                   a.agents().end()),
                    1);
    ASSERT_EQ(fresh.leader_count(), a.leader_count());
    ASSERT_EQ(fresh.token_count(), a.token_count());
  }
  // The post-fault histories must keep agreeing, oracle reports included.
  a.run_unbatched(5'000);
  b.run(5'000);
  ASSERT_EQ(a.leader_count(), b.leader_count());
  ASSERT_EQ(a.token_count(), b.token_count());
  ASSERT_EQ(a.last_leader_change(), b.last_leader_change());
  for (int i = 0; i < a.n(); ++i) ASSERT_TRUE(eq(a.agent(i), b.agent(i)));
}

TEST(BatchedRunnerFaults, OracleTokenCensusIdenticalUnderInjections) {
  std::vector<OracleTokenProto::State> init(12);
  expect_equivalent_under_faults(
      Runner<OracleTokenProto>({12}, init, 21), 50'000,
      [](Xoshiro256pp& rng) {
        OracleTokenProto::State s;
        s.leader = static_cast<std::uint8_t>(rng.bounded(2));
        s.token = static_cast<std::uint8_t>(rng.bounded(2));
        return s;
      },
      [](const OracleTokenProto::State& x, const OracleTokenProto::State& y) {
        return x.leader == y.leader && x.token == y.token;
      });
}

TEST(BatchedRunnerFaults, OracleDelayIdenticalUnderInjections) {
  std::vector<OracleTokenProto::State> init(8);
  Runner<OracleTokenProto> r({8}, init, 5);
  r.set_oracle_delay(64);
  expect_equivalent_under_faults(
      std::move(r), 20'000,
      [](Xoshiro256pp& rng) {
        OracleTokenProto::State s;
        s.leader = static_cast<std::uint8_t>(rng.bounded(2));
        s.token = static_cast<std::uint8_t>(rng.bounded(2));
        return s;
      },
      [](const OracleTokenProto::State& x, const OracleTokenProto::State& y) {
        return x.leader == y.leader && x.token == y.token;
      });
}

TEST(BatchedRunnerFaults, FischerJiangIdenticalUnderInjections) {
  const auto p = baselines::FjParams::make(24);
  core::Xoshiro256pp rng(3);
  expect_equivalent_under_faults(
      Runner<baselines::FischerJiang>(p, baselines::fj_random_config(p, rng),
                                      14),
      50'000,
      [&](Xoshiro256pp& frng) { return baselines::fj_random_state(p, frng); },
      [](const baselines::FjState& x, const baselines::FjState& y) {
        return x == y;
      });
}

TEST(BatchedRunnerFaults, PlProtocolIdenticalUnderInjections) {
  const auto p = pl::PlParams::make(32, 4);
  expect_equivalent_under_faults(
      Runner<pl::PlProtocol>(p, pl::make_safe_config(p), 11), 50'000,
      [&](Xoshiro256pp& frng) { return pl::random_state(p, frng); },
      [](const pl::PlState& x, const pl::PlState& y) { return x == y; });
}

TEST(BatchedRunnerFaults, ModkIdenticalUnderInjections) {
  const auto p = baselines::ModkParams::make(25, 2);
  core::Xoshiro256pp rng(16);
  expect_equivalent_under_faults(
      Runner<baselines::Modk>(p, baselines::modk_random_config(p, rng), 17),
      50'000,
      [&](Xoshiro256pp& frng) {
        return baselines::modk_random_state(p, frng);
      },
      [](const baselines::ModkState& x, const baselines::ModkState& y) {
        return x == y;
      });
}

TEST(BatchedRunnerFaults, InjectionDoesNotResetOracleLeaderlessClock) {
  // A leaderless population since step 0 with oracle delay 10: the first
  // interaction at steps >= 10 sees no_leader and promotes a leader, i.e.
  // leader_count flips from 0 to 1 at step 11 exactly. A non-leader fault
  // injected at step 5 must not reset the oracle's leaderless clock (the
  // delay counts from the original onset of leaderlessness).
  std::vector<OracleTokenProto::State> init(4);
  Runner<OracleTokenProto> r({4}, init, 9);
  r.set_oracle_delay(10);
  r.run(5);
  OracleTokenProto::State fault;
  fault.token = 1;  // flips the token census but not the leader census
  r.set_agent(0, fault);
  ASSERT_EQ(r.leader_count(), 0);
  ASSERT_EQ(r.token_count(), 1);
  r.run(5);  // steps 6..10: oracle still reports presence until step 10
  EXPECT_EQ(r.leader_count(), 0);
  r.run(1);  // the interaction at steps_ == 10 promotes
  EXPECT_EQ(r.leader_count(), 1);
  EXPECT_EQ(r.last_leader_change(), 11u);
}

TEST(BatchedRunner, MixedPathsShareOneStream) {
  // step(), run(), run_unbatched() interleaved on one runner equal a pure
  // unbatched runner: all three consume the same RNG stream.
  const auto p = pl::PlParams::make(16, 4);
  core::Xoshiro256pp rng(12);
  const auto init = pl::random_config(p, rng);
  Runner<pl::PlProtocol> mixed(p, init, 77);
  Runner<pl::PlProtocol> pure(p, init, 77);
  mixed.run(1000);
  for (int i = 0; i < 500; ++i) mixed.step();
  mixed.run_unbatched(250);
  mixed.run(1250);
  pure.run_unbatched(3000);
  ASSERT_EQ(mixed.steps(), pure.steps());
  for (int i = 0; i < p.n; ++i) EXPECT_EQ(mixed.agent(i), pure.agent(i));
  EXPECT_EQ(mixed.leader_count(), pure.leader_count());
  EXPECT_EQ(mixed.last_leader_change(), pure.last_leader_change());
}

}  // namespace
}  // namespace ppsim::core
