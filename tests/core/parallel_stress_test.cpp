// ThreadPool stress surface for the TSan lane: rapid-fire tiny batches
// (the batch attach/retire handshake is the raciest window — a worker that
// attaches late must never touch a retired stack Batch), pool
// construction/teardown churn against the stop_ flag, exceptions under
// contention, and oversubscription (more threads than work, more work than
// threads). Runs in the normal matrix too, but its reason to exist is
// `ctest -L parallel` under PPSIM_SANITIZE=thread, where every iteration
// is a fresh chance for TSan to observe an unhappy interleaving.
#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ppsim::core {
namespace {

TEST(ThreadPoolStress, RapidTinyBatchesNeverTouchRetiredState) {
  // The stack Batch in for_index is retired the moment active reaches 0;
  // thousands of 1-3 item batches maximize the window in which a worker
  // wakes for generation g after the caller already retired it.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 4000; ++round) {
    const std::size_t count = 1 + static_cast<std::size_t>(round % 3);
    pool.for_index(count, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::uint64_t expected = 0;
  for (int round = 0; round < 4000; ++round) expected += 1 + round % 3;
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPoolStress, ConstructionTeardownChurn) {
  // Pool lifetime is the other handshake: workers parked in cv_.wait must
  // observe stop_ and exit while a batch may just have finished. Churn
  // pools with and without intervening work.
  for (int round = 0; round < 300; ++round) {
    ThreadPool pool(1 + round % 5);
    if (round % 2 == 0) {
      std::atomic<int> count{0};
      pool.for_index(static_cast<std::size_t>(1 + round % 7),
                     [&](std::size_t) {
                       count.fetch_add(1, std::memory_order_relaxed);
                     });
      ASSERT_EQ(count.load(), 1 + round % 7);
    }
    // Destructor runs here with workers possibly still detaching.
  }
}

TEST(ThreadPoolStress, OversubscribedAndUndersubscribedBatches) {
  // More threads than items (workers race for 2 slots) and more items than
  // threads (every thread loops the fetch_add claim path) back to back,
  // writing to disjoint indices — any cross-index interference is a bug
  // TSan or the value check catches.
  ThreadPool pool(8);
  for (int round = 0; round < 200; ++round) {
    std::vector<int> tiny(2, -1);
    pool.for_index(tiny.size(), [&](std::size_t i) {
      tiny[i] = static_cast<int>(i);
    });
    ASSERT_EQ(tiny[0], 0);
    ASSERT_EQ(tiny[1], 1);
    std::vector<int> wide(503, -1);
    pool.for_index(wide.size(), [&](std::size_t i) {
      wide[i] = static_cast<int>(i) + round;
    });
    for (std::size_t i = 0; i < wide.size(); ++i)
      ASSERT_EQ(wide[i], static_cast<int>(i) + round);
  }
}

TEST(ThreadPoolStress, ExceptionsUnderContentionLeavePoolUsable) {
  // First-exception capture races all threads on error_mu while the rest
  // of the batch keeps draining; the pool must come out reusable every
  // time.
  ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.for_index(64,
                                [&](std::size_t i) {
                                  if (i % 16 == 3)
                                    throw std::runtime_error("storm");
                                  completed.fetch_add(
                                      1, std::memory_order_relaxed);
                                }),
                 std::runtime_error);
    ASSERT_EQ(completed.load(), 60);
  }
  std::atomic<int> count{0};
  pool.for_index(32, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace ppsim::core
