// Engine/checker arc-mapping agreement, per topology (the test the ring
// used to get implicitly from sharing core::arc_endpoints): for every
// configuration and every drawable arc at n <= 6, a Runner<P, Topo> step
// through that arc must produce exactly the configuration
// ModelChecker<P, Topo>::successor predicts. A single transposed endpoint
// pair in either layer fails here by construction — this is the pin the
// "shared definition" wording in core/ring.hpp and README now defers to.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ensemble.hpp"
#include "core/model_checker.hpp"
#include "core/runner.hpp"
#include "core/topology.hpp"
#include "verification/toys.hpp"

namespace ppsim::core {
namespace {

using verification::TokenMergeModel;

/// TokenMergeModel is deliberately asymmetric in (initiator, responder) —
/// a lone token moves initiator -> responder — so any endpoint swap or
/// off-by-one in either layer changes the successor configuration.
template <typename Topo>
void drift_check(int n) {
  const typename TokenMergeModel::Params p{n};
  const ModelChecker<TokenMergeModel, Topo> mc(p);
  ASSERT_FALSE(mc.capacity_exceeded());
  const Topo topo(n);
  const int arcs = topo.arc_count(TokenMergeModel::directed);
  for (std::uint64_t id = 0; id < mc.num_configurations(); ++id) {
    const auto cfg = mc.decode(id);
    for (int a = 0; a < arcs; ++a) {
      Runner<TokenMergeModel, Topo> runner(p, cfg, /*seed=*/1);
      runner.apply_arc(a);
      const auto got = runner.agents();
      const auto want = mc.decode(mc.successor(id, a));
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)].tok,
                  want[static_cast<std::size_t>(i)].tok)
            << Topo::kName << " n=" << n << " id=" << id << " arc=" << a
            << " agent=" << i;
      }
    }
  }
}

template <typename Topo>
void drift_sweep() {
  for (int n = 2; n <= 6; ++n) drift_check<Topo>(n);
}

TEST(TopologyDrift, RingEngineMatchesChecker) {
  drift_sweep<RingTopology>();
}

TEST(TopologyDrift, LineEngineMatchesChecker) {
  drift_sweep<LineTopology>();
}

TEST(TopologyDrift, CliqueEngineMatchesChecker) {
  drift_sweep<CliqueTopology>();
}

TEST(TopologyDrift, TreeEngineMatchesChecker) {
  drift_sweep<TreeTopology>();
}

// The ensemble's scalar lane resolves arcs through the same Topo member,
// but pin it independently: EnsembleRunner ring 0 after one forced arc via
// set_agent-free stepping is out of reach (no apply_arc), so compare a
// short scheduled run instead — Runner and EnsembleRunner ring 0 share the
// seed, so they draw identical arcs over any topology.
template <typename Topo>
void ensemble_agrees(int n, std::uint64_t steps) {
  const typename TokenMergeModel::Params p{n};
  std::vector<TokenMergeModel::State> init(static_cast<std::size_t>(n));
  init[0].tok = 1;
  if (n > 2) init[static_cast<std::size_t>(n / 2)].tok = 1;
  Runner<TokenMergeModel, Topo> runner(p, init, /*seed=*/99);
  EnsembleRunner<TokenMergeModel, Topo> ensemble(p, 1);
  ensemble.add_ring(init, /*seed=*/99);
  runner.run(steps);
  ensemble.run_ring(0, steps);
  EXPECT_EQ(runner.steps(), ensemble.steps(0));
  const auto a = runner.agents();
  const auto b = ensemble.agents(0);
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(a[static_cast<std::size_t>(i)].tok,
              b[static_cast<std::size_t>(i)].tok)
        << Topo::kName << " n=" << n << " agent=" << i;
}

TEST(TopologyDrift, EnsembleMatchesRunnerPerTopology) {
  for (int n = 2; n <= 6; ++n) {
    ensemble_agrees<RingTopology>(n, 512);
    ensemble_agrees<LineTopology>(n, 512);
    ensemble_agrees<CliqueTopology>(n, 512);
    ensemble_agrees<TreeTopology>(n, 512);
  }
}

}  // namespace
}  // namespace ppsim::core
