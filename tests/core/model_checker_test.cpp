#include "core/model_checker.hpp"

#include <gtest/gtest.h>

#include <span>

#include "verification/toys.hpp"

namespace ppsim::core {
namespace {

using verification::BrokenMergeModel;
using verification::TokenMergeModel;

TEST(ModelChecker, EnumeratesConfigurations) {
  ModelChecker<TokenMergeModel> mc({4});
  EXPECT_EQ(mc.num_configurations(), 16u);
}

TEST(ModelChecker, EncodeDecodeRoundTrip) {
  ModelChecker<TokenMergeModel> mc({5});
  for (std::uint64_t id = 0; id < mc.num_configurations(); ++id) {
    const auto cfg = mc.decode(id);
    EXPECT_EQ(mc.encode(cfg), id);
  }
}

TEST(ModelChecker, SuccessorAppliesTransition) {
  ModelChecker<TokenMergeModel> mc({3});
  // Config (1,1,0): arc 0 merges -> (1,0,0)... merge sets r.tok=0: (1,0,0).
  TokenMergeModel::State a{1}, b{1}, z{0};
  std::vector<TokenMergeModel::State> cfg{a, b, z};
  const auto id = mc.encode(cfg);
  const auto succ = mc.successor(id, 0);
  const auto out = mc.decode(succ);
  EXPECT_EQ(out[0].tok, 1);
  EXPECT_EQ(out[1].tok, 0);
  EXPECT_EQ(out[2].tok, 0);
}

TEST(ModelChecker, AcceptsTokenMerging) {
  // Every bottom SCC should consist of exactly-one-token configurations.
  // Note: token *count* is the invariant output here (the token position
  // keeps moving, so the position is not part of the spec output).
  ModelChecker<TokenMergeModel> mc({4});
  const auto res = mc.check(
      [](std::span<const TokenMergeModel::State> c,
         const TokenMergeModel::Params&) {
        return TokenMergeModel::count_tokens(c);
      },
      [](int tokens) { return tokens <= 1; });
  EXPECT_TRUE(res.ok) << mc.describe_counterexample(res);
  EXPECT_GT(res.num_bottom_sccs, 0u);
}

TEST(ModelChecker, RejectsBrokenProtocolAndDecodesTheCounterexample) {
  ModelChecker<BrokenMergeModel> mc({3});
  const auto res = mc.check(
      [](std::span<const BrokenMergeModel::State> c,
         const BrokenMergeModel::Params&) {
        return TokenMergeModel::count_tokens(c);
      },
      [](int tokens) { return tokens == 1; });
  EXPECT_FALSE(res.ok);
  ASSERT_TRUE(res.counterexample.has_value());
  // The counterexample is the absorbing zero-token configuration.
  const auto cfg = mc.decode(*res.counterexample);
  EXPECT_EQ(TokenMergeModel::count_tokens(cfg), 0);
  // The decoded rendering names every agent's state — the actionable form
  // (printed by the state_space bench too).
  const std::string pretty = mc.describe_counterexample(res);
  EXPECT_NE(pretty.find("bottom SCC with illegal output"), std::string::npos)
      << pretty;
  EXPECT_NE(pretty.find("u_0: _"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("u_2: _"), std::string::npos) << pretty;
}

/// TokenMergeModel without a describe(): the rendering must degrade to the
/// packed per-agent value, never to garbage.
struct PlainMergeModel {
  using State = TokenMergeModel::State;
  using Params = TokenMergeModel::Params;
  static constexpr bool directed = true;
  static std::size_t num_states(const Params&) { return 2; }
  static std::size_t pack(const State& s, const Params&, int) {
    return static_cast<std::size_t>(s.tok);
  }
  static State unpack(std::size_t v, const Params&, int) {
    return State{static_cast<int>(v)};
  }
  static void apply(State&, State&, const Params&) {}
};

TEST(ModelChecker, DescribeFallsBackToPackedValuesWithoutADescriber) {
  ModelChecker<PlainMergeModel> mc({2});
  const auto pretty = mc.describe_configuration(3);  // (1, 1)
  EXPECT_NE(pretty.find("u_0: q1"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("u_1: q1"), std::string::npos) << pretty;
}

/// 16 states/agent: n = 16 makes per_agent^n = 2^64 overflow uint64; n = 8
/// stays representable (2^32) but exceeds the 32-bit Tarjan index capacity.
struct WideModel {
  struct State {
    int v = 0;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static std::size_t num_states(const Params&) { return 16; }
  static std::size_t pack(const State& s, const Params&, int) {
    return static_cast<std::size_t>(s.v);
  }
  static State unpack(std::size_t v, const Params&, int) {
    return State{static_cast<int>(v)};
  }
  static void apply(State&, State&, const Params&) {}
};

TEST(ModelChecker, Uint64OverflowIsACapacityErrorNotAGarbageVerdict) {
  // 16^17 > 2^64: the old constructor silently wrapped total_, so check()
  // would have "verified" a garbage state space. It must refuse instead.
  ModelChecker<WideModel> mc({17});
  EXPECT_TRUE(mc.capacity_exceeded());
  EXPECT_EQ(mc.num_configurations(), 0u);
  const auto res = mc.check(
      [](std::span<const WideModel::State>, const WideModel::Params&) {
        return 0;
      },
      [](int) { return true; });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.capacity_exceeded);
  EXPECT_NE(res.reason.find("capacity"), std::string::npos) << res.reason;
  EXPECT_FALSE(res.counterexample.has_value());
}

TEST(ModelChecker, Uint32IndexCapacityIsDetectedWithoutAllocating) {
  // 16^8 = 2^32 fits uint64 but not the checker's uint32 index/component
  // packing (0xFFFFFFFF is the unset marker). check() must refuse up front —
  // this test would need ~50 GB if it tried to allocate.
  ModelChecker<WideModel> mc({8});
  EXPECT_TRUE(mc.capacity_exceeded());
  const auto res = mc.check(
      [](std::span<const WideModel::State>, const WideModel::Params&) {
        return 0;
      },
      [](int) { return true; });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.capacity_exceeded);
}

TEST(ModelChecker, CapacityPredicateProbesWithoutConstructing) {
  // The static probe must agree with what a constructed checker reports —
  // callers (the checker bench) use it to auto-select the largest
  // certifiable n before paying for construction.
  EXPECT_TRUE(ModelChecker<TokenMergeModel>::capacity({4}));
  EXPECT_TRUE(ModelChecker<WideModel>::capacity({7}));   // 16^7 = 2^28
  EXPECT_FALSE(ModelChecker<WideModel>::capacity({8}));  // 2^32 > uint32 cap
  EXPECT_FALSE(ModelChecker<WideModel>::capacity({17}));  // uint64 overflow
  // Node budgets tighten the headroom precisely.
  EXPECT_TRUE(ModelChecker<TokenMergeModel>::capacity({10}, 1024));
  EXPECT_FALSE(ModelChecker<TokenMergeModel>::capacity({11}, 1024));
  for (int n = 2; n <= 24; ++n) {
    const bool predicted =
        ModelChecker<TokenMergeModel>::capacity({n}, 1 << 16);
    ModelChecker<TokenMergeModel> mc({n}, 1 << 16);
    EXPECT_EQ(predicted, !mc.capacity_exceeded()) << "n=" << n;
  }
}

TEST(ModelChecker, NodeBudgetIsACapacityErrorWithAnExplicitReason) {
  ModelChecker<TokenMergeModel> mc({12}, 1000);  // 4096 > 1000
  EXPECT_TRUE(mc.capacity_exceeded());
  const auto res = mc.check(
      [](std::span<const TokenMergeModel::State> c,
         const TokenMergeModel::Params&) {
        return TokenMergeModel::count_tokens(c);
      },
      [](int) { return true; });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.capacity_exceeded);
  EXPECT_NE(res.reason.find("node budget"), std::string::npos) << res.reason;
  // The same space fits without the budget.
  ModelChecker<TokenMergeModel> wide({12});
  EXPECT_FALSE(wide.capacity_exceeded());
}

TEST(ModelChecker, InCapacitySpacesReportNoCapacityError) {
  ModelChecker<TokenMergeModel> mc({4});
  EXPECT_FALSE(mc.capacity_exceeded());
  const auto res = mc.check(
      [](std::span<const TokenMergeModel::State> c,
         const TokenMergeModel::Params&) {
        return TokenMergeModel::count_tokens(c);
      },
      [](int tokens) { return tokens <= 1; });
  EXPECT_TRUE(res.ok);
  EXPECT_FALSE(res.capacity_exceeded);
}

/// Per-agent inputs: agent i's state offset by its position; round-trip must
/// respect the position argument.
struct PositionModel {
  struct State {
    int v = 0;  // = raw + agent index
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static std::size_t num_states(const Params&) { return 3; }
  static std::size_t pack(const State& s, const Params&, int agent) {
    return static_cast<std::size_t>(s.v - agent);
  }
  static State unpack(std::size_t v, const Params&, int agent) {
    return State{static_cast<int>(v) + agent};
  }
  static void apply(State&, State&, const Params&) {}
};

TEST(ModelChecker, PositionAwarePacking) {
  ModelChecker<PositionModel> mc({3});
  const auto cfg = mc.decode(14);
  EXPECT_EQ(mc.encode(cfg), 14u);
  // Agent i's decoded value carries the position offset.
  for (int i = 0; i < 3; ++i) {
    const int raw = cfg[static_cast<std::size_t>(i)].v - i;
    EXPECT_GE(raw, 0);
    EXPECT_LT(raw, 3);
  }
}

}  // namespace
}  // namespace ppsim::core
