#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "core/statistics.hpp"

namespace ppsim::core {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, ReproducibleStreams) {
  Xoshiro256pp a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro, BoundedStaysInRange) {
  Xoshiro256pp rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t v = rng.bounded(bound);
      ASSERT_LT(v, bound);
    }
  }
}

TEST(Xoshiro, BoundedOneAlwaysZero) {
  Xoshiro256pp rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro, BoundedIsApproximatelyUniform) {
  Xoshiro256pp rng(2024);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBuckets)];
  // chi-square with 15 dof: 99.999-percentile ~ 44; use a generous bound.
  EXPECT_LT(chi_square_uniform(counts), 60.0);
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256pp rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, CoinIsFair) {
  Xoshiro256pp rng(31);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_NEAR(heads / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro, FillBoundedMatchesBoundedStream) {
  // The batched scheduler depends on this: block sampling must consume the
  // same generator stream and produce the same values as repeated bounded().
  for (std::uint64_t bound : {1ULL, 2ULL, 5ULL, 64ULL, 1000003ULL,
                              (1ULL << 32)}) {
    Xoshiro256pp block_rng(77), step_rng(77);
    std::vector<std::uint32_t> block(4096);
    block_rng.fill_bounded(block.data(), block.size(), bound);
    for (std::size_t i = 0; i < block.size(); ++i) {
      ASSERT_EQ(block[i], static_cast<std::uint32_t>(step_rng.bounded(bound)))
          << "bound=" << bound << " i=" << i;
    }
    // Streams stay aligned after the block (same number of raw draws).
    ASSERT_EQ(block_rng(), step_rng());
  }
}

TEST(Xoshiro, BoundedWithThresholdMatchesBounded) {
  for (std::uint64_t bound : {3ULL, 7ULL, 1024ULL, 999999937ULL}) {
    Xoshiro256pp a(123), b(123);
    const std::uint64_t threshold = Xoshiro256pp::rejection_threshold(bound);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_EQ(a.bounded_with_threshold(bound, threshold), b.bounded(bound));
    }
  }
}

TEST(Xoshiro, FillBoundedIsApproximatelyUniform) {
  // Chi-square uniformity of the block bounded-arc sampler, including a
  // non-power-of-two bucket count (the rejection path must not bias it).
  for (int buckets : {16, 13}) {
    Xoshiro256pp rng(20230515 + buckets);
    constexpr int kDrawsPerBucket = 10000;
    const std::size_t draws =
        static_cast<std::size_t>(buckets) * kDrawsPerBucket;
    std::vector<std::uint32_t> block(draws);
    rng.fill_bounded(block.data(), draws, static_cast<std::uint64_t>(buckets));
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(buckets), 0);
    for (const std::uint32_t v : block) {
      ASSERT_LT(v, static_cast<std::uint32_t>(buckets));
      ++counts[v];
    }
    // 12-15 dof: 99.999-percentile < 48; use a generous bound.
    EXPECT_LT(chi_square_uniform(counts), 60.0) << "buckets=" << buckets;
  }
}

// The lane-parallel engine's whole contract is per-column bit-identity:
// column r of XoshiroLanes loaded from engines e[0..G) must replay stream
// e[r] exactly — raw draws, bounded draws (including every Lemire
// rejection redraw), and the stored-back stream position.
template <typename V>
void check_lanes_bit_identity() {
  constexpr int G = kLanesOf<V>;
  // Includes bounds with negligible rejection probability and a bound just
  // past 2^63 whose rejection threshold fires on ~half of all raw draws —
  // the redraw fixup path is load-bearing there, not theoretical.
  for (const std::uint64_t bound :
       {3ULL, 1024ULL, 999999937ULL, (1ULL << 32), (1ULL << 63) + 1ULL,
        ~0ULL - 5ULL}) {
    const std::uint64_t threshold = Xoshiro256pp::rejection_threshold(bound);
    Xoshiro256pp scalar[G];
    Xoshiro256pp column[G];
    for (int r = 0; r < G; ++r) {
      const std::uint64_t seed = derive_seed(4242, bound, r);
      scalar[r] = Xoshiro256pp(seed);
      column[r] = Xoshiro256pp(seed);
    }
    XoshiroLanes<V> lanes;
    lanes.load(column);
    for (int i = 0; i < 4000; ++i) {
      const V hi = lanes.bounded_with_threshold(bound, threshold);
      for (int r = 0; r < G; ++r) {
        ASSERT_EQ(hi[r], scalar[r].bounded_with_threshold(bound, threshold))
            << "bound=" << bound << " draw=" << i << " column=" << r;
      }
    }
    // Stored-back streams sit at the same position as the scalar ones:
    // the next raw draw agrees per column.
    lanes.store(column);
    for (int r = 0; r < G; ++r)
      ASSERT_EQ(column[r](), scalar[r]()) << "bound=" << bound << " r=" << r;
  }
}

TEST(XoshiroLanes, FourColumnsBitIdenticalToScalarStreams) {
  check_lanes_bit_identity<WordVec>();
}

TEST(XoshiroLanes, EightColumnsBitIdenticalToScalarStreams) {
  check_lanes_bit_identity<WordVec8>();
}

TEST(XoshiroLanes, RawNextMatchesScalarOperator) {
  Xoshiro256pp scalar[kWordLanes];
  Xoshiro256pp column[kWordLanes];
  for (int r = 0; r < kWordLanes; ++r)
    scalar[r] = column[r] = Xoshiro256pp(derive_seed(5, 0, r));
  XoshiroLanes<WordVec> lanes;
  lanes.load(column);
  for (int i = 0; i < 1000; ++i) {
    const WordVec v = lanes.next();
    for (int r = 0; r < kWordLanes; ++r) ASSERT_EQ(v[r], scalar[r]());
  }
}

TEST(DeriveSeed, DistinctPerIndexAndTag) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t tag = 0; tag < 10; ++tag)
    for (std::uint64_t i = 0; i < 100; ++i)
      seeds.insert(derive_seed(99, tag, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
}

}  // namespace
}  // namespace ppsim::core
