#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "core/statistics.hpp"

namespace ppsim::core {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, ReproducibleStreams) {
  Xoshiro256pp a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro, BoundedStaysInRange) {
  Xoshiro256pp rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t v = rng.bounded(bound);
      ASSERT_LT(v, bound);
    }
  }
}

TEST(Xoshiro, BoundedOneAlwaysZero) {
  Xoshiro256pp rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro, BoundedIsApproximatelyUniform) {
  Xoshiro256pp rng(2024);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBuckets)];
  // chi-square with 15 dof: 99.999-percentile ~ 44; use a generous bound.
  EXPECT_LT(chi_square_uniform(counts), 60.0);
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256pp rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, CoinIsFair) {
  Xoshiro256pp rng(31);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_NEAR(heads / 100000.0, 0.5, 0.01);
}

TEST(DeriveSeed, DistinctPerIndexAndTag) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t tag = 0; tag < 10; ++tag)
    for (std::uint64_t i = 0; i < 100; ++i)
      seeds.insert(derive_seed(99, tag, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
}

}  // namespace
}  // namespace ppsim::core
