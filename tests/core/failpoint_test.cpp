// The failpoint subsystem (core/failpoint.hpp) is the chaos harness's
// foundation: if a schedule misparses, fires nondeterministically, or a
// site silently ignores its spec, every self-healing proof built on top is
// vacuous. This suite pins the spec grammar, the exact firing order of
// counted schedules, the seeded determinism of probabilistic schedules, the
// registry's enumerable contract (unknown sites refused, armed sites
// listed, hit/fired ledgers kept), and the unarmed fast path staying
// outcome-free.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/failpoint.hpp"

namespace {

using namespace ppsim::core;

/// Every test runs against the process-global registry; scrub it on both
/// sides so suites compose in one binary.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::instance().disarm_all(); }
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }

  FailpointRegistry& reg() { return FailpointRegistry::instance(); }
};

// --- Fast path and registry contract --------------------------------------

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(reg().any_armed());
  for (const char* site : failpoints::kAll) {
    const FailOutcome fo = failpoint(site);
    EXPECT_FALSE(fo.fired()) << site;
    EXPECT_EQ(fo.action, FailAction::kNone) << site;
  }
  // Unarmed hits are not even counted — the fast path takes no lock.
  EXPECT_EQ(reg().hits(failpoints::kCkptWrite), 0u);
}

TEST_F(FailpointTest, UnknownSiteIsRefusedLoudly) {
  EXPECT_THROW(reg().arm("service.ckpt.wrlte", "eintr"),
               std::invalid_argument);
  EXPECT_THROW(reg().arm("", "eintr"), std::invalid_argument);
  EXPECT_FALSE(reg().any_armed());
}

TEST_F(FailpointTest, EverySiteInTheRegistryIsArmable) {
  for (const char* site : failpoints::kAll) {
    ASSERT_TRUE(failpoints::known_site(site));
    reg().arm(site, "eintr");
    EXPECT_TRUE(reg().armed(site)) << site;
  }
  EXPECT_EQ(reg().armed_sites().size(),
            static_cast<std::size_t>(failpoints::kCount));
  for (const char* site : failpoints::kAll) {
    const FailOutcome fo = failpoint(site);
    EXPECT_EQ(fo.action, FailAction::kErrno) << site;
    EXPECT_EQ(fo.err, EINTR) << site;
  }
}

TEST_F(FailpointTest, MalformedSpecsAreRefused) {
  const char* site = failpoints::kCkptWrite;
  for (const char* bad :
       {"", "bogus", "0xeintr", "p500xeintr", "p1001@1xeintr", "short:",
        "short:abc", "errno:", "delay:", "eintr+", "+eintr",
        "*xeintr+enospc", "p500@7xeintr+eintr"}) {
    EXPECT_THROW(reg().arm(site, bad), std::invalid_argument) << bad;
  }
  EXPECT_FALSE(reg().any_armed());
}

// --- Counted schedules: exact firing order ---------------------------------

TEST_F(FailpointTest, FailOnceThenDisarms) {
  reg().arm(failpoints::kCkptWrite, "enospc");
  const FailOutcome first = failpoint(failpoints::kCkptWrite);
  EXPECT_EQ(first.action, FailAction::kErrno);
  EXPECT_EQ(first.err, ENOSPC);
  // The schedule is exhausted — the site disarms itself, restoring the
  // fast path, and subsequent hits run the real operation.
  EXPECT_FALSE(reg().armed(failpoints::kCkptWrite));
  EXPECT_FALSE(failpoint(failpoints::kCkptWrite).fired());
  EXPECT_EQ(reg().fired(failpoints::kCkptWrite), 1u);
}

TEST_F(FailpointTest, SkipThenFailNTimesPositionsTheFault) {
  reg().arm(failpoints::kFileSinkWrite, "2xskip+3xeintr");
  std::vector<bool> fired;
  for (int i = 0; i < 7; ++i)
    fired.push_back(failpoint(failpoints::kFileSinkWrite).fired());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true, false,
                                      false}));
  EXPECT_EQ(reg().hits(failpoints::kFileSinkWrite), 5u)
      << "hits stop counting once the schedule exhausts and disarms";
  EXPECT_EQ(reg().fired(failpoints::kFileSinkWrite), 3u);
}

TEST_F(FailpointTest, ForeverUnitNeverExhausts) {
  reg().arm(failpoints::kFdSinkWrite, "*xeagain");
  for (int i = 0; i < 100; ++i) {
    const FailOutcome fo = failpoint(failpoints::kFdSinkWrite);
    ASSERT_EQ(fo.action, FailAction::kErrno);
    ASSERT_EQ(fo.err, EAGAIN);
  }
  EXPECT_TRUE(reg().armed(failpoints::kFdSinkWrite));
}

TEST_F(FailpointTest, ActionArgumentsParse) {
  reg().arm(failpoints::kFdSinkWrite, "short:3");
  const FailOutcome sw = failpoint(failpoints::kFdSinkWrite);
  EXPECT_EQ(sw.action, FailAction::kShortWrite);
  EXPECT_EQ(sw.arg, 3u);

  reg().arm(failpoints::kCkptRead, "errno:28");  // ENOSPC by number
  const FailOutcome en = failpoint(failpoints::kCkptRead);
  EXPECT_EQ(en.action, FailAction::kErrno);
  EXPECT_EQ(en.err, 28);

  reg().arm(failpoints::kWorkerShard, "throw");
  EXPECT_EQ(failpoint(failpoints::kWorkerShard).action, FailAction::kThrow);

  // delay:0 — the sleep already happened (0 ms) inside hit(); the caller
  // sees kDelay and runs the real operation.
  reg().arm(failpoints::kFileSinkFlush, "delay:0");
  const FailOutcome d = failpoint(failpoints::kFileSinkFlush);
  EXPECT_EQ(d.action, FailAction::kDelay);
  EXPECT_EQ(d.arg, 0u);
}

// --- Probabilistic schedules: seeded determinism ---------------------------

TEST_F(FailpointTest, ProbabilisticScheduleIsSeedDeterministic) {
  const auto pattern = [&](const std::string& spec) {
    reg().disarm_all();
    reg().arm(failpoints::kWorkerShard, spec);
    std::vector<bool> fired;
    for (int i = 0; i < 256; ++i)
      fired.push_back(failpoint(failpoints::kWorkerShard).fired());
    return fired;
  };
  const auto a = pattern("p250@42xeintr");
  const auto b = pattern("p250@42xeintr");
  EXPECT_EQ(a, b) << "same seed must reproduce the same firing pattern";
  const auto c = pattern("p250@43xeintr");
  EXPECT_NE(a, c) << "a different seed must decorrelate the pattern";

  int fired_n = 0;
  for (const bool f : a) fired_n += f ? 1 : 0;
  // 256 draws at permille 250: a ~0.25 rate, loosely bounded (the exact
  // pattern is already pinned by the determinism check above).
  EXPECT_GT(fired_n, 25);
  EXPECT_LT(fired_n, 130);
}

TEST_F(FailpointTest, PermilleEdgesNeverAndAlways) {
  reg().arm(failpoints::kWorkerShard, "p0@1xeintr");
  for (int i = 0; i < 64; ++i)
    ASSERT_FALSE(failpoint(failpoints::kWorkerShard).fired());
  reg().disarm_all();
  reg().arm(failpoints::kWorkerShard, "p1000@1xeintr");
  for (int i = 0; i < 64; ++i)
    ASSERT_TRUE(failpoint(failpoints::kWorkerShard).fired());
}

// --- Config strings (the env-var activation path) --------------------------

TEST_F(FailpointTest, ConfigStringArmsMultipleSites) {
  const int armed = reg().configure(
      "service.ckpt.write=enospc;service.file_sink.write=2xskip+1xeintr");
  EXPECT_EQ(armed, 2);
  EXPECT_TRUE(reg().armed(failpoints::kCkptWrite));
  EXPECT_TRUE(reg().armed(failpoints::kFileSinkWrite));
  EXPECT_EQ(reg().configure(""), 0);
  EXPECT_THROW(reg().configure("service.ckpt.write"), std::invalid_argument);
  EXPECT_THROW(reg().configure("=eintr"), std::invalid_argument);
}

TEST_F(FailpointTest, ConfigureFromEnvReadsPpsimFailpoints) {
  ::setenv("PPSIM_FAILPOINTS", "service.ckpt.rename=eio", 1);
  EXPECT_EQ(reg().configure_from_env(), 1);
  EXPECT_TRUE(reg().armed(failpoints::kCkptRename));
  ::unsetenv("PPSIM_FAILPOINTS");
  reg().disarm_all();
  EXPECT_EQ(reg().configure_from_env(), 0);
  EXPECT_FALSE(reg().any_armed());
}

TEST_F(FailpointTest, RearmReplacesTheSchedule) {
  reg().arm(failpoints::kCkptWrite, "5xeintr");
  reg().arm(failpoints::kCkptWrite, "enospc");  // replace, don't append
  const FailOutcome fo = failpoint(failpoints::kCkptWrite);
  EXPECT_EQ(fo.err, ENOSPC);
  EXPECT_FALSE(reg().armed(failpoints::kCkptWrite));
  // any_armed must not drift when insert_or_assign replaced (not inserted).
  EXPECT_FALSE(reg().any_armed());
}

TEST_F(FailpointTest, FiredTotalSumsAcrossSites) {
  reg().arm(failpoints::kCkptWrite, "2xeintr");
  reg().arm(failpoints::kCkptFsync, "eio");
  for (int i = 0; i < 3; ++i) (void)failpoint(failpoints::kCkptWrite);
  (void)failpoint(failpoints::kCkptFsync);
  EXPECT_EQ(reg().fired_total(), 3u);
}

}  // namespace
