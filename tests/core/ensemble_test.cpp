// Ensemble-vs-Runner equivalence: every ring of an EnsembleRunner must be
// bit-identical to a standalone Runner constructed with the same params,
// initial configuration and seed — trajectory, steps, leader/token census,
// last_leader_change, oracle reports (via oracle-protocol transitions) and
// run_until_each hitting steps — for every census shape the engine
// specializes on, on directed and undirected rings, and for the four study
// protocols. On top of the engine-level checks, the migrated analysis
// drivers (measure_convergence / measure_convergence_parallel /
// measure_recovery) are compared trial-for-trial against the retained
// per-trial reference paths (detail::convergence_trial /
// detail::recovery_trial) across thread counts — the acceptance bar for the
// trial-batched campaign engine is "not a single published number changes".
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/adversary.hpp"
#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "baselines/fischer_jiang.hpp"
#include "baselines/modk.hpp"
#include "baselines/yokota28.hpp"
#include "core/ensemble.hpp"
#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/protocol.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::core {
namespace {

/// Toy leader protocol (leader-only census path).
struct LeaderProto {
  struct State {
    std::uint8_t leader = 0;
    std::uint8_t age = 0;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static void apply(State& l, State& r, const Params&) {
    ++r.age;
    if (l.leader == 1 && r.leader == 1) r.leader = 0;
    if (l.age == 0xFF && r.leader == 0) {
      r.leader = 1;
      l.age = 0;
    }
  }
  static bool is_leader(const State& s, const Params&) {
    return s.leader == 1;
  }
};

/// Undirected variant (2n arcs — exercises the reverse-arc mapping shared
/// through core::arc_endpoints).
struct UndirectedLeaderProto : LeaderProto {
  static constexpr bool directed = false;
};

/// Oracle + token census toy (snapshot-skip path + InteractionContext).
struct OracleTokenProto {
  struct State {
    std::uint8_t leader = 0;
    std::uint8_t token = 0;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static void apply(State& l, State& r, const Params&,
                    const InteractionContext& ctx) {
    if (ctx.no_leader) {
      r.leader = 1;
      r.token = 1;
    } else if (l.token == 1 && r.leader == 1) {
      l.token = 0;
      r.leader = 0;
    } else if (l.token == 1 && r.token == 0) {
      l.token = 0;
      r.token = 1;
    }
  }
  static bool is_leader(const State& s, const Params&) {
    return s.leader == 1;
  }
  static bool has_token(const State& s, const Params&) {
    return s.token == 1;
  }
};

/// Mirror an R-ring ensemble against R standalone Runners through uneven
/// run() chunks, comparing full per-ring state and bookkeeping at every sync
/// point. `Eq(a, b)` compares agent states.
template <typename P, typename Eq>
void expect_rings_equivalent(const typename P::Params& params,
                             std::vector<std::vector<typename P::State>> inits,
                             std::uint64_t total_steps, Eq&& eq,
                             std::uint64_t oracle_delay = 0) {
  const int R = static_cast<int>(inits.size());
  EnsembleRunner<P> ensemble(params, R);
  std::vector<Runner<P>> runners;
  for (int r = 0; r < R; ++r) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(r) * 77;
    ensemble.add_ring(inits[static_cast<std::size_t>(r)], seed);
    runners.emplace_back(params, inits[static_cast<std::size_t>(r)], seed);
  }
  if (oracle_delay != 0) {
    ensemble.set_oracle_delay(oracle_delay);
    for (auto& rn : runners) rn.set_oracle_delay(oracle_delay);
  }
  ASSERT_EQ(ensemble.ring_count(), R);

  const std::uint64_t chunks[] = {1, 7, 501, 1024, 63, 333};
  std::uint64_t done = 0;
  std::size_t c = 0;
  while (done < total_steps) {
    const std::uint64_t k =
        std::min(chunks[c++ % std::size(chunks)], total_steps - done);
    ensemble.run(k);
    done += k;
    for (int r = 0; r < R; ++r) {
      auto& rn = runners[static_cast<std::size_t>(r)];
      rn.run(k);
      ASSERT_EQ(ensemble.steps(r), rn.steps()) << "ring " << r;
      ASSERT_EQ(ensemble.leader_count(r), rn.leader_count()) << "ring " << r;
      ASSERT_EQ(ensemble.token_count(r), rn.token_count()) << "ring " << r;
      ASSERT_EQ(ensemble.last_leader_change(r), rn.last_leader_change())
          << "ring " << r;
      for (int i = 0; i < params.n; ++i) {
        ASSERT_TRUE(eq(ensemble.agent(r, i), rn.agent(i)))
            << "ring " << r << " agent " << i << " at step " << rn.steps();
      }
    }
  }
}

TEST(EnsembleRunner, LeaderCensusRingsMatchStandaloneRunners) {
  const LeaderProto::Params p{16};
  std::vector<std::vector<LeaderProto::State>> inits;
  for (int r = 0; r < 7; ++r) {
    std::vector<LeaderProto::State> init(16);
    init[static_cast<std::size_t>(r % 16)].leader = 1;
    if (r % 2 == 0) init[5].leader = 1;
    inits.push_back(std::move(init));
  }
  expect_rings_equivalent<LeaderProto>(
      p, std::move(inits), 30'000,
      [](const LeaderProto::State& x, const LeaderProto::State& y) {
        return x.leader == y.leader && x.age == y.age;
      });
}

TEST(EnsembleRunner, UndirectedRingsMatchStandaloneRunners) {
  const UndirectedLeaderProto::Params p{12};
  std::vector<std::vector<UndirectedLeaderProto::State>> inits;
  for (int r = 0; r < 5; ++r) {
    std::vector<UndirectedLeaderProto::State> init(12);
    init[static_cast<std::size_t>((3 * r) % 12)].leader = 1;
    inits.push_back(std::move(init));
  }
  expect_rings_equivalent<UndirectedLeaderProto>(
      p, std::move(inits), 30'000,
      [](const UndirectedLeaderProto::State& x,
         const UndirectedLeaderProto::State& y) {
        return x.leader == y.leader && x.age == y.age;
      });
}

TEST(EnsembleRunner, OracleTokenRingsMatchWithOracleDelay) {
  const OracleTokenProto::Params p{10};
  std::vector<std::vector<OracleTokenProto::State>> inits(
      6, std::vector<OracleTokenProto::State>(10));
  expect_rings_equivalent<OracleTokenProto>(
      p, std::move(inits), 25'000,
      [](const OracleTokenProto::State& x, const OracleTokenProto::State& y) {
        return x.leader == y.leader && x.token == y.token;
      },
      /*oracle_delay=*/37);
}

TEST(EnsembleRunner, StudyProtocolRingsMatchStandaloneRunners) {
  {
    const auto p = pl::PlParams::make(16, 4);
    core::Xoshiro256pp rng(5);
    std::vector<std::vector<pl::PlState>> inits;
    for (int r = 0; r < 5; ++r) inits.push_back(pl::random_config(p, rng));
    expect_rings_equivalent<pl::PlProtocol>(
        p, std::move(inits), 20'000,
        [](const pl::PlState& x, const pl::PlState& y) { return x == y; });
  }
  {
    const auto p = baselines::FjParams::make(14);
    core::Xoshiro256pp rng(6);
    std::vector<std::vector<baselines::FjState>> inits;
    for (int r = 0; r < 5; ++r)
      inits.push_back(baselines::fj_random_config(p, rng));
    expect_rings_equivalent<baselines::FischerJiang>(
        p, std::move(inits), 20'000,
        [](const baselines::FjState& x, const baselines::FjState& y) {
          return x == y;
        });
  }
  {
    const auto p = baselines::ModkParams::make(15, 2);
    core::Xoshiro256pp rng(7);
    std::vector<std::vector<baselines::ModkState>> inits;
    for (int r = 0; r < 5; ++r)
      inits.push_back(baselines::modk_random_config(p, rng));
    expect_rings_equivalent<baselines::Modk>(
        p, std::move(inits), 20'000,
        [](const baselines::ModkState& x, const baselines::ModkState& y) {
          return x == y;
        });
  }
  {
    const auto p = baselines::Y28Params::make(12);
    core::Xoshiro256pp rng(8);
    std::vector<std::vector<baselines::Y28State>> inits;
    for (int r = 0; r < 5; ++r)
      inits.push_back(baselines::y28_random_config(p, rng));
    expect_rings_equivalent<baselines::Yokota28>(
        p, std::move(inits), 20'000,
        [](const baselines::Y28State& x, const baselines::Y28State& y) {
          return x == y;
        });
  }
}

TEST(EnsembleRunner, RunRingAndSetAgentMatchStandaloneRunner) {
  // Ragged per-ring advancement (run_ring) interleaved with fault injection
  // through both set_agent surfaces — the exact-offset scheduling the
  // recovery engine uses.
  const OracleTokenProto::Params p{8};
  EnsembleRunner<OracleTokenProto> ensemble(p, 3);
  std::vector<Runner<OracleTokenProto>> runners;
  std::vector<OracleTokenProto::State> init(8);
  for (int r = 0; r < 3; ++r) {
    ensemble.add_ring(init, 50 + static_cast<std::uint64_t>(r));
    runners.emplace_back(p, init, 50 + static_cast<std::uint64_t>(r));
  }
  Xoshiro256pp fault_rng(0xFA17);
  for (int round = 0; round < 40; ++round) {
    for (int r = 0; r < 3; ++r) {
      const std::uint64_t k = 1 + fault_rng.bounded(97) * static_cast<std::uint64_t>(r + 1);
      ensemble.run_ring(r, k);
      runners[static_cast<std::size_t>(r)].run(k);
      OracleTokenProto::State s;
      s.leader = static_cast<std::uint8_t>(fault_rng.bounded(2));
      s.token = static_cast<std::uint8_t>(fault_rng.bounded(2));
      const int idx = static_cast<int>(fault_rng.bounded(8));
      ensemble.set_agent(r, idx, s);
      runners[static_cast<std::size_t>(r)].set_agent(idx, s);
    }
    for (int r = 0; r < 3; ++r) {
      auto& rn = runners[static_cast<std::size_t>(r)];
      ASSERT_EQ(ensemble.steps(r), rn.steps());
      ASSERT_EQ(ensemble.leader_count(r), rn.leader_count());
      ASSERT_EQ(ensemble.token_count(r), rn.token_count());
      ASSERT_EQ(ensemble.last_leader_change(r), rn.last_leader_change());
      for (int i = 0; i < p.n; ++i) {
        ASSERT_EQ(ensemble.agent(r, i).leader, rn.agent(i).leader);
        ASSERT_EQ(ensemble.agent(r, i).token, rn.agent(i).token);
      }
    }
  }
}

TEST(EnsembleRunner, PackedModeDrivesModkBitIdentically) {
  // modk exposes the canonical state enumeration, so the ensemble runs it
  // through the precomputed pair-transition table. Trajectories, censuses
  // and last_leader_change must still match standalone Runners exactly —
  // including across in-domain set_agent faults, which keep packed mode on.
  const auto p = baselines::ModkParams::make(17, 2);
  core::Xoshiro256pp rng(9);
  EnsembleRunner<baselines::Modk> ensemble(p, 4);
  ASSERT_TRUE(ensemble.packed_mode());  // table built at construction
  std::vector<Runner<baselines::Modk>> runners;
  for (int r = 0; r < 4; ++r) {
    auto init = baselines::modk_random_config(p, rng);
    ensemble.add_ring(init, 600 + static_cast<std::uint64_t>(r));
    runners.emplace_back(p, std::move(init),
                         600 + static_cast<std::uint64_t>(r));
  }
  EXPECT_TRUE(ensemble.packed_mode());
  Xoshiro256pp fault_rng(0xF00D);
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t k = 1 + fault_rng.bounded(800);
    ensemble.run(k);
    for (int r = 0; r < 4; ++r) runners[static_cast<std::size_t>(r)].run(k);
    // One in-domain fault per round into a rotating ring.
    const int r = round % 4;
    const int idx = static_cast<int>(fault_rng.bounded(17));
    const auto s = baselines::modk_random_state(p, fault_rng);
    ensemble.set_agent(r, idx, s);
    runners[static_cast<std::size_t>(r)].set_agent(idx, s);
    ASSERT_TRUE(ensemble.packed_mode());
    for (int q = 0; q < 4; ++q) {
      auto& rn = runners[static_cast<std::size_t>(q)];
      ASSERT_EQ(ensemble.steps(q), rn.steps());
      ASSERT_EQ(ensemble.leader_count(q), rn.leader_count());
      ASSERT_EQ(ensemble.last_leader_change(q), rn.last_leader_change());
      for (int i = 0; i < p.n; ++i)
        ASSERT_EQ(ensemble.agent(q, i), rn.agent(i))
            << "ring " << q << " agent " << i;
    }
  }
}

TEST(EnsembleRunner, OutOfDomainFaultFallsBackToGenericPathExactly) {
  // A state outside the canonical enumeration (lab >= k) cannot be packed;
  // the ensemble must drop to the generic path — permanently — and keep
  // producing exactly the Runner trajectory, not a corrupted table lookup.
  const auto p = baselines::ModkParams::make(9, 2);
  EnsembleRunner<baselines::Modk> ensemble(p, 2);
  std::vector<Runner<baselines::Modk>> runners;
  for (int r = 0; r < 2; ++r) {
    std::vector<baselines::ModkState> init(9);
    ensemble.add_ring(init, 80 + static_cast<std::uint64_t>(r));
    runners.emplace_back(p, std::move(init),
                         80 + static_cast<std::uint64_t>(r));
  }
  EXPECT_TRUE(ensemble.packed_mode());
  ensemble.run(777);
  for (auto& rn : runners) rn.run(777);

  baselines::ModkState weird;
  weird.lab = 7;  // out of Z_2
  weird.leader = 1;
  ensemble.set_agent(0, 3, weird);
  runners[0].set_agent(3, weird);
  EXPECT_FALSE(ensemble.packed_mode());

  ensemble.run(2'000);
  for (int r = 0; r < 2; ++r) {
    auto& rn = runners[static_cast<std::size_t>(r)];
    rn.run(2'000);
    ASSERT_EQ(ensemble.leader_count(r), rn.leader_count());
    ASSERT_EQ(ensemble.last_leader_change(r), rn.last_leader_change());
    for (int i = 0; i < p.n; ++i)
      ASSERT_EQ(ensemble.agent(r, i), rn.agent(i)) << "ring " << r;
  }
}

TEST(EnsembleRunner, RunUntilEachMatchesPerRingRunUntil) {
  // Hitting steps (including the retire-and-compact bookkeeping) must equal
  // Runner::run_until ring for ring, for mixed convergence speeds and
  // timeouts, and the retired rings must stop consuming randomness: after
  // the call, resuming every ring must still track the standalone runners.
  const auto p = pl::PlParams::make(12, 4);
  core::Xoshiro256pp rng(42);
  const int R = 9;
  EnsembleRunner<pl::PlProtocol> ensemble(p, R);
  std::vector<Runner<pl::PlProtocol>> runners;
  for (int r = 0; r < R; ++r) {
    // A mix of already-safe rings (hit at step 0), random rings (hit later)
    // and — via the tiny budget below — timeouts.
    auto init = (r % 3 == 0) ? pl::make_safe_config(p)
                             : pl::random_config(p, rng);
    const std::uint64_t seed = 7 + static_cast<std::uint64_t>(r);
    ensemble.add_ring(init, seed);
    runners.emplace_back(p, std::move(init), seed);
  }
  const std::uint64_t max_steps = 40'000;
  const std::uint64_t check_every = 64;
  const auto hits =
      ensemble.run_until_each(pl::SafePredicate{}, max_steps, check_every);
  ASSERT_EQ(hits.size(), static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    const auto want = runners[static_cast<std::size_t>(r)].run_until(
        pl::SafePredicate{}, max_steps, check_every);
    EXPECT_EQ(hits[static_cast<std::size_t>(r)],
              want.value_or(Runner<pl::PlProtocol>::npos))
        << "ring " << r;
    ASSERT_EQ(ensemble.steps(r), runners[static_cast<std::size_t>(r)].steps());
  }
  // Streams stayed aligned through retirement: resume and re-compare.
  ensemble.run(500);
  for (int r = 0; r < R; ++r) {
    auto& rn = runners[static_cast<std::size_t>(r)];
    rn.run(500);
    ASSERT_EQ(ensemble.steps(r), rn.steps());
    for (int i = 0; i < p.n; ++i)
      ASSERT_EQ(ensemble.agent(r, i), rn.agent(i)) << "ring " << r;
  }
}

TEST(EnsembleRunner, RunUntilEachZeroBudgetMatchesRunner) {
  const auto p = pl::PlParams::make(8, 2);
  core::Xoshiro256pp rng(3);
  EnsembleRunner<pl::PlProtocol> ensemble(p, 2);
  std::vector<Runner<pl::PlProtocol>> runners;
  for (int r = 0; r < 2; ++r) {
    auto init = r == 0 ? pl::make_safe_config(p) : pl::random_config(p, rng);
    ensemble.add_ring(init, 11);
    runners.emplace_back(p, std::move(init), 11);
  }
  const auto hits = ensemble.run_until_each(pl::SafePredicate{}, 0);
  EXPECT_EQ(hits[0], runners[0].run_until(pl::SafePredicate{}, 0).value_or(
                         Runner<pl::PlProtocol>::npos));
  EXPECT_EQ(hits[1], runners[1].run_until(pl::SafePredicate{}, 0).value_or(
                         Runner<pl::PlProtocol>::npos));
  EXPECT_EQ(hits[0], 0u);                              // already safe
  EXPECT_EQ(hits[1], Runner<pl::PlProtocol>::npos);    // no budget to hit
}

// ---------------------------------------------------------------------------
// Migrated analysis drivers vs the retained per-trial reference paths.

TEST(EnsembleMigration, MeasureConvergenceMatchesPerTrialReference) {
  const auto p = pl::PlParams::make(8, 2);
  auto gen = [&](core::Xoshiro256pp& r) { return pl::random_config(p, r); };
  pl::SafePredicate pred{};
  const int trials = 70;  // > shard width, exercises multi-shard folding
  const std::uint64_t max_steps = 50'000'000, seed_base = 11, tag = 5;
  std::vector<std::uint64_t> want(trials);
  for (int t = 0; t < trials; ++t) {
    want[static_cast<std::size_t>(t)] =
        analysis::detail::convergence_trial<pl::PlProtocol>(
            p, gen, pred, max_steps, seed_base, tag,
            static_cast<std::uint64_t>(t), 0);
  }
  const auto stats = analysis::measure_convergence<pl::PlProtocol>(
      p, gen, pred, trials, max_steps, seed_base, tag);
  ASSERT_EQ(stats.trials, trials);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.raw, want);
}

TEST(EnsembleMigration, MeasureConvergenceParallelMatchesReferenceAllThreads) {
  const auto p = pl::PlParams::make(8, 2);
  auto gen = [&](core::Xoshiro256pp& r) { return pl::random_config(p, r); };
  pl::SafePredicate pred{};
  const int trials = 50;
  const std::uint64_t max_steps = 50'000'000, seed_base = 13, tag = 9;
  std::vector<std::uint64_t> want(trials);
  for (int t = 0; t < trials; ++t) {
    want[static_cast<std::size_t>(t)] =
        analysis::detail::convergence_trial<pl::PlProtocol>(
            p, gen, pred, max_steps, seed_base, tag,
            static_cast<std::uint64_t>(t), 0);
  }
  for (int threads : {1, 2, 5}) {
    const auto stats = analysis::measure_convergence_parallel<pl::PlProtocol>(
        p, gen, pred, trials, max_steps, seed_base, tag, threads);
    EXPECT_EQ(stats.raw, want) << "threads=" << threads;
  }
}

TEST(EnsembleMigration, MeasureRecoveryMatchesPerTrialReferenceAllThreads) {
  // Storm schedule (exact-offset injections mid-recovery) on two protocols;
  // the folded stats (raw vectors included) compared against
  // detail::recovery_trial run trial for trial.
  {
    const auto p = pl::PlParams::make(12, 4);
    analysis::TrialPlan plan;
    plan.trials = 11;  // not a multiple of any shard width
    plan.max_steps = 50'000'000;
    plan.seed_base = 21;
    plan.tag = analysis::campaign_tag(6, p.n, 3);
    const auto spec = analysis::make_recovery_scenario<pl::PlProtocol>(
        "storm", analysis::storm_schedule(3, 17), plan);
    std::vector<analysis::RecoveryTrial> want;
    for (int t = 0; t < plan.trials; ++t)
      want.push_back(analysis::detail::recovery_trial<pl::PlProtocol>(
          p, spec, static_cast<std::uint64_t>(t)));
    for (int threads : {1, 3}) {
      auto spec_t = spec;
      spec_t.plan.threads = threads;
      const auto stats = analysis::measure_recovery<pl::PlProtocol>(p, spec_t);
      const auto want_stats = analysis::detail::fold_recovery(want);
      EXPECT_EQ(stats.raw, want_stats.raw) << "threads=" << threads;
      EXPECT_EQ(stats.stabilization_failures, want_stats.stabilization_failures);
      EXPECT_EQ(stats.recovery_failures, want_stats.recovery_failures);
      EXPECT_EQ(stats.trials, want_stats.trials);
    }
  }
  {
    const auto p = baselines::FjParams::make(12);
    analysis::TrialPlan plan;
    plan.trials = 9;
    plan.max_steps = 50'000'000;
    plan.seed_base = 23;
    plan.tag = analysis::campaign_tag(7, p.n, 2);
    const auto spec = analysis::make_recovery_scenario<baselines::FischerJiang>(
        "burst", analysis::burst_schedule(2), plan);
    std::vector<analysis::RecoveryTrial> want;
    for (int t = 0; t < plan.trials; ++t)
      want.push_back(analysis::detail::recovery_trial<baselines::FischerJiang>(
          p, spec, static_cast<std::uint64_t>(t)));
    const auto stats =
        analysis::measure_recovery<baselines::FischerJiang>(p, spec);
    const auto want_stats = analysis::detail::fold_recovery(want);
    EXPECT_EQ(stats.raw, want_stats.raw);
    EXPECT_EQ(stats.stabilization_failures, want_stats.stabilization_failures);
    EXPECT_EQ(stats.recovery_failures, want_stats.recovery_failures);
  }
  {
    // modk runs the whole recovery campaign in packed mode (injections stay
    // inside the canonical domain): the table path must reproduce the
    // per-trial Runner numbers too.
    const auto p = baselines::ModkParams::make(13, 2);
    analysis::TrialPlan plan;
    plan.trials = 10;
    plan.max_steps = 50'000'000;
    plan.seed_base = 29;
    plan.tag = analysis::campaign_tag(8, p.n, 2);
    const auto spec = analysis::make_recovery_scenario<baselines::Modk>(
        "storm", analysis::storm_schedule(2, 13), plan);
    std::vector<analysis::RecoveryTrial> want;
    for (int t = 0; t < plan.trials; ++t)
      want.push_back(analysis::detail::recovery_trial<baselines::Modk>(
          p, spec, static_cast<std::uint64_t>(t)));
    const auto stats = analysis::measure_recovery<baselines::Modk>(p, spec);
    const auto want_stats = analysis::detail::fold_recovery(want);
    EXPECT_EQ(stats.raw, want_stats.raw);
    EXPECT_EQ(stats.stabilization_failures, want_stats.stabilization_failures);
    EXPECT_EQ(stats.recovery_failures, want_stats.recovery_failures);
  }
}

}  // namespace
}  // namespace ppsim::core
