#include "core/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ppsim::core {
namespace {

TEST(Summarize, BasicMoments) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{7.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 10.0);
}

TEST(FitLinear, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitPower, RecoversExponent) {
  std::vector<double> x, y;
  for (double n : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    x.push_back(n);
    y.push_back(3.5 * n * n);  // y = 3.5 n^2
  }
  const PowerFit f = fit_power(x, y);
  EXPECT_NEAR(f.exponent, 2.0, 1e-9);
  EXPECT_NEAR(f.constant, 3.5, 1e-6);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitPower, RecoversNSquaredLogN) {
  // The Theorem-3.1 shape: exponent estimate must land between 2 and 2.5.
  std::vector<double> x, y;
  for (double n : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
    x.push_back(n);
    y.push_back(n * n * std::log2(n));
  }
  const PowerFit f = fit_power(x, y);
  EXPECT_GT(f.exponent, 2.0);
  EXPECT_LT(f.exponent, 2.5);
}

TEST(FitPower, MarksValidFits) {
  const std::vector<double> x{2, 4, 8};
  const std::vector<double> y{4, 16, 64};
  const PowerFit f = fit_power(x, y);
  EXPECT_TRUE(f.valid);
  EXPECT_EQ(f.skipped, 0);
}

TEST(FitPower, SkipsDegeneratePointsInsteadOfNaN) {
  // Zero/negative/non-finite coordinates have no log-log image. In Release
  // builds the old assert vanished and such points silently poisoned the
  // regression with -inf; now they are skipped and counted.
  const std::vector<double> x{8, 16, 0, 32, 64, 128};
  const std::vector<double> y{3.5 * 64,   3.5 * 256, 100, 0,
                              3.5 * 4096, std::nan("")};
  const PowerFit f = fit_power(x, y);
  EXPECT_TRUE(f.valid);
  EXPECT_EQ(f.skipped, 3);
  EXPECT_NEAR(f.exponent, 2.0, 1e-9);
  EXPECT_NEAR(f.constant, 3.5, 1e-6);
}

TEST(FitPower, InvalidWhenFewerThanTwoUsablePoints) {
  const std::vector<double> x{8, 16, 32};
  const std::vector<double> y{0, 0, 100};  // only one positive median left
  const PowerFit f = fit_power(x, y);
  EXPECT_FALSE(f.valid);
  EXPECT_EQ(f.skipped, 2);
  EXPECT_TRUE(std::isnan(f.exponent));
  EXPECT_TRUE(std::isnan(f.constant));
  EXPECT_TRUE(std::isnan(f.r2));
}

TEST(FitPower, InvalidOnEmptyInput) {
  const PowerFit f = fit_power({}, {});
  EXPECT_FALSE(f.valid);
  EXPECT_EQ(f.skipped, 0);
  EXPECT_TRUE(std::isnan(f.exponent));
}

TEST(ChiSquare, UniformCountsScoreLow) {
  const std::vector<std::uint64_t> counts{100, 101, 99, 100};
  EXPECT_LT(chi_square_uniform(counts), 1.0);
}

TEST(ChiSquare, SkewedCountsScoreHigh) {
  const std::vector<std::uint64_t> counts{400, 0, 0, 0};
  EXPECT_GT(chi_square_uniform(counts), 100.0);
}

TEST(FormatSci, Formats) {
  EXPECT_EQ(format_sci(12345.678, 2), "1.23e+04");
}

}  // namespace
}  // namespace ppsim::core
