// ThreadPool: coverage, reuse, exception propagation, env-driven sizing.
#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ppsim::core {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.for_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> out(37, 0);
    pool.for_index(out.size(), [&](std::size_t i) {
      out[i] = static_cast<int>(i) + round;
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], static_cast<int>(i) + round);
    }
  }
}

TEST(ThreadPool, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  pool.for_index(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.for_index(100,
                     [&](std::size_t i) {
                       if (i == 13) throw std::runtime_error("boom");
                       ++completed;
                     }),
      std::runtime_error);
  // All other indices still ran; the pool stays usable afterwards.
  EXPECT_EQ(completed.load(), 99);
  std::atomic<int> count{0};
  pool.for_index(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1);
  ThreadPool pool;  // default-sized pool constructs and tears down cleanly
  std::atomic<int> count{0};
  pool.for_index(5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 5);
}

}  // namespace
}  // namespace ppsim::core
