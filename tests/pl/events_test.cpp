// Event instrumentation: exact lifecycle accounting of tokens (Def. 3.4),
// resetting signals (Lemma 3.11 machinery), clocks and bullets.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/events.hpp"
#include "pl/invariants.hpp"
#include "pl/protocol.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

using IPl = InstrumentedPlProtocol;

core::Runner<IPl> instrumented_runner(const PlParams& p,
                                      std::vector<PlState> init,
                                      EventCounters& sink,
                                      std::uint64_t seed) {
  return core::Runner<IPl>(IPl::Params::make(p, &sink), std::move(init),
                           seed);
}

TEST(Events, FullTrajectoryCountsExactly) {
  // Drive one black token deterministically: exactly 1 creation,
  // trajectory_length moves, 1 completion, psi deliveries (one per round),
  // zero other deaths for the black color.
  const PlParams p = PlParams::make(16);  // psi 4
  EventCounters ev;
  auto run = instrumented_runner(p, make_safe_config(p), ev, 1);
  const int psi = p.psi;
  for (int j = 0; j < psi; ++j) run.apply_arc(j);
  for (int x = 0; x <= psi - 2; ++x) {
    for (int j = psi + x - 1; j >= x + 1; --j) run.apply_arc(j);
    for (int j = x + 1; j <= psi + x; ++j) run.apply_arc(j);
  }
  EXPECT_EQ(ev.tokens_created[1], 1u);
  EXPECT_EQ(ev.token_moves[1],
            static_cast<std::uint64_t>(p.trajectory_length()));
  EXPECT_EQ(ev.completions[1], 1u);
  EXPECT_EQ(ev.deaths_collision[1], 0u);
  EXPECT_EQ(ev.deaths_invalid[1], 0u);
  EXPECT_EQ(ev.deliveries_written[1], static_cast<std::uint64_t>(psi));
  EXPECT_EQ(ev.created_via_dist + ev.created_via_token, 0u);
}

TEST(Events, TokenBirthsEventuallyBalanceDeaths) {
  const PlParams p = PlParams::make(32, 4);
  EventCounters ev;
  auto run = instrumented_runner(p, make_safe_config(p), ev, 7);
  run.run(500'000);
  for (bool black : {false, true}) {
    const auto born = ev.tokens_created[black ? 1 : 0];
    const auto died = ev.token_deaths(black);
    EXPECT_GT(born, 100u) << "black=" << black;
    // At most n tokens can be alive at the end.
    EXPECT_LE(died, born);
    EXPECT_LE(born - died, static_cast<std::uint64_t>(p.n));
  }
}

TEST(Events, CompletionsDominateInSafeSteadyState) {
  // In S_PL the working pairs complete trajectories over and over; the only
  // other death cause is the last-segment boundary.
  const PlParams p = PlParams::make(32, 4);  // psi 5, zeta 7
  EventCounters ev;
  auto run = instrumented_runner(p, make_safe_config(p), ev, 3);
  run.run(1'000'000);
  EXPECT_GT(ev.completions[1], 0u);
  EXPECT_GT(ev.completions[0], 0u);
  EXPECT_EQ(ev.deaths_invalid[0] + ev.deaths_invalid[1], 0u);
  EXPECT_EQ(ev.created_via_dist + ev.created_via_token, 0u);
  EXPECT_EQ(ev.leaders_killed, 0u);
}

TEST(Events, SignalsBalanceAndKeepFlowing) {
  const PlParams p = PlParams::make(16, 4);
  EventCounters ev;
  auto run = instrumented_runner(p, make_safe_config(p), ev, 5);
  run.run(500'000);
  EXPECT_GT(ev.signals_generated, 10u);
  // Dead signals = absorbed + expired; alive <= n.
  const auto dead = ev.signals_absorbed + ev.signals_expired;
  EXPECT_LE(dead, ev.signals_generated);
  EXPECT_LE(ev.signals_generated - dead, static_cast<std::uint64_t>(p.n));
  EXPECT_GT(ev.signal_moves, ev.signals_generated);  // they travel
}

TEST(Events, LeaderlessRunExpiresAllSignalsAndRaisesClocks) {
  const PlParams p = PlParams::make(16, 2);
  EventCounters ev;
  auto run = instrumented_runner(p, stale_signals_everywhere(p), ev, 9);
  const auto hit = run.run_until(
      [](Config c, const IPl::Params& pp) {
        return count_leaders(c) > 0 || AllDetectPredicate{}(c, pp.pl);
      },
      400'000'000ULL);
  ASSERT_TRUE(hit.has_value());
  // The stale signals must have drained (they are only *generated* by a
  // leader, and only once one has been created by detection).
  EXPECT_GT(ev.signals_absorbed + ev.signals_expired, 0u);
  if (count_leaders(run.agents()) == 0) {
    EXPECT_EQ(ev.signals_generated, 0u);
  } else {
    EXPECT_GT(ev.created_via_dist + ev.created_via_token, 0u);
  }
  EXPECT_GT(ev.clock_advances, 0u);
  EXPECT_GT(ev.detect_entries, 0u);
}

TEST(Events, EliminationAccountingFromAllLeaders) {
  const PlParams p = PlParams::make(16, 4);
  EventCounters ev;
  auto run = instrumented_runner(p, all_leaders(p), ev, 11);
  const auto hit = run.run_until(
      [](Config c, const IPl::Params&) { return count_leaders(c) == 1; },
      400'000'000ULL);
  ASSERT_TRUE(hit.has_value());
  // Conservation: n initial leaders + creations - kills = 1 survivor.
  EXPECT_EQ(ev.leaders_killed,
            static_cast<std::uint64_t>(p.n) - 1 + ev.created_via_dist +
                ev.created_via_token);
  EXPECT_GT(ev.live_fired, 0u);
  EXPECT_GT(ev.dummy_fired, 0u);
  EXPECT_GE(ev.bullets_absorbed, ev.leaders_killed);
}

TEST(Events, DetectionSiteAttribution) {
  // dist-path creation (line 6).
  {
    const PlParams p = PlParams::make(10, 4);
    EventCounters ev;
    auto run =
        instrumented_runner(p, leaderless_consistent(p, p.kappa_max), ev, 3);
    run.apply_arc(9);
    EXPECT_EQ(ev.created_via_dist, 1u);
    EXPECT_EQ(ev.created_via_token, 0u);
  }
  // token-path creation (line 18): 2psi | n, consistent dists, broken id.
  {
    const PlParams p = PlParams::make(16, 4);
    auto c = make_safe_config(p, 0, 0);
    for (PlState& s : c) {
      s.clock = static_cast<std::uint16_t>(p.kappa_max);
      s.leader = 0;
      s.shield = 0;
    }
    c[static_cast<std::size_t>(p.psi)].b = 0;  // break bit 0 of S_1
    EventCounters ev;
    auto run = instrumented_runner(p, c, ev, 5);
    for (int j = 0; j < p.psi; ++j) run.apply_arc(j);
    EXPECT_EQ(ev.created_via_token, 1u);
    EXPECT_EQ(ev.created_via_dist, 0u);
  }
}

TEST(Events, NullSinkKeepsPlainProtocolIdentical) {
  // The instrumented and plain paths must produce bit-identical executions.
  const PlParams p = PlParams::make(24, 4);
  core::Xoshiro256pp rng(13);
  const auto init = random_config(p, rng);
  core::Runner<PlProtocol> plain(p, init, 99);
  EventCounters ev;
  auto inst = instrumented_runner(p, init, ev, 99);
  plain.run(100'000);
  inst.run(100'000);
  for (int i = 0; i < p.n; ++i)
    ASSERT_EQ(plain.agent(i), inst.agent(i)) << "agent " << i;
}

}  // namespace
}  // namespace ppsim::pl
