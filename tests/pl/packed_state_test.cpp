// Word-packed P_PL state representation (pl/packed_state.hpp): layout
// derivation, the constexpr capacity probe, exhaustive per-field
// round-trip sweeps, domain clamping (the engines' acceptance test), and
// the scalar-vs-word kernel equivalence contract of
// pl/packed_protocol.hpp on boundary and randomized states.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "pl/adversary.hpp"
#include "pl/packed_protocol.hpp"
#include "pl/packed_state.hpp"
#include "pl/params.hpp"
#include "pl/protocol.hpp"

namespace ppsim::pl {
namespace {

PlParams params_for(int psi, int kappa_max) {
  PlParams p;
  p.n = 8;  // n does not enter the layout
  p.psi = psi;
  p.kappa_max = kappa_max;
  return p;
}

/// All boundary values of one integer field's domain [lo, hi].
std::vector<int> boundary(int lo, int hi) {
  std::vector<int> v{lo, lo + 1, (lo + hi) / 2, hi - 1, hi};
  std::vector<int> out;
  for (int x : v)
    if (x >= lo && x <= hi &&
        (out.empty() || out.back() != x))
      out.push_back(x);
  return out;
}

TEST(PackedLayout, DerivedWidthsMatchTheIssueArithmetic) {
  // width = 7 + 3*ceil(log2 2psi) + 4 + ceil(log2(psi+1))
  //           + 2*ceil(log2(kappa_max+1))
  const auto p = params_for(16, 512);  // n = 2^16 regime at c1 = 32
  const auto l = PackedLayout::make(p);
  EXPECT_EQ(l.dist_bits, 5u);   // 2psi = 32
  EXPECT_EQ(l.hits_bits, 5u);   // psi + 1 = 17
  EXPECT_EQ(l.clock_bits, 10u); // kappa_max + 1 = 513
  EXPECT_EQ(l.total_bits, 51u); // the <= 53-bit bound the issue quotes
  EXPECT_TRUE(l.fits());
  EXPECT_EQ(PackedLayout::width(16, 512), 51u);
}

TEST(PackedLayout, CapacityProbeRefusesOversizedParameters) {
  // Huge psi_slack / c1 regimes must report !fits() — the engines then
  // stay on the scalar path (pinned in word_kernel_test) instead of
  // truncating fields.
  EXPECT_TRUE(PackedLayout::make(params_for(2, 8)).fits());
  EXPECT_TRUE(PackedLayout::make(PlParams::make(1 << 16, 32)).fits());
  const auto big = params_for(1 << 13, 32 * (1 << 13));
  const auto l = PackedLayout::make(big);
  EXPECT_FALSE(l.fits());
  EXPECT_GT(l.total_bits, 64u);
  static_assert(PackedLayout::width(16, 512) <= 64);
  static_assert(PackedLayout::width(1 << 13, 32 << 13) > 64);
  // The boundary is monotone in both parameters.
  unsigned prev = 0;
  for (int psi = 2; psi <= 64; psi *= 2) {
    const unsigned w = PackedLayout::width(psi, 32 * psi);
    EXPECT_GE(w, prev);
    prev = w;
  }
}

TEST(PackedState, ExhaustivePerFieldRoundTrip) {
  // Satellite: full per-field domain at psi in {2, 5, 16}, boundary values
  // of dist/clock/signal_r/token pos crossed with each other.
  for (const int psi : {2, 5, 16}) {
    const int kmax = 32 * psi;
    const auto p = params_for(psi, kmax);
    const auto l = PackedLayout::make(p);
    ASSERT_TRUE(l.fits());

    // Sweep each field over its FULL domain with the others at defaults.
    const auto check = [&](const PlState& s) {
      ASSERT_TRUE(in_word_domain(s, l));
      const std::uint64_t w = pack_word(s, l);
      EXPECT_LT(w >> (l.total_bits - 1), 2u);  // no bits above the layout
      const PlState back = unpack_word(w, l);
      ASSERT_EQ(back, s) << "psi=" << psi;
    };
    PlState s;
    for (int v = 0; v <= 1; ++v) { s = {}; s.leader = v; check(s); }
    for (int v = 0; v <= 1; ++v) { s = {}; s.b = v; check(s); }
    for (int v = 0; v <= 1; ++v) { s = {}; s.last = v; check(s); }
    for (int v = 0; v <= 1; ++v) { s = {}; s.shield = v; check(s); }
    for (int v = 0; v <= 1; ++v) { s = {}; s.signal_b = v; check(s); }
    for (int v = 0; v <= 2; ++v) { s = {}; s.bullet = v; check(s); }
    for (int v = 0; v < 2 * psi; ++v) {
      s = {};
      s.dist = static_cast<std::uint16_t>(v);
      check(s);
    }
    for (int v = 0; v <= psi; ++v) {
      s = {};
      s.hits = static_cast<std::uint8_t>(v);
      check(s);
    }
    for (int v = 0; v <= kmax; ++v) {
      s = {};
      s.clock = static_cast<std::uint16_t>(v);
      check(s);
      s = {};
      s.signal_r = static_cast<std::uint16_t>(v);
      check(s);
    }
    // Full token domain (both colors), including bot tokens with stray
    // payload bits — they must survive a round trip verbatim.
    for (int pos = 1 - psi; pos <= psi; ++pos) {
      for (int val = 0; val <= 1; ++val) {
        for (int car = 0; car <= 1; ++car) {
          s = {};
          s.token_b = Token{static_cast<std::int8_t>(pos),
                            static_cast<std::uint8_t>(val),
                            static_cast<std::uint8_t>(car)};
          check(s);
          s = {};
          s.token_w = Token{static_cast<std::int8_t>(pos),
                            static_cast<std::uint8_t>(val),
                            static_cast<std::uint8_t>(car)};
          check(s);
        }
      }
    }
    // Boundary cross products of the wide fields.
    for (int dist : boundary(0, 2 * psi - 1)) {
      for (int clock : boundary(0, kmax)) {
        for (int sigr : boundary(0, kmax)) {
          for (int pos : {1 - psi, -1, 0, 1, psi}) {
            s = {};
            s.dist = static_cast<std::uint16_t>(dist);
            s.clock = static_cast<std::uint16_t>(clock);
            s.signal_r = static_cast<std::uint16_t>(sigr);
            s.hits = static_cast<std::uint8_t>(dist % (psi + 1));
            // Mirror the position into the white lane, reflected back into
            // the domain at the +psi edge (pos domain is [1-psi, psi]).
            const int wpos = pos == psi ? 1 - psi : -pos;
            s.token_b = Token{static_cast<std::int8_t>(pos), 1, 0};
            s.token_w = Token{static_cast<std::int8_t>(wpos), 0, 1};
            check(s);
          }
        }
      }
    }
  }
}

TEST(PackedLayout, NarrowProbeTracksThe32BitBoundary) {
  // The regime-narrowed (two states per 64-bit lane) layout engages iff the
  // packed image fits 32 bits. Small-psi, small-c1 regimes qualify; one
  // clock bit over the line must refuse.
  EXPECT_TRUE(PackedLayout::make(params_for(2, 8)).fits_narrow());
  const auto p16c3 = PlParams::make(16, 3);  // psi = 4, kappa_max = 12
  EXPECT_EQ(PackedLayout::width(p16c3.psi, p16c3.kappa_max), 31u);
  EXPECT_TRUE(PackedLayout::make(p16c3).fits_narrow());
  const auto p16c4 = PlParams::make(16, 4);  // 33 bits: word-only
  EXPECT_FALSE(PackedLayout::make(p16c4).fits_narrow());
  EXPECT_TRUE(PackedLayout::make(p16c4).fits());
  EXPECT_FALSE(PackedLayout::make(PlParams::make(1 << 16, 32)).fits_narrow());
  // Never narrow without also fitting the word layout.
  EXPECT_FALSE(PackedLayout::make(params_for(1 << 13, 32 << 13)).fits_narrow());
}

TEST(PackedState, NarrowImageIsTheTruncatedWordImage) {
  // A narrow mirror stores pack_word's image truncated to 32 bits; for a
  // narrow layout that truncation must be lossless and unpack must invert
  // it — same round-trip/clamp contract as the 64-bit path.
  const auto p = PlParams::make(16, 3);
  const auto l = PackedLayout::make(p);
  ASSERT_TRUE(l.fits_narrow());
  core::Xoshiro256pp rng(23);
  for (int t = 0; t < 20000; ++t) {
    const PlState s = random_state(p, rng);
    const std::uint64_t w = pack_word(s, l);
    EXPECT_EQ(w >> 32, 0u);  // nothing above the narrow image
    const auto half = static_cast<std::uint32_t>(w);
    EXPECT_EQ(unpack_word(half, l), s);
  }
}

TEST(PackedState, OutOfDomainStatesNeverRoundTrip) {
  // pack_word clamps; the round-trip failure is exactly what drops an
  // engine to the scalar path, so it must fire for every out-of-domain
  // field (never truncate silently).
  const auto p = params_for(5, 160);
  const auto l = PackedLayout::make(p);
  const auto rejected = [&](const PlState& s) {
    EXPECT_FALSE(in_word_domain(s, l));
    return !(unpack_word(pack_word(s, l), l) == s);
  };
  PlState s;
  s = {}; s.dist = static_cast<std::uint16_t>(2 * p.psi); EXPECT_TRUE(rejected(s));
  s = {}; s.dist = 60000; EXPECT_TRUE(rejected(s));
  s = {}; s.hits = static_cast<std::uint8_t>(p.psi + 1); EXPECT_TRUE(rejected(s));
  s = {}; s.clock = static_cast<std::uint16_t>(p.kappa_max + 1); EXPECT_TRUE(rejected(s));
  s = {}; s.signal_r = static_cast<std::uint16_t>(p.kappa_max + 7); EXPECT_TRUE(rejected(s));
  s = {}; s.bullet = 3; EXPECT_TRUE(rejected(s));
  s = {}; s.leader = 2; EXPECT_TRUE(rejected(s));
  s = {}; s.token_b.pos = static_cast<std::int8_t>(p.psi + 1); EXPECT_TRUE(rejected(s));
  s = {}; s.token_w.pos = static_cast<std::int8_t>(-p.psi); EXPECT_TRUE(rejected(s));
  s = {}; s.token_b = Token{1, 2, 0}; EXPECT_TRUE(rejected(s));
  s = {}; s.token_w = Token{-1, 0, 9}; EXPECT_TRUE(rejected(s));
}

TEST(PackedState, WordLeaderMatchesIsLeader) {
  const auto p = params_for(5, 20);
  const auto l = PackedLayout::make(p);
  core::Xoshiro256pp rng(11);
  for (int t = 0; t < 1000; ++t) {
    const PlState s = random_state(p, rng);
    EXPECT_EQ(word_leader(pack_word(s, l), l),
              PlProtocol::is_leader(s, p));
  }
}

TEST(PackedKernel, MatchesScalarApplyOnBoundaryAndRandomStates) {
  // The equivalence contract on state pairs drawn from the declared
  // domain: unpack(apply_word(pack(l), pack(r))) == apply(l, r), field for
  // field. Randomized here; the engine-level lockstep lives in
  // tests/core/word_kernel_test.cpp and the differential fuzzer.
  for (const int psi : {2, 5, 16}) {
    for (const int c1 : {4, 32}) {
      const auto p = params_for(psi, c1 * psi);
      const auto lay = PackedLayout::make(p);
      ASSERT_TRUE(lay.fits());
      const auto kc = PlKernelConsts::make(lay);
      core::Xoshiro256pp rng(100 + psi + c1);
      for (int t = 0; t < 60000; ++t) {
        PlState l = random_state(p, rng);
        PlState r = random_state(p, rng);
        ASSERT_TRUE(in_word_domain(l, lay));
        ASSERT_TRUE(in_word_domain(r, lay));
        std::uint64_t wl = pack_word(l, lay);
        std::uint64_t wr = pack_word(r, lay);
        PlState sl = l;
        PlState sr = r;
        PlProtocol::apply(sl, sr, p);
        apply_word(wl, wr, lay);
        const PlState ul = unpack_word(wl, lay);
        const PlState ur = unpack_word(wr, lay);
        ASSERT_EQ(ul, sl) << "initiator diverged, psi=" << psi
                          << " t=" << t << "\n  in_l=" << PlProtocol::describe(l, p)
                          << "\n  in_r=" << PlProtocol::describe(r, p)
                          << "\n  scalar=" << PlProtocol::describe(sl, p)
                          << "\n  word  =" << PlProtocol::describe(ul, p);
        ASSERT_EQ(ur, sr) << "responder diverged, psi=" << psi << " t=" << t;
        // Domain closure: the kernel's outputs stay packable.
        ASSERT_TRUE(in_word_domain(sl, lay));
        ASSERT_TRUE(in_word_domain(sr, lay));
        // apply_word_one (the precomputed-constants entry) is the same
        // function.
        std::uint64_t wl2 = pack_word(l, lay);
        std::uint64_t wr2 = pack_word(r, lay);
        apply_word_one(wl2, wr2, kc);
        ASSERT_EQ(wl2, wl);
        ASSERT_EQ(wr2, wr);
      }
    }
  }
}

TEST(PackedKernel, VectorLanesMatchScalarKernel) {
  // apply_word_x4 / apply_word_x8 are the same dataflow at 4/8 lanes: each
  // lane must equal the scalar kernel on its pair.
  const auto p = PlParams::make(64, 4);
  const auto lay = PackedLayout::make(p);
  const auto kc = PlKernelConsts::make(lay);
  core::Xoshiro256pp rng(77);
  for (int t = 0; t < 4000; ++t) {
    std::uint64_t wl[8];
    std::uint64_t wr[8];
    core::WordVec8 vl8{};
    core::WordVec8 vr8{};
    core::WordVec vl4{};
    core::WordVec vr4{};
    for (int j = 0; j < 8; ++j) {
      wl[j] = pack_word(random_state(p, rng), lay);
      wr[j] = pack_word(random_state(p, rng), lay);
      vl8[j] = wl[j];
      vr8[j] = wr[j];
      if (j < 4) {
        vl4[j] = wl[j];
        vr4[j] = wr[j];
      }
    }
    apply_word_x8(vl8, vr8, kc);
    apply_word_x4(vl4, vr4, kc);
    for (int j = 0; j < 8; ++j) {
      std::uint64_t sl = wl[j];
      std::uint64_t sr = wr[j];
      apply_word_one(sl, sr, kc);
      ASSERT_EQ(vl8[j], sl) << "x8 lane " << j;
      ASSERT_EQ(vr8[j], sr) << "x8 lane " << j;
      if (j < 4) {
        ASSERT_EQ(vl4[j], sl) << "x4 lane " << j;
        ASSERT_EQ(vr4[j], sr) << "x4 lane " << j;
      }
    }
  }
}

TEST(PackedKernel, NarrowKernelMatchesWideKernel) {
  // The kernel dataflow is element-width generic: on a narrow layout every
  // constant, mask and field fits 32 bits, so running it at u32 must equal
  // the u64 kernel truncated — which is itself lossless (no output bit
  // above total_bits <= 32). Scalar u32 entry plus both vector widths.
  const auto p = PlParams::make(16, 3);
  const auto lay = PackedLayout::make(p);
  ASSERT_TRUE(lay.fits_narrow());
  const auto kc = PlKernelConsts::make(lay);
  core::Xoshiro256pp rng(4711);
  for (int t = 0; t < 4000; ++t) {
    std::uint64_t wl[16];
    std::uint64_t wr[16];
    core::HalfVec16 nl16{};
    core::HalfVec16 nr16{};
    core::HalfVec8 nl8{};
    core::HalfVec8 nr8{};
    for (int j = 0; j < 16; ++j) {
      wl[j] = pack_word(random_state(p, rng), lay);
      wr[j] = pack_word(random_state(p, rng), lay);
      nl16[j] = static_cast<std::uint32_t>(wl[j]);
      nr16[j] = static_cast<std::uint32_t>(wr[j]);
      if (j < 8) {
        nl8[j] = static_cast<std::uint32_t>(wl[j]);
        nr8[j] = static_cast<std::uint32_t>(wr[j]);
      }
    }
    apply_word_narrow_x16(nl16, nr16, kc);
    apply_word_narrow_x8(nl8, nr8, kc);
    for (int j = 0; j < 16; ++j) {
      std::uint64_t sl = wl[j];
      std::uint64_t sr = wr[j];
      apply_word_one(sl, sr, kc);
      ASSERT_EQ(sl >> 32, 0u) << "wide kernel left bits above the layout";
      ASSERT_EQ(sr >> 32, 0u);
      auto hl = static_cast<std::uint32_t>(wl[j]);
      auto hr = static_cast<std::uint32_t>(wr[j]);
      apply_word_narrow_one(hl, hr, kc);
      ASSERT_EQ(hl, static_cast<std::uint32_t>(sl)) << "narrow lane " << j;
      ASSERT_EQ(hr, static_cast<std::uint32_t>(sr)) << "narrow lane " << j;
      ASSERT_EQ(nl16[j], hl) << "x16 lane " << j;
      ASSERT_EQ(nr16[j], hr) << "x16 lane " << j;
      if (j < 8) {
        ASSERT_EQ(nl8[j], hl) << "x8 lane " << j;
        ASSERT_EQ(nr8[j], hr) << "x8 lane " << j;
      }
    }
  }
}

}  // namespace
}  // namespace ppsim::pl
