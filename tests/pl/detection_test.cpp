// The detection machinery end to end (§3.2): with no leader and all agents
// in detection mode, the imperfection is found and a leader created — via
// the dist path (line 6) or the token path (line 18).
#include <gtest/gtest.h>

#include "core/ring.hpp"
#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

/// All agents in detection mode, consistent dists (requires 2psi | n),
/// consecutive segment IDs except the unavoidable wrap violation.
std::vector<PlState> pure_token_detection_config(const PlParams& p) {
  auto c = leaderless_consistent(p, p.kappa_max);
  return c;
}

TEST(Detection, DistPathFiresOnBrokenChain) {
  // n not divisible by 2psi: the dist chain has a wrap violation; with all
  // agents in Detect, the violating pair's interaction creates a leader.
  const PlParams p = PlParams::make(10, 4);  // psi 4, 2psi 8, 10 % 8 != 0
  auto c = leaderless_consistent(p, p.kappa_max);
  core::Runner<PlProtocol> run(p, c, 3);
  // The violating pair is (u_9, u_0): u_9.dist = 1, expected u_0 dist 2 but
  // u_0.dist = 0. Driving that arc once must create the leader directly.
  run.apply_arc(9);
  EXPECT_EQ(run.leader_count(), 1);
  EXPECT_EQ(run.agent(0).leader, 1);
}

TEST(Detection, TokenPathFiresOnBrokenIds) {
  // 2psi | n: dists are consistent, so only the segment-ID chain can betray
  // the absence — exactly Lemma 3.2 + the §3.2 token mechanism.
  const PlParams p = PlParams::make(16, 4);
  auto c = pure_token_detection_config(p);
  ASSERT_TRUE(satisfies_condition1(c, p));
  ASSERT_EQ(count_leaders(c), 0);
  core::Runner<PlProtocol> run(p, c, 7);
  const auto n64 = static_cast<std::uint64_t>(p.n);
  const auto hit = run.run_until(AnyLeaderPredicate{},
                                 200'000ULL * n64 * n64);
  ASSERT_TRUE(hit.has_value());
  // Before detection no agent could have left Detect (no leader -> no
  // signals -> clocks stay at kappa_max), so dists were never rewritten:
  // the promotion came from the token path.
  EXPECT_TRUE(satisfies_condition1(run.agents(), p) ||
              run.leader_count() >= 1);
}

TEST(Detection, DetectModeNeverWritesBits) {
  // In detection mode agents must not modify b (line 19 guards on
  // Construct): run the token machinery in all-Detect mode over a perfect
  // single-leader configuration and verify all b values stay put.
  const PlParams p = PlParams::make(16, 4);
  auto c = make_safe_config(p);
  for (PlState& s : c) s.clock = static_cast<std::uint16_t>(p.kappa_max);
  std::vector<std::uint8_t> bits;
  for (const PlState& s : c) bits.push_back(s.b);
  core::Runner<PlProtocol> run(p, c, 9);
  run.run(200'000);
  for (int i = 0; i < p.n; ++i)
    EXPECT_EQ(run.agent(i).b, bits[static_cast<std::size_t>(i)])
        << "agent " << i;
  // And no spurious leader was created (the configuration is perfect).
  EXPECT_EQ(run.leader_count(), 1);
}

TEST(Detection, LastFlagsClearWithoutLeader) {
  // §3.2: if there is no leader, all agents converge to last = 0 while
  // sweeps occur (the flag only stays 1 right of a leader).
  const PlParams p = PlParams::make(16, 4);
  auto c = leaderless_consistent(p, 0);
  for (PlState& s : c) s.last = 1;  // adversarial: everyone claims "last"
  core::Runner<PlProtocol> run(p, c, 5);
  // Drive a full counter-clockwise sweep seq_L(0, n): each interaction
  // updates the initiator's flag from its right neighbor.
  run.apply_sequence(core::seq_l(0, p.n, p.n));
  int lasts = 0;
  for (const PlState& s : run.agents()) lasts += s.last;
  EXPECT_EQ(lasts, 0);
}

TEST(Detection, CreationTimeScalesQuadratically) {
  // Lemma 3.7 + §3.2: from the hardest leaderless start the creation takes
  // O(n^2 log n); sanity check that doubling n roughly quadruples the time
  // (very generous bands; this is a smoke test, bench/mode_determination
  // measures it properly).
  std::vector<double> medians;
  for (int n : {16, 32, 64}) {
    const PlParams p = PlParams::make(n, 2);
    std::vector<std::uint64_t> ts;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      core::Runner<PlProtocol> run(p, leaderless_consistent(p, 0), seed);
      const auto n64 = static_cast<std::uint64_t>(n);
      const auto hit = run.run_until(AnyLeaderPredicate{},
                                     400'000ULL * n64 * n64);
      ASSERT_TRUE(hit.has_value()) << "n=" << n;
      ts.push_back(*hit);
    }
    std::sort(ts.begin(), ts.end());
    medians.push_back(static_cast<double>(ts[2]));
  }
  EXPECT_GT(medians[1] / medians[0], 1.8);
  EXPECT_GT(medians[2] / medians[1], 1.8);
  EXPECT_LT(medians[2] / medians[0], 80.0);
}

TEST(Detection, NewLeaderIsBornArmedAndShielded) {
  // Both creation sites (lines 6 and 18) must produce (1, 2, 1, 0) so the
  // freshly fired live bullet is peaceful (the C_PB argument of §4.1).
  const PlParams p = PlParams::make(10, 4);
  auto c = leaderless_consistent(p, p.kappa_max);
  core::Runner<PlProtocol> run(p, c, 3);
  run.apply_arc(9);  // dist-path creation at u_0
  const PlState& s = run.agent(0);
  ASSERT_EQ(s.leader, 1);
  EXPECT_EQ(s.bullet, 2);
  EXPECT_EQ(s.shield, 1);
  EXPECT_EQ(s.signal_b, 0);
  EXPECT_TRUE(in_cpb(run.agents()));
}

}  // namespace
}  // namespace ppsim::pl
