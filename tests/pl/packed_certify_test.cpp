// The constexpr clamp-freedom certifier (pl/packed_certify.hpp): the
// committed bench regimes certify, the certification is *sensitive* (a
// single field widened one past its domain — exactly what a fault writes —
// breaks it, for the documented structural reason), and the abstraction is
// sound against the real kernel: every field of every randomized
// apply_word output lies inside its certified interval, and the output
// word round-trips unpack/pack bit-identically, i.e. no clamp fired.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/stream_tags.hpp"
#include "pl/packed_certify.hpp"
#include "pl/packed_protocol.hpp"
#include "pl/packed_state.hpp"
#include "pl/params.hpp"

namespace ppsim::pl {
namespace {

// --- Certified regimes (runtime mirror of the header's static_asserts) ----

TEST(PackedCertify, CommittedBenchRegimesCertifyClampFree) {
  for (const auto& [n, c1] : {std::pair{16, 4}, {64, 4}, {256, 4},
                              {1024, 4}, {16384, 4}, {16, 3}, {64, 1},
                              {65536, 32}}) {
    const auto p = PlParams::make(n, c1);
    const auto cert = certify_kernel(p);
    EXPECT_TRUE(cert.clamp_free()) << "n=" << n << " c1=" << c1;
    // The certificate is informative, not just boolean: spot-check the
    // intervals the proof derived. The responder's hits span the full
    // domain (the line-41/44/48 zeroings reach 0, the hits_s0/hits_n
    // keeps reach psi)...
    EXPECT_EQ(cert.r_hits.out.lo, 0);
    EXPECT_EQ(cert.r_hits.out.hi, p.psi);
    // ...the initiator's hits field is cleared (Algorithm 4 line 36)...
    EXPECT_EQ(cert.l_hits.out.lo, 0);
    EXPECT_EQ(cert.l_hits.out.hi, 0);
    // ...and token positions span the full biased domain (creation writes
    // 2psi-1, delivery turn-around writes 0).
    EXPECT_EQ(cert.tok_pos.out.lo, 0);
    EXPECT_EQ(cert.tok_pos.out.hi, 2LL * p.psi - 1);
  }
}

// --- Sensitivity: the proof is not vacuous ---------------------------------
//
// Each widening below is one representable out-of-domain value in one
// field — the exact state a fault can leave in the scalar struct. In every
// case certification must fail, and fail for the structural reason the
// kernel's trick actually depends on.

TEST(PackedCertify, WidenedHitsBreaksTheEqualityCap) {
  const auto p = PlParams::make(1024, 4);
  auto in = AbstractInputs::in_domain(p);
  in.hits.hi = p.psi + 1;  // min(hits+1, psi) via equality needs hits<=psi
  const auto cert = certify_kernel(p, in);
  EXPECT_FALSE(cert.hits_cap_premise);
  EXPECT_FALSE(cert.clamp_free());
}

TEST(PackedCertify, WidenedClockBreaksTheEqualityCap) {
  const auto p = PlParams::make(1024, 4);
  auto in = AbstractInputs::in_domain(p);
  in.clock.hi = p.kappa_max + 1;
  const auto cert = certify_kernel(p, in);
  EXPECT_FALSE(cert.clock_cap_premise);
  EXPECT_FALSE(cert.clamp_free());
}

TEST(PackedCertify, WidenedDistBreaksTheWrapSelect) {
  // dist_bits = ceil(log2 2psi) leaves representable headroom above the
  // domain only when 2psi is not a power of two — psi = 5 (n = 17..32 at
  // bits_for(2*5)=4, mask 15 > 9) gives such a regime.
  const auto p = PlParams::make(20, 4);
  ASSERT_GT(PackedLayout::make(p).dist_mask, 2ULL * p.psi - 1);
  auto in = AbstractInputs::in_domain(p);
  in.dist.hi = 2LL * p.psi;  // (dist+1) mod 2psi catches exactly 2psi
  const auto cert = certify_kernel(p, in);
  EXPECT_FALSE(cert.dist_wrap_complete);
  EXPECT_FALSE(cert.clamp_free());
}

// --- Soundness against the real kernel -------------------------------------

PlState random_domain_state(core::Xoshiro256pp& rng, const PlParams& p) {
  const auto draw = [&](int lo, int hi) {
    return lo + static_cast<int>(
                    rng.bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  };
  PlState s;
  s.leader = static_cast<std::uint8_t>(draw(0, 1));
  s.b = static_cast<std::uint8_t>(draw(0, 1));
  s.last = static_cast<std::uint8_t>(draw(0, 1));
  s.shield = static_cast<std::uint8_t>(draw(0, 1));
  s.signal_b = static_cast<std::uint8_t>(draw(0, 1));
  s.bullet = static_cast<std::uint8_t>(draw(0, 2));
  s.dist = static_cast<std::uint16_t>(draw(0, 2 * p.psi - 1));
  s.hits = static_cast<std::uint8_t>(draw(0, p.psi));
  s.clock = static_cast<std::uint16_t>(draw(0, p.kappa_max));
  s.signal_r = static_cast<std::uint16_t>(draw(0, p.kappa_max));
  for (Token* t : {&s.token_b, &s.token_w}) {
    t->pos = static_cast<std::int8_t>(draw(1 - p.psi, p.psi));
    t->value = static_cast<std::uint8_t>(draw(0, 1));
    t->carry = static_cast<std::uint8_t>(draw(0, 1));
  }
  return s;
}

void expect_state_within_cert(const PlState& s, const PlParams& p,
                              const KernelCert& cert, bool initiator) {
  const long long bias = p.psi - 1;
  const auto& dist = initiator ? cert.l_dist : cert.r_dist;
  const auto& hits = initiator ? cert.l_hits : cert.r_hits;
  const auto& clock = initiator ? cert.l_clock : cert.r_clock;
  const auto& sigr = initiator ? cert.l_sigr : cert.r_sigr;
  EXPECT_TRUE(dist.out.contains(s.dist));
  EXPECT_TRUE(hits.out.contains(s.hits));
  EXPECT_TRUE(clock.out.contains(s.clock));
  EXPECT_TRUE(sigr.out.contains(s.signal_r));
  EXPECT_TRUE(cert.tok_pos.out.contains(s.token_b.pos + bias));
  EXPECT_TRUE(cert.tok_pos.out.contains(s.token_w.pos + bias));
  EXPECT_TRUE(cert.bullet.out.contains(s.bullet));
  for (int f : {int{s.leader}, int{s.b}, int{s.last}, int{s.shield},
                int{s.signal_b}})
    EXPECT_TRUE(cert.flags.out.contains(f));
}

TEST(PackedCertify, RandomizedKernelOutputsStayInsideCertifiedIntervals) {
  // End-to-end soundness probe: in-domain inputs -> apply_word -> every
  // output field inside its certified interval, every output word
  // round-trips with no clamp firing. Covers a wide regime, the flagship,
  // and a regime-narrowed u32 layout.
  for (const auto& [n, c1] : {std::pair{16, 4}, {64, 1}, {1024, 4}}) {
    const auto p = PlParams::make(n, c1);
    const auto lay = PackedLayout::make(p);
    ASSERT_TRUE(lay.fits());
    const auto cert = certify_kernel(p);
    ASSERT_TRUE(cert.clamp_free());
    core::Xoshiro256pp rng(core::derive_seed(
        2026, core::streams::kConfig,
        static_cast<std::uint64_t>(n * 64 + c1)));
    for (int iter = 0; iter < 4000; ++iter) {
      const PlState l_in = random_domain_state(rng, p);
      const PlState r_in = random_domain_state(rng, p);
      ASSERT_TRUE(in_word_domain(l_in, lay));
      ASSERT_TRUE(in_word_domain(r_in, lay));
      std::uint64_t wl = pack_word(l_in, lay);
      std::uint64_t wr = pack_word(r_in, lay);
      apply_word(wl, wr, lay);
      const PlState l_out = unpack_word(wl, lay);
      const PlState r_out = unpack_word(wr, lay);
      // Clamp-freedom, observed: the outputs are in domain and re-pack
      // bit-identically (a fired clamp would break the round trip).
      ASSERT_TRUE(in_word_domain(l_out, lay));
      ASSERT_TRUE(in_word_domain(r_out, lay));
      ASSERT_EQ(pack_word(l_out, lay), wl);
      ASSERT_EQ(pack_word(r_out, lay), wr);
      expect_state_within_cert(l_out, p, cert, /*initiator=*/true);
      expect_state_within_cert(r_out, p, cert, /*initiator=*/false);
    }
  }
}

}  // namespace
}  // namespace ppsim::pl
