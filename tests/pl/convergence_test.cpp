// Convergence (Theorem 3.1): from arbitrary/adversarial configurations the
// population reaches S_PL. Budgets are generous multiples of n^2 log n; with
// the paper-faithful c1 = 32 the constants are large, so the sweep uses a
// smaller c1 (the asymptotics are unaffected; bench/ablation_kappa measures
// the c1 dependence).
#include <gtest/gtest.h>

#include <tuple>

#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

constexpr int kC1 = 4;

std::uint64_t budget(const PlParams& p) {
  const auto n = static_cast<std::uint64_t>(p.n);
  // ~ c * kappa_max * n^2 steps; detection needs Theta(n * kappa_max * 2^psi)
  // interactions, and 2^psi <= 2n.
  return 600ULL * n * n * static_cast<std::uint64_t>(p.kappa_max) + 2'000'000;
}

class ConvergenceSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ConvergenceSweep, RandomConfigurationReachesSafeSet) {
  const auto [n, seed] = GetParam();
  const PlParams p = PlParams::make(n, kC1);
  core::Xoshiro256pp rng(seed);
  core::Runner<PlProtocol> run(p, random_config(p, rng), seed * 7 + 1);
  const auto hit = run.run_until(SafePredicate{}, budget(p));
  ASSERT_TRUE(hit.has_value()) << "n=" << n << " seed=" << seed;
  // And it stays there (spot check).
  run.run(10'000);
  EXPECT_TRUE(is_safe(run.agents(), p));
  EXPECT_EQ(run.leader_count(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Rings, ConvergenceSweep,
    ::testing::Combine(::testing::Values(4, 6, 8, 12, 16, 24, 32, 48),
                       ::testing::Values(1u, 2u, 3u, 4u)));

class AdversarialSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdversarialSweep, HandcraftedWorstCasesConverge) {
  const int n = GetParam();
  const PlParams p = PlParams::make(n, kC1);
  core::Xoshiro256pp rng(1234);
  const std::vector<std::vector<PlState>> cases = {
      leaderless_consistent(p, 0),            // detection from scratch
      leaderless_consistent(p, p.kappa_max),  // all already in Detect
      all_leaders(p),                         // maximal elimination load
      all_zero(p),                            // broken dist chain everywhere
      stale_signals_everywhere(p),            // signals must drain first
      token_garbage(p, rng),                  // invalid tokens everywhere
  };
  int idx = 0;
  for (const auto& config : cases) {
    core::Runner<PlProtocol> run(p, config, 17 + idx);
    const auto hit = run.run_until(SafePredicate{}, budget(p));
    ASSERT_TRUE(hit.has_value()) << "n=" << n << " case=" << idx;
    ++idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, AdversarialSweep,
                         ::testing::Values(4, 8, 16, 32));

TEST(Convergence, FreshDeploymentConstructsPerfection) {
  // Single leader, zeroed variables: the construction phase alone must
  // produce a perfect configuration (Figure-1 regime).
  const PlParams p = PlParams::make(32, kC1);
  core::Runner<PlProtocol> run(p, make_fresh_config(p), 3);
  const auto hit = run.run_until(SafePredicate{}, budget(p));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(is_perfect(run.agents(), p));
  EXPECT_EQ(run.agent(0).leader, 1);  // the deployed leader survived
}

TEST(Convergence, PaperFaithfulC1AlsoConverges) {
  const PlParams p = PlParams::make(12);  // c1 = 32
  core::Xoshiro256pp rng(5);
  core::Runner<PlProtocol> run(p, random_config(p, rng), 5);
  const auto hit = run.run_until(SafePredicate{}, budget(p) * 10);
  ASSERT_TRUE(hit.has_value());
}

TEST(Convergence, NeverZeroLeadersAfterCpb) {
  // Lemma 4.1/4.2: once in C_PB, the leader count never returns to zero.
  const PlParams p = PlParams::make(16, kC1);
  core::Xoshiro256pp rng(21);
  core::Runner<PlProtocol> run(p, random_config(p, rng), 21);
  const auto hit = run.run_until(
      [](Config c, const PlParams&) { return in_cpb(c); }, budget(p));
  ASSERT_TRUE(hit.has_value());
  for (int i = 0; i < 200; ++i) {
    run.run(1'000);
    ASSERT_GE(run.leader_count(), 1) << "after " << run.steps();
  }
}

}  // namespace
}  // namespace ppsim::pl
