// Token correctness (Def. 4.3 with the carry-phase fix, DESIGN.md §2.1(5))
// and Lemma 4.4/4.5 properties, for black and white tokens, both directions,
// every round.
#include <gtest/gtest.h>

#include "core/ring.hpp"
#include "core/runner.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

/// Reference ripple-carry: the token state a correct token must carry during
/// round x over segment bits `bits` (LSB first).
struct RoundValues {
  int value;
  int carry;
};
RoundValues reference_round(const std::vector<int>& bits, int x) {
  int j = static_cast<int>(bits.size());
  for (int i = 0; i < static_cast<int>(bits.size()); ++i)
    if (bits[static_cast<std::size_t>(i)] == 0) {
      j = i;
      break;
    }
  const int carry_x = x <= j ? 1 : 0;
  const int carry_next = x < j ? 1 : 0;
  return {bits[static_cast<std::size_t>(x)] ^ carry_x, carry_next};
}

class TokenRoundSweep : public ::testing::TestWithParam<int> {};

TEST_P(TokenRoundSweep, BlackRightMoverCorrectInEveryRound) {
  const int x = GetParam();
  const PlParams p = PlParams::make(32);  // psi 5
  if (x >= p.psi) GTEST_SKIP();
  for (long long id : {0LL, 1LL, 13LL, 30LL, 31LL}) {
    auto c = make_safe_config(p, 0, id);
    std::vector<int> bits;
    for (int i = 0; i < p.psi; ++i)
      bits.push_back(c[static_cast<std::size_t>(i)].b);
    const auto rv = reference_round(bits, x);
    // Host anywhere on the round-x rightward leg: from offset x to psi+x.
    for (int host = x; host < p.psi + x; ++host) {
      const int pos = p.psi + x - host;
      if (pos < 1 || pos > p.psi) continue;
      auto cc = c;
      cc[static_cast<std::size_t>(host)].token_b =
          Token{static_cast<std::int8_t>(pos),
                static_cast<std::uint8_t>(rv.value),
                static_cast<std::uint8_t>(rv.carry)};
      EXPECT_TRUE(token_correct(cc, p, host, true, 0))
          << "id=" << id << " x=" << x << " host=" << host;
      // Wrong value or carry must be rejected.
      cc[static_cast<std::size_t>(host)].token_b.value ^= 1;
      EXPECT_FALSE(token_correct(cc, p, host, true, 0));
    }
  }
}

TEST_P(TokenRoundSweep, BlackLeftMoverCorrectInEveryRound) {
  const int x = GetParam();
  const PlParams p = PlParams::make(32);
  if (x >= p.psi - 1) GTEST_SKIP();  // left legs exist for x <= psi-2
  auto c = make_safe_config(p, 0, 9);
  std::vector<int> bits;
  for (int i = 0; i < p.psi; ++i)
    bits.push_back(c[static_cast<std::size_t>(i)].b);
  const auto rv = reference_round(bits, x);
  // Host on the leftward leg: from psi+x down to x+2 (pos = (x+1) - host).
  for (int host = x + 2; host <= p.psi + x; ++host) {
    const int pos = (x + 1) - host;
    if (pos > -1 || pos < -(p.psi - 1)) continue;
    auto cc = c;
    cc[static_cast<std::size_t>(host)].token_b =
        Token{static_cast<std::int8_t>(pos),
              static_cast<std::uint8_t>(rv.value),
              static_cast<std::uint8_t>(rv.carry)};
    EXPECT_TRUE(token_correct(cc, p, host, true, 0))
        << "x=" << x << " host=" << host;
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, TokenRoundSweep,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(WhiteTokenCorrectness, RoundZeroOnWhitePair) {
  const PlParams p = PlParams::make(32);  // psi 5, zeta 7
  auto c = make_safe_config(p, 0, 4);
  // White pair (S_1, S_2); S_1's bits encode id 5.
  std::vector<int> bits;
  for (int i = 0; i < p.psi; ++i)
    bits.push_back(c[static_cast<std::size_t>(p.psi + i)].b);
  const auto rv = reference_round(bits, 0);
  // Right-mover at the white border (host = psi, pos = psi).
  auto cc = c;
  cc[static_cast<std::size_t>(p.psi + 1)].token_w =
      Token{static_cast<std::int8_t>(p.psi - 1),
            static_cast<std::uint8_t>(rv.value),
            static_cast<std::uint8_t>(rv.carry)};
  EXPECT_TRUE(token_correct(cc, p, p.psi + 1, false, 0));
  // The same token as a *black* token is invalid (wrong color band).
  cc[static_cast<std::size_t>(p.psi + 1)].token_b =
      cc[static_cast<std::size_t>(p.psi + 1)].token_w;
  EXPECT_FALSE(token_correct(cc, p, p.psi + 1, true, 0));
}

TEST(TokenGeometry, WrappingTokenRejected) {
  // A "valid-looking" token whose working pair would wrap past the leader
  // must be rejected by the geometry check.
  const PlParams p = PlParams::make(16);  // psi 4, n 16
  auto c = make_safe_config(p, 0);
  // Host u_15 (dist 7), pos 1: tau = (7+1)%8 = 0 -> not in [4,7]: already
  // invalid. Try host u_14 (dist 6), pos 2: tau = 0: invalid too. The wrap
  // protection matters for hosts whose pair-start computation crosses the
  // leader: host u_1 (dist 1) with pos -1... tau = 0: invalid. Construct a
  // genuinely tricky one: host u_2 (dist 2), pos -1 -> tau 1 (valid left
  // band), round x = 0, target u_1, pair start u_1 - 1 = u_0: rel 0: fine —
  // this is actually legitimate. Now shift the leader so the pair start
  // falls beyond it: leader at u_2, host u_2+? ... simpler: leader at 3.
  const auto c2 = make_safe_config(p, 3);
  auto cc = std::vector<PlState>(c2.begin(), c2.end());
  // Host u_1: dist = (1-3) mod 8 = 6; a left-mover with pos -5 is out of
  // domain; pos -3 -> tau = (6-3)%8 = 3 in [1,3]: "valid" by Def. 3.3, but
  // its pair start computes to u_1 - 3 - ... let's check: target u_{-2}=u_14,
  // round x = tau-1 = 2, pair start = target - (x+1) = u_14 - 3 = u_11:
  // rel(u_11) = 0 mod 8 ✓ black border; host offset = rel(u_1)=14... - 8 = 6
  // fits [0, 7]; target offset 3 = x+1 ✓ — geometry fine after all (the
  // wrap went the safe way). Force the bad case: host u_4 (rel 1) with a
  // left-mover pos -2: tau = ((1)+(-2)) mod 8 = 7: right band only -> not
  // valid. The arithmetic genuinely protects most cases; verify at least
  // that hosts in the last segment are rejected by check_safe regardless.
  cc[static_cast<std::size_t>(core::ring_add(3, 13, 16))].token_b =
      Token{1, 0, 0};
  EXPECT_FALSE(is_safe(cc, p));
}

TEST(Lemma44, CorrectTokenCarriesResultBit) {
  // Lemma 4.4: a correct token working for (S_i, S_{i+1}) in round x has
  // token[2] = bit x of iota(S_i) + 1.
  const PlParams p = PlParams::make(32);
  for (long long id : {0LL, 6LL, 15LL, 31LL}) {
    const auto c = make_safe_config(p, 0, id);
    std::vector<int> bits;
    for (int i = 0; i < p.psi; ++i)
      bits.push_back(c[static_cast<std::size_t>(i)].b);
    const long long succ = (id + 1) % p.id_modulus();
    for (int x = 0; x < p.psi; ++x) {
      const auto rv = reference_round(bits, x);
      EXPECT_EQ(rv.value, static_cast<int>((succ >> x) & 1))
          << "id=" << id << " x=" << x;
    }
  }
}

TEST(Lemma45, TokenStaysCorrectWhileSegmentIdFixed) {
  // Lemma 4.5 dynamics: drive a correct token along its trajectory in
  // construction mode over a safe configuration; it must remain correct at
  // every step until deletion (iota(S_0) never changes).
  const PlParams p = PlParams::make(16);
  core::Runner<PlProtocol> run(p, make_safe_config(p, 0, 2), 1);
  const int psi = p.psi;
  auto verify_if_exists = [&]() {
    for (int i = 0; i < p.n; ++i) {
      if (run.agent(i).token_b.exists()) {
        ASSERT_TRUE(token_correct(run.agents(), p, i, true, 0))
            << "host " << i << " after " << run.steps();
      }
    }
  };
  for (int j = 0; j < psi; ++j) {
    run.apply_arc(j);
    verify_if_exists();
  }
  for (int x = 0; x <= psi - 2; ++x) {
    for (int j = psi + x - 1; j >= x + 1; --j) {
      run.apply_arc(j);
      verify_if_exists();
    }
    for (int j = x + 1; j <= psi + x; ++j) {
      run.apply_arc(j);
      verify_if_exists();
    }
  }
}

}  // namespace
}  // namespace ppsim::pl
