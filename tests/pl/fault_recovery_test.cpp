// Self-stabilization exercised the way an operator cares about: corrupt a
// converged system and watch it heal.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

constexpr int kC1 = 4;

std::uint64_t budget(const PlParams& p) {
  const auto n = static_cast<std::uint64_t>(p.n);
  return 600ULL * n * n * static_cast<std::uint64_t>(p.kappa_max) + 2'000'000;
}

class FaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaultSweep, RecoversFromAgentCorruption) {
  const int faults = GetParam();
  const PlParams p = PlParams::make(24, kC1);
  core::Xoshiro256pp rng(faults * 97 + 1);
  auto config = make_safe_config(p);
  corrupt(config, p, faults, rng);
  core::Runner<PlProtocol> run(p, config, faults);
  const auto hit = run.run_until(SafePredicate{}, budget(p));
  ASSERT_TRUE(hit.has_value()) << "faults=" << faults;
  EXPECT_EQ(run.leader_count(), 1);
}

INSTANTIATE_TEST_SUITE_P(FaultCounts, FaultSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 24));

TEST(FaultRecovery, LeaderDeletionIsDetectedAndRepaired) {
  const PlParams p = PlParams::make(16, kC1);
  auto config = make_safe_config(p);
  config[0].leader = 0;  // kill the unique leader, keep everything else
  core::Runner<PlProtocol> run(p, config, 1);
  ASSERT_EQ(run.leader_count(), 0);
  const auto hit = run.run_until(SafePredicate{}, budget(p));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(run.leader_count(), 1);
}

TEST(FaultRecovery, DuplicateLeaderIsEliminated) {
  const PlParams p = PlParams::make(16, kC1);
  auto config = make_safe_config(p);
  config[8].leader = 1;  // rogue second leader
  config[8].shield = 1;
  core::Runner<PlProtocol> run(p, config, 2);
  ASSERT_EQ(run.leader_count(), 2);
  const auto hit = run.run_until(SafePredicate{}, budget(p));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(run.leader_count(), 1);
}

TEST(FaultRecovery, RepeatedFaultBursts) {
  const PlParams p = PlParams::make(12, kC1);
  core::Xoshiro256pp rng(31);
  auto config = make_safe_config(p);
  core::Runner<PlProtocol> run(p, config, 31);
  for (int burst = 0; burst < 5; ++burst) {
    auto snapshot =
        std::vector<PlState>(run.agents().begin(), run.agents().end());
    corrupt(snapshot, p, 3, rng);
    core::Runner<PlProtocol> next(p, snapshot, 100 + burst);
    const auto hit = next.run_until(SafePredicate{}, budget(p));
    ASSERT_TRUE(hit.has_value()) << "burst " << burst;
    run = next;
  }
}

}  // namespace
}  // namespace ppsim::pl
