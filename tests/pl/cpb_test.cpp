// C_PB — peaceful live bullets (§4.1/4.2): Lemma 4.1 (closure), Lemma 4.2
// (never again leaderless) and the Lemma 4.8/4.10 entry dynamics.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

constexpr int kC1 = 4;

TEST(Cpb, Lemma41ClosureUnderSimulation) {
  // From configurations in C_PB, the execution stays in C_PB at every
  // sampled point (the set is closed). Random configurations almost never
  // satisfy peacefulness, so repair random ones into C_PB: ensure a leader
  // exists, then pacify every live bullet (shield its nearest left leader
  // and clear absence signals on the walk).
  const PlParams p = PlParams::make(16, kC1);
  core::Xoshiro256pp rng(3);
  for (int t = 0; t < 20; ++t) {
    auto c = random_config(p, rng);
    if (count_leaders(c) == 0) {
      c[0].leader = 1;
      c[0].shield = 1;
    }
    for (int i = 0; i < p.n; ++i) {
      if (c[static_cast<std::size_t>(i)].bullet != 2) continue;
      for (int j = 0; j < p.n; ++j) {
        PlState& s = c[static_cast<std::size_t>(core::ring_add(i, -j, p.n))];
        s.signal_b = 0;
        if (s.leader == 1) {
          s.shield = 1;
          break;
        }
      }
    }
    ASSERT_TRUE(in_cpb(c)) << "repair failed, trial " << t;
    core::Runner<PlProtocol> run(p, c, static_cast<std::uint64_t>(t));
    for (int block = 0; block < 50; ++block) {
      run.run(500);
      ASSERT_TRUE(in_cpb(run.agents()))
          << "trial " << t << " after " << run.steps();
    }
  }
}

TEST(Cpb, Lemma42NeverLeaderlessAgain) {
  // C_PB subset of C_NZ: once in C_PB the leader count never reaches zero.
  const PlParams p = PlParams::make(12, kC1);
  auto c = make_safe_config(p);
  // Add hostile-but-peaceful artifacts: live bullets behind a shielded
  // leader, dummy bullets anywhere, stale signals *behind* the bullets.
  c[4].bullet = 2;
  c[7].bullet = 2;
  c[9].bullet = 1;
  ASSERT_TRUE(in_cpb(c));
  core::Runner<PlProtocol> run(p, c, 11);
  for (int i = 0; i < 100; ++i) {
    run.run(1000);
    ASSERT_GE(run.leader_count(), 1) << "after " << run.steps();
  }
}

TEST(Cpb, Lemma48EntryWithinQuadraticBudget) {
  // From arbitrary configurations, C_PB (or an intermediate
  // no-live-bullet / no-absence-signal state that then feeds Lemma 4.9) is
  // reached quickly; we check the end-to-end version: C_PB within the
  // O(n^2 log n) budget of Lemma 4.10.
  const PlParams p = PlParams::make(24, kC1);
  core::Xoshiro256pp rng(17);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    core::Runner<PlProtocol> run(p, random_config(p, rng), seed);
    const auto n64 = static_cast<std::uint64_t>(p.n);
    const auto hit = run.run_until(
        [](Config c, const PlParams&) { return in_cpb(c); },
        500'000ULL * n64 * n64);
    ASSERT_TRUE(hit.has_value()) << "seed " << seed;
  }
}

TEST(Cpb, NonPeacefulBulletCanKillTheLastLeader) {
  // The complement story (why C_PB matters): an unshielded lone leader with
  // an incoming live bullet and no absence signals... is exactly NOT in
  // C_PB, and the bullet may indeed kill the last leader before the system
  // recovers via detection.
  const PlParams p = PlParams::make(8, kC1);
  auto c = make_safe_config(p);
  c[0].shield = 0;
  c[6].bullet = 2;  // live bullet two hops from the unshielded leader
  ASSERT_FALSE(in_cpb(c));
  core::Runner<PlProtocol> run(p, c, 1);
  run.apply_arc(6);  // bullet moves to u_7
  run.apply_arc(7);  // bullet hits u_0: kill
  EXPECT_EQ(run.agent(0).leader, 0);
  EXPECT_EQ(run.leader_count(), 0);
  // ... and self-stabilization still recovers eventually.
  const auto hit = run.run_until(SafePredicate{}, 100'000'000ULL);
  EXPECT_TRUE(hit.has_value());
}

TEST(Cpb, FreshlyFiredLiveBulletsAreAlwaysPeaceful) {
  // §4.1: "every newly-fired live bullet is peaceful" — when a leader fires
  // live (lines 51-52), it simultaneously shields and clears its signal.
  const PlParams p = PlParams::make(8, kC1);
  auto c = make_safe_config(p);
  c[0].signal_b = 1;  // the leader is ready to fire
  core::Runner<PlProtocol> run(p, c, 2);
  run.apply_arc(0);  // leader as initiator: fires live
  // The bullet (now at u_1) is peaceful: leader shielded, no signals on the
  // walk back.
  ASSERT_EQ(run.agent(1).bullet, 2);
  EXPECT_TRUE(live_bullet_peaceful(run.agents(), 1));
  EXPECT_TRUE(in_cpb(run.agents()));
}

}  // namespace
}  // namespace ppsim::pl
