// Degenerate ring sizes (n = 2, 3) and determinism guarantees.
//
// n = 2 is the smallest population the model admits (Section 2 assumes
// n >= 2): the directed ring has arcs (u_0,u_1) and (u_1,u_0), psi is
// floored at 2, and zeta = 1 makes *every* agent part of the last segment,
// so the token machinery is entirely inert and detection rests on the dist
// chain alone (leaderless consistency would need 2psi | n — impossible).
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

class TinyRingSweep : public ::testing::TestWithParam<int> {};

TEST_P(TinyRingSweep, RandomConfigurationsConverge) {
  const int n = GetParam();
  const PlParams p = PlParams::make(n, 4);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    core::Xoshiro256pp rng(seed * 31);
    core::Runner<PlProtocol> run(p, random_config(p, rng), seed);
    const auto hit = run.run_until(SafePredicate{}, 200'000'000ULL);
    ASSERT_TRUE(hit.has_value()) << "n=" << n << " seed=" << seed;
    run.run(50'000);
    EXPECT_EQ(run.leader_count(), 1);
    EXPECT_TRUE(is_safe(run.agents(), p));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TinyRingSweep, ::testing::Values(2, 3, 5));

TEST(TinyRings, N2HasTwoDirectedArcs) {
  const PlParams p = PlParams::make(2);
  core::Runner<PlProtocol> run(p, make_safe_config(p), 1);
  EXPECT_EQ(run.arc_count(), 2);
  // Arc 1 is (u_1, u_0): u_1 initiates toward its right neighbor u_0.
  run.apply_arc(1);
  EXPECT_EQ(run.leader_count(), 1);
}

TEST(TinyRings, N2TokensNeverExist) {
  // zeta = 1: every agent has last = 1 in C_DL, so line 12 never creates.
  const PlParams p = PlParams::make(2, 4);
  core::Runner<PlProtocol> run(p, make_safe_config(p), 2);
  run.run(200'000);
  for (const PlState& s : run.agents()) {
    EXPECT_FALSE(s.token_b.exists());
    EXPECT_FALSE(s.token_w.exists());
  }
  EXPECT_TRUE(is_safe(run.agents(), p));
}

TEST(Determinism, SameSeedSameTrajectory) {
  const PlParams p = PlParams::make(24, 4);
  core::Xoshiro256pp rng(77);
  const auto init = random_config(p, rng);
  core::Runner<PlProtocol> a(p, init, 123);
  core::Runner<PlProtocol> b(p, init, 123);
  a.run(250'000);
  b.run(250'000);
  for (int i = 0; i < p.n; ++i) ASSERT_EQ(a.agent(i), b.agent(i));
  EXPECT_EQ(a.leader_count(), b.leader_count());
  EXPECT_EQ(a.last_leader_change(), b.last_leader_change());
}

TEST(Determinism, DifferentSeedsDiverge) {
  const PlParams p = PlParams::make(24, 4);
  core::Xoshiro256pp rng(78);
  const auto init = random_config(p, rng);
  core::Runner<PlProtocol> a(p, init, 1);
  core::Runner<PlProtocol> b(p, init, 2);
  a.run(50'000);
  b.run(50'000);
  int differing = 0;
  for (int i = 0; i < p.n; ++i)
    differing += a.agent(i) == b.agent(i) ? 0 : 1;
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace ppsim::pl
