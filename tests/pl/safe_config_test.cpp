// make_safe_config / make_fresh_config construction properties.
#include <gtest/gtest.h>

#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

class SafeConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(SafeConfigSweep, IsSafeForAllRingSizes) {
  const int n = GetParam();
  const PlParams p = PlParams::make(n);
  const auto c = make_safe_config(p);
  const auto v = check_safe(c, p);
  EXPECT_TRUE(v.safe) << "n=" << n << ": " << v.reason;
  EXPECT_EQ(count_leaders(c), 1);
  EXPECT_TRUE(is_perfect(c, p));
}

INSTANTIATE_TEST_SUITE_P(RingSizes, SafeConfigSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 12, 15, 16,
                                           17, 20, 25, 31, 32, 33, 47, 64, 65,
                                           100, 128, 200, 255, 256, 257));

class SafeConfigSlackSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SafeConfigSlackSweep, IsSafeWithPsiSlack) {
  const auto [n, slack] = GetParam();
  const PlParams p = PlParams::make(n, 32, slack);
  const auto v = check_safe(std::vector<PlState>(make_safe_config(p)), p);
  EXPECT_TRUE(v.safe) << "n=" << n << " slack=" << slack << ": " << v.reason;
}

INSTANTIATE_TEST_SUITE_P(
    Slacks, SafeConfigSlackSweep,
    ::testing::Combine(::testing::Values(5, 8, 16, 33, 64),
                       ::testing::Values(0, 1, 2, 4)));

TEST(SafeConfig, LeaderPositionRespected) {
  const PlParams p = PlParams::make(20);
  for (int k : {0, 7, 19}) {
    const auto c = make_safe_config(p, k);
    ASSERT_EQ(count_leaders(c), 1);
    EXPECT_EQ(leader_positions(c).front(), k);
    EXPECT_TRUE(is_safe(c, p));
  }
}

TEST(SafeConfig, FirstIdModularlyReduced) {
  const PlParams p = PlParams::make(16);
  const auto a = make_safe_config(p, 0, 3);
  const auto b = make_safe_config(p, 0, 3 + p.id_modulus());
  EXPECT_EQ(a, b);
}

TEST(FreshConfig, SingleLeaderEverythingElseZero) {
  const PlParams p = PlParams::make(32);
  const auto c = make_fresh_config(p, 4);
  EXPECT_EQ(count_leaders(c), 1);
  EXPECT_EQ(c[4].leader, 1);
  EXPECT_EQ(c[4].shield, 1);
  EXPECT_FALSE(is_safe(c, p));  // construction has not run yet
}

}  // namespace
}  // namespace ppsim::pl
