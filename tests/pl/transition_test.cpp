// Line-level tests of CreateLeader() (Algorithm 2): dist propagation (lines
// 4-8), leader creation on dist inconsistency in detect mode (lines 5-6), and
// the last-segment flag update (line 9).
#include <gtest/gtest.h>

#include "pl/params.hpp"
#include "pl/protocol.hpp"
#include "pl/state.hpp"

namespace ppsim::pl {
namespace {

PlParams params_n16() { return PlParams::make(16); }  // psi = 4

PlState construct_mode_agent() { return PlState{}; }  // clock 0 => Construct

PlState detect_mode_agent(const PlParams& p) {
  PlState s;
  s.clock = static_cast<std::uint16_t>(p.kappa_max);
  return s;
}

TEST(CreateLeader, ConstructionWritesDistFromLeft) {
  const PlParams p = params_n16();
  PlState l = construct_mode_agent();
  PlState r = construct_mode_agent();
  l.dist = 3;
  r.dist = 7;  // wrong; must become 4
  PlProtocol::apply(l, r, p);
  EXPECT_EQ(r.dist, 4);
  EXPECT_EQ(r.leader, 0);
}

TEST(CreateLeader, ConstructionWrapsModulo2Psi) {
  const PlParams p = params_n16();
  PlState l = construct_mode_agent();
  PlState r = construct_mode_agent();
  l.dist = static_cast<std::uint16_t>(p.two_psi() - 1);  // 7
  PlProtocol::apply(l, r, p);
  EXPECT_EQ(r.dist, 0);
}

TEST(CreateLeader, LeaderResponderHasDistZero) {
  const PlParams p = params_n16();
  PlState l = construct_mode_agent();
  PlState r = construct_mode_agent();
  l.dist = 5;
  r.leader = 1;
  r.dist = 9;
  PlProtocol::apply(l, r, p);
  EXPECT_EQ(r.dist, 0);
  EXPECT_EQ(r.leader, 1);
}

TEST(CreateLeader, DetectModeMismatchCreatesLeader) {
  const PlParams p = params_n16();
  PlState l = detect_mode_agent(p);
  PlState r = detect_mode_agent(p);
  l.dist = 2;
  r.dist = 5;  // expected 3: inconsistent
  PlProtocol::apply(l, r, p);
  EXPECT_EQ(r.leader, 1);
  // Line 6: fresh leader fires a live bullet and shields itself.
  EXPECT_EQ(r.bullet, 2);
  EXPECT_EQ(r.shield, 1);
  EXPECT_EQ(r.signal_b, 0);
  // Detect mode does not overwrite dist (line 7 guards on Construct).
  EXPECT_EQ(r.dist, 5);
}

TEST(CreateLeader, DetectModeConsistentPairStaysFollower) {
  const PlParams p = params_n16();
  PlState l = detect_mode_agent(p);
  PlState r = detect_mode_agent(p);
  l.dist = 2;
  r.dist = 3;
  PlProtocol::apply(l, r, p);
  EXPECT_EQ(r.leader, 0);
}

TEST(CreateLeader, DetectModeLeaderResponderExpectsZero) {
  const PlParams p = params_n16();
  PlState l = detect_mode_agent(p);
  PlState r = detect_mode_agent(p);
  r.leader = 1;
  r.dist = 0;
  l.dist = 6;
  PlProtocol::apply(l, r, p);
  EXPECT_EQ(r.leader, 1);  // tmp = 0 == dist: no (re-)creation, stays leader
}

TEST(LastFlag, SetWhenRightNeighborIsLeader) {
  const PlParams p = params_n16();
  PlState l = construct_mode_agent();
  PlState r = construct_mode_agent();
  r.leader = 1;
  l.last = 0;
  PlProtocol::apply(l, r, p);
  EXPECT_EQ(l.last, 1);
}

TEST(LastFlag, ClearedWhenRightNeighborIsBorder) {
  const PlParams p = params_n16();
  PlState l = construct_mode_agent();
  PlState r = construct_mode_agent();
  l.dist = static_cast<std::uint16_t>(p.psi - 1);
  r.dist = static_cast<std::uint16_t>(p.psi);  // border (consistent)
  l.last = 1;
  r.last = 1;
  PlProtocol::apply(l, r, p);
  EXPECT_EQ(l.last, 0);
}

TEST(LastFlag, CopiedFromInteriorRightNeighbor) {
  const PlParams p = params_n16();
  for (int rlast : {0, 1}) {
    PlState l = construct_mode_agent();
    PlState r = construct_mode_agent();
    l.dist = 1;
    r.dist = 2;  // consistent, not a border
    r.last = static_cast<std::uint8_t>(rlast);
    l.last = static_cast<std::uint8_t>(1 - rlast);
    PlProtocol::apply(l, r, p);
    EXPECT_EQ(l.last, rlast);
  }
}

TEST(LastFlag, Line9UsesPostUpdateDistOfResponder) {
  // In construction mode r.dist is rewritten (line 8) before line 9 reads it:
  // l.dist = psi-1 makes r a border (dist becomes psi), so l.last <- 0 even
  // though r's stale dist was interior.
  const PlParams p = params_n16();
  PlState l = construct_mode_agent();
  PlState r = construct_mode_agent();
  l.dist = static_cast<std::uint16_t>(p.psi - 1);
  r.dist = 1;  // stale: interior
  l.last = 1;
  r.last = 1;
  PlProtocol::apply(l, r, p);
  EXPECT_EQ(r.dist, p.psi);
  EXPECT_EQ(l.last, 0);
}

TEST(Params, FactoryValidation) {
  EXPECT_THROW((void)PlParams::make(1), std::invalid_argument);
  EXPECT_THROW((void)PlParams::make(8, 0), std::invalid_argument);
  EXPECT_THROW((void)PlParams::make(8, 32, -1), std::invalid_argument);
  const PlParams p = PlParams::make(100);
  EXPECT_EQ(p.psi, 7);  // ceil(log2 100)
  EXPECT_EQ(p.kappa_max, 32 * 7);
  EXPECT_GE(p.id_modulus(), 100);
}

TEST(Params, PsiFloorIsTwo) {
  EXPECT_EQ(PlParams::make(2).psi, 2);
  EXPECT_EQ(PlParams::make(3).psi, 2);
  EXPECT_EQ(PlParams::make(4).psi, 2);
  EXPECT_EQ(PlParams::make(5).psi, 3);
}

TEST(Params, TrajectoryLengthFormula) {
  EXPECT_EQ(PlParams::make(16).trajectory_length(), 2 * 16 - 8 + 1);  // psi=4
  EXPECT_EQ(PlParams::make(100).trajectory_length(), 2 * 49 - 14 + 1);
}

TEST(Params, Zeta) {
  EXPECT_EQ(PlParams::make(16).zeta(), 4);   // psi 4
  EXPECT_EQ(PlParams::make(17).zeta(), 4);   // psi 5, ceil(17/5)
  EXPECT_EQ(PlParams::make(5).zeta(), 2);    // psi 3
}

TEST(Mode, DerivedFromClock) {
  const PlParams p = params_n16();
  PlState s;
  EXPECT_FALSE(in_detect_mode(s, p.kappa_max));
  s.clock = static_cast<std::uint16_t>(p.kappa_max - 1);
  EXPECT_FALSE(in_detect_mode(s, p.kappa_max));
  s.clock = static_cast<std::uint16_t>(p.kappa_max);
  EXPECT_TRUE(in_detect_mode(s, p.kappa_max));
}

}  // namespace
}  // namespace ppsim::pl
