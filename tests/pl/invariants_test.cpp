// Perfection (conditions (1)/(2)), segment decomposition, peaceful bullets,
// C_DL and the S_PL membership checker.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

TEST(Condition1, HoldsOnSafeConfig) {
  for (int n : {8, 12, 16, 33, 64}) {
    const PlParams p = PlParams::make(n);
    const auto c = make_safe_config(p);
    EXPECT_TRUE(satisfies_condition1(c, p)) << "n=" << n;
  }
}

TEST(Condition1, DetectsBrokenChain) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  c[5].dist = static_cast<std::uint16_t>((c[5].dist + 1) % p.two_psi());
  EXPECT_FALSE(satisfies_condition1(c, p));
}

TEST(Segments, DecompositionOnSafeConfig) {
  const PlParams p = PlParams::make(16);  // psi 4, zeta 4
  const auto c = make_safe_config(p);
  const auto segs = decompose_segments(c, p);
  ASSERT_EQ(segs.size(), 4u);
  for (const auto& s : segs) EXPECT_EQ(s.length, 4);
  // make_safe_config assigns consecutive ids 0,1,2,3 starting at the leader.
  EXPECT_EQ(segs[0].start, 0);
  EXPECT_EQ(segs[0].id, 0u);
  EXPECT_EQ(segs[1].id, 1u);
  EXPECT_EQ(segs[2].id, 2u);
  EXPECT_EQ(segs[3].id, 3u);
}

TEST(Segments, IdIsLsbFirst) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  // Set S_1 (agents 4..7) bits to 1,0,1,1 -> id = 1 + 4 + 8 = 13.
  c[4].b = 1;
  c[5].b = 0;
  c[6].b = 1;
  c[7].b = 1;
  const auto segs = decompose_segments(c, p);
  EXPECT_EQ(segs[1].id, 13u);
}

TEST(Perfection, SafeConfigIsPerfect) {
  for (int n : {8, 16, 24, 32, 48}) {
    const PlParams p = PlParams::make(n);
    EXPECT_TRUE(is_perfect(std::vector<PlState>(make_safe_config(p)), p))
        << "n=" << n;
  }
}

TEST(Perfection, BrokenIdChainIsImperfect) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  // Corrupt S_2's id (segments S_1->S_2 are both non-exempt: S_2 neither
  // starts with a leader nor precedes one).
  c[8].b ^= 1;
  EXPECT_FALSE(is_perfect(c, p));
}

TEST(Perfection, FirstAndLastSegmentsAreExempt) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  // The last segment S_3 ends right before the leader: its own id check is
  // exempt, and the only segment comparing against it (S_0) starts with the
  // leader, so it is exempt too. Corrupting S_3's bits keeps perfection.
  c[13].b ^= 1;
  c[14].b ^= 1;
  EXPECT_TRUE(is_perfect(c, p));
}

TEST(PeacefulBullets, ShieldedLeaderNoSignals) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  c[5].bullet = 2;  // live bullet; leader at 0 is shielded; no signals
  EXPECT_TRUE(live_bullet_peaceful(c, 5));
  EXPECT_TRUE(in_cpb(c));
}

TEST(PeacefulBullets, UnshieldedLeaderBreaksPeace) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  c[5].bullet = 2;
  c[0].shield = 0;
  EXPECT_FALSE(live_bullet_peaceful(c, 5));
  EXPECT_FALSE(in_cpb(c));
}

TEST(PeacefulBullets, AbsenceSignalOnPathBreaksPeace) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  c[5].bullet = 2;
  c[3].signal_b = 1;  // between leader (0) and bullet (5)
  EXPECT_FALSE(live_bullet_peaceful(c, 5));
}

TEST(PeacefulBullets, SignalBehindBulletIsHarmless) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  c[5].bullet = 2;
  c[9].signal_b = 1;  // to the right of the bullet: not on the walk
  EXPECT_TRUE(live_bullet_peaceful(c, 5));
}

TEST(PeacefulBullets, NoLeaderMeansNotPeaceful) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  c[0].leader = 0;
  c[5].bullet = 2;
  EXPECT_FALSE(live_bullet_peaceful(c, 5));
  EXPECT_FALSE(in_cpb(c));
}

TEST(Cdl, SafeConfigHasLayout) {
  for (int n : {8, 16, 17, 30, 64}) {
    const PlParams p = PlParams::make(n);
    for (int k : {0, 3, n - 1}) {
      const auto c = make_safe_config(p, k);
      EXPECT_TRUE(in_cdl_layout(c, p, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Cdl, WrongLastFlagRejected) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  c[13].last = 0;  // inside the last segment
  EXPECT_FALSE(in_cdl_layout(c, p, 0));
}

TEST(Safety, SafeConfigPassesEverywhere) {
  for (int n : {4, 8, 16, 17, 23, 32, 64, 100}) {
    const PlParams p = PlParams::make(n);
    for (int k : {0, 1, n / 2}) {
      for (long long id : {0LL, 5LL}) {
        const auto c = make_safe_config(p, k, id);
        const auto v = check_safe(c, p);
        EXPECT_TRUE(v.safe)
            << "n=" << n << " k=" << k << " id=" << id << ": " << v.reason;
      }
    }
  }
}

TEST(Safety, TwoLeadersRejected) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  c[8].leader = 1;
  EXPECT_FALSE(is_safe(c, p));
}

TEST(Safety, NoLeaderRejected) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  c[0].leader = 0;
  EXPECT_FALSE(is_safe(c, p));
}

TEST(Safety, NonConsecutiveIdsRejected) {
  const PlParams p = PlParams::make(24);  // psi 5, zeta 5: pairs 0..2 checked
  auto c = make_safe_config(p);
  c[static_cast<std::size_t>(p.psi)].b ^= 1;  // S_1's id breaks
  EXPECT_FALSE(is_safe(c, p));
}

TEST(Safety, IncorrectTokenRejected) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  // A geometrically valid round-0 right-mover for (S_0, S_1) sitting at u_1:
  // dist 1, pos 3 -> tau 4 (round 0). Correct values: S_0 id = 0 -> j = 0,
  // value = b_0 xor [0<=0] = 1, carry = [0<0] = 0.
  c[1].token_b = Token{3, 1, 0};
  EXPECT_TRUE(is_safe(c, p)) << check_safe(c, p).reason;
  c[1].token_b = Token{3, 0, 0};  // wrong value bit
  EXPECT_FALSE(is_safe(c, p));
  c[1].token_b = Token{3, 1, 1};  // wrong carry
  EXPECT_FALSE(is_safe(c, p));
}

TEST(Safety, TokenInLastSegmentRejected) {
  const PlParams p = PlParams::make(16);
  auto c = make_safe_config(p);
  c[13].token_b = Token{1, 0, 0};
  EXPECT_FALSE(is_safe(c, p));
}

TEST(Lemma32Style, LeaderlessConsistentConfigIsNotPerfect) {
  // 2psi | n so the dist chain is globally consistent without a leader; the
  // segment-id chain cannot also close (Lemma 3.2).
  for (int n : {4, 16, 48, 160}) {
    const PlParams p = PlParams::make(n);
    const auto c = leaderless_consistent(p, 0);
    EXPECT_EQ(count_leaders(c), 0);
    EXPECT_FALSE(is_perfect(c, p)) << "n=" << n;
  }
}

TEST(Adversary, RandomConfigsRespectDomains) {
  const PlParams p = PlParams::make(23);
  core::Xoshiro256pp rng(5);
  for (int t = 0; t < 200; ++t) {
    const auto c = random_config(p, rng);
    for (const PlState& s : c) {
      EXPECT_LT(s.dist, p.two_psi());
      EXPECT_LE(s.clock, p.kappa_max);
      EXPECT_LE(s.signal_r, p.kappa_max);
      EXPECT_LE(static_cast<int>(s.hits), p.psi);
      EXPECT_LE(s.bullet, 2);
      for (const Token& t2 : {s.token_b, s.token_w}) {
        if (!t2.exists()) continue;
        EXPECT_GE(t2.pos, -(p.psi - 1));
        EXPECT_LE(t2.pos, p.psi);
        EXPECT_NE(t2.pos, 0);
      }
    }
  }
}

TEST(Adversary, CorruptTouchesExactlyFAgents) {
  const PlParams p = PlParams::make(32);
  core::Xoshiro256pp rng(9);
  const auto base = make_safe_config(p);
  for (int f : {1, 3, 8}) {
    auto c = base;
    corrupt(c, p, f, rng);
    int diff = 0;
    for (int i = 0; i < p.n; ++i)
      diff += c[static_cast<std::size_t>(i)] ==
                      base[static_cast<std::size_t>(i)]
                  ? 0
                  : 1;
    EXPECT_LE(diff, f);  // a corruption may coincide with the old state
    EXPECT_GE(diff, f - 1);
  }
}

}  // namespace
}  // namespace ppsim::pl
