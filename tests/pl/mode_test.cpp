// DetermineMode() (Algorithm 4): signal generation, movement, absorption,
// TTL decrements via the lottery game, clock resets and clock advancement.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"
#include "pl/params.hpp"
#include "pl/protocol.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

const PlParams p16 = PlParams::make(16);  // psi 4, kappa_max 128

TEST(DetermineMode, LeaderInitiatorGeneratesAndForwardsSignal) {
  PlState l, r;
  l.leader = 1;
  PlProtocol::apply(l, r, p16);
  // Line 35 sets l.signalR = kappa_max; line 42 immediately moves it right.
  EXPECT_EQ(l.signal_r, 0);
  EXPECT_EQ(r.signal_r, p16.kappa_max);
}

TEST(DetermineMode, SignalResetsBothClocks) {
  PlState l, r;
  l.signal_r = 5;
  l.clock = 77;
  r.clock = 99;
  PlProtocol::apply(l, r, p16);
  EXPECT_EQ(l.clock, 0);
  EXPECT_EQ(r.clock, 0);
}

TEST(DetermineMode, SignalMovesRight) {
  PlState l, r;
  l.signal_r = 42;
  PlProtocol::apply(l, r, p16);
  EXPECT_EQ(l.signal_r, 0);
  EXPECT_EQ(r.signal_r, 42);
}

TEST(DetermineMode, LeftSignalAbsorbsWeakerRightSignal) {
  PlState l, r;
  l.signal_r = 42;
  r.signal_r = 10;
  r.hits = 2;
  PlProtocol::apply(l, r, p16);
  EXPECT_EQ(l.signal_r, 0);
  EXPECT_EQ(r.signal_r, 42);  // max survives at r
  EXPECT_EQ(r.hits, 0);       // line 41: hits reset on left-absorbs-right
}

TEST(DetermineMode, StrongerRightSignalStaysPut) {
  PlState l, r;
  l.signal_r = 10;
  r.signal_r = 42;
  r.hits = 2;
  PlProtocol::apply(l, r, p16);
  EXPECT_EQ(l.signal_r, 0);
  EXPECT_EQ(r.signal_r, 42);
  EXPECT_EQ(r.hits, 3);  // no line-41 reset; line 37 incremented it
}

TEST(DetermineMode, HitsTrackLotteryRuns) {
  PlState l, r;
  r.hits = 1;
  PlProtocol::apply(l, r, p16);
  EXPECT_EQ(r.hits, 2);  // responder extends its run (line 37)
  EXPECT_EQ(l.hits, 0);  // initiator resets (line 36)
}

TEST(DetermineMode, HitsCappedAtPsi) {
  PlState l, r;
  r.hits = static_cast<std::uint8_t>(p16.psi);
  PlProtocol::apply(l, r, p16);
  EXPECT_LE(static_cast<int>(r.hits), p16.psi);
}

TEST(DetermineMode, LotteryWinAdvancesClockWithoutSignal) {
  PlState l, r;
  r.hits = static_cast<std::uint8_t>(p16.psi - 1);  // line 37 completes a run
  r.clock = 3;
  PlProtocol::apply(l, r, p16);
  EXPECT_EQ(r.clock, 4);  // lines 46-48
  EXPECT_EQ(r.hits, 0);
}

TEST(DetermineMode, LotteryWinDecrementsSignalTtl) {
  PlState l, r;
  l.signal_r = 10;
  r.hits = static_cast<std::uint8_t>(p16.psi - 1);
  PlProtocol::apply(l, r, p16);
  // The signal moved to r with TTL 10, then lines 43-45 decrement it. But
  // note line 40-41: l.signalR(10) >= r.signalR(0)? The guard needs
  // r.signalR > 0, so no hits reset; hits reaches psi and fires.
  EXPECT_EQ(r.signal_r, 9);
  EXPECT_EQ(r.hits, 0);
  EXPECT_EQ(r.clock, 0);  // the same win never also advances the clock
}

TEST(DetermineMode, ClockCapsAtKappaMax) {
  PlState l, r;
  r.clock = static_cast<std::uint16_t>(p16.kappa_max);
  r.hits = static_cast<std::uint8_t>(p16.psi - 1);
  PlProtocol::apply(l, r, p16);
  EXPECT_EQ(r.clock, p16.kappa_max);
  EXPECT_TRUE(in_detect_mode(r, p16.kappa_max));
}

TEST(DetermineMode, SignalTtlReachingZeroDisappears) {
  PlState l, r;
  l.signal_r = 1;
  r.hits = static_cast<std::uint8_t>(p16.psi - 1);
  PlProtocol::apply(l, r, p16);
  EXPECT_EQ(r.signal_r, 0);  // decremented to zero: the signal is gone
}

TEST(ModeDynamics, LeaderlessPopulationEventuallyAllDetect) {
  // Lemma 3.7 dynamics: no leader, no signals -> every clock must climb to
  // kappa_max (or a leader appears first — excluded here by keeping dist
  // consistent and ids consecutive... the token path may still promote, so
  // we only require: all-detect OR a leader, within the w.h.p. budget).
  const PlParams p = PlParams::make(8, 4);  // c1=4 keeps the test fast
  auto config = leaderless_consistent(p, 0);
  core::Runner<PlProtocol> run(p, config, 77);
  const auto hit = run.run_until(
      [](Config c, const PlParams& pp) {
        if (count_leaders(c) > 0) return true;
        return AllDetectPredicate{}(c, pp);
      },
      20'000'000);
  ASSERT_TRUE(hit.has_value());
}

TEST(ModeDynamics, LeaderKeepsPopulationInConstruction) {
  // Lemma 3.6 dynamics: from a safe configuration, no agent reaches Detect
  // within a Theta(kappa_max n^2) window w.h.p.
  const PlParams p = PlParams::make(16);  // paper-faithful c1 = 32
  core::Runner<PlProtocol> run(p, make_safe_config(p), 5);
  const std::uint64_t window = 4ULL * static_cast<std::uint64_t>(p.n) *
                               static_cast<std::uint64_t>(p.n) *
                               static_cast<std::uint64_t>(p.kappa_max);
  const auto hit = run.run_until(
      [](Config c, const PlParams& pp) {
        for (const PlState& s : c)
          if (in_detect_mode(s, pp.kappa_max)) return true;
        return false;
      },
      window);
  EXPECT_FALSE(hit.has_value());
}

}  // namespace
}  // namespace ppsim::pl
