// Closure of S_PL (Lemma 4.7): executions started inside S_PL never change
// any output and never leave S_PL. This is the end-to-end validation of both
// the transition implementation and the Def.-3.3/4.3 interpretation
// (DESIGN.md §2.1): a wrong interval or carry phase would either delete/flag
// legitimate tokens or let an "incorrect" token slip through and flip a bit.
#include <gtest/gtest.h>

#include <tuple>

#include "core/runner.hpp"
#include "pl/invariants.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::pl {
namespace {

class ClosureSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ClosureSweep, SafeSetIsClosed) {
  const auto [n, seed] = GetParam();
  const PlParams p = PlParams::make(n);
  core::Runner<PlProtocol> run(p, make_safe_config(p, n / 3), seed);
  ASSERT_TRUE(is_safe(run.agents(), p));
  const std::uint64_t total = 200'000;
  const std::uint64_t block = 1'000;
  for (std::uint64_t done = 0; done < total; done += block) {
    run.run(block);
    ASSERT_EQ(run.leader_count(), 1) << "after " << run.steps() << " steps";
    ASSERT_EQ(run.last_leader_change(), 0u);
    const auto v = check_safe(run.agents(), p);
    ASSERT_TRUE(v.safe) << "after " << run.steps() << " steps: " << v.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rings, ClosureSweep,
    ::testing::Combine(::testing::Values(4, 5, 8, 11, 16, 24, 32, 63),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Closure, OutputsNeverChangeOverLongRun) {
  const PlParams p = PlParams::make(48);
  core::Runner<PlProtocol> run(p, make_safe_config(p, 10), 99);
  run.run(2'000'000);
  EXPECT_EQ(run.leader_count(), 1);
  EXPECT_EQ(run.last_leader_change(), 0u);
  EXPECT_EQ(run.agent(10).leader, 1);
  EXPECT_TRUE(is_safe(run.agents(), p));
}

TEST(Closure, EveryStepStaysSafeSmallRing) {
  // Per-step checking on a small ring: no transient unsafe window exists.
  const PlParams p = PlParams::make(8);
  core::Runner<PlProtocol> run(p, make_safe_config(p), 7);
  for (int i = 0; i < 20'000; ++i) {
    run.step();
    const auto v = check_safe(run.agents(), p);
    ASSERT_TRUE(v.safe) << "step " << run.steps() << ": " << v.reason;
  }
}

TEST(Closure, HoldsWithPsiSlack) {
  for (int slack : {1, 2}) {
    const PlParams p = PlParams::make(12, 32, slack);
    core::Runner<PlProtocol> run(p, make_safe_config(p), 11);
    run.run(300'000);
    EXPECT_EQ(run.last_leader_change(), 0u);
    EXPECT_TRUE(is_safe(run.agents(), p)) << "slack=" << slack;
  }
}

TEST(Closure, HoldsWithSmallKappa) {
  // Even with an aggressive kappa_max (c1 = 2), agents that reach Detect see
  // only consistent data in S_PL and never create a leader.
  const PlParams p = PlParams::make(8, 2);
  core::Runner<PlProtocol> run(p, make_safe_config(p), 13);
  run.run(2'000'000);
  EXPECT_EQ(run.last_leader_change(), 0u);
  EXPECT_TRUE(is_safe(run.agents(), p));
}

}  // namespace
}  // namespace ppsim::pl
