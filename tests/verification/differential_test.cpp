// Cross-engine differential fuzzing: the four runnable Table-1 protocols
// plus the elimination subsystem and the undirected P_OR, replayed through
// Runner::run_unbatched / Runner::run / EnsembleRunner (generic + packed) /
// the checker-adapter mirror, with mid-run set_agent fault storms — zero
// divergences allowed. The bounded smoke below runs in the normal ctest
// matrix (label `fuzz`); DifferentialFuzzLong.* self-skips unless
// PPSIM_FUZZ_LONG is set (the nightly-style run, see README).
#include "verification/differential.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "baselines/fischer_jiang.hpp"
#include "baselines/modk.hpp"
#include "baselines/yokota28.hpp"
#include "common/elimination.hpp"
#include "core/rng.hpp"
#include "orientation/coloring.hpp"
#include "orientation/por.hpp"
#include "pl/adversary.hpp"
#include "pl/protocol.hpp"

namespace ppsim::verification {
namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

// ---- per-protocol fault/state generators -------------------------------

baselines::ModkState modk_fault(const baselines::ModkParams& p,
                                core::Xoshiro256pp& rng,
                                const baselines::ModkState&, int) {
  return baselines::modk_random_state(p, rng);
}

baselines::FjState fj_fault(const baselines::FjParams& p,
                            core::Xoshiro256pp& rng,
                            const baselines::FjState&, int) {
  return baselines::fj_random_state(p, rng);
}

baselines::Y28State y28_fault(const baselines::Y28Params& p,
                              core::Xoshiro256pp& rng,
                              const baselines::Y28State&, int) {
  return baselines::y28_random_state(p, rng);
}

pl::PlState pl_fault(const pl::PlParams& p, core::Xoshiro256pp& rng,
                     const pl::PlState&, int) {
  return pl::random_state(p, rng);
}

common::ElimAgentState elim_fault(
    const common::EliminationProtocol::Params& p, core::Xoshiro256pp& rng,
    const common::ElimAgentState&, int) {
  return common::EliminationProtocol::unpack_state(
      static_cast<std::size_t>(
          rng.bounded(common::EliminationProtocol::num_states(p))),
      p);
}

/// P_OR carries its coloring as read-only *input* variables: a fault may
/// scramble the writable dir/strong pair (dir over the full palette,
/// garbage directions included) but must preserve the inputs of the agent
/// it hits — which is why fault generators receive the current state.
orient::OrState por_fault(const orient::OrParams& p,
                          core::Xoshiro256pp& rng,
                          const orient::OrState& current, int) {
  orient::OrState s = current;
  s.dir = static_cast<std::uint8_t>(
      rng.bounded(static_cast<std::uint64_t>(p.xi)));
  s.strong = static_cast<std::uint8_t>(rng.bounded(2));
  return s;
}

std::vector<common::ElimAgentState> elim_random_config(
    const common::EliminationProtocol::Params& p, core::Xoshiro256pp& rng) {
  std::vector<common::ElimAgentState> c(static_cast<std::size_t>(p.n));
  for (auto& s : c)
    s = common::EliminationProtocol::unpack_state(
        static_cast<std::size_t>(
            rng.bounded(common::EliminationProtocol::num_states(p))),
        p);
  return c;
}

// ---- the smoke matrix (ctest label: fuzz) ------------------------------

TEST(Differential, ModkAllFiveLanesWithFaultStorms) {
  const auto p = baselines::ModkParams::make(5, 2);
  core::Xoshiro256pp cfg_rng(17);
  FuzzConfig cfg;
  cfg.seed = 1701;
  cfg.steps = 8192;
  cfg.check_every = 97;
  cfg.fault_storms = 4;
  cfg.faults_per_storm = 3;
  const auto rep = run_differential<baselines::Modk, baselines::ModkModel>(
      p, baselines::modk_random_config(p, cfg_rng), cfg, modk_fault);
  EXPECT_TRUE(rep.ok) << rep.divergence;
  EXPECT_TRUE(rep.packed_lane);  // in-domain faults keep the table active
  EXPECT_TRUE(rep.mirror_lane);  // 48^5 ids fit comfortably
  EXPECT_EQ(rep.interactions, cfg.steps);
  // Every requested storm runs (storms drawn at the final checkpoint
  // inject and re-compare there), so the fault count is exact.
  EXPECT_EQ(rep.faults, static_cast<std::uint64_t>(cfg.fault_storms *
                                                   cfg.faults_per_storm));
}

TEST(Differential, FischerJiangOracleLanes) {
  // Oracle protocol: no packed table (the oracle context is part of the
  // transition input) and no checker adapter — lanes A/B/C still must agree
  // on every interaction, census and oracle clock.
  const auto p = baselines::FjParams::make(6);
  core::Xoshiro256pp cfg_rng(23);
  FuzzConfig cfg;
  cfg.seed = 2038;
  cfg.steps = 8192;
  cfg.check_every = 64;
  cfg.fault_storms = 3;
  cfg.faults_per_storm = 2;
  const auto rep = run_differential<baselines::FischerJiang>(
      p, baselines::fj_random_config(p, cfg_rng), cfg, fj_fault);
  EXPECT_TRUE(rep.ok) << rep.divergence;
  EXPECT_FALSE(rep.packed_lane);
  EXPECT_FALSE(rep.mirror_lane);
}

TEST(Differential, Yokota28Lanes) {
  const auto p = baselines::Y28Params::make(6);
  core::Xoshiro256pp cfg_rng(29);
  FuzzConfig cfg;
  cfg.seed = 31337;
  cfg.steps = 8192;
  cfg.check_every = 113;
  cfg.fault_storms = 3;
  cfg.faults_per_storm = 2;
  const auto rep = run_differential<baselines::Yokota28>(
      p, baselines::y28_random_config(p, cfg_rng), cfg, y28_fault);
  EXPECT_TRUE(rep.ok) << rep.divergence;
}

TEST(Differential, PlProtocolLanes) {
  const auto p = pl::PlParams::make(6, 4);
  core::Xoshiro256pp cfg_rng(31);
  FuzzConfig cfg;
  cfg.seed = 404;
  cfg.steps = 6144;
  cfg.check_every = 128;
  cfg.fault_storms = 3;
  cfg.faults_per_storm = 2;
  const auto rep = run_differential<pl::PlProtocol>(
      p, pl::random_config(p, cfg_rng), cfg, pl_fault);
  EXPECT_TRUE(rep.ok) << rep.divergence;
  // P_PL's word-packed lanes: Runner::run (lane B) and the ensemble kernel
  // lane (lane D) both replay the bit-sliced kernel against the scalar
  // reference; in-domain fault storms keep them active.
  EXPECT_TRUE(rep.word_lane);
  EXPECT_TRUE(rep.packed_lane);
  // Lane G: ring 0 advanced as a column of the cross-ring vector-RNG
  // driver, lockstep with decoy rings, still bit-identical to lane A.
  EXPECT_TRUE(rep.lockstep_lane);
}

TEST(Differential, PlPackedLanesAtLargerRingsWithStorms) {
  // The grouped SIMD driver's no-conflict fast path only engages when the
  // drawn pairs are disjoint — exercise it at ring sizes where it runs
  // (and where the conflict/scalar fallback mixes in), storms on.
  for (const int n : {16, 64, 257}) {
    const auto p = pl::PlParams::make(n, 4);
    core::Xoshiro256pp cfg_rng(600 + n);
    FuzzConfig cfg;
    cfg.seed = 7000 + static_cast<std::uint64_t>(n);
    cfg.steps = 8192;
    cfg.check_every = 256;
    cfg.fault_storms = 3;
    cfg.faults_per_storm = 2;
    const auto rep = run_differential<pl::PlProtocol>(
        p, pl::random_config(p, cfg_rng), cfg, pl_fault);
    EXPECT_TRUE(rep.ok) << "n=" << n << ": " << rep.divergence;
    EXPECT_TRUE(rep.word_lane) << n;
    EXPECT_TRUE(rep.packed_lane) << n;
    EXPECT_TRUE(rep.lockstep_lane) << n;
  }
}

TEST(Differential, PlOutOfDomainFaultDropsPackedLanesExactly) {
  // A fault outside the declared variable domains must fail the pack
  // round-trip, drop lanes B/D to their scalar paths, and still diverge
  // nowhere.
  const auto p = pl::PlParams::make(12, 4);
  core::Xoshiro256pp cfg_rng(77);
  FuzzConfig cfg;
  cfg.seed = 31;
  cfg.steps = 4096;
  cfg.check_every = 64;
  cfg.fault_storms = 2;
  cfg.faults_per_storm = 1;
  const auto garbage_fault = [](const pl::PlParams&, core::Xoshiro256pp& rng,
                                const pl::PlState&, int) {
    pl::PlState s;
    s.dist = static_cast<std::uint16_t>(40000 + rng.bounded(1000));
    s.clock = 60000;  // far outside [0, kappa_max]
    return s;
  };
  const auto rep = run_differential<pl::PlProtocol>(
      p, pl::random_config(p, cfg_rng), cfg, garbage_fault);
  EXPECT_TRUE(rep.ok) << rep.divergence;
  EXPECT_FALSE(rep.word_lane);    // permanently back on the scalar path
  EXPECT_FALSE(rep.packed_lane);  // same for the ensemble kernel lane
}

TEST(Differential, BrokenWordKernelIsDetected) {
  // The canary for the packed fast path itself: a kernel that drifts from
  // the scalar transition by a single bit must be caught at the first
  // checkpoint — equivalence is certified, not assumed.
  struct BrokenWordPl : pl::PlProtocol {
    static void sabotage(std::uint64_t& wr) { wr ^= 0x2; }  // flip r.b
    static void apply_word(std::uint64_t& l, std::uint64_t& r,
                           const WordLayout& lay) noexcept {
      pl::apply_word(l, r, lay);
      sabotage(r);
    }
    static void apply_word_one(std::uint64_t& l, std::uint64_t& r,
                               const WordKernelConsts& k) noexcept {
      pl::apply_word_one(l, r, k);
      sabotage(r);
    }
    static void apply_word_x4(core::WordVec& l, core::WordVec& r,
                              const WordKernelConsts& k) noexcept {
      pl::apply_word_x4(l, r, k);
      for (int j = 0; j < 4; ++j) sabotage(r[j]);
    }
    static void apply_word_x8(core::WordVec8& l, core::WordVec8& r,
                              const WordKernelConsts& k) noexcept {
      pl::apply_word_x8(l, r, k);
      for (int j = 0; j < 8; ++j) sabotage(r[j]);
    }
  };
  static_assert(core::Runner<BrokenWordPl>::kWordKernel);
  const auto p = pl::PlParams::make(8, 4);
  core::Xoshiro256pp cfg_rng(5);
  FuzzConfig cfg;
  cfg.seed = 13;
  cfg.steps = 2048;
  cfg.check_every = 32;
  const auto rep = run_differential<BrokenWordPl>(
      p, pl::random_config(p, cfg_rng), cfg, pl_fault);
  EXPECT_FALSE(rep.ok);
  // The word kernel drives lanes B and D; the scalar lanes A/C/F are the
  // truth, so the first divergence names a word lane.
  const bool named_word_lane =
      rep.divergence.find("B(run)") != std::string::npos ||
      rep.divergence.find("D(ensemble-packed)") != std::string::npos;
  EXPECT_TRUE(named_word_lane) << rep.divergence;
}

TEST(Differential, BrokenLockstepVectorLaneIsDetected) {
  // The canary for the lane-parallel (vector-RNG) cross-ring driver: in a
  // narrow regime only lane G consumes the vector narrow kernels — lane B
  // runs the 64-bit kernel and lane D's single ring goes through the
  // scalar narrow entry — so a bit of drift in the vector entries must be
  // caught at the first checkpoint and named as the lockstep lane. This is
  // the flipped-bit canary for the whole draw-pack-kernel column: any
  // desync between a vector column and its scalar stream (RNG included)
  // surfaces exactly here.
  struct BrokenNarrowPl : pl::PlProtocol {
    static void apply_word_narrow_x8(core::HalfVec8& l, core::HalfVec8& r,
                                     const WordKernelConsts& k) noexcept {
      pl::apply_word_narrow_x8(l, r, k);
      for (int j = 0; j < 8; ++j) r[j] ^= 0x2u;  // flip r.b per column
    }
    static void apply_word_narrow_x16(core::HalfVec16& l, core::HalfVec16& r,
                                      const WordKernelConsts& k) noexcept {
      pl::apply_word_narrow_x16(l, r, k);
      for (int j = 0; j < 16; ++j) r[j] ^= 0x2u;
    }
  };
  static_assert(core::Runner<BrokenNarrowPl>::kWordKernel);
  const auto p = pl::PlParams::make(16, 3);  // 31-bit image: narrow regime
  ASSERT_TRUE(pl::PackedLayout::make(p).fits_narrow());
  core::Xoshiro256pp cfg_rng(6);
  FuzzConfig cfg;
  cfg.seed = 17;
  cfg.steps = 2048;
  cfg.check_every = 32;
  const auto rep = run_differential<BrokenNarrowPl>(
      p, pl::random_config(p, cfg_rng), cfg, pl_fault);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.divergence.find("G(ensemble-lockstep)"), std::string::npos)
      << rep.divergence;
}

TEST(Differential, EliminationPackedAndMirrorLanes) {
  const common::EliminationProtocol::Params p{6};
  core::Xoshiro256pp cfg_rng(37);
  FuzzConfig cfg;
  cfg.seed = 90210;
  cfg.steps = 8192;
  cfg.check_every = 101;
  cfg.fault_storms = 4;
  cfg.faults_per_storm = 3;
  const auto rep =
      run_differential<common::EliminationProtocol,
                       common::EliminationProtocol>(
          p, elim_random_config(p, cfg_rng), cfg, elim_fault);
  EXPECT_TRUE(rep.ok) << rep.divergence;
  EXPECT_TRUE(rep.packed_lane);
  EXPECT_TRUE(rep.mirror_lane);
}

TEST(Differential, PorUndirectedPackedAndMirrorLanes) {
  // The undirected cell: 2n arcs, orientation-flip scheduling, P_OR's
  // packed table and the position-pinned PorModel mirror all in one run.
  const auto p = orient::OrParams::make(6);
  core::Xoshiro256pp cfg_rng(41);
  FuzzConfig cfg;
  cfg.seed = 555;
  cfg.steps = 8192;
  cfg.check_every = 89;
  cfg.fault_storms = 4;
  cfg.faults_per_storm = 2;
  const auto rep = run_differential<orient::Por, orient::PorModel>(
      p, orient::or_config(p, cfg_rng, /*random_dir=*/true), cfg, por_fault);
  EXPECT_TRUE(rep.ok) << rep.divergence;
  EXPECT_TRUE(rep.packed_lane);
  EXPECT_TRUE(rep.mirror_lane);
}

TEST(Differential, BrokenCheckerAdapterIsDetected) {
  // A mirror whose apply drifts from the protocol (here: leader labels not
  // pinned to 0) must be flagged, proving the harness can actually see a
  // divergence — the fuzz matrix is only as good as its teeth.
  struct BrokenModkMirror : baselines::ModkModel {
    static void apply(State& l, State& r, const Params& p) noexcept {
      baselines::Modk::apply(l, r, p);
      if (r.leader == 1) r.lab = 1;  // sabotage: un-pin the leader label
    }
  };
  const auto p = baselines::ModkParams::make(5, 2);
  core::Xoshiro256pp cfg_rng(43);
  FuzzConfig cfg;
  cfg.seed = 77;
  cfg.steps = 4096;
  cfg.check_every = 32;
  const auto rep = run_differential<baselines::Modk, BrokenModkMirror>(
      p, baselines::modk_random_config(p, cfg_rng), cfg, modk_fault);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.divergence.find("E(checker-mirror)"), std::string::npos)
      << rep.divergence;
  EXPECT_NE(rep.divergence.find("lab="), std::string::npos)
      << rep.divergence;  // human-readable states in the report
}

// ---- schedule-replay determinism (the experiment.hpp contract) ---------

TEST(Differential, SameSeedReproducesBitIdenticalReports) {
  const auto p = baselines::ModkParams::make(7, 2);
  core::Xoshiro256pp rng_a(51);
  core::Xoshiro256pp rng_b(51);
  FuzzConfig cfg;
  cfg.seed = 999;
  cfg.steps = 4096;
  cfg.check_every = 53;
  cfg.fault_storms = 3;
  cfg.faults_per_storm = 2;
  const auto rep_a = run_differential<baselines::Modk, baselines::ModkModel>(
      p, baselines::modk_random_config(p, rng_a), cfg, modk_fault);
  const auto rep_b = run_differential<baselines::Modk, baselines::ModkModel>(
      p, baselines::modk_random_config(p, rng_b), cfg, modk_fault);
  ASSERT_TRUE(rep_a.ok) << rep_a.divergence;
  EXPECT_EQ(rep_a.digest, rep_b.digest);
  EXPECT_EQ(rep_a.final_digest, rep_b.final_digest);
  EXPECT_EQ(rep_a.faults, rep_b.faults);
  EXPECT_EQ(rep_a.checkpoints, rep_b.checkpoints);
}

TEST(Differential, CheckpointGranularityDoesNotChangeTheTrajectory) {
  // Without storms, checkpoints only *read* state, so the configuration
  // after k interactions must not depend on check_every — the quantized
  // hitting-time contract that lets run_until / measure_convergence pick
  // their granularity freely.
  const auto p = baselines::FjParams::make(8);
  std::vector<std::uint64_t> final_digests;
  for (const std::uint64_t check_every : {1ull, 7ull, 64ull, 1000ull}) {
    core::Xoshiro256pp cfg_rng(61);
    FuzzConfig cfg;
    cfg.seed = 4242;
    cfg.steps = 4096;
    cfg.check_every = check_every;
    const auto rep = run_differential<baselines::FischerJiang>(
        p, baselines::fj_random_config(p, cfg_rng), cfg, fj_fault);
    ASSERT_TRUE(rep.ok) << "check_every=" << check_every << ": "
                        << rep.divergence;
    EXPECT_EQ(rep.interactions, cfg.steps);
    final_digests.push_back(rep.final_digest);
  }
  for (std::size_t i = 1; i < final_digests.size(); ++i)
    EXPECT_EQ(final_digests[i], final_digests[0]) << "granularity " << i;
}

TEST(Differential, CampaignIsThreadCountInvariant) {
  const auto p = baselines::ModkParams::make(5, 2);
  FuzzConfig base;
  base.seed = 8086;
  base.steps = 2048;
  base.check_every = 41;
  base.fault_storms = 2;
  base.faults_per_storm = 2;
  const auto make_init = [](const baselines::ModkParams& pp,
                            core::Xoshiro256pp& rng) {
    return baselines::modk_random_config(pp, rng);
  };
  const auto serial =
      run_differential_campaign<baselines::Modk, baselines::ModkModel>(
          p, base, /*trials=*/6, /*threads=*/1, make_init, modk_fault);
  const auto parallel =
      run_differential_campaign<baselines::Modk, baselines::ModkModel>(
          p, base, /*trials=*/6, /*threads=*/3, make_init, modk_fault);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    EXPECT_TRUE(serial[t].ok) << "trial " << t << ": "
                              << serial[t].divergence;
    EXPECT_EQ(serial[t].digest, parallel[t].digest) << "trial " << t;
    EXPECT_EQ(serial[t].final_digest, parallel[t].final_digest)
        << "trial " << t;
    EXPECT_EQ(serial[t].faults, parallel[t].faults) << "trial " << t;
  }
}

// ---- the nightly-style long run (gated; ctest: fuzz;long) --------------

TEST(DifferentialFuzzLong, NightlySweep) {
  if (std::getenv("PPSIM_FUZZ_LONG") == nullptr) {
    GTEST_SKIP() << "set PPSIM_FUZZ_LONG=1 (and optionally "
                    "PPSIM_FUZZ_TRIALS / PPSIM_FUZZ_STEPS) for the long run";
  }
  const int trials = env_int("PPSIM_FUZZ_TRIALS", 16);
  const auto steps =
      static_cast<std::uint64_t>(env_int("PPSIM_FUZZ_STEPS", 1 << 18));
  FuzzConfig base;
  base.seed = 0xF0221;
  base.steps = steps;
  base.check_every = 251;
  base.fault_storms = 8;
  base.faults_per_storm = 4;

  const auto check_all = [&](const auto& reports, const char* what) {
    for (std::size_t t = 0; t < reports.size(); ++t) {
      EXPECT_TRUE(reports[t].ok)
          << what << " trial " << t << ": " << reports[t].divergence;
    }
  };

  check_all(
      run_differential_campaign<baselines::Modk, baselines::ModkModel>(
          baselines::ModkParams::make(9, 2), base, trials, 0,
          [](const baselines::ModkParams& pp, core::Xoshiro256pp& rng) {
            return baselines::modk_random_config(pp, rng);
          },
          modk_fault),
      "modk");
  check_all(run_differential_campaign<baselines::FischerJiang>(
                baselines::FjParams::make(12), base, trials, 0,
                [](const baselines::FjParams& pp, core::Xoshiro256pp& rng) {
                  return baselines::fj_random_config(pp, rng);
                },
                fj_fault),
            "fischer_jiang");
  check_all(run_differential_campaign<baselines::Yokota28>(
                baselines::Y28Params::make(12), base, trials, 0,
                [](const baselines::Y28Params& pp, core::Xoshiro256pp& rng) {
                  return baselines::y28_random_config(pp, rng);
                },
                y28_fault),
            "yokota28");
  check_all(run_differential_campaign<pl::PlProtocol>(
                pl::PlParams::make(12, 4), base, trials, 0,
                [](const pl::PlParams& pp, core::Xoshiro256pp& rng) {
                  return pl::random_config(pp, rng);
                },
                pl_fault),
            "P_PL");
  check_all(
      run_differential_campaign<common::EliminationProtocol,
                                common::EliminationProtocol>(
          common::EliminationProtocol::Params{12}, base, trials, 0,
          elim_random_config, elim_fault),
      "elimination");
  check_all(run_differential_campaign<orient::Por, orient::PorModel>(
                orient::OrParams::make(9), base, trials, 0,
                [](const orient::OrParams& pp, core::Xoshiro256pp& rng) {
                  return orient::or_config(pp, rng, true);
                },
                por_fault),
            "P_OR");
}

}  // namespace
}  // namespace ppsim::verification
