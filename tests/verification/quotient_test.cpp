// Symmetry-reduced checker vs the unreduced one: identical verdicts and
// identical expanded bottom-configuration counts on every space both can
// handle, counterexample orbits that agree, honest capacity behavior, and
// the headline: a budgeted cell the unreduced checker must refuse that the
// quotient checker certifies.
#include "verification/quotient.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "baselines/modk.hpp"
#include "common/elimination.hpp"
#include "core/model_checker.hpp"
#include "orientation/por.hpp"
#include "verification/toys.hpp"

namespace ppsim::verification {
namespace {

/// Token-count spec (rotation invariant) for the merge toys.
struct TokenCountSpec {
  template <typename Params>
  int operator()(std::span<const TokenMergeModel::State> c,
                 const Params&) const {
    return TokenMergeModel::count_tokens(c);
  }
};

TEST(Quotient, DetectsTheFullRotationGroupOnPositionFreeAdapters) {
  QuotientChecker<TokenMergeModel> qc({6});
  EXPECT_EQ(qc.symmetry().rotation_period, 1);
  EXPECT_FALSE(qc.symmetry().reflection);  // directed ring
  EXPECT_EQ(qc.symmetry().order(), 6);
}

TEST(Quotient, AgreesWithUnreducedOnTokenMerge) {
  for (int n = 2; n <= 12; ++n) {
    core::ModelChecker<TokenMergeModel> mc({n});
    QuotientChecker<TokenMergeModel> qc({n});
    const auto full =
        mc.check(TokenCountSpec{}, [](int tokens) { return tokens <= 1; });
    const auto quot =
        qc.check(TokenCountSpec{}, [](int tokens) { return tokens <= 1; });
    ASSERT_TRUE(full.ok) << "n=" << n;
    EXPECT_TRUE(quot.ok) << "n=" << n << ": " << quot.reason;
    EXPECT_EQ(quot.num_configurations, full.num_configurations) << "n=" << n;
    // Orbit expansion reproduces the unreduced bottom census bit-for-bit.
    EXPECT_EQ(quot.num_bottom_configs, full.num_bottom_configs) << "n=" << n;
    EXPECT_LE(quot.num_bottom_sccs, full.num_bottom_sccs) << "n=" << n;
    EXPECT_LE(quot.num_orbits, full.num_configurations) << "n=" << n;
    EXPECT_GT(quot.reduction_factor(), 1.0) << "n=" << n;
  }
}

TEST(Quotient, OrbitCountIsTheNecklaceNumber) {
  // Binary necklaces N(2, n): n = 4 -> 6, n = 5 -> 8, n = 6 -> 14.
  const std::uint64_t expected[] = {6, 8, 14};
  for (int n : {4, 5, 6}) {
    QuotientChecker<TokenMergeModel> qc({n});
    const auto res =
        qc.check(TokenCountSpec{}, [](int tokens) { return tokens <= 1; });
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.num_orbits, expected[n - 4]) << "n=" << n;
  }
}

TEST(Quotient, BrokenProtocolCounterexampleOrbitAgreesWithUnreduced) {
  for (int n : {3, 5, 8}) {
    core::ModelChecker<BrokenMergeModel> mc({n});
    QuotientChecker<BrokenMergeModel> qc({n});
    const auto full =
        mc.check(TokenCountSpec{}, [](int tokens) { return tokens == 1; });
    const auto quot =
        qc.check(TokenCountSpec{}, [](int tokens) { return tokens == 1; });
    EXPECT_FALSE(full.ok);
    EXPECT_FALSE(quot.ok);
    ASSERT_TRUE(full.counterexample.has_value());
    ASSERT_TRUE(quot.counterexample.has_value());
    // Same orbit (here: the absorbing zero-token configuration, which is
    // rotation invariant, so the ids agree exactly).
    EXPECT_EQ(qc.canonical_id(*full.counterexample), *quot.counterexample)
        << "n=" << n;
    EXPECT_EQ(*quot.counterexample, 0u);
    // And it decodes to something readable.
    const auto pretty = qc.describe_counterexample(quot);
    EXPECT_NE(pretty.find("u_0: _"), std::string::npos) << pretty;
  }
}

struct UndirectedMerge : TokenMergeModel {
  static constexpr bool directed = false;
};

TEST(Quotient, UndirectedRingAddsReflectionAndStillAgrees) {
  for (int n : {3, 4, 6, 9}) {
    core::ModelChecker<UndirectedMerge> mc({n});
    QuotientChecker<UndirectedMerge> qc({n});
    EXPECT_TRUE(qc.symmetry().reflection);
    EXPECT_EQ(qc.symmetry().order(), 2 * n);
    const auto full =
        mc.check(TokenCountSpec{}, [](int tokens) { return tokens <= 1; });
    const auto quot =
        qc.check(TokenCountSpec{}, [](int tokens) { return tokens <= 1; });
    ASSERT_TRUE(full.ok) << "n=" << n;
    EXPECT_TRUE(quot.ok) << "n=" << n << ": " << quot.reason;
    EXPECT_EQ(quot.num_bottom_configs, full.num_bottom_configs) << "n=" << n;
  }
}

TEST(Quotient, ModkN3MatchesTheUnreducedHeadlineCheck) {
  // The modk_test headline cell, now through the quotient: all 110,592
  // configurations, one leader forever — with a position-dependent
  // (equivariant) spec, exercising the edge-local constancy argument.
  const auto p = baselines::ModkParams::make(3, 2);
  core::ModelChecker<baselines::ModkModel> mc(p);
  QuotientChecker<baselines::ModkModel> qc(p);
  EXPECT_EQ(qc.symmetry().rotation_period, 1);
  const auto legal = [](std::uint32_t bits) { return exactly_one_leader(bits); };
  const auto full =
      mc.check(LeaderBitsSpec<baselines::ModkState>{}, legal);
  const auto quot =
      qc.check(LeaderBitsSpec<baselines::ModkState>{}, legal);
  ASSERT_TRUE(full.ok) << full.reason;
  EXPECT_TRUE(quot.ok) << quot.reason;
  EXPECT_EQ(quot.num_configurations, full.num_configurations);
  EXPECT_EQ(quot.num_bottom_configs, full.num_bottom_configs);
  // Orbits of 48^3 under rotation by 3: (48^3 + 2*48) / 3.
  EXPECT_EQ(quot.num_orbits, (110592ull + 2 * 48) / 3);
  EXPECT_GT(quot.reduction_factor(), 2.9);
}

TEST(Quotient, EliminationAgreesWithUnreduced) {
  for (int n : {3, 4}) {
    const common::EliminationProtocol::Params p{n};
    core::ModelChecker<common::EliminationProtocol> mc(p);
    QuotientChecker<common::EliminationProtocol> qc(p);
    const auto legal = [](std::uint32_t) { return true; };
    const auto full =
        mc.check(LeaderBitsSpec<common::ElimAgentState>{}, legal);
    const auto quot =
        qc.check(LeaderBitsSpec<common::ElimAgentState>{}, legal);
    ASSERT_TRUE(full.ok) << "n=" << n << ": " << full.reason;
    EXPECT_TRUE(quot.ok) << "n=" << n << ": " << quot.reason;
    EXPECT_EQ(quot.num_bottom_configs, full.num_bottom_configs) << "n=" << n;
  }
}

TEST(Quotient, CertifiesACellTheUnreducedCheckerMustRefuse) {
  // The acceptance cell: elimination at n = 4 under a 100k-node budget.
  // 24^4 = 331,776 configurations exceed the budget — the unreduced checker
  // refuses with capacity_exceeded (it cannot store the space) — while the
  // ~83k rotation orbits fit, so the quotient checker certifies the exact
  // same property the unreduced checker verifies when given 4x the memory
  // (EliminationAgreesWithUnreduced above).
  constexpr std::uint64_t kBudget = 100'000;
  const common::EliminationProtocol::Params p{4};

  ASSERT_FALSE(
      core::ModelChecker<common::EliminationProtocol>::capacity(p, kBudget));
  core::ModelChecker<common::EliminationProtocol> mc(p, kBudget);
  const auto legal = [](std::uint32_t) { return true; };
  const auto full = mc.check(LeaderBitsSpec<common::ElimAgentState>{}, legal);
  EXPECT_FALSE(full.ok);
  EXPECT_TRUE(full.capacity_exceeded);
  EXPECT_NE(full.reason.find("node budget"), std::string::npos)
      << full.reason;

  QuotientChecker<common::EliminationProtocol> qc(p, kBudget);
  const auto quot = qc.check(LeaderBitsSpec<common::ElimAgentState>{}, legal);
  EXPECT_TRUE(quot.ok) << quot.reason;
  EXPECT_FALSE(quot.capacity_exceeded);
  EXPECT_LE(quot.num_orbits, kBudget);
  EXPECT_EQ(quot.num_configurations, 331776u);
  EXPECT_GT(quot.reduction_factor(), 3.9);  // ~4x on a 4-ring
}

TEST(Quotient, PositionDependentAdapterDegradesToTheTrivialGroup) {
  // PorModel pins the two-hop coloring to ring positions, so no nontrivial
  // rotation is valid — the quotient checker must detect that and match the
  // unreduced checker exactly instead of assuming symmetry that is not
  // there.
  for (int n : {3, 4}) {
    const auto p = orient::OrParams::make(n);
    QuotientChecker<orient::PorModel> qc(p);
    EXPECT_EQ(qc.symmetry().rotation_period, n) << "n=" << n;
    EXPECT_FALSE(qc.symmetry().reflection);
    EXPECT_EQ(qc.symmetry().order(), 1);

    core::ModelChecker<orient::PorModel> mc(p);
    const auto spec = [](std::span<const orient::OrState> c,
                         const orient::OrParams& pp) {
      struct Out {
        bool oriented;
        std::uint64_t dirs;
        bool operator==(const Out&) const = default;
      };
      std::uint64_t dirs = 0;
      for (const orient::OrState& s : c) dirs = dirs * 8 + s.dir;
      return Out{orient::is_oriented(c, pp), dirs};
    };
    const auto legal = [](const auto& out) { return out.oriented; };
    const auto full = mc.check(spec, legal);
    const auto quot = qc.check(spec, legal);
    ASSERT_TRUE(full.ok) << "n=" << n << ": " << full.reason;
    EXPECT_TRUE(quot.ok) << "n=" << n << ": " << quot.reason;
    EXPECT_EQ(quot.num_orbits, full.num_configurations) << "n=" << n;
    EXPECT_EQ(quot.num_bottom_configs, full.num_bottom_configs) << "n=" << n;
    EXPECT_EQ(quot.num_bottom_sccs, full.num_bottom_sccs) << "n=" << n;
  }
}

TEST(Quotient, BudgetAbortIsACapacityErrorNeverAPartialOk) {
  QuotientChecker<TokenMergeModel> qc({12}, 10);  // 352 orbits > 10
  const auto res =
      qc.check(TokenCountSpec{}, [](int tokens) { return tokens <= 1; });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.capacity_exceeded);
  EXPECT_NE(res.reason.find("node budget"), std::string::npos) << res.reason;
  EXPECT_FALSE(res.counterexample.has_value());
  EXPECT_EQ(res.num_bottom_sccs, 0u);
}

struct Wide16 {
  struct State {
    int v = 0;
    friend constexpr bool operator==(const State&, const State&) = default;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static std::size_t num_states(const Params&) { return 16; }
  static std::size_t pack(const State& s, const Params&, int) {
    return static_cast<std::size_t>(s.v);
  }
  static State unpack(std::size_t v, const Params&, int) {
    return State{static_cast<int>(v)};
  }
  static void apply(State&, State&, const Params&) {}
};

TEST(Quotient, Uint64OverflowIsACapacityError) {
  QuotientChecker<Wide16> qc({17});  // 16^17 > 2^64
  EXPECT_TRUE(qc.capacity_exceeded());
  const auto res = qc.check(
      [](std::span<const Wide16::State>, const Wide16::Params&) { return 0; },
      [](int) { return true; });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.capacity_exceeded);
  EXPECT_NE(res.reason.find("capacity"), std::string::npos) << res.reason;
}

// ---- non-ring topologies: the validated-permutation path -----------------

TEST(QuotientTopology, CliqueQuotientsByTheFullSymmetricGroup) {
  // TokenMergeModel is position independent, so every element of the
  // clique's S_n validates; the quotient must agree with the unreduced
  // checker on the same topology and reduce orbits to multisets (necklaces
  // without the cyclic restriction): n + 1 token-count classes for a binary
  // state space.
  for (int n = 2; n <= 5; ++n) {
    core::ModelChecker<TokenMergeModel, core::CliqueTopology> mc({n});
    QuotientChecker<TokenMergeModel, core::CliqueTopology> qc({n});
    std::uint64_t fact = 1;
    for (int i = 2; i <= n; ++i) fact *= static_cast<std::uint64_t>(i);
    EXPECT_EQ(qc.group_order(), static_cast<int>(fact)) << "n=" << n;
    const auto full =
        mc.check(TokenCountSpec{}, [](int tokens) { return tokens <= 1; });
    const auto quot =
        qc.check(TokenCountSpec{}, [](int tokens) { return tokens <= 1; });
    ASSERT_TRUE(full.ok) << "n=" << n << ": " << full.reason;
    EXPECT_TRUE(quot.ok) << "n=" << n << ": " << quot.reason;
    EXPECT_EQ(quot.num_configurations, full.num_configurations);
    EXPECT_EQ(quot.num_bottom_configs, full.num_bottom_configs) << "n=" << n;
    // Under S_n a binary configuration's orbit is its token count: n + 1
    // orbits total.
    EXPECT_EQ(quot.num_orbits, static_cast<std::uint64_t>(n + 1))
        << "n=" << n;
  }
}

TEST(QuotientTopology, DirectedLineHasTrivialGroupAndMatchesUnreduced) {
  for (int n = 2; n <= 5; ++n) {
    core::ModelChecker<TokenMergeModel, core::LineTopology> mc({n});
    QuotientChecker<TokenMergeModel, core::LineTopology> qc({n});
    EXPECT_EQ(qc.group_order(), 1) << "n=" << n;  // reflection is
                                                  // orientation-reversing
    // On a line tokens pile up at the right end: "<= 1 token" still holds
    // in every bottom SCC, and the trivial quotient is the unreduced
    // graph node for node.
    const auto full =
        mc.check(TokenCountSpec{}, [](int tokens) { return tokens <= 1; });
    const auto quot =
        qc.check(TokenCountSpec{}, [](int tokens) { return tokens <= 1; });
    ASSERT_TRUE(full.ok) << "n=" << n << ": " << full.reason;
    EXPECT_TRUE(quot.ok) << "n=" << n << ": " << quot.reason;
    EXPECT_EQ(quot.num_orbits, full.num_configurations) << "n=" << n;
    EXPECT_EQ(quot.num_bottom_configs, full.num_bottom_configs) << "n=" << n;
    EXPECT_EQ(quot.num_bottom_sccs, full.num_bottom_sccs) << "n=" << n;
  }
}

TEST(QuotientTopology, BrokenModelCaughtOnEveryTopology) {
  // The leaked-token bug must be found by the generic path too, with the
  // same canonical counterexample (all-zero is fixed by every perm).
  const auto run = [](auto qc) {
    const auto res =
        qc.check(TokenCountSpec{}, [](int tokens) { return tokens == 1; });
    EXPECT_FALSE(res.ok);
    ASSERT_TRUE(res.counterexample.has_value());
    EXPECT_EQ(*res.counterexample, 0u);
  };
  run(QuotientChecker<BrokenMergeModel, core::LineTopology>({5}));
  run(QuotientChecker<BrokenMergeModel, core::CliqueTopology>({5}));
  run(QuotientChecker<BrokenMergeModel, core::TreeTopology>({5}));
}

}  // namespace
}  // namespace ppsim::verification
