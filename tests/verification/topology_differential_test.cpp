// Differential-fuzz lanes for the topology-generic layer: one lane per
// non-ring topology (generic engines vs the ModelChecker mirror, fault
// storms on), the scheduler-fault models (omission + biased draws) under
// the same cross-engine fire, and a canary proving a mis-mapped arc on a
// non-ring topology is *caught and named* — the mirror runs a deliberately
// corrupted MirrorTopo and the report must blame lane E(checker-mirror).
#include "verification/differential.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "core/topology.hpp"
#include "pl/adversary.hpp"
#include "pl/protocol.hpp"
#include "verification/toys.hpp"

namespace ppsim::verification {
namespace {

TokenMergeModel::State toy_fault(const TokenMergeModel::Params&,
                                 core::Xoshiro256pp& rng,
                                 const TokenMergeModel::State&, int) {
  return TokenMergeModel::State{static_cast<int>(rng.bounded(2))};
}

std::vector<TokenMergeModel::State> toy_config(int n,
                                               core::Xoshiro256pp& rng) {
  std::vector<TokenMergeModel::State> c(static_cast<std::size_t>(n));
  for (auto& s : c) s.tok = static_cast<int>(rng.bounded(2));
  c[0].tok = 1;  // at least one token, so the dynamics stay interesting
  return c;
}

pl::PlState pl_fault(const pl::PlParams& p, core::Xoshiro256pp& rng,
                     const pl::PlState&, int) {
  return pl::random_state(p, rng);
}

/// Engines + checker mirror on one topology, storms on, zero divergences.
template <typename Topo>
void toy_lane(std::uint64_t seed) {
  const TokenMergeModel::Params p{6};
  core::Xoshiro256pp cfg_rng(seed ^ 0xC0FFEEULL);
  FuzzConfig cfg;
  cfg.seed = seed;
  cfg.steps = 4096;
  cfg.check_every = 64;
  cfg.fault_storms = 4;
  cfg.faults_per_storm = 2;
  const auto rep = run_differential<TokenMergeModel, TokenMergeModel, Topo>(
      p, toy_config(p.n, cfg_rng), cfg, toy_fault);
  EXPECT_TRUE(rep.ok) << Topo::kName << ": " << rep.divergence;
  EXPECT_TRUE(rep.mirror_lane) << Topo::kName;
  EXPECT_EQ(rep.interactions, cfg.steps);
  EXPECT_EQ(rep.faults, static_cast<std::uint64_t>(cfg.fault_storms *
                                                   cfg.faults_per_storm));
}

TEST(TopologyDifferential, LineLanesWithStorms) {
  toy_lane<core::LineTopology>(0xA11CE);
}

TEST(TopologyDifferential, CliqueLanesWithStorms) {
  toy_lane<core::CliqueTopology>(0xB0B);
}

TEST(TopologyDifferential, TreeLanesWithStorms) {
  toy_lane<core::TreeTopology>(0x7EE);
}

TEST(TopologyDifferential, RingLanesThroughGenericPathStillAgree) {
  // The same generic matrix instantiated back on the ring: the default
  // topology must not be a special case of the new plumbing.
  toy_lane<core::RingTopology>(0x51A5);
}

// ---- scheduler-fault models under differential fire ---------------------

template <typename Topo>
void toy_faulted_lane(std::uint64_t seed, double loss_p, bool biased) {
  const TokenMergeModel::Params p{6};
  const Topo topo(p.n);
  core::Xoshiro256pp cfg_rng(seed ^ 0xC0FFEEULL);
  FuzzConfig cfg;
  cfg.seed = seed;
  cfg.steps = 4096;
  cfg.check_every = 64;
  cfg.fault_storms = 2;
  cfg.faults_per_storm = 2;
  cfg.loss_p = loss_p;
  if (biased) {
    // A lumpy distribution with a never-drawn arc mixed in.
    const int arcs = topo.arc_count(TokenMergeModel::directed);
    cfg.arc_bias.resize(static_cast<std::size_t>(arcs));
    for (int a = 0; a < arcs; ++a)
      cfg.arc_bias[static_cast<std::size_t>(a)] =
          a % 3 == 0 ? 0.0 : 1.0 + static_cast<double>(a % 5);
  }
  const auto rep = run_differential<TokenMergeModel, TokenMergeModel, Topo>(
      p, toy_config(p.n, cfg_rng), cfg, toy_fault);
  EXPECT_TRUE(rep.ok) << Topo::kName << " loss=" << loss_p
                      << " biased=" << biased << ": " << rep.divergence;
  EXPECT_TRUE(rep.mirror_lane);
  // Lost interactions still count: steps advance by exactly cfg.steps.
  EXPECT_EQ(rep.interactions, cfg.steps);
}

TEST(TopologyDifferential, OmissionFaultsAllTopologies) {
  toy_faulted_lane<core::RingTopology>(0x10551, 0.25, false);
  toy_faulted_lane<core::LineTopology>(0x10552, 0.25, false);
  toy_faulted_lane<core::CliqueTopology>(0x10553, 0.25, false);
  toy_faulted_lane<core::TreeTopology>(0x10554, 0.25, false);
}

TEST(TopologyDifferential, BiasedDrawsAllTopologies) {
  toy_faulted_lane<core::RingTopology>(0xB1A51, 0.0, true);
  toy_faulted_lane<core::LineTopology>(0xB1A52, 0.0, true);
  toy_faulted_lane<core::CliqueTopology>(0xB1A53, 0.0, true);
  toy_faulted_lane<core::TreeTopology>(0xB1A54, 0.0, true);
}

TEST(TopologyDifferential, OmissionPlusBiasCombined) {
  toy_faulted_lane<core::LineTopology>(0xC0531, 0.15, true);
  toy_faulted_lane<core::CliqueTopology>(0xC0532, 0.15, true);
}

// ---- the study protocol off the ring ------------------------------------

TEST(TopologyDifferential, PlProtocolOffRingWithOmission) {
  // P_PL's word kernel is ring-only; off the ring every lane must fall to
  // the scalar/generic paths and still agree — with and without loss.
  for (const double loss : {0.0, 0.2}) {
    const auto p = pl::PlParams::make(8, 4);
    core::Xoshiro256pp cfg_rng(41);
    FuzzConfig cfg;
    cfg.seed = 0x0FF7106;
    cfg.steps = 4096;
    cfg.check_every = 128;
    cfg.fault_storms = 2;
    cfg.faults_per_storm = 2;
    cfg.loss_p = loss;
    const auto line = run_differential<pl::PlProtocol, void,
                                       core::LineTopology>(
        p, pl::random_config(p, cfg_rng), cfg, pl_fault);
    EXPECT_TRUE(line.ok) << "line loss=" << loss << ": " << line.divergence;
    EXPECT_FALSE(line.word_lane);  // ring-only kernel must not engage
    const auto clique = run_differential<pl::PlProtocol, void,
                                         core::CliqueTopology>(
        p, pl::random_config(p, cfg_rng), cfg, pl_fault);
    EXPECT_TRUE(clique.ok) << "clique loss=" << loss << ": "
                           << clique.divergence;
    EXPECT_FALSE(clique.word_lane);
  }
}

// ---- the canary: a mis-mapped arc must be caught and named ---------------

/// LineTopology with exactly one arc's endpoints transposed — the smallest
/// possible topology-mapping bug. Only the mirror runs it.
struct MisMappedLine : core::LineTopology {
  using core::LineTopology::LineTopology;
  [[nodiscard]] constexpr core::ArcEndpoints endpoints(int arc) const {
    core::ArcEndpoints e = core::LineTopology::endpoints(arc);
    if (arc == 0) {
      const int tmp = e.initiator;
      e.initiator = e.responder;
      e.responder = tmp;
    }
    return e;
  }
};
static_assert(core::TopologyLike<MisMappedLine>);

TEST(TopologyDifferential, MisMappedArcIsCaughtAndNamed) {
  // n = 2 directed line: arc 0 is the only drawable arc, so the engines
  // walk the token 0 -> 1 on the first interaction while the corrupted
  // mirror applies (1, 0) and never moves it.
  const TokenMergeModel::Params p{2};
  std::vector<TokenMergeModel::State> init(2);
  init[0].tok = 1;
  FuzzConfig cfg;
  cfg.seed = 7;
  cfg.steps = 64;
  cfg.check_every = 1;
  const auto rep =
      run_differential<TokenMergeModel, TokenMergeModel, core::LineTopology,
                       MisMappedLine>(p, init, cfg, toy_fault);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.divergence.find("E(checker-mirror)"), std::string::npos)
      << "divergence not blamed on the mirror lane: " << rep.divergence;
  EXPECT_NE(rep.divergence.find("agent"), std::string::npos)
      << rep.divergence;
}

}  // namespace
}  // namespace ppsim::verification
