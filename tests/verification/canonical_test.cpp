// Canonicalization layer of the quotient checker: Booth's least-rotation
// algorithm against brute force, reflection composition, periodic subgroup
// restriction, and orbit accounting against the full product space.
#include "verification/canonical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/rng.hpp"

namespace ppsim::verification {
namespace {

std::vector<std::uint16_t> rotated(const std::vector<std::uint16_t>& d,
                                   std::size_t k) {
  std::vector<std::uint16_t> out(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) out[i] = d[(k + i) % d.size()];
  return out;
}

std::size_t brute_least_rotation(const std::vector<std::uint16_t>& d) {
  std::size_t best = 0;
  for (std::size_t k = 1; k < d.size(); ++k)
    if (rotated(d, k) < rotated(d, best)) best = k;
  return best;
}

TEST(Booth, MatchesBruteForceOnRandomStrings) {
  core::Xoshiro256pp rng(7);
  std::vector<std::int32_t> failure;
  for (int n : {1, 2, 3, 5, 8, 13, 32}) {
    for (int alphabet : {2, 3, 48}) {
      for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint16_t> d(static_cast<std::size_t>(n));
        for (auto& v : d)
          v = static_cast<std::uint16_t>(
              rng.bounded(static_cast<std::uint64_t>(alphabet)));
        const std::size_t got = least_rotation(d, failure);
        // Booth may return any index whose rotation is minimal; compare the
        // rotations, not the indices (ties are legitimate on periodic
        // strings).
        EXPECT_EQ(rotated(d, got), rotated(d, brute_least_rotation(d)))
            << "n=" << n << " alphabet=" << alphabet;
      }
    }
  }
}

TEST(Canonicalize, InvariantUnderEveryGroupElement) {
  core::Xoshiro256pp rng(11);
  CanonicalScratch scratch;
  for (const bool reflection : {false, true}) {
    const SymmetryGroup g{6, 1, reflection};
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint16_t> d(6);
      for (auto& v : d) v = static_cast<std::uint16_t>(rng.bounded(3));
      std::vector<std::uint16_t> canon = d;
      canonicalize(canon, g, scratch);
      // Idempotent.
      std::vector<std::uint16_t> twice = canon;
      canonicalize(twice, g, scratch);
      EXPECT_EQ(twice, canon);
      // Every transform canonicalizes to the same representative.
      for (std::size_t k = 0; k < 6; ++k) {
        std::vector<std::uint16_t> t = rotated(d, k);
        canonicalize(t, g, scratch);
        EXPECT_EQ(t, canon) << "rotation " << k;
        if (reflection) {
          std::vector<std::uint16_t> rev = rotated(d, k);
          std::reverse(rev.begin(), rev.end());
          canonicalize(rev, g, scratch);
          EXPECT_EQ(rev, canon) << "reflected rotation " << k;
        }
      }
      // The representative is itself a member of the orbit, and minimal.
      bool member = false;
      for (std::size_t k = 0; k < 6 && !member; ++k)
        member = canon == rotated(d, k);
      if (reflection && !member) {
        std::vector<std::uint16_t> rev = d;
        std::reverse(rev.begin(), rev.end());
        for (std::size_t k = 0; k < 6 && !member; ++k)
          member = canon == rotated(rev, k);
      }
      EXPECT_TRUE(member);
      EXPECT_LE(canon, d);
    }
  }
}

TEST(Canonicalize, PeriodicSubgroupOnlyUsesMultiplesOfThePeriod) {
  // rotation_period 2 on n = 6: the orbit of d is {d, rot_2(d), rot_4(d)};
  // rot_1(d) generally lands in a *different* orbit and must keep a
  // different representative.
  CanonicalScratch scratch;
  const SymmetryGroup g{6, 2, false};
  const std::vector<std::uint16_t> d{2, 0, 1, 0, 1, 0};
  std::vector<std::uint16_t> canon = d;
  canonicalize(canon, g, scratch);
  for (std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    std::vector<std::uint16_t> t = rotated(d, k);
    canonicalize(t, g, scratch);
    EXPECT_EQ(t, canon);
  }
  std::vector<std::uint16_t> odd = rotated(d, 1);
  canonicalize(odd, g, scratch);
  EXPECT_NE(odd, canon);  // (0,1,0,1,0,2) starts lower than any even shift
}

/// Necklace / bracelet counting: orbits of the canonicalization partition
/// the full digit space, and the orbit sizes sum back to alphabet^n. Known
/// counts: binary necklaces N(2,n) for n = 2..5 are 3, 4, 6, 8; binary
/// bracelets B(2,n) are 3, 4, 6, 8 (identical up to n = 5).
TEST(Canonicalize, OrbitSizesPartitionTheFullSpace) {
  CanonicalScratch scratch;
  const int expected_necklaces[] = {0, 0, 3, 4, 6, 8};
  for (int n = 2; n <= 5; ++n) {
    for (const bool reflection : {false, true}) {
      const SymmetryGroup g{n, 1, reflection};
      std::uint64_t total = 0;
      std::uint64_t orbits = 0;
      const std::uint64_t space = 1ULL << n;
      for (std::uint64_t id = 0; id < space; ++id) {
        std::vector<std::uint16_t> d(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
          d[static_cast<std::size_t>(i)] =
              static_cast<std::uint16_t>((id >> i) & 1);
        std::vector<std::uint16_t> canon = d;
        canonicalize(canon, g, scratch);
        if (canon != d) continue;  // not the representative
        ++orbits;
        total += orbit_size(d, g);
      }
      EXPECT_EQ(total, space) << "n=" << n << " reflection=" << reflection;
      EXPECT_EQ(orbits,
                static_cast<std::uint64_t>(expected_necklaces[n]))
          << "n=" << n << " reflection=" << reflection;
    }
  }
}

TEST(OrbitSize, MatchesDirectEnumeration) {
  core::Xoshiro256pp rng(13);
  for (int n : {3, 4, 6}) {
    for (const bool reflection : {false, true}) {
      const SymmetryGroup g{n, 1, reflection};
      for (int trial = 0; trial < 100; ++trial) {
        std::vector<std::uint16_t> d(static_cast<std::size_t>(n));
        for (auto& v : d) v = static_cast<std::uint16_t>(rng.bounded(2));
        std::vector<std::vector<std::uint16_t>> seen;
        for (std::size_t k = 0; k < static_cast<std::size_t>(n); ++k) {
          seen.push_back(rotated(d, k));
          if (reflection) {
            auto rev = rotated(d, k);
            std::reverse(rev.begin(), rev.end());
            seen.push_back(rev);
          }
        }
        std::sort(seen.begin(), seen.end());
        seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
        EXPECT_EQ(orbit_size(d, g), seen.size())
            << "n=" << n << " reflection=" << reflection;
      }
    }
  }
}

}  // namespace
}  // namespace ppsim::verification
