// Lemma 2.3: an interaction sequence of length l occurs (in order, not
// necessarily consecutively) within n*l steps in expectation, and within
// O(c n (l + log n)) steps w.h.p.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "core/ring.hpp"
#include "core/statistics.hpp"

namespace ppsim {
namespace {

/// Steps until the arc sequence `s` completes under uniform draws over
/// [0, n).
std::uint64_t occurrence_time(const std::vector<int>& s, int n,
                              core::Xoshiro256pp& rng) {
  std::size_t matched = 0;
  std::uint64_t steps = 0;
  while (matched < s.size()) {
    ++steps;
    if (static_cast<int>(rng.bounded(static_cast<std::uint64_t>(n))) ==
        s[matched])
      ++matched;
  }
  return steps;
}

TEST(SeqOccurrence, MeanIsNTimesLength) {
  core::Xoshiro256pp rng(3);
  const int n = 16;
  for (int len : {4, 16, 48}) {
    const auto s = core::seq_r(0, len, n);
    std::vector<double> samples;
    for (int t = 0; t < 400; ++t)
      samples.push_back(
          static_cast<double>(occurrence_time(s, n, rng)));
    const auto sum = core::summarize(samples);
    const double expected = static_cast<double>(n) * len;
    // Each arc waits Geometric(1/n): mean n, so mean total = n*l; stddev of
    // the mean over 400 trials ~ n*sqrt(l)/20 — allow 5 sigma.
    const double tol = 5.0 * n * std::sqrt(static_cast<double>(len)) / 20.0;
    EXPECT_NEAR(sum.mean, expected, tol) << "len=" << len;
  }
}

TEST(SeqOccurrence, WhpTailBound) {
  // With c = 3: occurrence within O(c n (l + log n)) w.h.p. — concretely,
  // under 4 * c * n * (l + log2 n) steps in at least 99% of trials.
  core::Xoshiro256pp rng(5);
  const int n = 32, len = 32, c = 3;
  const auto s = core::seq_r(5, len, n);
  const double bound = 4.0 * c * n * (len + std::log2(n));
  int exceeded = 0;
  for (int t = 0; t < 300; ++t)
    if (static_cast<double>(occurrence_time(s, n, rng)) > bound) ++exceeded;
  EXPECT_LE(exceeded, 3);
}

TEST(SeqOccurrence, OrderMattersNotAdjacency) {
  // The definition counts in-order, gap-tolerant occurrence: a sequence over
  // two distinct arcs completes in ~2n steps, far below the n^2-ish budget
  // that *consecutive* occurrence would need.
  core::Xoshiro256pp rng(9);
  const int n = 64;
  const std::vector<int> s{3, 40};
  std::vector<double> samples;
  for (int t = 0; t < 500; ++t)
    samples.push_back(static_cast<double>(occurrence_time(s, n, rng)));
  EXPECT_NEAR(core::summarize(samples).mean, 2.0 * n, 20.0);
}

}  // namespace
}  // namespace ppsim
