// The lottery game (Definition 3.8) and its Chernoff envelopes
// (Lemmas 3.9/3.10) — the engine behind signal TTLs and clock advancement.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/rng.hpp"

namespace ppsim {
namespace {

/// W_LG(k, l): number of winning rounds (k consecutive heads) in l flips.
int play_lottery(int k, std::uint64_t flips, core::Xoshiro256pp& rng) {
  int wins = 0;
  int run = 0;
  for (std::uint64_t i = 0; i < flips; ++i) {
    if (rng.coin()) {
      if (++run == k) {
        ++wins;
        run = 0;
      }
    } else {
      run = 0;
    }
  }
  return wins;
}

TEST(LotteryGame, WinsArePossibleButRare) {
  core::Xoshiro256pp rng(1);
  const int k = 6;
  // Expected wins over l flips is ~ l / (2^k * E[round length]) — just check
  // the order of magnitude: positive, far below l.
  const std::uint64_t l = 64ULL << k;
  const int w = play_lottery(k, l, rng);
  EXPECT_GT(w, 0);
  EXPECT_LT(w, static_cast<int>(l / (1ULL << k)));
}

TEST(LotteryGame, Lemma39UpperEnvelope) {
  // Pr(W(k, 4ck 2^k) <= 8ck) >= 1 - 2^{-ck}: with c = 1 and k = 5 the
  // failure probability is <= 1/32; over 300 trials expect <= ~9.4 failures
  // in expectation — allow a generous 40.
  core::Xoshiro256pp rng(7);
  const int k = 5, c = 1;
  const std::uint64_t l = 4ULL * c * k << k;
  int violations = 0;
  for (int t = 0; t < 300; ++t)
    if (play_lottery(k, l, rng) > 8 * c * k) ++violations;
  EXPECT_LE(violations, 40);
}

TEST(LotteryGame, Lemma310LowerEnvelope) {
  // Pr(W(k, 64ck 2^k) >= 16ck) >= 1 - 2^{-ck}.
  core::Xoshiro256pp rng(11);
  const int k = 5, c = 1;
  const std::uint64_t l = 64ULL * c * k << k;
  int violations = 0;
  for (int t = 0; t < 300; ++t)
    if (play_lottery(k, l, rng) < 16 * c * k) ++violations;
  EXPECT_LE(violations, 40);
}

TEST(LotteryGame, WinRateScalesLikeTwoToMinusK) {
  // Each flip wins a round with rate ~ 2^{-(k+1)} (a round consumes ~2 flips
  // on average, winning with prob 2^{-k}). Doubling k should cut the win
  // count by roughly 2^{k}; just assert strict monotone decrease with
  // headroom.
  core::Xoshiro256pp rng(13);
  const std::uint64_t l = 1 << 20;
  const int w4 = play_lottery(4, l, rng);
  const int w6 = play_lottery(6, l, rng);
  const int w8 = play_lottery(8, l, rng);
  EXPECT_GT(w4, 2 * w6);
  EXPECT_GT(w6, 2 * w8);
}

TEST(LotteryGame, MatchesClosedFormExpectation) {
  // The per-flip win rate is p_k = (1/2)^k / E[flips per round], with
  // E[flips per round] = 2(1 - 2^{-k}). For k = 4: p = (1/16)/(2*(15/16))
  // = 1/30.
  core::Xoshiro256pp rng(17);
  const std::uint64_t l = 3'000'000;
  const int w = play_lottery(4, l, rng);
  const double rate = static_cast<double>(w) / static_cast<double>(l);
  EXPECT_NEAR(rate, 1.0 / 30.0, 0.002);
}

}  // namespace
}  // namespace ppsim
