// Domain closure: the state space Call(P) of Section 2 is the product of the
// declared variable domains, and the transition function must map it into
// itself — otherwise "arbitrary initial configuration" stops being
// meaningful. Fuzz every protocol with random legal pairs and check every
// field stays in range after the interaction.
#include <gtest/gtest.h>

#include "baselines/fischer_jiang.hpp"
#include "baselines/modk.hpp"
#include "baselines/yokota28.hpp"
#include "core/rng.hpp"
#include "orientation/por.hpp"
#include "pl/adversary.hpp"
#include "pl/protocol.hpp"

namespace ppsim {
namespace {

void expect_pl_in_domain(const pl::PlState& s, const pl::PlParams& p,
                         const char* who) {
  EXPECT_LE(s.leader, 1) << who;
  EXPECT_LE(s.b, 1) << who;
  EXPECT_LT(static_cast<int>(s.dist), p.two_psi()) << who;
  EXPECT_LE(s.last, 1) << who;
  EXPECT_LE(static_cast<int>(s.clock), p.kappa_max) << who;
  EXPECT_LE(static_cast<int>(s.hits), p.psi) << who;
  EXPECT_LE(static_cast<int>(s.signal_r), p.kappa_max) << who;
  EXPECT_LE(s.bullet, 2) << who;
  EXPECT_LE(s.shield, 1) << who;
  EXPECT_LE(s.signal_b, 1) << who;
  for (const pl::Token& t : {s.token_b, s.token_w}) {
    if (!t.exists()) continue;
    EXPECT_GE(t.pos, -(p.psi - 1)) << who;
    EXPECT_LE(t.pos, p.psi) << who;
    EXPECT_LE(t.value, 1) << who;
    EXPECT_LE(t.carry, 1) << who;
  }
}

class PlDomainSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlDomainSweep, TransitionPreservesDomains) {
  const int n = GetParam();
  const pl::PlParams p = pl::PlParams::make(n, 4);
  core::Xoshiro256pp rng(static_cast<std::uint64_t>(n));
  for (int t = 0; t < 50000; ++t) {
    pl::PlState l = pl::random_state(p, rng);
    pl::PlState r = pl::random_state(p, rng);
    pl::PlProtocol::apply(l, r, p);
    expect_pl_in_domain(l, p, "initiator");
    expect_pl_in_domain(r, p, "responder");
    if (HasFailure()) FAIL() << "at trial " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Params, PlDomainSweep,
                         ::testing::Values(4, 16, 100, 1000));

TEST(DomainClosure, PlWithPaperFaithfulKappa) {
  const pl::PlParams p = pl::PlParams::make(64, 32, 2);
  core::Xoshiro256pp rng(5);
  for (int t = 0; t < 20000; ++t) {
    pl::PlState l = pl::random_state(p, rng);
    pl::PlState r = pl::random_state(p, rng);
    pl::PlProtocol::apply(l, r, p);
    expect_pl_in_domain(l, p, "initiator");
    expect_pl_in_domain(r, p, "responder");
    if (HasFailure()) FAIL() << "at trial " << t;
  }
}

TEST(DomainClosure, Yokota28) {
  const auto p = baselines::Y28Params::make(100);
  core::Xoshiro256pp rng(7);
  for (int t = 0; t < 50000; ++t) {
    auto c = baselines::y28_random_config(p, rng);
    baselines::Y28State l = c[0], r = c[1];
    baselines::Yokota28::apply(l, r, p);
    for (const auto& s : {l, r}) {
      EXPECT_LE(s.leader, 1);
      EXPECT_LT(static_cast<int>(s.dist), p.cap);
      EXPECT_LE(s.bullet, 2);
      EXPECT_LE(s.shield, 1);
      EXPECT_LE(s.signal_b, 1);
    }
    if (HasFailure()) FAIL() << "at trial " << t;
  }
}

TEST(DomainClosure, FischerJiangUnderAllOracleStates) {
  const auto p = baselines::FjParams::make(50);
  core::Xoshiro256pp rng(9);
  for (int t = 0; t < 50000; ++t) {
    auto c = baselines::fj_random_config(p, rng);
    core::InteractionContext ctx;
    ctx.no_leader = rng.coin();
    ctx.no_token = rng.coin();
    baselines::FjState l = c[0], r = c[1];
    baselines::FischerJiang::apply(l, r, p, ctx);
    for (const auto& s : {l, r}) {
      EXPECT_LE(s.leader, 1);
      EXPECT_LE(s.bullet, 2);
      EXPECT_LE(s.shield, 1);
      EXPECT_LE(s.armed, 1);
    }
    if (HasFailure()) FAIL() << "at trial " << t;
  }
}

TEST(DomainClosure, ModkAcrossModuli) {
  for (int k : {2, 3, 5}) {
    const auto p = baselines::ModkParams::make(k == 5 ? 11 : 16 * k + 1, k);
    core::Xoshiro256pp rng(static_cast<std::uint64_t>(k));
    for (int t = 0; t < 30000; ++t) {
      auto c = baselines::modk_random_config(p, rng);
      baselines::ModkState l = c[0], r = c[1];
      baselines::Modk::apply(l, r, p);
      for (const auto& s : {l, r}) {
        EXPECT_LE(s.leader, 1);
        EXPECT_LT(static_cast<int>(s.lab), k);
        EXPECT_LE(s.bullet, 2);
      }
      if (HasFailure()) FAIL() << "k=" << k << " trial " << t;
    }
  }
}

TEST(DomainClosure, PorDirAlwaysLandsOnNeighborColorsEventually) {
  // After one interaction, each participant's dir points at one of its
  // neighbors (sanitization + flips only choose from {c1, c2} or the
  // partner's color, which is a neighbor color by construction).
  const auto p = orient::OrParams::make(12);
  core::Xoshiro256pp rng(11);
  for (int t = 0; t < 30000; ++t) {
    auto c = orient::or_config(p, rng, true);
    orient::OrState u = c[3], v = c[4];
    orient::Por::apply(u, v, p);
    EXPECT_TRUE(u.dir == u.c1 || u.dir == u.c2);
    EXPECT_TRUE(v.dir == v.c1 || v.dir == v.c2);
    EXPECT_LE(u.strong, 1);
    EXPECT_LE(v.strong, 1);
    if (HasFailure()) FAIL() << "trial " << t;
  }
}

}  // namespace
}  // namespace ppsim
