// Lemma 3.2: a configuration without a leader is never perfect — exhaustive
// over (dist, b) assignments at small n, randomized beyond.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"

namespace ppsim::pl {
namespace {

TEST(Lemma32, ExhaustiveTinyRings) {
  // n = 4, psi = 2 (2psi = 4): enumerate all 4^4 dist chains x 2^4 bit
  // patterns; no leaderless configuration may be perfect.
  const PlParams p = PlParams::make(4);
  ASSERT_EQ(p.psi, 2);
  std::vector<PlState> c(4);
  int perfect_found = 0;
  for (int dmask = 0; dmask < 256; ++dmask) {
    for (int bmask = 0; bmask < 16; ++bmask) {
      for (int i = 0; i < 4; ++i) {
        c[static_cast<std::size_t>(i)].dist =
            static_cast<std::uint16_t>((dmask >> (2 * i)) & 3);
        c[static_cast<std::size_t>(i)].b =
            static_cast<std::uint8_t>((bmask >> i) & 1);
        c[static_cast<std::size_t>(i)].leader = 0;
      }
      if (is_perfect(c, p)) ++perfect_found;
    }
  }
  EXPECT_EQ(perfect_found, 0);
}

TEST(Lemma32, WithLeaderPerfectConfigsExist) {
  // Sanity complement: the same enumeration with a leader at u_0 does find
  // perfect configurations.
  const PlParams p = PlParams::make(4);
  std::vector<PlState> c(4);
  int perfect_found = 0;
  for (int dmask = 0; dmask < 256; ++dmask) {
    for (int bmask = 0; bmask < 16; ++bmask) {
      for (int i = 0; i < 4; ++i) {
        c[static_cast<std::size_t>(i)].dist =
            static_cast<std::uint16_t>((dmask >> (2 * i)) & 3);
        c[static_cast<std::size_t>(i)].b =
            static_cast<std::uint8_t>((bmask >> i) & 1);
        c[static_cast<std::size_t>(i)].leader = i == 0 ? 1 : 0;
      }
      if (is_perfect(c, p)) ++perfect_found;
    }
  }
  EXPECT_GT(perfect_found, 0);
}

class Lemma32Random : public ::testing::TestWithParam<int> {};

TEST_P(Lemma32Random, RandomLeaderlessConfigsNeverPerfect) {
  const int n = GetParam();
  const PlParams p = PlParams::make(n);
  core::Xoshiro256pp rng(static_cast<std::uint64_t>(n) * 131);
  for (int t = 0; t < 2000; ++t) {
    auto c = random_config(p, rng);
    for (PlState& s : c) s.leader = 0;
    EXPECT_FALSE(is_perfect(c, p)) << "n=" << n << " trial=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, Lemma32Random,
                         ::testing::Values(4, 8, 12, 16, 32, 64));

TEST(Lemma32, AdversarialNearMissIsCaught) {
  // The strongest leaderless configuration: consistent dists, consecutive
  // ids wherever possible — the checker must still find the inevitable
  // violation. Ring sizes with 2psi | n, so the dist chain truly closes.
  for (int n : {4, 16, 48, 160}) {
    const PlParams p = PlParams::make(n);
    const auto c = leaderless_consistent(p, 0);
    EXPECT_TRUE(satisfies_condition1(c, p)) << "n=" << n;  // dists fine
    EXPECT_FALSE(satisfies_condition2(c, p)) << "n=" << n;  // ids cannot be
  }
}

}  // namespace
}  // namespace ppsim::pl
