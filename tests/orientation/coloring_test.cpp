#include <gtest/gtest.h>

#include "orientation/coloring.hpp"

namespace ppsim::orient {
namespace {

class ColoringSweep : public ::testing::TestWithParam<int> {};

TEST_P(ColoringSweep, ProperTwoHopForAllSizes) {
  const int n = GetParam();
  const auto colors = two_hop_coloring(n);
  ASSERT_EQ(colors.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(is_proper_two_hop(colors)) << "n=" << n;
  EXPECT_LE(color_count(colors), 3);
  for (auto c : colors) EXPECT_LT(c, 3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ColoringSweep,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                           13, 16, 17, 25, 32, 33, 64, 101,
                                           256));

TEST(Coloring, NeighborColorsAlwaysDiffer) {
  // c1 != c2 at every agent: the two neighbors are two hops apart.
  for (int n : {3, 5, 8, 13, 100}) {
    const auto colors = two_hop_coloring(n);
    for (int i = 0; i < n; ++i) {
      const auto left = colors[static_cast<std::size_t>((i + n - 1) % n)];
      const auto right = colors[static_cast<std::size_t>((i + 1) % n)];
      EXPECT_NE(left, right) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Coloring, RejectsTinyRings) {
  EXPECT_THROW((void)two_hop_coloring(2), std::invalid_argument);
}

TEST(Coloring, ImproperColoringDetected) {
  std::vector<std::uint8_t> bad{0, 1, 0, 1};  // color(0) == color(2)
  EXPECT_FALSE(is_proper_two_hop(bad));
}

}  // namespace
}  // namespace ppsim::orient
