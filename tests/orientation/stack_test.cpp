// The composed undirected-ring stack: coloring inputs + learned neighbor
// colors + P_OR + P_PL.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "orientation/coloring.hpp"
#include "orientation/oriented_stack.hpp"

namespace ppsim::orient {
namespace {

constexpr int kC1 = 4;

std::uint64_t budget(const StackParams& p) {
  const auto n = static_cast<std::uint64_t>(p.n);
  return 1200ULL * n * n * static_cast<std::uint64_t>(p.pl.kappa_max) +
         4'000'000;
}

TEST(Stack, LearningConvergesToNeighborColors) {
  StackParams p = StackParams::make(12, kC1);
  core::Xoshiro256pp rng(1);
  core::Runner<OrientedStack> run(p, stack_random_config(p, rng), 1);
  run.run(50'000);
  const auto colors = two_hop_coloring(p.n);
  for (int i = 0; i < p.n; ++i) {
    const auto left = colors[static_cast<std::size_t>((i + p.n - 1) % p.n)];
    const auto right = colors[static_cast<std::size_t>((i + 1) % p.n)];
    const StackState& s = run.agent(i);
    const bool learned = (s.lc1 == left && s.lc2 == right) ||
                         (s.lc1 == right && s.lc2 == left);
    EXPECT_TRUE(learned) << "agent " << i;
  }
}

class StackConvergence : public ::testing::TestWithParam<int> {};

TEST_P(StackConvergence, UndirectedRingElectsLeader) {
  const int n = GetParam();
  StackParams p = StackParams::make(n, kC1);
  for (std::uint64_t seed : {1u, 2u}) {
    core::Xoshiro256pp rng(seed);
    core::Runner<OrientedStack> run(p, stack_random_config(p, rng), seed);
    const auto hit = run.run_until(
        [](std::span<const StackState> c, const StackParams& pp) {
          return stack_is_safe(c, pp);
        },
        budget(p));
    ASSERT_TRUE(hit.has_value()) << "n=" << n << " seed=" << seed;
    // Orientation and leadership both frozen afterwards.
    const int dir = stack_orientation(run.agents());
    ASSERT_NE(dir, 0);
    const auto change_before = run.last_leader_change();
    run.run(200'000);
    EXPECT_EQ(stack_orientation(run.agents()), dir);
    EXPECT_EQ(run.last_leader_change(), change_before);
    EXPECT_EQ(run.leader_count(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, StackConvergence,
                         ::testing::Values(4, 6, 8, 12, 16, 24));

TEST(Stack, OrientationDetectorRequiresSettledLearning) {
  StackParams p = StackParams::make(8, kC1);
  core::Xoshiro256pp rng(3);
  auto c = stack_random_config(p, rng);
  // Hand-build an all-clockwise dir assignment but with unlearned lc1/lc2:
  const auto colors = two_hop_coloring(p.n);
  for (int i = 0; i < p.n; ++i) {
    c[static_cast<std::size_t>(i)].dir =
        colors[static_cast<std::size_t>((i + 1) % p.n)];
    c[static_cast<std::size_t>(i)].lc1 = 7;  // garbage
    c[static_cast<std::size_t>(i)].lc2 = 7;
  }
  EXPECT_EQ(stack_orientation(c), 0);
}

TEST(Stack, SafePredicateHandlesBothDirections) {
  // Build a fully converged stack by simulation, then verify the converse
  // orientation also validates via the reversed extraction.
  StackParams p = StackParams::make(8, kC1);
  core::Xoshiro256pp rng(9);
  core::Runner<OrientedStack> run(p, stack_random_config(p, rng), 9);
  const auto hit = run.run_until(
      [](std::span<const StackState> c, const StackParams& pp) {
        return stack_is_safe(c, pp);
      },
      budget(p));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(stack_orientation(run.agents()) != 0);
}

}  // namespace
}  // namespace ppsim::orient
