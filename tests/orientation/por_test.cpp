// P_OR (Algorithm 6): head duels, strength bookkeeping, sanitization,
// orientation safety — plus exhaustive model checking at small n.
#include <gtest/gtest.h>

#include "core/model_checker.hpp"
#include "core/runner.hpp"
#include "orientation/coloring.hpp"
#include "orientation/por.hpp"

namespace ppsim::orient {
namespace {

TEST(Por, OrientedConfigIsStableAndRecognized) {
  const OrParams p = OrParams::make(8);
  core::Xoshiro256pp rng(1);
  auto c = or_config(p, rng, /*random_dir=*/false);  // all clockwise
  EXPECT_TRUE(is_oriented(c, p));
  core::Runner<Por> run(p, c, 1);
  run.run(200'000);
  // dir outputs never change from an oriented configuration.
  for (int i = 0; i < p.n; ++i)
    EXPECT_EQ(run.agent(i).dir, c[static_cast<std::size_t>(i)].dir);
}

TEST(Por, SanitizationRepairsGarbageDir) {
  const OrParams p = OrParams::make(8);
  core::Xoshiro256pp rng(2);
  auto c = or_config(p, rng, false);
  // Give u_3 a dir that is neither neighbor's color: with a <=3-color
  // palette pick a color not in {c1, c2}.
  OrState& s = c[3];
  for (std::uint8_t col = 0; col < 3; ++col)
    if (col != s.c1 && col != s.c2) s.dir = col;
  core::Runner<Por> run(p, c, 2);
  run.apply_arc(3);  // interaction (u3, u4)
  const OrState& after = run.agent(3);
  EXPECT_TRUE(after.dir == after.c1 || after.dir == after.c2);
}

TEST(Por, HeadDuelStrongBeatsWeak) {
  const OrParams p = OrParams::make(8);
  core::Xoshiro256pp rng(3);
  auto c = or_config(p, rng, false);
  // Make u_3 and u_4 heads facing each other: u_3 points right (at u_4),
  // u_4 points left (at u_3).
  c[3].dir = c[4].color;
  c[4].dir = c[3].color;
  c[3].strong = 0;
  c[4].strong = 1;
  core::Runner<Por> run(p, c, 3);
  run.apply_arc(3);  // initiator u_3 (weak) vs responder u_4 (strong)
  // v (strong) wins: u_3 flips away from u_4 and inherits strength.
  EXPECT_EQ(run.agent(3).dir, run.agent(3).c1 == run.agent(4).color
                                  ? run.agent(3).c2
                                  : run.agent(3).c1);
  EXPECT_EQ(run.agent(3).strong, 1);
  EXPECT_EQ(run.agent(4).strong, 0);
  EXPECT_EQ(run.agent(4).dir, c[4].dir);  // winner's dir unchanged
}

TEST(Por, HeadDuelInitiatorWinsOtherwise) {
  const OrParams p = OrParams::make(8);
  core::Xoshiro256pp rng(4);
  for (int us : {0, 1}) {
    for (int vs : {0, 1}) {
      if (us == 0 && vs == 1) continue;  // covered above
      auto c = or_config(p, rng, false);
      c[3].dir = c[4].color;
      c[4].dir = c[3].color;
      c[3].strong = static_cast<std::uint8_t>(us);
      c[4].strong = static_cast<std::uint8_t>(vs);
      core::Runner<Por> run(p, c, 4);
      run.apply_arc(3);
      // Initiator u_3 wins: v flips away and carries strength.
      EXPECT_EQ(run.agent(3).dir, c[3].dir);
      EXPECT_EQ(run.agent(3).strong, 0);
      EXPECT_EQ(run.agent(4).strong, 1);
      EXPECT_NE(run.agent(4).dir, run.agent(3).color);
    }
  }
}

TEST(Por, NonHeadStrongTurnsWeak) {
  const OrParams p = OrParams::make(8);
  core::Xoshiro256pp rng(5);
  auto c = or_config(p, rng, false);  // all clockwise: u_i points at u_{i+1}
  c[2].strong = 1;
  core::Runner<Por> run(p, c, 5);
  run.apply_arc(2);  // u_2 points at u_3, u_3 does not point back
  EXPECT_EQ(run.agent(2).strong, 0);
}

class PorConvergence : public ::testing::TestWithParam<int> {};

TEST_P(PorConvergence, RandomDirsOrient) {
  const int n = GetParam();
  const OrParams p = OrParams::make(n);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    core::Xoshiro256pp rng(seed);
    core::Runner<Por> run(p, or_config(p, rng, true), seed);
    const std::uint64_t budget =
        3000ULL * static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(n) +
        500'000;
    const auto hit = run.run_until(
        [](std::span<const OrState> c, const OrParams& pp) {
          return is_oriented(c, pp);
        },
        budget);
    ASSERT_TRUE(hit.has_value()) << "n=" << n << " seed=" << seed;
    // Orientation is stable: dir outputs frozen from here on.
    const std::vector<OrState> snap(run.agents().begin(),
                                    run.agents().end());
    run.run(100'000);
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(run.agent(i).dir, snap[static_cast<std::size_t>(i)].dir);
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, PorConvergence,
                         ::testing::Values(3, 4, 5, 6, 8, 12, 16, 24, 32));

TEST(PorModelCheck, ExhaustiveSelfStabilization) {
  // Every configuration of dir (full palette, garbage included) and strong:
  // all bottom SCCs must be oriented with constant dir outputs.
  for (int n : {3, 4, 5}) {
    const OrParams p = OrParams::make(n);
    core::ModelChecker<PorModel> mc(p);
    const auto res = mc.check(
        [](std::span<const OrState> c, const OrParams& pp) {
          struct Out {
            bool oriented;
            std::uint64_t dirs;
            bool operator==(const Out&) const = default;
          };
          std::uint64_t dirs = 0;
          for (const OrState& s : c) dirs = dirs * 8 + s.dir;
          return Out{is_oriented(c, pp), dirs};
        },
        [](const auto& out) { return out.oriented; });
    EXPECT_TRUE(res.ok) << "n=" << n << ": " << res.reason;
    EXPECT_GT(res.num_bottom_sccs, 0u);
  }
}

}  // namespace
}  // namespace ppsim::orient
