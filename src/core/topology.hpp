// Topology-generic interaction layer.
//
// Every engine and checker in this repo schedules interactions by drawing a
// uniform arc id and resolving it to an (initiator, responder) pair. This
// header abstracts that resolution — plus the automorphism group that the
// symmetry-reduced checker quotients by — behind a small Topology interface,
// so the engines, adversaries and checkers are no longer hard-wired to the
// directed ring of core/ring.hpp.
//
// Arc numbering contract (uniform across topologies):
//   * A topology over n agents exposes F = forward_arcs() directed arcs
//     [0, F), each a scheduler-ordered (initiator, responder) pair.
//   * For undirected protocols the arc set doubles: arc F + a is arc a with
//     its endpoints swapped, so arc_count(directed) = directed ? F : 2F.
//     RingTopology reproduces the historical numbering of
//     core::arc_endpoints exactly (F = n, arc n + i reverses e_i).
//   * endpoints(arc) must be valid for arc in [0, 2F) regardless of the
//     protocol's orientation; directed protocols simply never draw >= F.
//
// Automorphism contract (consumed by verification/quotient.hpp):
//   * aut_count(directed) enumerates a group of scheduler automorphisms as
//     ids g in [0, aut_count). g = 0 is always the identity.
//   * aut_agent(g, v) is the agent permutation, aut_arc(g, arc) the induced
//     arc permutation. They must commute with endpoints():
//         endpoints(aut_arc(g, a)).initiator ==
//             aut_agent(g, endpoints(a).initiator)     (same for responder)
//     and every aut must map the drawn arc set [0, arc_count(directed)) onto
//     itself — that bijection is what makes the uniform scheduler invariant
//     under the group, the soundness premise of the quotient checker.
//   * Declaring a *subgroup* of the true automorphism group is always sound
//     (the quotient is merely coarser); TreeTopology uses this to declare
//     the trivial group rather than compute subtree isomorphisms.
//   * The contract is enforced exhaustively at small n by
//     tests/core/topology_test.cpp.
#pragma once

#include <cassert>
#include <concepts>
#include <cstdint>
#include <vector>

#include "core/ring.hpp"

namespace ppsim::core {

template <typename T>
concept TopologyLike = requires(const T& t, int arc, int v, bool directed,
                                std::uint64_t g) {
  { t.n() } -> std::convertible_to<int>;
  { t.forward_arcs() } -> std::convertible_to<int>;
  { t.arc_count(directed) } -> std::convertible_to<int>;
  { t.endpoints(arc) } -> std::same_as<ArcEndpoints>;
  { t.aut_count(directed) } -> std::convertible_to<std::uint64_t>;
  { t.aut_agent(g, v) } -> std::convertible_to<int>;
  { t.aut_arc(g, arc) } -> std::convertible_to<int>;
  { T::kName } -> std::convertible_to<const char*>;
};

/// The directed ring of the paper: arcs e_i = (u_i, u_{i+1 mod n}). This is
/// a zero-overhead wrapper over the free functions in core/ring.hpp — every
/// member is a constexpr inline forward, so Runner<P, RingTopology> compiles
/// to exactly the pre-topology code (bit-identity is pinned by the existing
/// equivalence tests and the differential matrix).
class RingTopology {
 public:
  static constexpr const char* kName = "ring";

  constexpr RingTopology() = default;
  explicit constexpr RingTopology(int n) : n_(n) { assert(n >= 1); }

  [[nodiscard]] constexpr int n() const noexcept { return n_; }
  [[nodiscard]] constexpr int forward_arcs() const noexcept { return n_; }
  [[nodiscard]] constexpr int arc_count(bool directed) const noexcept {
    return directed ? n_ : 2 * n_;
  }
  [[nodiscard]] constexpr ArcEndpoints endpoints(int arc) const noexcept {
    return arc_endpoints(arc, n_);
  }

  /// Rotations (ids [0, n)), then rotation-followed-by-reflection
  /// (ids [n, 2n)). Reflection swaps arc orientations, so it is only an
  /// automorphism of the undirected scheduler.
  [[nodiscard]] constexpr std::uint64_t aut_count(bool directed) const noexcept {
    return directed ? static_cast<std::uint64_t>(n_)
                    : static_cast<std::uint64_t>(2 * n_);
  }
  [[nodiscard]] constexpr int aut_agent(std::uint64_t g, int v) const noexcept {
    const bool reflect = g >= static_cast<std::uint64_t>(n_);
    const int delta = static_cast<int>(reflect ? g - n_ : g);
    const int rotated = ring_add(v, delta, n_);
    return reflect ? n_ - 1 - rotated : rotated;
  }
  [[nodiscard]] constexpr int aut_arc(std::uint64_t g, int arc) const noexcept {
    const bool reflect = g >= static_cast<std::uint64_t>(n_);
    const int delta = static_cast<int>(reflect ? g - n_ : g);
    const int rotated = rotate_arc(arc, delta, n_);
    return reflect ? reflect_arc(rotated, n_) : rotated;
  }

 private:
  int n_ = 1;
};

/// The path u_0 - u_1 - ... - u_{n-1}: forward arc a = (u_a, u_{a+1}) for
/// a in [0, n-1). The only non-trivial automorphism is the reflection
/// u_v -> u_{n-1-v}, and it swaps arc orientations, so the directed line has
/// a trivial group.
class LineTopology {
 public:
  static constexpr const char* kName = "line";

  constexpr LineTopology() = default;
  explicit constexpr LineTopology(int n) : n_(n) { assert(n >= 2); }

  [[nodiscard]] constexpr int n() const noexcept { return n_; }
  [[nodiscard]] constexpr int forward_arcs() const noexcept { return n_ - 1; }
  [[nodiscard]] constexpr int arc_count(bool directed) const noexcept {
    return directed ? forward_arcs() : 2 * forward_arcs();
  }
  [[nodiscard]] constexpr ArcEndpoints endpoints(int arc) const noexcept {
    const int f = forward_arcs();
    assert(arc >= 0 && arc < 2 * f);
    if (arc < f) return {arc, arc + 1};
    const int resp = arc - f;
    return {resp + 1, resp};
  }

  [[nodiscard]] constexpr std::uint64_t aut_count(bool directed) const noexcept {
    return directed ? 1u : 2u;
  }
  [[nodiscard]] constexpr int aut_agent(std::uint64_t g, int v) const noexcept {
    return g == 0 ? v : n_ - 1 - v;
  }
  [[nodiscard]] constexpr int aut_arc(std::uint64_t g, int arc) const noexcept {
    if (g == 0) return arc;
    // Reflection maps forward arc a = (a, a+1) to (n-1-a, n-2-a), which is
    // the reverse of forward arc n-2-a = f-1-a; reverse arcs map back.
    const int f = forward_arcs();
    return arc < f ? f + (f - 1 - arc) : f - 1 - (arc - f);
  }

 private:
  int n_ = 2;
};

/// The complete graph with every *ordered* pair as a forward arc
/// (F = n(n-1)), matching Burman et al.'s complete-graph SSLE setting.
/// Using ordered pairs (rather than i < j) keeps the full symmetric group
/// S_n a scheduler automorphism group for directed protocols too: any
/// relabeling maps the ordered-pair arc set onto itself. For undirected
/// protocols the doubled arc set draws every ordered pair twice — still
/// uniform over ordered pairs, mirroring the n = 2 ring multigraph.
class CliqueTopology {
 public:
  static constexpr const char* kName = "clique";

  constexpr CliqueTopology() = default;
  explicit constexpr CliqueTopology(int n) : n_(n) { assert(n >= 2); }

  [[nodiscard]] constexpr int n() const noexcept { return n_; }
  [[nodiscard]] constexpr int forward_arcs() const noexcept {
    return n_ * (n_ - 1);
  }
  [[nodiscard]] constexpr int arc_count(bool directed) const noexcept {
    return directed ? forward_arcs() : 2 * forward_arcs();
  }
  [[nodiscard]] constexpr ArcEndpoints endpoints(int arc) const noexcept {
    const int f = forward_arcs();
    assert(arc >= 0 && arc < 2 * f);
    const bool reversed = arc >= f;
    const ArcEndpoints e = decode(reversed ? arc - f : arc);
    return reversed ? ArcEndpoints{e.responder, e.initiator} : e;
  }

  /// The full symmetric group S_n, indexed in the factorial number system
  /// (g = 0 is the identity). n! must fit in 64 bits, so n <= 20 — far above
  /// any checker-reachable population.
  [[nodiscard]] std::uint64_t aut_count(bool /*directed*/) const noexcept {
    assert(n_ <= 20);
    std::uint64_t f = 1;
    for (int i = 2; i <= n_; ++i) f *= static_cast<std::uint64_t>(i);
    return f;
  }
  [[nodiscard]] int aut_agent(std::uint64_t g, int v) const {
    return decode_perm(g)[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int aut_arc(std::uint64_t g, int arc) const {
    const int f = forward_arcs();
    assert(arc >= 0 && arc < 2 * f);
    const bool reversed = arc >= f;
    const ArcEndpoints e = decode(reversed ? arc - f : arc);
    const std::vector<int> perm = decode_perm(g);
    const int enc = encode(perm[static_cast<std::size_t>(e.initiator)],
                           perm[static_cast<std::size_t>(e.responder)]);
    return reversed ? f + enc : enc;
  }

 private:
  // Ordered pair (i, j), i != j  <->  arc id i*(n-1) + (j adjusted past i).
  [[nodiscard]] constexpr int encode(int i, int j) const noexcept {
    return i * (n_ - 1) + (j > i ? j - 1 : j);
  }
  [[nodiscard]] constexpr ArcEndpoints decode(int a) const noexcept {
    const int i = a / (n_ - 1);
    const int jj = a % (n_ - 1);
    return {i, jj >= i ? jj + 1 : jj};
  }
  // Lehmer-code decode of permutation id g (cold path: the quotient checker
  // materializes the group once; tests call it at tiny n).
  [[nodiscard]] std::vector<int> decode_perm(std::uint64_t g) const {
    std::vector<int> pool(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) pool[static_cast<std::size_t>(i)] = i;
    std::vector<std::uint64_t> fact(static_cast<std::size_t>(n_), 1);
    for (int i = 1; i < n_; ++i) {
      fact[static_cast<std::size_t>(i)] =
          fact[static_cast<std::size_t>(i - 1)] * static_cast<std::uint64_t>(i);
    }
    std::vector<int> perm;
    perm.reserve(pool.size());
    for (int i = n_ - 1; i >= 0; --i) {
      const std::uint64_t base = fact[static_cast<std::size_t>(i)];
      const auto d = static_cast<std::size_t>(g / base);
      g %= base;
      assert(d < pool.size());
      perm.push_back(pool[d]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(d));
    }
    return perm;
  }

  int n_ = 2;
};

/// A rooted binary tree in heap layout: parent(v) = (v-1)/2, forward arc
/// a = (parent(a+1), a+1) for a in [0, n-1) — the parent initiates. Heap
/// trees can have non-trivial automorphisms when sibling subtrees happen to
/// be isomorphic, but computing them is not worth the quotient gain at test
/// sizes; declaring the trivial subgroup is always sound (see header note).
class TreeTopology {
 public:
  static constexpr const char* kName = "tree";

  constexpr TreeTopology() = default;
  explicit constexpr TreeTopology(int n) : n_(n) { assert(n >= 2); }

  [[nodiscard]] constexpr int n() const noexcept { return n_; }
  [[nodiscard]] constexpr int forward_arcs() const noexcept { return n_ - 1; }
  [[nodiscard]] constexpr int arc_count(bool directed) const noexcept {
    return directed ? forward_arcs() : 2 * forward_arcs();
  }
  [[nodiscard]] constexpr ArcEndpoints endpoints(int arc) const noexcept {
    const int f = forward_arcs();
    assert(arc >= 0 && arc < 2 * f);
    if (arc < f) return {arc / 2, arc + 1};  // parent(arc+1) = arc/2
    const int resp = arc - f;
    return {resp + 1, resp / 2};
  }

  [[nodiscard]] constexpr std::uint64_t aut_count(bool /*directed*/) const noexcept {
    return 1;
  }
  [[nodiscard]] constexpr int aut_agent(std::uint64_t /*g*/, int v) const noexcept {
    return v;
  }
  [[nodiscard]] constexpr int aut_arc(std::uint64_t /*g*/, int arc) const noexcept {
    return arc;
  }

 private:
  int n_ = 2;
};

static_assert(TopologyLike<RingTopology>);
static_assert(TopologyLike<LineTopology>);
static_assert(TopologyLike<CliqueTopology>);
static_assert(TopologyLike<TreeTopology>);

}  // namespace ppsim::core
