// Central registry of every RNG stream-derivation tag in the repo — the
// determinism contract as code.
//
// Bit-identical replay across thread counts, shard widths and engine lanes
// rests on one discipline: every RNG stream is derived from a trial seed
// via exactly one of two blessed operations,
//
//   * stream_seed(seed, tag)        — a per-trial side stream (config
//     drawing, fault injection, omission loss), decorrelated from the main
//     scheduler stream by a registered XOR tag;
//   * derive_seed(base, tag, index) — an indexed seed *family* (trial t of
//     an experiment, decoy ring r of a lockstep lane), mixed through
//     SplitMix64 (core/rng.hpp).
//
// Before this registry the tags lived as inline hex literals scattered
// across five headers; two tags colliding — or one drifting in a refactor —
// would silently correlate streams that every bit-identity test assumes
// independent. Here every tag is declared once, and two structural
// invariants are enforced at compile time over the whole set:
//
//   1. pairwise distinctness (a duplicate tag aliases two streams), and
//   2. a minimum pairwise Hamming distance of kMinTagHammingDistance —
//      near-miss tags (one flipped bit apart) are exactly the typo class a
//      refactor introduces, and XOR-derived side streams with adjacent tags
//      differ in their seed by that same near-zero mask.
//
// scripts/ppsim_lint.py closes the loop from the other side: it rejects any
// RNG construction in src/ whose seed expression carries an unregistered
// inline hex tag, so a new stream cannot bypass this file.
//
// Changing any value below changes every trajectory derived from the
// affected stream (committed BENCH artifacts, golden tests). The registry
// values are pinned by tests/core/stream_tags_test.cpp.
#pragma once

#include <cstdint>

namespace ppsim::core::streams {

/// Per-trial configuration stream: initial configurations are drawn from
/// Xoshiro256pp(stream_seed(trial_seed, kConfig)). Used by the experiment
/// drivers (analysis/experiment.hpp), the scenario engine
/// (analysis/scenario.hpp) and the differential campaign driver
/// (verification/differential.hpp).
inline constexpr std::uint64_t kConfig = 0xC0FFEEULL;

/// Per-trial fault-injection stream: scheduled fault bursts and storm
/// corruption draw from Xoshiro256pp(stream_seed(trial_seed, kFaults)),
/// decorrelated from both the scheduler and config streams
/// (analysis/scenario.hpp, verification/differential.hpp).
inline constexpr std::uint64_t kFaults = 0xFA5EEDULL;

/// Omission / message-loss stream: an engine seeded with `seed` draws its
/// loss events from Xoshiro256pp(stream_seed(seed, kLoss)) so enabling loss
/// never perturbs the arc-draw stream (core/runner.hpp kLossStreamTag,
/// core/ensemble.hpp, the differential mirror).
inline constexpr std::uint64_t kLoss = 0x1055ULL;

/// derive_seed tag for the lockstep lane's decoy rings: differential lane G
/// seeds ring r > 0 with derive_seed(trial_seed, kLockstepDecoy, r)
/// (verification/differential.hpp).
inline constexpr std::uint64_t kLockstepDecoy = 0x10C5ULL;

/// derive_seed tag for differential-campaign trials: trial t runs with
/// derive_seed(base_seed, kDifferentialTrial, t)
/// (verification/differential.hpp run_differential_campaign's default tag).
inline constexpr std::uint64_t kDifferentialTrial = 0xD1FFULL;

/// Seed constant of the final-state digest fold in a FuzzReport — not an
/// RNG stream, but registered so the digest domain can never collide with a
/// stream tag (verification/differential.hpp).
inline constexpr std::uint64_t kDigest = 0x5EEDEDULL;

/// Probabilistic failpoint firing stream: a `p<permille>@<seed>` schedule
/// unit draws from Xoshiro256pp(stream_seed(seed, kFailpoint)) — same seed,
/// same injected-fault pattern, decorrelated from every simulation stream
/// (core/failpoint.hpp).
inline constexpr std::uint64_t kFailpoint = 0xFA17ULL;

/// Retry-backoff jitter stream: service::RetryState draws its exponential-
/// backoff jitter from Xoshiro256pp(stream_seed(policy.seed, kRetryJitter)),
/// so retry timing is reproducible and never touches an engine stream
/// (service/retry.hpp). Jitter affects wall clock only, never output bytes.
inline constexpr std::uint64_t kRetryJitter = 0xB0FFULL;

/// Every registered tag, for the structural checks below and for the
/// runtime mirror in tests/core/stream_tags_test.cpp. Append new tags here.
inline constexpr std::uint64_t kAll[] = {
    kConfig,        kFaults,    kLoss,        kLockstepDecoy,
    kDifferentialTrial, kDigest, kFailpoint, kRetryJitter,
};
inline constexpr int kCount = static_cast<int>(sizeof(kAll) / sizeof(kAll[0]));

/// Floor on the pairwise Hamming distance of registered tags. The closest
/// pair today is kLoss/kLockstepDecoy at distance 2 (0x1055 ^ 0x10C5 =
/// 0x90); raising a tag's distance retroactively would re-seed committed
/// trajectories, so the floor documents the real minimum instead of an
/// aspirational one — new tags must clear it against every existing tag.
inline constexpr int kMinTagHammingDistance = 2;

namespace detail {

[[nodiscard]] constexpr int popcount64(std::uint64_t x) noexcept {
  int c = 0;
  while (x != 0) {
    c += static_cast<int>(x & 1);
    x >>= 1;
  }
  return c;
}

[[nodiscard]] constexpr bool all_distinct() noexcept {
  for (int i = 0; i < kCount; ++i)
    for (int j = i + 1; j < kCount; ++j)
      if (kAll[i] == kAll[j]) return false;
  return true;
}

[[nodiscard]] constexpr int min_pairwise_hamming() noexcept {
  int best = 64;
  for (int i = 0; i < kCount; ++i)
    for (int j = i + 1; j < kCount; ++j) {
      const int d = popcount64(kAll[i] ^ kAll[j]);
      if (d < best) best = d;
    }
  return best;
}

}  // namespace detail

static_assert(detail::all_distinct(),
              "stream-tag registry: two registered tags collide — the "
              "streams they derive would be identical");
static_assert(detail::min_pairwise_hamming() >= kMinTagHammingDistance,
              "stream-tag registry: a pair of tags is within Hamming "
              "distance 1 — near-miss tags are one typo away from aliasing "
              "two streams");
static_assert(detail::popcount64(0) == 0 && detail::popcount64(0x90) == 2,
              "popcount64 self-check");

}  // namespace ppsim::core::streams

namespace ppsim::core {

/// The blessed derivation of a per-trial side stream: XOR the trial seed
/// with a registered tag. Kept as a plain XOR — not a mix — deliberately:
/// every committed trajectory (BENCH artifacts, golden tests) was produced
/// under this scheme, and decorrelation across *streams of one trial* only
/// needs distinct seeds into SplitMix64's full-period state expansion.
/// Cross-*trial* decorrelation is derive_seed's job (core/rng.hpp).
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t trial_seed,
                                                  std::uint64_t tag) noexcept {
  return trial_seed ^ tag;
}

}  // namespace ppsim::core
