// Minimal thread-pool for the trial-parallel experiment engine.
//
// Design constraints (see analysis/experiment.hpp):
//  * Work items are independent trials, each seeded by derive_seed(base, tag,
//    index) — the pool only distributes *indices*, never randomness, so
//    results are bit-identical to a serial loop regardless of thread count or
//    scheduling order.
//  * Trials are coarse (milliseconds to minutes), so a simple
//    condition-variable queue is plenty; no work stealing needed.
//
// The calling thread participates in draining, so ThreadPool(1) runs
// caller-only and the pool is usable even where hardware_concurrency() == 1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/env.hpp"

namespace ppsim::core {

class ThreadPool {
 public:
  /// `threads` == 0 picks default_threads(). The pool spawns `threads - 1`
  /// workers; the caller of for_index() acts as the remaining one.
  explicit ThreadPool(int threads = 0) {
    if (threads <= 0) threads = default_threads();
    threads_ = threads;
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int t = 0; t < threads - 1; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] int size() const noexcept { return threads_; }

  /// Thread count from PPSIM_THREADS, else hardware_concurrency, else 1.
  /// Strict parse (core::env_int, exit(2) on garbage); a parsed value <= 0
  /// means "no override" and falls through to hardware concurrency.
  [[nodiscard]] static int default_threads() {
    const int t = env_int("PPSIM_THREADS", 0);
    if (t > 0) return t;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  /// Invoke `fn(i)` for every i in [0, count), distributed over the pool.
  /// Blocks until all invocations finish (the caller drains too). If any
  /// invocation throws, the first exception is rethrown here after the batch
  /// completes. Not reentrant: one for_index at a time per pool.
  template <typename F>
  void for_index(std::size_t count, F&& fn) {
    if (count == 0) return;
    Batch batch;
    batch.count = count;
    batch.call = [&fn](std::size_t i) { fn(i); };
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch.active = 1;  // the caller
      batch_ = &batch;
      ++generation_;
    }
    cv_.notify_all();
    drain(batch);
    {
      std::unique_lock<std::mutex> lock(mu_);
      // `active` only changes under mu_, so once it reaches 0 here no worker
      // can touch `batch` again and the stack object can be retired safely.
      done_cv_.wait(lock, [&] { return batch.active == 0; });
      batch_ = nullptr;
    }
    if (batch.error) std::rethrow_exception(batch.error);
  }

 private:
  struct Batch {
    std::function<void(std::size_t)> call;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    int active = 0;  ///< threads attached to this batch; guarded by mu_
    std::exception_ptr error;
    std::mutex error_mu;
  };

  /// Run work items until the batch is exhausted, then detach from it.
  /// Precondition: the calling thread was counted in batch.active under mu_.
  void drain(Batch& batch) {
    for (;;) {
      const std::size_t i =
          batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.count) break;
      try {
        batch.call(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.error_mu);
        if (!batch.error) batch.error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --batch.active;
      if (batch.active == 0) done_cv_.notify_all();
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;  // generation this worker already drained
    for (;;) {
      Batch* batch = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return stop_ || (batch_ != nullptr && generation_ != seen);
        });
        if (stop_) return;
        batch = batch_;
        seen = generation_;
        ++batch->active;  // attach under the lock: for_index can't retire yet
      }
      drain(*batch);
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  int threads_ = 1;
};

}  // namespace ppsim::core
