// Exhaustive verification of self-stabilization for small populations.
//
// Under the uniformly random scheduler, an execution reaches a safe
// configuration with probability 1 if and only if every *bottom* strongly
// connected component (closed recurrent class) of the configuration graph
// consists solely of configurations that (a) satisfy the output specification
// and (b) share identical outputs (so outputs never change again — closure).
//
// This lets us machine-check the O(1)-state protocols (modk, elimination-only,
// P_OR) for every initial configuration at small n, instead of sampling.
//
// Requirements on the protocol adapter `M`:
//   using State  = ...;
//   using Params = ...;                       // exposes .n
//   static constexpr bool directed = ...;
//   static std::size_t num_states(const Params&);
//   static std::size_t pack(const State&, const Params&, int agent);
//   static State unpack(std::size_t, const Params&, int agent);
//   static void apply(State&, State&, const Params&);       // initiator, responder
// pack/unpack receive the agent's ring position so adapters can model fixed
// per-agent inputs (e.g. the 2-hop coloring consumed by P_OR) outside the
// enumerated state.
// Specification functor: Output spec(std::span<const State>, const Params&)
// where Output is EqualityComparable, plus bool is_legal(const Output&).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/ring.hpp"
#include "core/topology.hpp"

namespace ppsim::core {

namespace detail {

/// per_agent^n, or nullopt when the product overflows uint64 (a silent wrap
/// would let a checker "verify" a garbage state space). Shared by the
/// unreduced checker, its static capacity() probe, and the quotient checker.
[[nodiscard]] constexpr std::optional<std::uint64_t> checked_pow(
    std::uint64_t per_agent, int n) noexcept {
  std::uint64_t total = 1;
  for (int i = 0; i < n; ++i) {
    if (per_agent != 0 &&
        total > std::numeric_limits<std::uint64_t>::max() / per_agent)
      return std::nullopt;
    total *= per_agent;
  }
  return total;
}

}  // namespace detail

/// Adapters may expose a human-readable per-state formatter; without one,
/// describe_configuration falls back to the packed value ("q17").
template <typename M>
concept HasStateDescription =
    requires(const typename M::State& s, const typename M::Params& p) {
      { M::describe(s, p) } -> std::convertible_to<std::string>;
    };

struct CheckResult {
  bool ok = false;
  /// The state space exceeds what the checker can represent (per_agent^n
  /// overflows uint64, or the configuration count does not fit the 32-bit
  /// Tarjan index arrays). When set, `ok` is false and *nothing was
  /// verified* — the distinction matters: a capacity failure is "cannot
  /// check", not "checked and found a counterexample".
  bool capacity_exceeded = false;
  std::uint64_t num_configurations = 0;
  std::uint64_t num_bottom_sccs = 0;
  std::uint64_t num_bottom_configs = 0;
  /// A configuration inside an offending bottom SCC, if any.
  std::optional<std::uint64_t> counterexample;
  std::string reason;
};

template <typename M, typename Topo = RingTopology>
class ModelChecker {
  static_assert(TopologyLike<Topo>);

 public:
  using State = typename M::State;
  using Params = typename M::Params;
  using Topology = Topo;

  /// Largest configuration count the checker accepts: ids and components are
  /// packed into uint32 arrays with 0xFFFFFFFF reserved as the unset marker.
  static constexpr std::uint64_t kMaxConfigurations = 0xFFFFFFFEull;

  /// True iff a checker for `params` would accept the state space: per
  /// agent^n representable in uint64 and within min(node_budget,
  /// kMaxConfigurations) stored configurations. Callers probe this *before*
  /// constructing (the new checker bench auto-selects the largest certifiable
  /// n with it); a constructed checker reports the same verdict through
  /// capacity_exceeded().
  [[nodiscard]] static bool capacity(
      const Params& params,
      std::uint64_t node_budget = kMaxConfigurations) {
    const auto total = detail::checked_pow(M::num_states(params), params.n);
    return total.has_value() &&
           *total <= std::min(node_budget, kMaxConfigurations);
  }

  /// `node_budget` caps the number of configurations the checker will hold
  /// in its index arrays (12 bytes per configuration): exceeding it is a
  /// capacity failure up front, never an OOM mid-check. The structural
  /// kMaxConfigurations cap always applies on top.
  explicit ModelChecker(Params params,
                        std::uint64_t node_budget = kMaxConfigurations)
      : params_(std::move(params)), topo_(params_.n) {
    init_capacity(node_budget);
  }

  /// Explicit-topology constructor (topologies that carry more than n).
  ModelChecker(Topo topo, Params params,
               std::uint64_t node_budget = kMaxConfigurations)
      : params_(std::move(params)), topo_(std::move(topo)) {
    assert(topo_.n() == params_.n);
    init_capacity(node_budget);
  }

  [[nodiscard]] const Topo& topology() const noexcept { return topo_; }

 private:
  void init_capacity(std::uint64_t node_budget) {
    per_agent_ = M::num_states(params_);
    // per_agent^n with explicit overflow detection: a silent uint64 wrap
    // would make the checker "verify" a garbage state space. The uint32
    // Tarjan-index capacity and the caller's node budget are checked here
    // too so check() can refuse before allocating anything.
    if (const auto total = detail::checked_pow(per_agent_, params_.n)) {
      total_ = *total;
    } else {
      capacity_exceeded_ = true;
      capacity_reason_ =
          "state space capacity exceeded: per_agent^n overflows uint64";
    }
    if (!capacity_exceeded_ && total_ > kMaxConfigurations) {
      capacity_exceeded_ = true;
      capacity_reason_ =
          "state space capacity exceeded: configuration count does not fit "
          "the checker's 32-bit index arrays";
    }
    if (!capacity_exceeded_ && total_ > node_budget) {
      capacity_exceeded_ = true;
      capacity_reason_ =
          "state space capacity exceeded: " + std::to_string(total_) +
          " configurations over the node budget of " +
          std::to_string(node_budget);
    }
    if (capacity_exceeded_) total_ = 0;  // never a plausible-looking wrap
  }

 public:
  /// Configuration count, or 0 when the state space exceeds capacity (see
  /// capacity_exceeded()).
  [[nodiscard]] std::uint64_t num_configurations() const noexcept {
    return total_;
  }

  /// True when per_agent^n cannot be represented / indexed; check() then
  /// returns a CheckResult with capacity_exceeded set instead of verifying
  /// a truncated space.
  [[nodiscard]] bool capacity_exceeded() const noexcept {
    return capacity_exceeded_;
  }

  [[nodiscard]] std::vector<State> decode(std::uint64_t id) const {
    std::vector<State> config(static_cast<std::size_t>(params_.n));
    for (int i = 0; i < params_.n; ++i) {
      config[static_cast<std::size_t>(i)] =
          M::unpack(id % per_agent_, params_, i);
      id /= per_agent_;
    }
    return config;
  }

  [[nodiscard]] std::uint64_t encode(std::span<const State> config) const {
    std::uint64_t id = 0;
    for (int i = params_.n - 1; i >= 0; --i)
      id = id * per_agent_ +
           M::pack(config[static_cast<std::size_t>(i)], params_, i);
    return id;
  }

  /// Human-readable rendering of one configuration id: the per-agent state
  /// list, decoded through M::unpack. Uses the adapter's `describe(State,
  /// Params)` when it has one; otherwise prints the packed value per agent.
  [[nodiscard]] std::string describe_configuration(std::uint64_t id) const {
    const auto cfg = decode(id);
    std::string out = "configuration " + std::to_string(id) + ":";
    for (int i = 0; i < params_.n; ++i) {
      const State& s = cfg[static_cast<std::size_t>(i)];
      out += "\n  u_" + std::to_string(i) + ": ";
      if constexpr (HasStateDescription<M>) {
        out += M::describe(s, params_);
      } else {
        out += "q" + std::to_string(M::pack(s, params_, i));
      }
    }
    return out;
  }

  /// The decoded counterexample of a CheckResult, ready to print from tests
  /// and benches — self-stabilization bugs are debugged from the offending
  /// configuration, not from an opaque uint64.
  [[nodiscard]] std::string describe_counterexample(
      const CheckResult& res) const {
    if (!res.counterexample.has_value())
      return "(no counterexample: " +
             (res.reason.empty() ? std::string("check passed") : res.reason) +
             ")";
    return res.reason + "\n" + describe_configuration(*res.counterexample);
  }

  /// Successor configuration under arc `arc`. The initiator/responder
  /// mapping is Topo::endpoints — the same interface the Runner's scheduler
  /// draws through (RingTopology forwards to core::arc_endpoints). Reading
  /// one interface keeps the two aligned by construction on the ring, but
  /// is not by itself a proof for every topology — per-topology
  /// engine/checker agreement is pinned by
  /// tests/core/topology_drift_test.cpp.
  [[nodiscard]] std::uint64_t successor(std::uint64_t id, int arc) const {
    std::vector<State> config = decode(id);
    const ArcEndpoints e = topo_.endpoints(arc);
    M::apply(config[static_cast<std::size_t>(e.initiator)],
             config[static_cast<std::size_t>(e.responder)], params_);
    return encode(config);
  }

  /// Verify: every bottom SCC consists of spec-identical, legal-output
  /// configurations. `spec` maps a configuration to its output value;
  /// `legal` decides whether that output satisfies the problem.
  template <typename Spec, typename Legal>
  [[nodiscard]] CheckResult check(Spec&& spec, Legal&& legal) const {
    CheckResult res;
    if (capacity_exceeded_) {
      res.capacity_exceeded = true;
      res.reason = capacity_reason_;
      return res;
    }
    res.num_configurations = total_;
    const int arcs = topo_.arc_count(M::directed);

    // Iterative Tarjan SCC; successors computed on the fly (memory-light).
    // SCCs pop in reverse topological order, so when an SCC is emitted every
    // successor outside it already has a component id — an SCC is *bottom*
    // iff no member has a successor with a different component id.
    constexpr std::uint32_t kUnset = 0xFFFFFFFFu;
    std::vector<std::uint32_t> index(total_, kUnset);
    std::vector<std::uint32_t> lowlink(total_);
    std::vector<std::uint32_t> comp(total_, kUnset);
    std::vector<std::uint64_t> stack;
    std::uint32_t next_index = 0;
    std::uint32_t next_comp = 0;

    struct Frame {
      std::uint64_t v;
      int arc;  // next arc to explore
    };
    std::vector<Frame> call_stack;
    std::vector<std::uint64_t> scc;  // reused buffer

    for (std::uint64_t root = 0; root < total_; ++root) {
      if (index[root] != kUnset) continue;
      call_stack.push_back({root, 0});
      index[root] = lowlink[root] = next_index++;
      stack.push_back(root);

      while (!call_stack.empty()) {
        Frame& f = call_stack.back();
        if (f.arc < arcs) {
          const std::uint64_t w = successor(f.v, f.arc);
          ++f.arc;
          if (w == f.v) continue;  // self-loop: irrelevant to SCC structure
          if (index[w] == kUnset) {
            index[w] = lowlink[w] = next_index++;
            stack.push_back(w);
            call_stack.push_back({w, 0});
          } else if (comp[w] == kUnset) {  // still on Tarjan stack
            lowlink[f.v] = std::min(lowlink[f.v], index[w]);
          }
          continue;
        }
        // Post-order: pop SCC if root of one.
        const std::uint64_t v = f.v;
        call_stack.pop_back();
        if (!call_stack.empty())
          lowlink[call_stack.back().v] =
              std::min(lowlink[call_stack.back().v], lowlink[v]);
        if (lowlink[v] != index[v]) continue;

        scc.clear();
        const std::uint32_t cid = next_comp++;
        for (;;) {
          const std::uint64_t w = stack.back();
          stack.pop_back();
          comp[w] = cid;
          scc.push_back(w);
          if (w == v) break;
        }
        bool bottom = true;
        for (std::uint64_t m : scc) {
          for (int a = 0; a < arcs; ++a) {
            if (comp[successor(m, a)] != cid) {
              bottom = false;
              break;
            }
          }
          if (!bottom) break;
        }
        if (!bottom) continue;

        ++res.num_bottom_sccs;
        res.num_bottom_configs += scc.size();
        const auto ref_cfg = decode(scc.front());
        const auto ref_out = spec(std::span<const State>(ref_cfg), params_);
        if (!legal(ref_out)) {
          res.counterexample = scc.front();
          res.reason = "bottom SCC with illegal output";
          return res;
        }
        for (std::uint64_t m : scc) {
          const auto cfg = decode(m);
          if (spec(std::span<const State>(cfg), params_) != ref_out) {
            res.counterexample = m;
            res.reason = "bottom SCC with non-constant outputs";
            return res;
          }
        }
      }
    }
    res.ok = true;
    return res;
  }

 private:
  Params params_;
  Topo topo_;  ///< after params_: the default ctor builds it from params_.n
  std::uint64_t per_agent_ = 0;
  std::uint64_t total_ = 0;
  bool capacity_exceeded_ = false;
  std::string capacity_reason_;
};

}  // namespace ppsim::core
