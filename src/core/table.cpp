#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ppsim::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row_values(const std::vector<double>& cells) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(fmt_double(v));
  return add_row(std::move(out));
}

void Table::print(std::ostream& os, bool markdown) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << (markdown ? "| " : "  ");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(widths[c] - cell.size(), ' ');
      os << (markdown ? " | " : "  ");
    }
    os << '\n';
  };

  print_row(headers_);
  if (markdown) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << std::string(widths[c] + 2, '-') << "|";
    os << '\n';
  } else {
    std::size_t total = 2;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string(bool markdown) const {
  std::ostringstream os;
  print(os, markdown);
  return os.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string fmt_u64(unsigned long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", v);
  return buf;
}

}  // namespace ppsim::core
