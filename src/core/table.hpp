// Minimal fixed-width / markdown table printer for the bench harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ppsim::core {

/// Accumulates rows of strings and prints them aligned, optionally in
/// GitHub-markdown style (used verbatim in EXPERIMENTS.md).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with %g-style output.
  Table& add_row_values(const std::vector<double>& cells);

  void print(std::ostream& os, bool markdown = true) const;
  [[nodiscard]] std::string to_string(bool markdown = true) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
[[nodiscard]] std::string fmt_double(double v, int precision = 3);
[[nodiscard]] std::string fmt_u64(unsigned long long v);

}  // namespace ppsim::core
