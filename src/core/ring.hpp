// Ring-topology index arithmetic shared by all protocols and checkers.
//
// The population is V = {u_0, ..., u_{n-1}} with arcs (u_i, u_{i+1 mod n}).
// Agents themselves are anonymous; indices exist only in the harness, exactly
// as in the paper ("we use the indices of the agents only for simplicity").
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace ppsim::core {

/// i + d (mod n) for 0 <= i < n and d possibly negative or > n.
[[nodiscard]] constexpr int ring_add(int i, long long d, int n) noexcept {
  assert(n > 0);
  long long v = (static_cast<long long>(i) + d) % n;
  if (v < 0) v += n;
  return static_cast<int>(v);
}

/// Clockwise (left-to-right) distance from i to j on a ring of size n.
[[nodiscard]] constexpr int ring_distance(int i, int j, int n) noexcept {
  assert(n > 0);
  int d = j - i;
  if (d < 0) d += n;
  return d;
}

/// Endpoints of one interaction arc, in scheduler order.
struct ArcEndpoints {
  int initiator = 0;
  int responder = 0;
};

/// The initiator/responder arc mapping of the *ring* scheduler, shared by
/// Runner, EnsembleRunner and ModelChecker (via core::RingTopology) so the
/// random scheduler and the exhaustive checker read one definition. Sharing
/// a function does not by itself prevent drift on other topologies — each
/// Topology supplies its own endpoints(), and engine/checker agreement is
/// pinned per topology by tests/core/topology_drift_test.cpp.
///
/// Arcs [0, n) are the directed arcs e_i = (u_i, u_{i+1 mod n}): the *left*
/// agent is the initiator, matching the paper's "l is the initiator and r is
/// the responder". On the undirected ring there are 2n arcs; arc n + i is the
/// reverse of e_i, i.e. (u_{i+1 mod n} initiator, u_i responder).
[[nodiscard]] constexpr ArcEndpoints arc_endpoints(int arc, int n) noexcept {
  assert(n > 0 && arc >= 0 && arc < 2 * n);
  if (arc < n) {
    return {arc, arc + 1 == n ? 0 : arc + 1};
  }
  const int resp = arc - n;
  return {resp + 1 == n ? 0 : resp + 1, resp};
}

/// Arc id of `arc` after rotating every agent index by `delta` (the ring
/// automorphism u_i -> u_{i+delta}). Forward arcs map to forward arcs and
/// reversed arcs to reversed arcs, so the uniform scheduler is invariant
/// under rotation — the soundness premise of the symmetry-reduced checker
/// (src/verification/quotient.hpp). Verified against arc_endpoints in
/// tests/core/ring_test.cpp.
[[nodiscard]] constexpr int rotate_arc(int arc, int delta, int n) noexcept {
  assert(n > 0 && arc >= 0 && arc < 2 * n);
  if (arc < n) return ring_add(arc, delta, n);
  return n + ring_add(arc - n, delta, n);
}

/// Arc id of `arc` under the reflection u_i -> u_{n-1-i}. Reflection swaps
/// the two orientations of every edge, so it maps forward arcs to reversed
/// arcs and back — an automorphism of the *undirected* scheduler's arc set
/// (all 2n arcs, uniform) but not of the directed one. An involution.
[[nodiscard]] constexpr int reflect_arc(int arc, int n) noexcept {
  assert(n > 0 && arc >= 0 && arc < 2 * n);
  // n - 2 - arc can be negative, so it rides in ring_add's delta argument
  // (the only one allowed out of range).
  if (arc < n) return n + ring_add(0, n - 2 - arc, n);
  return ring_add(0, n - 2 - (arc - n), n);
}

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] constexpr int ceil_log2(std::uint64_t x) noexcept {
  int bits = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// Interaction sequence builders from Section 2 of the paper.
/// Arc e_i is the interaction (u_i, u_{i+1}); a sequence is a list of arc ids.
///
/// seq_R(i, j) = e_i, e_{i+1}, ..., e_{i+j-1}   (a clockwise sweep)
/// Precondition: length >= 0 (asserted; a negative length is a caller bug,
/// not an empty sweep).
[[nodiscard]] inline std::vector<int> seq_r(int start, int length, int n) {
  assert(length >= 0);
  std::vector<int> out;
  if (length <= 0) return out;
  out.reserve(static_cast<std::size_t>(length));
  for (int k = 0; k < length; ++k) out.push_back(ring_add(start, k, n));
  return out;
}

/// seq_L(i, j) = e_{i-1}, e_{i-2}, ..., e_{i-j}  (a counter-clockwise sweep)
/// Precondition: length >= 0 (asserted).
[[nodiscard]] inline std::vector<int> seq_l(int start, int length, int n) {
  assert(length >= 0);
  std::vector<int> out;
  if (length <= 0) return out;
  out.reserve(static_cast<std::size_t>(length));
  for (int k = 1; k <= length; ++k) out.push_back(ring_add(start, -k, n));
  return out;
}

/// Concatenation helper: s . t
[[nodiscard]] inline std::vector<int> seq_concat(std::vector<int> s,
                                                 const std::vector<int>& t) {
  s.insert(s.end(), t.begin(), t.end());
  return s;
}

/// s^k: the k-times repetition of s. Precondition: times >= 0 (asserted).
/// The reserve arithmetic runs entirely in std::size_t so a large `times`
/// cannot overflow an int product before the cast; repeating an empty
/// sequence any number of times is an empty sequence without touching the
/// allocator.
[[nodiscard]] inline std::vector<int> seq_repeat(const std::vector<int>& s,
                                                 int times) {
  assert(times >= 0);
  std::vector<int> out;
  if (times <= 0 || s.empty()) return out;
  out.reserve(s.size() * static_cast<std::size_t>(times));
  for (int i = 0; i < times; ++i) out.insert(out.end(), s.begin(), s.end());
  return out;
}

}  // namespace ppsim::core
