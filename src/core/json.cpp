#include "core/json.hpp"

#include <cassert>
#include <cinttypes>
#include <cmath>

namespace ppsim::core {

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_) std::fputc(',', out_);
  if (!compact_ && !stack_.empty()) {
    std::fputc('\n', out_);
    for (std::size_t i = 0; i < stack_.size(); ++i) std::fputs("  ", out_);
  }
  first_in_scope_ = false;
}

void JsonWriter::write_string(const char* s) {
  std::fputc('"', out_);
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        std::fputs("\\\"", out_);
        break;
      case '\\':
        std::fputs("\\\\", out_);
        break;
      case '\n':
        std::fputs("\\n", out_);
        break;
      case '\t':
        std::fputs("\\t", out_);
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(out_, "\\u%04x", c);
        } else {
          std::fputc(c, out_);
        }
    }
  }
  std::fputc('"', out_);
}

void JsonWriter::begin_object() {
  separate();
  std::fputc('{', out_);
  stack_.push_back('{');
  first_in_scope_ = true;
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == '{' && !after_key_);
  const bool empty = first_in_scope_;
  stack_.pop_back();
  if (!compact_ && !empty) {
    std::fputc('\n', out_);
    for (std::size_t i = 0; i < stack_.size(); ++i) std::fputs("  ", out_);
  }
  std::fputc('}', out_);
  first_in_scope_ = false;
}

void JsonWriter::begin_array() {
  separate();
  std::fputc('[', out_);
  stack_.push_back('[');
  first_in_scope_ = true;
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == '[' && !after_key_);
  const bool empty = first_in_scope_;
  stack_.pop_back();
  if (!compact_ && !empty) {
    std::fputc('\n', out_);
    for (std::size_t i = 0; i < stack_.size(); ++i) std::fputs("  ", out_);
  }
  std::fputc(']', out_);
  first_in_scope_ = false;
}

void JsonWriter::key(const char* name) {
  assert(!stack_.empty() && stack_.back() == '{' && !after_key_);
  separate();
  write_string(name);
  std::fputs(compact_ ? ":" : ": ", out_);
  after_key_ = true;
}

void JsonWriter::value(const char* s) {
  separate();
  write_string(s);
}

void JsonWriter::value(bool b) {
  separate();
  std::fputs(b ? "true" : "false", out_);
}

void JsonWriter::value(double d) {
  separate();
  if (std::isfinite(d)) {
    std::fprintf(out_, "%.10g", d);
  } else {
    std::fputs("null", out_);  // inf/nan are not representable in JSON
  }
}

void JsonWriter::value(std::int64_t v) {
  separate();
  std::fprintf(out_, "%" PRId64, v);
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  std::fprintf(out_, "%" PRIu64, v);
}

void JsonWriter::finish() {
  assert(stack_.empty() && !after_key_);
  std::fputc('\n', out_);
}

}  // namespace ppsim::core
