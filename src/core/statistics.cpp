#include "core/statistics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

namespace ppsim::core {

namespace {

double interp_percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  double ss = 0.0;
  for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(ss / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  s.p25 = interp_percentile(sorted, 0.25);
  s.median = interp_percentile(sorted, 0.50);
  s.p75 = interp_percentile(sorted, 0.75);
  s.p90 = interp_percentile(sorted, 0.90);
  return s;
}

Summary summarize_u64(std::span<const std::uint64_t> sample) {
  std::vector<double> d(sample.size());
  std::transform(sample.begin(), sample.end(), d.begin(),
                 [](std::uint64_t v) { return static_cast<double>(v); });
  return summarize(d);
}

double percentile(std::span<const double> sample, double q) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return interp_percentile(sorted, q);
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  LinearFit f;
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double sst = syy - sy * sy / n;
  double sse = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (f.intercept + f.slope * x[i]);
    sse += e * e;
  }
  f.r2 = sst > 0 ? 1.0 - sse / sst : 1.0;
  return f;
}

PowerFit fit_power(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  PowerFit p;
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    // `!(v > 0)` also rejects NaN; isfinite rejects +inf coordinates.
    if (!(x[i] > 0.0) || !(y[i] > 0.0) || !std::isfinite(x[i]) ||
        !std::isfinite(y[i])) {
      ++p.skipped;
      continue;
    }
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  if (lx.size() < 2) {
    p.exponent = p.constant = p.r2 =
        std::numeric_limits<double>::quiet_NaN();
    return p;
  }
  const LinearFit lin = fit_linear(lx, ly);
  p.exponent = lin.slope;
  p.constant = std::exp(lin.intercept);
  p.r2 = lin.r2;
  p.valid = true;
  return p;
}

double chi_square_uniform(std::span<const std::uint64_t> counts) {
  if (counts.empty()) return 0.0;
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  if (expected <= 0.0) return 0.0;
  double chi = 0.0;
  for (std::uint64_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi += d * d / expected;
  }
  return chi;
}

std::string format_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

}  // namespace ppsim::core
