// Deterministic failpoint subsystem — fault injection for the campaign
// service's own I/O paths (the infrastructure that measures protocol
// self-stabilization must itself tolerate the fault classes it injects).
//
// A *failpoint* is a named site in syscall-adjacent code. The site is an
// always-compiled call to core::failpoint(name) whose fast path is one
// relaxed atomic load (nothing armed -> no lock, no lookup, no outcome);
// arming a site attaches a *schedule* that decides, hit by hit, whether the
// site reports an injected failure to its caller. The caller — not this
// file — translates the outcome into its own failure idiom (a negative
// ::write with errno set, a short fwrite, a thrown TransientError), so the
// recovery code under test runs exactly the branch a real kernel failure
// would take.
//
// Schedules are deterministic: counted units fire an exact number of times
// in declaration order, and the probabilistic unit draws from a dedicated
// Xoshiro256pp stream seeded via stream_seed(seed, streams::kFailpoint) —
// same seed, same firing pattern, independent of every simulation stream.
//
// Spec grammar (programmatic arm() and the PPSIM_FAILPOINTS env var):
//
//   config := site '=' spec (';' site '=' spec)*
//   spec   := unit ('+' unit)*           units consumed front to back
//   unit   := [prefix 'x'] action        no prefix = fire once
//   prefix := <N>                        fire the action N times
//           | '*'                        fire forever (must be last)
//           | 'p'<permille>'@'<seed>     fire each hit with probability
//                                        permille/1000, drawn from the
//                                        seeded stream (must be last)
//   action := 'eintr' | 'eagain' | 'enospc' | 'eio'   errno shorthands
//           | 'errno:<N>'                any errno value
//           | 'short:<bytes>'            short write: cap the op at <bytes>
//           | 'delay:<ms>'               sleep, then run the op normally
//           | 'skip'                     pass <N> hits without firing
//           | 'throw'                    non-transient failure (the caller
//                                        throws its abort-class exception)
//
// Examples:
//   service.ckpt.write=enospc                 fail-once ENOSPC
//   service.file_sink.write=2xskip+3xeintr    pass 2 hits, then 3 EINTRs
//   service.fd_sink.write=2xshort:1           two 1-byte short writes
//   service.worker.shard=p250@42xeintr        ~25% of shard attempts fail,
//                                             pattern fixed by seed 42
//
// The site-name registry below is the enumerable contract: arm() refuses a
// name that is not registered (typo-proof), and tests iterate kAll to prove
// every site is reachable and recoverable
// (tests/core/failpoint_test.cpp, tests/service/self_healing_test.cpp).
//
// Threading: evaluate/arm/disarm are mutex-serialized (the armed path is a
// test/chaos path; the unarmed fast path never takes the lock). Delay
// actions sleep *outside* the lock.
#pragma once

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "core/stream_tags.hpp"

namespace ppsim::core {

namespace failpoints {

// --- Site-name registry (append new sites here AND in kAll) ---------------

/// FdFrameSink::write's ::write(2) call (service/campaign.hpp).
inline constexpr const char* kFdSinkWrite = "service.fd_sink.write";
/// FileFrameSink::write's fwrite call.
inline constexpr const char* kFileSinkWrite = "service.file_sink.write";
/// FileFrameSink::flush's fflush call.
inline constexpr const char* kFileSinkFlush = "service.file_sink.flush";
/// FileFrameSink::truncate_to's ftruncate call.
inline constexpr const char* kFileSinkTruncate = "service.file_sink.truncate";
/// save_checkpoint's fopen of <path>.tmp (service/campaign_io.hpp).
inline constexpr const char* kCkptOpen = "service.ckpt.open";
/// save_checkpoint's fwrite of the encoded document.
inline constexpr const char* kCkptWrite = "service.ckpt.write";
/// save_checkpoint's fsync of the tmp file (the durability barrier).
inline constexpr const char* kCkptFsync = "service.ckpt.fsync";
/// save_checkpoint's rename(2) commit.
inline constexpr const char* kCkptRename = "service.ckpt.rename";
/// save_checkpoint's fsync of the parent directory (rename durability).
inline constexpr const char* kCkptDirFsync = "service.ckpt.dir_fsync";
/// load_checkpoint's fread loop.
inline constexpr const char* kCkptRead = "service.ckpt.read";
/// One hit per shard *attempt* in CampaignService's worker lambda; an
/// errno-class outcome throws service::TransientError (retried up to
/// shard_max_attempts, then quarantined), a throw-class outcome aborts.
inline constexpr const char* kWorkerShard = "service.worker.shard";

/// Every registered site, for arm()-time validation and for tests that
/// enumerate the injection surface.
inline constexpr const char* kAll[] = {
    kFdSinkWrite,  kFileSinkWrite, kFileSinkFlush, kFileSinkTruncate,
    kCkptOpen,     kCkptWrite,     kCkptFsync,     kCkptRename,
    kCkptDirFsync, kCkptRead,      kWorkerShard,
};
inline constexpr int kCount = static_cast<int>(sizeof(kAll) / sizeof(kAll[0]));

[[nodiscard]] inline bool known_site(std::string_view site) noexcept {
  for (const char* s : kAll)
    if (site == s) return true;
  return false;
}

}  // namespace failpoints

/// What an armed site tells its caller to do for this hit.
enum class FailAction {
  kNone,        ///< not firing: run the real operation
  kErrno,       ///< simulate a failed syscall: errno = err, return -1/0
  kShortWrite,  ///< run the real operation, capped at `arg` bytes
  kDelay,       ///< already slept `arg` ms; run the real operation
  kThrow,       ///< non-transient: caller throws its abort-class exception
};

struct FailOutcome {
  FailAction action = FailAction::kNone;
  int err = 0;            ///< errno value for kErrno
  std::uint64_t arg = 0;  ///< byte cap for kShortWrite, ms for kDelay
  [[nodiscard]] bool fired() const noexcept {
    return action != FailAction::kNone;
  }
};

class FailpointRegistry {
 public:
  static FailpointRegistry& instance() {
    static FailpointRegistry reg;
    return reg;
  }

  /// Arm `site` with a schedule spec (grammar in the header comment).
  /// Throws std::invalid_argument on an unknown site or malformed spec —
  /// a chaos schedule with a typo'd site must fail loudly, not silently
  /// inject nothing.
  void arm(std::string_view site, std::string_view spec) {
    if (!failpoints::known_site(site))
      throw std::invalid_argument("failpoint: unknown site '" +
                                  std::string(site) + "'");
    SiteState st;
    st.units = parse_spec(spec);
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = sites_.insert_or_assign(std::string(site),
                                                  std::move(st));
    (void)it;
    if (inserted) armed_n_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Arm every `site=spec` pair of a ';'-separated config string. Returns
  /// the number of sites armed. Empty string arms nothing.
  int configure(std::string_view config) {
    int armed = 0;
    std::size_t at = 0;
    while (at < config.size()) {
      std::size_t end = config.find(';', at);
      if (end == std::string_view::npos) end = config.size();
      const std::string_view entry = config.substr(at, end - at);
      at = end + 1;
      if (entry.empty()) continue;
      const std::size_t eq = entry.find('=');
      if (eq == std::string_view::npos || eq == 0 || eq + 1 >= entry.size())
        throw std::invalid_argument(
            "failpoint: config entry is not site=spec: '" +
            std::string(entry) + "'");
      arm(entry.substr(0, eq), entry.substr(eq + 1));
      ++armed;
    }
    return armed;
  }

  /// Arm from the PPSIM_FAILPOINTS environment variable (unset/empty arms
  /// nothing). The chaos harness's activation path.
  int configure_from_env() {
    const char* cfg = std::getenv("PPSIM_FAILPOINTS");
    return cfg == nullptr ? 0 : configure(cfg);
  }

  void disarm(std::string_view site) {
    std::lock_guard<std::mutex> lock(mu_);
    if (sites_.erase(std::string(site)) > 0)
      armed_n_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Disarm every site and zero every counter — test isolation.
  void disarm_all() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_n_.fetch_sub(static_cast<int>(sites_.size()),
                       std::memory_order_relaxed);
    sites_.clear();
    hits_.clear();
    fired_.clear();
  }

  [[nodiscard]] bool armed(std::string_view site) const {
    std::lock_guard<std::mutex> lock(mu_);
    return sites_.find(std::string(site)) != sites_.end();
  }

  [[nodiscard]] std::vector<std::string> armed_sites() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(sites_.size());
    for (const auto& [name, st] : sites_) out.push_back(name);
    return out;
  }

  /// Hits at `site` while armed (fired or not). Counters survive disarm —
  /// the chaos ledger reads them after the run.
  [[nodiscard]] std::uint64_t hits(std::string_view site) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = hits_.find(std::string(site));
    return it == hits_.end() ? 0 : it->second;
  }
  /// Injected failures actually delivered at `site` (delays included).
  [[nodiscard]] std::uint64_t fired(std::string_view site) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = fired_.find(std::string(site));
    return it == fired_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t fired_total() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t t = 0;
    for (const auto& [name, n] : fired_) t += n;
    return t;
  }

  /// Fast armed-anywhere probe — the one load on the unarmed hot path.
  [[nodiscard]] bool any_armed() const noexcept {
    return armed_n_.load(std::memory_order_relaxed) > 0;
  }

  /// Cold path: consume one hit at `site`. Performs kDelay sleeps here
  /// (outside the lock) so every call site handles delay-then-proceed
  /// uniformly.
  FailOutcome hit(const char* site) {
    FailOutcome out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = sites_.find(site);
      if (it == sites_.end()) return out;
      ++hits_[it->first];
      out = it->second.next();
      if (it->second.exhausted()) {
        sites_.erase(it);
        armed_n_.fetch_sub(1, std::memory_order_relaxed);
      }
      if (out.fired()) ++fired_[site];
    }
    if (out.action == FailAction::kDelay && out.arg > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(out.arg));
    return out;
  }

 private:
  struct Unit {
    enum class Trigger { kCount, kForever, kRandom };
    Trigger trigger = Trigger::kCount;
    std::uint64_t remaining = 1;  ///< kCount only
    std::uint32_t permille = 0;   ///< kRandom only
    Xoshiro256pp rng;             ///< kRandom only; seeded at parse time
    FailAction action = FailAction::kNone;  ///< kNone = skip (pass the hit)
    int err = 0;
    std::uint64_t arg = 0;
  };

  struct SiteState {
    std::vector<Unit> units;
    std::size_t at = 0;  ///< front unit

    [[nodiscard]] bool exhausted() const noexcept {
      return at >= units.size();
    }

    FailOutcome next() {
      FailOutcome out;
      if (exhausted()) return out;
      Unit& u = units[at];
      bool fire = true;
      switch (u.trigger) {
        case Unit::Trigger::kCount:
          if (--u.remaining == 0) ++at;
          break;
        case Unit::Trigger::kForever:
          break;
        case Unit::Trigger::kRandom:
          fire = u.rng.bounded(1000) < u.permille;
          break;
      }
      if (!fire || u.action == FailAction::kNone) return out;
      out.action = u.action;
      out.err = u.err;
      out.arg = u.arg;
      return out;
    }
  };

  [[noreturn]] static void bad_spec(std::string_view spec,
                                    const std::string& why) {
    throw std::invalid_argument("failpoint: bad spec '" + std::string(spec) +
                                "': " + why);
  }

  [[nodiscard]] static std::uint64_t parse_u64(std::string_view s,
                                               std::string_view spec,
                                               const std::string& what) {
    if (s.empty()) bad_spec(spec, "missing " + what);
    std::uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') bad_spec(spec, "non-numeric " + what);
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  }

  [[nodiscard]] static std::vector<Unit> parse_spec(std::string_view spec) {
    std::vector<Unit> units;
    std::size_t at = 0;
    while (at <= spec.size()) {
      std::size_t end = spec.find('+', at);
      if (end == std::string_view::npos) end = spec.size();
      std::string_view term = spec.substr(at, end - at);
      at = end + 1;
      if (term.empty()) bad_spec(spec, "empty unit");
      if (!units.empty() &&
          units.back().trigger != Unit::Trigger::kCount)
        bad_spec(spec, "'*' / 'p' units never exhaust, so they must be last");

      Unit u;
      const std::size_t x = term.find('x');
      if (x != std::string_view::npos && x > 0) {
        const std::string_view prefix = term.substr(0, x);
        bool is_prefix = true;
        if (prefix == "*") {
          u.trigger = Unit::Trigger::kForever;
        } else if (prefix[0] == 'p') {
          const std::size_t sep = prefix.find('@');
          if (sep == std::string_view::npos)
            bad_spec(spec, "'p' prefix needs <permille>@<seed>");
          const std::uint64_t pm = parse_u64(prefix.substr(1, sep - 1), spec,
                                             "permille");
          if (pm > 1000) bad_spec(spec, "permille above 1000");
          const std::uint64_t seed =
              parse_u64(prefix.substr(sep + 1), spec, "seed");
          u.trigger = Unit::Trigger::kRandom;
          u.permille = static_cast<std::uint32_t>(pm);
          u.rng = Xoshiro256pp(stream_seed(seed, streams::kFailpoint));
        } else if (prefix[0] >= '0' && prefix[0] <= '9') {
          u.remaining = parse_u64(prefix, spec, "count");
          if (u.remaining == 0) bad_spec(spec, "count must be >= 1");
        } else {
          is_prefix = false;  // the 'x' belonged to the action name
        }
        if (is_prefix) term = term.substr(x + 1);
      }

      std::string_view arg;
      std::string_view name = term;
      if (const std::size_t colon = term.find(':');
          colon != std::string_view::npos) {
        name = term.substr(0, colon);
        arg = term.substr(colon + 1);
      }
      if (name == "eintr") {
        u.action = FailAction::kErrno;
        u.err = EINTR;
      } else if (name == "eagain") {
        u.action = FailAction::kErrno;
        u.err = EAGAIN;
      } else if (name == "enospc") {
        u.action = FailAction::kErrno;
        u.err = ENOSPC;
      } else if (name == "eio") {
        u.action = FailAction::kErrno;
        u.err = EIO;
      } else if (name == "errno") {
        u.action = FailAction::kErrno;
        u.err = static_cast<int>(parse_u64(arg, spec, "errno value"));
      } else if (name == "short") {
        u.action = FailAction::kShortWrite;
        u.arg = parse_u64(arg, spec, "short-write byte cap");
      } else if (name == "delay") {
        u.action = FailAction::kDelay;
        u.arg = parse_u64(arg, spec, "delay ms");
      } else if (name == "skip") {
        u.action = FailAction::kNone;
      } else if (name == "throw") {
        u.action = FailAction::kThrow;
      } else {
        bad_spec(spec, "unknown action '" + std::string(name) + "'");
      }
      units.push_back(std::move(u));
    }
    if (units.empty()) bad_spec(spec, "empty spec");
    return units;
  }

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  std::map<std::string, std::uint64_t, std::less<>> hits_;
  std::map<std::string, std::uint64_t, std::less<>> fired_;
  std::atomic<int> armed_n_{0};
};

/// The always-compiled site probe. One relaxed load when nothing is armed
/// anywhere; the registry lock is only taken on the armed (chaos/test)
/// path.
[[nodiscard]] inline FailOutcome failpoint(const char* site) {
  FailpointRegistry& reg = FailpointRegistry::instance();
  if (!reg.any_armed()) return {};
  return reg.hit(site);
}

}  // namespace ppsim::core
