// Sampled time series of configuration metrics — used to render convergence
// profiles (how leader count, detection-mode population, signal population
// and distance-to-perfection evolve during stabilization).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace ppsim::core {

/// A named, uniformly sampled series of doubles.
class TimeSeries {
 public:
  TimeSeries(std::string name, std::uint64_t sample_every)
      : name_(std::move(name)), sample_every_(sample_every) {}

  void record(double v) { values_.push_back(v); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t sample_every() const noexcept {
    return sample_every_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  /// Step index of the last sample where the value differs from the final
  /// value (useful for "when did this metric settle").
  [[nodiscard]] std::uint64_t settle_step() const {
    if (values_.empty()) return 0;
    const double last = values_.back();
    for (std::size_t i = values_.size(); i-- > 0;) {
      if (values_[i] != last) return (i + 1) * sample_every_;
    }
    return 0;
  }

  /// Unicode-free ASCII sparkline (height 1, width = min(values, width)).
  [[nodiscard]] std::string sparkline(int width = 72) const {
    if (values_.empty()) return "(empty)";
    static constexpr char levels[] = " .:-=+*#%@";
    const double lo = *std::min_element(values_.begin(), values_.end());
    const double hi = *std::max_element(values_.begin(), values_.end());
    const double span = hi > lo ? hi - lo : 1.0;
    std::string out;
    const std::size_t w =
        std::min<std::size_t>(static_cast<std::size_t>(width),
                              values_.size());
    for (std::size_t i = 0; i < w; ++i) {
      const std::size_t idx = i * values_.size() / w;
      const int level = static_cast<int>((values_[idx] - lo) / span * 9.0);
      out += levels[std::clamp(level, 0, 9)];
    }
    return out;
  }

 private:
  std::string name_;
  std::uint64_t sample_every_;
  std::vector<double> values_;
};

/// A bundle of series sampled in lockstep; prints a profile block.
/// (Series live in a deque so references returned by add() stay valid as
/// more series are added.)
class Profile {
 public:
  explicit Profile(std::uint64_t sample_every)
      : sample_every_(sample_every) {}

  TimeSeries& add(std::string name) {
    series_.emplace_back(std::move(name), sample_every_);
    return series_.back();
  }

  [[nodiscard]] std::uint64_t sample_every() const noexcept {
    return sample_every_;
  }
  [[nodiscard]] const std::deque<TimeSeries>& series() const noexcept {
    return series_;
  }

  [[nodiscard]] std::string render(int width = 72) const {
    std::string out;
    std::size_t widest = 0;
    for (const auto& s : series_) widest = std::max(widest, s.name().size());
    for (const auto& s : series_) {
      out += s.name();
      out.append(widest - s.name().size() + 2, ' ');
      out += s.sparkline(width);
      out += '\n';
    }
    return out;
  }

 private:
  std::uint64_t sample_every_;
  std::deque<TimeSeries> series_;
};

}  // namespace ppsim::core
