// Tiny streaming JSON writer.
//
// Grew up in bench/ as the BENCH_*.json artifact writer; promoted to core
// so the campaign service (src/service/) can stream result frames through
// exactly the same serializer the bench artifacts use — one JSON dialect,
// one escaping routine, one set of number formats across every artifact the
// repo emits (bench::JsonWriter remains as an alias).
//
// Two layout modes:
//   * pretty (default) — two-space indentation, one element per line; the
//     committed BENCH_*.json artifacts are written this way and their bytes
//     are unchanged by the move.
//   * compact — no newlines or indentation inside the document; finish()
//     still terminates with a single '\n'. This is the newline-delimited-
//     JSON (NDJSON) framing mode: one document per line, so a stream
//     consumer can split frames on '\n' without a JSON parser.
//
// Structural misuse (value with a dangling key, unbalanced scopes) trips an
// assert in debug builds. Scope is deliberately minimal — objects, arrays,
// strings, bools, int64/uint64/double.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ppsim::core {

class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* out, bool compact = false)
      : out_(out), compact_(compact) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const char* name);

  void value(const char* s);
  void value(const std::string& s) { value(s.c_str()); }
  void value(bool b);
  void value(double d);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }

  /// key + value in one call.
  template <typename T>
  void field(const char* name, const T& v) {
    key(name);
    value(v);
  }

  /// Terminates the document with a trailing newline (the NDJSON frame
  /// delimiter in compact mode).
  void finish();

 private:
  void separate();
  void write_string(const char* s);

  std::FILE* out_;
  bool compact_ = false;        ///< NDJSON mode: no newlines inside the doc
  std::vector<char> stack_;     ///< '{' or '[' per open scope
  bool first_in_scope_ = true;  ///< no comma needed before the next element
  bool after_key_ = false;      ///< next value belongs to a pending key
};

}  // namespace ppsim::core
