// Execution engine: drives a population protocol on a ring under either the
// uniformly random scheduler of the paper or a caller-supplied deterministic
// interaction sequence (for Lemma-2.3-style tests).
//
// Protocol concept (checked via `requires`):
//
//   struct P {
//     using State  = ...;              // value-semantic agent state
//     using Params = ...;              // protocol parameters (must expose .n)
//     static constexpr bool directed = true;   // directed ring? (false: 2n arcs)
//     static void apply(State& initiator, State& responder, const Params&);
//     // Optional (enables leader tracking and the Omega? oracle):
//     static bool is_leader(const State&, const Params&);
//     // Optional (oracle protocols): the runner passes an InteractionContext.
//     static void apply(State&, State&, const Params&, const InteractionContext&);
//   };
//
// Initiator/responder mapping on the directed ring: arc e_i is the interaction
// (u_i, u_{i+1}) — the *left* agent is the initiator, matching the paper's
// "l is the initiator and r is the responder". On the undirected ring there
// are 2n arcs: e_i and its reverse (u_{i+1}, u_i), each with probability 1/2n.
// The mapping itself lives in core/ring.hpp (`arc_endpoints`), shared with
// the exhaustive ModelChecker so scheduler and checker cannot drift.
//
// Two scheduler paths share one RNG stream and are bit-identical:
//
//  * `run_unbatched(k)` — the reference path: one `bounded()` draw per step,
//    unconditional before/after predicate census (the engine as originally
//    written).
//  * `run(k)` — the fused fast path: amortized Lemire bounded sampling (the
//    rejection threshold is hoisted out of the loop; block sampling into a
//    caller buffer is also available as `Xoshiro256pp::fill_bounded`, but
//    draining the generator's serial dependency chain up front measured
//    slower than fusing it into the transition loop — see README.md), plus a
//    *delta census*: small trivially-copyable states are snapshotted into a
//    64-bit image before the transition, and when the interaction was a
//    no-op (bitwise-equal states — the common case for the O(1)-state
//    baselines once stabilized) the census math and all four predicate
//    re-evaluations are skipped entirely; otherwise the snapshot supplies
//    the "before" predicate values. Protocols without leader/token outputs
//    compile down to a bare draw-and-apply loop.
//
// Both paths maintain identical census values at every step (a no-op
// interaction cannot change any count), so any mix of step()/run()/
// run_unbatched() produces the same trajectory (tests/core/batch_test.cpp).
//
// The per-interaction core (transition dispatch, delta census, fault
// injection, recount) is factored into `InteractionEngine<P>` operating on a
// raw agent array plus a `RingClock`, so `Runner` (one ring) and
// `EnsembleRunner` (core/ensemble.hpp, R rings in one struct-of-arrays
// block) execute literally the same code per interaction — per-ring
// bit-identity between the two engines is by construction, then pinned by
// tests/core/ensemble_test.cpp.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/ring.hpp"
#include "core/rng.hpp"

namespace ppsim::core {

/// Per-interaction environment information for oracle-assisted protocols
/// (Fischer–Jiang's Omega?). `no_leader` is the oracle's report: true iff the
/// population has been leaderless for at least `oracle_delay` steps.
/// `no_token` reports the absence of any token (protocols opt in by exposing
/// `has_token`), with immediate reporting.
struct InteractionContext {
  bool no_leader = false;
  bool no_token = false;
};

template <typename P>
concept HasLeaderOutput = requires(const typename P::State& s,
                                   const typename P::Params& p) {
  { P::is_leader(s, p) } -> std::convertible_to<bool>;
};

template <typename P>
concept HasTokenCensus = requires(const typename P::State& s,
                                  const typename P::Params& p) {
  { P::has_token(s, p) } -> std::convertible_to<bool>;
};

template <typename P>
concept WantsOracle =
    requires(typename P::State& a, typename P::State& b,
             const typename P::Params& p, const InteractionContext& ctx) {
      P::apply(a, b, p, ctx);
    };

/// Per-ring scheduler bookkeeping: step counter, incremental leader/token
/// census, the Omega? leaderless clock and the oracle delay. One per Runner;
/// one per ring in an EnsembleRunner (stored as a contiguous array there).
struct RingClock {
  static constexpr std::uint64_t npos =
      std::numeric_limits<std::uint64_t>::max();

  std::uint64_t steps = 0;
  std::uint64_t last_leader_change = 0;
  std::uint64_t leaderless_since = npos;
  std::uint64_t oracle_delay = 0;
  int leader_count = 0;
  int token_count = 0;
};

/// The per-interaction core of the engine, operating on a raw agent array and
/// a RingClock — every census shape, the oracle context, the delta-census
/// fast path and fault injection in one place, shared by Runner and
/// EnsembleRunner so the two scheduler frontends cannot drift.
template <typename P>
struct InteractionEngine {
  using State = typename P::State;
  using Params = typename P::Params;

  // Token-census states that fit a 64-bit image are snapshotted before the
  // transition so a no-op interaction (bitwise-equal states) can skip the
  // census — including all four has_token re-evaluations — entirely; for
  // Fischer–Jiang-style oracle protocols most interactions are no-ops once
  // stabilized and this is a measured ~1.8x. Padding bytes may spuriously
  // differ in the image; that only costs a redundant census pass, never a
  // missed one. Leader-only protocols deliberately do NOT snapshot: their
  // census is two single-byte predicate reads anyway, and re-loading a
  // word-sized image right after the transition's byte stores trips
  // store-to-load-forwarding stalls that measured far more expensive than
  // the census being skipped (modk went 4x slower).
  static constexpr bool kSnapshotStates = HasTokenCensus<P> &&
                                          std::is_trivially_copyable_v<State> &&
                                          sizeof(State) <= 8;

  /// Zero-filled 64-bit image of a state (single-compare equality).
  [[nodiscard]] static std::uint64_t state_image(const State& s) noexcept
    requires(kSnapshotStates)
  {
    std::uint64_t v = 0;
    std::memcpy(&v, &s, sizeof(State));
    return v;
  }

  static void dispatch(State& a, State& b, const Params& params,
                       const RingClock& clk) {
    if constexpr (WantsOracle<P>) {
      InteractionContext ctx;
      ctx.no_leader = clk.leaderless_since != RingClock::npos &&
                      clk.steps - clk.leaderless_since >= clk.oracle_delay;
      ctx.no_token = clk.token_count == 0;
      P::apply(a, b, params, ctx);
    } else {
      P::apply(a, b, params);
    }
  }

  /// Fold the post-transition predicate values of the touched pair into the
  /// census, given the pre-transition values. Shared by both scheduler paths.
  static void census_after(const State& a, const State& b, bool la, bool lb,
                           int ta, int tb, const Params& params,
                           RingClock& clk) {
    if constexpr (HasLeaderOutput<P>) {
      const bool la2 = P::is_leader(a, params);
      const bool lb2 = P::is_leader(b, params);
      clk.leader_count += static_cast<int>(la2) - static_cast<int>(la) +
                          static_cast<int>(lb2) - static_cast<int>(lb);
      if (la != la2 || lb != lb2) clk.last_leader_change = clk.steps + 1;
      if (clk.leader_count > 0) {
        clk.leaderless_since = RingClock::npos;
      } else if (clk.leaderless_since == RingClock::npos) {
        clk.leaderless_since = clk.steps + 1;
      }
      if constexpr (HasTokenCensus<P>) {
        clk.token_count += (P::has_token(a, params) ? 1 : 0) - ta +
                           (P::has_token(b, params) ? 1 : 0) - tb;
      }
    }
  }

  /// One interaction of the reference path: unconditional before/after
  /// census. `agents` is the ring's contiguous state array of params.n slots.
  static void apply_arc(State* agents, int arc, const Params& params,
                        RingClock& clk) {
    const ArcEndpoints e = arc_endpoints(arc, params.n);
    State& a = agents[e.initiator];
    State& b = agents[e.responder];
    if constexpr (HasLeaderOutput<P>) {
      const bool la = P::is_leader(a, params);
      const bool lb = P::is_leader(b, params);
      int ta = 0, tb = 0;
      if constexpr (HasTokenCensus<P>) {
        ta = P::has_token(a, params) ? 1 : 0;
        tb = P::has_token(b, params) ? 1 : 0;
      }
      dispatch(a, b, params, clk);
      census_after(a, b, la, lb, ta, tb, params, clk);
    } else {
      dispatch(a, b, params, clk);
    }
    ++clk.steps;
  }

  /// One interaction of the fast path: delta census via state snapshots.
  /// Bit-identical to apply_arc() — see the header comment.
  static void apply_arc_batched(State* agents, int arc, const Params& params,
                                RingClock& clk) {
    const ArcEndpoints e = arc_endpoints(arc, params.n);
    State& a = agents[e.initiator];
    State& b = agents[e.responder];
    if constexpr (!HasLeaderOutput<P>) {
      // Compile-time specialization: no outputs to track, bare transition.
      dispatch(a, b, params, clk);
    } else if constexpr (kSnapshotStates) {
      // Images are built straight from the array slots (two loads each);
      // the old states are only materialized on the rare changed path.
      const std::uint64_t image_a = state_image(a);
      const std::uint64_t image_b = state_image(b);
      dispatch(a, b, params, clk);
      if (state_image(a) != image_a || state_image(b) != image_b) {
        State oa, ob;
        std::memcpy(&oa, &image_a, sizeof(State));
        std::memcpy(&ob, &image_b, sizeof(State));
        // The snapshot supplies the "before" predicate values.
        const bool la = P::is_leader(oa, params);
        const bool lb = P::is_leader(ob, params);
        int ta = 0, tb = 0;
        if constexpr (HasTokenCensus<P>) {
          ta = P::has_token(oa, params) ? 1 : 0;
          tb = P::has_token(ob, params) ? 1 : 0;
        }
        census_after(a, b, la, lb, ta, tb, params, clk);
      }
    } else {
      const bool la = P::is_leader(a, params);
      const bool lb = P::is_leader(b, params);
      int ta = 0, tb = 0;
      if constexpr (HasTokenCensus<P>) {
        ta = P::has_token(a, params) ? 1 : 0;
        tb = P::has_token(b, params) ? 1 : 0;
      }
      dispatch(a, b, params, clk);
      census_after(a, b, la, lb, ta, tb, params, clk);
    }
    ++clk.steps;
  }

  /// Overwrite one agent slot (fault injection): census updated by the delta
  /// of the touched agent's predicates, O(1) per fault. See
  /// Runner::set_agent for the oracle-clock semantics.
  static void set_agent(State& slot, const State& s, const Params& params,
                        RingClock& clk) {
    if constexpr (HasLeaderOutput<P>) {
      const bool was = P::is_leader(slot, params);
      const bool now = P::is_leader(s, params);
      clk.leader_count += static_cast<int>(now) - static_cast<int>(was);
      if (was != now) clk.last_leader_change = clk.steps;
      if (clk.leader_count > 0) {
        clk.leaderless_since = RingClock::npos;
      } else if (clk.leaderless_since == RingClock::npos) {
        clk.leaderless_since = clk.steps;
      }
    }
    if constexpr (HasTokenCensus<P>) {
      clk.token_count += (P::has_token(s, params) ? 1 : 0) -
                         (P::has_token(slot, params) ? 1 : 0);
    }
    slot = s;
  }

  /// Full census recount (construction / ground-truth cross-checks).
  static void recount(std::span<const State> agents, const Params& params,
                      RingClock& clk) {
    if constexpr (HasLeaderOutput<P>) {
      clk.leader_count = 0;
      for (const State& s : agents)
        clk.leader_count += P::is_leader(s, params) ? 1 : 0;
      clk.leaderless_since =
          clk.leader_count == 0 ? clk.steps : RingClock::npos;
    }
    if constexpr (HasTokenCensus<P>) {
      clk.token_count = 0;
      for (const State& s : agents)
        clk.token_count += P::has_token(s, params) ? 1 : 0;
    }
  }
};

/// Simulation runner. Owns the configuration, the scheduler RNG and step
/// bookkeeping. Copyable (snapshot = copy).
template <typename P>
class Runner {
 public:
  using State = typename P::State;
  using Params = typename P::Params;
  using Engine = InteractionEngine<P>;

  static constexpr std::uint64_t npos =
      std::numeric_limits<std::uint64_t>::max();

  Runner(Params params, std::vector<State> initial, std::uint64_t seed)
      : params_(std::move(params)),
        agents_(std::move(initial)),
        rng_(seed) {
    assert(static_cast<int>(agents_.size()) == params_.n);
    Engine::recount(agents_, params_, clk_);
  }

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] std::span<const State> agents() const noexcept {
    return agents_;
  }
  [[nodiscard]] const State& agent(int i) const { return agents_.at(i); }
  [[nodiscard]] int n() const noexcept { return params_.n; }
  [[nodiscard]] std::uint64_t steps() const noexcept { return clk_.steps; }

  /// Number of arcs (= number of equally likely interactions per step).
  [[nodiscard]] int arc_count() const noexcept {
    return P::directed ? params_.n : 2 * params_.n;
  }

  /// Leader census (maintained incrementally; only meaningful when the
  /// protocol has a leader output).
  [[nodiscard]] int leader_count() const noexcept { return clk_.leader_count; }

  /// Token census (maintained incrementally; only meaningful when the
  /// protocol has a `has_token` output).
  [[nodiscard]] int token_count() const noexcept { return clk_.token_count; }

  /// Step index of the most recent change to the *set* of leaders, or 0.
  [[nodiscard]] std::uint64_t last_leader_change() const noexcept {
    return clk_.last_leader_change;
  }

  /// Oracle delay (steps of uninterrupted leaderlessness before Omega?
  /// reports absence). 0 = immediate reporting, the paper's Table-1 regime.
  void set_oracle_delay(std::uint64_t d) noexcept { clk_.oracle_delay = d; }

  /// Overwrite one agent's state (fault injection / adversarial setup).
  /// Counts as a change of the leader set at the current step when the
  /// injected state flips the agent's leader output, so fault-injection
  /// harnesses reading `last_leader_change()` see the injection.
  ///
  /// The census is updated by the delta of the touched agent's predicates
  /// (O(1), no full recount), so fault storms cost O(faults) rather than
  /// O(faults * n). An injection into an already-leaderless population does
  /// not reset the Omega? leaderless clock to "now" — the oracle's delay
  /// counts from the original onset of leaderlessness — and injecting the
  /// last leader away starts the clock at the current step, exactly as a
  /// transition would.
  void set_agent(int i, const State& s) {
    Engine::set_agent(agents_.at(i), s, params_, clk_);
  }

  /// Execute a single uniformly random interaction.
  void step() { apply_arc(static_cast<int>(rng_.bounded(arc_count()))); }

  /// Execute `k` uniformly random interactions through the fused fast path.
  void run(std::uint64_t k) {
    const auto bound = static_cast<std::uint64_t>(arc_count());
    const std::uint64_t threshold = Xoshiro256pp::rejection_threshold(bound);
    State* const agents = agents_.data();
    for (std::uint64_t i = 0; i < k; ++i) {
      Engine::apply_arc_batched(
          agents,
          static_cast<int>(rng_.bounded_with_threshold(bound, threshold)),
          params_, clk_);
    }
  }

  /// Execute `k` uniformly random interactions one draw at a time with the
  /// unconditional before/after census — the pre-batching engine, kept as
  /// the reference path (bench/throughput_json.cpp measures both in one
  /// binary).
  void run_unbatched(std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step();
  }

  /// Execute the interaction identified by `arc` (deterministic scheduling).
  /// For directed protocols arc in [0, n); for undirected, arcs in [n, 2n)
  /// are the reversed pairs (u_{a-n+1} initiator, u_{a-n} responder).
  void apply_arc(int arc) {
    Engine::apply_arc(agents_.data(), arc, params_, clk_);
  }

  /// Apply a whole deterministic interaction sequence (arc ids).
  void apply_sequence(std::span<const int> arcs) {
    for (int a : arcs) apply_arc(a);
  }

  /// Run until `pred(agents, params)` holds, checking every `check_every`
  /// steps (granularity of the reported hitting step). Returns the step count
  /// at the first satisfied check, or nullopt if `max_steps` elapse first.
  template <typename Pred>
  std::optional<std::uint64_t> run_until(Pred&& pred, std::uint64_t max_steps,
                                         std::uint64_t check_every = 0) {
    if (check_every == 0)
      check_every = static_cast<std::uint64_t>(params_.n);
    if (pred(std::span<const State>(agents_), params_)) return clk_.steps;
    const std::uint64_t deadline = clk_.steps + max_steps;
    while (clk_.steps < deadline) {
      const std::uint64_t block =
          std::min<std::uint64_t>(check_every, deadline - clk_.steps);
      run(block);
      if (pred(std::span<const State>(agents_), params_)) return clk_.steps;
    }
    return std::nullopt;
  }

  /// Run `k` steps invoking `observer(runner, arc)` after every interaction.
  template <typename Observer>
  void run_observed(std::uint64_t k, Observer&& observer) {
    for (std::uint64_t i = 0; i < k; ++i) {
      const int arc = static_cast<int>(rng_.bounded(arc_count()));
      apply_arc(arc);
      observer(*this, arc);
    }
  }

 private:
  Params params_;
  std::vector<State> agents_;
  Xoshiro256pp rng_;
  RingClock clk_;
};

}  // namespace ppsim::core
