// Execution engine: drives a population protocol on a ring under either the
// uniformly random scheduler of the paper or a caller-supplied deterministic
// interaction sequence (for Lemma-2.3-style tests).
//
// Protocol concept (checked via `requires`):
//
//   struct P {
//     using State  = ...;              // value-semantic agent state
//     using Params = ...;              // protocol parameters (must expose .n)
//     static constexpr bool directed = true;   // directed ring? (false: 2n arcs)
//     static void apply(State& initiator, State& responder, const Params&);
//     // Optional (enables leader tracking and the Omega? oracle):
//     static bool is_leader(const State&, const Params&);
//     // Optional (oracle protocols): the runner passes an InteractionContext.
//     static void apply(State&, State&, const Params&, const InteractionContext&);
//   };
//
// Initiator/responder mapping on the directed ring: arc e_i is the interaction
// (u_i, u_{i+1}) — the *left* agent is the initiator, matching the paper's
// "l is the initiator and r is the responder". On the undirected ring there
// are 2n arcs: e_i and its reverse (u_{i+1}, u_i), each with probability 1/2n.
// The mapping lives behind the Topology interface (core/topology.hpp):
// Runner<P, Topo> draws arc ids and resolves them through Topo::endpoints,
// with RingTopology (the default) forwarding to core/ring.hpp's
// `arc_endpoints` so the ring path is unchanged. The exhaustive ModelChecker
// reads the same interface; per-topology engine/checker agreement is pinned
// by tests/core/topology_drift_test.cpp.
//
// Two scheduler paths share one RNG stream and are bit-identical:
//
//  * `run_unbatched(k)` — the reference path: one `bounded()` draw per step,
//    unconditional before/after predicate census (the engine as originally
//    written).
//  * `run(k)` — the fused fast path: amortized Lemire bounded sampling (the
//    rejection threshold is hoisted out of the loop; block sampling into a
//    caller buffer is also available as `Xoshiro256pp::fill_bounded`, but
//    draining the generator's serial dependency chain up front measured
//    slower than fusing it into the transition loop — see README.md), plus a
//    *delta census*: small trivially-copyable states are snapshotted into a
//    64-bit image before the transition, and when the interaction was a
//    no-op (bitwise-equal states — the common case for the O(1)-state
//    baselines once stabilized) the census math and all four predicate
//    re-evaluations are skipped entirely; otherwise the snapshot supplies
//    the "before" predicate values. Protocols without leader/token outputs
//    compile down to a bare draw-and-apply loop.
//
// Both paths maintain identical census values at every step (a no-op
// interaction cannot change any count), so any mix of step()/run()/
// run_unbatched() produces the same trajectory (tests/core/batch_test.cpp).
//
// The per-interaction core (transition dispatch, delta census, fault
// injection, recount) is factored into `InteractionEngine<P>` operating on a
// raw agent array plus a `RingClock`, so `Runner` (one ring) and
// `EnsembleRunner` (core/ensemble.hpp, R rings in one struct-of-arrays
// block) execute literally the same code per interaction — per-ring
// bit-identity between the two engines is by construction, then pinned by
// tests/core/ensemble_test.cpp.
//
// Protocols with a word-packed kernel (HasWordKernel — P_PL) get a third
// path: run(k) dispatches to the branchless bit-sliced kernel over a
// lazily materialized u64 mirror through the shared WordGroupDriver
// (grouped SIMD execution of scheduler-disjoint interactions; ISA
// dispatched at runtime), bit-identical to the scalar paths and certified
// so by the differential fuzz matrix. See the README's "Word-packed P_PL
// fast path" for the design and the measured trajectory.
#pragma once

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "core/ring.hpp"
#include "core/rng.hpp"
#include "core/stream_tags.hpp"
#include "core/topology.hpp"
#include "core/wordlane.hpp"

// The wide vector helpers below pass/return 32- and 64-byte vectors whose
// calling convention depends on the ISA; every such function is
// force-inlined, so no standalone symbol's ABI ever materializes.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace ppsim::core {

/// Per-interaction environment information for oracle-assisted protocols
/// (Fischer–Jiang's Omega?). `no_leader` is the oracle's report: true iff the
/// population has been leaderless for at least `oracle_delay` steps.
/// `no_token` reports the absence of any token (protocols opt in by exposing
/// `has_token`), with immediate reporting.
struct InteractionContext {
  bool no_leader = false;
  bool no_token = false;
};

/// Stream-derivation tag for the omission/message-loss stream: a runner
/// seeded with `seed` draws its loss events from
/// Xoshiro256pp(stream_seed(seed, kLossStreamTag)), decorrelated from the
/// arc-draw stream. The value lives in the stream-tag registry
/// (core/stream_tags.hpp); this alias keeps the historical name.
inline constexpr std::uint64_t kLossStreamTag = streams::kLoss;

namespace detail {

/// 64-bit acceptance threshold for an event of probability p: the event
/// fires iff next() < threshold. p >= 1 maps to an all-ones threshold
/// (miss probability 2^-64 — indistinguishable from certain at any budget).
[[nodiscard]] inline std::uint64_t probability_threshold(double p) noexcept {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(static_cast<long double>(p) *
                                    18446744073709551616.0L);
}

/// Cumulative-threshold table for biased (non-uniform) arc draws: arc i is
/// selected when the raw 64-bit draw falls in [cum[i-1], cum[i]). One raw
/// next() of the *main* scheduler stream per draw, resolved by binary
/// search, so every engine lane and the differential checker mirror that
/// builds the table from the same weights consumes the same stream and
/// draws the same arcs — the bias determinism contract.
class BiasTable {
 public:
  BiasTable() = default;
  explicit BiasTable(std::span<const double> weights) {
    assert(!weights.empty());
    long double total = 0.0L;
    for (const double w : weights) {
      assert(w >= 0.0);
      total += static_cast<long double>(w);
    }
    assert(total > 0.0L);
    cum_.resize(weights.size());
    long double acc = 0.0L;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      acc += static_cast<long double>(weights[i]);
      const long double frac = acc / total;
      cum_[i] = frac >= 1.0L
                    ? std::numeric_limits<std::uint64_t>::max()
                    : static_cast<std::uint64_t>(frac *
                                                 18446744073709551616.0L);
    }
    // Pin the last bucket so no draw can fall off the table's end.
    cum_.back() = std::numeric_limits<std::uint64_t>::max();
  }

  [[nodiscard]] bool empty() const noexcept { return cum_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return cum_.size(); }

  [[nodiscard]] int draw(Xoshiro256pp& rng) const noexcept {
    const std::uint64_t x = rng();
    const auto it = std::upper_bound(cum_.begin(), cum_.end(), x);
    // x == 2^64-1 compares equal to the pinned last bucket; clamp it there.
    const auto idx = it == cum_.end() ? cum_.size() - 1
                                      : static_cast<std::size_t>(
                                            it - cum_.begin());
    return static_cast<int>(idx);
  }

 private:
  std::vector<std::uint64_t> cum_;
};

}  // namespace detail

/// Scheduler fault models (ROADMAP item 3), configured per engine via
/// `set_scheduler_faults`:
///
///  * Omission / message loss: each drawn interaction is lost (the step
///    counts, the clock advances, but no transition fires) with probability
///    `loss_p`. Loss events come from a dedicated stream (seed ^
///    kLossStreamTag), so enabling loss does not perturb the arc-draw
///    stream: the surviving interactions are exactly a subsequence of the
///    clean schedule, and per-trial determinism (same seed, same faulted
///    trajectory, any thread count) is preserved.
///  * Biased arc distribution: `arc_weights[arc]` proportional to the draw
///    probability (size must equal the engine's arc_count; empty keeps the
///    uniform scheduler). Biased draws consume exactly one raw 64-bit value
///    of the main stream per interaction (see detail::BiasTable).
///
/// Active faults pin the engine to the scalar path — the word kernel's
/// grouped draws and the ensemble's accelerated lanes assume the clean
/// uniform scheduler. Deterministic scheduling entry points (apply_arc,
/// apply_sequence) always bypass faults.
struct SchedulerFaults {
  double loss_p = 0.0;
  std::vector<double> arc_weights;

  [[nodiscard]] bool active() const noexcept {
    return loss_p > 0.0 || !arc_weights.empty();
  }
};

template <typename P>
concept HasLeaderOutput = requires(const typename P::State& s,
                                   const typename P::Params& p) {
  { P::is_leader(s, p) } -> std::convertible_to<bool>;
};

template <typename P>
concept HasTokenCensus = requires(const typename P::State& s,
                                  const typename P::Params& p) {
  { P::has_token(s, p) } -> std::convertible_to<bool>;
};

template <typename P>
concept WantsOracle =
    requires(typename P::State& a, typename P::State& b,
             const typename P::Params& p, const InteractionContext& ctx) {
      P::apply(a, b, p, ctx);
    };

/// Protocols exposing a 64-bit word-packed transition kernel (P_PL,
/// src/pl/packed_protocol.hpp): a parameter-derived bit layout
/// (`word_layout`, with a `fits()` capacity probe), a pack/unpack pair that
/// is a bijection on the protocol's declared per-field domain and *fails to
/// round-trip* on anything outside it (the engines' acceptance test), a
/// transition `apply_word` bit-identical to `apply` on in-domain states, and
/// the leader output read straight off the word — the engines' grouped
/// driver requires word_leader to BE bit 0 of the word (it probes exactly
/// that at activation and keeps the scalar path otherwise, so a layout
/// with the leader flag elsewhere degrades, never corrupts). This is the
/// accelerator for
/// protocols whose state space is far too large for EnsembleRunner's
/// pair-transition LUT (P_PL at default parameters packs into ~45-51 bits,
/// i.e. ~2^45 states against the LUT's 2^16-pair budget) but whose per-agent
/// variable block still fits one machine word — the direct payoff of the
/// paper's poly-logarithmic state bound.
template <typename P>
concept HasWordKernel =
    requires(const typename P::Params& p, const typename P::State& s,
             const typename P::WordLayout& lay,
             const typename P::WordKernelConsts& kc, std::uint64_t& w,
             WordVec& v, WordVec8& v8) {
      { P::word_layout(p) } -> std::convertible_to<typename P::WordLayout>;
      { lay.fits() } -> std::convertible_to<bool>;
      { P::pack_word(s, lay) } -> std::convertible_to<std::uint64_t>;
      { P::unpack_word(w, lay) } -> std::same_as<typename P::State>;
      { P::word_leader(w, lay) } -> std::convertible_to<bool>;
      P::apply_word(w, w, lay);
      {
        P::make_word_consts(lay)
      } -> std::convertible_to<typename P::WordKernelConsts>;
      P::apply_word_one(w, w, kc);
      P::apply_word_x4(v, v, kc);
      P::apply_word_x8(v8, v8, kc);
    };

/// A word kernel is runnable by Runner/EnsembleRunner when the protocol
/// takes no oracle input (the kernel sees only the two words), has no token
/// census (the kernel exposes only the leader output; P_PL's leader-only
/// census is exactly this shape) and states are equality-comparable (the
/// round-trip acceptance test).
template <typename P>
concept WordKernelRunnable =
    HasWordKernel<P> && !WantsOracle<P> && !HasTokenCensus<P> &&
    std::equality_comparable<typename P::State>;

/// Protocols whose word kernel also instantiates at 32-bit element width
/// (the regime-narrowed layout: two packed states per 64 bits of register).
/// `word_fits_narrow(layout)` is the capacity probe — true only when every
/// field of the layout lands inside 32 bits, so the u32 mirror is lossless
/// and the same clamp/round-trip fallback contract applies unchanged. Used
/// by EnsembleRunner: at the small n where narrow layouts exist, the
/// cross-ring lockstep lane carries twice the rings per vector register.
template <typename P>
concept HasNarrowWordKernel =
    HasWordKernel<P> &&
    requires(const typename P::WordLayout& lay,
             const typename P::WordKernelConsts& kc, std::uint32_t& hw,
             HalfVec8& h8, HalfVec16& h16) {
      { P::word_fits_narrow(lay) } -> std::convertible_to<bool>;
      P::apply_word_narrow_one(hw, hw, kc);
      P::apply_word_narrow_x8(h8, h8, kc);
      P::apply_word_narrow_x16(h16, h16, kc);
    };

namespace detail {
/// Storage types for the word layout / kernel constants: the protocol's
/// types when it has a word kernel, empty placeholders otherwise (so
/// engines can declare the members unconditionally).
template <typename P>
struct WordLayoutOf {
  struct Empty {};
  using type = Empty;
};
template <typename P>
  requires HasWordKernel<P>
struct WordLayoutOf<P> {
  using type = typename P::WordLayout;
};
template <typename P>
struct WordConstsOf {
  struct Empty {};
  using type = Empty;
};
template <typename P>
  requires HasWordKernel<P>
struct WordConstsOf<P> {
  using type = typename P::WordKernelConsts;
};
}  // namespace detail

/// Per-ring scheduler bookkeeping: step counter, incremental leader/token
/// census, the Omega? leaderless clock and the oracle delay. One per Runner;
/// one per ring in an EnsembleRunner (stored as a contiguous array there).
struct RingClock {
  static constexpr std::uint64_t npos =
      std::numeric_limits<std::uint64_t>::max();

  std::uint64_t steps = 0;
  std::uint64_t last_leader_change = 0;
  std::uint64_t leaderless_since = npos;
  std::uint64_t oracle_delay = 0;
  int leader_count = 0;
  int token_count = 0;
};

/// The per-interaction core of the engine, operating on a raw agent array and
/// a RingClock — every census shape, the oracle context, the delta-census
/// fast path and fault injection in one place, shared by Runner and
/// EnsembleRunner so the two scheduler frontends cannot drift.
template <typename P>
struct InteractionEngine {
  using State = typename P::State;
  using Params = typename P::Params;

  // Token-census states that fit a 64-bit image are snapshotted before the
  // transition so a no-op interaction (bitwise-equal states) can skip the
  // census — including all four has_token re-evaluations — entirely; for
  // Fischer–Jiang-style oracle protocols most interactions are no-ops once
  // stabilized and this is a measured ~1.8x. Padding bytes may spuriously
  // differ in the image; that only costs a redundant census pass, never a
  // missed one. Leader-only protocols deliberately do NOT snapshot: their
  // census is two single-byte predicate reads anyway, and re-loading a
  // word-sized image right after the transition's byte stores trips
  // store-to-load-forwarding stalls that measured far more expensive than
  // the census being skipped (modk went 4x slower).
  static constexpr bool kSnapshotStates = HasTokenCensus<P> &&
                                          std::is_trivially_copyable_v<State> &&
                                          sizeof(State) <= 8;

  /// Zero-filled 64-bit image of a state (single-compare equality).
  [[nodiscard]] static std::uint64_t state_image(const State& s) noexcept
    requires(kSnapshotStates)
  {
    std::uint64_t v = 0;
    std::memcpy(&v, &s, sizeof(State));
    return v;
  }

  static void dispatch(State& a, State& b, const Params& params,
                       const RingClock& clk) {
    if constexpr (WantsOracle<P>) {
      InteractionContext ctx;
      ctx.no_leader = clk.leaderless_since != RingClock::npos &&
                      clk.steps - clk.leaderless_since >= clk.oracle_delay;
      ctx.no_token = clk.token_count == 0;
      P::apply(a, b, params, ctx);
    } else {
      P::apply(a, b, params);
    }
  }

  /// Fold the post-transition predicate values of the touched pair into the
  /// census, given the pre-transition values. Shared by both scheduler paths.
  static void census_after(const State& a, const State& b, bool la, bool lb,
                           int ta, int tb, const Params& params,
                           RingClock& clk) {
    if constexpr (HasLeaderOutput<P>) {
      const bool la2 = P::is_leader(a, params);
      const bool lb2 = P::is_leader(b, params);
      clk.leader_count += static_cast<int>(la2) - static_cast<int>(la) +
                          static_cast<int>(lb2) - static_cast<int>(lb);
      if (la != la2 || lb != lb2) clk.last_leader_change = clk.steps + 1;
      if (clk.leader_count > 0) {
        clk.leaderless_since = RingClock::npos;
      } else if (clk.leaderless_since == RingClock::npos) {
        clk.leaderless_since = clk.steps + 1;
      }
      if constexpr (HasTokenCensus<P>) {
        clk.token_count += (P::has_token(a, params) ? 1 : 0) - ta +
                           (P::has_token(b, params) ? 1 : 0) - tb;
      }
    }
  }

  /// One interaction of the reference path: unconditional before/after
  /// census. `agents` is the contiguous state array of params.n slots; the
  /// caller resolves the drawn arc id to endpoints through its Topology
  /// (the engine core is topology-agnostic).
  static void apply_arc(State* agents, ArcEndpoints e, const Params& params,
                        RingClock& clk) {
    State& a = agents[e.initiator];
    State& b = agents[e.responder];
    if constexpr (HasLeaderOutput<P>) {
      const bool la = P::is_leader(a, params);
      const bool lb = P::is_leader(b, params);
      int ta = 0, tb = 0;
      if constexpr (HasTokenCensus<P>) {
        ta = P::has_token(a, params) ? 1 : 0;
        tb = P::has_token(b, params) ? 1 : 0;
      }
      dispatch(a, b, params, clk);
      census_after(a, b, la, lb, ta, tb, params, clk);
    } else {
      dispatch(a, b, params, clk);
    }
    ++clk.steps;
  }

  /// One interaction of the fast path: delta census via state snapshots.
  /// Bit-identical to apply_arc() — see the header comment.
  static void apply_arc_batched(State* agents, ArcEndpoints e,
                                const Params& params, RingClock& clk) {
    State& a = agents[e.initiator];
    State& b = agents[e.responder];
    if constexpr (!HasLeaderOutput<P>) {
      // Compile-time specialization: no outputs to track, bare transition.
      dispatch(a, b, params, clk);
    } else if constexpr (kSnapshotStates) {
      // Images are built straight from the array slots (two loads each);
      // the old states are only materialized on the rare changed path.
      const std::uint64_t image_a = state_image(a);
      const std::uint64_t image_b = state_image(b);
      dispatch(a, b, params, clk);
      if (state_image(a) != image_a || state_image(b) != image_b) {
        State oa, ob;
        std::memcpy(&oa, &image_a, sizeof(State));
        std::memcpy(&ob, &image_b, sizeof(State));
        // The snapshot supplies the "before" predicate values.
        const bool la = P::is_leader(oa, params);
        const bool lb = P::is_leader(ob, params);
        int ta = 0, tb = 0;
        if constexpr (HasTokenCensus<P>) {
          ta = P::has_token(oa, params) ? 1 : 0;
          tb = P::has_token(ob, params) ? 1 : 0;
        }
        census_after(a, b, la, lb, ta, tb, params, clk);
      }
    } else {
      const bool la = P::is_leader(a, params);
      const bool lb = P::is_leader(b, params);
      int ta = 0, tb = 0;
      if constexpr (HasTokenCensus<P>) {
        ta = P::has_token(a, params) ? 1 : 0;
        tb = P::has_token(b, params) ? 1 : 0;
      }
      dispatch(a, b, params, clk);
      census_after(a, b, la, lb, ta, tb, params, clk);
    }
    ++clk.steps;
  }

  /// Overwrite one agent slot (fault injection): census updated by the delta
  /// of the touched agent's predicates, O(1) per fault. See
  /// Runner::set_agent for the oracle-clock semantics.
  static void set_agent(State& slot, const State& s, const Params& params,
                        RingClock& clk) {
    if constexpr (HasLeaderOutput<P>) {
      const bool was = P::is_leader(slot, params);
      const bool now = P::is_leader(s, params);
      clk.leader_count += static_cast<int>(now) - static_cast<int>(was);
      if (was != now) clk.last_leader_change = clk.steps;
      if (clk.leader_count > 0) {
        clk.leaderless_since = RingClock::npos;
      } else if (clk.leaderless_since == RingClock::npos) {
        clk.leaderless_since = clk.steps;
      }
    }
    if constexpr (HasTokenCensus<P>) {
      clk.token_count += (P::has_token(s, params) ? 1 : 0) -
                         (P::has_token(slot, params) ? 1 : 0);
    }
    slot = s;
  }

  /// Full census recount (construction / ground-truth cross-checks).
  static void recount(std::span<const State> agents, const Params& params,
                      RingClock& clk) {
    if constexpr (HasLeaderOutput<P>) {
      clk.leader_count = 0;
      for (const State& s : agents)
        clk.leader_count += P::is_leader(s, params) ? 1 : 0;
      clk.leaderless_since =
          clk.leader_count == 0 ? clk.steps : RingClock::npos;
    }
    if constexpr (HasTokenCensus<P>) {
      clk.token_count = 0;
      for (const State& s : agents)
        clk.token_count += P::has_token(s, params) ? 1 : 0;
    }
  }
};

/// The blocked hot loop of the word-kernel engine lane, shared by Runner
/// (one ring) and EnsembleRunner (per ring) so the two frontends cannot
/// drift. Per group of kWordLanes scheduler draws it proves the agent
/// pairs disjoint (a ~2% event at n = 1024, ~0.1% at 16384) and then runs
/// the protocol's branchless vector kernel on all four interactions at
/// once — legal because disjoint interactions commute state-wise, and the
/// RNG draw order is untouched, so the trajectory is bit-identical to the
/// one-at-a-time scalar path (conflicting groups and the k % 4 tail take
/// exactly that path via apply_word_one).
///
/// Census: only the leader bit matters (WordKernelRunnable excludes token
/// censuses), and when no word in the group changed its leader bit the
/// whole census update is a provable no-op (leader_count unchanged, and
/// the RingClock invariant "leader_count == 0 iff leaderless_since is set"
/// makes the leaderless bookkeeping idempotent) — the common case once
/// converged. Otherwise the four updates replay sequentially in draw
/// order, reproducing census_after step for step.
///
/// The vector kernel body is compiled twice on x86-64 — once for the
/// baseline ISA, once under target("avx2") — and dispatched once per
/// process via __builtin_cpu_supports, so the packaged binary needs no
/// special -m flags and still uses 4-wide execution where the hardware
/// has it.
template <typename P>
  requires WordKernelRunnable<P>
struct WordGroupDriver {
  using Consts = typename P::WordKernelConsts;

  /// 2 = AVX-512 (F+DQ+BW+VL, the clones' target set), 1 = AVX2,
  /// 0 = baseline. Probed once per process.
  [[nodiscard]] static int isa_level() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    static const int kIsa =
        (__builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0)  ? 2
        : __builtin_cpu_supports("avx2") != 0 ? 1
                                              : 0;
    return kIsa;
#else
    return 0;
#endif
  }

  /// Engagement floor for the single-ring grouped path: the estimated
  /// probability that a full group of G draws is pairwise disjoint. Below
  /// it the grouped path degrades to (mostly) scalar word steps plus the
  /// classification overhead and measures *slower* than the scalar batched
  /// loop — the honest 0.72x cell at n = 64 in PR 5's table.
  static constexpr double kEngageMinDisjoint = 0.5;

  /// Measured-engagement heuristic for the single-ring grouped path. Each
  /// prior draw in a group occupies two adjacent agents, conflicting with
  /// ~4 of the n (2n undirected) arcs, so a group of G draws is fully
  /// disjoint with probability ~ prod_{j<G} (1 - 4j/n). True when that
  /// estimate clears kEngageMinDisjoint for the ISA's group width — e.g.
  /// at G = 8: n = 1024 -> 0.90 (engage), n = 256 -> 0.64 (engage),
  /// n = 64 -> 0.12 (stay scalar). Cross-ring lockstep lanes are never
  /// gated: they need no disjointness proof.
  [[nodiscard]] static bool single_ring_engaged(int n) noexcept {
    const int g = isa_level() == 2 ? kLanesOf<WordVec8> : kWordLanes;
    double p = 1.0;
    for (int j = 1; j < g; ++j) {
      const double q = 1.0 - 4.0 * static_cast<double>(j) / n;
      p *= q > 0.0 ? q : 0.0;
    }
    return p >= kEngageMinDisjoint;
  }

  static void run_block(std::uint64_t* words, int n, std::uint64_t bound,
                        std::uint64_t threshold, Xoshiro256pp& rng,
                        RingClock& clk, const Consts& kc, std::uint64_t k) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    const int isa = isa_level();
    if (isa == 2) {
      run_avx512(words, n, bound, threshold, rng, clk, kc, k);
      return;
    }
    if (isa == 1) {
      run_avx2(words, n, bound, threshold, rng, clk, kc, k);
      return;
    }
#endif
    run_base(words, n, bound, threshold, rng, clk, kc, k);
  }

 private:
  /// Leader-census delta for one interaction's before/after words; only a
  /// changed leader bit has any effect (the no-change case is a no-op by
  /// the RingClock invariant). `step` is the interaction's 0-based index —
  /// cross-ring blocks keep clk.steps frozen until the block ends, so the
  /// current step rides as an argument.
  [[gnu::always_inline]] static inline void census_leader_change(
      std::uint64_t oa, std::uint64_t ob, std::uint64_t wa, std::uint64_t wb,
      RingClock& clk, std::uint64_t step) noexcept {
    if constexpr (HasLeaderOutput<P>) {
      if ((((wa ^ oa) | (wb ^ ob)) & 1) != 0) {
        clk.leader_count += static_cast<int>(wa & 1) -
                            static_cast<int>(oa & 1) +
                            static_cast<int>(wb & 1) -
                            static_cast<int>(ob & 1);
        clk.last_leader_change = step + 1;
        if (clk.leader_count > 0) {
          clk.leaderless_since = RingClock::npos;
        } else if (clk.leaderless_since == RingClock::npos) {
          clk.leaderless_since = step + 1;
        }
      }
    }
  }

  [[gnu::always_inline]] static inline void step_one(std::uint64_t* words,
                                                     int i, int j,
                                                     const Consts& kc,
                                                     RingClock& clk) {
    std::uint64_t wa = words[i];
    std::uint64_t wb = words[j];
    const std::uint64_t oa = wa;
    const std::uint64_t ob = wb;
    P::apply_word_one(wa, wb, kc);
    words[i] = wa;
    words[j] = wb;
    census_leader_change(oa, ob, wa, wb, clk, clk.steps);
    ++clk.steps;
  }

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  /// Hardware gather/scatter for the 8-lane clones: one instruction each
  /// instead of a per-lane insert/extract chain (the chain costs ~20 front
  /// end uops per vector and a stack round-trip). Deliberately NOT
  /// always_inline: the surrounding templates carry no target attribute, so
  /// a forced inline would be a target mismatch — as plain target functions
  /// these are legal to *call* from anywhere, and the inliner still folds
  /// them into the avx512 clones where the attributes match. Only 8-lane
  /// instantiations reach them (guarded by if constexpr), and those only
  /// ever execute inside the avx512 clones. The scatters are safe by
  /// construction: indices within one scatter are pairwise distinct
  /// (disjoint group members, or one agent per disjoint ring).
  __attribute__((
      target("avx512f,avx512dq,avx512bw,avx512vl"))) static inline WordVec8
  gather8(const std::uint64_t* words, const int* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return (WordVec8)_mm512_i32gather_epi64(vi, words, 8);
  }
  __attribute__((
      target("avx512f,avx512dq,avx512bw,avx512vl"))) static inline void
  scatter8(std::uint64_t* words, const int* idx, const WordVec8& v) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    _mm512_i32scatter_epi64(words, vi, (__m512i)v, 8);
  }
  /// Absolute-address forms for the cross-ring lockstep lane, where every
  /// lane reads a different ring's array: the address vector is
  /// per-ring-base + in-ring offset, gathered at scale 1 off a null base.
  __attribute__((
      target("avx512f,avx512dq,avx512bw,avx512vl"))) static inline WordVec8
  gather8_addr(const WordVec8& addr) {
    return (WordVec8)_mm512_i64gather_epi64((__m512i)addr, nullptr, 1);
  }
  __attribute__((
      target("avx512f,avx512dq,avx512bw,avx512vl"))) static inline void
  scatter8_addr(const WordVec8& addr, const WordVec8& v) {
    _mm512_i64scatter_epi64(nullptr, (__m512i)addr, (__m512i)v, 1);
  }
  static constexpr bool kHaveHwGather = true;
#else
  static constexpr bool kHaveHwGather = false;
#endif

  /// Gather/scatter one group's operand words (G = lanes of VW).
  template <typename VW>
  [[gnu::always_inline]] static inline VW gather(const std::uint64_t* words,
                                                 const int* idx) {
    if constexpr (kLanesOf<VW> == 4) {
      return VW{words[idx[0]], words[idx[1]], words[idx[2]], words[idx[3]]};
    } else if constexpr (kHaveHwGather) {
      return gather8(words, idx);
    } else {
      return VW{words[idx[0]], words[idx[1]], words[idx[2]], words[idx[3]],
                words[idx[4]], words[idx[5]], words[idx[6]], words[idx[7]]};
    }
  }
  template <typename VW>
  [[gnu::always_inline]] static inline void scatter(std::uint64_t* words,
                                                    const int* idx,
                                                    const VW& v) {
    if constexpr (kLanesOf<VW> == 8 && kHaveHwGather) {
      scatter8(words, idx, v);
    } else {
      for (int j = 0; j < kLanesOf<VW>; ++j) words[idx[j]] = v[j];
    }
  }

  /// OR-fold of all lanes (leader-bit change probe).
  template <typename VW>
  [[gnu::always_inline]] static inline std::uint64_t orfold(const VW& v) {
    if constexpr (kLanesOf<VW> == 4) {
      return v[0] | v[1] | v[2] | v[3];
    } else {
      return (v[0] | v[1] | v[2] | v[3]) | (v[4] | v[5] | v[6] | v[7]);
    }
  }

  /// One vectorized group of `lanes(VW)` mutually disjoint interactions:
  /// gather, kernel, scatter, leader-bit delta census (sequential replay in
  /// draw order only when some lane changed a leader bit — otherwise the
  /// whole update is a provable no-op, see the class comment).
  template <typename VW>
  [[gnu::always_inline]] static inline void run_group(std::uint64_t* words,
                                                      const int* ia,
                                                      const int* ib,
                                                      const Consts& kc,
                                                      RingClock& clk) {
    constexpr int G = kLanesOf<VW>;
    VW wa = gather<VW>(words, ia);
    VW wb = gather<VW>(words, ib);
    const VW oa = wa;
    const VW ob = wb;
    if constexpr (G == 4) {
      P::apply_word_x4(wa, wb, kc);
    } else {
      P::apply_word_x8(wa, wb, kc);
    }
    scatter(words, ia, wa);
    scatter(words, ib, wb);
    if constexpr (HasLeaderOutput<P>) {
      const VW dl = (wa ^ oa) | (wb ^ ob);
      if ((orfold(dl) & 1) == 0) [[likely]] {
        clk.steps += static_cast<std::uint64_t>(G);
      } else {
        census_replay<VW>(oa, ob, wa, wb, clk);
      }
    } else {
      clk.steps += static_cast<std::uint64_t>(G);
    }
  }

  /// Per-lane census replay of one group whose update flipped some leader
  /// bit. Rare at steady state, so outlined cold: inlining it would keep a
  /// second copy of the group's operands live across the hot loop and push
  /// the register allocator into spilling the kernel's temporaries.
  template <typename VW>
  [[gnu::cold, gnu::noinline]] static void census_replay(const VW& oa,
                                                         const VW& ob,
                                                         const VW& wa,
                                                         const VW& wb,
                                                         RingClock& clk) {
    for (int j = 0; j < kLanesOf<VW>; ++j) {
      census_leader_change(oa[j], ob[j], wa[j], wb[j], clk, clk.steps);
      ++clk.steps;
    }
  }

  /// Cold outlined per-lane census replay for the cross-ring lockstep
  /// blocks (frozen-clock contract: the running step rides as step0[j]+s).
  /// V is the block's lane type — u64 lanes (wide) or u32 lanes (narrow).
  template <typename V>
  [[gnu::cold, gnu::noinline]] static void census_replay_rings(
      const V& oa, const V& ob, const V& wa, const V& wb, RingClock* clk,
      const std::uint64_t* step0, std::uint64_t s) {
    for (int j = 0; j < kLanesOf<V>; ++j) {
      census_leader_change(oa[j], ob[j], wa[j], wb[j], clk[j], step0[j] + s);
    }
  }

  /// Conflicted-group fallback, outlined cold for the same register-pressure
  /// reason as census_replay: an overlap inside a half degrades the group to
  /// exact one-at-a-time scalar steps; a cross-half-only overlap (G == 8)
  /// runs the two halves as sequential half-width groups (first half's
  /// stores land before the second half's loads).
  template <typename VW>
  [[gnu::cold, gnu::noinline]] static void run_group_conflicted(
      std::uint64_t* words, const int* ia, const int* ib, int in_half,
      const Consts& kc, RingClock& clk) {
    constexpr int G = kLanesOf<VW>;
    if (in_half != 0) {
      for (int j = 0; j < G; ++j) step_one(words, ia[j], ib[j], kc, clk);
    } else if constexpr (G == 8) {
      run_group<WordVec>(words, ia, ib, kc, clk);
      run_group<WordVec>(words, ia + 4, ib + 4, kc, clk);
    }
  }

  /// Vectorized pairwise-overlap classification of one group of G arcs.
  ///
  /// Every arc's endpoint set is {m, m+1 mod n} for m = arc mod n — the
  /// forward and reversed arcs of an edge share endpoints (core/ring.hpp
  /// arc_endpoints) — so two arcs overlap iff their m-values differ by
  /// 0, 1, or n-1 (mod n). That collapses the O(G^2) four-way equality
  /// scan (112 scalar compares at G = 8) into G-lane difference probes
  /// against lane rotations: rotation r compares lane i with lane
  /// (i+r) mod G, and rotations 1..G/2 cover every unordered pair. The
  /// common case (no overlap anywhere: ~99.3% of groups at n = 16384)
  /// folds the rotation hits into one OR and returns without ever
  /// materializing the in-half/cross split.
  template <int G>
  [[gnu::always_inline]] static inline void classify_group(const int* pm,
                                                           int n,
                                                           int& half_conf,
                                                           int& cross_conf) {
    static_assert(G == 4 || G == 8);
    if constexpr (G == 8) {
      HalfVec8S a;
      __builtin_memcpy(&a, pm, sizeof(a));
      const HalfVec8S vn = vbroadcast<HalfVec8S>(static_cast<std::uint64_t>(n));
      const HalfVec8S v1 = vbroadcast<HalfVec8S>(1);
      const HalfVec8S vn1 = vn - v1;
      const auto probe = [&](HalfVec8S rot) __attribute__((always_inline)) {
        HalfVec8S t = a - rot;        // in [-(n-1), n-1]
        t += vn & (t >> 31);          // mod n, in [0, n-1]
        return (t == HalfVec8S{}) | (t == v1) | (t == vn1);
      };
      const HalfVec8S h1 = probe(__builtin_shufflevector(a, a, 1, 2, 3, 4, 5, 6, 7, 0));
      const HalfVec8S h2 = probe(__builtin_shufflevector(a, a, 2, 3, 4, 5, 6, 7, 0, 1));
      const HalfVec8S h3 = probe(__builtin_shufflevector(a, a, 3, 4, 5, 6, 7, 0, 1, 2));
      const HalfVec8S h4 = probe(__builtin_shufflevector(a, a, 4, 5, 6, 7, 0, 1, 2, 3));
      if (orfold((WordVec)(h1 | h2) | (WordVec)(h3 | h4)) == 0) [[likely]] {
        half_conf = 0;
        cross_conf = 0;
        return;
      }
      // Rotation r pairs lane i with lane (i+r) mod 8; the pair crosses
      // the half boundary iff exactly one of the two lane ids is >= 4.
      constexpr HalfVec8S kIH1 = {-1, -1, -1, 0, -1, -1, -1, 0};
      constexpr HalfVec8S kIH2 = {-1, -1, 0, 0, -1, -1, 0, 0};
      constexpr HalfVec8S kIH3 = {-1, 0, 0, 0, -1, 0, 0, 0};
      const HalfVec8S ih = (h1 & kIH1) | (h2 & kIH2) | (h3 & kIH3);
      const HalfVec8S cr = (h1 & ~kIH1) | (h2 & ~kIH2) | (h3 & ~kIH3) | h4;
      half_conf = orfold((WordVec)ih) != 0;
      cross_conf = orfold((WordVec)cr) != 0;
    } else {
      HalfVec4S a;
      __builtin_memcpy(&a, pm, sizeof(a));
      const HalfVec4S vn = vbroadcast<HalfVec4S>(static_cast<std::uint64_t>(n));
      const HalfVec4S v1 = vbroadcast<HalfVec4S>(1);
      const HalfVec4S vn1 = vn - v1;
      const auto probe = [&](HalfVec4S rot) __attribute__((always_inline)) {
        HalfVec4S t = a - rot;
        t += vn & (t >> 31);
        return (t == HalfVec4S{}) | (t == v1) | (t == vn1);
      };
      const HalfVec4S h1 = probe(__builtin_shufflevector(a, a, 1, 2, 3, 0));
      const HalfVec4S h2 = probe(__builtin_shufflevector(a, a, 2, 3, 0, 1));
      const HalfVec4S any = h1 | h2;
      half_conf = (any[0] | any[1] | any[2] | any[3]) != 0;
      cross_conf = 0;  // no half split at G == 4 (see run_impl)
    }
  }

  /// The block loop at vector width VW (instantiated per ISA clone).
  template <typename VW>
  [[gnu::always_inline]] static inline void run_impl(
      std::uint64_t* words, int n, std::uint64_t bound,
      std::uint64_t threshold, Xoshiro256pp& rng0, RingClock& clk0,
      const Consts& kc0, std::uint64_t k) {
    Xoshiro256pp rng = rng0;
    RingClock clk = clk0;
    // By-value copy: stores through `words` (u64) may alias a *referenced*
    // Consts under TBAA, which would force every kernel constant (and its
    // SIMD broadcast) to reload per group; a local whose address never
    // escapes cannot alias, so the broadcasts hoist out of the loop.
    const Consts kc = kc0;
    constexpr int G = kLanesOf<VW>;
    int ia[G] = {};  // zero-init: k < G legitimately skips the prologue draw
    int ib[G] = {};
    int in_half = 0;
    int cross = 0;
    // Draw one group's arcs and run the pairwise-overlap classification
    // (vectorized, see classify_group). At G == 8 the cross-half overlaps
    // are tracked separately: the two halves
    // can still run vectorized, just sequentially (first half's stores land
    // before the second half's loads). Overlap *inside* a half degrades the
    // whole group to exact one-at-a-time scalar steps.
    const auto draw_group = [&](int* pa, int* pb, int& half_conf,
                                int& cross_conf) __attribute__((
        always_inline)) {
      int pm[G];
      for (int j = 0; j < G; ++j) {
        const int arc =
            static_cast<int>(rng.bounded_with_threshold(bound, threshold));
        const ArcEndpoints e = arc_endpoints(arc, n);
        pa[j] = e.initiator;
        pb[j] = e.responder;
        pm[j] = arc < n ? arc : arc - n;  // edge id shared by both arc dirs
      }
      classify_group<G>(pm, n, half_conf, cross_conf);
    };
    if (k >= static_cast<std::uint64_t>(G)) draw_group(ia, ib, in_half, cross);
    while (k >= static_cast<std::uint64_t>(G)) {
      // Software pipeline: the next group's serial draw chain (one scalar
      // stream — inherently sequential) issues ahead of this group's
      // kernel, so the two overlap in the out-of-order window instead of
      // serializing. Draws depend only on RNG state, never on words, so
      // the stream order is untouched.
      int na[G];
      int nb[G];
      int nih = 0;
      int ncr = 0;
      const bool more = k >= 2 * static_cast<std::uint64_t>(G);
      if (more) draw_group(na, nb, nih, ncr);
      if ((in_half | cross) != 0) [[unlikely]] {
        run_group_conflicted<VW>(words, ia, ib, in_half, kc, clk);
      } else {
        run_group<VW>(words, ia, ib, kc, clk);
      }
      k -= static_cast<std::uint64_t>(G);
      if (more) {
        for (int j = 0; j < G; ++j) {
          ia[j] = na[j];
          ib[j] = nb[j];
        }
        in_half = nih;
        cross = ncr;
      }
    }
    while (k > 0) {
      const int arc =
          static_cast<int>(rng.bounded_with_threshold(bound, threshold));
      const ArcEndpoints e = arc_endpoints(arc, n);
      step_one(words, e.initiator, e.responder, kc, clk);
      --k;
    }
    rng0 = rng;
    clk0 = clk;
  }

  /// Cross-ring lockstep block (the ensemble kernel lane's main engine):
  /// advance `nrings` independent rings `k` interactions each, one vector
  /// lane per ring. Rings never share storage, so — unlike the single-ring
  /// grouped path — no disjointness proof is needed and every iteration
  /// runs the full-width kernel. The G per-ring RNG streams advance as SIMD
  /// columns of one XoshiroLanes engine (one vector xoshiro step + one
  /// vector Lemire product per iteration instead of G scalar draws — the
  /// frontend cost PR 5 measured as the lane's bottleneck), bit-identical
  /// per column to the scalar engines, which are stored back at block end.
  /// The draw for step s+1 issues *before* the kernel of step s (arcs
  /// depend only on RNG state, never on words), so the draw chain and the
  /// kernel's long dependency chain overlap in the out-of-order window
  /// instead of serializing. Per-ring trajectories are bit-identical to
  /// the single-ring engines by construction (each ring consumes exactly
  /// its own stream in order; lockstep only changes the interleaving
  /// *between* rings, which share nothing).
  template <typename VW>
  [[gnu::always_inline]] static inline void rings_impl(
      std::uint64_t* words_base, std::size_t ring_stride, const int* rings,
      int nrings, int n, std::uint64_t bound, std::uint64_t threshold,
      Xoshiro256pp* rngs, RingClock* clks, const Consts& kc0,
      std::uint64_t k) {
    const Consts kc = kc0;
    constexpr int G = kLanesOf<VW>;
    int i = 0;
    for (; i + G <= nrings; i += G) {
      const int* rg = rings + i;
      std::uint64_t* base[G];
      Xoshiro256pp rng[G];
      RingClock clk[G];
      std::uint64_t step0[G];
      for (int j = 0; j < G; ++j) {
        const int r = rg[j];
        base[j] = words_base + ring_stride * static_cast<std::size_t>(r);
        rng[j] = rngs[r];
        clk[j] = clks[r];
        step0[j] = clk[j].steps;
      }
      XoshiroLanes<VW> lanes;
      lanes.load(rng);
      // clk.steps stays frozen during the block (every ring advances
      // exactly k), so the rare census path takes the running step as an
      // argument and the hot loop never touches the clocks.
      if constexpr (kLanesOf<VW> == 8 && kHaveHwGather) {
        // Fully vectorized lane: endpoints stay SIMD columns end to end.
        // Each lane's operand address is ring-base + agent*8, so one
        // absolute-address hardware gather/scatter per operand replaces
        // the per-lane extract/insert chains (~100 front-end uops/step).
        // Scatter lanes never collide: one agent per disjoint ring.
        VW vbase;
        for (int j = 0; j < G; ++j) {
          vbase[j] = reinterpret_cast<std::uint64_t>(base[j]);
        }
        const VW vn = vbroadcast<VW>(static_cast<std::uint64_t>(n));
        const VW v1 = vbroadcast<VW>(1);
        // Vector arc_endpoints (same mapping as core/ring.hpp): m is the
        // arc's edge id, succ its clockwise neighbour; a reversed arc
        // (undirected only) swaps initiator and responder.
        const auto draw_vec = [&](VW& pa, VW& pb) __attribute__((
            always_inline)) {
          const VW arcs = lanes.bounded_with_threshold(bound, threshold);
          if constexpr (P::directed) {
            pa = arcs;
            const VW t = arcs + v1;
            pb = t & ~veq(t, vn);
          } else {
            const VW rev = vgt(arcs, vn - v1);  // arc >= n: reversed
            const VW m = arcs - (vn & rev);
            const VW t = m + v1;
            const VW succ = t & ~veq(t, vn);
            pa = (m & ~rev) | (succ & rev);
            pb = (succ & ~rev) | (m & rev);
          }
        };
        VW via{};
        VW vib{};
        if (k > 0) draw_vec(via, vib);
        for (std::uint64_t s = 0; s < k; ++s) {
          const VW aa = vbase + (via << 3);
          const VW ab = vbase + (vib << 3);
          VW wa = gather8_addr(aa);
          VW wb = gather8_addr(ab);
          // Software pipeline: next step's draw ahead of this step's
          // kernel.
          VW nva;
          VW nvb;
          const bool more = s + 1 < k;
          if (more) draw_vec(nva, nvb);
          const VW oa = wa;
          const VW ob = wb;
          P::apply_word_x8(wa, wb, kc);
          scatter8_addr(aa, wa);
          scatter8_addr(ab, wb);
          if constexpr (HasLeaderOutput<P>) {
            const VW dl = (wa ^ oa) | (wb ^ ob);
            if ((orfold(dl) & 1) != 0) [[unlikely]] {
              census_replay_rings<VW>(oa, ob, wa, wb, clk, step0, s);
            }
          }
          if (more) {
            via = nva;
            vib = nvb;
          }
        }
      } else {
        int ia[G] = {};  // zero-init: k == 0 legitimately skips the prologue
        int ib[G] = {};
        const auto draw = [&](int* pa, int* pb) __attribute__((
            always_inline)) {
          const VW arcs = lanes.bounded_with_threshold(bound, threshold);
          for (int j = 0; j < G; ++j) {
            const ArcEndpoints e =
                arc_endpoints(static_cast<int>(arcs[j]), n);
            pa[j] = e.initiator;
            pb[j] = e.responder;
          }
        };
        if (k > 0) draw(ia, ib);
        for (std::uint64_t s = 0; s < k; ++s) {
          VW wa;
          VW wb;
          for (int j = 0; j < G; ++j) {
            wa[j] = base[j][ia[j]];
            wb[j] = base[j][ib[j]];
          }
          // Software pipeline: next step's draw ahead of this step's kernel.
          int na[G];
          int nb[G];
          const bool more = s + 1 < k;
          if (more) draw(na, nb);
          const VW oa = wa;
          const VW ob = wb;
          if constexpr (G == 4) {
            P::apply_word_x4(wa, wb, kc);
          } else {
            P::apply_word_x8(wa, wb, kc);
          }
          for (int j = 0; j < G; ++j) {
            base[j][ia[j]] = wa[j];
            base[j][ib[j]] = wb[j];
          }
          if constexpr (HasLeaderOutput<P>) {
            const VW dl = (wa ^ oa) | (wb ^ ob);
            if ((orfold(dl) & 1) != 0) [[unlikely]] {
              census_replay_rings<VW>(oa, ob, wa, wb, clk, step0, s);
            }
          }
          if (more) {
            for (int j = 0; j < G; ++j) {
              ia[j] = na[j];
              ib[j] = nb[j];
            }
          }
        }
      }
      lanes.store(rng);
      for (int j = 0; j < G; ++j) {
        const int r = rg[j];
        clk[j].steps = step0[j] + k;
        rngs[r] = rng[j];
        clks[r] = clk[j];
      }
    }
    // Leftover rings (< G): the single-ring grouped path, same per-ring
    // trajectory.
    for (; i < nrings; ++i) {
      const int r = rings[i];
      run_impl<VW>(words_base + ring_stride * static_cast<std::size_t>(r), n,
                   bound, threshold, rngs[r], clks[r], kc, k);
    }
  }

  /// Cross-ring lockstep block over the *narrow* (u32) mirror: identical
  /// structure to rings_impl, but one 32-bit element per ring — G = 8 rings
  /// in a 32-byte register (HalfVec8), 16 in a 64-byte one (HalfVec16). The
  /// G per-ring streams still need G full 64-bit xoshiro columns, so the
  /// group carries G/8 eight-lane engines. Same software pipeline, same
  /// frozen-clock census contract, bit-identical per-ring trajectories.
  template <typename VH>
  [[gnu::always_inline]] static inline void rings_narrow_impl(
      std::uint32_t* words_base, std::size_t ring_stride, const int* rings,
      int nrings, int n, std::uint64_t bound, std::uint64_t threshold,
      Xoshiro256pp* rngs, RingClock* clks, const Consts& kc0, std::uint64_t k)
    requires HasNarrowWordKernel<P>
  {
    const Consts kc = kc0;
    constexpr int G = kLanesOf<VH>;
    constexpr int kEngineLanes = kLanesOf<WordVec8>;
    static_assert(G % kEngineLanes == 0);
    constexpr int NE = G / kEngineLanes;
    int i = 0;
    for (; i + G <= nrings; i += G) {
      const int* rg = rings + i;
      std::uint32_t* base[G];
      Xoshiro256pp rng[G];
      RingClock clk[G];
      std::uint64_t step0[G];
      for (int j = 0; j < G; ++j) {
        const int r = rg[j];
        base[j] = words_base + ring_stride * static_cast<std::size_t>(r);
        rng[j] = rngs[r];
        clk[j] = clks[r];
        step0[j] = clk[j].steps;
      }
      XoshiroLanes<WordVec8> lanes[NE];
      for (int e = 0; e < NE; ++e) lanes[e].load(rng + kEngineLanes * e);
      int ia[G] = {};  // zero-init: k == 0 legitimately skips the prologue
      int ib[G] = {};
      const auto draw = [&](int* pa, int* pb) __attribute__((always_inline)) {
        for (int e = 0; e < NE; ++e) {
          const WordVec8 arcs =
              lanes[e].bounded_with_threshold(bound, threshold);
          for (int j = 0; j < kEngineLanes; ++j) {
            const ArcEndpoints ep =
                arc_endpoints(static_cast<int>(arcs[j]), n);
            pa[kEngineLanes * e + j] = ep.initiator;
            pb[kEngineLanes * e + j] = ep.responder;
          }
        }
      };
      if (k > 0) draw(ia, ib);
      for (std::uint64_t s = 0; s < k; ++s) {
        VH wa;
        VH wb;
        for (int j = 0; j < G; ++j) {
          wa[j] = base[j][ia[j]];
          wb[j] = base[j][ib[j]];
        }
        int na[G];
        int nb[G];
        const bool more = s + 1 < k;
        if (more) draw(na, nb);
        const VH oa = wa;
        const VH ob = wb;
        if constexpr (G == 8) {
          P::apply_word_narrow_x8(wa, wb, kc);
        } else {
          P::apply_word_narrow_x16(wa, wb, kc);
        }
        for (int j = 0; j < G; ++j) {
          base[j][ia[j]] = wa[j];
          base[j][ib[j]] = wb[j];
        }
        if constexpr (HasLeaderOutput<P>) {
          const VH dl = (wa ^ oa) | (wb ^ ob);
          // Bit 0 of each u32 lane sits at bits 0 and 32 of the u64 view.
          const std::uint64_t fold = [&] {
            if constexpr (sizeof(VH) == sizeof(WordVec)) {
              return orfold((WordVec)dl);
            } else {
              return orfold((WordVec8)dl);
            }
          }();
          if ((fold & 0x1'00000001ull) != 0) [[unlikely]] {
            census_replay_rings<VH>(oa, ob, wa, wb, clk, step0, s);
          }
        }
        if (more) {
          for (int j = 0; j < G; ++j) {
            ia[j] = na[j];
            ib[j] = nb[j];
          }
        }
      }
      for (int e = 0; e < NE; ++e) lanes[e].store(rng + kEngineLanes * e);
      for (int j = 0; j < G; ++j) {
        const int r = rg[j];
        clk[j].steps = step0[j] + k;
        rngs[r] = rng[j];
        clks[r] = clk[j];
      }
    }
    for (; i < nrings; ++i) {
      const int r = rings[i];
      run_narrow_ring(words_base + ring_stride * static_cast<std::size_t>(r),
                      n, bound, threshold, rngs[r], clks[r], kc, k);
    }
  }

 public:
  /// Scalar per-ring loop over the narrow (u32) mirror — the ensemble's
  /// per-ring advancement at narrow layouts. Deliberately ungrouped: narrow
  /// layouts exist only at small n, where the single-ring disjointness
  /// proof nearly always fails (see single_ring_engaged).
  static void run_narrow_ring(std::uint32_t* words, int n,
                              std::uint64_t bound, std::uint64_t threshold,
                              Xoshiro256pp& rng0, RingClock& clk0,
                              const Consts& kc0, std::uint64_t k)
    requires HasNarrowWordKernel<P>
  {
    Xoshiro256pp rng = rng0;
    RingClock clk = clk0;
    const Consts kc = kc0;
    for (std::uint64_t s = 0; s < k; ++s) {
      const int arc =
          static_cast<int>(rng.bounded_with_threshold(bound, threshold));
      const ArcEndpoints e = arc_endpoints(arc, n);
      std::uint32_t wa = words[e.initiator];
      std::uint32_t wb = words[e.responder];
      const std::uint32_t oa = wa;
      const std::uint32_t ob = wb;
      P::apply_word_narrow_one(wa, wb, kc);
      words[e.initiator] = wa;
      words[e.responder] = wb;
      census_leader_change(oa, ob, wa, wb, clk, clk.steps);
      ++clk.steps;
    }
    rng0 = rng;
    clk0 = clk;
  }

  /// Entry point for the narrow cross-ring lockstep block (see
  /// rings_narrow_impl).
  static void run_rings_narrow_block(std::uint32_t* words_base,
                                     std::size_t ring_stride,
                                     const int* rings, int nrings, int n,
                                     std::uint64_t bound,
                                     std::uint64_t threshold,
                                     Xoshiro256pp* rngs, RingClock* clks,
                                     const Consts& kc, std::uint64_t k)
    requires HasNarrowWordKernel<P>
  {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    const int isa = isa_level();
    if (isa == 2) {
      narrow_avx512(words_base, ring_stride, rings, nrings, n, bound,
                    threshold, rngs, clks, kc, k);
      return;
    }
    if (isa == 1) {
      narrow_avx2(words_base, ring_stride, rings, nrings, n, bound,
                  threshold, rngs, clks, kc, k);
      return;
    }
#endif
    rings_narrow_impl<HalfVec8>(words_base, ring_stride, rings, nrings, n,
                                bound, threshold, rngs, clks, kc, k);
  }

 private:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  __attribute__((target("avx512f,avx512dq,avx512bw,avx512vl"))) static void
  narrow_avx512(std::uint32_t* words_base, std::size_t ring_stride,
                const int* rings, int nrings, int n, std::uint64_t bound,
                std::uint64_t threshold, Xoshiro256pp* rngs, RingClock* clks,
                const Consts& kc, std::uint64_t k)
    requires HasNarrowWordKernel<P>
  {
    rings_narrow_impl<HalfVec16>(words_base, ring_stride, rings, nrings, n,
                                 bound, threshold, rngs, clks, kc, k);
  }
  __attribute__((target("avx2"))) static void narrow_avx2(
      std::uint32_t* words_base, std::size_t ring_stride, const int* rings,
      int nrings, int n, std::uint64_t bound, std::uint64_t threshold,
      Xoshiro256pp* rngs, RingClock* clks, const Consts& kc, std::uint64_t k)
    requires HasNarrowWordKernel<P>
  {
    rings_narrow_impl<HalfVec8>(words_base, ring_stride, rings, nrings, n,
                                bound, threshold, rngs, clks, kc, k);
  }
#endif

 public:
  /// Entry point for the cross-ring lockstep block (see rings_impl).
  static void run_rings_block(std::uint64_t* words_base,
                              std::size_t ring_stride, const int* rings,
                              int nrings, int n, std::uint64_t bound,
                              std::uint64_t threshold, Xoshiro256pp* rngs,
                              RingClock* clks, const Consts& kc,
                              std::uint64_t k) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    const int isa = isa_level();
    if (isa == 2) {
      rings_avx512(words_base, ring_stride, rings, nrings, n, bound,
                   threshold, rngs, clks, kc, k);
      return;
    }
    if (isa == 1) {
      rings_avx2(words_base, ring_stride, rings, nrings, n, bound, threshold,
                 rngs, clks, kc, k);
      return;
    }
#endif
    rings_impl<WordVec>(words_base, ring_stride, rings, nrings, n, bound,
                        threshold, rngs, clks, kc, k);
  }

 private:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  __attribute__((target("avx512f,avx512dq,avx512bw,avx512vl"))) static void
  rings_avx512(std::uint64_t* words_base, std::size_t ring_stride,
               const int* rings, int nrings, int n, std::uint64_t bound,
               std::uint64_t threshold, Xoshiro256pp* rngs, RingClock* clks,
               const Consts& kc, std::uint64_t k) {
    rings_impl<WordVec8>(words_base, ring_stride, rings, nrings, n, bound,
                         threshold, rngs, clks, kc, k);
  }
  __attribute__((target("avx2"))) static void rings_avx2(
      std::uint64_t* words_base, std::size_t ring_stride, const int* rings,
      int nrings, int n, std::uint64_t bound, std::uint64_t threshold,
      Xoshiro256pp* rngs, RingClock* clks, const Consts& kc,
      std::uint64_t k) {
    rings_impl<WordVec>(words_base, ring_stride, rings, nrings, n, bound,
                        threshold, rngs, clks, kc, k);
  }
  __attribute__((target("avx512f,avx512dq,avx512bw,avx512vl"))) static void
  run_avx512(std::uint64_t* words, int n, std::uint64_t bound,
             std::uint64_t threshold, Xoshiro256pp& rng, RingClock& clk,
             const Consts& kc, std::uint64_t k) {
    run_impl<WordVec8>(words, n, bound, threshold, rng, clk, kc, k);
  }
  __attribute__((target("avx2"))) static void run_avx2(
      std::uint64_t* words, int n, std::uint64_t bound,
      std::uint64_t threshold, Xoshiro256pp& rng, RingClock& clk,
      const Consts& kc, std::uint64_t k) {
    run_impl<WordVec>(words, n, bound, threshold, rng, clk, kc, k);
  }
#endif
  static void run_base(std::uint64_t* words, int n, std::uint64_t bound,
                       std::uint64_t threshold, Xoshiro256pp& rng,
                       RingClock& clk, const Consts& kc, std::uint64_t k) {
    run_impl<WordVec>(words, n, bound, threshold, rng, clk, kc, k);
  }
};

/// Simulation runner. Owns the configuration, the scheduler RNG and step
/// bookkeeping. Copyable (snapshot = copy). `Topo` selects the interaction
/// topology (core/topology.hpp); the default RingTopology reproduces the
/// historical ring engine bit for bit, and the word-kernel path is a
/// ring-only specialization — other topologies compile it out and take the
/// scalar engine.
template <typename P, typename Topo = RingTopology>
class Runner {
  static_assert(TopologyLike<Topo>);

 public:
  using State = typename P::State;
  using Params = typename P::Params;
  using Topology = Topo;
  using Engine = InteractionEngine<P>;
  using WordLayout = typename detail::WordLayoutOf<P>::type;
  using WordConsts = typename detail::WordConstsOf<P>::type;

  static constexpr std::uint64_t npos =
      std::numeric_limits<std::uint64_t>::max();

  /// run(k) dispatches to the protocol's word-packed kernel when it has one
  /// (see HasWordKernel): the configuration is lazily mirrored into a u64
  /// array, the hot loop runs on words, and the scalar states materialize on
  /// demand. All other paths (step, apply_arc, run_unbatched, set_agent)
  /// stay scalar — run_unbatched is the scalar *reference* the kernel is
  /// differentially fuzzed against. The kernel's grouped driver proves
  /// disjointness with ring arc arithmetic, so it exists only on
  /// RingTopology; any other topology is scalar by construction.
  static constexpr bool kWordKernel =
      WordKernelRunnable<P> && std::is_same_v<Topo, RingTopology>;

  Runner(Params params, std::vector<State> initial, std::uint64_t seed)
      : params_(std::move(params)),
        topo_(params_.n),
        agents_(std::move(initial)),
        rng_(seed),
        seed_(seed) {
    init_engine();
  }

  /// Explicit-topology constructor (topologies that carry more than n).
  Runner(Topo topo, Params params, std::vector<State> initial,
         std::uint64_t seed)
      : params_(std::move(params)),
        topo_(std::move(topo)),
        agents_(std::move(initial)),
        rng_(seed),
        seed_(seed) {
    assert(topo_.n() == params_.n);
    init_engine();
  }

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] const Topo& topology() const noexcept { return topo_; }
  [[nodiscard]] std::span<const State> agents() const noexcept {
    sync_states();
    return agents_;
  }
  [[nodiscard]] const State& agent(int i) const {
    sync_states();
    return agents_.at(i);
  }
  [[nodiscard]] int n() const noexcept { return params_.n; }
  [[nodiscard]] std::uint64_t steps() const noexcept { return clk_.steps; }

  /// Number of arcs (= number of equally likely interactions per step under
  /// the clean uniform scheduler).
  [[nodiscard]] int arc_count() const noexcept {
    return topo_.arc_count(P::directed);
  }

  /// Leader census (maintained incrementally; only meaningful when the
  /// protocol has a leader output).
  [[nodiscard]] int leader_count() const noexcept { return clk_.leader_count; }

  /// Token census (maintained incrementally; only meaningful when the
  /// protocol has a `has_token` output).
  [[nodiscard]] int token_count() const noexcept { return clk_.token_count; }

  /// Step index of the most recent change to the *set* of leaders, or 0.
  [[nodiscard]] std::uint64_t last_leader_change() const noexcept {
    return clk_.last_leader_change;
  }

  /// Oracle delay (steps of uninterrupted leaderlessness before Omega?
  /// reports absence). 0 = immediate reporting, the paper's Table-1 regime.
  void set_oracle_delay(std::uint64_t d) noexcept { clk_.oracle_delay = d; }

  /// Overwrite one agent's state (fault injection / adversarial setup).
  /// Counts as a change of the leader set at the current step when the
  /// injected state flips the agent's leader output, so fault-injection
  /// harnesses reading `last_leader_change()` see the injection.
  ///
  /// The census is updated by the delta of the touched agent's predicates
  /// (O(1), no full recount), so fault storms cost O(faults) rather than
  /// O(faults * n). An injection into an already-leaderless population does
  /// not reset the Omega? leaderless clock to "now" — the oracle's delay
  /// counts from the original onset of leaderlessness — and injecting the
  /// last leader away starts the clock at the current step, exactly as a
  /// transition would.
  void set_agent(int i, const State& s) {
    prepare_scalar_mutation();
    Engine::set_agent(agents_.at(i), s, params_, clk_);
  }

  /// Configure the scheduler fault models (see SchedulerFaults). Resets the
  /// loss stream to its trial-derived origin (stream_seed(seed,
  /// kLossStreamTag)), so
  /// configuring faults then running is deterministic per seed. Active
  /// faults pin the runner to the scalar path permanently.
  void set_scheduler_faults(const SchedulerFaults& f) {
    assert(f.loss_p >= 0.0 && f.loss_p <= 1.0);
    assert(f.arc_weights.empty() ||
           static_cast<int>(f.arc_weights.size()) == arc_count());
    loss_threshold_ = detail::probability_threshold(f.loss_p);
    bias_ = f.arc_weights.empty() ? detail::BiasTable{}
                                  : detail::BiasTable(f.arc_weights);
    sched_active_ = loss_threshold_ != 0 || !bias_.empty();
    loss_rng_ = Xoshiro256pp(stream_seed(seed_, kLossStreamTag));
    if (sched_active_) force_scalar_path();
  }

  /// True when a scheduler fault model (loss or bias) is configured.
  [[nodiscard]] bool scheduler_faults_active() const noexcept {
    return sched_active_;
  }

  /// Execute a single uniformly random interaction.
  void step() {
    if (!sched_active_) {
      apply_arc(static_cast<int>(rng_.bounded(arc_count())));
      return;
    }
    prepare_scalar_mutation();
    const int arc = draw_faulted_arc();
    if (lose_draw()) {
      ++clk_.steps;
      return;
    }
    Engine::apply_arc(agents_.data(), topo_.endpoints(arc), params_, clk_);
  }

  /// True while run(k) dispatches to the protocol's word-packed kernel.
  /// Always false for protocols without one; starts false below the
  /// grouped path's engagement threshold (see
  /// WordGroupDriver::single_ring_engaged — force_word_path() opts back
  /// in); drops (permanently) to false when a state outside the packed
  /// domain enters via set_agent or the initial configuration, or after
  /// force_scalar_path().
  [[nodiscard]] bool word_path_active() const noexcept {
    return word_active_;
  }

  /// Permanently pin run(k) to the scalar batched path (no-op for protocols
  /// without a word kernel). Exists so benches can measure scalar-vs-kernel
  /// in one binary and the differential harness can drive both side by side.
  void force_scalar_path() {
    sync_states();
    word_active_ = false;
    word_capable_ = false;
    words_fresh_ = false;
    words_.clear();
    words_.shrink_to_fit();
  }

  /// Opt into the word kernel below the engagement threshold (tests and
  /// differential lanes exercise the kernel at small n where the heuristic
  /// would keep it off). No-op when the kernel is structurally unavailable:
  /// no word kernel, capacity probe failed, an out-of-domain state was
  /// seen, or force_scalar_path() was called — those stay scalar forever.
  void force_word_path() {
    if constexpr (kWordKernel) word_active_ = word_capable_;
  }

  /// Execute `k` uniformly random interactions through the fused fast path
  /// (the word-packed kernel when the protocol has one, the scalar batched
  /// loop otherwise — bit-identical trajectories either way).
  void run(std::uint64_t k) {
    if constexpr (kWordKernel) {
      if (word_active_ && ensure_words()) {
        run_word(k);
        return;
      }
    }
    prepare_scalar_mutation();
    const auto bound = static_cast<std::uint64_t>(arc_count());
    const std::uint64_t threshold = Xoshiro256pp::rejection_threshold(bound);
    State* const agents = agents_.data();
    // Local topology copy: byte stores through `agents` could alias the
    // member under TBAA and force per-iteration reloads of the endpoint
    // arithmetic's inputs (same reasoning as EnsembleRunner's hoisted
    // locals).
    const Topo topo = topo_;
    if (!sched_active_) {
      for (std::uint64_t i = 0; i < k; ++i) {
        Engine::apply_arc_batched(
            agents,
            topo.endpoints(static_cast<int>(
                rng_.bounded_with_threshold(bound, threshold))),
            params_, clk_);
      }
      return;
    }
    // Faulted loop, kept separate so the clean loop's codegen is untouched.
    for (std::uint64_t i = 0; i < k; ++i) {
      const int arc =
          bias_.empty()
              ? static_cast<int>(rng_.bounded_with_threshold(bound, threshold))
              : bias_.draw(rng_);
      if (lose_draw()) {
        ++clk_.steps;
        continue;
      }
      Engine::apply_arc_batched(agents, topo.endpoints(arc), params_, clk_);
    }
  }

  /// Execute `k` uniformly random interactions one draw at a time with the
  /// unconditional before/after census — the pre-batching engine, kept as
  /// the reference path (bench/throughput_json.cpp measures both in one
  /// binary).
  void run_unbatched(std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step();
  }

  /// Execute the interaction identified by `arc` (deterministic scheduling;
  /// always bypasses scheduler faults). For directed protocols arc in
  /// [0, F); for undirected, arcs in [F, 2F) are the endpoint-swapped pairs
  /// (F = topology().forward_arcs(); on the ring F = n and arc n + i
  /// reverses e_i).
  void apply_arc(int arc) {
    prepare_scalar_mutation();
    Engine::apply_arc(agents_.data(), topo_.endpoints(arc), params_, clk_);
  }

  /// Apply a whole deterministic interaction sequence (arc ids).
  void apply_sequence(std::span<const int> arcs) {
    for (int a : arcs) apply_arc(a);
  }

  /// Run until `pred(agents, params)` holds, checking every `check_every`
  /// steps (granularity of the reported hitting step). Returns the step count
  /// at the first satisfied check, or nullopt if `max_steps` elapse first.
  template <typename Pred>
  std::optional<std::uint64_t> run_until(Pred&& pred, std::uint64_t max_steps,
                                         std::uint64_t check_every = 0) {
    if (check_every == 0)
      check_every = static_cast<std::uint64_t>(params_.n);
    if (pred(agents(), params_)) return clk_.steps;
    const std::uint64_t deadline = clk_.steps + max_steps;
    while (clk_.steps < deadline) {
      const std::uint64_t block =
          std::min<std::uint64_t>(check_every, deadline - clk_.steps);
      run(block);
      if (pred(agents(), params_)) return clk_.steps;
    }
    return std::nullopt;
  }

  /// Run `k` steps invoking `observer(runner, arc)` after every interaction.
  template <typename Observer>
  void run_observed(std::uint64_t k, Observer&& observer) {
    for (std::uint64_t i = 0; i < k; ++i) {
      const int arc = static_cast<int>(rng_.bounded(arc_count()));
      apply_arc(arc);
      observer(*this, arc);
    }
  }

 private:
  /// Shared constructor tail: census recount and word-kernel capability
  /// probing.
  void init_engine() {
    assert(static_cast<int>(agents_.size()) == params_.n);
    Engine::recount(agents_, params_, clk_);
    if constexpr (kWordKernel) {
      layout_ = P::word_layout(params_);
      // The grouped driver reads the leader output off bit 0 of the word;
      // probe that word_leader really is that bit, so a layout with the
      // flag elsewhere keeps the scalar path instead of corrupting the
      // census.
      word_capable_ = layout_.fits() && P::word_leader(1, layout_) &&
                      !P::word_leader(0, layout_);
      // Below the measured engagement threshold the grouped path loses to
      // the scalar batched loop (disjointness proofs keep failing), so it
      // starts disengaged; force_word_path() opts back in.
      word_active_ = word_capable_ &&
                     WordGroupDriver<P>::single_ring_engaged(params_.n);
      if (word_capable_) consts_ = P::make_word_consts(layout_);
    }
  }

  /// One faulted-scheduler arc draw at step() granularity (no hoisted
  /// Lemire threshold; same stream values as the hoisted form).
  [[nodiscard]] int draw_faulted_arc() {
    return bias_.empty()
               ? static_cast<int>(
                     rng_.bounded(static_cast<std::uint64_t>(arc_count())))
               : bias_.draw(rng_);
  }

  /// Consume one loss draw iff the omission model is on; true = lost.
  [[nodiscard]] bool lose_draw() {
    return loss_threshold_ != 0 && loss_rng_() < loss_threshold_;
  }

  /// Materialize agents_ from the word mirror if the last run(k) block left
  /// the scalar states stale. Logically const (lazy view refresh).
  void sync_states() const noexcept {
    if constexpr (kWordKernel) {
      if (!states_stale_) return;
      for (std::size_t i = 0; i < agents_.size(); ++i)
        agents_[i] = P::unpack_word(words_[i], layout_);
      states_stale_ = false;
    }
  }

  /// A scalar-path mutation is about to touch agents_: materialize them and
  /// invalidate the word mirror (it will be lazily repacked by the next
  /// kernel block).
  void prepare_scalar_mutation() noexcept {
    if constexpr (kWordKernel) {
      sync_states();
      words_fresh_ = false;
    }
  }

  /// Pack the configuration into the word mirror. Any state that fails the
  /// round-trip acceptance test (= outside the packed domain, e.g. an
  /// injected fault with dist >= 2psi) permanently drops the runner to the
  /// scalar path — exact, just slower; mirrors EnsembleRunner's LUT
  /// fallback contract.
  [[nodiscard]] bool ensure_words()
    requires(kWordKernel)
  {
    if (words_fresh_) return true;
    words_.resize(agents_.size());
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      const std::uint64_t w = P::pack_word(agents_[i], layout_);
      if (!(P::unpack_word(w, layout_) == agents_[i])) {
        word_active_ = false;
        word_capable_ = false;
        return false;
      }
      words_[i] = w;
    }
    words_fresh_ = true;
    return true;
  }

  /// The word-kernel hot loop: the shared grouped driver (same RNG draws
  /// as the scalar batched path, leader-bit delta census, bit-identical
  /// trajectories — see WordGroupDriver).
  void run_word(std::uint64_t k)
    requires(kWordKernel)
  {
    const auto bound = static_cast<std::uint64_t>(arc_count());
    const std::uint64_t threshold = Xoshiro256pp::rejection_threshold(bound);
    WordGroupDriver<P>::run_block(words_.data(), params_.n, bound, threshold,
                                  rng_, clk_, consts_, k);
    states_stale_ = true;
  }

  Params params_;
  Topo topo_;  ///< after params_: the default ctor builds it from params_.n
  /// In word-kernel runs this block is a lazily refreshed materialization of
  /// `words_` (see `states_stale_`), hence mutable: accessors are logically
  /// const.
  mutable std::vector<State> agents_;
  Xoshiro256pp rng_;
  std::uint64_t seed_ = 0;          ///< origin seed (loss-stream derivation)
  Xoshiro256pp loss_rng_{};  ///< placeholder; set_scheduler_faults derives it
  detail::BiasTable bias_;          ///< non-empty = biased arc distribution
  std::uint64_t loss_threshold_ = 0;  ///< 0 = omission model off
  bool sched_active_ = false;         ///< any scheduler fault model on
  RingClock clk_;
  WordLayout layout_{};                 ///< valid only when kWordKernel
  WordConsts consts_{};                 ///< kernel constants (word path)
  std::vector<std::uint64_t> words_;    ///< u64 mirror of agents_
  bool words_fresh_ = false;            ///< words_ mirrors agents_
  mutable bool states_stale_ = false;   ///< agents_ behind words_
  bool word_active_ = false;            ///< kernel dispatch enabled
  bool word_capable_ = false;           ///< kernel structurally available
};

}  // namespace ppsim::core

#pragma GCC diagnostic pop
