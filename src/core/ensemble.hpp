// Trial-batched simulation: R independent rings of the same Params advanced
// in one engine, for the campaign workloads the SS-LE evaluation lives on
// (thousands of trials per (protocol, n, fault-schedule) cell).
//
// Why: a per-trial Runner pays the full dispatch loop per trial, and at small
// n — exactly where tail statistics need the most trials — per-trial overhead
// dominates. EnsembleRunner keeps all R rings' agent states in one contiguous
// struct-of-arrays block (ring r occupies slots [r*n, (r+1)*n)), one
// RingClock and one Xoshiro256pp stream per ring in parallel arrays, and
// advances rings in blocks with the ring's RNG and clock copied into locals
// (register-resident across the block — going through the stored arrays
// measured ~1.6x slower; the compiler cannot keep pointer-indirected RNG
// state in registers).
//
// The campaign win is the *packed-state mode*: protocols that expose a
// canonical O(1) enumeration of their per-agent state space
// (num_states / pack_state / unpack_state — the modk baseline does) and take
// no oracle input get their entire pair-transition function precomputed into
// a lookup table at construction: one 8-byte entry per (initiator,
// responder) state pair holding the packed successor states and the census
// deltas (leader delta, token delta, leader-set-changed bit). The hot loop
// then runs on a parallel array of 16-bit packed states — one L1 load
// replaces the branchy transition and all census predicate evaluations, and
// the branch-misprediction cost of random-scheduler transitions (the
// dominant per-step cost: a modk step is ~8 ns branchy vs ~1.4 ns of RNG)
// disappears. Measured ~2x campaign throughput over the per-trial Runner
// path on small-n modk cells (BENCH_ensemble.json). Full State objects are
// materialized lazily (per-ring dirty bit) when a predicate or accessor
// needs them. A ring-interleaved variant of both kernels was tried and
// rejected: on the reference container register pressure beats the ILP win
// from overlapping independent RNG chains (0.9-1.1x, vs 2x+ for the packed
// mode).
//
// Determinism contract: ring r owns *exactly* the RNG stream a standalone
// Runner<P> constructed with the same seed would own, rings never interact,
// and every interaction either goes through the shared InteractionEngine<P>
// fast path or through a table entry precomputed *by that same code path* —
// so each ring's trajectory, census and clock are bit-identical to the
// single-ring engine (tests/core/ensemble_test.cpp). The packed mode
// additionally self-validates: at construction every enumerated state must
// round-trip pack/unpack and every transition must stay inside the
// enumerated space, and every state entering the ensemble (add_ring,
// set_agent) must round-trip — any violation permanently drops the ensemble
// to the generic path, never to a wrong trajectory. This is what lets
// analysis::measure_convergence / measure_convergence_parallel /
// measure_recovery shard their trials into ensembles without changing a
// single published number.
//
// The third engine lane is the *word-kernel lane* (core::HasWordKernel —
// P_PL): protocols whose state space is far too large for the LUT but
// whose whole variable block bit-slices into one uint64_t run the shared
// branchless SIMD kernel (core::WordGroupDriver) on a u64 mirror, with the
// same lazy materialization, delta census and round-trip fallback contract
// the LUT lane has. run(k) advances rings in *cross-ring lockstep* — one
// SIMD lane per ring, no disjointness proofs, effective at any n — and
// run_until_each batches the rings still owed a full check_every block.
//
// run_until_each mirrors Runner::run_until per ring (pre-check, then blocks
// of check_every against a per-ring deadline); converged or timed-out rings
// retire from a compacted active index array so a few slow rings never pay
// for the fast majority.
#pragma once

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "core/ring.hpp"
#include "core/rng.hpp"
#include "core/runner.hpp"

namespace ppsim::core {

/// Protocols with a canonical enumeration of their per-agent state space:
/// pack_state is injective on the domain, unpack_state is its inverse, and
/// the domain is closed under apply (validated at table build — violations
/// disable the packed mode rather than corrupting trajectories).
template <typename P>
concept HasPackedStates =
    requires(const typename P::State& s, const typename P::Params& p,
             std::size_t v) {
      { P::num_states(p) } -> std::convertible_to<std::size_t>;
      { P::pack_state(s, p) } -> std::convertible_to<std::size_t>;
      { P::unpack_state(v, p) } -> std::convertible_to<typename P::State>;
    };

template <typename P, typename Topo = RingTopology>
class EnsembleRunner {
  static_assert(TopologyLike<Topo>);

 public:
  using State = typename P::State;
  using Params = typename P::Params;
  using Topology = Topo;
  using Engine = InteractionEngine<P>;

  static constexpr std::uint64_t npos =
      std::numeric_limits<std::uint64_t>::max();

  /// Packed-state mode is available when the state space is enumerable, the
  /// protocol takes no oracle input (the table key is the state pair alone)
  /// and states are equality-comparable (round-trip validation).
  static constexpr bool kPackable = HasPackedStates<P> && !WantsOracle<P> &&
                                    std::equality_comparable<State>;

  /// Word-kernel mode (the *kernel lane*): protocols exposing a 64-bit
  /// bit-sliced transition kernel (core::HasWordKernel — P_PL) whose state
  /// space is far too large for the pair-transition LUT. The hot loop runs
  /// apply_word on a u64 mirror with the same lazy State materialization,
  /// delta census and fallback contract the LUT lane has: any state that
  /// fails the pack/unpack round trip (out of the declared domain) drops
  /// the ensemble to the generic path, never to a wrong trajectory.
  /// Ring-only (the driver's endpoint arithmetic and disjointness proofs
  /// are ring math); the LUT lane, by contrast, is topology-generic.
  static constexpr bool kWordable =
      WordKernelRunnable<P> && std::is_same_v<Topo, RingTopology>;

  /// Regime-narrowed word lane: when the protocol's kernel also
  /// instantiates at 32-bit elements (core::HasNarrowWordKernel) *and* the
  /// layout for these parameters fits a half-word (P_PL at small n /
  /// small c1), the mirror is u32 instead of u64 and the cross-ring
  /// lockstep lane carries twice the rings per vector register. Same
  /// round-trip fallback contract; bit-identical trajectories.
  static constexpr bool kNarrowable = kWordable && HasNarrowWordKernel<P>;
  using WordLayout = typename detail::WordLayoutOf<P>::type;
  using WordConsts = typename detail::WordConstsOf<P>::type;

  /// Pair-space cap for the transition table: 2^16 pairs = 512 KiB of
  /// entries. Above that the table thrashes the cache and the branchy
  /// transition wins again.
  static constexpr std::size_t kMaxLutPairs = std::size_t{1} << 16;

  explicit EnsembleRunner(Params params, int reserve_rings = 0)
      : params_(std::move(params)),
        topo_(params_.n),
        bound_(static_cast<std::uint64_t>(topo_.arc_count(P::directed))),
        threshold_(Xoshiro256pp::rejection_threshold(bound_)) {
    init_modes(reserve_rings);
  }

  /// Explicit-topology constructor (topologies that carry more than n).
  EnsembleRunner(Topo topo, Params params, int reserve_rings = 0)
      : params_(std::move(params)),
        topo_(std::move(topo)),
        bound_(static_cast<std::uint64_t>(topo_.arc_count(P::directed))),
        threshold_(Xoshiro256pp::rejection_threshold(bound_)) {
    assert(topo_.n() == params_.n);
    init_modes(reserve_rings);
  }

  /// Append one ring initialized from `initial`, seeded exactly like
  /// `Runner<P>(params, initial, seed)`. Returns the ring index.
  int add_ring(std::span<const State> initial, std::uint64_t seed) {
    assert(static_cast<int>(initial.size()) == params_.n);
    states_.insert(states_.end(), initial.begin(), initial.end());
    rngs_.emplace_back(seed);
    seeds_.push_back(seed);
    loss_rngs_.emplace_back(stream_seed(seed, kLossStreamTag));
    RingClock clk;
    clk.oracle_delay = oracle_delay_;
    Engine::recount(initial, params_, clk);
    clocks_.push_back(clk);
    dirty_.push_back(0);
    if constexpr (kPackable) {
      if (lut_active_) {
        for (const State& s : initial) {
          const std::size_t ps = P::pack_state(s, params_);
          if (ps >= lut_states_ ||
              !(P::unpack_state(ps, params_) == s)) {
            deactivate_lut();  // out-of-domain state: generic path, forever
            break;
          }
          packed_.push_back(static_cast<std::uint16_t>(ps));
        }
      }
    }
    if constexpr (kWordable) {
      if (word_active_) {
        for (const State& s : initial) {
          const std::uint64_t w = P::pack_word(s, layout_);
          if (!(P::unpack_word(w, layout_) == s)) {
            deactivate_word();  // out-of-domain state: generic path, forever
            break;
          }
          if constexpr (kNarrowable) {
            if (narrow_active_) {
              // Lossless: fits_narrow bounds total_bits <= 32.
              words32_.push_back(static_cast<std::uint32_t>(w));
              continue;
            }
          }
          words_.push_back(w);
        }
      }
    }
    return static_cast<int>(clocks_.size()) - 1;
  }

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] int n() const noexcept { return params_.n; }
  [[nodiscard]] int ring_count() const noexcept {
    return static_cast<int>(clocks_.size());
  }

  /// True while the precomputed pair-transition table drives the hot loop
  /// (introspection for tests and benches; trajectories are identical either
  /// way).
  [[nodiscard]] bool packed_mode() const noexcept { return lut_active_; }

  /// True while the word-packed kernel lane drives the hot loop (P_PL's
  /// bit-sliced apply_word; introspection only — trajectories are identical
  /// to the generic path).
  [[nodiscard]] bool word_kernel_mode() const noexcept {
    return word_active_;
  }

  /// True while the word-kernel lane runs on the narrow (u32) mirror — the
  /// regime-narrowed layout at small n. Implies word_kernel_mode().
  [[nodiscard]] bool narrow_word_mode() const noexcept {
    return narrow_active_;
  }

  [[nodiscard]] std::span<const State> agents(int r) const {
    sync_ring(check_ring(r));
    return {states_.data() + ring_offset(r),
            static_cast<std::size_t>(params_.n)};
  }
  [[nodiscard]] const State& agent(int r, int i) const {
    assert(i >= 0 && i < params_.n);
    sync_ring(check_ring(r));
    return states_[ring_offset(r) + static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t steps(int r) const { return clock(r).steps; }
  [[nodiscard]] int leader_count(int r) const {
    return clock(r).leader_count;
  }
  [[nodiscard]] int token_count(int r) const { return clock(r).token_count; }
  [[nodiscard]] std::uint64_t last_leader_change(int r) const {
    return clock(r).last_leader_change;
  }

  [[nodiscard]] const Topo& topology() const noexcept { return topo_; }

  /// Oracle delay for every ring, current and future (mirrors
  /// Runner::set_oracle_delay).
  void set_oracle_delay(std::uint64_t d) noexcept {
    oracle_delay_ = d;
    for (RingClock& c : clocks_) c.oracle_delay = d;
  }

  /// Configure the scheduler fault models for every ring, current and
  /// future (see core::SchedulerFaults and Runner::set_scheduler_faults).
  /// Every ring's loss stream is (re)derived as stream_seed(ring_seed,
  /// kLossStreamTag),
  /// so ring r's faulted trajectory stays bit-identical to a standalone
  /// Runner constructed with the same seed and faults. Active faults
  /// permanently drop the ensemble to the generic path (the accelerated
  /// lanes assume the clean uniform scheduler — exactly as Runner pins
  /// itself scalar).
  void set_scheduler_faults(const SchedulerFaults& f) {
    assert(f.loss_p >= 0.0 && f.loss_p <= 1.0);
    assert(f.arc_weights.empty() ||
           f.arc_weights.size() == static_cast<std::size_t>(bound_));
    loss_threshold_ = detail::probability_threshold(f.loss_p);
    bias_ = f.arc_weights.empty() ? detail::BiasTable{}
                                  : detail::BiasTable(f.arc_weights);
    sched_active_ = loss_threshold_ != 0 || !bias_.empty();
    for (std::size_t r = 0; r < seeds_.size(); ++r)
      loss_rngs_[r] = Xoshiro256pp(stream_seed(seeds_[r], kLossStreamTag));
    if (sched_active_) force_generic_path();
  }

  /// True when a scheduler fault model (loss or bias) is configured.
  [[nodiscard]] bool scheduler_faults_active() const noexcept {
    return sched_active_;
  }

  /// Permanently leave every accelerated mode (LUT and word kernel; no-op
  /// when already generic): every subsequent interaction goes through the
  /// shared InteractionEngine fast path. Trajectories are bit-identical
  /// either way — this exists so the differential fuzz harness
  /// (src/verification/differential.hpp) can drive the generic and
  /// accelerated kernels side by side on protocols where the accelerator
  /// would otherwise always win.
  void force_generic_path() {
    deactivate_lut();
    deactivate_word();
  }

  /// Fault injection into ring r, delta-census, identical to
  /// Runner::set_agent. In packed mode the injected state must round-trip
  /// the packing; otherwise the ensemble drops to the generic path (still
  /// exact, just slower).
  void set_agent(int r, int i, const State& s) {
    assert(i >= 0 && i < params_.n);
    sync_ring(check_ring(r));
    const std::size_t slot =
        ring_offset(r) + static_cast<std::size_t>(i);
    Engine::set_agent(states_[slot], s, params_,
                      clocks_[static_cast<std::size_t>(r)]);
    if constexpr (kPackable) {
      if (lut_active_) {
        const std::size_t ps = P::pack_state(s, params_);
        if (ps >= lut_states_ || !(P::unpack_state(ps, params_) == s)) {
          deactivate_lut();
        } else {
          packed_[slot] = static_cast<std::uint16_t>(ps);
        }
      }
    }
    if constexpr (kWordable) {
      if (word_active_) {
        const std::uint64_t w = P::pack_word(s, layout_);
        if (!(P::unpack_word(w, layout_) == s)) {
          deactivate_word();
        } else if constexpr (kNarrowable) {
          if (narrow_active_) {
            words32_[slot] = static_cast<std::uint32_t>(w);
          } else {
            words_[slot] = w;
          }
        } else {
          words_[slot] = w;
        }
      }
    }
  }

  /// Advance every ring `k` interactions (each through its own stream). In
  /// word-kernel mode the rings advance in lockstep — one SIMD lane per
  /// ring (WordGroupDriver::run_rings_block); per-ring trajectories are
  /// bit-identical to per-ring advancement, rings share nothing.
  void run(std::uint64_t k) {
    if constexpr (kWordable) {
      if (word_active_ && k > 0 && ring_count() > 0) {
        // Reusable [0, ring_count) index list — grown, never shrunk, so
        // campaigns interleaving many small run(k) blocks with faults pay
        // no per-call allocation.
        while (static_cast<int>(all_rings_.size()) < ring_count())
          all_rings_.push_back(static_cast<int>(all_rings_.size()));
        advance_rings_word(all_rings_, ring_count(), k);
        return;
      }
    }
    for (int r = 0; r < ring_count(); ++r) advance_ring(r, k);
  }

  /// Advance one ring `k` interactions (exact-offset scheduling, e.g. fault
  /// injection at a precise step).
  void run_ring(int r, std::uint64_t k) { advance_ring(check_ring(r), k); }

  /// Per-ring Runner::run_until over the whole ensemble: for every ring,
  /// check `pred` up front, then run blocks of `check_every` (0 = every ~n)
  /// against a per-ring deadline of `max_steps` further interactions,
  /// retiring rings from a compacted active set as they hit the predicate or
  /// the deadline. Returns, per ring, the step count at the first satisfied
  /// check (exactly Runner::run_until's value) or npos on timeout.
  template <typename Pred>
  [[nodiscard]] std::vector<std::uint64_t> run_until_each(
      Pred&& pred, std::uint64_t max_steps, std::uint64_t check_every = 0) {
    std::vector<int> rings(clocks_.size());
    for (std::size_t r = 0; r < rings.size(); ++r)
      rings[r] = static_cast<int>(r);
    std::vector<std::uint64_t> hits(clocks_.size(), npos);
    run_until_each(rings, pred, max_steps, check_every, hits);
    return hits;
  }

  /// Subset form: only the rings listed in `rings` participate (the others
  /// do not advance). `hits` must span ring_count(); entries of
  /// non-participating rings are left untouched.
  template <typename Pred>
  void run_until_each(std::vector<int> rings, Pred&& pred,
                      std::uint64_t max_steps, std::uint64_t check_every,
                      std::span<std::uint64_t> hits) {
    assert(hits.size() == clocks_.size());
    if (check_every == 0)
      check_every = static_cast<std::uint64_t>(params_.n);
    // Per-ring deadline, indexed by ring id (mirrors Runner::run_until's
    // `deadline = steps + max_steps` computed at entry).
    std::vector<std::uint64_t> deadline(clocks_.size(), 0);
    // Pre-check: a ring already satisfying the predicate hits at its current
    // step without consuming any randomness.
    std::size_t w = 0;
    for (int r : rings) {
      const auto ri = static_cast<std::size_t>(check_ring(r));
      if (pred(agents(r), params_)) {
        hits[ri] = clocks_[ri].steps;
        continue;
      }
      deadline[ri] = clocks_[ri].steps + max_steps;
      rings[w++] = r;
    }
    rings.resize(w);

    [[maybe_unused]] std::vector<int> batch;  // word lane: full-size blocks
    while (!rings.empty()) {
      // One pass: advance every active ring by min(check_every, remaining)
      // interactions, check, retire, compact. In word-kernel mode the rings
      // still owed a full check_every block (the common case away from
      // deadlines) advance in one cross-ring lockstep batch; everything
      // else goes through the one shared per-ring loop.
      bool advanced = false;
      if constexpr (kWordable) {
        if (word_active_) {
          batch.clear();
          for (int r : rings) {
            const auto ri = static_cast<std::size_t>(r);
            if (deadline[ri] - clocks_[ri].steps >= check_every)
              batch.push_back(r);
            else
              advance_ring(r, deadline[ri] - clocks_[ri].steps);
          }
          if (!batch.empty())
            advance_rings_word(batch, static_cast<int>(batch.size()),
                               check_every);
          advanced = true;
        }
      }
      if (!advanced) {
        for (int r : rings) {
          const auto ri = static_cast<std::size_t>(r);
          advance_ring(r, std::min<std::uint64_t>(
                              check_every, deadline[ri] - clocks_[ri].steps));
        }
      }
      w = 0;
      for (int r : rings) {
        const auto ri = static_cast<std::size_t>(r);
        if (pred(agents(r), params_)) {
          hits[ri] = clocks_[ri].steps;
          continue;
        }
        if (clocks_[ri].steps >= deadline[ri]) continue;  // timeout: npos
        rings[w++] = r;
      }
      rings.resize(w);
    }
  }

 private:
  /// Shared constructor tail: storage reservation and accelerator-mode
  /// probing (LUT, then the ring-only word lanes).
  void init_modes(int reserve_rings) {
    if (reserve_rings > 0) {
      const auto r = static_cast<std::size_t>(reserve_rings);
      states_.reserve(r * static_cast<std::size_t>(params_.n));
      clocks_.reserve(r);
      rngs_.reserve(r);
    }
    if constexpr (kPackable) build_lut();
    if constexpr (kWordable) {
      if (!lut_active_) {
        layout_ = P::word_layout(params_);
        // Same bit-0 leader probe as Runner (see its constructor).
        word_active_ = layout_.fits() && P::word_leader(1, layout_) &&
                       !P::word_leader(0, layout_);
        if (word_active_) consts_ = P::make_word_consts(layout_);
        if constexpr (kNarrowable) {
          narrow_active_ = word_active_ && P::word_fits_narrow(layout_);
        }
      }
    }
  }

  /// Transition-table entry for one (initiator, responder) packed pair:
  /// packed successor states plus the exact census deltas the generic
  /// census_after would have computed. 8 bytes; the whole modk table is
  /// ~18 KiB and L1-resident.
  struct LutEntry {
    std::uint16_t pa = 0;
    std::uint16_t pb = 0;
    std::int8_t d_leader = 0;
    std::int8_t d_token = 0;
    std::uint8_t leader_changed = 0;
    std::uint8_t pad = 0;
  };
  static_assert(sizeof(LutEntry) == 8);

  [[nodiscard]] std::size_t ring_offset(int r) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(params_.n);
  }

  [[nodiscard]] int check_ring(int r) const {
    assert(r >= 0 && r < ring_count());
    return r;
  }

  [[nodiscard]] const RingClock& clock(int r) const {
    return clocks_[static_cast<std::size_t>(check_ring(r))];
  }

  /// Enumerate the pair-transition table through the same P::apply and
  /// census predicates the generic path runs, validating that every state
  /// round-trips the packing and every transition stays in the enumerated
  /// domain. Any violation leaves the ensemble on the generic path.
  void build_lut()
    requires(kPackable)
  {
    const std::size_t S = P::num_states(params_);
    if (S == 0 || S > 0xFFFF || S * S > kMaxLutPairs) return;
    std::vector<State> domain(S);
    for (std::size_t v = 0; v < S; ++v) {
      domain[v] = P::unpack_state(v, params_);
      if (P::pack_state(domain[v], params_) != v) return;  // not canonical
    }
    lut_.resize(S * S);
    for (std::size_t sa = 0; sa < S; ++sa) {
      for (std::size_t sb = 0; sb < S; ++sb) {
        State a = domain[sa];
        State b = domain[sb];
        bool la = false, lb = false;
        int ta = 0, tb = 0;
        if constexpr (HasLeaderOutput<P>) {
          la = P::is_leader(a, params_);
          lb = P::is_leader(b, params_);
        }
        if constexpr (HasTokenCensus<P>) {
          ta = P::has_token(a, params_) ? 1 : 0;
          tb = P::has_token(b, params_) ? 1 : 0;
        }
        P::apply(a, b, params_);
        const std::size_t pa = P::pack_state(a, params_);
        const std::size_t pb = P::pack_state(b, params_);
        if (pa >= S || pb >= S || !(P::unpack_state(pa, params_) == a) ||
            !(P::unpack_state(pb, params_) == b)) {
          lut_.clear();  // domain not closed under apply
          return;
        }
        LutEntry& e = lut_[sa * S + sb];
        e.pa = static_cast<std::uint16_t>(pa);
        e.pb = static_cast<std::uint16_t>(pb);
        if constexpr (HasLeaderOutput<P>) {
          const bool la2 = P::is_leader(a, params_);
          const bool lb2 = P::is_leader(b, params_);
          e.d_leader = static_cast<std::int8_t>(
              static_cast<int>(la2) - static_cast<int>(la) +
              static_cast<int>(lb2) - static_cast<int>(lb));
          e.leader_changed = la != la2 || lb != lb2;
        }
        if constexpr (HasTokenCensus<P>) {
          e.d_token = static_cast<std::int8_t>(
              (P::has_token(a, params_) ? 1 : 0) - ta +
              (P::has_token(b, params_) ? 1 : 0) - tb);
        }
      }
    }
    lut_states_ = S;
    lut_active_ = true;
  }

  /// Leave packed mode permanently: materialize every ring's states, then
  /// drop the packed mirror. Trajectories continue on the generic path.
  void deactivate_lut() {
    for (int r = 0; r < ring_count(); ++r) sync_ring(r);
    lut_active_ = false;
    packed_.clear();
    packed_.shrink_to_fit();
  }

  /// Leave the word-kernel lane permanently (narrow or wide), same
  /// contract as deactivate_lut.
  void deactivate_word() {
    for (int r = 0; r < ring_count(); ++r) sync_ring(r);
    word_active_ = false;
    narrow_active_ = false;
    words_.clear();
    words_.shrink_to_fit();
    words32_.clear();
    words32_.shrink_to_fit();
  }

  /// Materialize ring r's State block from the active accelerator mirror if
  /// stale. dirty_ is only ever set by the accelerator hot loops, so at most
  /// one mirror can be the stale ring's source of truth.
  void sync_ring(int r) const {
    if constexpr (kPackable || kWordable) {
      const auto ri = static_cast<std::size_t>(r);
      if (!dirty_[ri]) return;
      const std::size_t off = ring_offset(r);
      if constexpr (kPackable) {
        if (lut_active_) {
          for (int i = 0; i < params_.n; ++i) {
            states_[off + static_cast<std::size_t>(i)] = P::unpack_state(
                packed_[off + static_cast<std::size_t>(i)], params_);
          }
          dirty_[ri] = 0;
          return;
        }
      }
      if constexpr (kWordable) {
        if (word_active_) {
          if constexpr (kNarrowable) {
            if (narrow_active_) {
              for (int i = 0; i < params_.n; ++i) {
                states_[off + static_cast<std::size_t>(i)] = P::unpack_word(
                    words32_[off + static_cast<std::size_t>(i)], layout_);
              }
              dirty_[ri] = 0;
              return;
            }
          }
          for (int i = 0; i < params_.n; ++i) {
            states_[off + static_cast<std::size_t>(i)] = P::unpack_word(
                words_[off + static_cast<std::size_t>(i)], layout_);
          }
          dirty_[ri] = 0;
        }
      }
    }
  }

  void advance_ring(int r, std::uint64_t k) {
    if (k == 0) return;
    if constexpr (kPackable) {
      if (lut_active_) {
        advance_ring_packed(r, k);
        return;
      }
    }
    if constexpr (kWordable) {
      if (word_active_) {
        advance_ring_word(r, k);
        return;
      }
    }
    advance_ring_generic(r, k);
  }

  /// Generic block: the shared InteractionEngine fast path, with the ring's
  /// RNG and clock in locals for the duration of the block (the compiler
  /// keeps them in registers; through the arrays they reload every step).
  /// [[gnu::flatten]] pins the full inlining of apply_arc_batched and the
  /// RNG into this block regardless of translation-unit size: in a TU that
  /// instantiates several protocols' engines (bench/ensemble_json.cpp),
  /// GCC's unit-growth budget otherwise stops inlining here and the
  /// ensemble lane measures ~0.75x of the per-trial Runner while the
  /// stand-alone instantiation measures ~1.05x — the PR-3
  /// BENCH_ensemble.json yokota28 regression was exactly this artifact.
  [[gnu::flatten]] void advance_ring_generic(int r, std::uint64_t k) {
    State* const agents = states_.data() + ring_offset(r);
    const auto ri = static_cast<std::size_t>(r);
    // bound_/threshold_/topo_ hoisted into locals for the same reason
    // rng/clk are: the loop's byte-sized state stores may alias *this under
    // the strict aliasing rules (unsigned char writes alias everything), so
    // the member loads would otherwise be re-issued every iteration —
    // measured as the per-trial-Runner-vs-ensemble gap on yokota28
    // (README.md, BENCH_ensemble.json).
    const std::uint64_t bound = bound_;
    const std::uint64_t threshold = threshold_;
    const Topo topo = topo_;
    Xoshiro256pp rng = rngs_[ri];
    RingClock clk = clocks_[ri];
    if (!sched_active_) {
      for (std::uint64_t i = 0; i < k; ++i) {
        Engine::apply_arc_batched(
            agents,
            topo.endpoints(static_cast<int>(
                rng.bounded_with_threshold(bound, threshold))),
            params_, clk);
      }
    } else {
      // Faulted-scheduler loop, kept out of the clean loop so its codegen
      // is untouched. Same draws (and the same loss stream consumption) as
      // Runner's faulted scalar loop.
      const std::uint64_t loss_threshold = loss_threshold_;
      Xoshiro256pp loss_rng = loss_rngs_[ri];
      for (std::uint64_t i = 0; i < k; ++i) {
        const int arc = bias_.empty()
                            ? static_cast<int>(rng.bounded_with_threshold(
                                  bound, threshold))
                            : bias_.draw(rng);
        if (loss_threshold != 0 && loss_rng() < loss_threshold) {
          ++clk.steps;
          continue;
        }
        Engine::apply_arc_batched(agents, topo.endpoints(arc), params_, clk);
      }
      loss_rngs_[ri] = loss_rng;
    }
    rngs_[ri] = rng;
    clocks_[ri] = clk;
  }

  /// Packed block: one table load per interaction on the u16 mirror; the
  /// census updates replay exactly what census_after computes (the deltas
  /// were precomputed by it, entry by entry). States go stale until the next
  /// sync_ring.
  [[gnu::flatten]] void advance_ring_packed(int r, std::uint64_t k)
    requires(kPackable)
  {
    const auto ri = static_cast<std::size_t>(r);
    std::uint16_t* const packed = packed_.data() + ring_offset(r);
    const LutEntry* const lut = lut_.data();
    const std::size_t S = lut_states_;
    const std::uint64_t bound = bound_;
    const std::uint64_t threshold = threshold_;
    Xoshiro256pp rng = rngs_[ri];
    RingClock clk = clocks_[ri];
    const Topo topo = topo_;
    for (std::uint64_t i = 0; i < k; ++i) {
      const int arc =
          static_cast<int>(rng.bounded_with_threshold(bound, threshold));
      const ArcEndpoints e = topo.endpoints(arc);
      const std::size_t pa = packed[e.initiator];
      const std::size_t pb = packed[e.responder];
      const LutEntry& en = lut[pa * S + pb];
      packed[e.initiator] = en.pa;
      packed[e.responder] = en.pb;
      if constexpr (HasLeaderOutput<P>) {
        clk.leader_count += en.d_leader;
        if (en.leader_changed != 0) clk.last_leader_change = clk.steps + 1;
        if (clk.leader_count > 0) {
          clk.leaderless_since = RingClock::npos;
        } else if (clk.leaderless_since == RingClock::npos) {
          clk.leaderless_since = clk.steps + 1;
        }
        if constexpr (HasTokenCensus<P>) clk.token_count += en.d_token;
      }
      ++clk.steps;
    }
    rngs_[ri] = rng;
    clocks_[ri] = clk;
    dirty_[ri] = 1;
  }

  /// Kernel-lane block: the shared grouped word-kernel driver on this
  /// ring's slice of the u64 mirror — literally the same code path as
  /// Runner::run's word lane (WordGroupDriver), so per-ring bit-identity
  /// between the engines is by construction. States go stale until the
  /// next sync_ring.
  void advance_ring_word(int r, std::uint64_t k)
    requires(kWordable)
  {
    const auto ri = static_cast<std::size_t>(r);
    if constexpr (kNarrowable) {
      if (narrow_active_) {
        WordGroupDriver<P>::run_narrow_ring(
            words32_.data() + ring_offset(r), params_.n, bound_, threshold_,
            rngs_[ri], clocks_[ri], consts_, k);
        dirty_[ri] = 1;
        return;
      }
    }
    WordGroupDriver<P>::run_block(words_.data() + ring_offset(r), params_.n,
                                  bound_, threshold_, rngs_[ri], clocks_[ri],
                                  consts_, k);
    dirty_[ri] = 1;
  }

  /// Cross-ring lockstep: every listed ring advances `k` interactions with
  /// one SIMD lane per ring (no disjointness proofs — rings share
  /// nothing). Bit-identical per ring to advance_ring_word.
  void advance_rings_word(const std::vector<int>& rings, int nrings,
                          std::uint64_t k)
    requires(kWordable)
  {
    if constexpr (kNarrowable) {
      if (narrow_active_) {
        WordGroupDriver<P>::run_rings_narrow_block(
            words32_.data(), static_cast<std::size_t>(params_.n),
            rings.data(), nrings, params_.n, bound_, threshold_,
            rngs_.data(), clocks_.data(), consts_, k);
        for (int i = 0; i < nrings; ++i)
          dirty_[static_cast<std::size_t>(
              rings[static_cast<std::size_t>(i)])] = 1;
        return;
      }
    }
    WordGroupDriver<P>::run_rings_block(
        words_.data(), static_cast<std::size_t>(params_.n), rings.data(),
        nrings, params_.n, bound_, threshold_, rngs_.data(), clocks_.data(),
        consts_, k);
    for (int i = 0; i < nrings; ++i)
      dirty_[static_cast<std::size_t>(
          rings[static_cast<std::size_t>(i)])] = 1;
  }

  Params params_;
  Topo topo_;  ///< after params_: the (Params, int) ctor builds it from .n
  std::uint64_t bound_;
  std::uint64_t threshold_;
  std::uint64_t oracle_delay_ = 0;
  std::vector<std::uint64_t> seeds_;     ///< per-ring origin seeds
  std::vector<Xoshiro256pp> loss_rngs_;  ///< per-ring omission streams
  detail::BiasTable bias_;               ///< non-empty = biased distribution
  std::uint64_t loss_threshold_ = 0;     ///< 0 = omission model off
  bool sched_active_ = false;            ///< any scheduler fault model on
  /// Ring r's states at [r*n, (r+1)*n). In packed mode this block is a
  /// lazily refreshed materialization of `packed_` (see `dirty_`), hence
  /// mutable: accessors are logically const.
  mutable std::vector<State> states_;
  std::vector<RingClock> clocks_;   ///< parallel to rings
  std::vector<Xoshiro256pp> rngs_;  ///< parallel to rings
  mutable std::vector<std::uint8_t> dirty_;  ///< states_ stale vs packed_
  std::vector<LutEntry> lut_;       ///< S*S pair table (packed mode)
  std::vector<std::uint16_t> packed_;  ///< u16 mirror of states_, same layout
  std::size_t lut_states_ = 0;
  bool lut_active_ = false;
  WordLayout layout_{};             ///< valid only in word-kernel mode
  WordConsts consts_{};             ///< kernel constants (word-kernel mode)
  std::vector<std::uint64_t> words_;  ///< u64 mirror of states_, same layout
  std::vector<std::uint32_t> words32_;  ///< narrow mirror (replaces words_)
  std::vector<int> all_rings_;      ///< reusable [0, ring_count) id list
  bool word_active_ = false;        ///< word-kernel lane drives the hot loop
  bool narrow_active_ = false;      ///< the mirror is words32_, not words_
};

/// Mutable view of one *running* ring — the engine-agnostic surface fault
/// injectors need (analysis/scenario.hpp's ScenarioSpec::inject). Wraps
/// either a standalone Runner or one ring of an EnsembleRunner, so the same
/// injection code serves both the per-trial reference path and the
/// trial-batched campaign path. Two pointers wide; pass by value.
template <typename P, typename Topo = RingTopology>
class RingView {
 public:
  using State = typename P::State;
  using Params = typename P::Params;

  explicit RingView(Runner<P, Topo>& runner) noexcept : runner_(&runner) {}
  RingView(EnsembleRunner<P, Topo>& ensemble, int ring) noexcept
      : ensemble_(&ensemble), ring_(ring) {}

  [[nodiscard]] const Params& params() const noexcept {
    return runner_ != nullptr ? runner_->params() : ensemble_->params();
  }
  [[nodiscard]] int n() const noexcept { return params().n; }
  [[nodiscard]] std::span<const State> agents() const {
    return runner_ != nullptr ? runner_->agents() : ensemble_->agents(ring_);
  }
  [[nodiscard]] std::uint64_t steps() const {
    return runner_ != nullptr ? runner_->steps() : ensemble_->steps(ring_);
  }

  /// Fault injection (delta census in both engines).
  void set_agent(int i, const State& s) {
    if (runner_ != nullptr) {
      runner_->set_agent(i, s);
    } else {
      ensemble_->set_agent(ring_, i, s);
    }
  }

 private:
  Runner<P, Topo>* runner_ = nullptr;
  EnsembleRunner<P, Topo>* ensemble_ = nullptr;
  int ring_ = 0;
};

}  // namespace ppsim::core
