// Deterministic, fast random number generation for the simulation hot loop.
//
// xoshiro256++ (Blackman & Vigna) seeded via SplitMix64. Chosen over
// std::mt19937_64 for speed (the uniformly random scheduler draws one bounded
// integer per interaction, billions per experiment) and for trivially
// reproducible cross-platform streams.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <limits>

#include "core/wordlane.hpp"

// XoshiroLanes carries wide vector state; every member is force-inlined into
// the ISA-dispatched driver clones, so no vector-ABI symbol materializes.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace ppsim::core {

/// SplitMix64: used to expand a single 64-bit seed into a full xoshiro state.
/// Also a perfectly fine standalone generator for non-hot-path needs.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0. Satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift with rejection.
  /// Precondition: bound > 0.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    __extension__ using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Lemire rejection threshold for `bounded`/`bounded_with_threshold`:
  /// draws whose low product half falls below it must be rejected for
  /// exact uniformity.
  [[nodiscard]] static constexpr std::uint64_t rejection_threshold(
      std::uint64_t bound) noexcept {
    return (0 - bound) % bound;
  }

  /// `bounded(bound)` with the rejection threshold hoisted by the caller
  /// (amortized Lemire for hot loops with a fixed bound). Same stream and
  /// same values as `bounded(bound)`.
  std::uint64_t bounded_with_threshold(std::uint64_t bound,
                                       std::uint64_t threshold) noexcept {
    __extension__ using u128 = unsigned __int128;
    u128 m = static_cast<u128>((*this)()) * static_cast<u128>(bound);
    while (static_cast<std::uint64_t>(m) < threshold) {
      m = static_cast<u128>((*this)()) * static_cast<u128>(bound);
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Block bounded sampling: fill `dst[0, count)` with uniform integers in
  /// [0, bound), bound in (0, 2^32]. Amortized Lemire — the rejection
  /// threshold is hoisted out of the loop. Consumes exactly the same
  /// generator stream and produces exactly the same values as `count` calls
  /// to `bounded(bound)` (stream identity verified in
  /// tests/core/rng_test.cpp). Note: the Runner's fast path uses the fused
  /// `bounded_with_threshold` instead — draining the generator's serial
  /// chain into a buffer up front measured slower there (README.md); this
  /// block sampler is kept for callers that want arc schedules as data.
  void fill_bounded(std::uint32_t* dst, std::size_t count,
                    std::uint64_t bound) noexcept {
    assert(bound > 0 && bound <= (1ULL << 32));
    const std::uint64_t threshold = rejection_threshold(bound);
    for (std::size_t i = 0; i < count; ++i) {
      dst[i] =
          static_cast<std::uint32_t>(bounded_with_threshold(bound, threshold));
    }
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool coin() noexcept { return ((*this)() >> 63) != 0; }

  /// Raw engine state, and its inverse — the columnar lane engine
  /// (XoshiroLanes) moves streams between scalar engines and SIMD columns
  /// through these without perturbing them.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  [[nodiscard]] static Xoshiro256pp from_state(
      const std::array<std::uint64_t, 4>& s) noexcept {
    Xoshiro256pp r;
    r.state_ = s;
    return r;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Lane-parallel xoshiro256++: kLanes *independent* streams advanced as SIMD
/// columns. Column j is bit-identical — value for value, and in stream
/// position — to the scalar Xoshiro256pp whose state was loaded into it, so
/// a driver can freely switch between per-ring scalar draws and one columnar
/// draw for the whole group without changing a single trajectory.
///
/// V is a 64-bit-element lane type from core/wordlane.hpp (WordVec for 4
/// streams / AVX2, WordVec8 for 8 streams / AVX-512). State is stored
/// column-major: s_[w][j] is word w of stream j, so one xoshiro step is four
/// vector ops wide and touches every stream at once.
template <typename V>
class XoshiroLanes {
 public:
  static constexpr int kLanes = kLanesOf<V>;
  static_assert(sizeof(typename lane_traits<V>::element) == 8,
                "XoshiroLanes columns are 64-bit streams");

  XoshiroLanes() noexcept : s_{} {}

  /// Column j adopts the stream of engines[j] (state copied, not aliased).
  void load(const Xoshiro256pp* engines) noexcept {
    for (int w = 0; w < 4; ++w)
      for (int j = 0; j < kLanes; ++j) s_[w][j] = engines[j].state()[w];
  }

  /// Write column j's stream position back into engines[j].
  void store(Xoshiro256pp* engines) const noexcept {
    for (int j = 0; j < kLanes; ++j) {
      std::array<std::uint64_t, 4> st;
      for (int w = 0; w < 4; ++w) st[w] = s_[w][j];
      engines[j] = Xoshiro256pp::from_state(st);
    }
  }

  /// One xoshiro256++ step in every column.
  [[gnu::always_inline]] V next() noexcept {
    const V result = vrotl(s_[0] + s_[3], 23) + s_[0];
    const V t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = vrotl(s_[3], 45);
    return result;
  }

  /// Lane-parallel `Xoshiro256pp::bounded_with_threshold`: one draw per
  /// column, all columns at once. The accept case — overwhelmingly likely
  /// for scheduler bounds (rejection probability < bound/2^64) — is pure
  /// vector dataflow; a rejected column redraws through its own scalar
  /// stream out of line, so per-column stream consumption stays exact.
  [[gnu::always_inline]] V bounded_with_threshold(
      std::uint64_t bound, std::uint64_t threshold) noexcept {
    const V x = next();
    V hi, lo;
    mulwide(x, bound, hi, lo);
    // Native < on unsigned-element vectors is an UNSIGNED elementwise
    // compare — exactly the Lemire rejection test.
    const V rejected = (V)(lo < vbroadcast<V>(threshold));
    if (__builtin_expect(anyset(rejected), 0)) {
      redraw_rejected(hi, rejected, bound, threshold);
    }
    return hi;
  }

 private:
  [[gnu::always_inline]] static V vrotl(V x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  /// Full 128-bit product per column, split as hi/lo 64-bit halves. Vector
  /// ISAs have no 64x64->128 multiply, so build it from 32-bit partial
  /// products; when the bound fits 32 bits (every scheduler bound: arcs
  /// number at most 2^33 only past n = 2^32 agents) two multiplies suffice.
  [[gnu::always_inline]] static void mulwide(V x, std::uint64_t bound, V& hi,
                                             V& lo) noexcept {
    const V lo32 = vbroadcast<V>(0xFFFFFFFFULL);
    const V xl = x & lo32;
    const V xh = x >> 32;
    if (bound <= (1ULL << 32)) {
      const V b = vbroadcast<V>(bound);
      const V pl = xl * b;
      const V ph = xh * b;
      const V mid = ph + (pl >> 32);
      hi = mid >> 32;
      lo = (mid << 32) | (pl & lo32);
    } else {
      const V bl = vbroadcast<V>(bound & 0xFFFFFFFFULL);
      const V bh = vbroadcast<V>(bound >> 32);
      const V t = xl * bl;
      const V u = xh * bl + (t >> 32);
      const V v = xl * bh + (u & lo32);
      hi = xh * bh + (u >> 32) + (v >> 32);
      lo = (v << 32) | (t & lo32);
    }
  }

  [[gnu::always_inline]] static bool anyset(V m) noexcept {
    std::uint64_t acc = 0;
    for (int j = 0; j < kLanes; ++j) acc |= m[j];
    return acc != 0;
  }

  /// Cold path: a column's first draw fell below the Lemire threshold.
  /// Replay that column's remaining draws through a scalar engine — the
  /// exact loop `bounded_with_threshold` runs — and fold the result and the
  /// advanced stream position back into the column.
  [[gnu::cold, gnu::noinline]] void redraw_rejected(
      V& hi, V rejected, std::uint64_t bound,
      std::uint64_t threshold) noexcept {
    __extension__ using u128 = unsigned __int128;
    for (int j = 0; j < kLanes; ++j) {
      if (!rejected[j]) continue;
      std::array<std::uint64_t, 4> st;
      for (int w = 0; w < 4; ++w) st[w] = s_[w][j];
      Xoshiro256pp e = Xoshiro256pp::from_state(st);
      u128 m = static_cast<u128>(e()) * static_cast<u128>(bound);
      while (static_cast<std::uint64_t>(m) < threshold) {
        m = static_cast<u128>(e()) * static_cast<u128>(bound);
      }
      hi[j] = static_cast<std::uint64_t>(m >> 64);
      for (int w = 0; w < 4; ++w) s_[w][j] = e.state()[w];
    }
  }

  V s_[4];
};

/// Derive a fresh, decorrelated seed for trial #index of experiment `tag`.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t tag,
                                    std::uint64_t index) noexcept {
  SplitMix64 sm(base ^ (tag * 0xD1342543DE82EF95ULL) ^
                (index * 0x2545F4914F6CDD1DULL));
  SplitMix64 sm2(sm.next());
  return sm2.next();
}

}  // namespace ppsim::core

#pragma GCC diagnostic pop
