// Deterministic, fast random number generation for the simulation hot loop.
//
// xoshiro256++ (Blackman & Vigna) seeded via SplitMix64. Chosen over
// std::mt19937_64 for speed (the uniformly random scheduler draws one bounded
// integer per interaction, billions per experiment) and for trivially
// reproducible cross-platform streams.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <limits>

namespace ppsim::core {

/// SplitMix64: used to expand a single 64-bit seed into a full xoshiro state.
/// Also a perfectly fine standalone generator for non-hot-path needs.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0. Satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift with rejection.
  /// Precondition: bound > 0.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    __extension__ using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Lemire rejection threshold for `bounded`/`bounded_with_threshold`:
  /// draws whose low product half falls below it must be rejected for
  /// exact uniformity.
  [[nodiscard]] static constexpr std::uint64_t rejection_threshold(
      std::uint64_t bound) noexcept {
    return (0 - bound) % bound;
  }

  /// `bounded(bound)` with the rejection threshold hoisted by the caller
  /// (amortized Lemire for hot loops with a fixed bound). Same stream and
  /// same values as `bounded(bound)`.
  std::uint64_t bounded_with_threshold(std::uint64_t bound,
                                       std::uint64_t threshold) noexcept {
    __extension__ using u128 = unsigned __int128;
    u128 m = static_cast<u128>((*this)()) * static_cast<u128>(bound);
    while (static_cast<std::uint64_t>(m) < threshold) {
      m = static_cast<u128>((*this)()) * static_cast<u128>(bound);
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Block bounded sampling: fill `dst[0, count)` with uniform integers in
  /// [0, bound), bound in (0, 2^32]. Amortized Lemire — the rejection
  /// threshold is hoisted out of the loop. Consumes exactly the same
  /// generator stream and produces exactly the same values as `count` calls
  /// to `bounded(bound)` (stream identity verified in
  /// tests/core/rng_test.cpp). Note: the Runner's fast path uses the fused
  /// `bounded_with_threshold` instead — draining the generator's serial
  /// chain into a buffer up front measured slower there (README.md); this
  /// block sampler is kept for callers that want arc schedules as data.
  void fill_bounded(std::uint32_t* dst, std::size_t count,
                    std::uint64_t bound) noexcept {
    assert(bound > 0 && bound <= (1ULL << 32));
    const std::uint64_t threshold = rejection_threshold(bound);
    for (std::size_t i = 0; i < count; ++i) {
      dst[i] =
          static_cast<std::uint32_t>(bounded_with_threshold(bound, threshold));
    }
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool coin() noexcept { return ((*this)() >> 63) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derive a fresh, decorrelated seed for trial #index of experiment `tag`.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t tag,
                                    std::uint64_t index) noexcept {
  SplitMix64 sm(base ^ (tag * 0xD1342543DE82EF95ULL) ^
                (index * 0x2545F4914F6CDD1DULL));
  SplitMix64 sm2(sm.next());
  return sm2.next();
}

}  // namespace ppsim::core
