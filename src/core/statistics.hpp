// Small statistics toolkit for experiment summaries: location/dispersion
// summaries, percentiles, least-squares fits on log-log data (empirical
// scaling exponents), and a chi-square uniformity statistic for scheduler
// validation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ppsim::core {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> sample);
[[nodiscard]] Summary summarize_u64(std::span<const std::uint64_t> sample);

/// Percentile with linear interpolation; q in [0, 1]. Sample need not be
/// sorted (a sorted copy is made).
[[nodiscard]] double percentile(std::span<const double> sample, double q);

/// Simple linear least squares y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

[[nodiscard]] LinearFit fit_linear(std::span<const double> x,
                                   std::span<const double> y);

/// Fit y ~ c * x^e on log-log axes. Returns exponent e, constant c, and r2.
/// Points with a non-positive or non-finite coordinate cannot be placed on
/// log-log axes; they are skipped (counted in `skipped`) instead of silently
/// feeding NaN/-inf into the regression. When fewer than two usable points
/// remain the fit is returned clearly invalid: `valid == false` and
/// exponent/constant/r2 all NaN.
struct PowerFit {
  double exponent = 0.0;
  double constant = 0.0;
  double r2 = 0.0;
  int skipped = 0;     ///< input points excluded from the regression
  bool valid = false;  ///< false = fewer than 2 usable points, values are NaN
};

[[nodiscard]] PowerFit fit_power(std::span<const double> x,
                                 std::span<const double> y);

/// Pearson chi-square statistic for observed counts vs a uniform expectation.
/// (Degrees of freedom = counts.size() - 1.)
[[nodiscard]] double chi_square_uniform(std::span<const std::uint64_t> counts);

/// Human-readable "1.23e+06" style formatting used by the table printers.
[[nodiscard]] std::string format_sci(double v, int precision = 3);

}  // namespace ppsim::core
