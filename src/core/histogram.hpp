// Log-bucketed histogram for lifetime/latency distributions (token
// trajectories, signal lifetimes, recovery times).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace ppsim::core {

/// Power-of-two bucketed histogram over [0, 2^63).
class LogHistogram {
 public:
  void add(std::uint64_t value) {
    ++count_;
    sum_ += static_cast<double>(value);
    max_ = std::max(max_, value);
    min_ = count_ == 1 ? value : std::min(min_, value);
    std::size_t bucket = 0;
    while ((1ULL << bucket) <= value && bucket < 63) ++bucket;
    if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }

  /// Bucket-resolution quantile, with the endpoint and rank conventions
  /// pinned (tests/core/histogram_timeseries_test.cpp):
  ///
  ///   * q <= 0 returns min() and q >= 1 returns max() — the exact sample
  ///     extremes, not bucket bounds. (Before the fix, q = 0 returned the
  ///     first non-empty bucket's *upper* bound: for a histogram of the
  ///     single value 4 it answered 7.)
  ///   * otherwise: let k = ceil(q * count), the 1-indexed rank of the
  ///     q-quantile. The result is the upper bound of the first bucket whose
  ///     cumulative count reaches k (cumulative >= k — an exact bucket
  ///     boundary hit selects the bucket that *contains* the k-th smallest
  ///     sample, not the next one), clamped into [min(), max()] so a
  ///     sparsely-filled extreme bucket cannot report a value outside the
  ///     observed range.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    auto k = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    k = std::clamp<std::uint64_t>(k, 1, count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      seen += buckets_[b];
      if (seen >= k) {
        const std::uint64_t hi = b == 0 ? 0 : (1ULL << b) - 1;
        return std::clamp(hi, min_, max_);
      }
    }
    return max_;
  }

  /// ASCII rendition, one row per non-empty bucket.
  [[nodiscard]] std::string render(int width = 40) const {
    std::string out;
    std::uint64_t peak = 0;
    for (auto b : buckets_) peak = std::max(peak, b);
    if (peak == 0) return "(empty)\n";
    char line[160];
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      if (buckets_[b] == 0) continue;
      const int bar = static_cast<int>(
          static_cast<double>(buckets_[b]) * width /
          static_cast<double>(peak));
      const unsigned long long lo = b == 0 ? 0 : (1ULL << (b - 1));
      const unsigned long long hi = (1ULL << b) - 1;
      std::snprintf(line, sizeof line, "[%10llu, %10llu] %8llu |", lo, hi,
                    static_cast<unsigned long long>(buckets_[b]));
      out += line;
      out.append(static_cast<std::size_t>(bar), '#');
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace ppsim::core
