// Strict environment-variable parsing shared by every PPSIM_* knob.
//
// The historical parsers were raw std::atoi: a typo like PPSIM_TRIALS=1O0
// (letter O) silently became 1, and PPSIM_THREADS=x became 0 — both then
// drove a real campaign with a silently-wrong plan. Here a malformed value
// is a hard error: the full string must parse as a base-10 integer
// (strtoll, no trailing garbage, no overflow), and anything else prints the
// offending variable and exits with status 2 — a mis-typed knob can never
// masquerade as a small trial count.
//
// Negative-value semantics are deliberate and documented at each call site:
// env_int/env_int64 *return* negatives verbatim (they parsed correctly —
// they are not garbage), and the caller decides what a negative means
// (PPSIM_THREADS <= 0 falls back to hardware concurrency; a negative
// PPSIM_TRIALS degrades to zero trials in the experiment drivers).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace ppsim::core {

/// Strict integer environment override: returns `fallback` when `name` is
/// unset or empty, the parsed value when the whole string is a base-10
/// integer, and exits(2) with a diagnostic on anything else (trailing
/// garbage, overflow). Negatives are returned verbatim — see header comment.
[[nodiscard]] inline std::int64_t env_int64(const char* name,
                                            std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "ppsim: %s='%s' is not an integer (strict parse; "
                 "refusing to run with a garbled knob)\n",
                 name, v);
    std::exit(2);
  }
  return static_cast<std::int64_t>(parsed);
}

/// env_int64 narrowed to int; values outside int's range are rejected with
/// the same hard error as garbage (a 64-bit count fed to an int knob is a
/// plan the caller cannot represent, not a value to truncate).
[[nodiscard]] inline int env_int(const char* name, int fallback) {
  const std::int64_t v = env_int64(name, fallback);
  if (v < INT32_MIN || v > INT32_MAX) {
    std::fprintf(stderr, "ppsim: %s=%lld does not fit a 32-bit knob\n", name,
                 static_cast<long long>(v));
    std::exit(2);
  }
  return static_cast<int>(v);
}

}  // namespace ppsim::core
