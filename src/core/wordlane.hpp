// Lane abstraction for word-packed transition kernels (see
// pl/packed_protocol.hpp and the WordGroupDriver in core/runner.hpp).
//
// A branchless word kernel is pure dataflow over 64-bit words, so the same
// source can execute one interaction per call (lane type = uint64_t) or
// four scheduler-independent interactions at once (lane type = WordVec, a
// GCC/Clang generic vector of 4 x u64 that lowers to AVX2 on capable x86,
// SSE2 pairs otherwise, NEON on arm). Kernels are written against the tiny
// helper set below:
//
//   vbroadcast<V>(x)  splat a scalar into every lane
//   veq / vgt         lane-wise compare producing a FULL-WIDTH mask
//                     (all-ones / all-zero) per lane; vgt is SIGNED (the
//                     kernels' field values are < 2^63, and wrapped
//                     negatives must compare as negatives)
//   vsel(m, a, b)     per-lane a-if-mask-else-b as mask-and-xor dataflow —
//                     immune to the optimizer re-introducing branches
//   vmask(w, bit)     full-width mask from one bit of each lane
//
// Shift-by-scalar, +, -, &, |, ^, ~ come straight from the vector
// extension (and work identically on the uint64_t instantiation).
#pragma once

#include <cstdint>
#include <type_traits>

// The 32-byte vector type changes calling convention under AVX; every
// helper here is force-inlined, so the ABI of a standalone symbol never
// materializes — the warning is noise.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace ppsim::core {

typedef std::uint64_t WordVec __attribute__((vector_size(32)));
typedef std::int64_t WordVecS __attribute__((vector_size(32)));
typedef std::uint64_t WordVec8 __attribute__((vector_size(64)));
typedef std::int64_t WordVec8S __attribute__((vector_size(64)));

/// Lanes of a vector type (4 for WordVec / AVX2, 8 for WordVec8 / AVX-512).
template <typename V>
inline constexpr int kLanesOf = static_cast<int>(sizeof(V) / 8);

/// Lanes in the narrow grouped kernel dispatch (WordVec width).
inline constexpr int kWordLanes = 4;

template <typename V>
[[nodiscard, gnu::always_inline]] inline V vbroadcast(
    std::uint64_t x) noexcept {
  if constexpr (std::is_same_v<V, std::uint64_t>) {
    return x;
  } else {
    V v{};
    return v + x;
  }
}

[[nodiscard, gnu::always_inline]] inline std::uint64_t veq(
    std::uint64_t a, std::uint64_t b) noexcept {
  return a == b ? ~std::uint64_t{0} : std::uint64_t{0};
}
[[nodiscard, gnu::always_inline]] inline std::uint64_t vgt(
    std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<std::int64_t>(a) > static_cast<std::int64_t>(b)
             ? ~std::uint64_t{0}
             : std::uint64_t{0};
}
[[nodiscard, gnu::always_inline]] inline WordVec veq(WordVec a,
                                                     WordVec b) noexcept {
  return (WordVec)(a == b);
}
[[nodiscard, gnu::always_inline]] inline WordVec vgt(WordVec a,
                                                     WordVec b) noexcept {
  return (WordVec)((WordVecS)a > (WordVecS)b);
}
[[nodiscard, gnu::always_inline]] inline WordVec8 veq(WordVec8 a,
                                                      WordVec8 b) noexcept {
  return (WordVec8)(a == b);
}
[[nodiscard, gnu::always_inline]] inline WordVec8 vgt(WordVec8 a,
                                                      WordVec8 b) noexcept {
  return (WordVec8)((WordVec8S)a > (WordVec8S)b);
}

template <typename V>
[[nodiscard, gnu::always_inline]] inline V vsel(V m, V a, V b) noexcept {
  return b ^ ((a ^ b) & m);
}

template <typename V>
[[nodiscard, gnu::always_inline]] inline V vmask(V w, unsigned bit) noexcept {
  return V{} - ((w >> bit) & vbroadcast<V>(1));
}

}  // namespace ppsim::core

#pragma GCC diagnostic pop
