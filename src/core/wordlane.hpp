// Lane abstraction for word-packed transition kernels (see
// pl/packed_protocol.hpp and the WordGroupDriver in core/runner.hpp).
//
// A branchless word kernel is pure dataflow over 64-bit words, so the same
// source can execute one interaction per call (lane type = uint64_t) or
// four scheduler-independent interactions at once (lane type = WordVec, a
// GCC/Clang generic vector of 4 x u64 that lowers to AVX2 on capable x86,
// SSE2 pairs otherwise, NEON on arm). Kernels are written against the tiny
// helper set below:
//
//   vbroadcast<V>(x)  splat a scalar into every lane
//   veq / vgt         lane-wise compare producing a FULL-WIDTH mask
//                     (all-ones / all-zero) per lane; vgt is SIGNED (the
//                     kernels' field values are < 2^63, and wrapped
//                     negatives must compare as negatives)
//   vsel(m, a, b)     per-lane a-if-mask-else-b as mask-and-xor dataflow —
//                     immune to the optimizer re-introducing branches
//   vmask(w, bit)     full-width mask from one bit of each lane
//
// Shift-by-scalar, +, -, &, |, ^, ~ come straight from the vector
// extension (and work identically on the uint64_t instantiation).
#pragma once

#include <cstdint>
#include <type_traits>

// The 32-byte vector type changes calling convention under AVX; every
// helper here is force-inlined, so the ABI of a standalone symbol never
// materializes — the warning is noise.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace ppsim::core {

typedef std::uint64_t WordVec __attribute__((vector_size(32)));
typedef std::int64_t WordVecS __attribute__((vector_size(32)));
typedef std::uint64_t WordVec8 __attribute__((vector_size(64)));
typedef std::int64_t WordVec8S __attribute__((vector_size(64)));

// Half-width (32-bit element) lanes for the regime-narrowed packed layouts:
// the same register width carries twice the rings when the layout fits 32
// bits (pl/packed_state.hpp fits_narrow()).
typedef std::uint32_t HalfVec8 __attribute__((vector_size(32)));
typedef std::int32_t HalfVec8S __attribute__((vector_size(32)));
typedef std::uint32_t HalfVec16 __attribute__((vector_size(64)));
typedef std::int32_t HalfVec16S __attribute__((vector_size(64)));

// Four i32 lanes (one XMM register): index vectors for the grouped
// scheduler's arc-overlap classification at WordVec width.
typedef std::int32_t HalfVec4S __attribute__((vector_size(16)));

/// Element type and lane count of a lane type (scalar integrals count as one
/// lane of themselves).
template <typename V>
struct lane_traits {
  using element = std::decay_t<decltype(V{}[0])>;
  static constexpr int lanes = static_cast<int>(sizeof(V) / sizeof(element));
};
template <>
struct lane_traits<std::uint64_t> {
  using element = std::uint64_t;
  static constexpr int lanes = 1;
};
template <>
struct lane_traits<std::uint32_t> {
  using element = std::uint32_t;
  static constexpr int lanes = 1;
};

/// Lanes of a vector type (4 for WordVec / AVX2, 8 for WordVec8 / AVX-512,
/// 8/16 for the half-width HalfVec8/HalfVec16).
template <typename V>
inline constexpr int kLanesOf = lane_traits<V>::lanes;

/// Lanes in the narrow grouped kernel dispatch (WordVec width).
inline constexpr int kWordLanes = 4;

template <typename V>
[[nodiscard, gnu::always_inline]] inline V vbroadcast(
    std::uint64_t x) noexcept {
  if constexpr (std::is_integral_v<V>) {
    return static_cast<V>(x);
  } else {
    using E = typename lane_traits<V>::element;
    V v{};
    return v + static_cast<E>(x);
  }
}

[[nodiscard, gnu::always_inline]] inline std::uint64_t veq(
    std::uint64_t a, std::uint64_t b) noexcept {
  return a == b ? ~std::uint64_t{0} : std::uint64_t{0};
}
[[nodiscard, gnu::always_inline]] inline std::uint64_t vgt(
    std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<std::int64_t>(a) > static_cast<std::int64_t>(b)
             ? ~std::uint64_t{0}
             : std::uint64_t{0};
}
[[nodiscard, gnu::always_inline]] inline WordVec veq(WordVec a,
                                                     WordVec b) noexcept {
  return (WordVec)(a == b);
}
[[nodiscard, gnu::always_inline]] inline WordVec vgt(WordVec a,
                                                     WordVec b) noexcept {
  return (WordVec)((WordVecS)a > (WordVecS)b);
}
[[nodiscard, gnu::always_inline]] inline WordVec8 veq(WordVec8 a,
                                                      WordVec8 b) noexcept {
  return (WordVec8)(a == b);
}
[[nodiscard, gnu::always_inline]] inline WordVec8 vgt(WordVec8 a,
                                                      WordVec8 b) noexcept {
  return (WordVec8)((WordVec8S)a > (WordVec8S)b);
}
// Half-width overloads. vgt is signed-32: narrow kernels only run on
// layouts whose field values stay below 2^31, so wrapped negatives still
// compare as negatives (same contract as the 64-bit lanes).
[[nodiscard, gnu::always_inline]] inline std::uint32_t veq(
    std::uint32_t a, std::uint32_t b) noexcept {
  return a == b ? ~std::uint32_t{0} : std::uint32_t{0};
}
[[nodiscard, gnu::always_inline]] inline std::uint32_t vgt(
    std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b)
             ? ~std::uint32_t{0}
             : std::uint32_t{0};
}
[[nodiscard, gnu::always_inline]] inline HalfVec8 veq(HalfVec8 a,
                                                      HalfVec8 b) noexcept {
  return (HalfVec8)(a == b);
}
[[nodiscard, gnu::always_inline]] inline HalfVec8 vgt(HalfVec8 a,
                                                      HalfVec8 b) noexcept {
  return (HalfVec8)((HalfVec8S)a > (HalfVec8S)b);
}
[[nodiscard, gnu::always_inline]] inline HalfVec16 veq(HalfVec16 a,
                                                       HalfVec16 b) noexcept {
  return (HalfVec16)(a == b);
}
[[nodiscard, gnu::always_inline]] inline HalfVec16 vgt(HalfVec16 a,
                                                       HalfVec16 b) noexcept {
  return (HalfVec16)((HalfVec16S)a > (HalfVec16S)b);
}

template <typename V>
[[nodiscard, gnu::always_inline]] inline V vsel(V m, V a, V b) noexcept {
  return b ^ ((a ^ b) & m);
}

template <typename V>
[[nodiscard, gnu::always_inline]] inline V vmask(V w, unsigned bit) noexcept {
  return V{} - ((w >> bit) & vbroadcast<V>(1));
}

}  // namespace ppsim::core

#pragma GCC diagnostic pop
