// Baseline [15]: Fischer & Jiang (2006) — SS-LE on rings with the eventual
// leader detector Omega?, O(1) states, Theta(n^3) expected steps (Table 1;
// bound stated for an immediately-reporting oracle).
//
// Reconstruction note (DESIGN.md §2.4): the original pseudocode is not in
// this paper. We implement the structure the paper describes: bullets and
// shields (first introduced by [15]) with *fire-on-absorb* discipline — a
// leader re-arms when the previous bullet is absorbed, with the live/dummy +
// shield coin extracted from the scheduler — plus the oracle:
//   * Omega?[leader]: while the population is leaderless, interacting
//     responders promote themselves;
//   * Omega?[bullet]: while no bullet exists, leaders re-arm (this breaks the
//     stale multi-leader / zero-bullet deadlock; Beauquier et al. [7]
//     likewise use two Omega? instances).
// The oracle is provided by the harness (core::InteractionContext), with a
// configurable reporting delay (0 = the regime of the Theta(n^3) analysis).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/runner.hpp"

namespace ppsim::baselines {

struct FjState {
  std::uint8_t leader = 0;
  std::uint8_t bullet = 0;  ///< 0 none / 1 dummy / 2 live
  std::uint8_t shield = 0;
  std::uint8_t armed = 0;   ///< 1 = fires at its next interaction

  friend constexpr bool operator==(const FjState&, const FjState&) = default;
};

struct FjParams {
  int n = 0;

  [[nodiscard]] static FjParams make(int n) {
    if (n < 2) throw std::invalid_argument("FjParams: n must be >= 2");
    return FjParams{n};
  }
};

struct FischerJiang {
  using State = FjState;
  using Params = FjParams;
  static constexpr bool directed = true;

  static void apply(State& l, State& r, const Params&,
                    const core::InteractionContext& ctx) noexcept {
    // Armed leaders fire using the scheduler coin: as initiator -> live
    // bullet + shield up; as responder -> dummy bullet + shield down.
    if (l.leader == 1 && l.armed == 1) {
      l.bullet = 2;
      l.shield = 1;
      l.armed = 0;
    }
    if (r.leader == 1 && r.armed == 1) {
      r.bullet = 1;
      r.shield = 0;
      r.armed = 0;
    }
    // Omega?[bullet]: no bullet anywhere -> leaders re-arm. The census is
    // taken at interaction start, so a leader that just fired above still
    // holds its bullet — the bullet guard keeps it from double-arming (a
    // double fire could unshield it under its own live bullet).
    if (ctx.no_token) {
      if (l.leader == 1 && l.bullet == 0) l.armed = 1;
      if (r.leader == 1 && r.bullet == 0) r.armed = 1;
    }
    // Bullet reaches a leader: kill iff live & unshielded; absorb & re-arm.
    if (l.bullet > 0 && r.leader == 1) {
      if (l.bullet == 2 && r.shield == 0) {
        r.leader = 0;
        r.armed = 0;
      } else {
        r.armed = 1;
      }
      l.bullet = 0;
    } else if (l.bullet > 0) {
      if (r.bullet == 0) r.bullet = l.bullet;
      l.bullet = 0;
    }
    // Omega?[leader]: leaderless population -> the responder promotes itself
    // (shielded, firing immediately).
    if (ctx.no_leader && l.leader == 0 && r.leader == 0) {
      r.leader = 1;
      r.shield = 1;
      r.armed = 1;
    }
  }

  [[nodiscard]] static bool is_leader(const State& s,
                                      const Params&) noexcept {
    return s.leader == 1;
  }

  /// Enables the runner's Omega?[bullet] census (ctx.no_token).
  [[nodiscard]] static bool has_token(const State& s,
                                      const Params&) noexcept {
    return s.bullet != 0;
  }

  static std::string describe(const State& s, const Params&) {
    return "{leader=" + std::to_string(s.leader) +
           " bullet=" + std::to_string(s.bullet) +
           " shield=" + std::to_string(s.shield) +
           " armed=" + std::to_string(s.armed) + "}";
  }
};

/// Practical safe predicate for the baseline: a unique leader and no live
/// bullet that could still kill it (every live bullet's nearest left leader
/// is shielded).
[[nodiscard]] bool fj_is_safe(std::span<const FjState> c, const FjParams& p);

/// One uniformly random agent state over the declared O(1) domain (armed
/// only ever set on leaders, as the protocol maintains).
[[nodiscard]] FjState fj_random_state(const FjParams& p,
                                      core::Xoshiro256pp& rng);

[[nodiscard]] std::vector<FjState> fj_random_config(const FjParams& p,
                                                    core::Xoshiro256pp& rng);

/// Converged reference configuration: the unique, shielded leader at
/// `leader_pos`, everything else zero. Satisfies fj_is_safe.
[[nodiscard]] std::vector<FjState> fj_safe_config(const FjParams& p,
                                                  int leader_pos = 0);

}  // namespace ppsim::baselines
