// Thue–Morse substrate for baseline [11] (Chen & Chen 2019).
//
// Their protocol embeds a prefix of the Thue–Morse string anchored at the
// unique leader and detects leader absence by finding a cube w w w somewhere
// on the ring — possible exactly because the Thue–Morse string is cube-free
// while every leaderless (hence fully periodic) labeling contains a cube.
// The full protocol simulates counter machines and needs super-exponential
// time; per DESIGN.md §2.4 we reproduce the *detection principle* as a
// substrate with property tests plus analysis helpers, and carry the Table-1
// row as theory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ppsim::baselines {

/// First `length` symbols of the Thue–Morse string: s_i = parity of
/// popcount(i).
[[nodiscard]] std::vector<std::uint8_t> thue_morse_prefix(std::size_t length);

/// Does `s` contain a cube w w w (some non-empty w) as a *linear* substring?
[[nodiscard]] bool has_cube(std::span<const std::uint8_t> s);

/// Does the *cyclic* string `s` (the leaderless ring reading) contain a cube
/// with window length at most `max_window`? Windows up to s.size() are
/// meaningful; w = s.size() always yields a cube for a cyclic string.
[[nodiscard]] bool cyclic_has_cube(std::span<const std::uint8_t> s,
                                   std::size_t max_window);

/// Smallest window length w such that the cyclic string contains w w w, if
/// any window up to max_window does.
[[nodiscard]] std::optional<std::size_t> smallest_cyclic_cube_window(
    std::span<const std::uint8_t> s, std::size_t max_window);

/// Thue–Morse embedding anchored at `leader_pos` on a ring of size n:
/// agent (leader_pos + i) mod n gets s_i.
[[nodiscard]] std::vector<std::uint8_t> embed_thue_morse(int n,
                                                         int leader_pos);

}  // namespace ppsim::baselines
