// Safe predicates and configuration generators for the baseline protocols.
#include <algorithm>

#include "baselines/fischer_jiang.hpp"
#include "baselines/modk.hpp"
#include "baselines/yokota28.hpp"
#include "core/ring.hpp"

namespace ppsim::baselines {

namespace {

template <typename S>
int count_leaders_of(std::span<const S> c) {
  int k = 0;
  for (const S& s : c) k += s.leader == 1 ? 1 : 0;
  return k;
}

template <typename S>
int sole_leader_of(std::span<const S> c) {
  for (int i = 0; i < static_cast<int>(c.size()); ++i)
    if (c[static_cast<std::size_t>(i)].leader == 1) return i;
  return -1;
}

/// Peaceful-bullet walk for states exposing leader/shield/signal_b.
template <typename S>
bool peaceful_with_signal(std::span<const S> c, int i) {
  const int n = static_cast<int>(c.size());
  for (int j = 0; j < n; ++j) {
    const S& s = c[static_cast<std::size_t>(core::ring_add(i, -j, n))];
    if (s.signal_b != 0) return false;
    if (s.leader == 1) return s.shield == 1;
  }
  return false;
}

}  // namespace

bool y28_is_safe(std::span<const Y28State> c, const Y28Params& p) {
  if (count_leaders_of(c) != 1) return false;
  const int k = sole_leader_of(c);
  const int n = p.n;
  for (int i = 0; i < n; ++i) {
    const Y28State& s = c[static_cast<std::size_t>(core::ring_add(k, i, n))];
    if (static_cast<int>(s.dist) != i) return false;
  }
  for (int i = 0; i < n; ++i)
    if (c[static_cast<std::size_t>(i)].bullet == common::kLiveBullet &&
        !peaceful_with_signal(c, i))
      return false;
  return true;
}

Y28State y28_random_state(const Y28Params& p, core::Xoshiro256pp& rng) {
  Y28State s;
  s.leader = static_cast<std::uint8_t>(rng.bounded(2));
  s.dist = static_cast<std::uint16_t>(rng.bounded(p.cap));
  s.bullet = static_cast<std::uint8_t>(rng.bounded(3));
  s.shield = static_cast<std::uint8_t>(rng.bounded(2));
  s.signal_b = static_cast<std::uint8_t>(rng.bounded(2));
  return s;
}

std::vector<Y28State> y28_random_config(const Y28Params& p,
                                        core::Xoshiro256pp& rng) {
  std::vector<Y28State> c(static_cast<std::size_t>(p.n));
  for (Y28State& s : c) s = y28_random_state(p, rng);
  return c;
}

std::vector<Y28State> y28_safe_config(const Y28Params& p, int leader_pos) {
  std::vector<Y28State> c(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i) {
    Y28State& s =
        c[static_cast<std::size_t>(core::ring_add(leader_pos, i, p.n))];
    s.dist = static_cast<std::uint16_t>(i);
    if (i == 0) {
      s.leader = 1;
      s.shield = 1;
    }
  }
  return c;
}

std::vector<Y28State> y28_leaderless(const Y28Params& p) {
  std::vector<Y28State> c(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i)
    c[static_cast<std::size_t>(i)].dist = 0;  // the ramp must grow to N
  return c;
}

bool fj_is_safe(std::span<const FjState> c, const FjParams&) {
  if (count_leaders_of(c) != 1) return false;
  const int n = static_cast<int>(c.size());
  // Every live bullet's nearest left leader (the unique leader) is shielded.
  for (int i = 0; i < n; ++i) {
    if (c[static_cast<std::size_t>(i)].bullet != 2) continue;
    const int k = sole_leader_of(c);
    if (c[static_cast<std::size_t>(k)].shield != 1) return false;
  }
  return true;
}

FjState fj_random_state(const FjParams&, core::Xoshiro256pp& rng) {
  FjState s;
  s.leader = static_cast<std::uint8_t>(rng.bounded(2));
  s.bullet = static_cast<std::uint8_t>(rng.bounded(3));
  s.shield = static_cast<std::uint8_t>(rng.bounded(2));
  s.armed = static_cast<std::uint8_t>(rng.bounded(2)) & s.leader;
  return s;
}

std::vector<FjState> fj_random_config(const FjParams& p,
                                      core::Xoshiro256pp& rng) {
  std::vector<FjState> c(static_cast<std::size_t>(p.n));
  for (FjState& s : c) s = fj_random_state(p, rng);
  return c;
}

std::vector<FjState> fj_safe_config(const FjParams& p, int leader_pos) {
  std::vector<FjState> c(static_cast<std::size_t>(p.n));
  FjState& l = c[static_cast<std::size_t>(leader_pos)];
  l.leader = 1;
  l.shield = 1;
  return c;
}

bool modk_is_safe(std::span<const ModkState> c, const ModkParams& p) {
  if (count_leaders_of(c) != 1) return false;
  const int k = sole_leader_of(c);
  const int n = p.n;
  for (int i = 0; i < n; ++i) {
    const ModkState& s =
        c[static_cast<std::size_t>(core::ring_add(k, i, n))];
    if (static_cast<int>(s.lab) != i % p.k) return false;
  }
  for (int i = 0; i < n; ++i)
    if (c[static_cast<std::size_t>(i)].bullet == common::kLiveBullet &&
        !peaceful_with_signal(c, i))
      return false;
  return true;
}

ModkState modk_random_state(const ModkParams& p, core::Xoshiro256pp& rng) {
  ModkState s;
  s.leader = static_cast<std::uint8_t>(rng.bounded(2));
  s.lab = static_cast<std::uint8_t>(rng.bounded(p.k));
  s.bullet = static_cast<std::uint8_t>(rng.bounded(3));
  s.shield = static_cast<std::uint8_t>(rng.bounded(2));
  s.signal_b = static_cast<std::uint8_t>(rng.bounded(2));
  return s;
}

std::vector<ModkState> modk_random_config(const ModkParams& p,
                                          core::Xoshiro256pp& rng) {
  std::vector<ModkState> c(static_cast<std::size_t>(p.n));
  for (ModkState& s : c) s = modk_random_state(p, rng);
  return c;
}

std::vector<ModkState> modk_safe_config(const ModkParams& p, int leader_pos) {
  std::vector<ModkState> c(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i) {
    ModkState& s =
        c[static_cast<std::size_t>(core::ring_add(leader_pos, i, p.n))];
    s.lab = static_cast<std::uint8_t>(i % p.k);
    if (i == 0) {
      s.leader = 1;
      s.shield = 1;
    }
  }
  return c;
}

}  // namespace ppsim::baselines
