#include "baselines/thue_morse.hpp"

#include <bit>

namespace ppsim::baselines {

std::vector<std::uint8_t> thue_morse_prefix(std::size_t length) {
  std::vector<std::uint8_t> s(length);
  for (std::size_t i = 0; i < length; ++i)
    s[i] = static_cast<std::uint8_t>(
        std::popcount(static_cast<unsigned long long>(i)) & 1);
  return s;
}

bool has_cube(std::span<const std::uint8_t> s) {
  const std::size_t n = s.size();
  for (std::size_t w = 1; 3 * w <= n; ++w) {
    for (std::size_t i = 0; i + 3 * w <= n; ++i) {
      bool cube = true;
      for (std::size_t j = 0; j < 2 * w; ++j) {
        if (s[i + j] != s[i + j + w]) {
          cube = false;
          break;
        }
      }
      if (cube) return true;
    }
  }
  return false;
}

bool cyclic_has_cube(std::span<const std::uint8_t> s,
                     std::size_t max_window) {
  return smallest_cyclic_cube_window(s, max_window).has_value();
}

std::optional<std::size_t> smallest_cyclic_cube_window(
    std::span<const std::uint8_t> s, std::size_t max_window) {
  const std::size_t n = s.size();
  if (n == 0) return std::nullopt;
  for (std::size_t w = 1; w <= max_window; ++w) {
    for (std::size_t i = 0; i < n; ++i) {
      bool cube = true;
      for (std::size_t j = 0; j < 2 * w; ++j) {
        if (s[(i + j) % n] != s[(i + j + w) % n]) {
          cube = false;
          break;
        }
      }
      if (cube) return w;
    }
  }
  return std::nullopt;
}

std::vector<std::uint8_t> embed_thue_morse(int n, int leader_pos) {
  const auto prefix = thue_morse_prefix(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> ring(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    ring[static_cast<std::size_t>((leader_pos + i) % n)] =
        prefix[static_cast<std::size_t>(i)];
  return ring;
}

}  // namespace ppsim::baselines
