// Baseline [5]: Angluin, Aspnes, Fischer, Jiang (2008) — SS-LE with O(1)
// states on rings whose size n is *not* a multiple of a given k.
//
// Reconstruction (DESIGN.md §2.4; the original pseudocode is not in this
// paper). It keeps [5]'s impossibility-breaking invariant: every agent
// carries a label lab in Z_k with the intended relation
//     lab(u_{i+1}) = lab(u_i) + 1 (mod k),   lab(leader) = 0.
// A leaderless ring cannot satisfy this everywhere (the labels would have to
// gain n ≢ 0 (mod k) around the ring), so *some* violating pair always
// exists, and a violating responder promotes itself — that is the
// absence-detection. Elimination is the bullets-and-shields war of
// Algorithm 5, with one addition: a killed leader inherits the label
// (lab(left)+1) mod k, which is left-consistent; if that label is nonzero the
// right neighbor becomes a violating responder and leadership relocates one
// step clockwise — repeated relocation eventually aligns a gap ≡ 0 (mod k)
// where a kill is clean. A lone leader is never relocated/killed because a
// leader is shielded whenever one of its own live bullets is in flight.
//
// Self-stabilization of this reconstruction is machine-verified by the
// exhaustive model checker at small n (see tests/baselines/modk_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/elimination.hpp"
#include "core/rng.hpp"

namespace ppsim::baselines {

struct ModkState {
  std::uint8_t leader = 0;
  std::uint8_t lab = 0;     ///< label in Z_k
  std::uint8_t bullet = 0;  ///< 0 none / 1 dummy / 2 live
  std::uint8_t shield = 0;
  std::uint8_t signal_b = 0;

  friend constexpr bool operator==(const ModkState&,
                                   const ModkState&) = default;
};

struct ModkParams {
  int n = 0;
  int k = 2;

  [[nodiscard]] static ModkParams make(int n, int k = 2) {
    if (n < 2) throw std::invalid_argument("ModkParams: n must be >= 2");
    if (k < 2) throw std::invalid_argument("ModkParams: k must be >= 2");
    if (n % k == 0)
      throw std::invalid_argument(
          "ModkParams: requires n not a multiple of k");
    return ModkParams{n, k};
  }
};

struct Modk {
  using State = ModkState;
  using Params = ModkParams;
  static constexpr bool directed = true;

  static void apply(State& l, State& r, const Params& p) noexcept {
    const auto k = static_cast<std::uint8_t>(p.k);
    // Bullets-and-shields with the same firing discipline as Algorithm 5,
    // except the kill also rewrites the victim's label left-consistently.
    if (l.leader == 1 && l.signal_b == 1) {
      l.bullet = common::kLiveBullet;
      l.shield = 1;
      l.signal_b = 0;
    }
    if (r.leader == 1 && r.signal_b == 1) {
      r.bullet = common::kDummyBullet;
      r.shield = 0;
      r.signal_b = 0;
    }
    if (l.bullet > 0 && r.leader == 1) {
      if (l.bullet == common::kLiveBullet && r.shield == 0) {
        r.leader = 0;
        r.lab = static_cast<std::uint8_t>((l.lab + 1) % k);
      }
      l.bullet = common::kNoBullet;
    } else if (l.bullet > 0) {
      if (r.bullet == common::kNoBullet) r.bullet = l.bullet;
      l.bullet = common::kNoBullet;
      r.signal_b = 0;
    }
    l.signal_b = std::max({static_cast<int>(l.signal_b),
                           static_cast<int>(r.signal_b),
                           static_cast<int>(r.leader)});
    // Label maintenance / absence detection.
    if (r.leader == 1) {
      r.lab = 0;  // leader labels are pinned at 0
    } else if (r.lab != (l.lab + 1) % k) {
      // Violating responder: no leader can explain this labeling locally —
      // promote (shielded, firing a live bullet), as in lines 6/18.
      r.leader = 1;
      r.lab = 0;
      r.bullet = common::kLiveBullet;
      r.shield = 1;
      r.signal_b = 0;
    }
  }

  [[nodiscard]] static bool is_leader(const State& s,
                                      const Params&) noexcept {
    return s.leader == 1;
  }

  /// Canonical enumeration of the O(1) per-agent state domain (24k states:
  /// 2 leader x k lab x 3 bullet x 2 shield x 2 signal_b, 48 for the
  /// checked k = 2). Shared by the model checker's adapter below and by
  /// core::EnsembleRunner's packed-state mode, which precomputes the whole
  /// pair-transition table from it — one definition, so the checker's and
  /// the ensemble's view of the domain cannot drift.
  static std::size_t num_states(const Params& p) {
    return 2ULL * static_cast<std::size_t>(p.k) * 3 * 2 * 2;
  }
  static std::size_t pack_state(const State& s, const Params& p) {
    std::size_t v = s.leader;
    v = v * static_cast<std::size_t>(p.k) + s.lab;
    v = v * 3 + s.bullet;
    v = v * 2 + s.shield;
    v = v * 2 + s.signal_b;
    return v;
  }
  static State unpack_state(std::size_t v, const Params& p) {
    State s;
    s.signal_b = static_cast<std::uint8_t>(v % 2);
    v /= 2;
    s.shield = static_cast<std::uint8_t>(v % 2);
    v /= 2;
    s.bullet = static_cast<std::uint8_t>(v % 3);
    v /= 3;
    s.lab = static_cast<std::uint8_t>(v % static_cast<std::size_t>(p.k));
    v /= static_cast<std::size_t>(p.k);
    s.leader = static_cast<std::uint8_t>(v);
    return s;
  }

  static std::string describe(const State& s, const Params&) {
    return "{leader=" + std::to_string(s.leader) +
           " lab=" + std::to_string(s.lab) +
           " bullet=" + std::to_string(s.bullet) +
           " shield=" + std::to_string(s.shield) +
           " signalB=" + std::to_string(s.signal_b) + "}";
  }
};

/// Model-checker adapter (pack/unpack the 48-state-per-agent space for k=2);
/// delegates to the protocol's canonical enumeration.
struct ModkModel {
  using State = ModkState;
  using Params = ModkParams;
  static constexpr bool directed = true;

  static std::size_t num_states(const Params& p) {
    return Modk::num_states(p);
  }
  static std::size_t pack(const State& s, const Params& p, int /*agent*/) {
    return Modk::pack_state(s, p);
  }
  static State unpack(std::size_t v, const Params& p, int /*agent*/) {
    return Modk::unpack_state(v, p);
  }
  static void apply(State& l, State& r, const Params& p) noexcept {
    Modk::apply(l, r, p);
  }
  /// Human-readable state rendering for decoded counterexamples
  /// (core::ModelChecker::describe_counterexample).
  static std::string describe(const State& s, const Params& p) {
    return Modk::describe(s, p);
  }
};

/// Safe predicate: unique leader, consistent labels, every live bullet
/// peaceful (so the leader can never be killed or relocated again).
[[nodiscard]] bool modk_is_safe(std::span<const ModkState> c,
                                const ModkParams& p);

/// One uniformly random agent state over the declared O(1) domain.
[[nodiscard]] ModkState modk_random_state(const ModkParams& p,
                                          core::Xoshiro256pp& rng);

[[nodiscard]] std::vector<ModkState> modk_random_config(
    const ModkParams& p, core::Xoshiro256pp& rng);

/// Converged reference configuration: the unique, shielded leader at
/// `leader_pos` with the consistent label ramp lab = dist mod k around it.
/// Satisfies modk_is_safe.
[[nodiscard]] std::vector<ModkState> modk_safe_config(const ModkParams& p,
                                                      int leader_pos = 0);

}  // namespace ppsim::baselines
