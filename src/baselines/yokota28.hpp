// Baseline [28]: Yokota, Sudo, Masuzawa (2021) — time-optimal SS-LE on rings
// with Theta(n^2) expected convergence and O(n) states, given knowledge
// N = n + O(n).
//
// Reconstruction note (DESIGN.md §2.4): the elimination half is Algorithm 5
// of this paper verbatim (the paper imports it from [28] unchanged); the
// creation half is the mechanism §3.1 attributes to [28]: every agent
// computes the exact distance from its nearest left leader and a responder
// that would reach distance N concludes no leader exists within the horizon
// and promotes itself. N = 2^psi in [n, 2n), i.e. the same knowledge
// psi = ceil(log2 n) + O(1) this paper assumes.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/elimination.hpp"
#include "core/ring.hpp"
#include "core/rng.hpp"

namespace ppsim::baselines {

struct Y28State {
  std::uint8_t leader = 0;
  std::uint16_t dist = 0;  ///< exact distance from nearest left leader, [0, N-1]
  std::uint8_t bullet = 0;
  std::uint8_t shield = 0;
  std::uint8_t signal_b = 0;

  friend constexpr bool operator==(const Y28State&, const Y28State&) = default;
};

struct Y28Params {
  int n = 0;
  int cap = 0;  ///< N = 2^psi

  [[nodiscard]] static Y28Params make(int n, int psi_slack = 0) {
    if (n < 2) throw std::invalid_argument("Y28Params: n must be >= 2");
    Y28Params p;
    p.n = n;
    p.cap = 1 << (std::max(2, core::ceil_log2(
                                  static_cast<std::uint64_t>(n))) +
                  psi_slack);
    return p;
  }
};

struct Yokota28 {
  using State = Y28State;
  using Params = Y28Params;
  static constexpr bool directed = true;

  static void apply(State& l, State& r, const Params& p) noexcept {
    // CreateLeader of [28]: exact-distance propagation with threshold N.
    const int tmp = r.leader == 1 ? 0 : static_cast<int>(l.dist) + 1;
    if (tmp >= p.cap && r.leader == 0) {
      r.leader = 1;
      r.bullet = common::kLiveBullet;
      r.shield = 1;
      r.signal_b = 0;
      r.dist = 0;
    } else {
      r.dist = static_cast<std::uint16_t>(tmp);
    }
    common::eliminate_leaders_step(l, r);
  }

  [[nodiscard]] static bool is_leader(const State& s,
                                      const Params&) noexcept {
    return s.leader == 1;
  }

  static std::string describe(const State& s, const Params&) {
    return "{leader=" + std::to_string(s.leader) +
           " dist=" + std::to_string(s.dist) +
           " bullet=" + std::to_string(s.bullet) +
           " shield=" + std::to_string(s.shield) +
           " signalB=" + std::to_string(s.signal_b) + "}";
  }
};

/// Safe-configuration certificate for yokota28 (the analog of S_PL): a unique
/// leader, exact distances relative to it, and every live bullet peaceful.
[[nodiscard]] bool y28_is_safe(std::span<const Y28State> c,
                               const Y28Params& p);

/// One uniformly random agent state over the declared state space.
[[nodiscard]] Y28State y28_random_state(const Y28Params& p,
                                        core::Xoshiro256pp& rng);

/// Uniformly random configuration over the declared state space.
[[nodiscard]] std::vector<Y28State> y28_random_config(const Y28Params& p,
                                                      core::Xoshiro256pp& rng);

/// Converged reference configuration: the unique, shielded leader at
/// `leader_pos` with exact distances relative to it. Satisfies y28_is_safe.
[[nodiscard]] std::vector<Y28State> y28_safe_config(const Y28Params& p,
                                                    int leader_pos = 0);

/// Leaderless configuration with a consistent distance ramp (the slowest
/// detection instance: the ramp must grow to N before anyone promotes).
[[nodiscard]] std::vector<Y28State> y28_leaderless(const Y28Params& p);

}  // namespace ppsim::baselines
