// Retry/backoff policy for the campaign service's self-healing I/O paths
// (src/service/campaign.hpp, src/service/campaign_io.hpp).
//
// Failure taxonomy, applied uniformly across sinks, checkpoints and shard
// workers:
//
//   * EINTR            — not a failure at all: retried immediately, without
//                        consuming a backoff attempt, bounded only by
//                        kEintrStormLimit consecutive occurrences without
//                        progress (a real kernel delivers signals, it does
//                        not deliver EINTR forever — the bound exists so an
//                        adversarial `*xeintr` failpoint schedule proves a
//                        loud abort, never a hang).
//   * transient_errno  — EAGAIN/EWOULDBLOCK, ENOSPC, EIO: retried with
//                        bounded exponential backoff + jitter (RetryState).
//                        ENOSPC is transient at campaign timescale (log
//                        rotation, another process releasing space);
//                        after max_attempts the error is permanent and the
//                        caller throws.
//   * anything else    — permanent: thrown immediately.
//
// service::TransientError is the exception-shaped face of the same class:
// a shard worker throwing it is retried up to shard_max_attempts and then
// *quarantined* (recorded in the checkpoint, campaign continues degraded);
// any other exception aborts the campaign.
//
// Determinism: backoff jitter draws from a dedicated registered stream
// (stream_seed(policy.seed, streams::kRetryJitter)), so retry *timing* is
// reproducible for a given seed — and no retry ever touches an engine
// stream, so retries cannot change any output byte (the byte-identity
// contract under injected failure, proven by
// scripts/campaign_chaos_check.sh and tests/service/self_healing_test.cpp).
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>

#include "core/rng.hpp"
#include "core/stream_tags.hpp"

namespace ppsim::service {

/// A failure the self-healing layer may retry: thrown by shard workers
/// (including the service.worker.shard failpoint) to request the bounded
/// retry-then-quarantine path instead of a campaign abort.
struct TransientError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Consecutive no-progress EINTRs tolerated before the loop declares an
/// EINTR storm and fails permanently (hang prevention under adversarial
/// injection; unreachable for real signal-interrupted syscalls).
inline constexpr int kEintrStormLimit = 1024;

/// errno values the backoff loops treat as retryable. EINTR is deliberately
/// NOT here — it is retried for free, outside the attempt budget.
[[nodiscard]] inline bool transient_errno(int e) noexcept {
  return e == EAGAIN || e == EWOULDBLOCK || e == ENOSPC || e == EIO;
}

struct RetryPolicy {
  int max_attempts = 5;  ///< total tries of the guarded operation
  std::uint64_t base_delay_us = 200;   ///< first backoff; doubles per retry
  std::uint64_t max_delay_us = 50'000; ///< backoff ceiling
  std::uint64_t seed = 0;              ///< jitter stream seed (kRetryJitter)
};

/// One retry ladder: construct per guarded operation, call backoff() after
/// a transient failure — it sleeps (full jitter over the exponential cap)
/// and returns true while attempts remain. reset() on forward progress
/// (e.g. a short write that moved some bytes) restores the full budget.
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy)
      : policy_(policy),
        rng_(core::stream_seed(policy.seed, core::streams::kRetryJitter)) {}

  /// Record a failed attempt; sleep and allow another unless exhausted.
  [[nodiscard]] bool backoff() {
    if (attempt_ + 1 >= policy_.max_attempts) return false;
    ++attempt_;
    std::uint64_t cap = policy_.base_delay_us;
    for (int i = 1; i < attempt_ && cap < policy_.max_delay_us; ++i)
      cap *= 2;
    if (cap > policy_.max_delay_us) cap = policy_.max_delay_us;
    const std::uint64_t us = cap == 0 ? 0 : rng_.bounded(cap + 1);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
    return true;
  }

  void reset() noexcept { attempt_ = 0; }
  [[nodiscard]] int attempt() const noexcept { return attempt_; }

 private:
  RetryPolicy policy_;
  core::Xoshiro256pp rng_;
  int attempt_ = 0;
};

}  // namespace ppsim::service
