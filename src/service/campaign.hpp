// Sharded, checkpoint/resume campaign service — simulation as
// infrastructure (ROADMAP item 2).
//
// Every bench/campaign used to be a run-to-completion process: preemption
// at trial 999,999 of a million-trial sweep lost all work. CampaignService
// turns run_campaign's cell list into a *work-queue of shards* fanned over
// core::ThreadPool, streams one NDJSON result frame per shard, and
// checkpoints progress so a campaign killed at any point — kill -9
// included — resumes and finishes **byte-identically** to an uninterrupted
// run, at any thread count, any number of times.
//
// Why the checkpoints are tiny: a trial is a pure function of its global
// index (derive_seed(seed_base, tag, t) + the stream-tag registry,
// core/stream_tags.hpp), so no simulator state is ever saved — only which
// shards completed (a bitmap) and their per-trial results (17 bytes each).
//
// The determinism argument, in three independent pieces:
//
//  1. Shard decomposition is a function of the spec alone. Shard width is
//     analysis::detail::ensemble_shard_rings(state bytes) — the cache cap,
//     explicitly NOT the thread count — so cell c always splits into the
//     same shards, and shard s of cell c always computes the same
//     RecoveryTrial records (the ensemble-sharding bit-identity contract
//     pinned by tests/core/ensemble_test.cpp).
//  2. Frames are emitted in global (cell, shard) order regardless of which
//     worker finishes first: FrameEmitter holds out-of-order frames in a
//     reorder window of at most `max_inflight_frames` and a worker that
//     runs too far ahead *blocks* in submit() — which is also the
//     backpressure: a slow frame consumer stalls emission, emission stalls
//     the window, the window stalls the workers.
//  3. A checkpoint is only written at an emission-prefix boundary, and
//     resume truncates the frame sink back to exactly the checkpointed
//     byte count — so frames past the last checkpoint are re-run and
//     re-emitted identically, and the final frame stream is the same byte
//     sequence as the uninterrupted run's.
//
// Corrupted or foreign checkpoints are REFUSED (CheckpointError), never
// silently discarded — a campaign must not quietly restart from zero
// because a disk flipped a bit (campaign_io.hpp has the codec contract).
//
// Usage shape (examples/ppsim_campaignd.cpp is the full driver):
//
//   service::CampaignService<P> svc(cells, opts);      // opts.checkpoint_path
//   service::FileFrameSink frames("campaign.frames.ndjson");
//   const auto report = svc.run(frames);               // resumes if killed
//   if (report.status == service::RunStatus::kComplete)
//     service::write_campaign_results_json(f, svc.results(), svc.digest());
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <unistd.h>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "core/failpoint.hpp"
#include "core/json.hpp"
#include "core/parallel.hpp"
#include "service/campaign_io.hpp"
#include "service/retry.hpp"

namespace ppsim::service {

// CheckpointError lives in service/campaign_io.hpp (the codec throws it on
// injected non-transient failures); re-exported here via the include.

/// Frame-stream version, stamped into every frame. Bump on any change to
/// the frame schema (README "Campaign service").
inline constexpr int kFrameSchemaVersion = 1;

// --- Frame sinks -----------------------------------------------------------

/// Byte sink for the NDJSON frame stream. write() is always called from
/// under the emitter lock, in frame order — implementations need no
/// internal synchronization. truncate_to() is the resume hook; sinks that
/// cannot rewind (sockets, pipes) may adopt the offset without truncating,
/// degrading the exactly-once frame contract to at-least-once after a
/// crash (consumers dedup on (cell, shard) — the frame ids are stable).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void write(const char* data, std::size_t len) = 0;
  virtual void flush() {}
  virtual void truncate_to(std::uint64_t offset) = 0;
  [[nodiscard]] virtual std::uint64_t offset() const = 0;
};

/// In-memory sink (tests, in-process pause/resume).
class MemoryFrameSink final : public FrameSink {
 public:
  void write(const char* data, std::size_t len) override {
    data_.append(data, len);
  }
  void truncate_to(std::uint64_t offset) override {
    if (offset > data_.size())
      throw CheckpointError(
          "frame sink shorter than the checkpoint's frame offset — the "
          "frame buffer does not belong to this checkpoint");
    data_.resize(static_cast<std::size_t>(offset));
  }
  [[nodiscard]] std::uint64_t offset() const override { return data_.size(); }
  [[nodiscard]] const std::string& str() const noexcept { return data_; }

 private:
  std::string data_;
};

/// Regular-file sink with true truncation — the exactly-once resume path.
/// The file is opened without truncation so a resume keeps the
/// already-emitted prefix; truncate_to() then trims any frames written
/// after the last checkpoint (including a torn final line from kill -9).
///
/// Self-healing: every fwrite/fflush/ftruncate retries EINTR in place
/// (bounded by kEintrStormLimit), resumes short writes at the moved
/// cursor, and backs off on transient_errno failures under `retry` before
/// throwing CheckpointError. Failpoint sites: service.file_sink.{write,
/// flush,truncate}.
class FileFrameSink final : public FrameSink {
 public:
  explicit FileFrameSink(const std::string& path, RetryPolicy retry = {})
      : retry_(retry) {
    f_ = std::fopen(path.c_str(), "r+b");
    if (f_ == nullptr) f_ = std::fopen(path.c_str(), "w+b");
    if (f_ == nullptr)
      throw CheckpointError("cannot open frame file " + path);
    std::fseek(f_, 0, SEEK_END);
    off_ = static_cast<std::uint64_t>(std::ftell(f_));
  }
  FileFrameSink(const FileFrameSink&) = delete;
  FileFrameSink& operator=(const FileFrameSink&) = delete;
  ~FileFrameSink() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  void write(const char* data, std::size_t len) override {
    RetryState retry(retry_);
    int spins = 0;
    while (len > 0) {
      std::size_t want = len;
      const core::FailOutcome fo =
          core::failpoint(core::failpoints::kFileSinkWrite);
      if (fo.action == core::FailAction::kThrow)
        throw CheckpointError("failpoint: frame file write aborted");
      errno = 0;
      std::size_t put = 0;
      if (fo.action == core::FailAction::kErrno) {
        errno = fo.err;
      } else {
        if (fo.action == core::FailAction::kShortWrite)
          want = std::max<std::size_t>(
              1,
              std::min<std::size_t>(want, static_cast<std::size_t>(fo.arg)));
        put = std::fwrite(data, 1, want, f_);
      }
      if (put > 0) {
        data += put;
        len -= put;
        off_ += put;
        spins = 0;
        retry.reset();
        continue;
      }
      std::clearerr(f_);
      if (errno == EINTR && ++spins < kEintrStormLimit) continue;
      if (transient_errno(errno) && retry.backoff()) continue;
      throw CheckpointError(std::string("frame file write failed: ") +
                            std::strerror(errno));
    }
  }
  void flush() override {
    RetryState retry(retry_);
    int spins = 0;
    for (;;) {
      const core::FailOutcome fo =
          core::failpoint(core::failpoints::kFileSinkFlush);
      if (fo.action == core::FailAction::kThrow)
        throw CheckpointError("failpoint: frame file flush aborted");
      errno = 0;
      int r = 0;
      if (fo.action == core::FailAction::kErrno) {
        errno = fo.err;
        r = EOF;
      } else {
        r = std::fflush(f_);
      }
      if (r == 0) return;
      std::clearerr(f_);
      if (errno == EINTR && ++spins < kEintrStormLimit) continue;
      if (transient_errno(errno) && retry.backoff()) {
        spins = 0;
        continue;
      }
      throw CheckpointError(std::string("frame file flush failed: ") +
                            std::strerror(errno));
    }
  }
  void truncate_to(std::uint64_t offset) override {
    flush();
    if (off_ < offset)
      throw CheckpointError(
          "frame file shorter than the checkpoint's frame offset — the "
          "frame file does not belong to this checkpoint");
    RetryState retry(retry_);
    int spins = 0;
    for (;;) {
      const core::FailOutcome fo =
          core::failpoint(core::failpoints::kFileSinkTruncate);
      if (fo.action == core::FailAction::kThrow)
        throw CheckpointError("failpoint: frame file truncate aborted");
      errno = 0;
      int r = 0;
      if (fo.action == core::FailAction::kErrno) {
        errno = fo.err;
        r = -1;
      } else {
        r = ::ftruncate(fileno(f_), static_cast<off_t>(offset));
      }
      if (r == 0) break;
      if (errno == EINTR && ++spins < kEintrStormLimit) continue;
      if (transient_errno(errno) && retry.backoff()) {
        spins = 0;
        continue;
      }
      throw CheckpointError(std::string("ftruncate on frame file failed: ") +
                            std::strerror(errno));
    }
    std::fseek(f_, static_cast<long>(offset), SEEK_SET);
    off_ = offset;
  }
  [[nodiscard]] std::uint64_t offset() const override { return off_; }

 private:
  std::FILE* f_ = nullptr;
  std::uint64_t off_ = 0;
  RetryPolicy retry_;
};

/// Raw-descriptor sink (Unix socket, pipe, stdout). Cannot rewind:
/// truncate_to() only adopts the offset, so crash-resume delivery over a
/// socket is at-least-once (see FrameSink). Writes loop over partial
/// ::write()s, so a full socket buffer blocks here — and through the
/// emitter window, blocks the whole campaign: backpressure end to end.
///
/// EINTR and EAGAIN/EWOULDBLOCK are retried in place rather than aborting
/// the campaign. Caveat: the sink expects a BLOCKING descriptor — on a
/// non-blocking fd EAGAIN means "buffer full", which this sink handles by
/// a bounded 1 ms sleep-and-retry loop (kEintrStormLimit iterations ≈ 1 s),
/// not by polling; wire a poll()-based sink if you need real non-blocking
/// backpressure. Failpoint site: service.fd_sink.write.
class FdFrameSink final : public FrameSink {
 public:
  explicit FdFrameSink(int fd) : fd_(fd) {}

  void write(const char* data, std::size_t len) override {
    int spins = 0;
    while (len > 0) {
      std::size_t want = len;
      const core::FailOutcome fo =
          core::failpoint(core::failpoints::kFdSinkWrite);
      if (fo.action == core::FailAction::kThrow)
        throw CheckpointError("failpoint: frame descriptor write aborted");
      ssize_t put = 0;
      if (fo.action == core::FailAction::kErrno) {
        errno = fo.err;
        put = -1;
      } else {
        if (fo.action == core::FailAction::kShortWrite)
          want = std::max<std::size_t>(
              1,
              std::min<std::size_t>(want, static_cast<std::size_t>(fo.arg)));
        put = ::write(fd_, data, want);
      }
      if (put > 0) {
        data += put;
        len -= static_cast<std::size_t>(put);
        off_ += static_cast<std::uint64_t>(put);
        spins = 0;
        continue;
      }
      const int e = put < 0 ? errno : 0;
      if (put == 0 || e == EINTR || e == EAGAIN || e == EWOULDBLOCK) {
        if (++spins >= kEintrStormLimit)
          throw CheckpointError(
              "frame descriptor write: EINTR/EAGAIN storm — descriptor "
              "never made progress");
        if (e != EINTR)
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      throw CheckpointError(
          std::string("write to frame descriptor failed: ") +
          std::strerror(e));
    }
  }
  void truncate_to(std::uint64_t offset) override { off_ = offset; }
  [[nodiscard]] std::uint64_t offset() const override { return off_; }

 private:
  int fd_ = -1;
  std::uint64_t off_ = 0;
};

// --- In-order frame emission with bounded in-flight window ----------------

/// What a worker hands the emitter per shard: either the rendered NDJSON
/// frame, or a quarantine verdict (zero bytes emitted — the emission cursor
/// still advances, so the surviving frame stream stays a byte-exact prefix
/// order of the fault-free stream and resume byte-identity holds).
struct Frame {
  std::string bytes;
  bool quarantined = false;
  std::string reason;  ///< meaningful when quarantined
};

/// Reorders worker-completed frames back into submission-index order and
/// bounds how far computation may run ahead of emission. submit(k, ...)
/// blocks while k >= next_ + window — the backpressure edge — then emission
/// of every ready prefix frame happens under the lock, followed by the
/// caller's on_emit hook (bitmap marking + periodic checkpointing).
class FrameEmitter {
 public:
  FrameEmitter(FrameSink& sink, std::size_t window,
               std::function<void(std::uint64_t, const Frame&)> on_emit)
      : sink_(sink), window_(std::max<std::size_t>(1, window)),
        on_emit_(std::move(on_emit)) {}

  void submit(std::uint64_t index, Frame frame) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return failed_ || index < next_ + window_; });
    // Poisoned: a sink/checkpoint failure means the frame at the emission
    // cursor will never be written; unwinding here (instead of waiting on a
    // cursor that cannot advance) lets every worker exit and the pool
    // rethrow the original exception.
    if (failed_)
      throw CheckpointError("frame emission already failed; campaign aborted");
    buffer_.emplace(index, std::move(frame));
    try {
      for (auto it = buffer_.find(next_); it != buffer_.end();
           it = buffer_.find(next_)) {
        if (!it->second.bytes.empty())
          sink_.write(it->second.bytes.data(), it->second.bytes.size());
        const Frame emitted_frame = std::move(it->second);
        buffer_.erase(it);
        on_emit_(next_, emitted_frame);
        ++next_;
        cv_.notify_all();
      }
    } catch (...) {
      failed_ = true;
      cv_.notify_all();
      throw;
    }
  }

  /// Poison from OUTSIDE submit(): a worker that fails before it can
  /// submit (abort-class shard failure) must still release every peer
  /// blocked on the reorder window — a frame that will never arrive must
  /// not stall the cursor forever. Blocked submitters wake and throw; the
  /// pool then rethrows the original exception. Never a hang.
  void poison() {
    std::lock_guard<std::mutex> lock(mu_);
    failed_ = true;
    cv_.notify_all();
  }

  [[nodiscard]] std::uint64_t emitted() const noexcept { return next_; }

 private:
  FrameSink& sink_;
  std::size_t window_;
  std::function<void(std::uint64_t, const Frame&)> on_emit_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Frame> buffer_;  ///< ordered; window-bounded
  std::uint64_t next_ = 0;  ///< submission index the sink emits next
  bool failed_ = false;     ///< sink/checkpoint failure; campaign aborting
};

// --- The service -----------------------------------------------------------

struct CampaignOptions {
  /// Checkpoint file; empty = no persistence (in-memory progress only —
  /// a second run() on the same instance still resumes in-process).
  std::string checkpoint_path;
  /// Emitted frames between periodic checkpoints. The final checkpoint at
  /// the end of every run() (pause or completion) is unconditional.
  std::uint64_t checkpoint_every_shards = 8;
  /// Worker threads for the shard fan-out (0 = ThreadPool default). Never
  /// affects any output byte — the determinism contract of this file.
  int threads = 0;
  /// Reorder-window width: max frames in flight past the emission cursor.
  std::size_t max_inflight_frames = 16;
  /// Stop claiming work after this many frames have been emitted this
  /// run() (0 = run to completion). The graceful-preemption hook: the run
  /// checkpoints and returns RunStatus::kPaused.
  std::uint64_t stop_after_shards = 0;
  /// Folded into the spec digest. The generic digest covers names, ring
  /// sizes, plans, schedules and fault models — protocol parameters beyond
  /// n are not generically introspectable, so campaigns that vary them
  /// (e.g. a c1 sweep) should fold those knobs in here.
  std::uint64_t extra_digest = 0;
  /// Attempts per shard before a TransientError-throwing shard is
  /// quarantined (recorded in the checkpoint, campaign continues degraded).
  int shard_max_attempts = 3;
  /// Backoff policy for transient checkpoint-save/-load failures and for
  /// the delay between shard attempts. Jitter timing never touches any
  /// output byte (service/retry.hpp).
  RetryPolicy retry;
};

enum class RunStatus {
  kComplete,  ///< every shard of every cell is done; results() is valid
  kPaused,    ///< stop_after_shards hit; checkpointed, resume with run()
  kDegraded,  ///< every shard settled but some are quarantined — partial
              ///< frame stream, results() refused, quarantine recorded in
              ///< the checkpoint for the operator
};

struct RunReport {
  RunStatus status = RunStatus::kPaused;
  std::uint64_t shards_run = 0;    ///< frames emitted by this run()
  std::uint64_t shards_done = 0;   ///< cumulative, including prior runs
  std::uint64_t shards_total = 0;  ///< whole campaign
  std::uint64_t shards_quarantined = 0;  ///< cumulative quarantined shards
  std::uint64_t frame_bytes = 0;   ///< frame-sink offset after this run()
};

template <typename P, typename Topo = core::RingTopology>
class CampaignService {
 public:
  using Params = typename P::Params;
  using Spec = analysis::ScenarioSpec<P, Topo>;
  using Cell = std::pair<Params, Spec>;

  explicit CampaignService(std::vector<Cell> cells, CampaignOptions opts = {})
      : cells_(std::move(cells)), opts_(std::move(opts)) {
    progress_.reserve(cells_.size());
    for (const auto& [params, spec] : cells_) {
      CellProgress p;
      p.trials = static_cast<std::uint64_t>(
          std::max<std::int64_t>(spec.plan.trials, 0));
      // Cache-capped and thread-count-INDEPENDENT: determinism piece 1.
      p.shard_trials = analysis::detail::ensemble_shard_rings(
          static_cast<std::size_t>(params.n) * sizeof(typename P::State));
      const std::uint64_t shards =
          (p.trials + p.shard_trials - 1) / p.shard_trials;
      p.done = ShardBitmap(shards);
      p.quarantined = ShardBitmap(shards);
      p.quarantine_reasons.resize(static_cast<std::size_t>(shards));
      p.results.resize(static_cast<std::size_t>(p.trials));
      progress_.push_back(std::move(p));
    }
    digest_ = compute_digest();
  }

  /// Spec digest: the resume-compatibility identity of this campaign.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  [[nodiscard]] std::uint64_t shards_total() const noexcept {
    std::uint64_t t = 0;
    for (const CellProgress& p : progress_) t += p.shards();
    return t;
  }
  [[nodiscard]] std::uint64_t shards_done() const noexcept {
    std::uint64_t t = 0;
    for (const CellProgress& p : progress_) t += p.done.count();
    return t;
  }
  [[nodiscard]] std::uint64_t shards_quarantined() const noexcept {
    std::uint64_t t = 0;
    for (const CellProgress& p : progress_) t += p.quarantined.count();
    return t;
  }
  /// Quarantined (cell, shard, reason) triples, for operator reporting.
  [[nodiscard]] std::vector<std::tuple<std::uint32_t, std::uint64_t,
                                       std::string>>
  quarantine_report() const {
    std::vector<std::tuple<std::uint32_t, std::uint64_t, std::string>> out;
    for (std::uint32_t c = 0; c < progress_.size(); ++c)
      for (std::uint64_t s = 0; s < progress_[c].shards(); ++s)
        if (progress_[c].quarantined.test(s))
          out.emplace_back(c, s,
                           progress_[c]
                               .quarantine_reasons[static_cast<std::size_t>(s)]);
    return out;
  }
  [[nodiscard]] bool complete() const noexcept {
    for (const CellProgress& p : progress_)
      if (!p.done.all()) return false;
    return true;
  }
  /// Every shard either done or quarantined — nothing left to run.
  [[nodiscard]] bool settled() const noexcept {
    for (const CellProgress& p : progress_)
      if (p.settled() < p.shards()) return false;
    return true;
  }

  /// Execute (or resume) the campaign. Throws CheckpointError on a corrupt
  /// or foreign checkpoint / frame file — never silently restarts.
  RunReport run(FrameSink& sink) {
    resume_or_start(sink);

    struct ShardRef {
      std::uint32_t cell;
      std::uint64_t shard;
    };
    std::vector<ShardRef> pending;
    for (std::uint32_t c = 0; c < progress_.size(); ++c)
      for (std::uint64_t s = 0; s < progress_[c].shards(); ++s)
        if (!progress_[c].done.test(s) && !progress_[c].quarantined.test(s))
          pending.push_back({c, s});
    if (opts_.stop_after_shards > 0 &&
        pending.size() > opts_.stop_after_shards)
      pending.resize(static_cast<std::size_t>(opts_.stop_after_shards));

    std::uint64_t since_checkpoint = 0;
    FrameEmitter emitter(
        sink, opts_.max_inflight_frames,
        [&](std::uint64_t k, const Frame& fr) {
          // Under the emitter lock, in emission order — the only writer of
          // the done/quarantined bitmaps while workers run.
          const ShardRef ref = pending[static_cast<std::size_t>(k)];
          if (fr.quarantined) {
            progress_[ref.cell].quarantined.set(ref.shard);
            progress_[ref.cell]
                .quarantine_reasons[static_cast<std::size_t>(ref.shard)] =
                fr.reason;
          } else {
            progress_[ref.cell].done.set(ref.shard);
          }
          if (!opts_.checkpoint_path.empty() &&
              ++since_checkpoint >= opts_.checkpoint_every_shards) {
            since_checkpoint = 0;
            sink.flush();
            persist(sink.offset());
          }
        });

    core::ThreadPool pool(opts_.threads);
    pool.for_index(pending.size(), [&](std::size_t k) {
      try {
        const ShardRef ref = pending[k];
        Frame frame;
        std::string reason;
        if (run_shard_with_retry(ref.cell, ref.shard, reason)) {
          frame.bytes = render_frame(ref.cell, ref.shard);
        } else {
          frame.quarantined = true;
          frame.reason = std::move(reason);
        }
        emitter.submit(k, std::move(frame));
      } catch (...) {
        // An abort-class failure anywhere in the worker (not just inside
        // submit) poisons the emitter so peers blocked on the reorder
        // window unwind instead of waiting on a frame that will never
        // arrive.
        emitter.poison();
        throw;
      }
    });

    sink.flush();
    frame_bytes_ = sink.offset();
    if (!opts_.checkpoint_path.empty()) persist(frame_bytes_);

    RunReport rep;
    rep.shards_run = emitter.emitted();
    rep.shards_done = shards_done();
    rep.shards_total = shards_total();
    rep.shards_quarantined = shards_quarantined();
    rep.frame_bytes = frame_bytes_;
    rep.status = complete()  ? RunStatus::kComplete
                 : settled() ? RunStatus::kDegraded
                             : RunStatus::kPaused;
    return rep;
  }

  /// Folded per-cell campaign results — exactly run_campaign's output for
  /// the same cells. Only valid once complete().
  [[nodiscard]] std::vector<analysis::CampaignResult> results() const {
    if (shards_quarantined() > 0)
      throw CheckpointError(
          "campaign results requested with quarantined shards — the "
          "campaign is degraded, not complete (see quarantine_report())");
    if (!complete())
      throw CheckpointError(
          "campaign results requested before every shard completed");
    std::vector<analysis::CampaignResult> out;
    out.reserve(cells_.size());
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      const auto& [params, spec] = cells_[c];
      analysis::CampaignResult r;
      r.scenario = spec.name;
      r.n = params.n;
      r.faults = analysis::total_faults(spec.schedule);
      r.stats = analysis::detail::fold_recovery(progress_[c].results);
      out.push_back(std::move(r));
    }
    return out;
  }

 private:
  void run_shard(std::uint32_t cell, std::uint64_t shard) {
    const auto& [params, spec] = cells_[cell];
    CellProgress& p = progress_[cell];
    analysis::detail::ensemble_recovery_shard<P, Topo>(
        params, spec, static_cast<std::size_t>(p.shard_first(shard)),
        static_cast<std::size_t>(p.shard_count(shard)),
        std::span<analysis::RecoveryTrial>(p.results));
  }

  /// Run one shard with the transient-failure contract: a TransientError
  /// (including an errno-class outcome of the service.worker.shard
  /// failpoint) is retried up to shard_max_attempts with backoff; on
  /// exhaustion the shard is reported for quarantine (return false,
  /// `reason` set). Any other exception propagates — abort-class. A
  /// retried shard recomputes the exact same RecoveryTrial records (a
  /// trial is a pure function of its global index), so retries never
  /// change an output byte.
  [[nodiscard]] bool run_shard_with_retry(std::uint32_t cell,
                                          std::uint64_t shard,
                                          std::string& reason) {
    RetryPolicy pol = opts_.retry;
    pol.max_attempts = std::max(1, opts_.shard_max_attempts);
    RetryState retry(pol);
    for (;;) {
      try {
        const core::FailOutcome fo =
            core::failpoint(core::failpoints::kWorkerShard);
        if (fo.action == core::FailAction::kThrow)
          throw CheckpointError("failpoint: shard worker aborted");
        if (fo.action == core::FailAction::kErrno)
          throw TransientError(
              "failpoint: injected transient shard failure (errno " +
              std::to_string(fo.err) + ")");
        run_shard(cell, shard);
        return true;
      } catch (const TransientError& e) {
        if (!retry.backoff()) {
          reason = e.what();
          return false;
        }
      }
    }
  }

  /// One NDJSON frame: a pure function of (spec, shard results), so a
  /// re-run shard after a crash reproduces its frame byte for byte.
  [[nodiscard]] std::string render_frame(std::uint32_t cell,
                                         std::uint64_t shard) const {
    const auto& [params, spec] = cells_[cell];
    const CellProgress& p = progress_[cell];
    const std::uint64_t first = p.shard_first(shard);
    const std::uint64_t count = p.shard_count(shard);

    char* buf = nullptr;
    std::size_t len = 0;
    std::FILE* mem = open_memstream(&buf, &len);
    if (mem == nullptr) throw CheckpointError("open_memstream failed");
    {
      core::JsonWriter w(mem, /*compact=*/true);
      w.begin_object();
      w.field("schema_version", kFrameSchemaVersion);
      w.field("frame", "shard");
      w.field("campaign", digest_hex(digest_));
      w.field("cell", static_cast<std::int64_t>(cell));
      w.field("scenario", spec.name);
      w.field("n", params.n);
      w.field("faults", analysis::total_faults(spec.schedule));
      w.field("shard", shard);
      w.field("first_trial", first);
      w.field("trials", count);
      std::int64_t stabilized = 0;
      std::int64_t healed = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto& t = p.results[static_cast<std::size_t>(first + i)];
        stabilized += t.stabilized ? 1 : 0;
        healed += t.healed ? 1 : 0;
      }
      w.field("stabilized", stabilized);
      w.field("healed", healed);
      // Per-trial records, in trial order: flags bit0 = stabilized,
      // bit1 = healed; step fields are 0 where the flag says so.
      w.key("flags");
      w.begin_array();
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto& t = p.results[static_cast<std::size_t>(first + i)];
        w.value(static_cast<std::int64_t>((t.stabilized ? 1 : 0) |
                                          (t.healed ? 2 : 0)));
      }
      w.end_array();
      w.key("stabilize_steps");
      w.begin_array();
      for (std::uint64_t i = 0; i < count; ++i)
        w.value(p.results[static_cast<std::size_t>(first + i)]
                    .stabilize_steps);
      w.end_array();
      w.key("recovery_steps");
      w.begin_array();
      for (std::uint64_t i = 0; i < count; ++i)
        w.value(p.results[static_cast<std::size_t>(first + i)]
                    .recovery_steps);
      w.end_array();
      w.end_object();
      w.finish();  // '\n' — the NDJSON delimiter
    }
    std::fclose(mem);
    std::string frame(buf, len);
    std::free(buf);
    return frame;
  }

  /// Called under the emitter lock while workers are still writing results
  /// for *pending* shards, so the snapshot copies only the records of
  /// shards whose done bit is set — those ranges are quiescent (their
  /// writer finished before its frame was submitted). Copying the whole
  /// results vector here would race with in-flight shard writers.
  void persist(std::uint64_t frame_bytes) {
    Checkpoint ckpt;
    ckpt.spec_digest = digest_;
    ckpt.frame_bytes = frame_bytes;
    ckpt.cells.resize(progress_.size());
    for (std::size_t c = 0; c < progress_.size(); ++c) {
      const CellProgress& from = progress_[c];
      CellProgress& to = ckpt.cells[c];
      to.trials = from.trials;
      to.shard_trials = from.shard_trials;
      to.done = from.done;
      to.quarantined = from.quarantined;
      to.quarantine_reasons = from.quarantine_reasons;
      to.results.resize(from.results.size());
      for (std::uint64_t sh = 0; sh < from.shards(); ++sh) {
        if (!from.done.test(sh)) continue;
        const std::uint64_t first = from.shard_first(sh);
        const std::uint64_t count = from.shard_count(sh);
        for (std::uint64_t i = 0; i < count; ++i)
          to.results[static_cast<std::size_t>(first + i)] =
              from.results[static_cast<std::size_t>(first + i)];
      }
    }
    // Transient save failures (ENOSPC, EIO — injected or real) back off
    // and retry the whole idempotent save before giving up.
    RetryState retry(opts_.retry);
    while (!save_checkpoint(opts_.checkpoint_path, ckpt))
      if (!retry.backoff())
        throw CheckpointError("cannot write checkpoint " +
                              opts_.checkpoint_path);
  }

  void resume_or_start(FrameSink& sink) {
    if (!opts_.checkpoint_path.empty()) {
      // kIoError is a disk hiccup, not a verdict about the file: retry the
      // read with backoff before refusing.
      RetryState retry(opts_.retry);
      LoadResult lr;
      for (;;) {
        lr = load_checkpoint(opts_.checkpoint_path, digest_);
        if (lr.status != LoadStatus::kIoError || !retry.backoff()) break;
      }
      switch (lr.status) {
        case LoadStatus::kLoaded: {
          if (lr.checkpoint.cells.size() != progress_.size())
            throw CheckpointError(
                "checkpoint cell count does not match the campaign");
          for (std::size_t c = 0; c < progress_.size(); ++c) {
            const CellProgress& from = lr.checkpoint.cells[c];
            if (from.trials != progress_[c].trials ||
                from.shard_trials != progress_[c].shard_trials ||
                from.quarantined.size() != progress_[c].shards())
              throw CheckpointError(
                  "checkpoint shard decomposition does not match the "
                  "campaign (same digest, inconsistent shape)");
          }
          progress_ = std::move(lr.checkpoint.cells);
          frame_bytes_ = lr.checkpoint.frame_bytes;
          break;
        }
        case LoadStatus::kAbsent:
          break;  // fresh campaign; frame_bytes_ keeps in-memory progress
        case LoadStatus::kCorrupt:
        case LoadStatus::kSpecMismatch:
          throw CheckpointError("refusing checkpoint " +
                                opts_.checkpoint_path + ": " + lr.error);
        case LoadStatus::kIoError:
          throw CheckpointError("checkpoint read keeps failing " +
                                opts_.checkpoint_path + ": " + lr.error);
      }
    }
    // Trim the sink back to the boundary the adopted progress covers:
    // frames past the last checkpoint (or a torn partial line) are re-run.
    sink.truncate_to(frame_bytes_);
  }

  [[nodiscard]] std::uint64_t compute_digest() const {
    Digest d;
    d.u64(kCheckpointFormat);
    d.u64(opts_.extra_digest);
    d.u64(cells_.size());
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      const auto& [params, spec] = cells_[c];
      d.str(spec.name);
      d.i64(params.n);
      d.i64(spec.plan.trials);
      d.u64(spec.plan.max_steps);
      d.u64(spec.plan.seed_base);
      d.u64(spec.plan.tag);
      d.u64(spec.plan.check_every);
      d.u64(spec.schedule.size());
      for (const analysis::FaultEvent& ev : spec.schedule) {
        d.u64(ev.at_step);
        d.i64(ev.faults);
      }
      d.f64(spec.sched_faults.loss_p);
      d.u64(spec.sched_faults.arc_weights.size());
      for (double wgt : spec.sched_faults.arc_weights) d.f64(wgt);
      d.u64(progress_[c].shard_trials);
    }
    return d.value();
  }

  std::vector<Cell> cells_;
  CampaignOptions opts_;
  std::vector<CellProgress> progress_;
  std::uint64_t digest_ = 0;
  std::uint64_t frame_bytes_ = 0;  ///< sink offset covered by `progress_`
};

/// The final-aggregate artifact, shared by the daemon, the bench harness
/// and the tests so "byte-identical final artifacts" is one code path:
/// per-cell RecoveryStats in cell order, stamped with the campaign digest.
inline void write_campaign_results_json(
    std::FILE* out, std::span<const analysis::CampaignResult> results,
    std::uint64_t digest) {
  core::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", kFrameSchemaVersion);
  w.field("campaign", digest_hex(digest));
  w.key("results");
  w.begin_array();
  for (const analysis::CampaignResult& r : results) {
    w.begin_object();
    w.field("scenario", r.scenario);
    w.field("n", r.n);
    w.field("faults", r.faults);
    w.field("trials", r.stats.trials);
    w.field("stabilization_failures", r.stats.stabilization_failures);
    w.field("recovery_failures", r.stats.recovery_failures);
    w.field("median", r.stats.recovery.median);
    w.field("mean", r.stats.recovery.mean);
    w.field("p90", r.stats.recovery.p90);
    w.field("max", r.stats.recovery.max);
    w.key("raw");
    w.begin_array();
    for (std::uint64_t v : r.stats.raw) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.finish();
}

}  // namespace ppsim::service
