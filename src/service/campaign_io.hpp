// Campaign-service persistence: the checkpoint codec, the shard bitmap and
// the frame sinks (src/service/campaign.hpp is the driver on top).
//
// Design constraints, in order:
//
//  * Checkpoints are tiny. Every trial is a pure function of its global
//    index (derive_seed + the stream-tag registry), so a checkpoint never
//    snapshots simulator state — only WHICH shards finished and the
//    per-trial results of those shards: a completed-shard bitmap per cell
//    plus packed 17-byte RecoveryTrial records.
//
//  * A checkpoint is either valid or refused. The file carries a magic, a
//    format version, the campaign-spec digest and a trailing FNV-1a
//    checksum over everything before it. Loading verifies the checksum
//    (torn/corrupted file -> kCorrupt), then the digest (checkpoint from a
//    *different* campaign -> kSpecMismatch). Neither failure ever degrades
//    to "silently start over" — the caller must decide (the service throws;
//    tests/service/campaign_service_test.cpp pins both refusals).
//
//  * Saves are atomic. The checkpoint is written to `<path>.tmp` and
//    rename(2)d into place, so a kill -9 at any byte leaves either the
//    previous complete checkpoint or the new complete one, never a torn
//    file at the canonical path.
//
//  * Encoding is explicit little-endian bytes (not struct memcpy), so a
//    checkpoint written by any build of this code reads back identically.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "analysis/scenario.hpp"
#include "core/failpoint.hpp"
#include "service/retry.hpp"

namespace ppsim::service {

/// Refusal to resume (corrupt/foreign checkpoint, inconsistent frame file)
/// and the abort-class outcome of a kThrow failpoint on any service I/O
/// path. Declared here (not campaign.hpp) because the codec's injected
/// non-transient failures throw it too.
struct CheckpointError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// --- FNV-1a (64-bit): spec digests and the checkpoint checksum ------------

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental FNV-1a hasher. Used for two independent jobs: the campaign
/// *spec digest* (folds names, ring sizes, trial plans, schedules — the
/// resume-compatibility contract) and the checkpoint *content checksum*
/// (folds the serialized bytes — the corruption detector).
class Digest {
 public:
  void bytes(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= kFnvPrime;
    }
  }
  void u64(std::uint64_t v) noexcept {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 8);
  }
  void i64(std::int64_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) noexcept {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

/// Digest rendered the way frames and logs carry it.
[[nodiscard]] inline std::string digest_hex(std::uint64_t d) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(d));
  return std::string(buf);
}

// --- Completed-shard bitmap -----------------------------------------------

/// Fixed-size bitmap over a cell's shard indices. One bit per shard, 64
/// shards per word — a million-trial cell at shard width 64 is ~2 KiB.
class ShardBitmap {
 public:
  ShardBitmap() = default;
  explicit ShardBitmap(std::uint64_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] bool test(std::uint64_t i) const noexcept {
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }
  void set(std::uint64_t i) noexcept { words_[i / 64] |= 1ULL << (i % 64); }
  [[nodiscard]] std::uint64_t size() const noexcept { return bits_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t c = 0;
    for (std::uint64_t w : words_) {
      while (w != 0) {
        w &= w - 1;
        ++c;
      }
    }
    return c;
  }
  [[nodiscard]] bool all() const noexcept { return count() == bits_; }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }
  std::vector<std::uint64_t>& words() noexcept { return words_; }

 private:
  std::uint64_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

// --- Checkpoint document ---------------------------------------------------

/// On-disk format version. Bump on any layout change — an old-version file
/// is refused as kCorrupt-class (explicitly versioned), never misread.
/// v2: per-cell quarantined-shard bitmap + reason strings (graceful
/// degradation under persistent shard failure).
inline constexpr std::uint64_t kCheckpointFormat = 2;
/// "PPCKPT01" as little-endian bytes.
inline constexpr std::uint64_t kCheckpointMagic = 0x3130'5450'4B43'5050ULL;

/// Progress of one campaign cell: the shard decomposition, the bitmap of
/// completed shards, and a results slot per trial (meaningful exactly where
/// the owning shard's bit is set — only those records are serialized).
struct CellProgress {
  std::uint64_t trials = 0;
  std::uint64_t shard_trials = 1;  ///< rings per shard; thread-independent
  ShardBitmap done;                ///< one bit per shard: results valid
  /// One bit per shard: persistently failing shard, retried
  /// shard_max_attempts times and then recorded here instead of aborting
  /// the campaign (disjoint from `done` — a shard is done, quarantined, or
  /// pending). Quarantined shards emit no frame and block results().
  ShardBitmap quarantined;
  /// Reason per shard; meaningful exactly where `quarantined` is set (only
  /// those entries are serialized). Size = shards.
  std::vector<std::string> quarantine_reasons;
  std::vector<analysis::RecoveryTrial> results;  ///< size = trials

  [[nodiscard]] std::uint64_t shards() const noexcept { return done.size(); }
  [[nodiscard]] std::uint64_t settled() const noexcept {
    return done.count() + quarantined.count();
  }
  [[nodiscard]] std::uint64_t shard_first(std::uint64_t s) const noexcept {
    return s * shard_trials;
  }
  [[nodiscard]] std::uint64_t shard_count(std::uint64_t s) const noexcept {
    const std::uint64_t first = shard_first(s);
    return first >= trials ? 0
                           : std::min<std::uint64_t>(shard_trials,
                                                     trials - first);
  }
};

/// The whole checkpoint document, in memory.
struct Checkpoint {
  std::uint64_t spec_digest = 0;
  std::uint64_t frame_bytes = 0;  ///< frame-sink offset this checkpoint covers
  std::vector<CellProgress> cells;
};

enum class LoadStatus {
  kLoaded,        ///< checkpoint read and verified
  kAbsent,        ///< no file at the path (a fresh campaign, not an error)
  kCorrupt,       ///< bad magic/version/checksum/structure — refuse
  kSpecMismatch,  ///< valid file for a DIFFERENT campaign spec — refuse
  kIoError,       ///< fread failed mid-file (std::ferror) — an I/O failure,
                  ///< NOT a corruption verdict; the caller may retry
};

struct LoadResult {
  LoadStatus status = LoadStatus::kAbsent;
  Checkpoint checkpoint;
  std::string error;  ///< human-readable reason for kCorrupt/kSpecMismatch
};

namespace detail {

/// Byte-buffer writer with explicit little-endian encoding.
struct ByteSink {
  std::vector<unsigned char> out;
  void u8(std::uint8_t v) { out.push_back(v); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
  void str(const std::string& s) {
    u64(s.size());
    out.insert(out.end(), s.begin(), s.end());
  }
};

/// Bounds-checked little-endian reader; any overrun flips `ok` sticky-false.
struct ByteSource {
  const unsigned char* p = nullptr;
  std::size_t len = 0;
  std::size_t at = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (at + 1 > len) {
      ok = false;
      return 0;
    }
    return p[at++];
  }
  std::uint64_t u64() {
    if (at + 8 > len) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(p[at + static_cast<std::size_t>(i)])
           << (8 * i);
    at += 8;
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    // Quarantine reasons are short human strings; an implausible length is
    // a corruption symptom, not a reason to allocate gigabytes.
    if (!ok || n > (1ULL << 16) || at + n > len) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p + at),
                  static_cast<std::size_t>(n));
    at += static_cast<std::size_t>(n);
    return s;
  }
};

inline void encode_trial(ByteSink& s, const analysis::RecoveryTrial& t) {
  s.u8(static_cast<std::uint8_t>((t.stabilized ? 1 : 0) |
                                 (t.healed ? 2 : 0)));
  s.u64(t.stabilize_steps);
  s.u64(t.recovery_steps);
}

inline analysis::RecoveryTrial decode_trial(ByteSource& s) {
  analysis::RecoveryTrial t;
  const std::uint8_t flags = s.u8();
  t.stabilized = (flags & 1) != 0;
  t.healed = (flags & 2) != 0;
  t.stabilize_steps = s.u64();
  t.recovery_steps = s.u64();
  return t;
}

}  // namespace detail

/// Serialize a checkpoint to bytes: header, per-cell progress (bitmap +
/// completed-shard records only), trailing FNV-1a checksum.
[[nodiscard]] inline std::vector<unsigned char> encode_checkpoint(
    const Checkpoint& ckpt) {
  detail::ByteSink s;
  s.u64(kCheckpointMagic);
  s.u64(kCheckpointFormat);
  s.u64(ckpt.spec_digest);
  s.u64(ckpt.frame_bytes);
  s.u64(ckpt.cells.size());
  for (const CellProgress& cell : ckpt.cells) {
    s.u64(cell.trials);
    s.u64(cell.shard_trials);
    s.u64(cell.done.size());
    for (std::uint64_t w : cell.done.words()) s.u64(w);
    // Normalize an unsized quarantine bitmap (a CellProgress built before
    // any quarantine happened) to the shard count so the layout is fixed.
    const ShardBitmap empty_q(cell.quarantined.size() == cell.done.size()
                                  ? 0
                                  : cell.done.size());
    const ShardBitmap& q =
        cell.quarantined.size() == cell.done.size() ? cell.quarantined
                                                    : empty_q;
    for (std::uint64_t w : q.words()) s.u64(w);
    for (std::uint64_t sh = 0; sh < cell.shards(); ++sh)
      if (q.test(sh))
        s.str(sh < cell.quarantine_reasons.size()
                  ? cell.quarantine_reasons[static_cast<std::size_t>(sh)]
                  : std::string());
    for (std::uint64_t sh = 0; sh < cell.shards(); ++sh) {
      if (!cell.done.test(sh)) continue;
      const std::uint64_t first = cell.shard_first(sh);
      const std::uint64_t count = cell.shard_count(sh);
      for (std::uint64_t i = 0; i < count; ++i)
        detail::encode_trial(
            s, cell.results[static_cast<std::size_t>(first + i)]);
    }
  }
  Digest sum;
  sum.bytes(s.out.data(), s.out.size());
  s.u64(sum.value());
  return s.out;
}

/// Decode + verify. `expected_digest` is the running campaign's spec digest;
/// a checksum-valid checkpoint with a different digest is kSpecMismatch.
[[nodiscard]] inline LoadResult decode_checkpoint(
    const unsigned char* data, std::size_t len,
    std::uint64_t expected_digest) {
  LoadResult out;
  out.status = LoadStatus::kCorrupt;
  if (len < 6 * 8) {
    out.error = "file shorter than the fixed header";
    return out;
  }
  {  // Checksum first: everything else assumes intact bytes.
    Digest sum;
    sum.bytes(data, len - 8);
    detail::ByteSource tail{data + (len - 8), 8, 0, true};
    if (sum.value() != tail.u64()) {
      out.error = "content checksum mismatch (torn or corrupted file)";
      return out;
    }
  }
  detail::ByteSource s{data, len - 8, 0, true};
  if (s.u64() != kCheckpointMagic) {
    out.error = "bad magic (not a ppsim campaign checkpoint)";
    return out;
  }
  if (const std::uint64_t fmt = s.u64(); fmt != kCheckpointFormat) {
    out.error = "unsupported checkpoint format version " + std::to_string(fmt);
    return out;
  }
  Checkpoint ckpt;
  ckpt.spec_digest = s.u64();
  ckpt.frame_bytes = s.u64();
  const std::uint64_t n_cells = s.u64();
  if (!s.ok || n_cells > (1ULL << 32)) {
    out.error = "implausible cell count";
    return out;
  }
  for (std::uint64_t c = 0; c < n_cells && s.ok; ++c) {
    CellProgress cell;
    cell.trials = s.u64();
    cell.shard_trials = s.u64();
    const std::uint64_t shards = s.u64();
    if (!s.ok || cell.shard_trials == 0 ||
        shards != (cell.trials + cell.shard_trials - 1) / cell.shard_trials) {
      out.error = "inconsistent shard decomposition";
      return out;
    }
    cell.done = ShardBitmap(shards);
    for (std::uint64_t& w : cell.done.words()) w = s.u64();
    cell.quarantined = ShardBitmap(shards);
    for (std::uint64_t& w : cell.quarantined.words()) w = s.u64();
    cell.quarantine_reasons.resize(static_cast<std::size_t>(shards));
    for (std::uint64_t sh = 0; sh < shards && s.ok; ++sh) {
      if (cell.done.test(sh) && cell.quarantined.test(sh)) {
        out.error = "shard both completed and quarantined";
        return out;
      }
      if (cell.quarantined.test(sh))
        cell.quarantine_reasons[static_cast<std::size_t>(sh)] = s.str();
    }
    cell.results.resize(static_cast<std::size_t>(cell.trials));
    for (std::uint64_t sh = 0; sh < shards && s.ok; ++sh) {
      if (!cell.done.test(sh)) continue;
      const std::uint64_t first = cell.shard_first(sh);
      const std::uint64_t count = cell.shard_count(sh);
      for (std::uint64_t i = 0; i < count; ++i)
        cell.results[static_cast<std::size_t>(first + i)] =
            detail::decode_trial(s);
    }
    ckpt.cells.push_back(std::move(cell));
  }
  if (!s.ok || s.at != s.len) {
    out.error = "truncated or oversized payload";
    return out;
  }
  if (ckpt.spec_digest != expected_digest) {
    out.status = LoadStatus::kSpecMismatch;
    out.error = "checkpoint is for campaign " + digest_hex(ckpt.spec_digest) +
                ", this campaign is " + digest_hex(expected_digest) +
                " — refusing to resume (and refusing to silently restart)";
    return out;
  }
  out.status = LoadStatus::kLoaded;
  out.checkpoint = std::move(ckpt);
  return out;
}

namespace detail {

/// Directory component of `path` for the post-rename directory fsync
/// ("" and bare filenames live in ".").
[[nodiscard]] inline std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return slash == 0 ? "/" : path.substr(0, slash);
}

/// fsync with an EINTR spin bounded by kEintrStormLimit (hang prevention
/// under an adversarial `*xeintr` schedule; see service/retry.hpp).
[[nodiscard]] inline bool fsync_eintr(int fd) {
  for (int spins = 0; spins < kEintrStormLimit; ++spins) {
    if (::fsync(fd) == 0) return true;
    if (errno != EINTR) return false;
  }
  return false;
}

/// Evaluate a checkpoint-site failpoint, consuming injected EINTRs in
/// place (bounded) — EINTR is always retry-for-free, even when injected at
/// a site whose real syscall loops internally. Returns the first
/// non-EINTR outcome.
[[nodiscard]] inline core::FailOutcome ckpt_failpoint(const char* site) {
  for (int spins = 0;; ++spins) {
    const core::FailOutcome fo = core::failpoint(site);
    if (fo.action == core::FailAction::kErrno && fo.err == EINTR &&
        spins < kEintrStormLimit)
      continue;
    return fo;
  }
}

}  // namespace detail

/// Durable atomic save: write `<path>.tmp`, fflush + fsync the file, rename
/// over `path`, then fsync the parent directory — so a *committed*
/// checkpoint survives power loss, not just process death (rename alone
/// orders the replacement but does not persist the directory entry).
/// Returns false (with the OS error on stderr) when any step fails; EINTR
/// is retried in place and never surfaces as a failure. Safe to retry
/// wholesale — every step is idempotent. A kThrow failpoint outcome at any
/// site throws CheckpointError (the non-transient injection class).
[[nodiscard]] inline bool save_checkpoint(const std::string& path,
                                          const Checkpoint& ckpt) {
  const std::vector<unsigned char> bytes = encode_checkpoint(ckpt);
  const std::string tmp = path + ".tmp";

  std::FILE* f = nullptr;
  if (const core::FailOutcome fo = core::failpoint(core::failpoints::kCkptOpen);
      fo.fired() && fo.action != core::FailAction::kDelay) {
    if (fo.action == core::FailAction::kThrow)
      throw CheckpointError("failpoint: non-transient checkpoint I/O failure injected");
    errno = fo.err != 0 ? fo.err : EIO;
  } else {
    f = std::fopen(tmp.c_str(), "wb");
  }
  if (f == nullptr) {
    std::perror(("campaign checkpoint: fopen " + tmp).c_str());
    return false;
  }

  // Write loop: EINTR retried in place, injected short writes resume at
  // the moved cursor, any other failure abandons the tmp file (the caller
  // owns backoff/retry of the whole save).
  bool ok = true;
  std::size_t put = 0;
  int spins = 0;
  while (put < bytes.size()) {
    std::size_t want = bytes.size() - put;
    const core::FailOutcome fo =
        core::failpoint(core::failpoints::kCkptWrite);
    if (fo.action == core::FailAction::kThrow) {
      std::fclose(f);
      std::remove(tmp.c_str());
      throw CheckpointError("failpoint: non-transient checkpoint I/O failure injected");
    }
    errno = 0;
    std::size_t got = 0;
    if (fo.action == core::FailAction::kErrno) {
      errno = fo.err;
    } else {
      if (fo.action == core::FailAction::kShortWrite)
        want = std::max<std::size_t>(
            1, std::min<std::size_t>(want, static_cast<std::size_t>(fo.arg)));
      got = std::fwrite(bytes.data() + put, 1, want, f);
    }
    if (got > 0) {
      put += got;
      spins = 0;
      continue;
    }
    std::clearerr(f);
    if (errno == EINTR && ++spins < kEintrStormLimit) continue;
    ok = false;
    break;
  }

  // Durability barrier: libc buffer -> page cache (fflush), page cache ->
  // storage (fsync), BEFORE the rename makes the file the checkpoint.
  if (ok && std::fflush(f) != 0) ok = false;
  if (ok) {
    const core::FailOutcome fo =
        detail::ckpt_failpoint(core::failpoints::kCkptFsync);
    if (fo.action == core::FailAction::kThrow) {
      std::fclose(f);
      std::remove(tmp.c_str());
      throw CheckpointError("failpoint: non-transient checkpoint I/O failure injected");
    }
    if (fo.action == core::FailAction::kErrno) {
      errno = fo.err;
      ok = false;
    } else {
      ok = detail::fsync_eintr(fileno(f));
    }
  }
  std::fclose(f);
  if (!ok) {
    std::perror(("campaign checkpoint: write " + tmp).c_str());
    std::remove(tmp.c_str());
    return false;
  }

  {
    const core::FailOutcome fo =
        detail::ckpt_failpoint(core::failpoints::kCkptRename);
    if (fo.action == core::FailAction::kThrow) {
      std::remove(tmp.c_str());
      throw CheckpointError("failpoint: non-transient checkpoint I/O failure injected");
    }
    if (fo.action == core::FailAction::kErrno) {
      errno = fo.err;
      ok = false;
    } else {
      int spins2 = 0;
      while ((ok = std::rename(tmp.c_str(), path.c_str()) == 0) == false &&
             errno == EINTR && ++spins2 < kEintrStormLimit) {
      }
    }
    if (!ok) {
      std::perror(("campaign checkpoint: commit " + path).c_str());
      std::remove(tmp.c_str());
      return false;
    }
  }

  // The rename is only durable once the parent directory's entry is on
  // storage. A failure here fails the save; the retry re-runs the whole
  // (idempotent) sequence.
  {
    const core::FailOutcome fo =
        detail::ckpt_failpoint(core::failpoints::kCkptDirFsync);
    if (fo.action == core::FailAction::kThrow)
      throw CheckpointError("failpoint: non-transient checkpoint I/O failure injected");
    if (fo.action == core::FailAction::kErrno) {
      errno = fo.err;
      ok = false;
    } else {
      const std::string dir = detail::parent_dir(path);
      const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
      ok = dfd >= 0 && detail::fsync_eintr(dfd);
      if (dfd >= 0) ::close(dfd);
    }
    if (!ok) {
      std::perror(("campaign checkpoint: fsync dir of " + path).c_str());
      return false;
    }
  }
  return true;
}

/// Load a checkpoint file. A missing file is kAbsent (fresh campaign); a
/// mid-file read error (std::ferror — NOT a short file, which the codec
/// judges) is kIoError so the caller can retry instead of refusing a file
/// that is merely behind a flaky disk; every other failure mode is a
/// refusal with a reason. EINTR is retried in place.
[[nodiscard]] inline LoadResult load_checkpoint(
    const std::string& path, std::uint64_t expected_digest) {
  LoadResult out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    out.status = LoadStatus::kAbsent;
    return out;
  }
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  int spins = 0;
  for (;;) {
    const core::FailOutcome fo = core::failpoint(core::failpoints::kCkptRead);
    if (fo.action == core::FailAction::kThrow) {
      std::fclose(f);
      throw CheckpointError("failpoint: non-transient checkpoint I/O failure injected");
    }
    errno = 0;
    std::size_t want = sizeof buf;
    std::size_t got = 0;
    bool injected = false;
    if (fo.action == core::FailAction::kErrno) {
      errno = fo.err;
      injected = true;
    } else {
      if (fo.action == core::FailAction::kShortWrite)
        want = std::max<std::size_t>(
            1, std::min<std::size_t>(want, static_cast<std::size_t>(fo.arg)));
      got = std::fread(buf, 1, want, f);
    }
    if (got > 0) {
      bytes.insert(bytes.end(), buf, buf + got);
      spins = 0;
      continue;
    }
    if (injected || std::ferror(f) != 0) {
      std::clearerr(f);
      if (errno == EINTR && ++spins < kEintrStormLimit) continue;
      out.status = LoadStatus::kIoError;
      out.error = "read error on checkpoint file (errno " +
                  std::to_string(errno) +
                  ") — an I/O failure, not a corruption verdict";
      std::fclose(f);
      return out;
    }
    break;  // clean EOF
  }
  std::fclose(f);
  return decode_checkpoint(bytes.data(), bytes.size(), expected_digest);
}

}  // namespace ppsim::service
