// Campaign-service persistence: the checkpoint codec, the shard bitmap and
// the frame sinks (src/service/campaign.hpp is the driver on top).
//
// Design constraints, in order:
//
//  * Checkpoints are tiny. Every trial is a pure function of its global
//    index (derive_seed + the stream-tag registry), so a checkpoint never
//    snapshots simulator state — only WHICH shards finished and the
//    per-trial results of those shards: a completed-shard bitmap per cell
//    plus packed 17-byte RecoveryTrial records.
//
//  * A checkpoint is either valid or refused. The file carries a magic, a
//    format version, the campaign-spec digest and a trailing FNV-1a
//    checksum over everything before it. Loading verifies the checksum
//    (torn/corrupted file -> kCorrupt), then the digest (checkpoint from a
//    *different* campaign -> kSpecMismatch). Neither failure ever degrades
//    to "silently start over" — the caller must decide (the service throws;
//    tests/service/campaign_service_test.cpp pins both refusals).
//
//  * Saves are atomic. The checkpoint is written to `<path>.tmp` and
//    rename(2)d into place, so a kill -9 at any byte leaves either the
//    previous complete checkpoint or the new complete one, never a torn
//    file at the canonical path.
//
//  * Encoding is explicit little-endian bytes (not struct memcpy), so a
//    checkpoint written by any build of this code reads back identically.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"

namespace ppsim::service {

// --- FNV-1a (64-bit): spec digests and the checkpoint checksum ------------

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental FNV-1a hasher. Used for two independent jobs: the campaign
/// *spec digest* (folds names, ring sizes, trial plans, schedules — the
/// resume-compatibility contract) and the checkpoint *content checksum*
/// (folds the serialized bytes — the corruption detector).
class Digest {
 public:
  void bytes(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= kFnvPrime;
    }
  }
  void u64(std::uint64_t v) noexcept {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 8);
  }
  void i64(std::int64_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) noexcept {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

/// Digest rendered the way frames and logs carry it.
[[nodiscard]] inline std::string digest_hex(std::uint64_t d) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(d));
  return std::string(buf);
}

// --- Completed-shard bitmap -----------------------------------------------

/// Fixed-size bitmap over a cell's shard indices. One bit per shard, 64
/// shards per word — a million-trial cell at shard width 64 is ~2 KiB.
class ShardBitmap {
 public:
  ShardBitmap() = default;
  explicit ShardBitmap(std::uint64_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] bool test(std::uint64_t i) const noexcept {
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }
  void set(std::uint64_t i) noexcept { words_[i / 64] |= 1ULL << (i % 64); }
  [[nodiscard]] std::uint64_t size() const noexcept { return bits_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t c = 0;
    for (std::uint64_t w : words_) {
      while (w != 0) {
        w &= w - 1;
        ++c;
      }
    }
    return c;
  }
  [[nodiscard]] bool all() const noexcept { return count() == bits_; }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }
  std::vector<std::uint64_t>& words() noexcept { return words_; }

 private:
  std::uint64_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

// --- Checkpoint document ---------------------------------------------------

/// On-disk format version. Bump on any layout change — an old-version file
/// is refused as kCorrupt-class (explicitly versioned), never misread.
inline constexpr std::uint64_t kCheckpointFormat = 1;
/// "PPCKPT01" as little-endian bytes.
inline constexpr std::uint64_t kCheckpointMagic = 0x3130'5450'4B43'5050ULL;

/// Progress of one campaign cell: the shard decomposition, the bitmap of
/// completed shards, and a results slot per trial (meaningful exactly where
/// the owning shard's bit is set — only those records are serialized).
struct CellProgress {
  std::uint64_t trials = 0;
  std::uint64_t shard_trials = 1;  ///< rings per shard; thread-independent
  ShardBitmap done;                ///< one bit per shard
  std::vector<analysis::RecoveryTrial> results;  ///< size = trials

  [[nodiscard]] std::uint64_t shards() const noexcept { return done.size(); }
  [[nodiscard]] std::uint64_t shard_first(std::uint64_t s) const noexcept {
    return s * shard_trials;
  }
  [[nodiscard]] std::uint64_t shard_count(std::uint64_t s) const noexcept {
    const std::uint64_t first = shard_first(s);
    return first >= trials ? 0
                           : std::min<std::uint64_t>(shard_trials,
                                                     trials - first);
  }
};

/// The whole checkpoint document, in memory.
struct Checkpoint {
  std::uint64_t spec_digest = 0;
  std::uint64_t frame_bytes = 0;  ///< frame-sink offset this checkpoint covers
  std::vector<CellProgress> cells;
};

enum class LoadStatus {
  kLoaded,        ///< checkpoint read and verified
  kAbsent,        ///< no file at the path (a fresh campaign, not an error)
  kCorrupt,       ///< bad magic/version/checksum/structure — refuse
  kSpecMismatch,  ///< valid file for a DIFFERENT campaign spec — refuse
};

struct LoadResult {
  LoadStatus status = LoadStatus::kAbsent;
  Checkpoint checkpoint;
  std::string error;  ///< human-readable reason for kCorrupt/kSpecMismatch
};

namespace detail {

/// Byte-buffer writer with explicit little-endian encoding.
struct ByteSink {
  std::vector<unsigned char> out;
  void u8(std::uint8_t v) { out.push_back(v); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
};

/// Bounds-checked little-endian reader; any overrun flips `ok` sticky-false.
struct ByteSource {
  const unsigned char* p = nullptr;
  std::size_t len = 0;
  std::size_t at = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (at + 1 > len) {
      ok = false;
      return 0;
    }
    return p[at++];
  }
  std::uint64_t u64() {
    if (at + 8 > len) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(p[at + static_cast<std::size_t>(i)])
           << (8 * i);
    at += 8;
    return v;
  }
};

inline void encode_trial(ByteSink& s, const analysis::RecoveryTrial& t) {
  s.u8(static_cast<std::uint8_t>((t.stabilized ? 1 : 0) |
                                 (t.healed ? 2 : 0)));
  s.u64(t.stabilize_steps);
  s.u64(t.recovery_steps);
}

inline analysis::RecoveryTrial decode_trial(ByteSource& s) {
  analysis::RecoveryTrial t;
  const std::uint8_t flags = s.u8();
  t.stabilized = (flags & 1) != 0;
  t.healed = (flags & 2) != 0;
  t.stabilize_steps = s.u64();
  t.recovery_steps = s.u64();
  return t;
}

}  // namespace detail

/// Serialize a checkpoint to bytes: header, per-cell progress (bitmap +
/// completed-shard records only), trailing FNV-1a checksum.
[[nodiscard]] inline std::vector<unsigned char> encode_checkpoint(
    const Checkpoint& ckpt) {
  detail::ByteSink s;
  s.u64(kCheckpointMagic);
  s.u64(kCheckpointFormat);
  s.u64(ckpt.spec_digest);
  s.u64(ckpt.frame_bytes);
  s.u64(ckpt.cells.size());
  for (const CellProgress& cell : ckpt.cells) {
    s.u64(cell.trials);
    s.u64(cell.shard_trials);
    s.u64(cell.done.size());
    for (std::uint64_t w : cell.done.words()) s.u64(w);
    for (std::uint64_t sh = 0; sh < cell.shards(); ++sh) {
      if (!cell.done.test(sh)) continue;
      const std::uint64_t first = cell.shard_first(sh);
      const std::uint64_t count = cell.shard_count(sh);
      for (std::uint64_t i = 0; i < count; ++i)
        detail::encode_trial(
            s, cell.results[static_cast<std::size_t>(first + i)]);
    }
  }
  Digest sum;
  sum.bytes(s.out.data(), s.out.size());
  s.u64(sum.value());
  return s.out;
}

/// Decode + verify. `expected_digest` is the running campaign's spec digest;
/// a checksum-valid checkpoint with a different digest is kSpecMismatch.
[[nodiscard]] inline LoadResult decode_checkpoint(
    const unsigned char* data, std::size_t len,
    std::uint64_t expected_digest) {
  LoadResult out;
  out.status = LoadStatus::kCorrupt;
  if (len < 6 * 8) {
    out.error = "file shorter than the fixed header";
    return out;
  }
  {  // Checksum first: everything else assumes intact bytes.
    Digest sum;
    sum.bytes(data, len - 8);
    detail::ByteSource tail{data + (len - 8), 8, 0, true};
    if (sum.value() != tail.u64()) {
      out.error = "content checksum mismatch (torn or corrupted file)";
      return out;
    }
  }
  detail::ByteSource s{data, len - 8, 0, true};
  if (s.u64() != kCheckpointMagic) {
    out.error = "bad magic (not a ppsim campaign checkpoint)";
    return out;
  }
  if (const std::uint64_t fmt = s.u64(); fmt != kCheckpointFormat) {
    out.error = "unsupported checkpoint format version " + std::to_string(fmt);
    return out;
  }
  Checkpoint ckpt;
  ckpt.spec_digest = s.u64();
  ckpt.frame_bytes = s.u64();
  const std::uint64_t n_cells = s.u64();
  if (!s.ok || n_cells > (1ULL << 32)) {
    out.error = "implausible cell count";
    return out;
  }
  for (std::uint64_t c = 0; c < n_cells && s.ok; ++c) {
    CellProgress cell;
    cell.trials = s.u64();
    cell.shard_trials = s.u64();
    const std::uint64_t shards = s.u64();
    if (!s.ok || cell.shard_trials == 0 ||
        shards != (cell.trials + cell.shard_trials - 1) / cell.shard_trials) {
      out.error = "inconsistent shard decomposition";
      return out;
    }
    cell.done = ShardBitmap(shards);
    for (std::uint64_t& w : cell.done.words()) w = s.u64();
    cell.results.resize(static_cast<std::size_t>(cell.trials));
    for (std::uint64_t sh = 0; sh < shards && s.ok; ++sh) {
      if (!cell.done.test(sh)) continue;
      const std::uint64_t first = cell.shard_first(sh);
      const std::uint64_t count = cell.shard_count(sh);
      for (std::uint64_t i = 0; i < count; ++i)
        cell.results[static_cast<std::size_t>(first + i)] =
            detail::decode_trial(s);
    }
    ckpt.cells.push_back(std::move(cell));
  }
  if (!s.ok || s.at != s.len) {
    out.error = "truncated or oversized payload";
    return out;
  }
  if (ckpt.spec_digest != expected_digest) {
    out.status = LoadStatus::kSpecMismatch;
    out.error = "checkpoint is for campaign " + digest_hex(ckpt.spec_digest) +
                ", this campaign is " + digest_hex(expected_digest) +
                " — refusing to resume (and refusing to silently restart)";
    return out;
  }
  out.status = LoadStatus::kLoaded;
  out.checkpoint = std::move(ckpt);
  return out;
}

/// Atomic save: write `<path>.tmp`, flush, rename over `path`. Returns
/// false (with the OS error on stderr) when any step fails.
[[nodiscard]] inline bool save_checkpoint(const std::string& path,
                                          const Checkpoint& ckpt) {
  const std::vector<unsigned char> bytes = encode_checkpoint(ckpt);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    std::perror(("campaign checkpoint: fopen " + tmp).c_str());
    return false;
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::perror(("campaign checkpoint: commit " + path).c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// Load a checkpoint file. A missing file is kAbsent (fresh campaign);
/// every other failure mode is a refusal with a reason.
[[nodiscard]] inline LoadResult load_checkpoint(
    const std::string& path, std::uint64_t expected_digest) {
  LoadResult out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    out.status = LoadStatus::kAbsent;
    return out;
  }
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + got);
  std::fclose(f);
  return decode_checkpoint(bytes.data(), bytes.size(), expected_digest);
}

}  // namespace ppsim::service
