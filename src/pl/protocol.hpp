// P_PL — the paper's self-stabilizing leader-election protocol for directed
// rings (Algorithms 1-5). `l` is the initiator (left neighbor), `r` the
// responder (right neighbor), exactly as in the paper.
//
// Line-number comments refer to the paper's pseudocode. Two transcription
// fixes relative to the raw arXiv text are applied and documented in
// DESIGN.md §2.1: the InvalidToken interval sense (Def. 3.3) and the payload
// in line 30. `mode` is derived from `clock` (DESIGN.md §2.1(3)).
//
// Every transition is templated on an event sink (see events.hpp); the
// default NullSink makes the hooks vanish, so the uninstrumented hot path is
// unchanged.
#pragma once

#include <string>

#include "common/elimination.hpp"
#include "pl/events.hpp"
#include "pl/packed_protocol.hpp"
#include "pl/packed_state.hpp"
#include "pl/params.hpp"
#include "pl/state.hpp"

namespace ppsim::pl {

namespace detail {

/// (x + d) mod 2psi with possibly negative x + d.
[[nodiscard]] constexpr int mod_2psi(int v, int two_psi) noexcept {
  v %= two_psi;
  return v < 0 ? v + two_psi : v;
}

/// Definition 3.3 (with the interval sense forced by the Fig.-2 trajectory;
/// see DESIGN.md §2.1(1)). A token at agent `v` with color offset `d`
/// (0 = black, psi = white) is valid iff its shifted target
/// tau = (v.dist + token.pos + d) mod 2psi lies in the rightward band
/// [psi, 2psi-1] when moving right, or the leftward band [1, psi-1] when
/// moving left. A token whose left leg has completed the trajectory lands on
/// tau == psi and is therefore invalid — that is how lines 32-33 delete a
/// token that reached its final destination (Def. 3.4).
[[nodiscard]] constexpr bool invalid_token(const PlState& v, const Token& t,
                                           int d,
                                           const PlParams& p) noexcept {
  if (!t.exists()) return false;
  const int tau = mod_2psi(static_cast<int>(v.dist) + t.pos + d, p.two_psi());
  if (t.pos > 0) return !(tau >= p.psi && tau <= p.two_psi() - 1);
  return !(tau >= 1 && tau <= p.psi - 1);
}

/// The Def.-3.4 completion signature: a token deleted by lines 32-33 right
/// after its last landing sits at shifted target tau == psi moving left.
[[nodiscard]] constexpr bool is_completed_landing(const PlState& v,
                                                  const Token& t, int d,
                                                  const PlParams& p) noexcept {
  if (t.pos != 1 - p.psi) return false;
  return mod_2psi(static_cast<int>(v.dist) + t.pos + d, p.two_psi()) ==
         p.psi;
}

/// MoveToken(token, d) — Algorithm 3. `tm` selects token_b (d = 0) or
/// token_w (d = psi).
template <typename Sink>
inline void move_token(PlState& l, PlState& r, Token PlState::* tm, int d,
                       const PlParams& p, Sink& sink) noexcept {
  const int psi = p.psi;
  const bool black = d == 0;
  Token& lt = l.*tm;
  Token& rt = r.*tm;

  // Lines 12-13: a border agent outside the last segment (re)creates a token
  // initialized for round 0 of the ripple-carry increment:
  // (b', b'') = (1 - b, b), target index T = psi.
  if (static_cast<int>(l.dist) == d && l.last == 0 && !lt.exists()) {
    lt = Token{static_cast<std::int8_t>(psi),
               static_cast<std::uint8_t>(1 - l.b), l.b};
    sink.token_created(black);
  }

  // Lines 14-15: the left token dies when the responder holds a token of the
  // same color (collision; the rightmost survives) or belongs to the last
  // segment (a token never enters the last segment).
  if (lt.exists() && (rt.exists() || r.last == 1)) {
    sink.token_died(black, rt.exists() ? TokenDeath::kCollision
                                       : TokenDeath::kLastSegment);
    lt.clear();
  }

  if (lt.pos == 1) {
    // Lines 16-22: the token reaches its right target r.
    if (in_detect_mode(r, p.kappa_max)) {
      sink.token_delivered(black, false);
      if (lt.value != r.b) {
        // Lines 17-18: imperfection detected.
        if (r.leader == 0) sink.leader_created(true);
        become_leader(r);
      }
    } else {
      r.b = lt.value;  // lines 19-20: construction writes the bit
      sink.token_delivered(black, true);
    }
    // Line 21: turn around; head left toward the next source bit.
    rt = Token{static_cast<std::int8_t>(1 - psi), lt.value, lt.carry};
    lt.clear();  // line 22
    sink.token_moved(black);
  } else if (lt.pos >= 2) {
    // Lines 23-25: move right.
    rt = Token{static_cast<std::int8_t>(lt.pos - 1), lt.value, lt.carry};
    lt.clear();
    sink.token_moved(black);
  } else if (rt.pos == -1) {
    // Lines 26-28: the token reaches its left target l; compute the next
    // round's bit and carry and head right again:
    // (b', b'') <- (1 - l.b, l.b) if carry else (l.b, 0).
    lt = rt.carry != 0 ? Token{static_cast<std::int8_t>(psi),
                               static_cast<std::uint8_t>(1 - l.b), l.b}
                       : Token{static_cast<std::int8_t>(psi), l.b, 0};
    rt.clear();
    sink.token_moved(black);
  } else if (rt.exists() && rt.pos <= -2) {
    // Lines 29-31: move left. (Line 30's payload travels with the token;
    // DESIGN.md §2.1(2).)
    lt = Token{static_cast<std::int8_t>(rt.pos + 1), rt.value, rt.carry};
    rt.clear();
    sink.token_moved(black);
  }

  // Lines 32-33: delete tokens that sit in the last segment or are invalid
  // (out of trajectory / trajectory completed).
  if (lt.exists() && (l.last == 1 || invalid_token(l, lt, d, p))) {
    sink.token_died(black, l.last == 1 ? TokenDeath::kLastSegment
                    : is_completed_landing(l, lt, d, p)
                        ? TokenDeath::kCompleted
                        : TokenDeath::kInvalid);
    lt.clear();
  }
  if (rt.exists() && (r.last == 1 || invalid_token(r, rt, d, p))) {
    sink.token_died(black, r.last == 1 ? TokenDeath::kLastSegment
                    : is_completed_landing(r, rt, d, p)
                        ? TokenDeath::kCompleted
                        : TokenDeath::kInvalid);
    rt.clear();
  }
}

/// DetermineMode() — Algorithm 4. Manages the leader-absence barometer
/// `clock` via resetting signals whose lifetime is governed by the lottery
/// game (Def. 3.8) on `hits`.
template <typename Sink>
inline void determine_mode(PlState& l, PlState& r, const PlParams& p,
                           Sink& sink) noexcept {
  // Lines 34-35: a leader (as initiator) generates a fresh resetting signal.
  if (l.leader == 1) {
    if (l.signal_r == 0) sink.signal_generated();
    l.signal_r = static_cast<std::uint16_t>(p.kappa_max);
  }
  // Line 36: interacting with the right neighbor resets the run length.
  l.hits = 0;
  // Line 37: interacting with the left neighbor extends it.
  r.hits = static_cast<std::uint8_t>(
      std::min(static_cast<int>(r.hits) + 1, p.psi));

  if (l.signal_r > 0 || r.signal_r > 0) {
    // Line 39: observing a signal resets both clocks.
    l.clock = 0;
    r.clock = 0;
    // Lines 40-41: the left signal absorbs the right one (hits reset to
    // simplify the paper's analysis).
    if (r.signal_r > 0 && l.signal_r >= r.signal_r) r.hits = 0;
    if (l.signal_r > 0 && r.signal_r > 0) sink.signal_absorbed();
    // Line 42: the (merged) signal moves right.
    if (l.signal_r > 0) sink.signal_moved();
    r.signal_r = std::max(l.signal_r, r.signal_r);
    l.signal_r = 0;
    // Lines 43-45: a lottery win decrements the signal's TTL.
    if (static_cast<int>(r.hits) == p.psi) {
      r.signal_r = static_cast<std::uint16_t>(r.signal_r - 1);
      r.hits = 0;
      if (r.signal_r == 0) sink.signal_expired();
    }
  } else if (static_cast<int>(r.hits) == p.psi) {
    // Lines 46-48: with no signal around, a lottery win advances the clock.
    r.clock = static_cast<std::uint16_t>(
        std::min(static_cast<int>(r.clock) + 1, p.kappa_max));
    r.hits = 0;
    sink.clock_advanced();
    if (static_cast<int>(r.clock) == p.kappa_max) sink.entered_detect();
  }
  // Lines 49-50: mode is derived from clock (DESIGN.md §2.1(3)).
}

/// CreateLeader() — Algorithm 2.
template <typename Sink>
inline void create_leader(PlState& l, PlState& r, const PlParams& p,
                          Sink& sink) noexcept {
  determine_mode(l, r, p, sink);  // line 3

  // Line 4: the responder's expected distance value.
  const int tmp =
      r.leader == 1 ? 0 : (static_cast<int>(l.dist) + 1) % p.two_psi();

  if (in_detect_mode(r, p.kappa_max) &&
      tmp != static_cast<int>(r.dist)) {
    // Lines 5-6: dist inconsistency detected.
    if (r.leader == 0) sink.leader_created(false);
    become_leader(r);
  }
  if (!in_detect_mode(r, p.kappa_max)) {
    r.dist = static_cast<std::uint16_t>(tmp);  // lines 7-8
  }

  // Line 9: does l belong to the last segment? Yes if its right neighbor is
  // a leader; no if its right neighbor starts a new segment; otherwise copy.
  if (r.leader == 1) {
    l.last = 1;
  } else if (static_cast<int>(r.dist) == 0 ||
             static_cast<int>(r.dist) == p.psi) {
    l.last = 0;
  } else {
    l.last = r.last;
  }

  move_token(l, r, &PlState::token_b, 0, p, sink);      // line 10
  move_token(l, r, &PlState::token_w, p.psi, p, sink);  // line 11
}

}  // namespace detail

/// Full Algorithm 1 with an event sink.
template <typename Sink>
inline void apply_instrumented(PlState& l, PlState& r, const PlParams& p,
                               Sink& sink) noexcept {
  detail::create_leader(l, r, p, sink);
  common::eliminate_leaders_step(l, r, sink);
}

/// The protocol object consumed by core::Runner and the test harness.
struct PlProtocol {
  using State = PlState;
  using Params = PlParams;
  static constexpr bool directed = true;

  /// Algorithm 1: CreateLeader(); EliminateLeaders().
  static void apply(State& l, State& r, const Params& p) noexcept {
    NullSink sink;
    apply_instrumented(l, r, p, sink);
  }

  [[nodiscard]] static bool is_leader(const State& s,
                                      const Params&) noexcept {
    return s.leader == 1;
  }

  // --- Word-packed fast path (core::HasWordKernel) ---
  // The whole variable block bit-sliced into one uint64_t with a
  // parameter-derived layout (pl/packed_state.hpp) and a branch-lean
  // transition kernel bit-identical to apply() on in-domain states
  // (pl/packed_protocol.hpp). Runner::run and the EnsembleRunner kernel
  // lane dispatch to this automatically when the layout fits 64 bits;
  // out-of-domain states (fault injection beyond the declared domains)
  // fail the pack/unpack round trip and drop the engine back to the
  // scalar path.
  using WordLayout = PackedLayout;
  using WordKernelConsts = PlKernelConsts;

  [[nodiscard]] static WordLayout word_layout(const Params& p) noexcept {
    return PackedLayout::make(p);
  }
  [[nodiscard]] static std::uint64_t pack_word(
      const State& s, const WordLayout& l) noexcept {
    return pl::pack_word(s, l);
  }
  [[nodiscard]] static State unpack_word(std::uint64_t w,
                                         const WordLayout& l) noexcept {
    return pl::unpack_word(w, l);
  }
  static void apply_word(std::uint64_t& l, std::uint64_t& r,
                         const WordLayout& lay) noexcept {
    pl::apply_word(l, r, lay);
  }
  [[nodiscard]] static WordKernelConsts make_word_consts(
      const WordLayout& l) noexcept {
    return PlKernelConsts::make(l);
  }
  [[gnu::always_inline]] static inline void apply_word_one(
      std::uint64_t& l, std::uint64_t& r,
      const WordKernelConsts& k) noexcept {
    pl::apply_word_one(l, r, k);
  }
  // always_inline so the vector bodies compile inside the ISA-dispatched
  // driver clones (core::WordGroupDriver) rather than at baseline ISA.
  [[gnu::always_inline]] static inline void apply_word_x4(
      core::WordVec& l, core::WordVec& r,
      const WordKernelConsts& k) noexcept {
    pl::apply_word_x4(l, r, k);
  }
  [[gnu::always_inline]] static inline void apply_word_x8(
      core::WordVec8& l, core::WordVec8& r,
      const WordKernelConsts& k) noexcept {
    pl::apply_word_x8(l, r, k);
  }
  [[nodiscard]] static bool word_leader(std::uint64_t w,
                                        const WordLayout& l) noexcept {
    return pl::word_leader(w, l);
  }

  // Narrow (u32) kernel entry points (core::HasNarrowWordKernel): the same
  // kernel at 32-bit element width, engaged by EnsembleRunner when the
  // layout fits a half-word (small-n / small-c1 regimes) so a vector
  // register carries twice the rings.
  [[nodiscard]] static bool word_fits_narrow(const WordLayout& l) noexcept {
    return l.fits_narrow();
  }
  [[gnu::always_inline]] static inline void apply_word_narrow_one(
      std::uint32_t& l, std::uint32_t& r,
      const WordKernelConsts& k) noexcept {
    pl::apply_word_narrow_one(l, r, k);
  }
  [[gnu::always_inline]] static inline void apply_word_narrow_x8(
      core::HalfVec8& l, core::HalfVec8& r,
      const WordKernelConsts& k) noexcept {
    pl::apply_word_narrow_x8(l, r, k);
  }
  [[gnu::always_inline]] static inline void apply_word_narrow_x16(
      core::HalfVec16& l, core::HalfVec16& r,
      const WordKernelConsts& k) noexcept {
    pl::apply_word_narrow_x16(l, r, k);
  }

  /// Human-readable state rendering (differential-fuzzer divergence reports;
  /// same customization point the checker adapters expose for decoded
  /// counterexamples).
  static std::string describe(const State& s, const Params&) {
    const auto token = [](const Token& t) {
      if (!t.exists()) return std::string("bot");
      return "(" + std::to_string(t.pos) + "," + std::to_string(t.value) +
             "," + std::to_string(t.carry) + ")";
    };
    return "{leader=" + std::to_string(s.leader) +
           " b=" + std::to_string(s.b) + " dist=" + std::to_string(s.dist) +
           " last=" + std::to_string(s.last) + " tokB=" + token(s.token_b) +
           " tokW=" + token(s.token_w) + " clock=" + std::to_string(s.clock) +
           " hits=" + std::to_string(s.hits) +
           " signalR=" + std::to_string(s.signal_r) +
           " bullet=" + std::to_string(s.bullet) +
           " shield=" + std::to_string(s.shield) +
           " signalB=" + std::to_string(s.signal_b) + "}";
  }
};

/// P_PL with a shared EventCounters sink, usable directly in core::Runner.
/// (The sink pointer lives in the params so the protocol stays stateless.)
struct InstrumentedPlProtocol {
  using State = PlState;
  struct Params {
    int n = 0;
    PlParams pl;
    EventCounters* sink = nullptr;

    [[nodiscard]] static Params make(const PlParams& p,
                                     EventCounters* counters) {
      return Params{p.n, p, counters};
    }
  };
  static constexpr bool directed = true;

  static void apply(State& l, State& r, const Params& p) noexcept {
    apply_instrumented(l, r, p.pl, *p.sink);
  }

  [[nodiscard]] static bool is_leader(const State& s,
                                      const Params&) noexcept {
    return s.leader == 1;
  }
};

}  // namespace ppsim::pl
