// Word-packed representation of PlState: the whole Algorithm-1 variable
// block of one agent bit-sliced into a single uint64_t.
//
// The poly-logarithmic state bound that is the paper's headline result is
// exactly what makes this possible: every field domain is O(psi) or
// O(kappa_max) = O(c1 * psi), so with psi = ceil(log2 n) + O(1) the packed
// width is ~11 + 3*ceil(log2 2psi) + ceil(log2(psi+1)) +
// 2*ceil(log2(kappa_max+1)) bits — 51 bits at n = 2^16 with the paper's
// c1 = 32, comfortably inside one machine word.
//
// Layout (LSB first; widths derived from the parameters at runtime):
//
//   bit 0        leader
//   bit 1        b
//   bit 2        last
//   bit 3        shield
//   bit 4        signal_b
//   bits 5-6     bullet               (2 bits, domain {0,1,2})
//   D bits       dist                 D = ceil(log2 2psi),   domain [0, 2psi)
//   H bits       hits                 H = ceil(log2(psi+1)), domain [0, psi]
//   K bits       clock                K = ceil(log2(kappa_max+1))
//   K bits       signal_r
//   D+2 bits     token_b              biased pos (D bits) | value | carry
//   D+2 bits     token_w              same sub-layout
//
// Token positions are sign-biased: stored = pos + (psi - 1), mapping the
// domain pos in [1-psi, psi] (0 = bot) onto [0, 2psi-1]. value and carry are
// stored verbatim even for bot tokens, so pack/unpack is a bijection on the
// full per-field domain and a bot token's payload bits survive a round trip
// exactly as they do in the 22-byte scalar struct.
//
// pack_word clamps every field into its domain, which makes the generic
// engine-side acceptance test ("does unpack_word(pack_word(s)) == s?")
// double as a *domain* check: any out-of-domain field (an injected fault
// with dist >= 2psi, a token value > 1, ...) clamps to a different value,
// the round trip fails, and the engine falls back to the scalar path — the
// packed representation never silently truncates a state it cannot hold.
//
// The capacity probe is constexpr: parameter regimes whose layout exceeds
// 64 bits (huge psi_slack or c1) report !fits() and every engine keeps the
// scalar path (tests/pl/packed_state_test.cpp pins both directions).
#pragma once

#include <algorithm>
#include <cstdint>

#include "pl/params.hpp"
#include "pl/state.hpp"

namespace ppsim::pl {

struct PackedLayout {
  // Protocol parameters the kernel needs (copied out of PlParams so the hot
  // loop touches one small, loop-invariant struct).
  int psi = 0;
  int two_psi = 0;
  int kappa_max = 0;

  // Field widths (bits) and shifts. The five 1-bit flags and the 2-bit
  // bullet occupy the fixed low 7 bits; everything above is derived.
  unsigned dist_bits = 0;
  unsigned hits_bits = 0;
  unsigned clock_bits = 0;
  unsigned token_bits = 0;  ///< dist_bits + 2 (biased pos | value | carry)

  unsigned dist_shift = 0;
  unsigned hits_shift = 0;
  unsigned clock_shift = 0;
  unsigned sigr_shift = 0;
  unsigned tokb_shift = 0;
  unsigned tokw_shift = 0;
  unsigned total_bits = 0;

  std::uint64_t dist_mask = 0;   ///< unshifted, (1 << dist_bits) - 1
  std::uint64_t hits_mask = 0;
  std::uint64_t clock_mask = 0;

  /// True iff the whole variable block fits one 64-bit word. When false the
  /// layout must not be used; every engine stays on the scalar path.
  [[nodiscard]] constexpr bool fits() const noexcept {
    return total_bits > 0 && total_bits <= 64;
  }

  /// True iff the whole variable block also fits one 32-bit half-word — the
  /// regime-narrowed layout: two packed states per 64 bits of vector
  /// register. Small-n only (e.g. n = 16 needs c1 <= 3, n = 64 needs
  /// c1 = 1 at zero slack); the narrow engines probe this and keep the
  /// 64-bit mirror otherwise. The pack/round-trip/clamp fallback contract
  /// is unchanged — a narrow mirror stores the same pack_word image,
  /// losslessly truncated to its low total_bits <= 32 bits.
  [[nodiscard]] constexpr bool fits_narrow() const noexcept {
    return total_bits > 0 && total_bits <= 32;
  }

  /// Bit width of the packed layout for the given parameters (the constexpr
  /// capacity probe; usable in static_asserts and tests without building a
  /// layout).
  [[nodiscard]] static constexpr unsigned width(int psi,
                                                int kappa_max) noexcept {
    const unsigned d = bits_for(2 * psi);
    return 7 + 3 * d + 4 + bits_for(psi + 1) + 2 * bits_for(kappa_max + 1);
  }

  [[nodiscard]] static constexpr PackedLayout make(
      const PlParams& p) noexcept {
    PackedLayout l;
    l.psi = p.psi;
    l.two_psi = p.two_psi();
    l.kappa_max = p.kappa_max;
    l.dist_bits = bits_for(l.two_psi);
    l.hits_bits = bits_for(p.psi + 1);
    l.clock_bits = bits_for(p.kappa_max + 1);
    l.token_bits = l.dist_bits + 2;
    l.dist_shift = 7;
    l.hits_shift = l.dist_shift + l.dist_bits;
    l.clock_shift = l.hits_shift + l.hits_bits;
    l.sigr_shift = l.clock_shift + l.clock_bits;
    l.tokb_shift = l.sigr_shift + l.clock_bits;
    l.tokw_shift = l.tokb_shift + l.token_bits;
    l.total_bits = l.tokw_shift + l.token_bits;
    l.dist_mask = (std::uint64_t{1} << l.dist_bits) - 1;
    l.hits_mask = (std::uint64_t{1} << l.hits_bits) - 1;
    l.clock_mask = (std::uint64_t{1} << l.clock_bits) - 1;
    return l;
  }

 private:
  /// Bits needed to store values in [0, domain): ceil(log2 domain), min 1.
  [[nodiscard]] static constexpr unsigned bits_for(int domain) noexcept {
    unsigned bits = 1;
    while ((std::uint64_t{1} << bits) < static_cast<std::uint64_t>(domain))
      ++bits;
    return bits;
  }
};

/// Is every field of `s` inside the domain the packed layout represents?
/// (The declared variable domains of Algorithm 1; the scalar struct can hold
/// wider values after arbitrary fault injection.)
[[nodiscard]] constexpr bool in_word_domain(const PlState& s,
                                            const PackedLayout& l) noexcept {
  const auto token_ok = [&](const Token& t) {
    return t.pos >= 1 - l.psi && t.pos <= l.psi && t.value <= 1 &&
           t.carry <= 1;
  };
  return s.leader <= 1 && s.b <= 1 && s.last <= 1 && s.shield <= 1 &&
         s.signal_b <= 1 && s.bullet <= 2 &&
         static_cast<int>(s.dist) < l.two_psi &&
         static_cast<int>(s.hits) <= l.psi &&
         static_cast<int>(s.clock) <= l.kappa_max &&
         static_cast<int>(s.signal_r) <= l.kappa_max && token_ok(s.token_b) &&
         token_ok(s.token_w);
}

/// Pack one scalar state into a word, clamping every field into its domain
/// (see the header comment: clamping makes the engines' round-trip check a
/// domain check — an out-of-domain state never round-trips, so it can never
/// enter a packed engine lane).
[[nodiscard]] constexpr std::uint64_t pack_word(
    const PlState& s, const PackedLayout& l) noexcept {
  const auto clamp_int = [](int v, int lo, int hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  const auto pack_token = [&](const Token& t) -> std::uint64_t {
    const auto biased = static_cast<std::uint64_t>(
        clamp_int(static_cast<int>(t.pos), 1 - l.psi, l.psi) + (l.psi - 1));
    return biased | (static_cast<std::uint64_t>(t.value > 1 ? 1 : t.value)
                     << l.dist_bits) |
           (static_cast<std::uint64_t>(t.carry > 1 ? 1 : t.carry)
            << (l.dist_bits + 1));
  };
  std::uint64_t w = 0;
  w |= static_cast<std::uint64_t>(s.leader > 1 ? 1 : s.leader);
  w |= static_cast<std::uint64_t>(s.b > 1 ? 1 : s.b) << 1;
  w |= static_cast<std::uint64_t>(s.last > 1 ? 1 : s.last) << 2;
  w |= static_cast<std::uint64_t>(s.shield > 1 ? 1 : s.shield) << 3;
  w |= static_cast<std::uint64_t>(s.signal_b > 1 ? 1 : s.signal_b) << 4;
  w |= static_cast<std::uint64_t>(s.bullet > 2 ? 2 : s.bullet) << 5;
  w |= static_cast<std::uint64_t>(
           clamp_int(static_cast<int>(s.dist), 0, l.two_psi - 1))
       << l.dist_shift;
  w |= static_cast<std::uint64_t>(
           clamp_int(static_cast<int>(s.hits), 0, l.psi))
       << l.hits_shift;
  w |= static_cast<std::uint64_t>(
           clamp_int(static_cast<int>(s.clock), 0, l.kappa_max))
       << l.clock_shift;
  w |= static_cast<std::uint64_t>(
           clamp_int(static_cast<int>(s.signal_r), 0, l.kappa_max))
       << l.sigr_shift;
  w |= pack_token(s.token_b) << l.tokb_shift;
  w |= pack_token(s.token_w) << l.tokw_shift;
  return w;
}

/// Inverse of pack_word on in-domain states.
[[nodiscard]] constexpr PlState unpack_word(std::uint64_t w,
                                            const PackedLayout& l) noexcept {
  const auto unpack_token = [&](std::uint64_t f) {
    Token t;
    t.pos = static_cast<std::int8_t>(
        static_cast<int>(f & l.dist_mask) - (l.psi - 1));
    t.value = static_cast<std::uint8_t>((f >> l.dist_bits) & 1);
    t.carry = static_cast<std::uint8_t>((f >> (l.dist_bits + 1)) & 1);
    return t;
  };
  PlState s;
  s.leader = static_cast<std::uint8_t>(w & 1);
  s.b = static_cast<std::uint8_t>((w >> 1) & 1);
  s.last = static_cast<std::uint8_t>((w >> 2) & 1);
  s.shield = static_cast<std::uint8_t>((w >> 3) & 1);
  s.signal_b = static_cast<std::uint8_t>((w >> 4) & 1);
  s.bullet = static_cast<std::uint8_t>((w >> 5) & 3);
  s.dist = static_cast<std::uint16_t>((w >> l.dist_shift) & l.dist_mask);
  s.hits = static_cast<std::uint8_t>((w >> l.hits_shift) & l.hits_mask);
  s.clock = static_cast<std::uint16_t>((w >> l.clock_shift) & l.clock_mask);
  s.signal_r =
      static_cast<std::uint16_t>((w >> l.sigr_shift) & l.clock_mask);
  s.token_b = unpack_token(w >> l.tokb_shift);
  s.token_w = unpack_token(w >> l.tokw_shift);
  return s;
}

}  // namespace ppsim::pl
