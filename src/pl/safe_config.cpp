#include "pl/safe_config.hpp"

#include "core/ring.hpp"

namespace ppsim::pl {

std::vector<PlState> make_safe_config(const PlParams& p, int leader_pos,
                                      long long first_id) {
  const int n = p.n;
  const int zeta = p.zeta();
  std::vector<PlState> c(static_cast<std::size_t>(n));
  const long long modulus = p.id_modulus();
  first_id = ((first_id % modulus) + modulus) % modulus;

  for (int i = 0; i < n; ++i) {
    const int idx = core::ring_add(leader_pos, i, n);
    PlState& s = c[static_cast<std::size_t>(idx)];
    s.leader = i == 0 ? 1 : 0;
    s.dist = static_cast<std::uint16_t>(i % p.two_psi());
    s.last = i >= p.psi * (zeta - 1) ? 1 : 0;
    const int seg = i / p.psi;
    const int bit = i % p.psi;
    // Segments 0..zeta-2 carry consecutive IDs; the (unconstrained) last
    // segment continues the pattern for definiteness.
    const long long id = (first_id + seg) % modulus;
    s.b = static_cast<std::uint8_t>((id >> bit) & 1);
    s.shield = i == 0 ? 1 : 0;
  }
  return c;
}

std::vector<PlState> make_fresh_config(const PlParams& p, int leader_pos) {
  std::vector<PlState> c(static_cast<std::size_t>(p.n));
  c[static_cast<std::size_t>(leader_pos)].leader = 1;
  c[static_cast<std::size_t>(leader_pos)].shield = 1;
  return c;
}

}  // namespace ppsim::pl
