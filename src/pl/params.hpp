// Parameters of P_PL.
//
// The protocol is parameterized by the common knowledge
// psi = ceil(log2 n) + O(1) (so 2^psi >= n, as Lemma 3.2 requires) and by
// kappa_max = c1 * psi for a sufficiently large constant c1 (the paper
// assumes c1 >= 32; kappa_max controls how long the population is guaranteed
// to stay in construction mode once a leader exists, cf. Lemma 3.6).
#pragma once

#include <cassert>
#include <stdexcept>

#include "core/ring.hpp"

namespace ppsim::pl {

struct PlParams {
  int n = 0;          ///< ring size (>= 2)
  int psi = 2;        ///< knowledge, >= 2 and 2^psi >= n
  int kappa_max = 64; ///< c1 * psi

  /// Paper-faithful construction: psi = max(2, ceil(log2 n)) + psi_slack,
  /// kappa_max = c1 * psi. constexpr so parameter regimes can be certified
  /// at compile time (pl/packed_certify.hpp static_asserts the committed
  /// bench regimes clamp-free).
  [[nodiscard]] static constexpr PlParams make(int n, int c1 = 32,
                                               int psi_slack = 0) {
    if (n < 2) throw std::invalid_argument("PlParams: n must be >= 2");
    if (c1 < 1) throw std::invalid_argument("PlParams: c1 must be >= 1");
    if (psi_slack < 0)
      throw std::invalid_argument("PlParams: psi_slack must be >= 0");
    PlParams p;
    p.n = n;
    p.psi = std::max(2, core::ceil_log2(static_cast<std::uint64_t>(n))) +
            psi_slack;
    p.kappa_max = c1 * p.psi;
    return p;
  }

  [[nodiscard]] constexpr int two_psi() const noexcept { return 2 * psi; }

  /// Segment-ID modulus 2^psi.
  [[nodiscard]] constexpr long long id_modulus() const noexcept {
    return 1LL << psi;
  }

  /// zeta = ceil(n / psi): the number of segments in C_DL.
  [[nodiscard]] constexpr int zeta() const noexcept {
    return (n + psi - 1) / psi;
  }

  /// Trajectory length of a token (Definition 3.4): 2*psi^2 - 2*psi + 1.
  [[nodiscard]] constexpr int trajectory_length() const noexcept {
    return 2 * psi * psi - 2 * psi + 1;
  }

  friend bool operator==(const PlParams&, const PlParams&) = default;
};

}  // namespace ppsim::pl
