// Adversarial and random initial-configuration generators for P_PL.
//
// Self-stabilization quantifies over *every* configuration of the declared
// state space Call(P): every generator below stays inside the variable
// domains of Algorithm 1 (dist in [0, 2psi-1], clock/signalR in
// [0, kappa_max], hits in [0, psi], token positions in [-psi+1, psi], ...).
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "pl/params.hpp"
#include "pl/state.hpp"

namespace ppsim::pl {

/// Uniformly random state for every agent (the paper's "arbitrary
/// configuration" benchmark regime).
[[nodiscard]] std::vector<PlState> random_config(const PlParams& p,
                                                 core::Xoshiro256pp& rng);

/// Leaderless configuration with a *consistent* dist chain wherever possible
/// (dist = i mod 2psi), consecutive segment IDs except at the inevitable
/// violation, clocks at `clock`, no signals/tokens/bullets. With
/// clock == kappa_max this isolates the token-based detection path of
/// Algorithm 3 (the hardest absence-detection instance).
[[nodiscard]] std::vector<PlState> leaderless_consistent(const PlParams& p,
                                                         int clock);

/// Every agent a shielded leader (maximal elimination workload).
[[nodiscard]] std::vector<PlState> all_leaders(const PlParams& p);

/// All-zero configuration: leaderless, every variable 0 (dist chain broken
/// everywhere; exercises dist-detection, line 6).
[[nodiscard]] std::vector<PlState> all_zero(const PlParams& p);

/// Leaderless, construction-mode everywhere, with maximal resetting signals
/// (signalR = kappa_max at every agent): the detection machinery must first
/// drain all stale signals (Lemma 3.11) before clocks can rise.
[[nodiscard]] std::vector<PlState> stale_signals_everywhere(const PlParams& p);

/// Invalid tokens at every agent plus inconsistent leader/bullet/shield data
/// (the paper's lines 32-33 cleanup must dispose of all of it).
[[nodiscard]] std::vector<PlState> token_garbage(const PlParams& p,
                                                 core::Xoshiro256pp& rng);

/// Corrupt `faults` distinct agents of `config` with uniformly random states
/// (fault-injection after reaching a safe configuration).
void corrupt(std::vector<PlState>& config, const PlParams& p, int faults,
             core::Xoshiro256pp& rng);

/// One uniformly random agent state (shared by random_config/corrupt).
[[nodiscard]] PlState random_state(const PlParams& p,
                                   core::Xoshiro256pp& rng);

}  // namespace ppsim::pl
