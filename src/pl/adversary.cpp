#include "pl/adversary.hpp"

#include <algorithm>

namespace ppsim::pl {

namespace {

Token random_token(const PlParams& p, core::Xoshiro256pp& rng) {
  // pos in {bot} u [-psi+1, -1] u [1, psi]: 2*psi - 1 token positions plus
  // bot = 2*psi equally likely choices.
  const auto choice = static_cast<int>(rng.bounded(2 * p.psi));
  if (choice == 0) return kNoToken;
  const int pos = choice <= p.psi - 1 ? -choice : choice - (p.psi - 1);
  Token t;
  t.pos = static_cast<std::int8_t>(pos);
  t.value = static_cast<std::uint8_t>(rng.bounded(2));
  t.carry = static_cast<std::uint8_t>(rng.bounded(2));
  return t;
}

}  // namespace

PlState random_state(const PlParams& p, core::Xoshiro256pp& rng) {
  PlState s;
  s.leader = static_cast<std::uint8_t>(rng.bounded(2));
  s.b = static_cast<std::uint8_t>(rng.bounded(2));
  s.dist = static_cast<std::uint16_t>(rng.bounded(p.two_psi()));
  s.last = static_cast<std::uint8_t>(rng.bounded(2));
  s.token_b = random_token(p, rng);
  s.token_w = random_token(p, rng);
  s.clock = static_cast<std::uint16_t>(rng.bounded(p.kappa_max + 1));
  s.hits = static_cast<std::uint8_t>(rng.bounded(p.psi + 1));
  s.signal_r = static_cast<std::uint16_t>(rng.bounded(p.kappa_max + 1));
  s.bullet = static_cast<std::uint8_t>(rng.bounded(3));
  s.shield = static_cast<std::uint8_t>(rng.bounded(2));
  s.signal_b = static_cast<std::uint8_t>(rng.bounded(2));
  return s;
}

std::vector<PlState> random_config(const PlParams& p,
                                   core::Xoshiro256pp& rng) {
  std::vector<PlState> c(static_cast<std::size_t>(p.n));
  for (PlState& s : c) s = random_state(p, rng);
  return c;
}

std::vector<PlState> leaderless_consistent(const PlParams& p, int clock) {
  std::vector<PlState> c(static_cast<std::size_t>(p.n));
  const long long modulus = p.id_modulus();
  for (int i = 0; i < p.n; ++i) {
    PlState& s = c[static_cast<std::size_t>(i)];
    s.dist = static_cast<std::uint16_t>(i % p.two_psi());
    const int seg = i / p.psi;
    const int bit = i % p.psi;
    s.b = static_cast<std::uint8_t>(
        ((static_cast<long long>(seg) % modulus) >> bit) & 1);
    s.clock = static_cast<std::uint16_t>(
        std::min(clock, p.kappa_max));
  }
  return c;
}

std::vector<PlState> all_leaders(const PlParams& p) {
  std::vector<PlState> c(static_cast<std::size_t>(p.n));
  for (PlState& s : c) {
    s.leader = 1;
    s.shield = 1;
  }
  return c;
}

std::vector<PlState> all_zero(const PlParams& p) {
  return std::vector<PlState>(static_cast<std::size_t>(p.n));
}

std::vector<PlState> stale_signals_everywhere(const PlParams& p) {
  std::vector<PlState> c(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i) {
    PlState& s = c[static_cast<std::size_t>(i)];
    s.dist = static_cast<std::uint16_t>(i % p.two_psi());
    s.signal_r = static_cast<std::uint16_t>(p.kappa_max);
  }
  return c;
}

std::vector<PlState> token_garbage(const PlParams& p,
                                   core::Xoshiro256pp& rng) {
  std::vector<PlState> c(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i) {
    PlState& s = c[static_cast<std::size_t>(i)];
    s.dist = static_cast<std::uint16_t>(rng.bounded(p.two_psi()));
    s.b = static_cast<std::uint8_t>(rng.bounded(2));
    s.last = static_cast<std::uint8_t>(rng.bounded(2));
    Token t;
    t.pos = static_cast<std::int8_t>(
        rng.coin() ? p.psi : -(p.psi - 1));  // extreme positions
    t.value = static_cast<std::uint8_t>(rng.bounded(2));
    t.carry = static_cast<std::uint8_t>(rng.bounded(2));
    s.token_b = t;
    s.token_w = t;
    s.bullet = static_cast<std::uint8_t>(rng.bounded(3));
    s.signal_b = static_cast<std::uint8_t>(rng.bounded(2));
  }
  return c;
}

void corrupt(std::vector<PlState>& config, const PlParams& p, int faults,
             core::Xoshiro256pp& rng) {
  const int n = static_cast<int>(config.size());
  faults = std::min(faults, n);
  // Floyd-style distinct sampling for small fault counts.
  std::vector<int> chosen;
  while (static_cast<int>(chosen.size()) < faults) {
    const auto idx = static_cast<int>(rng.bounded(n));
    if (std::find(chosen.begin(), chosen.end(), idx) == chosen.end())
      chosen.push_back(idx);
  }
  for (int idx : chosen)
    config[static_cast<std::size_t>(idx)] = random_state(p, rng);
}

}  // namespace ppsim::pl
