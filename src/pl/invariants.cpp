#include "pl/invariants.hpp"

#include <algorithm>
#include <cassert>

#include "core/ring.hpp"

namespace ppsim::pl {

using core::ring_add;
using core::ring_distance;

std::vector<int> leader_positions(Config c) {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(c.size()); ++i)
    if (c[static_cast<std::size_t>(i)].leader == 1) out.push_back(i);
  return out;
}

int count_leaders(Config c) {
  int k = 0;
  for (const PlState& s : c) k += s.leader == 1 ? 1 : 0;
  return k;
}

bool satisfies_condition1(Config c, const PlParams& p) {
  const int n = static_cast<int>(c.size());
  for (int i = 0; i < n; ++i) {
    const PlState& cur = c[static_cast<std::size_t>(i)];
    const PlState& left = c[static_cast<std::size_t>(ring_add(i, -1, n))];
    const int expected =
        cur.leader == 1 ? 0 : (static_cast<int>(left.dist) + 1) % p.two_psi();
    if (static_cast<int>(cur.dist) != expected) return false;
  }
  return true;
}

bool is_border(const PlState& s, const PlParams& p) {
  return static_cast<int>(s.dist) == 0 || static_cast<int>(s.dist) == p.psi;
}

std::vector<SegmentView> decompose_segments(Config c, const PlParams& p) {
  const int n = static_cast<int>(c.size());
  std::vector<int> borders;
  for (int i = 0; i < n; ++i)
    if (is_border(c[static_cast<std::size_t>(i)], p)) borders.push_back(i);
  std::vector<SegmentView> out;
  out.reserve(borders.size());
  for (std::size_t bi = 0; bi < borders.size(); ++bi) {
    const int start = borders[bi];
    const int next = borders[(bi + 1) % borders.size()];
    int length = ring_distance(start, next, n);
    if (length == 0) length = n;  // single border: one segment, whole ring
    SegmentView seg;
    seg.start = start;
    seg.length = length;
    unsigned long long id = 0;
    for (int j = length - 1; j >= 0; --j) {
      id = id * 2 + c[static_cast<std::size_t>(ring_add(start, j, n))].b;
      if (id > (1ULL << 62)) {  // saturate: longer than any real segment
        id = 1ULL << 62;
        break;
      }
    }
    seg.id = id;
    out.push_back(seg);
  }
  return out;
}

bool satisfies_condition2(Config c, const PlParams& p) {
  const auto segments = decompose_segments(c, p);
  if (segments.empty()) return true;  // no borders => no segments: vacuous
  const int n = static_cast<int>(c.size());
  const auto modulus = static_cast<unsigned long long>(p.id_modulus());
  for (std::size_t si = 0; si < segments.size(); ++si) {
    const SegmentView& seg = segments[si];
    const SegmentView& prev =
        segments[(si + segments.size() - 1) % segments.size()];
    const int after = ring_add(seg.start, seg.length, n);
    const bool exempt =
        c[static_cast<std::size_t>(seg.start)].leader == 1 ||
        c[static_cast<std::size_t>(after)].leader == 1;
    if (exempt) continue;
    if (seg.id != (prev.id + 1) % modulus) return false;
  }
  return true;
}

bool is_perfect(Config c, const PlParams& p) {
  return satisfies_condition1(c, p) && satisfies_condition2(c, p);
}

bool token_valid(const PlState& host, const Token& t, int d,
                 const PlParams& p) {
  return t.exists() && !detail::invalid_token(host, t, d, p);
}

namespace {

/// Resolve the working-pair geometry of a valid token in the C_DL layout.
/// Returns false when the geometry does not embed in the ring without
/// wrapping past the leader.
struct TokenGeometry {
  int pair_start = 0;  ///< absolute index of the border opening S_i
  int round = 0;       ///< x: the round the token is in
};

bool resolve_geometry(Config c, const PlParams& p, int host, const Token& t,
                      int d, int leader_pos, TokenGeometry& g) {
  const int n = static_cast<int>(c.size());
  const PlState& h = c[static_cast<std::size_t>(host)];
  if (!token_valid(h, t, d, p)) return false;
  const int tau =
      detail::mod_2psi(static_cast<int>(h.dist) + t.pos + d, p.two_psi());
  int target_offset_in_pair;  // offset of the target from the pair start
  if (t.pos > 0) {
    g.round = tau - p.psi;                       // x in [0, psi-1]
    target_offset_in_pair = p.psi + g.round;
  } else {
    g.round = tau - 1;                           // x in [0, psi-2]
    target_offset_in_pair = g.round + 1;
  }
  const int target_abs = ring_add(host, t.pos, n);
  g.pair_start = ring_add(target_abs, -target_offset_in_pair, n);

  // The pair must sit at a segment boundary of the right color and contain
  // the host without wrapping past the leader.
  const int rel_start = ring_distance(leader_pos, g.pair_start, n);
  if (rel_start % p.psi != 0) return false;
  if ((rel_start % p.two_psi()) != d) return false;
  const int host_off = ring_distance(leader_pos, host, n) - rel_start;
  if (host_off < 0 || host_off > p.two_psi() - 1) return false;
  const int tgt_off = ring_distance(leader_pos, target_abs, n) - rel_start;
  if (tgt_off != target_offset_in_pair) return false;
  return true;
}

}  // namespace

bool token_correct(Config c, const PlParams& p, int host, bool black,
                   int leader_pos) {
  const int n = static_cast<int>(c.size());
  const PlState& h = c[static_cast<std::size_t>(host)];
  const Token& t = black ? h.token_b : h.token_w;
  const int d = black ? 0 : p.psi;
  TokenGeometry g;
  if (!resolve_geometry(c, p, host, t, d, leader_pos, g)) return false;

  // j = index of the first 0 bit of S_i (psi if all ones).
  int j = p.psi;
  for (int idx = 0; idx < p.psi; ++idx) {
    if (c[static_cast<std::size_t>(ring_add(g.pair_start, idx, n))].b == 0) {
      j = idx;
      break;
    }
  }
  const int x = g.round;
  // During round x the token carries the increment's result bit x and the
  // carry *after* consuming bit x:
  //   value = b_x XOR carry_x,   carry-field = carry_{x+1},
  // with carry_x = [x <= j] and carry_{x+1} = [x < j]. (Def. 4.3 with the
  // carry-phase fix; forced by lines 13 and 27, see DESIGN.md §2.1(5).)
  const int b_x =
      c[static_cast<std::size_t>(ring_add(g.pair_start, x, n))].b;
  const int carry_x = x <= j ? 1 : 0;
  const int carry_next = x < j ? 1 : 0;
  return static_cast<int>(t.carry) == carry_next &&
         static_cast<int>(t.value) == (b_x ^ carry_x);
}

bool live_bullet_peaceful(Config c, int i) {
  const int n = static_cast<int>(c.size());
  // Walk left from u_i to the nearest leader; every agent on the way
  // (including u_i and the leader) must carry no bullet-absence signal, and
  // the leader must be shielded.
  for (int jj = 0; jj < n; ++jj) {
    const int idx = ring_add(i, -jj, n);
    const PlState& s = c[static_cast<std::size_t>(idx)];
    if (s.signal_b != 0) return false;
    if (s.leader == 1) return s.shield == 1;
  }
  return false;  // no leader: d_LL(i) = infinity, not peaceful
}

bool in_cpb(Config c) {
  if (count_leaders(c) < 1) return false;
  for (int i = 0; i < static_cast<int>(c.size()); ++i)
    if (c[static_cast<std::size_t>(i)].bullet == common::kLiveBullet &&
        !live_bullet_peaceful(c, i))
      return false;
  return true;
}

bool in_cdl_layout(Config c, const PlParams& p, int leader_pos) {
  const int n = static_cast<int>(c.size());
  const int last_from = p.psi * (p.zeta() - 1);
  for (int i = 0; i < n; ++i) {
    const PlState& s = c[static_cast<std::size_t>(ring_add(leader_pos, i, n))];
    if (static_cast<int>(s.dist) != i % p.two_psi()) return false;
    const bool want_last = i >= last_from;
    if ((s.last == 1) != want_last) return false;
  }
  return true;
}

SafetyVerdict check_safe(Config c, const PlParams& p) {
  const int n = static_cast<int>(c.size());
  const auto leaders = leader_positions(c);
  if (leaders.size() != 1)
    return {false, "leader count != 1 (" +
                       std::to_string(leaders.size()) + ")"};
  const int k = leaders.front();
  if (!in_cdl_layout(c, p, k)) return {false, "dist/last layout not C_DL"};
  for (int i = 0; i < n; ++i)
    if (c[static_cast<std::size_t>(i)].bullet == common::kLiveBullet &&
        !live_bullet_peaceful(c, i))
      return {false, "non-peaceful live bullet at " + std::to_string(i)};

  for (int i = 0; i < n; ++i) {
    const PlState& s = c[static_cast<std::size_t>(i)];
    for (bool black : {true, false}) {
      const Token& t = black ? s.token_b : s.token_w;
      if (!t.exists()) continue;
      if (s.last == 1)
        return {false, "token hosted in the last segment at " +
                           std::to_string(i)};
      if (!token_correct(c, p, i, black, k))
        return {false, std::string(black ? "black" : "white") +
                           " token invalid/incorrect at " + std::to_string(i)};
    }
  }

  // Segment IDs consecutive for i in [0, zeta-3].
  const auto modulus = static_cast<unsigned long long>(p.id_modulus());
  const int zeta = p.zeta();
  auto segment_id = [&](int seg_index) {
    unsigned long long id = 0;
    for (int j = p.psi - 1; j >= 0; --j)
      id = id * 2 +
           c[static_cast<std::size_t>(ring_add(k, seg_index * p.psi + j, n))]
               .b;
    return id;
  };
  for (int i = 0; i + 1 <= zeta - 2; ++i) {
    if (segment_id(i + 1) != (segment_id(i) + 1) % modulus)
      return {false,
              "segment IDs not consecutive at pair " + std::to_string(i)};
  }
  return {true, ""};
}

bool is_safe(Config c, const PlParams& p) { return check_safe(c, p).safe; }

}  // namespace ppsim::pl
