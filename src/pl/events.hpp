// Zero-cost event instrumentation for P_PL.
//
// The transition functions in protocol.hpp are templated on an event sink;
// the default NullSink compiles to nothing, while EventCounters records the
// protocol's internal life: token trajectories (Def. 3.4), resetting-signal
// births/absorptions/expiries (Lemma 3.11), clock advancement, bullet wars
// and both leader-creation sites. bench/internals_stats derives the paper's
// per-mechanism quantities from these counts.
#pragma once

#include <cstdint>

namespace ppsim::pl {

enum class TokenDeath {
  kCollision,    ///< left token met a right token (lines 14-15)
  kLastSegment,  ///< host or responder in the last segment (lines 14, 32-33)
  kInvalid,      ///< out of trajectory (lines 32-33)
  kCompleted,    ///< reached the final destination u_{2psi-1} (Def. 3.4)
};

/// No-op sink: the default. All hooks are static constexpr no-ops so the
/// instrumented code paths inline away entirely.
struct NullSink {
  static constexpr void token_created(bool /*black*/) {}
  static constexpr void token_moved(bool /*black*/) {}
  static constexpr void token_died(bool /*black*/, TokenDeath) {}
  static constexpr void token_delivered(bool /*black*/, bool /*wrote*/) {}
  static constexpr void leader_created(bool /*via_token*/) {}
  static constexpr void signal_generated() {}
  static constexpr void signal_moved() {}
  static constexpr void signal_absorbed() {}
  static constexpr void signal_expired() {}
  static constexpr void clock_advanced() {}
  static constexpr void entered_detect() {}
  static constexpr void fired_live() {}
  static constexpr void fired_dummy() {}
  static constexpr void bullet_moved() {}
  static constexpr void bullet_blocked() {}
  static constexpr void bullet_absorbed(bool /*killed*/) {}
};

/// Counting sink.
struct EventCounters {
  // Tokens, indexed [0] = white, [1] = black.
  std::uint64_t tokens_created[2] = {0, 0};
  std::uint64_t token_moves[2] = {0, 0};
  std::uint64_t deaths_collision[2] = {0, 0};
  std::uint64_t deaths_last_segment[2] = {0, 0};
  std::uint64_t deaths_invalid[2] = {0, 0};
  std::uint64_t completions[2] = {0, 0};
  std::uint64_t deliveries_written[2] = {0, 0};
  std::uint64_t deliveries_checked[2] = {0, 0};
  // Leader creation sites.
  std::uint64_t created_via_dist = 0;
  std::uint64_t created_via_token = 0;
  // Resetting signals.
  std::uint64_t signals_generated = 0;
  std::uint64_t signal_moves = 0;
  std::uint64_t signals_absorbed = 0;
  std::uint64_t signals_expired = 0;
  // Clocks.
  std::uint64_t clock_advances = 0;
  std::uint64_t detect_entries = 0;
  // Bullets.
  std::uint64_t live_fired = 0;
  std::uint64_t dummy_fired = 0;
  std::uint64_t bullet_moves = 0;
  std::uint64_t bullets_blocked = 0;
  std::uint64_t bullets_absorbed = 0;
  std::uint64_t leaders_killed = 0;

  void token_created(bool black) { ++tokens_created[black ? 1 : 0]; }
  void token_moved(bool black) { ++token_moves[black ? 1 : 0]; }
  void token_died(bool black, TokenDeath reason) {
    const int i = black ? 1 : 0;
    switch (reason) {
      case TokenDeath::kCollision: ++deaths_collision[i]; break;
      case TokenDeath::kLastSegment: ++deaths_last_segment[i]; break;
      case TokenDeath::kInvalid: ++deaths_invalid[i]; break;
      case TokenDeath::kCompleted: ++completions[i]; break;
    }
  }
  void token_delivered(bool black, bool wrote) {
    ++(wrote ? deliveries_written : deliveries_checked)[black ? 1 : 0];
  }
  void leader_created(bool via_token) {
    ++(via_token ? created_via_token : created_via_dist);
  }
  void signal_generated() { ++signals_generated; }
  void signal_moved() { ++signal_moves; }
  void signal_absorbed() { ++signals_absorbed; }
  void signal_expired() { ++signals_expired; }
  void clock_advanced() { ++clock_advances; }
  void entered_detect() { ++detect_entries; }
  void fired_live() { ++live_fired; }
  void fired_dummy() { ++dummy_fired; }
  void bullet_moved() { ++bullet_moves; }
  void bullet_blocked() { ++bullets_blocked; }
  void bullet_absorbed(bool killed) {
    ++bullets_absorbed;
    if (killed) ++leaders_killed;
  }

  [[nodiscard]] std::uint64_t token_deaths(bool black) const {
    const int i = black ? 1 : 0;
    return deaths_collision[i] + deaths_last_segment[i] + deaths_invalid[i] +
           completions[i];
  }
};

}  // namespace ppsim::pl
