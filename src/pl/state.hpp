// Agent state of P_PL (Algorithm 1 variable block).
//
//   leader in {0,1}
//   b in {0,1}, dist in [0, 2psi-1], last in {0,1}
//   tokenB, tokenW in {bot} u (([-psi+1,-1] u [1,psi]) x {0,1} x {0,1})
//   clock in [0, kappa_max], hits in [0, psi], signalR in [0, kappa_max]
//   bullet in {0,1,2}, shield in {0,1}, signalB in {0,1}
//
// `mode` is derived, not stored: DetermineMode() (lines 49-50) recomputes
// mode from clock for both interaction partners before any read of mode in
// Algorithms 2-3, so mode == Detect <=> clock == kappa_max at every read.
// See DESIGN.md §2.1(3).
#pragma once

#include <compare>
#include <cstdint>

namespace ppsim::pl {

/// A black or white token. `pos` is token[1], the signed relative position of
/// the target (positive = moving right, negative = moving left); pos == 0
/// encodes "bot" (no token). `value` is token[2] (the bit to write/check at
/// the target), `carry` is token[3] (the ripple-carry flag).
struct Token {
  std::int8_t pos = 0;
  std::uint8_t value = 0;
  std::uint8_t carry = 0;

  [[nodiscard]] constexpr bool exists() const noexcept { return pos != 0; }
  constexpr void clear() noexcept { *this = Token{}; }

  friend constexpr bool operator==(const Token&, const Token&) = default;
};

inline constexpr Token kNoToken{};

struct PlState {
  std::uint8_t leader = 0;    ///< output: 1 = L, 0 = F
  std::uint8_t b = 0;         ///< segment-ID bit
  std::uint16_t dist = 0;     ///< distance to nearest left leader mod 2psi
  std::uint8_t last = 0;      ///< 1 iff the agent believes it is in the last segment
  Token token_b;              ///< black token (d = 0)
  Token token_w;              ///< white token (d = psi)
  std::uint16_t clock = 0;    ///< leader-absence barometer, [0, kappa_max]
  std::uint8_t hits = 0;      ///< lottery-game run length, [0, psi]
  std::uint16_t signal_r = 0; ///< resetting-signal TTL, [0, kappa_max]
  std::uint8_t bullet = 0;    ///< 0 none / 1 dummy / 2 live
  std::uint8_t shield = 0;    ///< 1 = shielded
  std::uint8_t signal_b = 0;  ///< bullet-absence signal

  friend constexpr bool operator==(const PlState&, const PlState&) = default;
};

/// Derived mode (lines 49-50): Detect iff clock == kappa_max.
[[nodiscard]] constexpr bool in_detect_mode(const PlState& s,
                                            int kappa_max) noexcept {
  return s.clock == kappa_max;
}

/// Leader creation (lines 6 and 18): the fresh leader immediately fires a
/// live bullet and shields itself, keeping every live bullet peaceful.
constexpr void become_leader(PlState& s) noexcept {
  s.leader = 1;
  s.bullet = 2;
  s.shield = 1;
  s.signal_b = 0;
}

}  // namespace ppsim::pl
