// Constexpr clamp-freedom certification of the word-packed P_PL kernel.
//
// The packed fast path's safety argument has two halves:
//
//   1. Boundary: out-of-domain states (fault injection) can only *enter* a
//      packed lane through pack_word, whose clamping makes the engines'
//      round-trip acceptance test a domain check. That guard is runtime and
//      stays — it protects against inputs no static analysis can see.
//   2. Closure: starting from in-domain words, every field the kernel
//      writes stays in domain, so a packed lane never needs per-step
//      revalidation and pack_word's clamps are unreachable on kernel
//      outputs.
//
// Half 2 was, until now, a prose argument (the "Domain closure" comment in
// pl/packed_protocol.hpp). This header turns it into a machine-checked
// proof: a constexpr *interval abstract interpreter* that mirrors the
// field-level SSA dataflow of packed_detail::apply_word_lanes step for
// step — every arithmetic select becomes an interval join, every
// branch-refined operand is met with its branch constraint first (standard
// path-sensitive interval refinement) — and certifies, per parameter
// regime, that
//
//   * every written field's output interval is contained in the domain
//     pack_word clamps to (clamp-freedom),
//   * the kernel's structural tricks are sound in that regime: the
//     equality-based hits/clock caps require their operand to already be
//     at most the cap (an interval premise, checked, not assumed), the
//     dist wrap-to-zero select catches the single overflow value, the
//     Definition-3.3 tau normalization (one conditional add, one
//     conditional subtract) covers the full pre-normalization range
//     (-2psi, 4psi), and the packed-token +-1 moves never carry or borrow
//     across the pos/payload bit boundary.
//
// The interpretation is sound (selects over-approximate both branches;
// refinements only meet with predicates that gate the refined use), so
// `certify_kernel(p).clamp_free()` proves clamp-freedom for regime p. It is
// NOT vacuous: widening any input interval past its domain — e.g. hits in
// [0, psi + 1], exactly what a fault can write to the scalar struct — makes
// certification fail, because the equality caps stop covering the range
// (tests/pl/packed_certify_test.cpp pins this sensitivity both ways).
//
// The static_asserts at the bottom certify every packed parameter regime
// present in the committed BENCH_throughput.json / BENCH_ensemble.json
// cells, wide and narrow. For regimes outside that certified set the
// runtime boundary guard (half 1) remains the documented line of defense —
// and !PackedLayout::fits() regimes never reach a packed lane at all.
#pragma once

#include <cstdint>

#include "pl/packed_state.hpp"
#include "pl/params.hpp"

namespace ppsim::pl {

/// Closed integer interval [lo, hi] (lo > hi encodes the empty interval).
/// The field values being abstracted are small (O(kappa_max) <= a few
/// thousand in any fits() regime), so long long arithmetic never overflows.
struct Interval {
  long long lo = 0;
  long long hi = -1;  ///< default-constructed = empty

  [[nodiscard]] static constexpr Interval point(long long v) noexcept {
    return {v, v};
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return lo > hi; }
  [[nodiscard]] constexpr bool contains(long long v) const noexcept {
    return lo <= v && v <= hi;
  }
  [[nodiscard]] constexpr bool within(const Interval& o) const noexcept {
    return empty() || (lo >= o.lo && hi <= o.hi);
  }

  /// Convex hull of both branches of an arithmetic select.
  [[nodiscard]] constexpr Interval join(const Interval& o) const noexcept {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {lo < o.lo ? lo : o.lo, hi > o.hi ? hi : o.hi};
  }
  /// Branch refinement: restrict to the values satisfying a predicate.
  [[nodiscard]] constexpr Interval meet(const Interval& o) const noexcept {
    const Interval r{lo > o.lo ? lo : o.lo, hi < o.hi ? hi : o.hi};
    return r;
  }
  [[nodiscard]] constexpr Interval add(long long c) const noexcept {
    if (empty()) return *this;
    return {lo + c, hi + c};
  }
  /// Sum of two intervals (the tau pre-normalization arithmetic).
  [[nodiscard]] constexpr Interval plus(const Interval& o) const noexcept {
    if (empty() || o.empty()) return {};
    return {lo + o.lo, hi + o.hi};
  }
  /// Remove a single value — exactly representable only at the edges; an
  /// interior removal keeps the hull (sound over-approximation).
  [[nodiscard]] constexpr Interval without(long long v) const noexcept {
    if (empty() || !contains(v)) return *this;
    if (lo == v && hi == v) return {};
    if (lo == v) return {lo + 1, hi};
    if (hi == v) return {lo, hi - 1};
    return *this;
  }
};

/// Per-field certification record: the abstract output interval against the
/// domain pack_word clamps that field to.
struct FieldCert {
  Interval out;
  Interval domain;
  [[nodiscard]] constexpr bool ok() const noexcept {
    return out.within(domain);
  }
};

/// Result of abstractly interpreting one kernel application from in-domain
/// (or caller-widened) input intervals.
struct KernelCert {
  // Output fields, named as in the scalar struct. l_dist is read-only in
  // the kernel (kept bits) and l_hits is cleared; both still recorded.
  FieldCert l_dist, l_hits, l_clock, l_sigr;
  FieldCert r_dist, r_hits, r_clock, r_sigr;
  FieldCert tok_pos;  ///< join over both sides and both color lanes, biased
  FieldCert flags;    ///< join over all 1-bit flags of both agents
  FieldCert bullet;   ///< join over both agents

  // Structural soundness of the kernel's in-regime tricks.
  bool hits_cap_premise = false;   ///< hits eq-cap operand <= psi
  bool clock_cap_premise = false;  ///< clock eq-cap operand <= kappa_max + 1
  bool dist_wrap_complete = false; ///< dist + 1 overflow is the single
                                   ///< wrapped value 2psi
  bool tau_norm_complete = false;  ///< pre-normalization tau in (-2psi,4psi)
  bool token_moves_in_field = false;  ///< +-1 moves stay inside pos bits

  [[nodiscard]] constexpr bool clamp_free() const noexcept {
    return l_dist.ok() && l_hits.ok() && l_clock.ok() && l_sigr.ok() &&
           r_dist.ok() && r_hits.ok() && r_clock.ok() && r_sigr.ok() &&
           tok_pos.ok() && flags.ok() && bullet.ok() && hits_cap_premise &&
           clock_cap_premise && dist_wrap_complete && tau_norm_complete &&
           token_moves_in_field;
  }
};

/// Abstract input state: one interval per field class (both agents and both
/// token colors share domains, so symmetric fields share an interval).
/// in_domain(p) builds the packed domain — the induction hypothesis; tests
/// widen individual fields to prove the interpreter's sensitivity.
struct AbstractInputs {
  Interval dist;     ///< both agents' dist
  Interval hits;     ///< both agents' hits
  Interval clock;    ///< both agents' clock and signal_r
  Interval tok_pos;  ///< biased token positions, all four tokens
  Interval flag;     ///< every 1-bit flag
  Interval bullet;

  [[nodiscard]] static constexpr AbstractInputs in_domain(
      const PlParams& p) noexcept {
    AbstractInputs a;
    a.dist = {0, 2LL * p.psi - 1};
    a.hits = {0, p.psi};
    a.clock = {0, p.kappa_max};
    a.tok_pos = {0, 2LL * p.psi - 1};  // pos in [1-psi, psi], biased psi-1
    a.flag = {0, 1};
    a.bullet = {0, 2};
    return a;
  }
};

namespace certify_detail {

/// Interval transfer of the kernel's equality-test cap
/// `x' = (x == cap) ? cap : x + 1` (DetermineMode lines 36-37 / 46-48 use
/// it for hits and, with cap + 1 as the test value, for clock). Returns the
/// output interval; `premise_ok` reports whether the equality test actually
/// covers the increment's overflow — it does iff x <= cap on entry.
constexpr Interval eq_cap_increment(const Interval& x, long long cap,
                                    bool& premise_ok) noexcept {
  premise_ok = premise_ok && x.hi <= cap;
  const Interval at_cap =
      x.contains(cap) ? Interval::point(cap) : Interval{};
  const Interval incremented = x.without(cap).add(1);
  return at_cap.join(incremented);
}

}  // namespace certify_detail

/// Abstractly interpret one apply_word_lanes application from `in`,
/// mirroring the kernel's SSA dataflow (pl/packed_protocol.hpp) step for
/// step. Sound per-step over-approximation; see the header comment.
[[nodiscard]] constexpr KernelCert certify_kernel(
    const PlParams& p, const AbstractInputs& in) noexcept {
  const long long psi = p.psi;
  const long long two_psi = 2 * psi;
  const long long kmax = p.kappa_max;
  const long long bot = psi - 1;  ///< biased pos of the bot token

  KernelCert c;
  const Interval dist_dom{0, two_psi - 1};
  const Interval hits_dom{0, psi};
  const Interval clock_dom{0, kmax};
  const Interval pos_dom{0, two_psi - 1};
  const Interval flag_dom{0, 1};
  const Interval bullet_dom{0, 2};
  c.hits_cap_premise = true;
  c.clock_cap_premise = true;

  // --- DetermineMode (Algorithm 4) ---
  // Lines 34-35: l.signal_r = leader ? kappa_max : l.signal_r.
  const Interval l_sigr1 = Interval::point(kmax).join(in.clock);
  // Lines 36-37: r.hits = min(hits + 1, psi), as an equality cap.
  const Interval r_hits1 =
      certify_detail::eq_cap_increment(in.hits, psi, c.hits_cap_premise);
  // Signal branch (lines 39-45). Branch constraint: l.signal_r | r.signal_r
  // != 0, so max(l_sigr1, r_sigr) >= 1 — the refinement that keeps the
  // line-45 decrement non-negative.
  Interval sigr_s0{l_sigr1.lo > in.clock.lo ? l_sigr1.lo : in.clock.lo,
                   l_sigr1.hi > in.clock.hi ? l_sigr1.hi : in.clock.hi};
  if (sigr_s0.lo < 1) sigr_s0.lo = 1;
  const Interval hits_s0 = Interval::point(0).join(r_hits1);  // lines 40-41
  const Interval sigr_s = sigr_s0.add(-1).join(sigr_s0);      // lines 43-45
  const Interval hits_s = Interval::point(0).join(hits_s0);
  // No-signal branch (lines 46-48): min(clock + 1, kappa_max) on a win,
  // implemented as an equality test against kappa_max + 1.
  const Interval clock_n0 = in.clock.add(1).join(in.clock);
  c.clock_cap_premise = c.clock_cap_premise && clock_n0.hi <= kmax + 1;
  const Interval clock_n =
      clock_n0.without(kmax + 1)
          .join(clock_n0.contains(kmax + 1) ? Interval::point(kmax)
                                            : Interval{});
  const Interval hits_n = Interval::point(0).join(r_hits1);
  // Merge of the two branches.
  const Interval l_clock2 = Interval::point(0).join(in.clock);
  const Interval r_clock2 = Interval::point(0).join(clock_n);
  const Interval r_hits2 = hits_s.join(hits_n);
  const Interval r_sigr2 = sigr_s.join(in.clock);
  const Interval l_sigr2 = Interval::point(0).join(l_sigr1);

  // --- CreateLeader (Algorithm 2) ---
  // Line 4: tmp = (l.dist + 1) mod 2psi via the wrap-to-zero select; the
  // select catches exactly the value 2psi, so it is complete iff
  // l.dist + 1 <= 2psi.
  const Interval tmp0 = in.dist.add(1);
  c.dist_wrap_complete = tmp0.hi <= two_psi;
  const Interval tmp1 =
      tmp0.without(two_psi)
          .join(tmp0.contains(two_psi) ? Interval::point(0) : Interval{});
  const Interval tmp = Interval::point(0).join(tmp1);  // & ~r_leader
  // Lines 7-8: r.dist = detect ? r.dist : tmp.
  const Interval r_dist1 = in.dist.join(tmp);

  // --- MoveToken (Algorithm 3), both color lanes ---
  // The two color lanes differ only in the Definition-3.3 offset d (black
  // d = 0, white d = psi); positions/payloads share domains, so one
  // abstract pass per color and the results join. The pos sub-field is
  // dist_bits wide, so its *structural* range — what the refinements below
  // may assume about a raw field value, domain or not — is [0, pos_mask].
  const long long pos_field_max =
      static_cast<long long>(PackedLayout::make(p).dist_mask);
  c.tau_norm_complete = true;
  c.token_moves_in_field = true;
  Interval tok_out{};
  for (int color = 0; color < 2; ++color) {
    const long long dbias = color == 0 ? -(psi - 1) : 1;
    // Lines 12-13: creation writes biased pos 2psi-1 (= psi).
    const Interval lt1 =
        in.tok_pos.join(Interval::point(two_psi - 1));
    // Lines 14-15: collision kill writes bot.
    const Interval lt1k = lt1.join(Interval::point(bot));
    // Lines 16-31, the four movement cases with branch-refined operands:
    //   case2 moves lt1 - 1 with pos(lt1) > bot+1 (structurally
    //   <= pos_field_max), so the decrement cannot borrow out of pos;
    //   case4 moves rt + 1 with pos(rt) < bot-1 (structurally >= 0), so
    //   the increment cannot carry into the payload bits. The within(pos
    //   domain) checks then tighten "stays in field" to "stays in domain".
    const Interval case2_src = lt1k.meet({bot + 2, pos_field_max});
    const Interval case4_src = in.tok_pos.meet({0, bot - 2});
    const Interval case2_dst = case2_src.add(-1);
    const Interval case4_dst = case4_src.add(1);
    c.token_moves_in_field = c.token_moves_in_field &&
                             case2_dst.within(pos_dom) &&
                             case4_dst.within(pos_dom);
    // lt2: case3 relaunch (2psi-1) / case4 move / move_r leaves bot / keep.
    const Interval lt2 = Interval::point(two_psi - 1)
                             .join(case4_dst)
                             .join(Interval::point(bot))
                             .join(lt1k);
    // rt2: case1 delivery turn-around lands biased 0 / case2 move / move_l
    // leaves bot / keep.
    const Interval rt2 = Interval::point(0)
                             .join(case2_dst)
                             .join(Interval::point(bot))
                             .join(in.tok_pos);
    // Lines 32-33: Definition-3.3 validity. tau = dist + pos + d over
    // *unbiased* arithmetic is implemented biased as d0 + pos + dbias,
    // normalized by ONE conditional add and ONE conditional subtract of
    // 2psi — complete iff the raw sum lies in (-2psi, 4psi). The kernel's
    // ld0 is the initiator's (never-written) dist; rd0 is the *updated*
    // responder dist from Algorithm 2 (r_dist1), so each side pairs its
    // own dist interval with its own post-move position.
    const Interval tau_l_pre = in.dist.plus(lt2).add(dbias);
    const Interval tau_r_pre = r_dist1.plus(rt2).add(dbias);
    c.tau_norm_complete = c.tau_norm_complete &&
                          tau_l_pre.lo > -two_psi &&
                          tau_l_pre.hi < 2 * two_psi &&
                          tau_r_pre.lo > -two_psi &&
                          tau_r_pre.hi < 2 * two_psi;
    // Kill writes bot; otherwise the moved token.
    tok_out = tok_out.join(lt2.join(Interval::point(bot)))
                  .join(rt2.join(Interval::point(bot)));
  }

  // --- EliminateLeaders (Algorithm 5) ---
  // Every write is a select among {0, dummy(1), live(2), other bullet};
  // flags select among {0, 1, other flag}.
  const Interval bullet_out = Interval::point(0)
                                  .join(Interval::point(1))
                                  .join(Interval::point(2))
                                  .join(in.bullet);
  const Interval flag_out = Interval::point(0)
                                .join(Interval::point(1))
                                .join(in.flag);

  // --- Fold the certification record ---
  c.l_dist = {in.dist, dist_dom};          // kept bits, never written
  c.l_hits = {Interval::point(0), hits_dom};  // line 36: l.hits = 0
  c.l_clock = {l_clock2, clock_dom};
  c.l_sigr = {l_sigr2, clock_dom};
  c.r_dist = {r_dist1, dist_dom};
  c.r_hits = {r_hits2, hits_dom};
  c.r_clock = {r_clock2, clock_dom};
  c.r_sigr = {r_sigr2, clock_dom};
  c.tok_pos = {tok_out, pos_dom};
  c.flags = {flag_out, flag_dom};
  c.bullet = {bullet_out, bullet_dom};
  return c;
}

/// Certify regime `p` from the full packed domain (the induction
/// hypothesis: domain in, domain out, hence pack_word clamps unreachable
/// inside a packed lane).
[[nodiscard]] constexpr KernelCert certify_kernel(
    const PlParams& p) noexcept {
  return certify_kernel(p, AbstractInputs::in_domain(p));
}

/// The headline predicate: in regime `p`, no pack_word clamp is reachable
/// from in-domain states through the kernel.
[[nodiscard]] constexpr bool kernel_clamp_free(const PlParams& p) noexcept {
  return certify_kernel(p).clamp_free();
}

// --- Certified regimes -----------------------------------------------------
//
// Every packed parameter regime present in the committed bench artifacts is
// certified here at compile time; the engines' runtime round-trip guard is
// thereby a *boundary* (fault-ingress) check only in these regimes, not a
// closure check. BENCH_throughput.json: P_PL c1 = 4 (PPSIM_C1 default) at
// the packed cells n = 1024 and n = 16384 (n = 64 is engagement-gated to
// the scalar engine but certified anyway — the gate is about speed, not
// soundness). BENCH_ensemble.json: the same c1 = 4 family at
// n in {16, 64, 256} (engine "word") and the regime-narrowed u32 cells
// (n, c1) in {(16, 3), (64, 1)} (engine "word32").

static_assert(kernel_clamp_free(PlParams::make(64, 4)),
              "P_PL bench regime n=64,c1=4 must certify clamp-free");
static_assert(kernel_clamp_free(PlParams::make(1024, 4)),
              "P_PL bench regime n=1024,c1=4 must certify clamp-free");
static_assert(kernel_clamp_free(PlParams::make(16384, 4)),
              "P_PL flagship bench regime n=16384,c1=4 must certify "
              "clamp-free");
static_assert(kernel_clamp_free(PlParams::make(16, 4)) &&
                  kernel_clamp_free(PlParams::make(256, 4)),
              "P_PL ensemble bench regimes (word) must certify clamp-free");
static_assert(PackedLayout::make(PlParams::make(16, 3)).fits_narrow() &&
                  kernel_clamp_free(PlParams::make(16, 3)),
              "P_PL narrow bench regime n=16,c1=3 must fit u32 and certify "
              "clamp-free");
static_assert(PackedLayout::make(PlParams::make(64, 1)).fits_narrow() &&
                  kernel_clamp_free(PlParams::make(64, 1)),
              "P_PL narrow bench regime n=64,c1=1 must fit u32 and certify "
              "clamp-free");
// The paper's own constant (c1 = 32) at the flagship ring size still fits
// one word (51 bits at n = 2^16) and certifies.
static_assert(PackedLayout::make(PlParams::make(65536, 32)).fits() &&
                  kernel_clamp_free(PlParams::make(65536, 32)),
              "paper regime n=2^16,c1=32 must fit u64 and certify "
              "clamp-free");

}  // namespace ppsim::pl
