// The word-packed P_PL transition kernel: Algorithms 1-5 executed on the
// bit-sliced uint64_t representation of pl/packed_state.hpp, as pure
// branchless dataflow, generic over a SIMD lane type (core/wordlane.hpp).
//
// One call = one interaction per lane: the scalar instantiation
// (V = uint64_t) executes a single (initiator, responder) pair; the vector
// instantiation (V = core::WordVec) executes four *scheduler-independent*
// interactions at once — the grouped engine driver (core::WordGroupDriver)
// proves the independence (disjoint agent pairs) before invoking it, so
// lane-parallel execution is bit-identical to sequential execution by
// construction.
//
// Why this shape: the scalar transition's ~20 conditionals fire at
// scheduler-random times, so a sizable fraction mispredict and every flush
// also tears down the out-of-order overlap between consecutive
// interactions. A first rewrite that merely unpacked both agents into
// (pos, value, carry, ...) int locals spilled ~80 stack slots and ran 2x
// *slower* than the scalar path — the lessons baked in here:
//
//  * Fields stay IN PLACE inside the word wherever possible and are
//    compared/updated against field-position constants precomputed in
//    PlKernelConsts (one_in_field, psi_in_field, ...), so almost no
//    variable shifts or cross-position moves are needed.
//  * Every conditional is an arithmetic select (core::vsel: mask-and-xor
//    over full-width compare masks — immune to the compiler
//    re-introducing branches, which -O2 does to plain ternaries here).
//  * Tokens are processed in token algebra on the packed (biased pos |
//    value | carry) sub-word: a right-move is `tok - 1` (payload rides
//    along), a left-move is `tok + 1`, the line-21 turn-around target
//    pos = 1 - psi is biased 0 so delivery keeps payload bits only, and
//    "bot" is the constant bias. The mod-2psi reductions are one
//    conditional add plus one conditional subtract (never a divide). The
//    two color lanes share one force-inlined code path.
//
// Equivalence contract: the dataflow below is an SSA rewrite of
// detail::create_leader + common::eliminate_leaders_step (pl/protocol.hpp)
// with the event sink erased — for every pair of states inside the packed
// domain,
//
//   unpack(apply_word(pack(l), pack(r))) == apply(l, r)
//
// field for field, including the payload bits of non-existent tokens
// (clears write the all-zero-payload bot exactly where the scalar code
// calls Token::clear(); untouched tokens are re-spliced verbatim). The
// contract is enforced three ways: exhaustive/boundary sweeps in
// tests/pl/packed_state_test.cpp, randomized scalar-vs-word cross-checks
// in tests/core/word_kernel_test.cpp, and the cross-engine differential
// fuzzer (src/verification/differential.hpp), where Runner::run and the
// EnsembleRunner kernel lane replay this code in lockstep against the
// scalar reference path, fault storms included.
//
// Domain closure: starting from in-domain words, every field written below
// stays in domain (dist via the wrap-to-zero select, clock/hits/signal_r
// via their clamps — which use equality against the cap, valid because the
// domain bounds hits <= psi and clock/signal_r <= kappa_max at entry —
// and token positions by the same bounds the scalar code maintains:
// creation writes psi, right-moves stop at pos 1, left-moves stop at
// pos -1, biased token arithmetic never carries out of the pos sub-field),
// so a packed engine lane never needs per-step validation — out-of-domain
// states can only *enter* through pack_word, whose clamping round-trip
// check rejects them at the boundary. This argument is MACHINE-CHECKED:
// pl/packed_certify.hpp abstractly interprets the dataflow below over
// field intervals (each equality-cap premise, the wrap completeness, the
// Definition-3.3 normalization range and the token carry/borrow freedom
// are explicit proof obligations, not assumptions) and static_asserts
// clamp-freedom for every committed bench regime — editing this kernel in
// a way that breaks closure fails to compile there before any test runs.
#pragma once

#include <cstdint>

#include "core/wordlane.hpp"
#include "pl/packed_state.hpp"

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

namespace ppsim::pl {

/// Field-position constants of one PackedLayout, precomputed once per
/// engine block so the kernel is pure register arithmetic. "<x>_d/_h/_c/_s"
/// are values shifted into the dist/hits/clock/signal_r field positions;
/// token constants live in pos-0 (token sub-word) coordinates.
struct PlKernelConsts {
  unsigned dist_shift = 0;
  unsigned tokb_shift = 0;
  unsigned tokw_shift = 0;
  unsigned value_bit = 0;  ///< dist_bits (token value bit index)
  unsigned carry_bit = 0;  ///< dist_bits + 1

  std::uint64_t dist_f = 0;  ///< field masks, in place
  std::uint64_t hits_f = 0;
  std::uint64_t clock_f = 0;
  std::uint64_t sigr_f = 0;

  std::uint64_t one_d = 0, psi_d = 0, twopsi_d = 0;
  std::uint64_t one_h = 0, psi_h = 0;
  std::uint64_t one_c = 0, kmax_c = 0, kmax_p1_c = 0;
  std::uint64_t one_s = 0, kmax_s = 0;

  std::uint64_t tok_mask = 0;      ///< pos | value | carry, pos-0
  std::uint64_t pos_mask = 0;      ///< pos sub-field, pos-0
  std::uint64_t payload_mask = 0;  ///< value | carry bits, pos-0
  std::uint64_t bot = 0;           ///< biased pos of 0 (= psi - 1), payload 0
  std::uint64_t bot_p1 = 0, bot_m1 = 0;
  std::uint64_t psi_bias = 0;  ///< biased pos of psi (creation/relaunch)
  std::uint64_t bit_value = 0, bit_carry = 0;

  std::uint64_t psi_p0 = 0, psim1_p0 = 0, two_psi_p0 = 0;
  std::uint64_t dbias[2] = {0, 0};  ///< d - bias (wrapped), per color
  std::uint64_t d_ip[2] = {0, 0};   ///< d in dist position, per color

  std::uint64_t keep_l = 0;  ///< wl bits the kernel never writes
  std::uint64_t keep_r = 0;  ///< wr bits the kernel never writes

  [[nodiscard]] static constexpr PlKernelConsts make(
      const PackedLayout& l) noexcept {
    PlKernelConsts k;
    k.dist_shift = l.dist_shift;
    k.tokb_shift = l.tokb_shift;
    k.tokw_shift = l.tokw_shift;
    k.value_bit = l.dist_bits;
    k.carry_bit = l.dist_bits + 1;
    k.dist_f = l.dist_mask << l.dist_shift;
    k.hits_f = l.hits_mask << l.hits_shift;
    k.clock_f = l.clock_mask << l.clock_shift;
    k.sigr_f = l.clock_mask << l.sigr_shift;
    k.one_d = std::uint64_t{1} << l.dist_shift;
    k.psi_d = static_cast<std::uint64_t>(l.psi) << l.dist_shift;
    k.twopsi_d = static_cast<std::uint64_t>(l.two_psi) << l.dist_shift;
    k.one_h = std::uint64_t{1} << l.hits_shift;
    k.psi_h = static_cast<std::uint64_t>(l.psi) << l.hits_shift;
    k.one_c = std::uint64_t{1} << l.clock_shift;
    k.kmax_c = static_cast<std::uint64_t>(l.kappa_max) << l.clock_shift;
    k.kmax_p1_c = k.kmax_c + k.one_c;
    k.one_s = std::uint64_t{1} << l.sigr_shift;
    k.kmax_s = static_cast<std::uint64_t>(l.kappa_max) << l.sigr_shift;
    k.pos_mask = l.dist_mask;
    k.bit_value = std::uint64_t{1} << l.dist_bits;
    k.bit_carry = std::uint64_t{1} << (l.dist_bits + 1);
    k.payload_mask = k.bit_value | k.bit_carry;
    k.tok_mask = k.pos_mask | k.payload_mask;
    k.bot = static_cast<std::uint64_t>(l.psi - 1);
    k.bot_p1 = k.bot + 1;
    k.bot_m1 = k.bot - 1;
    k.psi_bias = static_cast<std::uint64_t>(l.psi + l.psi - 1);
    k.psi_p0 = static_cast<std::uint64_t>(l.psi);
    k.psim1_p0 = static_cast<std::uint64_t>(l.psi - 1);
    k.two_psi_p0 = static_cast<std::uint64_t>(l.two_psi);
    k.dbias[0] = static_cast<std::uint64_t>(-static_cast<std::int64_t>(
        l.psi - 1));                 // black: d = 0
    k.dbias[1] = std::uint64_t{1};   // white: d = psi, psi - (psi-1) = 1
    k.d_ip[0] = 0;
    k.d_ip[1] = k.psi_d;
    // wl: leader (bit 0), b (bit 1) and dist are never written; the hits
    // field is deliberately NOT kept (line 36 sets l.hits = 0). wr: only
    // r.last (bit 2) is never written.
    k.keep_l = std::uint64_t{0x3} | k.dist_f;
    k.keep_r = std::uint64_t{0x4};
    return k;
  }
};

namespace packed_detail {

/// One color lane of MoveToken(token, d) — Algorithm 3 — in packed-token
/// algebra over lane type V. `lt`/`rt` are the two agents' token sub-words
/// of this color in pos-0 coordinates, updated in place. `promote_m`
/// accumulates the lane's line-18 leader creation mask; the caller merges
/// it into r's leader/bullet/shield/signal_b (become_leader is idempotent
/// and nothing reads those fields between the promotion sites and
/// EliminateLeaders). `r_b_m` (the responder's segment bit, as a mask) is
/// read and written: line-20 token delivery in construction mode.
///
/// Inputs Algorithm 3 reads but never writes ride as values: the
/// initiator's dist (in dist position, never updated by Algorithm 2) and
/// pos-0 copies ld0/rd0 for the Definition-3.3 target arithmetic, l_last
/// (post-line-9, as mask), r_last, detect (r's mode, fixed after
/// Algorithm 4) and l_b.
template <int color, typename V>
[[gnu::always_inline]] inline void move_token_lane(
    V& lt, V& rt, V& r_b_m, V& promote_m, const V& l_dist_ip,
    const V& l_last_m, const V& r_last_m, const V& detect_m, const V& l_b_m,
    const V& ld0, const V& rd0, const PlKernelConsts& K) noexcept {
  using core::veq;
  using core::vgt;
  using core::vmask;
  using core::vsel;
  const V zero = core::vbroadcast<V>(0);
  const V one = core::vbroadcast<V>(1);
  const V pos_mask = core::vbroadcast<V>(K.pos_mask);
  const V bot = core::vbroadcast<V>(K.bot);
  const V bot_p1 = core::vbroadcast<V>(K.bot_p1);
  const V bot_m1 = core::vbroadcast<V>(K.bot_m1);
  const V bit_value = core::vbroadcast<V>(K.bit_value);
  const V bit_carry = core::vbroadcast<V>(K.bit_carry);
  const V psi_bias = core::vbroadcast<V>(K.psi_bias);
  const V d_ip = core::vbroadcast<V>(K.d_ip[color]);
  const V dbias = core::vbroadcast<V>(K.dbias[color]);
  const V psi_p0 = core::vbroadcast<V>(K.psi_p0);
  const V psim1_p0 = core::vbroadcast<V>(K.psim1_p0);
  const V two_psi_p0 = core::vbroadcast<V>(K.two_psi_p0);

  // Lines 12-13: a border agent outside the last segment (re)creates a
  // token initialized for round 0 of the ripple-carry increment:
  // (b', b'') = (1 - b, b), target T = psi.
  const V lex_m = ~veq(lt & pos_mask, bot);
  const V create_m = veq(l_dist_ip, d_ip) & ~l_last_m & ~lex_m;
  const V created = psi_bias | vsel(l_b_m, bit_carry, bit_value);
  V lt1 = vsel(create_m, created, lt);

  // Lines 14-15: collision with the responder's token / last segment.
  const V rex_m = ~veq(rt & pos_mask, bot);
  const V kill0_m = (lex_m | create_m) & (rex_m | r_last_m);
  lt1 = vsel(kill0_m, bot, lt1);

  // The four mutually exclusive movement cases of lines 16-31 in biased
  // coordinates: pos == 1 is bot+1, pos >= 2 is > bot+1, pos == -1 is
  // bot-1, pos <= -2 is < bot-1 (which also encodes rt.exists());
  // case1/case2 are exclusive by value of lt, case3/case4 by value of rt,
  // and the pseudocode's else-chain gates 3/4 behind !(1|2).
  const V lp = lt1 & pos_mask;
  const V rp = rt & pos_mask;
  const V case1 = veq(lp, bot_p1);
  const V case2 = vgt(lp, bot_p1);
  const V rest = ~(case1 | case2);
  const V case3 = rest & veq(rp, bot_m1);
  const V case4 = rest & vgt(bot_m1, rp);

  // Lines 16-20: delivery at the right target — detect mode raises a
  // leader on a bit mismatch, construction mode writes the bit.
  const V lv_m = vmask(lt1, K.value_bit);
  promote_m = promote_m | (case1 & detect_m & (lv_m ^ r_b_m));
  r_b_m = vsel(case1 & ~detect_m, lv_m, r_b_m);

  // Lines 21-31 in token algebra: the line-21 turn-around lands on
  // pos = 1 - psi (biased 0), so the new right token is the payload alone;
  // a right-move is lt - 1 (payload rides along); the line-27 re-launch
  // target is psi with the recomputed ripple-carry payload; a left-move is
  // rt + 1.
  const V rc_m = vmask(rt, K.carry_bit);
  const V relaunch =
      psi_bias |
      vsel(rc_m, vsel(l_b_m, bit_carry, bit_value), l_b_m & bit_value);
  const V move_r = case1 | case2;
  const V move_l = case3 | case4;
  const V lt2 =
      vsel(case3, relaunch, vsel(case4, rt + one, vsel(move_r, bot, lt1)));
  const V rt2 = vsel(case1, lt1 & ~pos_mask,
                     vsel(case2, lt1 - one, vsel(move_l, bot, rt)));

  // Lines 32-33: delete last-segment / invalid tokens (Definition 3.3).
  // tau = (dist + pos + d) mod 2psi with dist + pos + d in [1-psi, 4psi-1]:
  // one conditional add plus one conditional subtract. Signed compares —
  // a wrapped-negative tau must order below zero.
  const V lpos = lt2 & pos_mask;
  V tau_l = ld0 + lpos + dbias;
  tau_l = tau_l + (two_psi_p0 & vgt(zero, tau_l));
  tau_l = tau_l - (two_psi_p0 & ~vgt(two_psi_p0, tau_l));
  const V inv_l = vsel(vgt(lpos, bot), vgt(psi_p0, tau_l),
                       vgt(one, tau_l) | vgt(tau_l, psim1_p0));
  const V kill_l = ~veq(lpos, bot) & (l_last_m | inv_l);
  const V rpos = rt2 & pos_mask;
  V tau_r = rd0 + rpos + dbias;
  tau_r = tau_r + (two_psi_p0 & vgt(zero, tau_r));
  tau_r = tau_r - (two_psi_p0 & ~vgt(two_psi_p0, tau_r));
  const V inv_r = vsel(vgt(rpos, bot), vgt(psi_p0, tau_r),
                       vgt(one, tau_r) | vgt(tau_r, psim1_p0));
  const V kill_r = ~veq(rpos, bot) & (r_last_m | inv_r);

  lt = vsel(kill_l, bot, lt2);
  rt = vsel(kill_r, bot, rt2);
}

/// One full Algorithm-1 interaction (CreateLeader(); EliminateLeaders())
/// per lane. `wl` holds initiator words, `wr` responder words.
///
/// Structured for register pressure: the output words are *accumulated* —
/// every field value is OR-folded into wl/wr the moment it is final, so
/// its register dies early instead of staying live until a monolithic
/// repack (the difference is ~2x in spill traffic at 8 lanes).
template <typename V>
[[gnu::always_inline]] inline void apply_word_lanes(
    V& wl, V& wr, const PlKernelConsts& K) noexcept {
  using core::veq;
  using core::vgt;
  using core::vmask;
  using core::vsel;
  const V zero = core::vbroadcast<V>(0);

  // Flag masks and in-place fields.
  const V l_leader_m = vmask(wl, 0);
  const V l_b_m = vmask(wl, 1);
  const V r_leader_m = vmask(wr, 0);
  const V r_last_m = vmask(wr, 2);
  const V dist_f = core::vbroadcast<V>(K.dist_f);
  const V l_dist_ip = wl & dist_f;
  V l_clock_ip = wl & core::vbroadcast<V>(K.clock_f);
  V l_sigr_ip = wl & core::vbroadcast<V>(K.sigr_f);
  const V r_dist_ip0 = wr & dist_f;
  V r_hits_ip = wr & core::vbroadcast<V>(K.hits_f);
  V r_clock_ip = wr & core::vbroadcast<V>(K.clock_f);
  V r_sigr_ip = wr & core::vbroadcast<V>(K.sigr_f);

  // --- DetermineMode() — Algorithm 4 (lines 34-48) ---
  const V psi_h = core::vbroadcast<V>(K.psi_h);
  l_sigr_ip = vsel(l_leader_m, core::vbroadcast<V>(K.kmax_s),
                   l_sigr_ip);                              // lines 34-35
  // Lines 36-37: min(hits + 1, psi); hits <= psi in domain, so the clamp
  // is an equality test.
  r_hits_ip = vsel(veq(r_hits_ip, psi_h), psi_h,
                   r_hits_ip + core::vbroadcast<V>(K.one_h));
  const V sig_m = ~veq(l_sigr_ip | r_sigr_ip, zero);        // line 38
  // Signal branch (lines 39-45):
  const V absorb_m =
      ~veq(r_sigr_ip, zero) & ~vgt(r_sigr_ip, l_sigr_ip);   // l >= r > 0
  const V hits_s0 = r_hits_ip & ~absorb_m;                  // lines 40-41
  const V sigr_s0 =
      vsel(vgt(l_sigr_ip, r_sigr_ip), l_sigr_ip, r_sigr_ip);  // line 42
  const V win_s_m = veq(hits_s0, psi_h);                    // lines 43-45
  const V sigr_s = sigr_s0 - (win_s_m & core::vbroadcast<V>(K.one_s));
  const V hits_s = hits_s0 & ~win_s_m;
  // No-signal branch (lines 46-48): min(clock + 1, kappa_max) on a win.
  const V win_n_m = veq(r_hits_ip, psi_h);
  V clock_n = r_clock_ip + (win_n_m & core::vbroadcast<V>(K.one_c));
  const V kmax_c = core::vbroadcast<V>(K.kmax_c);
  clock_n =
      vsel(veq(clock_n, core::vbroadcast<V>(K.kmax_p1_c)), kmax_c, clock_n);
  const V hits_n = r_hits_ip & ~win_n_m;
  // Merge:
  l_clock_ip = l_clock_ip & ~sig_m;
  r_clock_ip = vsel(sig_m, zero, clock_n);
  r_hits_ip = vsel(sig_m, hits_s, hits_n);
  r_sigr_ip = vsel(sig_m, sigr_s, r_sigr_ip);
  l_sigr_ip = l_sigr_ip & ~sig_m;

  // --- CreateLeader() — Algorithm 2 (lines 4-9) ---
  V tmp_ip = l_dist_ip + core::vbroadcast<V>(K.one_d);      // line 4
  tmp_ip = tmp_ip & ~veq(tmp_ip, core::vbroadcast<V>(K.twopsi_d));
  tmp_ip = tmp_ip & ~r_leader_m;
  const V detect_m = veq(r_clock_ip, kmax_c);
  V promote_m = detect_m & ~veq(tmp_ip, r_dist_ip0);        // lines 5-6
  const V r_leader9_m = promote_m | r_leader_m;  // r.leader at line 9
  const V r_dist_ip = vsel(detect_m, r_dist_ip0, tmp_ip);   // lines 7-8
  // Line 9: does l belong to the last segment?
  const V border_m =
      veq(r_dist_ip, zero) | veq(r_dist_ip, core::vbroadcast<V>(K.psi_d));
  const V l_last_m = r_leader9_m | (r_last_m & ~border_m);

  // Lines 10-11: both color lanes through the one shared code path (black:
  // d = 0, white: d = psi). The black lane may write r.b; the white lane
  // reads it. The output accumulators start here: every already-final
  // field folds in immediately and its register dies. The two-token phase
  // is deliberately split — the black tokens retire into the accumulators
  // *before* the white sub-words are even extracted, so at no point do
  // both colors' token registers overlap the ~30-value live range of a
  // move_token_lane body (the peak-pressure cut that lets two kernel
  // instances share the register file; only r_b_m and promote_m carry
  // between the color lanes).
  const V tok_mask = core::vbroadcast<V>(K.tok_mask);
  const V ld0 = l_dist_ip >> K.dist_shift;
  const V rd0 = r_dist_ip >> K.dist_shift;
  V r_b_m = vmask(wr, 1);
  V wl_acc = (wl & core::vbroadcast<V>(K.keep_l)) | l_clock_ip | l_sigr_ip |
             (l_last_m & core::vbroadcast<V>(0x4));
  V wr_acc = (wr & core::vbroadcast<V>(K.keep_r)) | r_dist_ip | r_hits_ip |
             r_clock_ip | r_sigr_ip;
  {
    V ltb = (wl >> K.tokb_shift) & tok_mask;
    V rtb = (wr >> K.tokb_shift) & tok_mask;
    move_token_lane<0>(ltb, rtb, r_b_m, promote_m, l_dist_ip, l_last_m,
                       r_last_m, detect_m, l_b_m, ld0, rd0, K);
    wl_acc = wl_acc | (ltb << K.tokb_shift);
    wr_acc = wr_acc | (rtb << K.tokb_shift);
  }
  {
    V ltw = (wl >> K.tokw_shift) & tok_mask;
    V rtw = (wr >> K.tokw_shift) & tok_mask;
    move_token_lane<1>(ltw, rtw, r_b_m, promote_m, l_dist_ip, l_last_m,
                       r_last_m, detect_m, l_b_m, ld0, rd0, K);
    wl_acc = wl_acc | (ltw << K.tokw_shift);
    wr_acc = wr_acc | (rtw << K.tokw_shift);
  }
  wr_acc = wr_acc | (r_b_m & core::vbroadcast<V>(0x2));

  // Deferred become_leader merge (lines 6 and 18; idempotent, and none of
  // leader/bullet/shield/signal_b is read between the promotion sites and
  // EliminateLeaders). Bullets live in place at bits 5-6: dummy = 0x20,
  // live = 0x40.
  const V bullet_f = core::vbroadcast<V>(0x60);
  const V live_b = core::vbroadcast<V>(0x40);
  const V r_leader2_m = promote_m | r_leader_m;
  V r_bullet_ip = vsel(promote_m, live_b, wr & bullet_f);
  V r_shield_m = promote_m | vmask(wr, 3);
  V r_sigb_m = vmask(wr, 4) & ~promote_m;

  // --- EliminateLeaders() — Algorithm 5 (lines 51-62) ---
  V l_sigb_m = vmask(wl, 4);
  V l_bullet_ip = wl & bullet_f;
  const V fire_l_m = l_leader_m & l_sigb_m;                 // lines 51-52
  l_bullet_ip = vsel(fire_l_m, live_b, l_bullet_ip);
  const V l_shield_m = fire_l_m | vmask(wl, 3);
  l_sigb_m = l_sigb_m & ~fire_l_m;
  const V fire_r_m = r_leader2_m & r_sigb_m;                // lines 53-54
  r_bullet_ip = vsel(fire_r_m, core::vbroadcast<V>(0x20), r_bullet_ip);
  r_shield_m = r_shield_m & ~fire_r_m;
  r_sigb_m = r_sigb_m & ~fire_r_m;
  const V have_m = ~veq(l_bullet_ip, zero);
  const V hit_m = have_m & r_leader2_m;                     // lines 55-57
  const V killed_m = hit_m & veq(l_bullet_ip, live_b) & ~r_shield_m;
  const V adv_m = have_m & ~r_leader2_m;                    // lines 58-61
  const V r_leader3_m = r_leader2_m & ~killed_m;
  r_bullet_ip =
      vsel(adv_m & veq(r_bullet_ip, zero), l_bullet_ip, r_bullet_ip);
  r_sigb_m = r_sigb_m & ~adv_m;
  l_bullet_ip = l_bullet_ip & ~have_m;
  // Line 62: absence signals propagate right-to-left.
  const V l_sigb2_m = l_sigb_m | r_sigb_m | r_leader3_m;

  // --- Final fold: the elimination-block fields join the accumulators
  // (everything else was folded as it finalized; the cleared hits field of
  // wl is line 36's l.hits = 0) ---
  wl = wl_acc | (l_shield_m & core::vbroadcast<V>(0x8)) |
       (l_sigb2_m & core::vbroadcast<V>(0x10)) | l_bullet_ip;
  wr = wr_acc | (r_leader3_m & core::vbroadcast<V>(0x1)) |
       (r_shield_m & core::vbroadcast<V>(0x8)) |
       (r_sigb_m & core::vbroadcast<V>(0x10)) | r_bullet_ip;
}

}  // namespace packed_detail

/// One interaction on two packed words (the V = uint64_t instantiation,
/// with the constants derived on the spot — engine hot loops precompute
/// PlKernelConsts once per block and call apply_word_one/apply_word_x4).
inline void apply_word(std::uint64_t& wl, std::uint64_t& wr,
                       const PackedLayout& lay) noexcept {
  const PlKernelConsts k = PlKernelConsts::make(lay);
  packed_detail::apply_word_lanes<std::uint64_t>(wl, wr, k);
}

/// One interaction with precomputed constants (group-driver tail/conflict
/// path).
inline void apply_word_one(std::uint64_t& wl, std::uint64_t& wr,
                           const PlKernelConsts& k) noexcept {
  packed_detail::apply_word_lanes<std::uint64_t>(wl, wr, k);
}

/// Four scheduler-independent interactions at once (the core::WordVec
/// instantiation; the caller guarantees the four agent pairs are disjoint).
[[gnu::always_inline]] inline void apply_word_x4(
    core::WordVec& wl, core::WordVec& wr, const PlKernelConsts& k) noexcept {
  packed_detail::apply_word_lanes<core::WordVec>(wl, wr, k);
}

/// Eight scheduler-independent interactions at once (the core::WordVec8
/// instantiation — one AVX-512 register per side where the ISA has it).
[[gnu::always_inline]] inline void apply_word_x8(
    core::WordVec8& wl, core::WordVec8& wr,
    const PlKernelConsts& k) noexcept {
  packed_detail::apply_word_lanes<core::WordVec8>(wl, wr, k);
}

/// Leader output read straight off the packed word (bit 0 of the layout).
[[nodiscard]] constexpr bool word_leader(std::uint64_t w,
                                         const PackedLayout&) noexcept {
  return (w & 1) != 0;
}

// --- Narrow (32-bit element) instantiations -------------------------------
//
// The kernel dataflow above is element-width generic: when the layout fits
// 32 bits (PackedLayout::fits_narrow — the small-n regime), the same source
// instantiates at u32 elements and a vector register carries twice the
// interactions. Correctness of the reinterpretation: vbroadcast truncates
// every u64 constant mod 2^32, and the kernel's algebra is add/sub/and/or/
// xor/shift — all homomorphic under truncation — while the signed compares
// stay valid because a 32-bit layout bounds every non-negative field value
// below 2^31 and the only wrapped negatives (the dbias/tau arithmetic)
// wrap identically mod 2^32. Bit-identity to the u64 kernel on narrow
// layouts is pinned by tests/core/word_kernel_test.cpp.

/// One interaction on two narrow packed words (u32 instantiation,
/// precomputed constants).
inline void apply_word_narrow_one(std::uint32_t& wl, std::uint32_t& wr,
                                  const PlKernelConsts& k) noexcept {
  packed_detail::apply_word_lanes<std::uint32_t>(wl, wr, k);
}

/// Eight scheduler-independent interactions in one 32-byte register (the
/// core::HalfVec8 instantiation).
[[gnu::always_inline]] inline void apply_word_narrow_x8(
    core::HalfVec8& wl, core::HalfVec8& wr,
    const PlKernelConsts& k) noexcept {
  packed_detail::apply_word_lanes<core::HalfVec8>(wl, wr, k);
}

/// Sixteen scheduler-independent interactions in one 64-byte register (the
/// core::HalfVec16 instantiation — AVX-512).
[[gnu::always_inline]] inline void apply_word_narrow_x16(
    core::HalfVec16& wl, core::HalfVec16& wr,
    const PlKernelConsts& k) noexcept {
  packed_detail::apply_word_lanes<core::HalfVec16>(wl, wr, k);
}

}  // namespace ppsim::pl

#pragma GCC diagnostic pop
