// Configuration predicates for P_PL, mirroring the paper's Section 3/4
// machinery:
//
//   * perfection — conditions (1) and (2) on dist/segment IDs
//   * token validity (Def. 3.3) and correctness (Def. 4.3)
//   * peaceful live bullets (C_PB)
//   * the C_DL layout and the safe set S_PL (Def. 4.6)
//
// These are measurement/verification tools of the harness, not part of the
// protocol itself: convergence time is *defined* as first entry into S_PL.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pl/params.hpp"
#include "pl/protocol.hpp"
#include "pl/state.hpp"

namespace ppsim::pl {

using Config = std::span<const PlState>;

[[nodiscard]] std::vector<int> leader_positions(Config c);
[[nodiscard]] int count_leaders(Config c);

/// Condition (1): u_i.dist == 0 if u_i is a leader, else
/// (u_{i-1}.dist + 1) mod 2psi — checked for every agent.
[[nodiscard]] bool satisfies_condition1(Config c, const PlParams& p);

/// A border is an agent with dist in {0, psi}.
[[nodiscard]] bool is_border(const PlState& s, const PlParams& p);

/// Segment decomposition by borders, in ring order starting from the first
/// border at or after index 0. Empty if the configuration has no border.
struct SegmentView {
  int start = 0;             ///< index of the border agent opening the segment
  int length = 0;            ///< number of agents up to (excl.) the next border
  unsigned long long id = 0; ///< iota(S): bits b_{start..start+len-1}, LSB first
};
[[nodiscard]] std::vector<SegmentView> decompose_segments(Config c,
                                                          const PlParams& p);

/// Condition (2): every segment S satisfies
/// iota(S) == (iota(prev(S)) + 1) mod 2^psi, unless S starts with a leader or
/// the border agent following S is a leader.
[[nodiscard]] bool satisfies_condition2(Config c, const PlParams& p);

/// Perfect configuration: no violation of (1) or (2). Lemma 3.2: a
/// configuration without a leader is never perfect.
[[nodiscard]] bool is_perfect(Config c, const PlParams& p);

/// Token validity (Def. 3.3, interval sense per DESIGN.md §2.1(1)).
[[nodiscard]] bool token_valid(const PlState& host, const Token& t, int d,
                               const PlParams& p);

/// Token correctness (Def. 4.3, carry-phase fix per DESIGN.md §2.1(5)).
/// Defined relative to the C_DL layout anchored at `leader_pos`; returns
/// false when the token's working-pair geometry is broken.
[[nodiscard]] bool token_correct(Config c, const PlParams& p, int host,
                                 bool black, int leader_pos);

/// Peaceful(i) for the live bullet at u_i (general, multi-leader form): its
/// nearest left leader exists, is shielded, and no bullet-absence signal
/// lies on the path from that leader to u_i.
[[nodiscard]] bool live_bullet_peaceful(Config c, int i);

/// C_PB: at least one leader and every live bullet is peaceful.
[[nodiscard]] bool in_cpb(Config c);

/// C_DL dist/last layout relative to the unique leader at `leader_pos`:
/// dist(u_{k+i}) == i mod 2psi and last == 1 iff i in [psi*(zeta-1), n-1].
[[nodiscard]] bool in_cdl_layout(Config c, const PlParams& p, int leader_pos);

/// Membership in the safe set S_PL (Def. 4.6) with a human-readable reason
/// on failure.
struct SafetyVerdict {
  bool safe = false;
  std::string reason;
};
[[nodiscard]] SafetyVerdict check_safe(Config c, const PlParams& p);
[[nodiscard]] bool is_safe(Config c, const PlParams& p);

/// Predicates in the shape core::Runner::run_until expects.
struct SafePredicate {
  bool operator()(Config c, const PlParams& p) const { return is_safe(c, p); }
};
struct UniqueLeaderPredicate {
  bool operator()(Config c, const PlParams&) const {
    return count_leaders(c) == 1;
  }
};
struct AnyLeaderPredicate {
  bool operator()(Config c, const PlParams&) const {
    return count_leaders(c) >= 1;
  }
};
struct AllDetectPredicate {
  bool operator()(Config c, const PlParams& p) const {
    for (const PlState& s : c)
      if (!in_detect_mode(s, p.kappa_max)) return false;
    return true;
  }
};

}  // namespace ppsim::pl
