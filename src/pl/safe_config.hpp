// Constructors of reference configurations for P_PL:
//
//  * a canonical member of the safe set S_PL (used by the closure tests and
//    by fault-injection experiments), and
//  * a "fresh" single-leader configuration (leader present, everything else
//    zeroed) from which the construction phase of Fig. 1 is measured.
#pragma once

#include <vector>

#include "pl/params.hpp"
#include "pl/state.hpp"

namespace ppsim::pl {

/// A configuration in S_PL with the unique leader at `leader_pos` and
/// iota(S_0) = first_id mod 2^psi. dist/last follow C_DL; segment IDs are
/// consecutive; no tokens, bullets or signals exist; the leader is shielded.
[[nodiscard]] std::vector<PlState> make_safe_config(const PlParams& p,
                                                    int leader_pos = 0,
                                                    long long first_id = 0);

/// Single leader at `leader_pos`, all other variables zero — a plausible
/// "deployment" initial configuration (not safe; construction must run).
[[nodiscard]] std::vector<PlState> make_fresh_config(const PlParams& p,
                                                     int leader_pos = 0);

}  // namespace ppsim::pl
