// EliminateLeaders() — Algorithm 5 of the paper, taken unmodified from
// Yokota–Sudo–Masuzawa [28]: the bullets-and-shields war that reduces the
// number of leaders to one within O(n^2) expected steps without ever killing
// the last leader (once all live bullets are peaceful, cf. C_PB / Lemma 4.1).
//
// Mechanism recap (§3.4):
//  * A leader fires a bullet only after a *bullet-absence signal* (signalB,
//    propagating right-to-left) confirms its previous bullet is gone.
//  * The coin is extracted from the scheduler: receiving the signal and then
//    interacting as the initiator (left of the pair) fires a LIVE bullet and
//    raises the shield; interacting as the responder fires a DUMMY bullet and
//    lowers the shield. Each case has probability 1/2.
//  * Bullets travel left-to-right; a live bullet kills an unshielded leader;
//    any bullet erases absence signals it passes (line 61), so a signal
//    reaches a leader only once the gap to its right is bullet-free.
//
// Shared by P_PL and the yokota28 baseline. The state type must expose
// integer-like fields: leader {0,1}, bullet {0,1,2}, shield {0,1},
// signal_b {0,1}. An optional event sink (same hooks as pl::NullSink)
// records firing/kill statistics.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <string>

namespace ppsim::common {

inline constexpr int kNoBullet = 0;
inline constexpr int kDummyBullet = 1;
inline constexpr int kLiveBullet = 2;

template <typename S>
concept EliminationState = requires(S s) {
  { s.leader };
  { s.bullet };
  { s.shield };
  { s.signal_b };
};

/// No-op sink for the uninstrumented path.
struct NoopElimSink {
  static constexpr void fired_live() {}
  static constexpr void fired_dummy() {}
  static constexpr void bullet_moved() {}
  static constexpr void bullet_blocked() {}
  static constexpr void bullet_absorbed(bool /*killed*/) {}
};

/// One interaction of EliminateLeaders(); `l` is the initiator (left agent),
/// `r` the responder (right agent). Line numbers refer to Algorithm 5.
template <EliminationState S, typename Sink>
constexpr void eliminate_leaders_step(S& l, S& r, Sink& sink) noexcept {
  // Lines 51-52: leader as initiator with a confirmed-absent bullet fires a
  // live bullet and shields itself.
  if (l.leader == 1 && l.signal_b == 1) {
    l.bullet = kLiveBullet;
    l.shield = 1;
    l.signal_b = 0;
    sink.fired_live();
  }
  // Lines 53-54: leader as responder fires a dummy bullet and unshields.
  if (r.leader == 1 && r.signal_b == 1) {
    r.bullet = kDummyBullet;
    r.shield = 0;
    r.signal_b = 0;
    sink.fired_dummy();
  }
  // Lines 55-57: bullet reaches a leader; kills it iff live and unshielded.
  if (l.bullet > 0 && r.leader == 1) {
    const bool killed = l.bullet == kLiveBullet && r.shield == 0;
    if (killed) r.leader = 0;
    l.bullet = kNoBullet;
    sink.bullet_absorbed(killed);
  } else if (l.bullet > 0) {
    // Lines 58-60: bullet advances unless the responder already holds one
    // (then the left bullet disappears).
    if (r.bullet == kNoBullet) {
      r.bullet = l.bullet;
      sink.bullet_moved();
    } else {
      sink.bullet_blocked();
    }
    l.bullet = kNoBullet;
    // Line 61: a bullet erases bullet-absence signals in its path.
    r.signal_b = 0;
  }
  // Line 62: absence signals propagate right-to-left; a leader responder
  // (re)generates one in its left neighbor.
  l.signal_b = std::max({static_cast<int>(l.signal_b),
                         static_cast<int>(r.signal_b),
                         static_cast<int>(r.leader)});
}

/// Uninstrumented convenience overload.
template <EliminationState S>
constexpr void eliminate_leaders_step(S& l, S& r) noexcept {
  NoopElimSink sink;
  eliminate_leaders_step(l, r, sink);
}

/// Minimal elimination-only agent state (no creation machinery): the 24-value
/// domain 2 leader x 3 bullet x 2 shield x 2 signal_b.
struct ElimAgentState {
  std::uint8_t leader = 0;
  std::uint8_t bullet = 0;
  std::uint8_t shield = 0;
  std::uint8_t signal_b = 0;

  friend constexpr bool operator==(const ElimAgentState&,
                                   const ElimAgentState&) = default;
};

/// EliminateLeaders() as a standalone protocol, runnable in core::Runner /
/// core::EnsembleRunner (pack_state enables the packed transition table) and
/// checkable in core::ModelChecker / verification::QuotientChecker (the
/// pack/unpack checker adapter — position independent, so the quotient
/// checker gets the full rotation group). Promoted out of the elimination
/// tests so the checker bench and the differential fuzzer drive the same
/// definition the unit tests pin down.
struct EliminationProtocol {
  using State = ElimAgentState;
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;

  static void apply(State& l, State& r, const Params&) noexcept {
    eliminate_leaders_step(l, r);
  }
  [[nodiscard]] static bool is_leader(const State& s, const Params&) noexcept {
    return s.leader == 1;
  }

  /// Canonical enumeration of the O(1) per-agent domain (EnsembleRunner's
  /// packed-state mode).
  static std::size_t num_states(const Params&) { return 24; }
  static std::size_t pack_state(const State& s, const Params&) {
    return ((s.leader * 3ULL + s.bullet) * 2 + s.shield) * 2 + s.signal_b;
  }
  static State unpack_state(std::size_t v, const Params&) {
    State s;
    s.signal_b = static_cast<std::uint8_t>(v % 2);
    v /= 2;
    s.shield = static_cast<std::uint8_t>(v % 2);
    v /= 2;
    s.bullet = static_cast<std::uint8_t>(v % 3);
    v /= 3;
    s.leader = static_cast<std::uint8_t>(v);
    return s;
  }

  // Model-checker adapter: the same enumeration, with the position argument
  // the checker interface carries (unused — the domain is position free).
  static std::size_t pack(const State& s, const Params& p, int /*agent*/) {
    return pack_state(s, p);
  }
  static State unpack(std::size_t v, const Params& p, int /*agent*/) {
    return unpack_state(v, p);
  }
  static std::string describe(const State& s, const Params&) {
    return "{leader=" + std::to_string(s.leader) +
           " bullet=" + std::to_string(s.bullet) +
           " shield=" + std::to_string(s.shield) +
           " signalB=" + std::to_string(s.signal_b) + "}";
  }
};

}  // namespace ppsim::common
