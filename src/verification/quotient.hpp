// Symmetry-reduced exhaustive verification: the quotient-graph counterpart
// of core::ModelChecker.
//
// Soundness. The uniform scheduler is invariant under rotating all agent
// indices (core::rotate_arc) and, on undirected rings, under reflection
// (core::reflect_arc): both maps send the arc set to itself, preserving the
// uniform interaction distribution. When the checker adapter M is position
// independent (unpack/pack do not depend on the agent argument — verified
// at construction, never assumed), those index maps are automorphisms of
// the configuration graph, so SCCs, bottomness and reachability all factor
// through the orbit space: exploring one canonical representative per orbit
// (canonical.hpp) decides exactly what exploring the full product space
// decides. Adapters with *periodic* per-position inputs (e.g. a two-hop
// coloring of period q | n) keep the rotation subgroup of multiples of q;
// fully position-dependent adapters degrade to the trivial group and the
// quotient checker transparently matches the unreduced one.
//
// Output constancy is checked *edge-locally*: a bottom SCC passes iff every
// member representative has a legal output and no raw (uncanonicalized)
// successor changes the spec output. Because every edge of the full graph
// is the symmetry image of a representative's raw edge, and per-position
// outputs are equivariant (rotating a configuration rotates its output
// vector), this is equivalent to the unreduced checker's "all members of
// the bottom SCC share one output" — including for position-dependent specs
// such as the leader-bit vector: a lone leader that relocates forever shows
// up as a representative whose raw successor differs in output, exactly the
// counterexample the unreduced checker reports. Spec *legality* must be
// symmetry invariant ("exactly one leader" is; "the leader sits at u_0" is
// not a meaningful spec for anonymous agents in the first place).
//
// Capacity. The unreduced checker stores 12 bytes per *configuration*; this
// checker stores its Tarjan arrays per *orbit* (plus a hash index), so the
// same node budget reaches rings up to a factor |G| = n (directed) or 2n
// (undirected) larger. Orbits are discovered on the fly; the full id range
// is only *scanned* (O(total) cheap canonicalization tests) to seed Tarjan
// roots, never stored. Exceeding the budget mid-exploration aborts with
// capacity_exceeded — never a partial "ok".
//
// Topologies. On the default RingTopology the group is the measured
// rotation/reflection subgroup and canonicalization is Booth's least
// rotation (canonical.hpp) — that path is untouched and stays bit-identical
// to the pre-topology checker. On any other topology the group is supplied
// by the topology itself (Topo::aut_count/aut_agent, core/topology.hpp):
// each enumerated automorphism is validated against the adapter with the
// same position-independence probe shift_valid uses (validated, never
// assumed — the valid subset is a subgroup, so orbit-stabilizer still
// applies), the canonical representative is the minimum configuration id
// over the valid permutations, and groups too large to enumerate (clique's
// S_n beyond kMaxEnumeratedAuts) degrade to the trivial group — sound,
// merely unreduced.
#pragma once

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/model_checker.hpp"
#include "core/ring.hpp"
#include "core/topology.hpp"
#include "verification/canonical.hpp"

namespace ppsim::verification {

/// Result of a quotient check. The unreduced-comparable fields keep
/// core::CheckResult's semantics: `num_configurations` counts the *full*
/// product space and `num_bottom_configs` expands orbits by their size, so
/// both must agree bit-for-bit with the unreduced checker on any space both
/// can handle (tests/verification/quotient_test.cpp). `counterexample` is
/// the canonical representative of the offending orbit.
struct QuotientResult {
  bool ok = false;
  bool capacity_exceeded = false;
  std::uint64_t num_configurations = 0;  ///< full space: per_agent^n
  std::uint64_t num_orbits = 0;          ///< quotient nodes explored
  std::uint64_t num_bottom_sccs = 0;     ///< bottom SCCs of the quotient
  std::uint64_t num_bottom_orbits = 0;   ///< orbits inside bottom SCCs
  std::uint64_t num_bottom_configs = 0;  ///< expanded by orbit sizes
  std::optional<std::uint64_t> counterexample;  ///< canonical config id
  std::string reason;
  // Group actually used (after position-independence detection).
  int rotation_period = 0;
  bool reflection = false;
  int group_order = 1;

  /// Configurations per stored node — the memory/capacity win over the
  /// unreduced checker (approaches group_order as orbits get asymmetric).
  [[nodiscard]] double reduction_factor() const noexcept {
    return num_orbits == 0
               ? 0.0
               : static_cast<double>(num_configurations) /
                     static_cast<double>(num_orbits);
  }
};

template <typename M, typename Topo = core::RingTopology>
  requires std::equality_comparable<typename M::State>
class QuotientChecker {
 public:
  using State = typename M::State;
  using Params = typename M::Params;
  using Topology = Topo;

  static constexpr bool kRing = std::is_same_v<Topo, core::RingTopology>;

  static constexpr std::uint64_t kMaxOrbits =
      core::ModelChecker<M, Topo>::kMaxConfigurations;

  /// Largest non-ring automorphism group the checker will enumerate (8! —
  /// clique groups beyond this degrade to the trivial group: sound, merely
  /// unreduced).
  static constexpr std::uint64_t kMaxEnumeratedAuts = 40320;

  /// `node_budget` caps the number of *orbits* stored (the analog of the
  /// unreduced checker's configuration budget).
  explicit QuotientChecker(Params params,
                           std::uint64_t node_budget = kMaxOrbits)
      : mc_(params), params_(std::move(params)), topo_(params_.n),
        node_budget_(node_budget) {
    per_agent_ = M::num_states(params_);
    if (const auto total = core::detail::checked_pow(per_agent_, params_.n)) {
      total_ = *total;
    } else {
      capacity_exceeded_ = true;
      capacity_reason_ =
          "state space capacity exceeded: per_agent^n overflows uint64 (the "
          "quotient checker needs representable configuration ids)";
    }
    if (per_agent_ > 0xFFFF) {
      capacity_exceeded_ = true;
      capacity_reason_ =
          "state space capacity exceeded: per-agent state count does not fit "
          "the 16-bit canonicalization digits";
    }
    if constexpr (kRing) {
      group_ = detect_group();
    } else {
      group_.n = params_.n;
      group_.rotation_period = params_.n;  // Booth machinery unused off-ring
      group_.reflection = false;
      build_perms();
    }
  }

  [[nodiscard]] std::uint64_t num_configurations() const noexcept {
    return capacity_exceeded_ ? 0 : total_;
  }
  [[nodiscard]] bool capacity_exceeded() const noexcept {
    return capacity_exceeded_;
  }

  /// The symmetry group in force (ring path only): rotation period 1 for
  /// position-independent adapters (full reduction), q for q-periodic ones,
  /// n for fully position-dependent ones (no reduction); reflection only on
  /// undirected rings with a position-independent adapter. Off-ring the
  /// Booth machinery is unused — see group_order() instead.
  [[nodiscard]] const SymmetryGroup& symmetry() const noexcept {
    return group_;
  }

  /// Order of the group actually quotiented by: the measured
  /// rotation/reflection subgroup on the ring, the validated topology
  /// automorphisms elsewhere.
  [[nodiscard]] int group_order() const noexcept {
    if constexpr (kRing) return group_.order();
    return static_cast<int>(perms_.size());
  }

  /// Canonical representative of `id`'s orbit (also usable to compare an
  /// unreduced counterexample against a quotient one).
  [[nodiscard]] std::uint64_t canonical_id(std::uint64_t id) const {
    CanonicalScratch scratch;
    std::vector<std::uint16_t> digits;
    return canon(id, digits, scratch);
  }

  /// Forwarders so quotient counterexamples decode and print exactly like
  /// unreduced ones.
  [[nodiscard]] std::vector<State> decode(std::uint64_t id) const {
    return mc_.decode(id);
  }
  [[nodiscard]] std::string describe_configuration(std::uint64_t id) const {
    return mc_.describe_configuration(id);
  }
  [[nodiscard]] std::string describe_counterexample(
      const QuotientResult& res) const {
    if (!res.counterexample.has_value())
      return "(no counterexample: " +
             (res.reason.empty() ? std::string("check passed") : res.reason) +
             ")";
    return res.reason + "\n" +
           mc_.describe_configuration(*res.counterexample);
  }

  /// Verify every bottom SCC of the quotient graph: legal outputs, and no
  /// raw successor of any member changes the output (see the header
  /// comment for why this equals the unreduced criterion).
  template <typename Spec, typename Legal>
  [[nodiscard]] QuotientResult check(Spec&& spec, Legal&& legal) const {
    QuotientResult res;
    res.rotation_period = group_.rotation_period;
    res.reflection = group_.reflection;
    res.group_order = group_order();
    if (capacity_exceeded_) {
      res.capacity_exceeded = true;
      res.reason = capacity_reason_;
      return res;
    }
    res.num_configurations = total_;

    const int arcs = topo_.arc_count(M::directed);
    constexpr std::uint32_t kUnset = 0xFFFFFFFFu;
    const std::uint64_t budget = std::min(node_budget_, kMaxOrbits);

    CanonicalScratch scratch;
    std::vector<std::uint16_t> digits;

    // Dense per-orbit Tarjan state, discovered on the fly.
    std::vector<std::uint64_t> ids;  // dense index -> canonical id
    std::unordered_map<std::uint64_t, std::uint32_t> dense;
    std::vector<std::uint32_t> index, lowlink, comp;
    std::vector<std::uint32_t> stack;
    std::uint32_t next_index = 0;
    std::uint32_t next_comp = 0;
    bool over_budget = false;

    const auto intern = [&](std::uint64_t cid) -> std::uint32_t {
      const auto [it, inserted] =
          dense.emplace(cid, static_cast<std::uint32_t>(ids.size()));
      if (inserted) {
        if (static_cast<std::uint64_t>(ids.size()) >= budget) {
          over_budget = true;
          dense.erase(it);
          return kUnset;
        }
        ids.push_back(cid);
        index.push_back(kUnset);
        lowlink.push_back(0);
        comp.push_back(kUnset);
      }
      return it->second;
    };

    struct Frame {
      std::uint32_t v;
      int arc;  // next arc to explore
    };
    std::vector<Frame> call_stack;
    std::vector<std::uint32_t> scc;        // reused buffer
    std::vector<std::uint64_t> succ_raw;   // raw successor cache, per SCC

    // Root scan: every orbit has exactly one canonical member, so scanning
    // the full id range for fixed points of canon() seeds every orbit
    // without storing the non-canonical ids.
    for (std::uint64_t root_id = 0; root_id < total_ && !over_budget;
         ++root_id) {
      if (canon(root_id, digits, scratch) != root_id) continue;
      const std::uint32_t root = intern(root_id);
      if (over_budget || index[root] != kUnset) continue;

      call_stack.push_back({root, 0});
      index[root] = lowlink[root] = next_index++;
      stack.push_back(root);

      while (!call_stack.empty() && !over_budget) {
        Frame& f = call_stack.back();
        if (f.arc < arcs) {
          const std::uint64_t wid =
              canon(mc_.successor(ids[f.v], f.arc), digits, scratch);
          ++f.arc;
          if (wid == ids[f.v]) continue;  // quotient self-loop
          const std::uint32_t w = intern(wid);
          if (over_budget) break;
          if (index[w] == kUnset) {
            index[w] = lowlink[w] = next_index++;
            stack.push_back(w);
            call_stack.push_back({w, 0});
          } else if (comp[w] == kUnset) {  // still on the Tarjan stack
            lowlink[f.v] = std::min(lowlink[f.v], index[w]);
          }
          continue;
        }
        const std::uint32_t v = f.v;
        call_stack.pop_back();
        if (!call_stack.empty())
          lowlink[call_stack.back().v] =
              std::min(lowlink[call_stack.back().v], lowlink[v]);
        if (lowlink[v] != index[v]) continue;

        scc.clear();
        const std::uint32_t cid = next_comp++;
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          comp[w] = cid;
          scc.push_back(w);
          if (w == v) break;
        }
        // Bottomness pass, caching every member's raw successor ids so the
        // spec pass below never recomputes a transition.
        bool bottom = true;
        succ_raw.clear();
        for (std::uint32_t m : scc) {
          for (int a = 0; a < arcs && bottom; ++a) {
            const std::uint64_t raw = mc_.successor(ids[m], a);
            succ_raw.push_back(raw);
            const std::uint64_t sid = canon(raw, digits, scratch);
            const auto it = dense.find(sid);
            assert(it != dense.end());  // successors of an SCC are interned
            bottom = comp[it->second] == cid;
          }
          if (!bottom) break;
        }
        if (!bottom) continue;

        ++res.num_bottom_sccs;
        res.num_bottom_orbits += scc.size();
        for (std::size_t mi = 0; mi < scc.size(); ++mi) {
          const std::uint64_t mid = ids[scc[mi]];
          to_digits(mid, digits);
          if constexpr (kRing) {
            res.num_bottom_configs += orbit_size(digits, group_);
          } else {
            res.num_bottom_configs += orbit_size_generic(digits);
          }
          const auto cfg = mc_.decode(mid);
          const auto out = spec(std::span<const State>(cfg), params_);
          if (!legal(out)) {
            res.counterexample = mid;
            res.reason = "bottom SCC with illegal output";
            res.num_orbits = ids.size();
            return res;
          }
          for (int a = 0; a < arcs; ++a) {
            // Raw (uncanonicalized) successor: a genuine edge of the full
            // graph. Its output must not differ — that is closure.
            const auto succ_cfg = mc_.decode(
                succ_raw[mi * static_cast<std::size_t>(arcs) +
                         static_cast<std::size_t>(a)]);
            if (spec(std::span<const State>(succ_cfg), params_) != out) {
              res.counterexample = mid;
              res.reason = "bottom SCC with non-constant outputs";
              res.num_orbits = ids.size();
              return res;
            }
          }
        }
      }
      if (over_budget) break;
    }

    res.num_orbits = ids.size();
    if (over_budget) {
      res.capacity_exceeded = true;
      res.num_bottom_sccs = res.num_bottom_orbits = res.num_bottom_configs =
          0;
      res.counterexample.reset();
      res.reason = "state space capacity exceeded: orbit count exceeds the "
                   "node budget of " +
                   std::to_string(budget);
      return res;
    }
    res.ok = true;
    return res;
  }

 private:
  /// Base-per_agent digit string of a configuration id (digit i = packed
  /// state of agent i — the same positional encoding ModelChecker uses).
  void to_digits(std::uint64_t id, std::vector<std::uint16_t>& digits) const {
    digits.resize(static_cast<std::size_t>(params_.n));
    for (int i = 0; i < params_.n; ++i) {
      digits[static_cast<std::size_t>(i)] =
          static_cast<std::uint16_t>(id % per_agent_);
      id /= per_agent_;
    }
  }

  [[nodiscard]] std::uint64_t from_digits(
      std::span<const std::uint16_t> digits) const {
    std::uint64_t id = 0;
    for (int i = params_.n - 1; i >= 0; --i)
      id = id * per_agent_ + digits[static_cast<std::size_t>(i)];
    return id;
  }

  [[nodiscard]] std::uint64_t canon(std::uint64_t id,
                                    std::vector<std::uint16_t>& digits,
                                    CanonicalScratch& scratch) const {
    if constexpr (kRing) {
      if (group_.order() == 1) return id;
      to_digits(id, digits);
      canonicalize(digits, group_, scratch);
      return from_digits(digits);
    } else {
      (void)scratch;  // Booth scratch is ring-only
      if (perms_.size() <= 1) return id;
      to_digits(id, digits);
      // Minimum configuration id over the valid automorphisms, each acting
      // as digits'[g(i)] = digits[i]. The valid set is a group, so this is
      // a genuine orbit representative and the root scan's fixed-point test
      // (canon(id) == id) seeds every orbit exactly once.
      std::uint64_t best = id;
      perm_buf_.resize(digits.size());
      for (std::size_t p = 1; p < perms_.size(); ++p) {
        const auto& perm = perms_[p];
        for (std::size_t i = 0; i < digits.size(); ++i)
          perm_buf_[static_cast<std::size_t>(perm[i])] = digits[i];
        best = std::min(best, from_digits(perm_buf_));
      }
      return best;
    }
  }

  /// |orbit| = |G| / |stabilizer| for the validated automorphism group
  /// (orbit-stabilizer; the non-ring analog of canonical.hpp's orbit_size).
  [[nodiscard]] std::uint64_t orbit_size_generic(
      std::span<const std::uint16_t> digits) const {
    std::uint64_t stab = 0;
    for (const auto& perm : perms_) {
      bool fixes = true;
      for (std::size_t i = 0; i < digits.size() && fixes; ++i)
        fixes = digits[static_cast<std::size_t>(perm[i])] == digits[i];
      stab += fixes ? 1 : 0;
    }
    assert(stab > 0);  // the identity always fixes
    return static_cast<std::uint64_t>(perms_.size()) / stab;
  }

  /// Enumerate the topology's declared automorphisms and keep those the
  /// adapter is invariant under (the same probe shift_valid uses, applied
  /// to an arbitrary permutation). Both the topology group and the
  /// adapter-invariant permutations are closed under composition and
  /// inverse, so the kept set is a subgroup — orbit-stabilizer and the
  /// lex-min canon stay sound.
  void build_perms() {
    perms_.clear();
    if (capacity_exceeded_) {
      perms_.push_back(identity_perm());
      return;
    }
    const std::uint64_t count = topo_.aut_count(M::directed);
    if (count > kMaxEnumeratedAuts) {
      perms_.push_back(identity_perm());
      return;
    }
    std::vector<int> perm(static_cast<std::size_t>(params_.n));
    for (std::uint64_t g = 0; g < count; ++g) {
      for (int v = 0; v < params_.n; ++v)
        perm[static_cast<std::size_t>(v)] = topo_.aut_agent(g, v);
      if (perm_valid(perm)) perms_.push_back(perm);
    }
    assert(!perms_.empty());  // g = 0 is the identity, always valid
  }

  [[nodiscard]] std::vector<int> identity_perm() const {
    std::vector<int> perm(static_cast<std::size_t>(params_.n));
    for (int v = 0; v < params_.n; ++v) perm[static_cast<std::size_t>(v)] = v;
    return perm;
  }

  /// Adapter invariance under an arbitrary agent permutation — the
  /// generalization of shift_valid from i -> i+d to i -> perm[i].
  [[nodiscard]] bool perm_valid(const std::vector<int>& perm) const {
    for (int i = 0; i < params_.n; ++i) {
      const int j = perm[static_cast<std::size_t>(i)];
      if (j == i) continue;
      for (std::uint64_t v = 0; v < per_agent_; ++v) {
        const State a = M::unpack(static_cast<std::size_t>(v), params_, i);
        const State b = M::unpack(static_cast<std::size_t>(v), params_, j);
        if (!(a == b)) return false;
        if (M::pack(a, params_, j) != static_cast<std::size_t>(v))
          return false;
      }
    }
    return true;
  }

  /// Measure the adapter's position (in)dependence instead of assuming it:
  /// shift d is a symmetry iff every enumerated state unpacks identically
  /// at i and i+d (and re-packs to the same value). Valid shifts form a
  /// subgroup of Z_n, so the smallest valid divisor of n generates them
  /// all. Reflection additionally needs full position independence (d = 1)
  /// and an undirected ring (reflection reverses arc orientations;
  /// core::reflect_arc maps the directed arc set outside itself).
  [[nodiscard]] SymmetryGroup detect_group() const {
    SymmetryGroup g;
    g.n = params_.n;
    g.rotation_period = params_.n;
    if (capacity_exceeded_) return g;
    for (int d = 1; d < params_.n; ++d) {
      if (params_.n % d != 0) continue;
      if (shift_valid(d)) {
        g.rotation_period = d;
        break;
      }
    }
    g.reflection = !M::directed && g.rotation_period == 1;
    return g;
  }

  [[nodiscard]] bool shift_valid(int d) const {
    for (int i = 0; i < params_.n; ++i) {
      const int j = core::ring_add(i, d, params_.n);
      for (std::uint64_t v = 0; v < per_agent_; ++v) {
        const State a = M::unpack(static_cast<std::size_t>(v), params_, i);
        const State b = M::unpack(static_cast<std::size_t>(v), params_, j);
        if (!(a == b)) return false;
        if (M::pack(a, params_, j) != static_cast<std::size_t>(v))
          return false;
      }
    }
    return true;
  }

  /// decode/encode/successor (capacity-agnostic)
  core::ModelChecker<M, Topo> mc_;
  Params params_;
  Topo topo_;
  std::uint64_t node_budget_;
  std::uint64_t per_agent_ = 0;
  std::uint64_t total_ = 0;
  bool capacity_exceeded_ = false;
  std::string capacity_reason_;
  SymmetryGroup group_;
  /// Validated automorphism group as agent permutations (non-ring path;
  /// empty on the ring). perm_buf_ is scratch for the const canon().
  std::vector<std::vector<int>> perms_;
  mutable std::vector<std::uint16_t> perm_buf_;
};

}  // namespace ppsim::verification
