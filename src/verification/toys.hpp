// Tiny, provably-understood protocols for exercising the checkers
// themselves. Shared by the model-checker tests, the quotient tests and the
// checker bench so every harness pins down the same definitions.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace ppsim::verification {

/// The equivariant leader-bit-vector spec (bit i = agent i's leader output)
/// shared by the quotient tests, the checker bench and the state_space
/// certification section — one definition, so the property the bench
/// certifies is the property the tests pin against the unreduced checker.
/// Equivariant: rotating a configuration rotates its output vector, the
/// premise of the quotient checker's edge-local constancy argument.
template <typename State>
struct LeaderBitsSpec {
  template <typename Params>
  std::uint32_t operator()(std::span<const State> c, const Params&) const {
    std::uint32_t bits = 0;
    for (std::size_t i = 0; i < c.size(); ++i)
      bits |= static_cast<std::uint32_t>(c[i].leader) << i;
    return bits;
  }
};

/// SS-LE legality (symmetry invariant, as the quotient checker requires).
[[nodiscard]] inline bool exactly_one_leader(std::uint32_t bits) {
  return std::popcount(bits) == 1;
}

/// Toy protocol that provably self-stabilizes to "exactly one token":
/// adjacent tokens merge (the rightmost survives) and a lone token walks
/// right, so the chain is irreducible on the one-token level set and the
/// token count is the natural (rotation-invariant) spec output. Doubles as
/// both runner protocol and checker adapter; position independent, so the
/// quotient checker gets the full rotation group.
struct TokenMergeModel {
  struct State {
    int tok = 0;

    friend constexpr bool operator==(const State&, const State&) = default;
  };
  struct Params {
    int n = 0;
  };
  static constexpr bool directed = true;
  static std::size_t num_states(const Params&) { return 2; }
  static std::size_t pack(const State& s, const Params&, int /*agent*/) {
    return static_cast<std::size_t>(s.tok);
  }
  static State unpack(std::size_t v, const Params&, int /*agent*/) {
    return State{static_cast<int>(v)};
  }
  static void apply(State& l, State& r, const Params&) {
    if (l.tok == 1 && r.tok == 1) {
      r.tok = 0;  // merge rightward
    } else if (l.tok == 1 && r.tok == 0) {
      // A lone token walks: move right so the chain is irreducible.
      l.tok = 0;
      r.tok = 1;
    }
  }
  static std::string describe(const State& s, const Params&) {
    return s.tok == 1 ? "tok" : "_";
  }

  [[nodiscard]] static int count_tokens(std::span<const State> c) {
    int k = 0;
    for (const State& s : c) k += s.tok;
    return k;
  }
};

/// A deliberately broken variant whose zero-token configuration is absorbing
/// and illegal — every checker must find it (and the counterexample orbit is
/// the all-zero configuration, which is rotation invariant, so the quotient
/// and unreduced counterexamples coincide exactly).
struct BrokenMergeModel : TokenMergeModel {
  static void apply(State& l, State& r, const Params&) {
    if (l.tok == 1) {
      l.tok = 0;
      r.tok = 0;  // tokens leak away
    }
  }
};

}  // namespace ppsim::verification
