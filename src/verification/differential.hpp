// Cross-engine differential fuzzing: replay one seed-determined execution
// through every engine the repo has and assert they never disagree.
//
// The repo's determinism contract says these five lanes are bit-identical
// per step for the same (params, initial configuration, seed):
//
//   A  Runner::run_unbatched   — the reference scheduler path
//   B  Runner::run             — the fused fast path (delta census; for
//                                word-kernel protocols this IS the
//                                bit-sliced kernel + grouped SIMD driver)
//   C  EnsembleRunner, generic — the blocked InteractionEngine kernel
//   D  EnsembleRunner, packed  — the accelerated ensemble lane: the
//                                pair-transition LUT (HasPackedStates) or
//                                the word-kernel lane (core::HasWordKernel,
//                                P_PL — cross-checked against every scalar
//                                lane here, which is what certifies the
//                                packed kernel rather than assuming it)
//   E  checker mirror          — ModelChecker<M>::successor driven by a
//                                cloned RNG stream: every step decodes,
//                                applies M::apply, re-encodes, so the
//                                checker adapter's pack/unpack/apply are
//                                cross-checked against the protocol proper
//   F  Runner::run, forced scalar — only for word-kernel protocols: the
//                                scalar batched path Runner::run would
//                                otherwise never take (force_scalar_path),
//                                so the delta-census code keeps coverage
//   G  EnsembleRunner lockstep  — only for word-kernel protocols: ring 0
//                                (the lanes' seed + initial) plus decoy
//                                rings advanced together through run(), so
//                                ring 0 is carried by the cross-ring
//                                grouped driver and its lane-parallel
//                                vector RNG — certifying the column-r ==
//                                scalar-stream-r RNG contract against
//                                every scalar lane above
//
// Lane B calls force_word_path(): at small n the engagement heuristic
// would route Runner::run to the scalar batched path (lane F's job), and
// the whole point of lane B is to keep the word kernel under differential
// fire at every ring size it can represent.
//
// The harness advances all lanes in blocks of `check_every` interactions
// and, at every checkpoint, compares full configurations (operator==),
// step counters, the incremental leader/token censuses and
// last_leader_change, plus a from-scratch census recount as ground truth.
// Optional fault storms overwrite the same (agent, state) pairs in every
// lane mid-run through each engine's set_agent (delta census in all of
// them; the packed lane exercises its in-domain fast path or its
// documented fallback-to-generic, both of which must stay exact).
//
// Interaction schedules are never materialized: each lane owns an RNG
// seeded identically and the engines' documented stream identity
// (bounded == bounded_with_threshold value-for-value) makes the schedules
// equal by construction — which is exactly the contract being fuzzed.
// Fault schedules come from a *separate* RNG stream (stream_seed(seed,
// streams::kFaults), the scenario-engine convention) so storms never
// perturb the interaction
// schedule. With fault_storms == 0 the trajectory is independent of
// check_every (checkpoints only read state) — the quantized-hitting-time
// contract of analysis/experiment.hpp, pinned by
// tests/verification/differential_test.cpp.
//
// Topology and scheduler faults. The whole matrix is templated on a
// core::Topology (ring by default, bit-identical to the pre-topology
// harness): engines draw arcs from Topo::endpoints and the mirror from
// ModelChecker<M, MirrorTopo>::successor, so a single mis-mapped arc in
// either shows up as a named lane divergence at the next checkpoint.
// FuzzConfig::loss_p / arc_bias put the scheduler-fault loops themselves
// under differential fire — every engine lane gets the same
// core::SchedulerFaults and the mirror independently replays the
// loss-stream/bias-draw contract (see run_differential).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/ensemble.hpp"
#include "core/model_checker.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/runner.hpp"
#include "core/stream_tags.hpp"
#include "core/topology.hpp"

namespace ppsim::verification {

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::uint64_t steps = 4096;      ///< interactions per lane
  std::uint64_t check_every = 64;  ///< checkpoint (and storm) granularity
  int fault_storms = 0;            ///< storms at random checkpoints
  int faults_per_storm = 0;        ///< set_agent calls per storm
  /// Scheduler faults (core::SchedulerFaults), applied to every engine lane
  /// AND replicated in the checker mirror: omission probability per drawn
  /// interaction (dedicated loss stream, seed ^ core::kLossStreamTag) and
  /// an optional non-uniform arc distribution (one raw main-stream draw per
  /// interaction). Active faults force every engine onto its scalar/generic
  /// path, so the accelerated lanes (B word, D packed, F, G) drop out of
  /// the matrix — what remains is still a full cross-check of the faulted
  /// scalar loops against the mirror's independent replay.
  double loss_p = 0.0;
  std::vector<double> arc_bias;  ///< empty = uniform; else one weight/arc
};

struct FuzzReport {
  bool ok = true;
  std::uint64_t checkpoints = 0;
  std::uint64_t interactions = 0;
  std::uint64_t faults = 0;
  /// Fold of every checkpoint observation (configs + censuses + clocks):
  /// two runs agree on this iff they followed the same trajectory and
  /// checkpoint schedule.
  std::uint64_t digest = 0;
  /// Fold of the final configuration + censuses only: invariant across
  /// check_every granularities when fault_storms == 0.
  std::uint64_t final_digest = 0;
  bool packed_lane = false;  ///< lane D ran in (and stayed in) an
                             ///< accelerated mode (LUT or word kernel)
  bool word_lane = false;    ///< lane B ran (and stayed) on the word kernel
  bool mirror_lane = false;  ///< lane E (checker adapter) participated
  bool lockstep_lane = false;  ///< lane G ran (and stayed) in word-kernel
                               ///< mode, i.e. ring 0 went through the
                               ///< cross-ring vector-RNG driver
  std::string divergence;    ///< first mismatch, human readable; empty if ok
};

namespace detail {

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t h,
                                            std::uint64_t v) noexcept {
  std::uint64_t z = (h ^ v) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Logical per-state fold: the describe() rendering when the protocol has
/// one (immune to padding bytes; same customization point the checker
/// adapters use, core::HasStateDescription), the canonical packed value
/// when enumerable, raw bytes as a last resort.
template <typename P>
[[nodiscard]] std::uint64_t fold_state(std::uint64_t h,
                                       const typename P::State& s,
                                       const typename P::Params& p) {
  if constexpr (core::HasPackedStates<P>) {
    return mix64(h, static_cast<std::uint64_t>(P::pack_state(s, p)));
  } else if constexpr (core::HasStateDescription<P>) {
    std::uint64_t f = 0xcbf29ce484222325ULL;  // FNV-1a
    for (const char c : P::describe(s, p))
      f = (f ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    return mix64(h, f);
  } else {
    static_assert(std::is_trivially_copyable_v<typename P::State>,
                  "differential digest needs describe(), pack_state() or a "
                  "trivially copyable state");
    std::uint64_t f = 0xcbf29ce484222325ULL;
    unsigned char bytes[sizeof(typename P::State)];
    std::memcpy(bytes, &s, sizeof(bytes));
    for (const unsigned char c : bytes) f = (f ^ c) * 0x100000001b3ULL;
    return mix64(h, f);
  }
}

template <typename P>
[[nodiscard]] std::string render_state(const typename P::State& s,
                                       const typename P::Params& p) {
  if constexpr (core::HasStateDescription<P>) {
    return P::describe(s, p);
  } else if constexpr (core::HasPackedStates<P>) {
    return "q" + std::to_string(P::pack_state(s, p));
  } else {
    return "(state)";
  }
}

}  // namespace detail

/// Replay one execution through every applicable lane. `initial` is the
/// shared starting configuration; `fault_state` generates storm payloads:
/// State fault_state(const Params&, core::Xoshiro256pp&, const State&
/// current, int agent) — the current state and position let input-carrying
/// protocols (P_OR's coloring) corrupt only their writable variables.
/// M names a checker adapter to mirror (void = no mirror lane; the mirror
/// also drops out when the adapter's state space exceeds id capacity).
/// Topo selects the interaction topology for every engine lane; MirrorTopo
/// (defaulting to Topo) is the mirror's — letting the canary test prove a
/// deliberately mis-mapped topology is caught and named as a lane E
/// divergence (tests/verification/topology_differential_test.cpp).
template <typename P, typename M = void, typename Topo = core::RingTopology,
          typename MirrorTopo = Topo, typename FaultState>
[[nodiscard]] FuzzReport run_differential(
    const typename P::Params& params,
    const std::vector<typename P::State>& initial, const FuzzConfig& cfg,
    FaultState&& fault_state) {
  using State = typename P::State;
  static_assert(std::equality_comparable<State>,
                "differential comparison needs operator== on states");
  constexpr bool kMirrorable = !std::is_void_v<M>;

  FuzzReport rep;
  const int n = params.n;
  const Topo topo(n);
  [[maybe_unused]] const auto arc_count =
      static_cast<std::uint64_t>(topo.arc_count(P::directed));

  // Lanes A-D, and F for word-kernel protocols.
  core::Runner<P, Topo> lane_a(params, initial, cfg.seed);
  core::Runner<P, Topo> lane_b(params, initial, cfg.seed);
  lane_b.force_word_path();  // past the small-n engagement gate (see header)
  core::EnsembleRunner<P, Topo> lane_c(params, 1);
  lane_c.force_generic_path();
  lane_c.add_ring(initial, cfg.seed);
  core::EnsembleRunner<P, Topo> lane_d(params, 1);
  lane_d.add_ring(initial, cfg.seed);
  constexpr bool kHaveLaneF = core::Runner<P, Topo>::kWordKernel;
  std::optional<core::Runner<P, Topo>> lane_f;  // dead weight otherwise
  if constexpr (kHaveLaneF) {
    lane_f.emplace(params, initial, cfg.seed);
    lane_f->force_scalar_path();
  }
  // Lane G: ring 0 shares the lanes' seed and initial configuration; the
  // decoys exist only to fill a full SIMD group so ring 0 is advanced as a
  // vector column of the cross-ring driver (word-kernel protocols only —
  // for everything else run() degenerates to lane C's per-ring loop).
  constexpr bool kHaveLaneG = core::Runner<P, Topo>::kWordKernel;
  constexpr int kLockstepRings = 16;  // >= widest cross-ring group (narrow)
  std::optional<core::EnsembleRunner<P, Topo>> lane_g;
  if constexpr (kHaveLaneG) {
    lane_g.emplace(params, kLockstepRings);
    lane_g->add_ring(initial, cfg.seed);
    for (int r = 1; r < kLockstepRings; ++r)
      lane_g->add_ring(initial,
                       core::derive_seed(cfg.seed,
                                         core::streams::kLockstepDecoy,
                                         static_cast<std::uint64_t>(r)));
  }

  // Scheduler faults: identical in every engine lane (same loss stream,
  // same bias table), replicated by hand in the mirror below. Applied
  // BEFORE have_lane_d is measured — active faults force the generic path,
  // at which point lane D would only duplicate lane C.
  core::SchedulerFaults sched;
  sched.loss_p = cfg.loss_p;
  sched.arc_weights = cfg.arc_bias;
  const bool have_sched = sched.active();
  if (have_sched) {
    assert(cfg.arc_bias.empty() ||
           cfg.arc_bias.size() == static_cast<std::size_t>(arc_count));
    lane_a.set_scheduler_faults(sched);
    lane_b.set_scheduler_faults(sched);
    lane_c.set_scheduler_faults(sched);
    lane_d.set_scheduler_faults(sched);
    if constexpr (kHaveLaneF) lane_f->set_scheduler_faults(sched);
    if constexpr (kHaveLaneG) lane_g->set_scheduler_faults(sched);
  }
  const bool have_lane_d =
      lane_d.packed_mode() || lane_d.word_kernel_mode();  // else duplicates C

  // Lane E: the checker mirror. Under scheduler faults it replays the exact
  // engine semantics: one (possibly biased) arc draw from the main stream
  // per interaction, then one loss draw from the dedicated stream — a lost
  // interaction is a no-op that still advances the step count.
  [[maybe_unused]] std::uint64_t mirror_id = 0;
  [[maybe_unused]] core::Xoshiro256pp mirror_rng(cfg.seed);
  [[maybe_unused]] core::Xoshiro256pp mirror_loss_rng(
      core::stream_seed(cfg.seed, core::streams::kLoss));
  [[maybe_unused]] const std::uint64_t mirror_loss_threshold =
      have_sched ? core::detail::probability_threshold(cfg.loss_p) : 0;
  [[maybe_unused]] const core::detail::BiasTable mirror_bias =
      cfg.arc_bias.empty()
          ? core::detail::BiasTable()
          : core::detail::BiasTable(std::span<const double>(cfg.arc_bias));
  [[maybe_unused]] auto make_mirror = [&]() {
    if constexpr (kMirrorable) {
      return core::ModelChecker<M, MirrorTopo>(params);
    } else {
      return 0;
    }
  };
  auto mirror = make_mirror();
  if constexpr (kMirrorable) {
    rep.mirror_lane = !mirror.capacity_exceeded();
    if (rep.mirror_lane) mirror_id = mirror.encode(initial);
  }

  // Fault stream (decorrelated from the interaction schedules) and storm
  // checkpoints, drawn up front so the whole schedule is a function of the
  // seed alone.
  core::Xoshiro256pp fault_rng(
      core::stream_seed(cfg.seed, core::streams::kFaults));
  const std::uint64_t check_every =
      cfg.check_every == 0 ? static_cast<std::uint64_t>(n) : cfg.check_every;
  const std::uint64_t num_checkpoints =
      (cfg.steps + check_every - 1) / check_every;
  std::vector<std::uint64_t> storm_at(num_checkpoints, 0);
  if (cfg.fault_storms > 0 && num_checkpoints > 0) {
    for (int s = 0; s < cfg.fault_storms; ++s)
      ++storm_at[fault_rng.bounded(num_checkpoints)];
  }

  const auto fail = [&](const std::string& lane, const std::string& what) {
    rep.ok = false;
    rep.divergence = "step " + std::to_string(lane_a.steps()) + ", lane " +
                     lane + ": " + what;
  };

  // Compare every lane against A; fold the checkpoint into the digest.
  const auto checkpoint = [&]() -> bool {
    const std::span<const State> ref = lane_a.agents();
    const auto compare_span = [&](const std::string& lane,
                                  std::span<const State> got) {
      for (int i = 0; i < n; ++i) {
        if (!(got[static_cast<std::size_t>(i)] ==
              ref[static_cast<std::size_t>(i)])) {
          fail(lane,
               "agent " + std::to_string(i) + " diverged: " +
                   detail::render_state<P>(got[static_cast<std::size_t>(i)],
                                           params) +
                   " vs reference " +
                   detail::render_state<P>(ref[static_cast<std::size_t>(i)],
                                           params));
          return false;
        }
      }
      return true;
    };
    const auto compare_u64 = [&](const std::string& lane, const char* what,
                                 std::uint64_t got, std::uint64_t want) {
      if (got == want) return true;
      fail(lane, std::string(what) + " diverged: " + std::to_string(got) +
                     " vs reference " + std::to_string(want));
      return false;
    };

    if (!compare_span("B(run)", lane_b.agents())) return false;
    if (!compare_u64("B(run)", "steps", lane_b.steps(), lane_a.steps()))
      return false;
    if constexpr (kHaveLaneF) {
      if (!compare_span("F(run-scalar)", lane_f->agents())) return false;
      if (!compare_u64("F(run-scalar)", "steps", lane_f->steps(),
                       lane_a.steps()))
        return false;
    }
    if (!compare_span("C(ensemble-generic)", lane_c.agents(0))) return false;
    if (!compare_u64("C(ensemble-generic)", "steps", lane_c.steps(0),
                     lane_a.steps()))
      return false;
    if (have_lane_d) {
      if (!compare_span("D(ensemble-packed)", lane_d.agents(0))) return false;
      if (!compare_u64("D(ensemble-packed)", "steps", lane_d.steps(0),
                       lane_a.steps()))
        return false;
    }
    if constexpr (kHaveLaneG) {
      if (!compare_span("G(ensemble-lockstep)", lane_g->agents(0)))
        return false;
      if (!compare_u64("G(ensemble-lockstep)", "steps", lane_g->steps(0),
                       lane_a.steps()))
        return false;
    }
    if constexpr (core::HasLeaderOutput<P>) {
      const auto want_l = static_cast<std::uint64_t>(lane_a.leader_count());
      if (!compare_u64("B(run)", "leader_count",
                       static_cast<std::uint64_t>(lane_b.leader_count()),
                       want_l))
        return false;
      if (!compare_u64("C(ensemble-generic)", "leader_count",
                       static_cast<std::uint64_t>(lane_c.leader_count(0)),
                       want_l))
        return false;
      if (have_lane_d &&
          !compare_u64("D(ensemble-packed)", "leader_count",
                       static_cast<std::uint64_t>(lane_d.leader_count(0)),
                       want_l))
        return false;
      if constexpr (kHaveLaneG) {
        if (!compare_u64("G(ensemble-lockstep)", "leader_count",
                         static_cast<std::uint64_t>(lane_g->leader_count(0)),
                         want_l))
          return false;
        if (!compare_u64("G(ensemble-lockstep)", "last_leader_change",
                         lane_g->last_leader_change(0),
                         lane_a.last_leader_change()))
          return false;
      }
      if (!compare_u64("B(run)", "last_leader_change",
                       lane_b.last_leader_change(),
                       lane_a.last_leader_change()))
        return false;
      if constexpr (kHaveLaneF) {
        if (!compare_u64("F(run-scalar)", "leader_count",
                         static_cast<std::uint64_t>(lane_f->leader_count()),
                         want_l))
          return false;
        if (!compare_u64("F(run-scalar)", "last_leader_change",
                         lane_f->last_leader_change(),
                         lane_a.last_leader_change()))
          return false;
      }
      if (!compare_u64("C(ensemble-generic)", "last_leader_change",
                       lane_c.last_leader_change(0),
                       lane_a.last_leader_change()))
        return false;
      if (have_lane_d &&
          !compare_u64("D(ensemble-packed)", "last_leader_change",
                       lane_d.last_leader_change(0),
                       lane_a.last_leader_change()))
        return false;
    }
    if constexpr (core::HasTokenCensus<P>) {
      const auto want_t = static_cast<std::uint64_t>(lane_a.token_count());
      if (!compare_u64("B(run)", "token_count",
                       static_cast<std::uint64_t>(lane_b.token_count()),
                       want_t))
        return false;
      if (!compare_u64("C(ensemble-generic)", "token_count",
                       static_cast<std::uint64_t>(lane_c.token_count(0)),
                       want_t))
        return false;
      if (have_lane_d &&
          !compare_u64("D(ensemble-packed)", "token_count",
                       static_cast<std::uint64_t>(lane_d.token_count(0)),
                       want_t))
        return false;
      if constexpr (kHaveLaneG) {
        if (!compare_u64("G(ensemble-lockstep)", "token_count",
                         static_cast<std::uint64_t>(lane_g->token_count(0)),
                         want_t))
          return false;
      }
    }
    // Ground truth: the incremental censuses must equal a from-scratch
    // recount of the reference configuration.
    {
      core::RingClock truth;
      truth.steps = lane_a.steps();
      core::InteractionEngine<P>::recount(ref, params, truth);
      if constexpr (core::HasLeaderOutput<P>) {
        if (!compare_u64("A(recount)", "leader_count",
                         static_cast<std::uint64_t>(lane_a.leader_count()),
                         static_cast<std::uint64_t>(truth.leader_count)))
          return false;
      }
      if constexpr (core::HasTokenCensus<P>) {
        if (!compare_u64("A(recount)", "token_count",
                         static_cast<std::uint64_t>(lane_a.token_count()),
                         static_cast<std::uint64_t>(truth.token_count)))
          return false;
      }
    }
    if constexpr (kMirrorable) {
      if (rep.mirror_lane) {
        const auto mirror_cfg = mirror.decode(mirror_id);
        if (!compare_span("E(checker-mirror)", mirror_cfg)) return false;
      }
    }

    // Fold the checkpoint observation.
    std::uint64_t h = rep.digest;
    h = detail::mix64(h, lane_a.steps());
    if constexpr (core::HasLeaderOutput<P>) {
      h = detail::mix64(h, static_cast<std::uint64_t>(lane_a.leader_count()));
      h = detail::mix64(h, lane_a.last_leader_change());
    }
    if constexpr (core::HasTokenCensus<P>) {
      h = detail::mix64(h, static_cast<std::uint64_t>(lane_a.token_count()));
    }
    for (const State& s : ref) h = detail::fold_state<P>(h, s, params);
    rep.digest = h;
    ++rep.checkpoints;
    return true;
  };

  const auto inject_storm = [&](std::uint64_t count) {
    for (std::uint64_t s = 0; s < count; ++s) {
      for (int f = 0; f < cfg.faults_per_storm; ++f) {
        const int idx =
            static_cast<int>(fault_rng.bounded(static_cast<std::uint64_t>(n)));
        const State payload =
            fault_state(params, fault_rng, lane_a.agent(idx), idx);
        lane_a.set_agent(idx, payload);
        lane_b.set_agent(idx, payload);
        if constexpr (kHaveLaneF) lane_f->set_agent(idx, payload);
        lane_c.set_agent(0, idx, payload);
        if (have_lane_d) lane_d.set_agent(0, idx, payload);
        if constexpr (kHaveLaneG) lane_g->set_agent(0, idx, payload);
        if constexpr (kMirrorable) {
          if (rep.mirror_lane) {
            auto cfg_e = mirror.decode(mirror_id);
            cfg_e[static_cast<std::size_t>(idx)] = payload;
            mirror_id = mirror.encode(cfg_e);
          }
        }
        ++rep.faults;
      }
    }
  };

  if (!checkpoint()) return rep;  // initial configurations must agree
  if (cfg.steps == 0 && cfg.fault_storms > 0) {
    // Degenerate zero-interaction run: the block loop below never spins, so
    // honor the exact-fault-count contract by injecting every requested
    // storm against the initial configuration and re-comparing.
    inject_storm(static_cast<std::uint64_t>(cfg.fault_storms));
    if (!checkpoint()) return rep;
  }
  std::uint64_t done = 0;
  std::uint64_t cp = 0;
  while (done < cfg.steps) {
    const std::uint64_t block = std::min(check_every, cfg.steps - done);
    lane_a.run_unbatched(block);
    lane_b.run(block);
    if constexpr (kHaveLaneF) lane_f->run(block);
    lane_c.run_ring(0, block);
    if (have_lane_d) lane_d.run_ring(0, block);
    if constexpr (kHaveLaneG) lane_g->run(block);  // every ring, lockstep
    if constexpr (kMirrorable) {
      if (rep.mirror_lane) {
        for (std::uint64_t k = 0; k < block; ++k) {
          const int arc =
              mirror_bias.empty()
                  ? static_cast<int>(mirror_rng.bounded(arc_count))
                  : mirror_bias.draw(mirror_rng);
          if (mirror_loss_threshold != 0 &&
              mirror_loss_rng() < mirror_loss_threshold)
            continue;  // lost interaction: a no-op, exactly as in the engines
          mirror_id = mirror.successor(mirror_id, arc);
        }
      }
    }
    done += block;
    rep.interactions = done;
    if (!checkpoint()) return rep;
    // Storms at the *final* checkpoint still inject and re-compare (the
    // post-injection checkpoint covers every lane's set_agent path), so
    // every requested storm runs — faults always totals
    // fault_storms * faults_per_storm.
    if (cp < storm_at.size() && storm_at[cp] > 0) {
      inject_storm(storm_at[cp]);
      if (!checkpoint()) return rep;
    }
    ++cp;
  }

  rep.packed_lane =
      have_lane_d && (lane_d.packed_mode() || lane_d.word_kernel_mode());
  rep.word_lane = lane_b.word_path_active();
  if constexpr (kHaveLaneG) rep.lockstep_lane = lane_g->word_kernel_mode();
  std::uint64_t h = detail::mix64(core::streams::kDigest, lane_a.steps());
  if constexpr (core::HasLeaderOutput<P>) {
    h = detail::mix64(h, static_cast<std::uint64_t>(lane_a.leader_count()));
  }
  if constexpr (core::HasTokenCensus<P>) {
    h = detail::mix64(h, static_cast<std::uint64_t>(lane_a.token_count()));
  }
  for (const State& s : lane_a.agents())
    h = detail::fold_state<P>(h, s, params);
  rep.final_digest = h;
  return rep;
}

/// Seed-indexed fuzz campaign fanned over a thread pool. Trial t draws its
/// seed as derive_seed(base.seed, tag, t) and its initial configuration
/// from make_init(params, rng) with the campaign convention
/// rng(stream_seed(seed, streams::kConfig)) — the pool distributes indices
/// only, so reports are
/// bit-identical for every thread count (the scheduler-replay determinism
/// contract). make_init and fault_state are invoked concurrently and must
/// be stateless or const.
template <typename P, typename M = void, typename Topo = core::RingTopology,
          typename MirrorTopo = Topo, typename MakeInit, typename FaultState>
[[nodiscard]] std::vector<FuzzReport> run_differential_campaign(
    const typename P::Params& params, const FuzzConfig& base, int trials,
    int threads, MakeInit&& make_init, FaultState&& fault_state,
    std::uint64_t tag = core::streams::kDifferentialTrial) {
  std::vector<FuzzReport> reports(static_cast<std::size_t>(trials));
  core::ThreadPool pool(threads);
  pool.for_index(static_cast<std::size_t>(trials), [&](std::size_t t) {
    FuzzConfig cfg = base;
    cfg.seed = core::derive_seed(base.seed, tag,
                                 static_cast<std::uint64_t>(t));
    core::Xoshiro256pp cfg_rng(
        core::stream_seed(cfg.seed, core::streams::kConfig));
    const auto initial = make_init(params, cfg_rng);
    reports[t] = run_differential<P, M, Topo, MirrorTopo>(params, initial,
                                                          cfg, fault_state);
  });
  return reports;
}

}  // namespace ppsim::verification
