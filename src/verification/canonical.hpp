// Canonical representatives of ring configurations under the ring's
// symmetry group — the reduction layer of the quotient model checker
// (quotient.hpp).
//
// A configuration of n agents is a digit string d_0 ... d_{n-1} (digit i =
// the packed per-agent state at position i). The uniform scheduler is
// invariant under rotating all agent indices (core::rotate_arc) and, on
// undirected rings, under reflection (core::reflect_arc), so configurations
// equivalent up to those maps have isomorphic futures and the configuration
// graph factors through the orbit space. The canonical representative of an
// orbit is the lexicographically least digit string among the allowed
// transforms:
//
//   * rotations by multiples of `rotation_period` g — g = 1 (the full
//     rotation group, Booth's least-rotation algorithm, O(n)) when the
//     checker adapter is position independent; g > 1 when the adapter bakes
//     periodic per-position inputs into unpack (e.g. a periodic two-hop
//     coloring); g = n means no rotational symmetry at all;
//   * optionally composed with reflection (i -> n-1-i), sound only for
//     position-independent adapters on undirected rings.
//
// All functions operate on plain digit spans so they are checker-agnostic
// and directly unit-testable against brute force
// (tests/verification/canonical_test.cpp).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace ppsim::verification {

/// The symmetry group the quotient checker is allowed to use. Valid
/// rotations are the multiples of `rotation_period` (which must divide n);
/// `reflection` composes every valid rotation with the index reversal.
struct SymmetryGroup {
  int n = 0;
  int rotation_period = 1;  ///< g; g == n disables rotational reduction
  bool reflection = false;

  [[nodiscard]] int order() const noexcept {
    return (n / rotation_period) * (reflection ? 2 : 1);
  }
};

/// Booth's least-rotation algorithm: the rotation index k minimizing the
/// string d_k d_{k+1} ... d_{k+n-1} lexicographically, in O(n) time.
/// `failure` is caller-provided scratch (resized here) so hot loops do not
/// allocate per call.
[[nodiscard]] inline std::size_t least_rotation(
    std::span<const std::uint16_t> d, std::vector<std::int32_t>& failure) {
  const std::size_t n = d.size();
  if (n <= 1) return 0;
  failure.assign(2 * n, -1);
  std::size_t k = 0;  // least-rotation candidate
  for (std::size_t j = 1; j < 2 * n; ++j) {
    const std::uint16_t sj = d[j % n];
    std::int32_t i = failure[j - k - 1];
    while (i != -1 && sj != d[(k + static_cast<std::size_t>(i) + 1) % n]) {
      if (sj < d[(k + static_cast<std::size_t>(i) + 1) % n])
        k = j - static_cast<std::size_t>(i) - 1;
      i = failure[static_cast<std::size_t>(i)];
    }
    if (i == -1 && sj != d[k % n]) {
      if (sj < d[k % n]) k = j;
      failure[j - k] = -1;
    } else {
      failure[j - k] = i + 1;
    }
  }
  return k % n;
}

namespace detail {

/// Lexicographic compare of rotation-by-a vs rotation-by-b of `d`.
[[nodiscard]] inline bool rotation_less(std::span<const std::uint16_t> d,
                                        std::size_t a, std::size_t b) {
  const std::size_t n = d.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t da = d[(a + i) % n];
    const std::uint16_t db = d[(b + i) % n];
    if (da != db) return da < db;
  }
  return false;
}

/// Least rotation restricted to multiples of `period`: Booth for the full
/// group, pairwise compares (O(n^2 / period)) otherwise — the quotient
/// checker only meets period > 1 on tiny position-periodic adapters.
[[nodiscard]] inline std::size_t least_rotation_periodic(
    std::span<const std::uint16_t> d, int period,
    std::vector<std::int32_t>& failure) {
  if (period == 1) return least_rotation(d, failure);
  std::size_t best = 0;
  for (std::size_t r = static_cast<std::size_t>(period); r < d.size();
       r += static_cast<std::size_t>(period)) {
    if (rotation_less(d, r, best)) best = r;
  }
  return best;
}

}  // namespace detail

/// Scratch buffers for allocation-free canonicalization in hot loops.
struct CanonicalScratch {
  std::vector<std::int32_t> failure;
  std::vector<std::uint16_t> reversed;
  std::vector<std::uint16_t> candidate;
};

/// Rewrite `d` to the canonical (lexicographically least reachable) digit
/// string of its orbit under `g`. Deterministic and idempotent:
/// canonicalize(t(d)) == canonicalize(d) for every group element t.
inline void canonicalize(std::vector<std::uint16_t>& d,
                         const SymmetryGroup& g, CanonicalScratch& scratch) {
  const std::size_t n = d.size();
  assert(static_cast<int>(n) == g.n);
  assert(g.rotation_period >= 1 && g.n % g.rotation_period == 0);
  assert(!g.reflection || g.rotation_period == 1);
  if (n <= 1) return;
  const std::size_t k =
      detail::least_rotation_periodic(d, g.rotation_period, scratch.failure);
  scratch.candidate.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    scratch.candidate[i] = d[(k + i) % n];
  if (g.reflection) {
    // Reflection is only sound for position-independent adapters
    // (rotation_period == 1, enforced by the group builder in
    // quotient.hpp), so the reversed string ranges over the full rotation
    // group too.
    scratch.reversed.assign(d.rbegin(), d.rend());
    const std::size_t kr = least_rotation(scratch.reversed, scratch.failure);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint16_t rv = scratch.reversed[(kr + i) % n];
      if (rv != scratch.candidate[i]) {
        if (rv < scratch.candidate[i]) {
          for (std::size_t j = 0; j < n; ++j)
            scratch.candidate[j] = scratch.reversed[(kr + j) % n];
        }
        break;
      }
    }
  }
  d.swap(scratch.candidate);
}

/// Number of distinct digit strings in the orbit of `d` under `g`
/// (orbit-stabilizer: |G| / |stabilizer|). O(|G| * n).
[[nodiscard]] inline std::uint64_t orbit_size(std::span<const std::uint16_t> d,
                                              const SymmetryGroup& g) {
  const std::size_t n = d.size();
  if (n == 0) return 1;
  int stabilizer = 0;
  for (int r = 0; r < g.n; r += g.rotation_period) {
    bool fixed = true;
    for (std::size_t i = 0; i < n && fixed; ++i)
      fixed = d[i] == d[(i + static_cast<std::size_t>(r)) % n];
    stabilizer += fixed ? 1 : 0;
    if (g.reflection) {
      // rotation-by-r composed with reflection: position i reads reversed
      // digit (r + n - 1 - i) mod n.
      fixed = true;
      for (std::size_t i = 0; i < n && fixed; ++i)
        fixed = d[i] ==
                d[(static_cast<std::size_t>(r) + n - 1 - i) % n];
      stabilizer += fixed ? 1 : 0;
    }
  }
  return static_cast<std::uint64_t>(g.order()) /
         static_cast<std::uint64_t>(stabilizer);
}

}  // namespace ppsim::verification
