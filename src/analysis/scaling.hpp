// State-space accounting for the Table-1 "#states" column (E9).
//
// These count |Q(n)| — the number of *abstract protocol states* per agent as
// declared by each protocol's variable domains — and the corresponding bits
// of agent memory.
#pragma once

#include <cstdint>
#include <string>

#include "pl/params.hpp"
#include "pl/state.hpp"

namespace ppsim::analysis {

struct StateCount {
  double states = 0.0;  ///< |Q(n)| (double: polylog products overflow u64 late)
  double bits = 0.0;    ///< log2 |Q(n)|
};

/// P_PL: 2(leader) * 2(b) * 2psi(dist) * 2(last) * T^2(tokens,
/// T = 1 + (2psi-1)*4) * (kappa_max+1)(clock) * (psi+1)(hits) *
/// (kappa_max+1)(signalR) * 3(bullet) * 2(shield) * 2(signalB).
/// (mode is derived; counting it would multiply by 2 but not change the
/// polylog character.)
[[nodiscard]] StateCount pl_state_count(const pl::PlParams& p);

/// yokota28: 2 * (2^psi)(dist) * 3 * 2 * 2 — Theta(n).
[[nodiscard]] StateCount y28_state_count(int n, int psi_slack = 0);

/// fischer_jiang: 2 * 3 * 2 * 2 = 24 — O(1).
[[nodiscard]] StateCount fj_state_count();

/// modk: 2 * k * 3 * 2 * 2 — O(1).
[[nodiscard]] StateCount modk_state_count(int k);

[[nodiscard]] std::string format_state_count(const StateCount& c);

/// Injective packing of a PlState into 64 bits (for the empirical
/// state-usage audit: distinct states actually visited vs the declared
/// |Q(n)|). Valid for psi <= 60 and kappa_max <= 2^16 - 1.
[[nodiscard]] std::uint64_t pack_pl_state(const pl::PlState& s,
                                          const pl::PlParams& p);

}  // namespace ppsim::analysis
