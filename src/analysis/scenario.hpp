// Scenario campaign engine: declarative recovery-time measurement under
// scheduled fault injection — the self-stabilization claim (Def. 2.1)
// exercised the way the SS-LE literature evaluates it (recovery after k
// transient faults), rather than only convergence from initial
// configurations.
//
// A ScenarioSpec<P> is the cross product the campaign driver executes:
//
//   initial-configuration family x fault schedule x recovery predicate
//                                x trial plan
//
// Per trial (seeded derive_seed(seed_base, tag, t), same scheme as
// analysis/experiment.hpp):
//
//   1. build a Runner from spec.initial(params, cfg_rng)      [cfg stream]
//   2. run_until(spec.recovered) — the stabilization phase; a timeout here
//      is a *stabilization* failure and the trial ends
//   3. for each FaultEvent, advance the scheduler to exactly
//      `epoch + at_step` interactions (epoch = the stabilization hit) and
//      call spec.inject(runner, faults, fault_rng)            [fault stream]
//   4. run_until(spec.recovered) again — the recovery phase; the recovery
//      time is the hitting step minus the step of the last injection
//
// Determinism: the configuration stream (stream_seed(seed,
// streams::kConfig)) and the fault stream (stream_seed(seed,
// streams::kFaults)) are decorrelated per trial and independent of the
// scheduler stream, work is fanned over core::ThreadPool by *index* only,
// and injections happen at exact step offsets — so campaign results are
// bit-identical for every thread count (tests/analysis/scenario_test.cpp).
//
// Execution: measure_recovery shards the trial range into contiguous blocks,
// each run as one core::EnsembleRunner (struct-of-arrays state, blocked
// per-ring hot loop — the campaign-throughput win recorded in
// BENCH_ensemble.json). Ring t owns
// exactly the three RNG streams trial t's standalone Runner would own and
// rings never interact, so RecoveryStats is byte-identical to the historical
// per-trial path (kept as detail::recovery_trial, pinned by
// tests/core/ensemble_test.cpp). Injectors receive a core::RingView — one
// ring of either engine — rather than a whole Runner.
//
// Quantization: both run_until phases check the predicate every
// `plan.check_every` steps (0 = every ~n), so stabilization and recovery
// hitting times are quantized up to that granularity; fault injections
// themselves land at exact offsets.
//
// Topology and scheduler faults: ScenarioSpec is templated on a
// core::Topology (ring by default — existing campaigns are untouched) and
// carries an optional core::SchedulerFaults (omission probability and/or
// biased arc distribution). Faults are applied identically to the
// standalone-Runner reference path and to every ensemble ring, and the
// loss stream is derived per trial from the trial seed
// (stream_seed(seed, core::streams::kLoss)), so the bit-identity and
// thread-count-invariance
// contracts above carry over verbatim to faulted campaigns
// (tests/analysis/topology_campaign_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/ensemble.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/runner.hpp"
#include "core/statistics.hpp"
#include "core/stream_tags.hpp"
#include "core/topology.hpp"

namespace ppsim::analysis {

/// One scheduled fault burst: corrupt `faults` agents once the scheduler
/// reaches `at_step` interactions past the stabilization point.
struct FaultEvent {
  std::uint64_t at_step = 0;
  int faults = 0;
};

/// One burst of `faults` corruptions immediately after stabilization — the
/// classic "corrupt a converged system" regime.
[[nodiscard]] inline std::vector<FaultEvent> burst_schedule(int faults) {
  return {FaultEvent{0, faults}};
}

/// `faults` single corruptions spaced `gap` steps apart (a fault storm the
/// protocol may be mid-recovery through).
[[nodiscard]] inline std::vector<FaultEvent> storm_schedule(
    int faults, std::uint64_t gap) {
  std::vector<FaultEvent> s;
  s.reserve(static_cast<std::size_t>(std::max(faults, 0)));
  for (int i = 0; i < faults; ++i)
    s.push_back(FaultEvent{gap * static_cast<std::uint64_t>(i), 1});
  return s;
}

/// 64-bit: a storm schedule over a service-scale campaign can carry more
/// corruptions than `int` holds, and the campaign aggregates it feeds are
/// 64-bit throughout (per-event counts stay `int` — one burst is bounded by
/// n).
[[nodiscard]] inline std::int64_t total_faults(
    std::span<const FaultEvent> schedule) {
  std::int64_t f = 0;
  for (const FaultEvent& ev : schedule) f += ev.faults;
  return f;
}

/// Trial plan shared by every trial of a scenario. `max_steps` budgets the
/// stabilization phase and the recovery phase separately. `trials` is
/// 64-bit: the resumable campaign service (src/service/campaign.hpp) plans
/// up to 1e9-trial cells, which must not overflow the plan or the folded
/// counters (negative values degrade to zero trials).
struct TrialPlan {
  std::int64_t trials = 8;
  std::uint64_t max_steps = 100'000'000;
  std::uint64_t seed_base = 1;
  std::uint64_t tag = 0;
  std::uint64_t check_every = 0;  ///< predicate granularity; 0 = every ~n
  int threads = 0;                ///< ThreadPool size; 0 = default
};

/// Declarative recovery scenario for protocol P. `initial` draws the
/// initial-configuration family, `inject` corrupts a running system through
/// a core::RingView (RingView::set_agent keeps the census incremental, and
/// the view works for a standalone Runner and for one ring of an
/// EnsembleRunner alike), `recovered` is the stabilization/recovery
/// predicate (for the study protocols: membership in the safe set).
/// analysis/adversary.hpp builds the standard instances.
template <typename P, typename Topo = core::RingTopology>
struct ScenarioSpec {
  using Params = typename P::Params;
  using State = typename P::State;
  using Topology = Topo;

  std::string name;
  std::function<std::vector<State>(const Params&, core::Xoshiro256pp&)>
      initial;
  /// Executed in at_step order (stably sorted per trial; same-step events
  /// keep their declared order).
  std::vector<FaultEvent> schedule;
  std::function<void(core::RingView<P, Topo>, int, core::Xoshiro256pp&)>
      inject;
  std::function<bool(std::span<const State>, const Params&)> recovered;
  TrialPlan plan;
  /// Scheduler faults active for the *whole* trial (stabilization and
  /// recovery phases alike): omission probability and/or biased arc
  /// distribution. Default-inactive — the clean fast paths stay engaged.
  core::SchedulerFaults sched_faults;
};

/// Outcome of one trial.
struct RecoveryTrial {
  bool stabilized = false;      ///< reached `recovered` before any injection
  bool healed = false;          ///< reached `recovered` after the last one
  std::uint64_t stabilize_steps = 0;  ///< steps to first stabilization
  std::uint64_t recovery_steps = 0;   ///< last injection -> re-stabilization
};

/// Folded campaign statistics. `raw` holds the recovery times of healed
/// trials in trial order (failures excluded), mirroring ConvergenceStats.
/// Counters are 64-bit to match TrialPlan::trials (service-scale campaigns;
/// values of every committed artifact are unchanged by the widening).
struct RecoveryStats {
  std::int64_t trials = 0;
  std::int64_t stabilization_failures = 0;  ///< never `recovered` pre-fault
  std::int64_t recovery_failures = 0;  ///< stabilized, never healed in budget
  core::Summary recovery;
  core::Summary stabilization;  ///< over trials that stabilized
  std::vector<std::uint64_t> raw;
};

namespace detail {

/// `spec.schedule` stably sorted by at_step (same-step events keep their
/// declared order) — the execution order of every trial.
template <typename P, typename Topo>
[[nodiscard]] std::vector<FaultEvent> sorted_schedule(
    const ScenarioSpec<P, Topo>& spec) {
  std::vector<FaultEvent> schedule = spec.schedule;
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_step < b.at_step;
                   });
  return schedule;
}

/// One scenario trial on a standalone Runner — the historical per-trial
/// path, kept as the byte-identity reference for the ensemble-sharded
/// driver (tests/core/ensemble_test.cpp compares the two trial for trial).
/// See the header comment for the phase diagram.
template <typename P, typename Topo = core::RingTopology>
[[nodiscard]] RecoveryTrial recovery_trial(const typename P::Params& params,
                                           const ScenarioSpec<P, Topo>& spec,
                                           std::uint64_t t) {
  const TrialPlan& plan = spec.plan;
  const std::uint64_t seed = core::derive_seed(plan.seed_base, plan.tag, t);
  core::Xoshiro256pp cfg_rng(core::stream_seed(seed, core::streams::kConfig));
  core::Xoshiro256pp fault_rng(
      core::stream_seed(seed, core::streams::kFaults));
  core::Runner<P, Topo> runner(params, spec.initial(params, cfg_rng), seed);
  if (spec.sched_faults.active()) runner.set_scheduler_faults(spec.sched_faults);

  RecoveryTrial out;
  const auto stab =
      runner.run_until(spec.recovered, plan.max_steps, plan.check_every);
  if (!stab) return out;
  out.stabilized = true;
  out.stabilize_steps = *stab;

  const std::uint64_t epoch = runner.steps();
  std::uint64_t last_injection = epoch;
  for (const FaultEvent& ev : sorted_schedule(spec)) {
    const std::uint64_t target = epoch + ev.at_step;
    if (target > runner.steps()) runner.run(target - runner.steps());
    spec.inject(core::RingView<P, Topo>(runner), ev.faults, fault_rng);
    last_injection = runner.steps();
  }

  const auto rec =
      runner.run_until(spec.recovered, plan.max_steps, plan.check_every);
  if (!rec) return out;
  out.healed = true;
  out.recovery_steps = *rec - last_injection;
  return out;
}

/// Run trials [first, first + count) of a scenario as one ensemble, writing
/// RecoveryTrial i into out[first + i]. Phase structure per ring is exactly
/// recovery_trial's: stabilize (run_until_each), inject at exact offsets
/// (run_ring + RingView), recover (run_until_each over the stabilized
/// subset, others frozen).
template <typename P, typename Topo = core::RingTopology>
void ensemble_recovery_shard(const typename P::Params& params,
                             const ScenarioSpec<P, Topo>& spec,
                             std::size_t first, std::size_t count,
                             std::span<RecoveryTrial> out) {
  constexpr std::uint64_t npos = core::EnsembleRunner<P, Topo>::npos;
  const TrialPlan& plan = spec.plan;
  core::EnsembleRunner<P, Topo> ensemble(params, static_cast<int>(count));
  std::vector<core::Xoshiro256pp> fault_rngs;
  fault_rngs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = core::derive_seed(
        plan.seed_base, plan.tag, static_cast<std::uint64_t>(first + i));
    core::Xoshiro256pp cfg_rng(core::stream_seed(seed, core::streams::kConfig));
    fault_rngs.emplace_back(core::stream_seed(seed, core::streams::kFaults));
    const auto initial = spec.initial(params, cfg_rng);
    ensemble.add_ring(initial, seed);
  }
  // After the rings exist: per-ring loss streams re-derive from each ring's
  // seed, so trial i is bit-identical to recovery_trial's standalone Runner.
  if (spec.sched_faults.active())
    ensemble.set_scheduler_faults(spec.sched_faults);

  const auto stab =
      ensemble.run_until_each(spec.recovered, plan.max_steps,
                              plan.check_every);
  const auto schedule = sorted_schedule(spec);
  std::vector<int> recovering;
  std::vector<std::uint64_t> last_injection(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    if (stab[i] == npos) continue;  // stabilization failure; out stays default
    RecoveryTrial& trial = out[first + i];
    trial.stabilized = true;
    trial.stabilize_steps = stab[i];
    const int r = static_cast<int>(i);
    const std::uint64_t epoch = ensemble.steps(r);
    std::uint64_t last = epoch;
    for (const FaultEvent& ev : schedule) {
      const std::uint64_t target = epoch + ev.at_step;
      if (target > ensemble.steps(r))
        ensemble.run_ring(r, target - ensemble.steps(r));
      spec.inject(core::RingView<P, Topo>(ensemble, r), ev.faults,
                  fault_rngs[i]);
      last = ensemble.steps(r);
    }
    last_injection[i] = last;
    recovering.push_back(r);
  }

  std::vector<std::uint64_t> rec(count, npos);
  ensemble.run_until_each(recovering, spec.recovered, plan.max_steps,
                          plan.check_every, rec);
  for (int r : recovering) {
    const auto i = static_cast<std::size_t>(r);
    if (rec[i] == npos) continue;  // recovery failure
    RecoveryTrial& trial = out[first + i];
    trial.healed = true;
    trial.recovery_steps = rec[i] - last_injection[i];
  }
}

[[nodiscard]] RecoveryStats fold_recovery(
    const std::vector<RecoveryTrial>& trials);

}  // namespace detail

/// Execute one scenario: `plan.trials` trials sharded into contiguous
/// ensembles fanned over a ThreadPool, bit-identical for any thread count
/// and to the per-trial reference path (indices only; see header comment).
template <typename P, typename Topo = core::RingTopology>
[[nodiscard]] RecoveryStats measure_recovery(
    const typename P::Params& params, const ScenarioSpec<P, Topo>& spec) {
  std::vector<RecoveryTrial> trials(
      static_cast<std::size_t>(std::max<std::int64_t>(spec.plan.trials, 0)));
  core::ThreadPool pool(spec.plan.threads);
  // Same cache-capped, load-balanced sharding as the convergence drivers;
  // output-invisible (trials are seeded by global index).
  const std::size_t shard = analysis::detail::balanced_shard_width(
      static_cast<std::size_t>(params.n) * sizeof(typename P::State),
      trials.size(), static_cast<std::size_t>(pool.size()));
  const std::size_t shards = (trials.size() + shard - 1) / shard;
  pool.for_index(shards, [&](std::size_t s) {
    const std::size_t first = s * shard;
    detail::ensemble_recovery_shard<P, Topo>(
        params, spec, first, std::min(shard, trials.size() - first), trials);
  });
  return detail::fold_recovery(trials);
}

/// One executed campaign cell.
struct CampaignResult {
  std::string scenario;
  int n = 0;
  std::int64_t faults = 0;  ///< total faults across the schedule
  RecoveryStats stats;
};

/// Execute a whole campaign (a list of params x spec cells) in order.
/// Give each cell a distinct plan.tag — campaign_tag below is collision-free
/// for n < 2^20 and faults < 2^12 — so cells stay decorrelated and
/// reproducible independent of campaign order.
template <typename P, typename Topo = core::RingTopology>
[[nodiscard]] std::vector<CampaignResult> run_campaign(
    std::span<const std::pair<typename P::Params, ScenarioSpec<P, Topo>>>
        cells) {
  std::vector<CampaignResult> out;
  out.reserve(cells.size());
  for (const auto& [params, spec] : cells) {
    CampaignResult r;
    r.scenario = spec.name;
    r.n = params.n;
    r.faults = total_faults(spec.schedule);
    r.stats = measure_recovery<P, Topo>(params, spec);
    out.push_back(std::move(r));
  }
  return out;
}

/// Per-cell experiment tag: tag_base | n | faults, collision-free for
/// n < 2^20, faults < 2^12.
[[nodiscard]] constexpr std::uint64_t campaign_tag(std::uint64_t tag_base,
                                                   int n,
                                                   int faults) noexcept {
  return (tag_base << 32) | (static_cast<std::uint64_t>(n) << 12) |
         static_cast<std::uint64_t>(faults);
}

}  // namespace ppsim::analysis
