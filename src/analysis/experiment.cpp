#include "analysis/experiment.hpp"

#include <cmath>
#include <limits>

namespace ppsim::analysis {

namespace detail {

ConvergenceStats fold_trials(const std::vector<std::uint64_t>& hits) {
  constexpr std::uint64_t kMiss = std::numeric_limits<std::uint64_t>::max();
  ConvergenceStats out;
  out.trials = static_cast<int>(hits.size());
  for (std::uint64_t h : hits) {
    if (h == kMiss) {
      ++out.failures;
    } else {
      out.raw.push_back(h);
    }
  }
  out.steps = core::summarize_u64(out.raw);
  return out;
}

}  // namespace detail

core::PowerFit fit_median_scaling(const std::vector<ScalingPoint>& points) {
  std::vector<double> x, y;
  for (const ScalingPoint& p : points) {
    if (p.stats.raw.empty()) continue;
    x.push_back(static_cast<double>(p.n));
    y.push_back(p.stats.steps.median);
  }
  return core::fit_power(x, y);
}

double normalized_n2logn(const ScalingPoint& p) {
  const double n = p.n;
  return p.stats.steps.median / (n * n * std::log2(n));
}

double normalized_n2(const ScalingPoint& p) {
  const double n = p.n;
  return p.stats.steps.median / (n * n);
}

double normalized_n3(const ScalingPoint& p) {
  const double n = p.n;
  return p.stats.steps.median / (n * n * n);
}

}  // namespace ppsim::analysis
