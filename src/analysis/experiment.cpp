#include "analysis/experiment.hpp"

#include <cmath>

namespace ppsim::analysis {

core::PowerFit fit_median_scaling(const std::vector<ScalingPoint>& points) {
  std::vector<double> x, y;
  for (const ScalingPoint& p : points) {
    if (p.stats.raw.empty()) continue;
    x.push_back(static_cast<double>(p.n));
    y.push_back(p.stats.steps.median);
  }
  return core::fit_power(x, y);
}

double normalized_n2logn(const ScalingPoint& p) {
  const double n = p.n;
  return p.stats.steps.median / (n * n * std::log2(n));
}

double normalized_n2(const ScalingPoint& p) {
  const double n = p.n;
  return p.stats.steps.median / (n * n);
}

double normalized_n3(const ScalingPoint& p) {
  const double n = p.n;
  return p.stats.steps.median / (n * n * n);
}

}  // namespace ppsim::analysis
