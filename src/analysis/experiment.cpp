#include "analysis/experiment.hpp"

#include <cmath>
#include <limits>

namespace ppsim::analysis {

namespace detail {

ConvergenceStats fold_trials(const std::vector<std::uint64_t>& hits) {
  constexpr std::uint64_t kMiss = std::numeric_limits<std::uint64_t>::max();
  ConvergenceStats out;
  out.trials = static_cast<int>(hits.size());
  for (std::uint64_t h : hits) {
    if (h == kMiss) {
      ++out.failures;
    } else {
      out.raw.push_back(h);
    }
  }
  out.steps = core::summarize_u64(out.raw);
  return out;
}

}  // namespace detail

core::PowerFit fit_median_scaling(const std::vector<ScalingPoint>& points) {
  int all_failure = 0;
  std::vector<double> x, y;
  for (const ScalingPoint& p : points) {
    if (p.stats.raw.empty()) {
      // No trial converged at this n: there is no median to fit. Counted as
      // skipped so the caller can see the sweep was degenerate rather than
      // fitting a silently truncated point set.
      ++all_failure;
      continue;
    }
    x.push_back(static_cast<double>(p.n));
    y.push_back(p.stats.steps.median);
  }
  // fit_power additionally skips zero medians (pred true at step 0 for the
  // majority of trials) — both kinds of degenerate point end up in `skipped`.
  core::PowerFit fit = core::fit_power(x, y);
  fit.skipped += all_failure;
  return fit;
}

namespace {

/// All-failure points have no hitting times at all; their Summary median of
/// 0 is an artifact of the empty sample, not a measurement. Normalizing it
/// would produce a plausible-looking 0 row, so the normalizations return NaN
/// instead (p.stats.failures carries the count).
double median_or_nan(const ScalingPoint& p) {
  return p.stats.raw.empty() ? std::numeric_limits<double>::quiet_NaN()
                             : p.stats.steps.median;
}

}  // namespace

double normalized_n2logn(const ScalingPoint& p) {
  const double n = p.n;
  return median_or_nan(p) / (n * n * std::log2(n));
}

double normalized_n2(const ScalingPoint& p) {
  const double n = p.n;
  return median_or_nan(p) / (n * n);
}

double normalized_n3(const ScalingPoint& p) {
  const double n = p.n;
  return median_or_nan(p) / (n * n * n);
}

}  // namespace ppsim::analysis
