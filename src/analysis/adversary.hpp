// Protocol-agnostic adversary interface over the per-protocol generators.
//
// Self-stabilization quantifies over *every* configuration; each study
// protocol declares its state-space generators (src/pl/adversary.hpp,
// src/baselines/adversary.cpp). Adversary<P> gives those a uniform shape —
// random_state / random_config / safe_config / recovered / families — so the
// scenario campaign engine (analysis/scenario.hpp) and the recovery bench
// can treat P_PL and the baselines identically:
//
//   * random_state(params, rng)   — one uniform state of the declared domain
//                                   (the unit of fault injection)
//   * random_config(params, rng)  — the "arbitrary configuration" regime
//   * safe_config(params, rng)    — a converged reference configuration with
//                                   the leader at a random position
//   * recovered(config, params)   — membership in the protocol's safe set
//                                   (S_PL and its baseline analogs)
//   * families()                  — named worst-case initial-configuration
//                                   families for scenario diversity
//
// corrupt_config / inject_random_faults implement the shared k-distinct-agent
// corruption on top (the latter through Runner::set_agent, whose census is
// delta-maintained, so a fault storm costs O(faults), not O(faults * n)).
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "baselines/fischer_jiang.hpp"
#include "baselines/modk.hpp"
#include "baselines/yokota28.hpp"
#include "core/rng.hpp"
#include "core/runner.hpp"
#include "pl/adversary.hpp"
#include "pl/invariants.hpp"
#include "pl/protocol.hpp"
#include "pl/safe_config.hpp"

namespace ppsim::analysis {

/// Named initial-configuration family of protocol P.
template <typename P>
struct ConfigFamily {
  std::string name;
  std::function<std::vector<typename P::State>(const typename P::Params&,
                                               core::Xoshiro256pp&)>
      make;
};

/// Specialized per protocol below; a use with an uncovered protocol fails to
/// compile on the missing specialization.
template <typename P>
struct Adversary;

template <>
struct Adversary<pl::PlProtocol> {
  using P = pl::PlProtocol;
  using Params = pl::PlParams;
  using State = pl::PlState;

  static State random_state(const Params& p, core::Xoshiro256pp& rng) {
    return pl::random_state(p, rng);
  }
  static std::vector<State> random_config(const Params& p,
                                          core::Xoshiro256pp& rng) {
    return pl::random_config(p, rng);
  }
  static std::vector<State> safe_config(const Params& p,
                                        core::Xoshiro256pp& rng) {
    return pl::make_safe_config(
        p, static_cast<int>(rng.bounded(static_cast<std::uint64_t>(p.n))));
  }
  static bool recovered(std::span<const State> c, const Params& p) {
    return pl::is_safe(c, p);
  }
  static std::vector<ConfigFamily<P>> families() {
    return {
        {"random", [](const Params& p,
                      core::Xoshiro256pp& rng) { return pl::random_config(p, rng); }},
        {"safe", [](const Params& p,
                    core::Xoshiro256pp& rng) { return safe_config(p, rng); }},
        {"fresh", [](const Params& p, core::Xoshiro256pp&) {
           return pl::make_fresh_config(p);
         }},
        {"leaderless_consistent", [](const Params& p, core::Xoshiro256pp&) {
           return pl::leaderless_consistent(p, p.kappa_max);
         }},
        {"all_leaders", [](const Params& p, core::Xoshiro256pp&) {
           return pl::all_leaders(p);
         }},
        {"all_zero", [](const Params& p, core::Xoshiro256pp&) {
           return pl::all_zero(p);
         }},
        {"stale_signals", [](const Params& p, core::Xoshiro256pp&) {
           return pl::stale_signals_everywhere(p);
         }},
        {"token_garbage", [](const Params& p, core::Xoshiro256pp& rng) {
           return pl::token_garbage(p, rng);
         }},
    };
  }
};

template <>
struct Adversary<baselines::FischerJiang> {
  using P = baselines::FischerJiang;
  using Params = baselines::FjParams;
  using State = baselines::FjState;

  static State random_state(const Params& p, core::Xoshiro256pp& rng) {
    return baselines::fj_random_state(p, rng);
  }
  static std::vector<State> random_config(const Params& p,
                                          core::Xoshiro256pp& rng) {
    return baselines::fj_random_config(p, rng);
  }
  static std::vector<State> safe_config(const Params& p,
                                        core::Xoshiro256pp& rng) {
    return baselines::fj_safe_config(
        p, static_cast<int>(rng.bounded(static_cast<std::uint64_t>(p.n))));
  }
  static bool recovered(std::span<const State> c, const Params& p) {
    return baselines::fj_is_safe(c, p);
  }
  static std::vector<ConfigFamily<P>> families() {
    return {
        {"random", [](const Params& p, core::Xoshiro256pp& rng) {
           return baselines::fj_random_config(p, rng);
         }},
        {"safe", [](const Params& p,
                    core::Xoshiro256pp& rng) { return safe_config(p, rng); }},
        {"all_zero", [](const Params& p, core::Xoshiro256pp&) {
           // Leaderless; recovery rests entirely on Omega?[leader].
           return std::vector<State>(static_cast<std::size_t>(p.n));
         }},
        {"all_leaders", [](const Params& p, core::Xoshiro256pp&) {
           // Maximal elimination war: every agent an unshielded armed leader.
           std::vector<State> c(static_cast<std::size_t>(p.n));
           for (State& s : c) {
             s.leader = 1;
             s.armed = 1;
           }
           return c;
         }},
    };
  }
};

template <>
struct Adversary<baselines::Modk> {
  using P = baselines::Modk;
  using Params = baselines::ModkParams;
  using State = baselines::ModkState;

  static State random_state(const Params& p, core::Xoshiro256pp& rng) {
    return baselines::modk_random_state(p, rng);
  }
  static std::vector<State> random_config(const Params& p,
                                          core::Xoshiro256pp& rng) {
    return baselines::modk_random_config(p, rng);
  }
  static std::vector<State> safe_config(const Params& p,
                                        core::Xoshiro256pp& rng) {
    return baselines::modk_safe_config(
        p, static_cast<int>(rng.bounded(static_cast<std::uint64_t>(p.n))));
  }
  static bool recovered(std::span<const State> c, const Params& p) {
    return baselines::modk_is_safe(c, p);
  }
  static std::vector<ConfigFamily<P>> families() {
    return {
        {"random", [](const Params& p, core::Xoshiro256pp& rng) {
           return baselines::modk_random_config(p, rng);
         }},
        {"safe", [](const Params& p,
                    core::Xoshiro256pp& rng) { return safe_config(p, rng); }},
        {"all_zero", [](const Params& p, core::Xoshiro256pp&) {
           // Leaderless with lab = 0 everywhere: a label violation at every
           // pair (n not a multiple of k), maximal promotion pressure.
           return std::vector<State>(static_cast<std::size_t>(p.n));
         }},
        {"all_leaders", [](const Params& p, core::Xoshiro256pp&) {
           std::vector<State> c(static_cast<std::size_t>(p.n));
           for (State& s : c) {
             s.leader = 1;
             s.signal_b = 1;
           }
           return c;
         }},
    };
  }
};

template <>
struct Adversary<baselines::Yokota28> {
  using P = baselines::Yokota28;
  using Params = baselines::Y28Params;
  using State = baselines::Y28State;

  static State random_state(const Params& p, core::Xoshiro256pp& rng) {
    return baselines::y28_random_state(p, rng);
  }
  static std::vector<State> random_config(const Params& p,
                                          core::Xoshiro256pp& rng) {
    return baselines::y28_random_config(p, rng);
  }
  static std::vector<State> safe_config(const Params& p,
                                        core::Xoshiro256pp& rng) {
    return baselines::y28_safe_config(
        p, static_cast<int>(rng.bounded(static_cast<std::uint64_t>(p.n))));
  }
  static bool recovered(std::span<const State> c, const Params& p) {
    return baselines::y28_is_safe(c, p);
  }
  static std::vector<ConfigFamily<P>> families() {
    return {
        {"random", [](const Params& p, core::Xoshiro256pp& rng) {
           return baselines::y28_random_config(p, rng);
         }},
        {"safe", [](const Params& p,
                    core::Xoshiro256pp& rng) { return safe_config(p, rng); }},
        {"leaderless_ramp", [](const Params& p, core::Xoshiro256pp&) {
           return baselines::y28_leaderless(p);
         }},
        {"all_leaders", [](const Params& p, core::Xoshiro256pp&) {
           std::vector<State> c(static_cast<std::size_t>(p.n));
           for (State& s : c) {
             s.leader = 1;
             s.signal_b = 1;
           }
           return c;
         }},
    };
  }
};

namespace detail {

/// `faults` distinct agent indices via a partial Fisher-Yates shuffle:
/// exactly `faults` RNG draws and O(n) work regardless of the fault count
/// (rejection sampling degenerates once faults approaches n, and the
/// recovery benches sweep all the way up to f = n).
inline std::vector<int> distinct_targets(int n, int faults,
                                         core::Xoshiro256pp& rng) {
  faults = std::clamp(faults, 0, n);
  std::vector<int> pool(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < faults; ++i) {
    const auto j = i + static_cast<int>(rng.bounded(
                           static_cast<std::uint64_t>(n - i)));
    std::swap(pool[static_cast<std::size_t>(i)],
              pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(faults));
  return pool;
}

}  // namespace detail

/// Corrupt `faults` distinct agents of a raw configuration with uniformly
/// random states (pre-run fault injection, any covered protocol).
template <typename P>
void corrupt_config(std::vector<typename P::State>& config,
                    const typename P::Params& params, int faults,
                    core::Xoshiro256pp& rng) {
  for (int idx :
       detail::distinct_targets(static_cast<int>(config.size()), faults, rng))
    config[static_cast<std::size_t>(idx)] =
        Adversary<P>::random_state(params, rng);
}

/// Corrupt `faults` distinct agents of a *running* ring through
/// RingView::set_agent (census stays incremental; the standard `inject` of a
/// ScenarioSpec). The view form serves a standalone Runner and one ring of
/// an EnsembleRunner identically — and any topology, since fault targets
/// are agents, not arcs.
template <typename P, typename Topo>
void inject_random_faults(core::RingView<P, Topo> ring, int faults,
                          core::Xoshiro256pp& rng) {
  for (int idx : detail::distinct_targets(ring.n(), faults, rng))
    ring.set_agent(idx, Adversary<P>::random_state(ring.params(), rng));
}

/// Convenience overload for a standalone Runner (template deduction cannot
/// see through the RingView conversion).
template <typename P, typename Topo>
void inject_random_faults(core::Runner<P, Topo>& runner, int faults,
                          core::Xoshiro256pp& rng) {
  inject_random_faults(core::RingView<P, Topo>(runner), faults, rng);
}

/// The standard recovery scenario for protocol P: stabilize from a converged
/// configuration (leader at a random position), run `schedule`, recover to
/// the protocol's safe set. `name` should identify the schedule shape
/// ("burst_4", "storm_8", ...). Topo defaults to the ring; on other
/// topologies note that the study protocols' safe sets are ring-structured,
/// so stabilization may never occur — the campaign reports that honestly as
/// stabilization_failures rather than hanging (max_steps bounds the wait).
template <typename P, typename Topo = core::RingTopology>
[[nodiscard]] ScenarioSpec<P, Topo> make_recovery_scenario(
    std::string name, std::vector<FaultEvent> schedule, TrialPlan plan) {
  ScenarioSpec<P, Topo> spec;
  spec.name = std::move(name);
  spec.initial = [](const typename P::Params& p, core::Xoshiro256pp& rng) {
    return Adversary<P>::safe_config(p, rng);
  };
  spec.schedule = std::move(schedule);
  spec.inject = [](core::RingView<P, Topo> r, int faults,
                   core::Xoshiro256pp& rng) {
    inject_random_faults(r, faults, rng);
  };
  spec.recovered = [](std::span<const typename P::State> c,
                      const typename P::Params& p) {
    return Adversary<P>::recovered(c, p);
  };
  spec.plan = plan;
  return spec;
}

}  // namespace ppsim::analysis
