#include "analysis/scaling.hpp"

#include <cmath>
#include <cstdio>

#include "core/ring.hpp"

namespace ppsim::analysis {

StateCount pl_state_count(const pl::PlParams& p) {
  const double psi = p.psi;
  const double token = 1.0 + (2.0 * psi - 1.0) * 4.0;
  const double states = 2.0 * 2.0 * (2.0 * psi) * 2.0 * token * token *
                        (p.kappa_max + 1.0) * (psi + 1.0) *
                        (p.kappa_max + 1.0) * 3.0 * 2.0 * 2.0;
  return {states, std::log2(states)};
}

StateCount y28_state_count(int n, int psi_slack) {
  const int psi =
      std::max(2, core::ceil_log2(static_cast<std::uint64_t>(n))) + psi_slack;
  const double cap = std::pow(2.0, psi);
  const double states = 2.0 * cap * 3.0 * 2.0 * 2.0;
  return {states, std::log2(states)};
}

StateCount fj_state_count() {
  const double states = 2.0 * 3.0 * 2.0 * 2.0;
  return {states, std::log2(states)};
}

StateCount modk_state_count(int k) {
  const double states = 2.0 * k * 3.0 * 2.0 * 2.0;
  return {states, std::log2(states)};
}

std::string format_state_count(const StateCount& c) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g (%.1f bits)", c.states, c.bits);
  return buf;
}

namespace {

std::uint64_t token_index(const pl::Token& t, int psi) {
  if (!t.exists()) return 0;
  const int pos_idx = t.pos < 0 ? t.pos + psi - 1 : psi - 1 + t.pos - 1;
  return 1 + (static_cast<std::uint64_t>(pos_idx) * 4 + t.value * 2 +
              t.carry);
}

}  // namespace

std::uint64_t pack_pl_state(const pl::PlState& s, const pl::PlParams& p) {
  const auto psi = static_cast<std::uint64_t>(p.psi);
  const std::uint64_t token_radix = 1 + (2 * psi - 1) * 4;
  const std::uint64_t kappa_radix = static_cast<std::uint64_t>(p.kappa_max) + 1;
  std::uint64_t v = s.leader;
  v = v * 2 + s.b;
  v = v * (2 * psi) + s.dist;
  v = v * 2 + s.last;
  v = v * token_radix + token_index(s.token_b, p.psi);
  v = v * token_radix + token_index(s.token_w, p.psi);
  v = v * kappa_radix + s.clock;
  v = v * (psi + 1) + s.hits;
  v = v * kappa_radix + s.signal_r;
  v = v * 3 + s.bullet;
  v = v * 2 + s.shield;
  v = v * 2 + s.signal_b;
  return v;
}

}  // namespace ppsim::analysis
