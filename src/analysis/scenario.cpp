#include "analysis/scenario.hpp"

namespace ppsim::analysis {
namespace detail {

RecoveryStats fold_recovery(const std::vector<RecoveryTrial>& trials) {
  RecoveryStats out;
  out.trials = static_cast<std::int64_t>(trials.size());
  std::vector<std::uint64_t> stab;
  for (const RecoveryTrial& t : trials) {
    if (!t.stabilized) {
      ++out.stabilization_failures;
      continue;
    }
    stab.push_back(t.stabilize_steps);
    if (!t.healed) {
      ++out.recovery_failures;
      continue;
    }
    out.raw.push_back(t.recovery_steps);
  }
  out.recovery = core::summarize_u64(out.raw);
  out.stabilization = core::summarize_u64(stab);
  return out;
}

}  // namespace detail
}  // namespace ppsim::analysis
