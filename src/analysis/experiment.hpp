// Experiment driver: repeated-trial convergence measurement with decorrelated
// seeds, used by every bench harness and the integration tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/runner.hpp"
#include "core/statistics.hpp"

namespace ppsim::analysis {

struct ConvergenceStats {
  int trials = 0;
  int failures = 0;  ///< trials that did not converge within max_steps
  core::Summary steps;
  std::vector<std::uint64_t> raw;
};

/// Run `trials` executions of protocol P from configurations produced by
/// `gen(rng)` until `pred(agents, params)` holds (checked every ~n steps),
/// collecting hitting times. Trials exceeding `max_steps` count as failures
/// and are excluded from the summary.
template <typename P, typename ConfigGen, typename Pred>
[[nodiscard]] ConvergenceStats measure_convergence(
    const typename P::Params& params, ConfigGen&& gen, Pred&& pred,
    int trials, std::uint64_t max_steps, std::uint64_t seed_base,
    std::uint64_t tag) {
  ConvergenceStats out;
  out.trials = trials;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed =
        core::derive_seed(seed_base, tag, static_cast<std::uint64_t>(t));
    core::Xoshiro256pp cfg_rng(seed ^ 0xC0FFEE);
    core::Runner<P> runner(params, gen(cfg_rng), seed);
    const auto hit = runner.run_until(pred, max_steps);
    if (hit.has_value()) {
      out.raw.push_back(*hit);
    } else {
      ++out.failures;
    }
  }
  out.steps = core::summarize_u64(out.raw);
  return out;
}

/// One (n, statistics) point of a scaling sweep.
struct ScalingPoint {
  int n = 0;
  ConvergenceStats stats;
};

/// Fits median hitting time ~ c * n^e over the sweep (failures excluded).
[[nodiscard]] core::PowerFit fit_median_scaling(
    const std::vector<ScalingPoint>& points);

/// median / (n^2 * log2 n) — the paper's Theorem-3.1 normalization.
[[nodiscard]] double normalized_n2logn(const ScalingPoint& point);
/// median / n^2 and median / n^3 (the neighboring normalizations).
[[nodiscard]] double normalized_n2(const ScalingPoint& point);
[[nodiscard]] double normalized_n3(const ScalingPoint& point);

}  // namespace ppsim::analysis
