// Experiment driver: repeated-trial convergence measurement with decorrelated
// seeds, used by every bench harness and the integration tests.
//
// Two drivers share one seeding scheme (derive_seed(seed_base, tag, t) per
// trial, config RNG seeded with seed ^ 0xC0FFEE):
//
//  * measure_convergence          — the serial reference loop.
//  * measure_convergence_parallel — fans trials out over a core::ThreadPool.
//    Because the pool distributes only trial *indices* and each trial owns
//    its runner and RNGs, the returned ConvergenceStats (including the raw
//    hitting-time vector, in trial order) is bit-identical to the serial
//    driver for every thread count (tests/analysis/analysis_test.cpp).
//
// `gen` and `pred` are invoked concurrently from pool threads and must be
// safe to call in parallel (the stateless lambdas used by all harnesses are).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/runner.hpp"
#include "core/statistics.hpp"

namespace ppsim::analysis {

struct ConvergenceStats {
  int trials = 0;
  int failures = 0;  ///< trials that did not converge within max_steps
  core::Summary steps;
  std::vector<std::uint64_t> raw;
};

namespace detail {

/// One trial of the convergence experiment; returns the hitting step or
/// Runner<P>::npos on timeout. Shared by the serial and parallel drivers so
/// their per-trial computation cannot drift apart.
template <typename P, typename ConfigGen, typename Pred>
[[nodiscard]] std::uint64_t convergence_trial(
    const typename P::Params& params, ConfigGen& gen, Pred& pred,
    std::uint64_t max_steps, std::uint64_t seed_base, std::uint64_t tag,
    std::uint64_t t, std::uint64_t check_every) {
  const std::uint64_t seed = core::derive_seed(seed_base, tag, t);
  core::Xoshiro256pp cfg_rng(seed ^ 0xC0FFEE);
  core::Runner<P> runner(params, gen(cfg_rng), seed);
  return runner.run_until(pred, max_steps, check_every)
      .value_or(core::Runner<P>::npos);
}

/// Fold per-trial hitting times (npos = failure) into ConvergenceStats.
[[nodiscard]] ConvergenceStats fold_trials(
    const std::vector<std::uint64_t>& hits);

}  // namespace detail

/// Run `trials` executions of protocol P from configurations produced by
/// `gen(rng)` until `pred(agents, params)` holds, collecting hitting times.
/// Trials exceeding `max_steps` count as failures and are excluded from the
/// summary. `check_every` is the predicate check granularity in steps
/// (0 = every ~n steps): reported hitting times are quantized *up* to the
/// first check at or after the true hit, so a coarser granularity trades
/// precision for throughput.
template <typename P, typename ConfigGen, typename Pred>
[[nodiscard]] ConvergenceStats measure_convergence(
    const typename P::Params& params, ConfigGen&& gen, Pred&& pred,
    int trials, std::uint64_t max_steps, std::uint64_t seed_base,
    std::uint64_t tag, std::uint64_t check_every = 0) {
  // Negative counts degrade to zero trials (PPSIM_TRIALS is raw atoi).
  std::vector<std::uint64_t> hits(
      static_cast<std::size_t>(std::max(trials, 0)));
  for (std::size_t t = 0; t < hits.size(); ++t) {
    hits[t] = detail::convergence_trial<P>(params, gen, pred, max_steps,
                                           seed_base, tag,
                                           static_cast<std::uint64_t>(t),
                                           check_every);
  }
  return detail::fold_trials(hits);
}

/// Trial-parallel driver: same seeding, same results, `threads` workers
/// (0 = PPSIM_THREADS / hardware concurrency). `check_every` as in
/// measure_convergence.
template <typename P, typename ConfigGen, typename Pred>
[[nodiscard]] ConvergenceStats measure_convergence_parallel(
    const typename P::Params& params, ConfigGen&& gen, Pred&& pred,
    int trials, std::uint64_t max_steps, std::uint64_t seed_base,
    std::uint64_t tag, int threads = 0, std::uint64_t check_every = 0) {
  std::vector<std::uint64_t> hits(
      static_cast<std::size_t>(std::max(trials, 0)));
  core::ThreadPool pool(threads);
  pool.for_index(hits.size(), [&](std::size_t t) {
    hits[t] = detail::convergence_trial<P>(params, gen, pred, max_steps,
                                           seed_base, tag,
                                           static_cast<std::uint64_t>(t),
                                           check_every);
  });
  return detail::fold_trials(hits);
}

/// One (n, statistics) point of a scaling sweep.
struct ScalingPoint {
  int n = 0;
  ConvergenceStats stats;
};

/// Step budget used by the convergence sweeps: enough for the Theta(n^3)
/// baselines at small n and the n^2 polylog protocols throughout.
[[nodiscard]] constexpr std::uint64_t sweep_budget(int n) noexcept {
  const auto n_u = static_cast<std::uint64_t>(n);
  return 40'000ULL * n_u * n_u + 50'000'000ULL;
}

/// Shared ring-size sweep driver (Theorem 3.1 / Table 1 harnesses): for each
/// n, builds params via `mk(n)`, draws configurations via `gen(params, rng)`
/// and measures convergence to `pred` with the trial-parallel engine.
/// Per-point tag is `tag_base << 32 | params.n` — collision-free for any
/// n that fits 32 bits, so sweep points stay decorrelated and reproducible
/// independent of sweep order.
template <typename P, typename MakeParams, typename ConfigGen, typename Pred>
[[nodiscard]] std::vector<ScalingPoint> measure_scaling_sweep(
    const std::vector<int>& ns, MakeParams&& mk, ConfigGen&& gen, Pred&& pred,
    int trials, std::uint64_t seed_base, std::uint64_t tag_base,
    int threads = 0, std::uint64_t check_every = 0) {
  std::vector<ScalingPoint> points;
  points.reserve(ns.size());
  for (int n : ns) {
    const auto params = mk(n);
    ScalingPoint pt;
    pt.n = params.n;
    pt.stats = measure_convergence_parallel<P>(
        params,
        [&](core::Xoshiro256pp& rng) { return gen(params, rng); }, pred,
        trials, sweep_budget(params.n), seed_base,
        (tag_base << 32) | static_cast<std::uint64_t>(params.n), threads,
        check_every);
    points.push_back(std::move(pt));
  }
  return points;
}

/// Fits median hitting time ~ c * n^e over the sweep. All-failure points
/// and zero medians cannot be fit on log-log axes; they are skipped and
/// counted in the returned PowerFit::skipped, and the fit comes back with
/// valid == false (NaN values) when fewer than two usable points remain.
[[nodiscard]] core::PowerFit fit_median_scaling(
    const std::vector<ScalingPoint>& points);

/// median / (n^2 * log2 n) — the paper's Theorem-3.1 normalization.
/// All-failure points (stats.raw empty) yield NaN, never a misleading 0;
/// check point.stats.failures for the failure count.
[[nodiscard]] double normalized_n2logn(const ScalingPoint& point);
/// median / n^2 and median / n^3 (the neighboring normalizations); same
/// NaN-on-all-failure contract.
[[nodiscard]] double normalized_n2(const ScalingPoint& point);
[[nodiscard]] double normalized_n3(const ScalingPoint& point);

}  // namespace ppsim::analysis
