// Experiment driver: repeated-trial convergence measurement with decorrelated
// seeds, used by every bench harness and the integration tests.
//
// Two drivers share one seeding scheme (derive_seed(seed_base, tag, t) per
// trial, config RNG seeded with stream_seed(seed, streams::kConfig) — the
// stream-tag registry, core/stream_tags.hpp):
//
//  * measure_convergence          — the serial driver.
//  * measure_convergence_parallel — fans work out over a core::ThreadPool.
//
// Both shard the trial index range into contiguous blocks and run each block
// as one core::EnsembleRunner (struct-of-arrays state, blocked per-ring hot
// loop — the campaign-throughput win measured in BENCH_ensemble.json). Because ring
// t of a shard owns exactly the RNG streams a standalone Runner for trial t
// would own and rings never interact, the returned ConvergenceStats —
// including the raw hitting-time vector, in trial order — is bit-identical
// to the historical per-trial Runner loop (kept as
// detail::convergence_trial, pinned by tests/core/ensemble_test.cpp) and
// identical for every thread count and shard width
// (tests/analysis/analysis_test.cpp).
//
// `gen` and `pred` are invoked concurrently from pool threads and must be
// safe to call in parallel (the stateless lambdas used by all harnesses are).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/ensemble.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/runner.hpp"
#include "core/statistics.hpp"
#include "core/stream_tags.hpp"

namespace ppsim::analysis {

struct ConvergenceStats {
  int trials = 0;
  int failures = 0;  ///< trials that did not converge within max_steps
  core::Summary steps;
  std::vector<std::uint64_t> raw;
};

namespace detail {

/// One trial of the convergence experiment on a standalone Runner; returns
/// the hitting step or Runner<P>::npos on timeout. This is the historical
/// per-trial path, kept as the byte-identity reference for the
/// ensemble-sharded drivers (tests/core/ensemble_test.cpp compares the two
/// trial for trial).
template <typename P, typename ConfigGen, typename Pred>
[[nodiscard]] std::uint64_t convergence_trial(
    const typename P::Params& params, ConfigGen& gen, Pred& pred,
    std::uint64_t max_steps, std::uint64_t seed_base, std::uint64_t tag,
    std::uint64_t t, std::uint64_t check_every) {
  const std::uint64_t seed = core::derive_seed(seed_base, tag, t);
  core::Xoshiro256pp cfg_rng(core::stream_seed(seed, core::streams::kConfig));
  core::Runner<P> runner(params, gen(cfg_rng), seed);
  return runner.run_until(pred, max_steps, check_every)
      .value_or(core::Runner<P>::npos);
}

/// Shard width (rings per EnsembleRunner) for the trial-batched drivers:
/// capped so one shard's agent-state block stays cache-resident (~256 KiB),
/// floored at 1 ring for huge rings, capped at 64 for tiny ones. A function
/// of (n, state size) only — NOT of the thread count — so sharding can never
/// perturb results across machines or pool sizes (each trial is independent
/// and seeded by its global index; shard boundaries are invisible in the
/// output either way).
[[nodiscard]] constexpr std::size_t ensemble_shard_rings(
    std::size_t ring_state_bytes) noexcept {
  constexpr std::size_t kShardStateBudget = 256 * 1024;
  if (ring_state_bytes == 0) return 64;
  const std::size_t rings = kShardStateBudget / ring_state_bytes;
  return std::clamp<std::size_t>(rings, 1, 64);
}

/// Shard width for the *pool-parallel* drivers: the cache-capped width
/// above, further split so every worker sees several shards (per-trial
/// durations vary wildly across trials). Shard boundaries cannot affect any
/// result — trials are seeded by global index and rings never interact — so
/// this balancing knob is output-invisible. Shared by
/// measure_convergence_parallel and measure_recovery so the two drivers'
/// sharding cannot drift.
[[nodiscard]] constexpr std::size_t balanced_shard_width(
    std::size_t ring_state_bytes, std::size_t work_items,
    std::size_t workers) noexcept {
  const std::size_t cap = ensemble_shard_rings(ring_state_bytes);
  const std::size_t per_worker = work_items / (4 * workers) + 1;
  return std::max<std::size_t>(1, std::min(cap, per_worker));
}

/// Run trials [first, first + count) as one ensemble, writing each trial's
/// hitting step (or npos) into hits[first + i]. Ring i is seeded exactly as
/// convergence_trial(t = first + i) seeds its Runner.
template <typename P, typename ConfigGen, typename Pred>
void ensemble_convergence_shard(const typename P::Params& params,
                                ConfigGen& gen, Pred& pred,
                                std::uint64_t max_steps,
                                std::uint64_t seed_base, std::uint64_t tag,
                                std::uint64_t check_every, std::size_t first,
                                std::size_t count,
                                std::vector<std::uint64_t>& hits) {
  core::EnsembleRunner<P> ensemble(params, static_cast<int>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = core::derive_seed(
        seed_base, tag, static_cast<std::uint64_t>(first + i));
    core::Xoshiro256pp cfg_rng(core::stream_seed(seed, core::streams::kConfig));
    const auto initial = gen(cfg_rng);
    ensemble.add_ring(initial, seed);
  }
  const auto shard_hits =
      ensemble.run_until_each(pred, max_steps, check_every);
  std::copy(shard_hits.begin(), shard_hits.end(), hits.begin() + first);
}

/// Fold per-trial hitting times (npos = failure) into ConvergenceStats.
[[nodiscard]] ConvergenceStats fold_trials(
    const std::vector<std::uint64_t>& hits);

}  // namespace detail

/// Run `trials` executions of protocol P from configurations produced by
/// `gen(rng)` until `pred(agents, params)` holds, collecting hitting times.
/// Trials exceeding `max_steps` count as failures and are excluded from the
/// summary. `check_every` is the predicate check granularity in steps
/// (0 = every ~n steps): reported hitting times are quantized *up* to the
/// first check at or after the true hit, so a coarser granularity trades
/// precision for throughput.
template <typename P, typename ConfigGen, typename Pred>
[[nodiscard]] ConvergenceStats measure_convergence(
    const typename P::Params& params, ConfigGen&& gen, Pred&& pred,
    int trials, std::uint64_t max_steps, std::uint64_t seed_base,
    std::uint64_t tag, std::uint64_t check_every = 0) {
  // Negative counts degrade to zero trials (a negative PPSIM_TRIALS parses
  // strictly — core/env.hpp — and means "no trials" here).
  std::vector<std::uint64_t> hits(
      static_cast<std::size_t>(std::max(trials, 0)));
  const std::size_t shard = detail::ensemble_shard_rings(
      static_cast<std::size_t>(params.n) * sizeof(typename P::State));
  for (std::size_t first = 0; first < hits.size(); first += shard) {
    detail::ensemble_convergence_shard<P>(
        params, gen, pred, max_steps, seed_base, tag, check_every, first,
        std::min(shard, hits.size() - first), hits);
  }
  return detail::fold_trials(hits);
}

/// Trial-parallel driver: same seeding, same results, `threads` workers
/// (0 = PPSIM_THREADS / hardware concurrency). The pool distributes shard
/// indices; each shard is one ensemble over a contiguous trial range, so
/// results stay bit-identical to the serial driver (and to the per-trial
/// reference) for every thread count. `check_every` as in
/// measure_convergence.
template <typename P, typename ConfigGen, typename Pred>
[[nodiscard]] ConvergenceStats measure_convergence_parallel(
    const typename P::Params& params, ConfigGen&& gen, Pred&& pred,
    int trials, std::uint64_t max_steps, std::uint64_t seed_base,
    std::uint64_t tag, int threads = 0, std::uint64_t check_every = 0) {
  std::vector<std::uint64_t> hits(
      static_cast<std::size_t>(std::max(trials, 0)));
  core::ThreadPool pool(threads);
  const std::size_t shard = detail::balanced_shard_width(
      static_cast<std::size_t>(params.n) * sizeof(typename P::State),
      hits.size(), static_cast<std::size_t>(pool.size()));
  const std::size_t shards = (hits.size() + shard - 1) / shard;
  pool.for_index(shards, [&](std::size_t s) {
    const std::size_t first = s * shard;
    detail::ensemble_convergence_shard<P>(
        params, gen, pred, max_steps, seed_base, tag, check_every, first,
        std::min(shard, hits.size() - first), hits);
  });
  return detail::fold_trials(hits);
}

/// One (n, statistics) point of a scaling sweep.
struct ScalingPoint {
  int n = 0;
  ConvergenceStats stats;
};

/// Step budget used by the convergence sweeps: enough for the Theta(n^3)
/// baselines at small n and the n^2 polylog protocols throughout.
[[nodiscard]] constexpr std::uint64_t sweep_budget(int n) noexcept {
  const auto n_u = static_cast<std::uint64_t>(n);
  return 40'000ULL * n_u * n_u + 50'000'000ULL;
}

/// Shared ring-size sweep driver (Theorem 3.1 / Table 1 harnesses): for each
/// n, builds params via `mk(n)`, draws configurations via `gen(params, rng)`
/// and measures convergence to `pred` with the trial-parallel engine.
/// Per-point tag is `tag_base << 32 | params.n` — collision-free for any
/// n that fits 32 bits, so sweep points stay decorrelated and reproducible
/// independent of sweep order.
template <typename P, typename MakeParams, typename ConfigGen, typename Pred>
[[nodiscard]] std::vector<ScalingPoint> measure_scaling_sweep(
    const std::vector<int>& ns, MakeParams&& mk, ConfigGen&& gen, Pred&& pred,
    int trials, std::uint64_t seed_base, std::uint64_t tag_base,
    int threads = 0, std::uint64_t check_every = 0) {
  std::vector<ScalingPoint> points;
  points.reserve(ns.size());
  for (int n : ns) {
    const auto params = mk(n);
    ScalingPoint pt;
    pt.n = params.n;
    pt.stats = measure_convergence_parallel<P>(
        params,
        [&](core::Xoshiro256pp& rng) { return gen(params, rng); }, pred,
        trials, sweep_budget(params.n), seed_base,
        (tag_base << 32) | static_cast<std::uint64_t>(params.n), threads,
        check_every);
    points.push_back(std::move(pt));
  }
  return points;
}

/// Fits median hitting time ~ c * n^e over the sweep. All-failure points
/// and zero medians cannot be fit on log-log axes; they are skipped and
/// counted in the returned PowerFit::skipped, and the fit comes back with
/// valid == false (NaN values) when fewer than two usable points remain.
[[nodiscard]] core::PowerFit fit_median_scaling(
    const std::vector<ScalingPoint>& points);

/// median / (n^2 * log2 n) — the paper's Theorem-3.1 normalization.
/// All-failure points (stats.raw empty) yield NaN, never a misleading 0;
/// check point.stats.failures for the failure count.
[[nodiscard]] double normalized_n2logn(const ScalingPoint& point);
/// median / n^2 and median / n^3 (the neighboring normalizations); same
/// NaN-on-all-failure contract.
[[nodiscard]] double normalized_n2(const ScalingPoint& point);
[[nodiscard]] double normalized_n3(const ScalingPoint& point);

}  // namespace ppsim::analysis
