// P_OR — Algorithm 6: self-stabilizing ring orientation on an undirected
// ring, given a proper two-hop coloring as input. O(1) states, O(n^2 log n)
// steps w.h.p. (Theorem 5.2).
//
// Segment heads extend their segments when they meet; strong heads beat weak
// heads, ties go to the initiator, and the winner's strength moves to the
// fresh head (the flipped loser). Non-head strong agents turn weak.
//
// One fidelity note (DESIGN.md §2.4): Definition 5.1 quantifies over all
// configurations, but the printed guards only fire when dir points at one of
// the agent's neighbors; a garbage dir (not a neighbor color) would be
// frozen forever. We add the minimal sanitization — dir values outside
// {c1, c2} are reset to the partner's color on interaction.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng.hpp"

namespace ppsim::orient {

struct OrState {
  // Input variables (never written by the transition):
  std::uint8_t color = 0;
  std::uint8_t c1 = 0;  ///< one neighbor's color
  std::uint8_t c2 = 0;  ///< the other neighbor's color (c1 != c2 on rings)
  // Output/working variables:
  std::uint8_t dir = 0;     ///< color of the neighbor this agent points at
  std::uint8_t strong = 0;  ///< head strength bit

  friend constexpr bool operator==(const OrState&, const OrState&) = default;
};

struct OrParams {
  int n = 0;
  int xi = 3;  ///< palette size

  [[nodiscard]] static OrParams make(int n, int xi = 3) {
    if (n < 3)
      throw std::invalid_argument("OrParams: orientation requires n >= 3");
    if (xi < 3) throw std::invalid_argument("OrParams: xi must be >= 3");
    return OrParams{n, xi};
  }
};

struct Por {
  using State = OrState;
  using Params = OrParams;
  static constexpr bool directed = false;  // undirected ring: 2n arcs

  /// u is the initiator, v the responder (either side may be initiator on an
  /// undirected ring).
  static void apply(State& u, State& v, const Params&) noexcept {
    // Sanitization: a dir that points at neither neighbor can never trigger
    // the guards below; reset it to the partner's color.
    if (u.dir != u.c1 && u.dir != u.c2) u.dir = v.color;
    if (v.dir != v.c1 && v.dir != v.c2) v.dir = u.color;

    const bool u_points_v = u.dir == v.color;
    const bool v_points_u = v.dir == u.color;
    if (u_points_v && v_points_u) {
      // Lines 63-69: two heads meet.
      if (u.strong == 0 && v.strong == 1) {
        // v (strong) wins: u flips away from v and becomes the new head.
        u.dir = other_neighbor_color(u, v.color);
        u.strong = 1;
        v.strong = 0;
      } else {
        // Initiator wins (strong-vs-weak with u strong, both strong, or both
        // weak): v flips away from u and carries the strength.
        v.dir = other_neighbor_color(v, u.color);
        u.strong = 0;
        v.strong = 1;
      }
    } else if (u_points_v) {
      u.strong = 0;  // lines 70-71: non-head strong agents turn weak
    } else if (v_points_u) {
      v.strong = 0;  // lines 72-73
    }
  }

  [[nodiscard]] static std::uint8_t other_neighbor_color(
      const State& s, std::uint8_t excluded) noexcept {
    return s.c1 == excluded ? s.c2 : s.c1;
  }

  /// Canonical enumeration of the *full* per-agent state (colors included)
  /// over the xi-color palette: 2 strong x xi^4 (color, c1, c2, dir) = 162
  /// states for xi = 3. This is the position-free enumeration
  /// core::EnsembleRunner's packed-state mode and the differential fuzzer
  /// consume; the exhaustive checker keeps the separate PorModel below,
  /// which pins the colors to the ring position and enumerates only the
  /// writable dir/strong pair. The domain is closed under apply: the
  /// transition never writes the color inputs, and every dir it writes is a
  /// palette color.
  static std::size_t num_states(const Params& p) {
    const auto xi = static_cast<std::size_t>(p.xi);
    return xi * xi * xi * xi * 2;
  }
  static std::size_t pack_state(const State& s, const Params& p) {
    const auto xi = static_cast<std::size_t>(p.xi);
    std::size_t v = s.color;
    v = v * xi + s.c1;
    v = v * xi + s.c2;
    v = v * xi + s.dir;
    v = v * 2 + s.strong;
    return v;
  }
  static State unpack_state(std::size_t v, const Params& p) {
    const auto xi = static_cast<std::size_t>(p.xi);
    State s;
    s.strong = static_cast<std::uint8_t>(v % 2);
    v /= 2;
    s.dir = static_cast<std::uint8_t>(v % xi);
    v /= xi;
    s.c2 = static_cast<std::uint8_t>(v % xi);
    v /= xi;
    s.c1 = static_cast<std::uint8_t>(v % xi);
    v /= xi;
    s.color = static_cast<std::uint8_t>(v);
    return s;
  }

  static std::string describe(const State& s, const Params&) {
    return "{color=" + std::to_string(s.color) +
           " c1=" + std::to_string(s.c1) + " c2=" + std::to_string(s.c2) +
           " dir=" + std::to_string(s.dir) +
           " strong=" + std::to_string(s.strong) + "}";
  }
};

/// Definition 5.1 (i)+(ii): proper two-hop coloring (guaranteed by the
/// inputs) and a globally consistent direction — every agent points at its
/// clockwise neighbor, or every agent points at its counter-clockwise
/// neighbor. (Colors may repeat on *adjacent* agents; dir is interpreted
/// through the two-hop-distinct c1/c2.)
[[nodiscard]] bool is_oriented(std::span<const OrState> c, const OrParams& p);

/// Builds the initial configuration: colors from two_hop_coloring(), correct
/// c1/c2, dir/strong from the given generators.
[[nodiscard]] std::vector<OrState> or_config(
    const OrParams& p, core::Xoshiro256pp& rng, bool random_dir = true);

/// Model-checker adapter: colors fixed by position (two_hop_coloring), only
/// dir and strong enumerated — dir over the full palette so garbage dirs are
/// covered.
struct PorModel {
  using State = OrState;
  using Params = OrParams;
  static constexpr bool directed = false;

  static std::size_t num_states(const Params& p) {
    return static_cast<std::size_t>(p.xi) * 2;
  }
  static std::size_t pack(const State& s, const Params&, int /*agent*/) {
    return static_cast<std::size_t>(s.dir) * 2 + s.strong;
  }
  static State unpack(std::size_t v, const Params& p, int agent);
  static void apply(State& l, State& r, const Params& p) noexcept {
    Por::apply(l, r, p);
  }
  static std::string describe(const State& s, const Params& p) {
    return Por::describe(s, p);
  }
};

}  // namespace ppsim::orient
